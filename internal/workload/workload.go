// Package workload generates the traffic patterns of the evaluation:
// permutation traffic, incast, the 90-to-1 on/off dynamic demand of
// Fig 16, Poisson message arrivals with an empirical heavy-tailed flow
// size distribution scaled to a target load, and a message tracker that
// measures per-message FCT through the transports' delivery callbacks.
package workload

import (
	"math/rand"
	"sort"

	"ufab/internal/flowsrc"
	"ufab/internal/sim"
)

// Message is one tracked transfer.
type Message struct {
	ID    int64
	Size  int64
	Start sim.Time
	// remaining bytes to acknowledge before completion.
	remaining int64
	// done is the per-message completion callback (SendFunc).
	done func(m Message, fct sim.Duration)
}

// Messages is a flowsrc.Source that frames its bytes into messages and
// reports each message's completion time. Completion is FIFO-attributed:
// acknowledged bytes complete messages in send order, which is exact for
// the in-order transports simulated here.
type Messages struct {
	pending int64
	kick    func()
	queue   []Message
	nextID  int64
	// Sharing switches completion attribution from FIFO to processor
	// sharing: acknowledged bytes are spread evenly across the
	// outstanding messages, modeling concurrent flows that share the
	// VM-pair's allocation instead of queueing behind each other.
	Sharing bool
	// OnComplete receives each finished message and its FCT.
	OnComplete func(m Message, fct sim.Duration)
	// Completed counts finished messages.
	Completed int64
}

var _ flowsrc.Source = (*Messages)(nil)
var _ flowsrc.DeliveryObserver = (*Messages)(nil)
var _ flowsrc.Requeuer = (*Messages)(nil)
var _ flowsrc.Kicker = (*Messages)(nil)

// Send enqueues a message of the given size at time now.
func (m *Messages) Send(size int64, now sim.Time) *Message {
	return m.SendFunc(size, now, nil)
}

// SendFunc enqueues a message with a per-message completion callback,
// invoked (in addition to OnComplete) when the message finishes.
func (m *Messages) SendFunc(size int64, now sim.Time, done func(msg Message, fct sim.Duration)) *Message {
	if size <= 0 {
		panic("workload: non-positive message size")
	}
	m.nextID++
	m.queue = append(m.queue, Message{ID: m.nextID, Size: size, Start: now, remaining: size, done: done})
	m.pending += size
	if m.kick != nil {
		m.kick()
	}
	return &m.queue[len(m.queue)-1]
}

// Outstanding returns the number of incomplete messages.
func (m *Messages) Outstanding() int { return len(m.queue) }

// Pending implements flowsrc.Source.
func (m *Messages) Pending() int64 { return m.pending }

// Consume implements flowsrc.Source.
func (m *Messages) Consume(n int64) {
	if n > m.pending {
		panic("workload: Consume beyond Pending")
	}
	m.pending -= n
}

// Requeue implements flowsrc.Requeuer (lost bytes are retransmitted).
func (m *Messages) Requeue(n int64) { m.pending += n }

// SetKick implements flowsrc.Kicker.
func (m *Messages) SetKick(f func()) { m.kick = f }

// Delivered implements flowsrc.DeliveryObserver, completing messages in
// FIFO order (or spreading bytes across outstanding messages when Sharing
// is set).
func (m *Messages) Delivered(n int64, now sim.Time) {
	if m.Sharing {
		m.deliverShared(n, now)
		return
	}
	for n > 0 && len(m.queue) > 0 {
		head := &m.queue[0]
		take := n
		if take > head.remaining {
			take = head.remaining
		}
		head.remaining -= take
		n -= take
		if head.remaining == 0 {
			m.complete(0, now)
		}
	}
}

// deliverShared distributes n acknowledged bytes evenly over the
// outstanding messages (processor sharing), completing any that finish.
func (m *Messages) deliverShared(n int64, now sim.Time) {
	for n > 0 && len(m.queue) > 0 {
		per := n / int64(len(m.queue))
		if per == 0 {
			per = 1
		}
		progressed := false
		for i := 0; i < len(m.queue) && n > 0; i++ {
			take := per
			if take > m.queue[i].remaining {
				take = m.queue[i].remaining
			}
			if take > n {
				take = n
			}
			if take == 0 {
				continue
			}
			m.queue[i].remaining -= take
			n -= take
			progressed = true
			if m.queue[i].remaining == 0 {
				m.complete(i, now)
				i--
			}
		}
		if !progressed {
			break
		}
	}
}

// complete pops the message at index i and fires its callbacks.
func (m *Messages) complete(i int, now sim.Time) {
	m.Completed++
	msg := m.queue[i]
	m.queue = append(m.queue[:i], m.queue[i+1:]...)
	if m.OnComplete != nil {
		m.OnComplete(msg, now-msg.Start)
	}
	if msg.done != nil {
		msg.done(msg, now-msg.Start)
	}
}

// Observe adds fn to the completion callbacks, composing with (running
// after) any previously registered OnComplete instead of replacing it —
// instrumentation and experiment accounting can both watch completions.
func (m *Messages) Observe(fn func(msg Message, fct sim.Duration)) {
	if fn == nil {
		return
	}
	if prev := m.OnComplete; prev != nil {
		m.OnComplete = func(msg Message, fct sim.Duration) {
			prev(msg, fct)
			fn(msg, fct)
		}
		return
	}
	m.OnComplete = fn
}

// FixedRate feeds a buffer at a constant rate in byte chunks, emulating an
// application with a bounded demand. Stop the feeder with the returned
// function.
func FixedRate(eng sim.Scheduler, buf *flowsrc.Buffer, bps float64, chunk sim.Duration) (stop func()) {
	if chunk <= 0 {
		chunk = 100 * sim.Microsecond
	}
	bytesPerChunk := int64(bps * chunk.Seconds() / 8)
	if bytesPerChunk < 1 {
		bytesPerChunk = 1
	}
	return eng.Every(chunk, func() { buf.Add(bytesPerChunk) })
}

// OnOff alternates a flow between a fixed-rate demand phase and an
// unlimited (backlogged) phase every period — the Fig 16 90-to-1 dynamic
// workload (500 Mbps fixed vs unlimited every 4 ms). During the unlimited
// phase a large backlog chunk is injected per period; during the fixed
// phase bytes drip at underloadBps.
func OnOff(eng sim.Scheduler, buf *flowsrc.Buffer, underloadBps float64, period sim.Duration, unlimitedChunk int64) (stop func()) {
	on := true // first flip enters underload
	var stopRate func()
	flip := func() {
		if stopRate != nil {
			stopRate()
			stopRate = nil
		}
		on = !on
		if on {
			buf.Add(unlimitedChunk)
			stopRate = eng.Every(period/8, func() { buf.Add(unlimitedChunk / 8) })
		} else {
			// Drop the unconsumed backlog so the flow really goes
			// back to underload.
			buf.Consume(buf.Pending())
			stopRate = FixedRate(eng, buf, underloadBps, period/40)
		}
	}
	flip() // enter underload immediately
	stopPhase := eng.Every(period, flip)
	return func() {
		stopPhase()
		if stopRate != nil {
			stopRate()
		}
	}
}

// SizeDist is an empirical flow-size CDF.
type SizeDist struct {
	// Sizes in bytes and the cumulative probability at each size.
	Sizes []int64
	CDF   []float64
}

// Sample draws a size by inverse-transform sampling with log-linear
// interpolation between CDF points.
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.CDF, u)
	if i == 0 {
		return d.Sizes[0]
	}
	if i >= len(d.Sizes) {
		return d.Sizes[len(d.Sizes)-1]
	}
	// Linear interpolation between points i-1 and i.
	f0, f1 := d.CDF[i-1], d.CDF[i]
	s0, s1 := float64(d.Sizes[i-1]), float64(d.Sizes[i])
	if f1 == f0 {
		return d.Sizes[i]
	}
	frac := (u - f0) / (f1 - f0)
	return int64(s0 + frac*(s1-s0))
}

// Mean returns the distribution's expected size in bytes.
func (d *SizeDist) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i := range d.Sizes {
		p := d.CDF[i] - prev
		prev = d.CDF[i]
		// Use the midpoint of each segment.
		lo := float64(d.Sizes[0])
		if i > 0 {
			lo = float64(d.Sizes[i-1])
		}
		mean += p * (lo + float64(d.Sizes[i])) / 2
	}
	return mean
}

// WebSearch is the DCTCP-style web-search flow size distribution the
// evaluation's "real workload" (§5.5, [7]) is consistent with: heavy
// tailed, most flows small, most bytes in multi-MB flows.
func WebSearch() *SizeDist {
	return &SizeDist{
		Sizes: []int64{6_000, 13_000, 19_000, 33_000, 53_000, 133_000,
			667_000, 1_333_000, 3_333_000, 6_667_000, 20_000_000},
		CDF: []float64{0.15, 0.3, 0.4, 0.53, 0.6, 0.7, 0.8, 0.9, 0.97, 0.99, 1.0},
	}
}

// KeyValue is the Memcached value-size distribution (mean ≈ 2 KB) modeled
// after the ETC pool of the Facebook workload study [10].
func KeyValue() *SizeDist {
	return &SizeDist{
		Sizes: []int64{64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 32_768, 131_072},
		CDF:   []float64{0.1, 0.2, 0.4, 0.55, 0.7, 0.8, 0.9, 0.96, 0.995, 1.0},
	}
}

// Poisson drives messages into tracker with exponential inter-arrival
// times targeting loadBps of offered load given the size distribution.
// Each arrival's destination callback (if non-nil) is invoked instead of
// tracker.Send, letting the caller pick a destination per message.
func Poisson(eng sim.Scheduler, rng *rand.Rand, dist *SizeDist, loadBps float64,
	send func(size int64, now sim.Time)) (stop func()) {
	meanSize := dist.Mean()
	rate := loadBps / 8 / meanSize // messages per second
	stopped := false
	var next func()
	next = func() {
		if stopped {
			return
		}
		send(dist.Sample(rng), eng.Now())
		gap := sim.DurationFromSeconds(rng.ExpFloat64() / rate)
		if gap < sim.Nanosecond {
			gap = sim.Nanosecond
		}
		eng.After(gap, next)
	}
	gap := sim.DurationFromSeconds(rng.ExpFloat64() / rate)
	eng.After(gap, next)
	return func() { stopped = true }
}

// Permutation returns a random derangement-style pairing: srcs[i] sends to
// dsts[perm[i]] with no src mapped to its own index when the slices alias.
func Permutation(rng *rand.Rand, n int) []int {
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}
