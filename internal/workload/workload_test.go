package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ufab/internal/flowsrc"
	"ufab/internal/sim"
)

func TestMessagesFIFOCompletion(t *testing.T) {
	m := &Messages{}
	var fcts []sim.Duration
	m.OnComplete = func(msg Message, fct sim.Duration) { fcts = append(fcts, fct) }
	m.Send(1000, 0)
	m.Send(500, 10*sim.Microsecond)
	if m.Pending() != 1500 || m.Outstanding() != 2 {
		t.Fatalf("pending=%d outstanding=%d", m.Pending(), m.Outstanding())
	}
	m.Consume(1500)
	// Partial delivery completes only the first message.
	m.Delivered(1200, 100*sim.Microsecond)
	if m.Completed != 1 || len(fcts) != 1 || fcts[0] != 100*sim.Microsecond {
		t.Fatalf("completed=%d fcts=%v", m.Completed, fcts)
	}
	m.Delivered(300, 150*sim.Microsecond)
	if m.Completed != 2 || fcts[1] != 140*sim.Microsecond {
		t.Fatalf("completed=%d fcts=%v", m.Completed, fcts)
	}
	if m.Outstanding() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestMessagesKickOnSend(t *testing.T) {
	m := &Messages{}
	kicked := 0
	m.SetKick(func() { kicked++ })
	m.Send(100, 0)
	if kicked != 1 {
		t.Fatalf("kicked = %d", kicked)
	}
}

func TestMessagesRequeue(t *testing.T) {
	m := &Messages{}
	m.Send(1000, 0)
	m.Consume(1000)
	m.Requeue(400) // lost bytes come back
	if m.Pending() != 400 {
		t.Fatalf("pending = %d", m.Pending())
	}
	m.Consume(400)
	m.Delivered(1000, sim.Millisecond)
	if m.Completed != 1 {
		t.Fatal("message did not complete after retransmission")
	}
}

func TestMessagesBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send(0) did not panic")
		}
	}()
	(&Messages{}).Send(0, 0)
}

func TestFixedRate(t *testing.T) {
	eng := sim.New()
	buf := &flowsrc.Buffer{}
	stop := FixedRate(eng, buf, 1e9, 100*sim.Microsecond)
	eng.RunUntil(10 * sim.Millisecond)
	stop()
	// 1 Gbps for 10 ms = 1.25 MB.
	got := buf.Pending()
	if got < 1_200_000 || got > 1_300_000 {
		t.Fatalf("fed %d bytes, want ≈1.25 MB", got)
	}
}

func TestOnOffAlternates(t *testing.T) {
	eng := sim.New()
	buf := &flowsrc.Buffer{}
	stop := OnOff(eng, buf, 500e6, 4*sim.Millisecond, 10<<20)
	// During the first (underload) phase the buffer accumulates at
	// ≈500 Mbps; consume nothing and check magnitude.
	eng.RunUntil(3 * sim.Millisecond)
	under := buf.Pending()
	want := int64(500e6 * 0.003 / 8)
	if math.Abs(float64(under-want)) > 0.3*float64(want) {
		t.Fatalf("underload fed %d, want ≈%d", under, want)
	}
	// After the flip, a large backlog appears.
	eng.RunUntil(5 * sim.Millisecond)
	if buf.Pending() < 10<<20 {
		t.Fatalf("unlimited phase pending = %d, want ≥ chunk", buf.Pending())
	}
	stop()
}

func TestSizeDistSampleInRange(t *testing.T) {
	for _, d := range []*SizeDist{WebSearch(), KeyValue()} {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10000; i++ {
			s := d.Sample(rng)
			if s < d.Sizes[0]/2 || s > d.Sizes[len(d.Sizes)-1] {
				t.Fatalf("sample %d out of range", s)
			}
		}
	}
}

func TestKeyValueMeanNearTwoKB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := KeyValue()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	mean := sum / n
	// Paper: "mean size of 2KB".
	if mean < 1200 || mean > 3500 {
		t.Fatalf("KV mean = %.0f bytes, want ≈2KB", mean)
	}
}

func TestWebSearchHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := WebSearch()
	small, bigBytes, total := 0, 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		s := float64(d.Sample(rng))
		total += s
		if s < 100_000 {
			small++
		} else if s > 1_000_000 {
			bigBytes += s
		}
	}
	if frac := float64(small) / n; frac < 0.5 {
		t.Errorf("small-flow fraction = %.2f, want most flows small", frac)
	}
	if frac := bigBytes / total; frac < 0.4 {
		t.Errorf("big-flow byte share = %.2f, want most bytes in large flows", frac)
	}
}

func TestPoissonLoad(t *testing.T) {
	eng := sim.New()
	rng := rand.New(rand.NewSource(4))
	d := WebSearch()
	var bytes int64
	stop := Poisson(eng, rng, d, 5e9, func(size int64, now sim.Time) { bytes += size })
	eng.RunUntil(200 * sim.Millisecond)
	stop()
	offered := float64(bytes*8) / 0.2
	if offered < 3.5e9 || offered > 6.5e9 {
		t.Fatalf("offered load = %.2f Gbps, want ≈5", offered/1e9)
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		perm := Permutation(rng, n)
		seen := make([]bool, n)
		for i, p := range perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
			if p == i {
				return false // no self-pairing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMessagesSharing(t *testing.T) {
	m := &Messages{Sharing: true}
	var done []int64
	m.OnComplete = func(msg Message, fct sim.Duration) { done = append(done, msg.Size) }
	m.Send(1000, 0)
	m.Send(100, 0)
	m.Consume(1100)
	// FIFO would leave both incomplete after 200 bytes; sharing gives
	// 100 each, completing the small message.
	m.Delivered(200, sim.Microsecond)
	if len(done) != 1 || done[0] != 100 {
		t.Fatalf("shared delivery completed %v, want the 100-byte message", done)
	}
	// The rest completes the big one.
	m.Delivered(900, 2*sim.Microsecond)
	if len(done) != 2 || done[1] != 1000 {
		t.Fatalf("completions %v", done)
	}
	if m.Outstanding() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestMessagesSharingManySmallBehindLarge(t *testing.T) {
	m := &Messages{Sharing: true}
	completed := 0
	m.OnComplete = func(msg Message, fct sim.Duration) {
		if msg.Size == 10 {
			completed++
		}
	}
	m.Send(1_000_000, 0)
	for i := 0; i < 10; i++ {
		m.Send(10, 0)
	}
	m.Consume(m.Pending())
	m.Delivered(1000, sim.Microsecond)
	if completed != 10 {
		t.Fatalf("only %d/10 small messages completed under sharing", completed)
	}
}
