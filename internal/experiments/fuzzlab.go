package experiments

import (
	"ufab/internal/fuzz"
)

func init() {
	All = append(All,
		Entry{ID: "fuzzlab", Title: "scenario fuzzer: seeded generated cases under the auditor oracle", Run: FuzzLab},
	)
}

// FuzzLab runs a short deterministic slice of the scenario fuzzer as an
// experiment: generated cases starting at the run's seed, executed under
// the full oracle (auditor + double-run determinism check). It pins the
// generator/executor/oracle pipeline into the golden baseline — any drift
// in case generation, admission outcomes or verdicts shows up as a golden
// diff long before the nightly fuzz sweep would catch it.
func FuzzLab(o Options) *Report {
	r := NewReport("fuzzlab", "scenario fuzzer slice under the auditor oracle")
	n := int64(6)
	if o.Quick {
		n = 3
	}
	x := &fuzz.Executor{Replay: true}
	var clean, excused, findings, panics, mismatches int64
	var admitted, rejected int64
	for seed := o.Seed; seed < o.Seed+n; seed++ {
		c := fuzz.Generate(seed)
		res, err := x.Run(c)
		if err != nil {
			r.Printf("seed %d: invalid generated case: %v", seed, err)
			findings++
			continue
		}
		r.Printf("seed %d: %s topo=%s tenants=%d verdict=%s (%d excused / %d unexcused, %d admitted / %d rejected)",
			seed, c.Name, c.Topology.Kind, len(c.Tenants), res.Verdict,
			res.Excused, res.Unexcused, res.Admitted, res.Rejected)
		switch res.Verdict {
		case fuzz.VerdictClean:
			clean++
		case fuzz.VerdictExcused:
			excused++
		case fuzz.VerdictFinding:
			findings++
		case fuzz.VerdictPanic:
			panics++
		case fuzz.VerdictMismatch:
			mismatches++
		}
		admitted += res.Admitted
		rejected += res.Rejected
	}
	r.Metric("fuzz.cases", float64(n))
	r.Metric("fuzz.clean", float64(clean))
	r.Metric("fuzz.excused", float64(excused))
	r.Metric("fuzz.findings", float64(findings))
	r.Metric("fuzz.panics", float64(panics))
	r.Metric("fuzz.mismatches", float64(mismatches))
	r.Metric("fuzz.admitted", float64(admitted))
	r.Metric("fuzz.rejected", float64(rejected))
	return r
}
