package experiments

import (
	"math"
	"path/filepath"
	"testing"
)

func twoReports() []*Report {
	a := NewReport("figA", "a")
	a.Metric("a.x", 10)
	a.Metric("a.y", 0.5)
	b := NewReport("figB", "b")
	b.Metric("b.z", -3)
	return []*Report{a, b}
}

func TestGoldenRoundTripAndCompare(t *testing.T) {
	opts := Options{Quick: true, Seed: 1}
	g := BuildGolden(opts, twoReports(), 1e-6)
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Options != opts || loaded.DefaultTolerance != 1e-6 {
		t.Fatalf("roundtrip mangled header: %+v", loaded)
	}
	if drifts := loaded.Compare(twoReports()); len(drifts) != 0 {
		t.Fatalf("identical reports drifted: %v", drifts)
	}
}

func TestGoldenDetectsDrift(t *testing.T) {
	g := BuildGolden(Options{}, twoReports(), 1e-6)
	reports := twoReports()
	reports[0].Metric("a.x", 10.01) // 0.1% off, far beyond 1e-6
	drifts := g.Compare(reports)
	if len(drifts) != 1 || drifts[0].Experiment != "figA" || drifts[0].Metric != "a.x" {
		t.Fatalf("drifts = %v, want exactly figA/a.x", drifts)
	}
	// Within tolerance passes: the max(|want|,1) floor scales it.
	reports[0].Metric("a.x", 10+5e-6)
	if drifts := g.Compare(reports); len(drifts) != 0 {
		t.Fatalf("in-tolerance change flagged: %v", drifts)
	}
}

func TestGoldenPerMetricTolerance(t *testing.T) {
	g := BuildGolden(Options{}, twoReports(), 1e-6)
	g.Tolerances = map[string]float64{"figA/a.x": 0.05}
	reports := twoReports()
	reports[0].Metric("a.x", 10.2) // 2% off: inside the 5% override
	reports[1].Metric("b.z", -3.1) // off with no override: must drift
	drifts := g.Compare(reports)
	if len(drifts) != 1 || drifts[0].Experiment != "figB" {
		t.Fatalf("drifts = %v, want exactly figB/b.z", drifts)
	}
}

func TestGoldenStructuralDrift(t *testing.T) {
	g := BuildGolden(Options{}, twoReports(), 1e-6)

	// Missing metric: a figA report that never recorded a.y.
	reports := twoReports()
	short := NewReport("figA", "a")
	short.Metric("a.x", 10)
	reports[0] = short
	if drifts := g.Compare(reports); len(drifts) != 1 || drifts[0].Structural == "" {
		t.Fatalf("missing metric not structural drift: %v", drifts)
	}

	// New metric not in the baseline.
	reports = twoReports()
	reports[1].Metric("b.w", 7)
	if drifts := g.Compare(reports); len(drifts) != 1 || drifts[0].Structural == "" {
		t.Fatalf("new metric not flagged: %v", drifts)
	}

	// Experiment missing from the run.
	if drifts := g.Compare(twoReports()[:1]); len(drifts) != 1 ||
		drifts[0].Experiment != "figB" || drifts[0].Structural == "" {
		t.Fatalf("missing experiment not flagged: %v", drifts)
	}

	// Extra experiment not in the baseline.
	extra := NewReport("figC", "new")
	if drifts := g.Compare(append(twoReports(), extra)); len(drifts) != 1 ||
		drifts[0].Experiment != "figC" {
		t.Fatalf("extra experiment not flagged: %v", drifts)
	}
}

func TestGoldenSkipsNonFinite(t *testing.T) {
	r := NewReport("figN", "nan")
	r.Metric("n.good", 1)
	r.Metric("n.bad", math.NaN())
	r.Metric("n.worse", math.Inf(1))
	g := BuildGolden(Options{}, []*Report{r}, 1e-6)
	if _, ok := g.Experiments["figN"]["n.bad"]; ok {
		t.Fatal("NaN metric recorded")
	}
	if _, ok := g.Experiments["figN"]["n.worse"]; ok {
		t.Fatal("Inf metric recorded")
	}
	// And Compare must not flag the skipped metrics as "new".
	if drifts := g.Compare([]*Report{r}); len(drifts) != 0 {
		t.Fatalf("non-finite metrics flagged: %v", drifts)
	}
}
