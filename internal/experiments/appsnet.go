package experiments

// Adapters exposing the two fabrics through apps.Net, plus the Fig 13/14
// application-level experiments.

import (
	"ufab/internal/apps"
	"ufab/internal/audit"
	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
	"ufab/internal/workload"

	blhost "ufab/internal/baseline/host"
)

type connKey struct {
	vf       int32
	src, dst topo.NodeID
}

// ufabNet adapts vfabric.Fabric to apps.Net.
type ufabNet struct {
	f     *vfabric.Fabric
	conns map[connKey]*workload.Messages
}

func newUFABNet(eng *sim.Engine, g *topo.Graph, seed int64, prime bool, reg *telemetry.Registry, aud *audit.Config) *ufabNet {
	cfg := vfabric.Config{Seed: seed, Telemetry: reg, Audit: aud}
	cfg.Edge.DisableTwoStage = prime
	return &ufabNet{f: vfabric.New(eng, g, cfg), conns: map[connKey]*workload.Messages{}}
}

func (n *ufabNet) Engine() sim.Scheduler { return n.f.Eng }

func (n *ufabNet) Dial(vf int32, tokens float64, src, dst topo.NodeID) *workload.Messages {
	key := connKey{vf, src, dst}
	if c := n.conns[key]; c != nil {
		return c
	}
	v := n.f.VFs[vf]
	if v == nil {
		// The VF hose defaults to the per-pair guarantee; experiments
		// that need a different hose pre-register the VF.
		v = n.f.AddVF(vf, tokens*100e6, weightClass(tokens*100e6))
	}
	msgs := &workload.Messages{}
	n.f.AddFlowDemand(v, src, dst, tokens, msgs)
	n.conns[key] = msgs
	return msgs
}

// baselineNet adapts the baseline fabric to apps.Net.
type baselineNet struct {
	bl    *blhost.Fabric
	conns map[connKey]*workload.Messages
}

func newBaselineNet(eng *sim.Engine, g *topo.Graph, sc blhost.Scheme, seed int64, reg *telemetry.Registry) *baselineNet {
	return &baselineNet{
		bl:    blhost.NewFabric(eng, g, blhost.Config{Scheme: sc, Seed: seed}, dataplane.Config{Telemetry: reg}),
		conns: map[connKey]*workload.Messages{},
	}
}

func (n *baselineNet) Engine() sim.Scheduler { return n.bl.Eng }

func (n *baselineNet) Dial(vf int32, tokens float64, src, dst topo.NodeID) *workload.Messages {
	key := connKey{vf, src, dst}
	if c := n.conns[key]; c != nil {
		return c
	}
	msgs := &workload.Messages{}
	n.bl.AddFlowDemand(vf, tokens, src, dst, 4, msgs)
	n.conns[key] = msgs
	return msgs
}

// appsNetFor builds the apps.Net for a scheme. Only the μFAB schemes are
// audited (the baselines make no guarantees to check).
func appsNetFor(sc scheme, eng *sim.Engine, g *topo.Graph, seed int64, reg *telemetry.Registry, aud *audit.Config) apps.Net {
	switch sc {
	case schemeUFAB:
		return newUFABNet(eng, g, seed, false, reg, aud)
	case schemeUFABPrime:
		return newUFABNet(eng, g, seed, true, reg, aud)
	case schemePWC:
		return newBaselineNet(eng, g, blhost.PWC, seed, reg)
	default:
		return newBaselineNet(eng, g, blhost.ESClove, seed, reg)
	}
}

// newEBSOn wires the EBS task mix with the paper's guarantees (SA 2G,
// BA 6G, GC 1G → tokens at BU = 100 Mbps).
func newEBSOn(net apps.Net, saHosts, storageHosts []topo.NodeID, seed int64) *apps.EBS {
	return apps.NewEBS(net, apps.EBSConfig{
		SAHosts:      saHosts,
		StorageHosts: storageHosts,
		SATokens:     20,
		BATokens:     60,
		GCTokens:     10,
		Seed:         seed,
	})
}

// Fig13 runs Memcached against MongoDB background traffic on the testbed
// under each scheme plus the Ideal case (no MongoDB): μFAB keeps QPS and
// tail QCT close to Ideal; the baselines lose ~2.5× QPS and ~20× tail QCT.
func Fig13(o Options) *Report {
	r := NewReport("fig13", "Memcached under MongoDB background")
	dur := 60 * sim.Millisecond
	mcClients, mcServers := 12, 24
	mdClients, mdServers := 24, 24
	if o.Quick {
		dur = 15 * sim.Millisecond
		mcClients, mcServers = 6, 8
		mdClients, mdServers = 8, 8
	}
	type variant struct {
		name      string
		sc        scheme
		withMongo bool
	}
	variants := []variant{
		{"PicNIC'+WCC+Clove", schemePWC, true},
		{"ES+Clove", schemeES, true},
		{"uFAB", schemeUFAB, true},
		{"Ideal", schemeUFAB, false},
	}
	for _, load := range []struct {
		name   string
		period sim.Duration
	}{{"low", 800 * sim.Microsecond}, {"high", 60 * sim.Microsecond}} {
		for _, v := range variants {
			eng := sim.New()
			tb := topo.NewTestbed(topo.TestbedConfig{})
			net := appsNetFor(v.sc, eng, tb.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
			if uf, ok := net.(*ufabNet); ok {
				// Tenant hoses: Memcached 2G, MongoDB 6G.
				uf.f.AddVF(1, 2e9, 3)
				uf.f.AddVF(2, 6e9, 5)
			}
			mc := apps.NewMemcached(net, apps.MemcachedConfig{
				VF: 1, Tokens: 4,
				Clients: apps.PlaceVMs(tb.Servers[0:4], mcClients),
				Servers: apps.PlaceVMs(tb.Servers[6:8], mcServers),
				Period:  load.period,
				Seed:    o.Seed,
			})
			var md *apps.Mongo
			if v.withMongo {
				md = apps.NewMongo(net, apps.MongoConfig{
					VF: 2, Tokens: 8,
					Clients:     apps.PlaceVMs(tb.Servers[0:4], mdClients),
					Servers:     apps.PlaceVMs(tb.Servers[4:8], mdServers),
					Concurrency: 4,
					Seed:        o.Seed + 1,
				})
			}
			mc.Start()
			if md != nil {
				md.Start()
			}
			eng.RunUntil(dur)
			qps := mc.QPS(eng.Now())
			avg, p90, p99 := mc.QCT.Mean(), mc.QCT.P(0.90), mc.QCT.P(0.99)
			r.Printf("%-4s load %-18s QPS %8.0f  QCT avg %8.1fus p90 %8.1fus p99 %9.1fus",
				load.name, v.name, qps, avg, p90, p99)
			tag := map[string]string{"PicNIC'+WCC+Clove": "pwc", "ES+Clove": "es", "uFAB": "ufab", "Ideal": "ideal"}[v.name]
			r.Metric(load.name+"."+tag+".qps", qps)
			r.Metric(load.name+"."+tag+".qct_p99_us", p99)
		}
	}
	r.Printf("paper shape: uFAB ≈ Ideal; alternatives ~2.5x lower QPS and ~20x higher tail QCT under high load")
	return r
}

// Fig14 runs the EBS task mix under the three schemes with guarantees
// SA 2G / BA 6G / GC 1G and reports average and tail task completion
// times against the converted latency bounds (2 ms average, 10 ms tail).
func Fig14(o Options) *Report {
	r := NewReport("fig14", "EBS task completion times")
	dur := 80 * sim.Millisecond
	if o.Quick {
		dur = 20 * sim.Millisecond
	}
	// Two pressure levels: the paper's cadence, and an overload where SA
	// offers ~1.3× its guarantee, driving the whole mix past
	// feasibility. Under overload, μFAB confines the damage to the
	// over-demanding tenant (SA queues at its hose) and keeps the 3-way
	// replication bounded near 1 ms p99, while the guarantee-agnostic
	// schemes let the replication incast explode to tens of ms.
	for _, pressure := range []struct {
		name     string
		saPeriod sim.Duration
	}{{"paper", 320 * sim.Microsecond}, {"overload", 200 * sim.Microsecond}} {
		for _, sc := range []scheme{schemePWC, schemeES, schemeUFAB} {
			eng := sim.New()
			tb := topo.NewTestbed(topo.TestbedConfig{})
			net := appsNetFor(sc, eng, tb.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
			if uf, ok := net.(*ufabNet); ok {
				uf.f.AddVF(101, 2e9, 3) // SA
				uf.f.AddVF(102, 6e9, 5) // BA
				uf.f.AddVF(103, 1e9, 2) // GC
			}
			ebs := apps.NewEBS(net, apps.EBSConfig{
				SAHosts:      tb.Servers[0:4],
				StorageHosts: tb.Servers[4:8],
				SATokens:     20, BATokens: 60, GCTokens: 10,
				SAPeriod: pressure.saPeriod,
				GCPeriod: 2 * sim.Millisecond,
				Seed:     o.Seed,
			})
			ebs.Start()
			eng.RunUntil(dur)
			r.Printf("%-5s %-18s SA avg %6.2fms p99 %7.2fms | BA avg %6.2fms p99 %7.2fms | Total avg %6.2fms p99 %7.2fms (n=%d)",
				pressure.name, sc,
				ebs.SATCT.Mean(), ebs.SATCT.P(0.99),
				ebs.BATCT.Mean(), ebs.BATCT.P(0.99),
				ebs.TotalTCT.Mean(), ebs.TotalTCT.P(0.99), ebs.TotalTCT.Len())
			r.Metric(pressure.name+"."+metricKey(sc, "total_avg_ms", -1), ebs.TotalTCT.Mean())
			r.Metric(pressure.name+"."+metricKey(sc, "total_p99_ms", -1), ebs.TotalTCT.P(0.99))
			r.Metric(pressure.name+"."+metricKey(sc, "ba_p99_ms", -1), ebs.BATCT.P(0.99))
		}
	}
	r.Printf("latency bound (converted to 10G): avg ≤ 2 ms, tail ≤ 10 ms; paper: uFAB meets it, 21x/33x shorter tails than PWC/ES")
	return r
}
