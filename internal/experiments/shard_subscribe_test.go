package experiments

import (
	"testing"

	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// TestShardedSubscribeLive holds Recorder.Subscribe to its contract under
// the parallel-in-time core: live subscribers attached to every ring of a
// sharded run (base + one per logical shard) see exactly the events each
// ring records — including events the deliberately tiny rings evict under
// wraparound — and TraceTotals accounts the evictions exactly. Run under
// -race (the Makefile/CI race rows include it) this doubles as the
// data-race gate for subscriber callbacks firing on shard-worker
// goroutines.
func TestShardedSubscribeLive(t *testing.T) {
	const pods = 2
	cl := topo.NewClos(topo.ClosConfig{Pods: pods, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4,
		HostsPerToR: 2, LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond})
	reg := telemetry.New()
	reg.EnableRecorder(0)
	// Pre-size the per-shard rings far below the run's event volume
	// (Build's own EnableShardRecorders call is idempotent on the same
	// count): the rings must wrap, so subscribers prove they outlive
	// eviction — the property the event-driven reconciler depends on.
	const ringCap = 64
	reg.EnableShardRecorders(pods, ringCap)

	f, err := vfabric.Build(vfabric.BuildOptions{
		Graph: cl.Graph, Cfg: vfabric.Config{Seed: 1, Telemetry: reg}, Shards: pods,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := append([]*telemetry.Recorder{reg.ShardRecorder(-1)}, reg.ShardRecorders()...)
	if len(recs) != pods+1 {
		t.Fatalf("got %d recorders, want base + %d shard rings", len(recs), pods)
	}
	// One counter per ring: each ring's subscriber fires only on its
	// shard-owner goroutine, so the per-index writes never race.
	counts := make([]uint64, len(recs))
	pre := make([]uint64, len(recs))
	for i, rec := range recs {
		i := i
		pre[i] = rec.Total()
		rec.Subscribe(func(telemetry.Event) { counts[i]++ })
	}

	// Cross-pod permutation of backlogged guaranteed flows: every probe
	// crosses the shard cut, so both shard rings fill from live workers.
	stride := len(cl.Hosts) / 2
	for i, src := range cl.Hosts {
		vf := f.AddVF(int32(i+1), 1e9, 0)
		fl := f.AddFlow(vf, src, cl.Hosts[(i+stride)%len(cl.Hosts)], 0)
		fl.Buffer.Add(1 << 30)
	}
	f.Eng.RunUntil(2 * sim.Millisecond)

	total, dropped := reg.TraceTotals()
	var wantTotal, wantDropped uint64
	wrapped := 0
	for i, rec := range recs {
		wantTotal += rec.Total()
		evicted := rec.Total() - uint64(rec.Len())
		wantDropped += evicted
		if got, want := counts[i], rec.Total()-pre[i]; got != want {
			t.Errorf("ring %d: subscriber saw %d events, recorder counted %d", i, got, want)
		}
		if evicted > 0 {
			wrapped++
			if counts[i] <= uint64(rec.Len()) {
				t.Errorf("ring %d wrapped (%d evicted) but subscriber saw only %d <= retained %d",
					i, evicted, counts[i], rec.Len())
			}
		}
	}
	if wrapped == 0 {
		t.Fatalf("no ring wrapped (cap %d, total %d): the eviction path went unexercised", ringCap, total)
	}
	if total != wantTotal || dropped != wantDropped {
		t.Errorf("TraceTotals = (%d, %d), want (%d, %d) from per-ring totals",
			total, dropped, wantTotal, wantDropped)
	}
	if dropped == 0 {
		t.Error("drop accounting shows zero despite wrapped rings")
	}
}
