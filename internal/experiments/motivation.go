package experiments

// The §2.1 motivation experiments. The paper's Figs 1–3 are production
// measurements from Alibaba's ECS/EBS clusters; per the substitution rule
// they are recreated here with synthetic traffic that reproduces the
// mechanism: short-timescale burst interference under low average load
// (Fig 1), millisecond-granularity bursts inflating storage tails at
// steady utilization (Fig 2), and ECMP hash polarization concentrating
// load on a subset of equivalent uplinks (Fig 3).

import (
	"fmt"

	"ufab/internal/apps"
	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/workload"

	blhost "ufab/internal/baseline/host"
)

// Fig1 runs a latency-sensitive victim next to a periodically bursting
// analytics tenant over the best-effort baseline: average utilization
// stays low while the victim's p99.9 RTT inflates by an order of
// magnitude during burst epochs.
func Fig1(o Options) *Report {
	r := NewReport("fig1", "ECS motivation (synthetic)")
	epochs := 8
	epoch := 10 * sim.Millisecond
	if o.Quick {
		epochs = 4
		epoch = 4 * sim.Millisecond
	}
	eng := sim.New()
	st := topo.NewStar(7, topo.Gbps(10), 5*sim.Microsecond)
	bl := blhost.NewFabric(eng, st.Graph, blhost.Config{Scheme: blhost.PWC, Seed: o.Seed}, dataplane.Config{Telemetry: o.fabricTelemetry(r)})
	victimDst := st.Hosts[6]
	// Victim: a steady 200 Mbps small-message stream host0→host6.
	victim := bl.AddFlow(1, 2, st.Hosts[0], victimDst, 0)
	workload.FixedRate(eng, victim.Buffer, 200e6, 50*sim.Microsecond)
	// Interferer: the analytics tenant's workers on five hosts shuffle
	// toward the victim's host simultaneously at the start of every
	// other epoch — the synchronized short burst the hourly average
	// never shows.
	var bursters []*blhost.FlowHandle
	for i := 1; i <= 5; i++ {
		bursters = append(bursters, bl.AddFlow(2, 2, st.Hosts[i], victimDst, 0))
	}
	// Each burster injects ~2% of the epoch at line rate; five arriving
	// at once build a ~1 MB queue that drains for most of a millisecond.
	burstBytes := int64(10e9 * epoch.Seconds() / 8 / 50)
	for e := 0; e < epochs; e++ {
		if e%2 == 1 {
			e := e
			eng.At(sim.Time(e)*epoch, func() {
				for _, b := range bursters {
					b.Buffer.Add(burstBytes)
				}
			})
		}
	}
	var loads []float64
	var inflations []float64
	downlink := st.Graph.Node(victimDst).Out[0]
	rev := st.Graph.Link(downlink).Reverse
	var prevBytes uint64
	for e := 0; e < epochs; e++ {
		eng.RunUntil(sim.Time(e+1) * epoch)
		var s stats.Samples
		for _, v := range victim.Flow.RTT.TakeAll() {
			s.Add(v)
		}
		port := bl.Net.Port(rev)
		bytes := port.TxBytes - prevBytes
		prevBytes = port.TxBytes
		load := float64(bytes*8) / (10e9 * epoch.Seconds()) * 100
		med, p999 := s.P(0.5), s.P(0.999)
		infl := p999 / med
		loads = append(loads, load)
		inflations = append(inflations, infl)
		r.Printf("epoch %d: load %5.1f%%  victim RTT median %7.1f us  p99.9 %8.1f us  (x%.1f)",
			e, load, med, p999, infl)
	}
	avgLoad, maxInfl := 0.0, 0.0
	for i := range loads {
		avgLoad += loads[i] / float64(len(loads))
		if inflations[i] > maxInfl {
			maxInfl = inflations[i]
		}
	}
	r.Printf("average load %.1f%% yet worst-epoch p99.9/median inflation x%.1f (paper: <10%% load, up to 50x)", avgLoad, maxInfl)
	r.Metric("load.avg_pct", avgLoad)
	r.Metric("rtt.max_tail_inflation", maxInfl)
	return r
}

// Fig2 runs the EBS task mix over the best-effort baseline: overall
// utilization is steady and moderate, yet tail task completion time is an
// order of magnitude above the mean because millisecond bursts collide.
func Fig2(o Options) *Report {
	r := NewReport("fig2", "EBS motivation (synthetic)")
	dur := 80 * sim.Millisecond
	if o.Quick {
		dur = 25 * sim.Millisecond
	}
	eng := sim.New()
	st := topo.NewStar(8, topo.Gbps(10), 5*sim.Microsecond)
	net := newBaselineNet(eng, st.Graph, blhost.PWC, o.Seed, o.fabricTelemetry(r))
	// Task sizes scaled for ~27% steady fabric load at 10G (the paper's
	// production hosts run faster NICs at the same fractional load).
	ebs := apps.NewEBS(net, apps.EBSConfig{
		SAHosts:      st.Hosts[:4],
		StorageHosts: st.Hosts[4:],
		SATokens:     20, BATokens: 60, GCTokens: 10,
		SASize:   16 << 10,
		GCPeriod: 4 * sim.Millisecond,
		// Infrequent large GC sweeps: the millisecond-granularity burst
		// that coexists with a steady average load.
		GCReadSize: 256 << 10, GCWriteSize: 128 << 10,
		Seed: o.Seed,
	})
	ebs.Start()
	eng.RunUntil(dur)
	// Network load: mean utilization across storage-host downlinks.
	load := 0.0
	for _, h := range st.Hosts[4:] {
		up := st.Graph.Node(h).Out[0]
		load += net.bl.Net.LinkUtilization(st.Graph.Link(up).Reverse, eng.Now()) * 100 / 4
	}
	mean, p999 := ebs.TotalTCT.Mean(), ebs.TotalTCT.P(0.999)
	r.Printf("network load %.1f%%; total TCT mean %.2f ms, p99.9 %.2f ms (x%.1f)", load, mean, p999, p999/mean)
	r.Printf("paper shape: steady ~27%% load, tail TCT ~10x average")
	r.Metric("load.pct", load)
	r.Metric("tct.tail_over_mean", p999/mean)
	return r
}

// Fig3 reproduces the hash-polarization imbalance: with the same hash
// function at consecutive tiers, an aggregation switch's equivalent
// uplinks settle at a few discrete load levels with some links nearly
// idle; independent per-switch hashing spreads evenly.
func Fig3(o Options) *Report {
	r := NewReport("fig3", "ECMP hash polarization")
	nCores := 24
	flows := 960
	pkts := 60
	if o.Quick {
		flows = 240
		pkts = 20
	}
	run := func(mode dataplane.ECMPMode) (used int, maxMin float64, agg0Share float64) {
		eng := sim.New()
		g := &topo.Graph{}
		// 2 source ToRs → 2 Aggs → 24 cores → 1 dst ToR → dst host.
		src := g.AddNode(topo.Host, topo.TierHost, "src")
		tor := g.AddNode(topo.Switch, topo.TierToR, "ToR")
		g.AddDuplexLink(src, tor, topo.Gbps(100), sim.Microsecond)
		aggs := []topo.NodeID{
			g.AddNode(topo.Switch, topo.TierAgg, "Agg0"),
			g.AddNode(topo.Switch, topo.TierAgg, "Agg1"),
		}
		var aggLinks [][]topo.LinkID
		dstTor := g.AddNode(topo.Switch, topo.TierToR, "dstToR")
		dst := g.AddNode(topo.Host, topo.TierHost, "dst")
		g.AddDuplexLink(dstTor, dst, topo.Gbps(100), sim.Microsecond)
		for _, a := range aggs {
			g.AddDuplexLink(tor, a, topo.Gbps(100), sim.Microsecond)
			var links []topo.LinkID
			for c := 0; c < nCores; c++ {
				core := g.AddNode(topo.Switch, topo.TierCore, fmt.Sprintf("Core%d", c))
				ab, _ := g.AddDuplexLink(a, core, topo.Gbps(100), sim.Microsecond)
				g.AddDuplexLink(core, dstTor, topo.Gbps(100), sim.Microsecond)
				links = append(links, ab)
			}
			aggLinks = append(aggLinks, links)
		}
		// Routing experiment, not a congestion one: buffers deep enough
		// that the synchronized injection does not tail-drop.
		net := dataplane.New(eng, g, dataplane.Config{
			ECMP: mode, HashSeed: uint64(o.Seed), QueueCapBytes: 1 << 30,
			Telemetry: o.fabricTelemetry(r),
		})
		net.SetHandler(dst, dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
		for f := 0; f < flows; f++ {
			for p := 0; p < pkts; p++ {
				net.SendECMP(&dataplane.Packet{
					Kind: dataplane.Data, Size: 1500,
					VMPair: dataplane.VMPair(f + 1), Dst: dst,
				}, src)
			}
		}
		eng.Run()
		// Load distribution over Agg0's uplinks.
		var loads []float64
		total := 0.0
		for _, l := range aggLinks[0] {
			b := float64(net.Port(l).TxBytes)
			loads = append(loads, b)
			total += b
		}
		min, max := -1.0, 0.0
		for _, b := range loads {
			if b > 0 {
				used++
				if min < 0 || b < min {
					min = b
				}
			}
			if b > max {
				max = b
			}
		}
		if min <= 0 {
			min = 1
		}
		return used, max / min, total
	}
	usedP, ratioP, _ := run(dataplane.Polarized)
	usedI, ratioI, _ := run(dataplane.Independent)
	r.Printf("polarized hash:   %2d/%d uplinks carry traffic, max/min load ratio %.1f", usedP, nCores, ratioP)
	r.Printf("independent hash: %2d/%d uplinks carry traffic, max/min load ratio %.1f", usedI, nCores, ratioI)
	r.Printf("paper shape: production Agg's 24 equivalent uplinks converge to ~6 load levels with 10x spread")
	r.Metric("ecmp.polarized_used", float64(usedP))
	r.Metric("ecmp.independent_used", float64(usedI))
	r.Metric("ecmp.polarized_maxmin", ratioP)
	return r
}
