package experiments

import (
	"strings"
	"testing"
)

func quick(t *testing.T, id string) *Report {
	t.Helper()
	e := Find(id)
	if e == nil {
		t.Fatalf("experiment %q not registered", id)
	}
	rep := e.Run(Options{Quick: true, Seed: 1})
	if rep.ID != id {
		t.Fatalf("report id %q", rep.ID)
	}
	if len(rep.Lines) == 0 {
		t.Fatal("empty report")
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"tab3", "tab4", "abl", "flap", "gray", "restart", "churn", "chaoslab",
		"placecmp", "placechurn", "placesweep", "fuzzlab", "reconcile",
		"shardsim"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(All), len(want))
	}
	for _, id := range want {
		if Find(id) == nil {
			t.Errorf("missing %s", id)
		}
	}
	if Find("nope") != nil {
		t.Error("Find invented an experiment")
	}
}

func TestReportString(t *testing.T) {
	r := NewReport("x", "test")
	r.Printf("line %d", 1)
	r.Metric("x.m", 3.5)
	s := r.String()
	if !strings.Contains(s, "line 1") || !strings.Contains(s, "x.m = 3.5") {
		t.Fatalf("String() = %q", s)
	}
	if len(r.MetricNames()) != 1 {
		t.Error("MetricNames wrong")
	}
}

func TestFig3Shape(t *testing.T) {
	rep := quick(t, "fig3")
	if rep.Metrics()["ecmp.polarized_used"] >= rep.Metrics()["ecmp.independent_used"] {
		t.Errorf("polarization must concentrate load: %v vs %v",
			rep.Metrics()["ecmp.polarized_used"], rep.Metrics()["ecmp.independent_used"])
	}
	if rep.Metrics()["ecmp.independent_used"] != 24 {
		t.Errorf("independent hash used %v/24 uplinks", rep.Metrics()["ecmp.independent_used"])
	}
}

func TestFig1Shape(t *testing.T) {
	rep := quick(t, "fig1")
	if rep.Metrics()["load.avg_pct"] > 15 {
		t.Errorf("average load %v%%, want the low-utilization regime", rep.Metrics()["load.avg_pct"])
	}
	if rep.Metrics()["rtt.max_tail_inflation"] < 2 {
		t.Errorf("tail inflation %vx, want burst epochs to inflate the tail", rep.Metrics()["rtt.max_tail_inflation"])
	}
}

func TestFig2Shape(t *testing.T) {
	rep := quick(t, "fig2")
	if rep.Metrics()["load.pct"] < 10 || rep.Metrics()["load.pct"] > 45 {
		t.Errorf("load %v%%, want the paper's moderate-steady regime", rep.Metrics()["load.pct"])
	}
	if rep.Metrics()["tct.tail_over_mean"] < 1.3 {
		t.Errorf("TCT tail/mean %v, want visible tail inflation", rep.Metrics()["tct.tail_over_mean"])
	}
}

func TestFig4Shape(t *testing.T) {
	rep := quick(t, "fig4")
	// At the largest degree, μFAB's tail must be well below PWC's.
	pwc := rep.Metrics()["pwc.tail_us.10"]
	ufab := rep.Metrics()["ufab.tail_us.10"]
	if ufab >= pwc {
		t.Errorf("uFAB tail %v ≥ PWC tail %v at 10-to-1", ufab, pwc)
	}
}

func TestFig5Shape(t *testing.T) {
	rep := quick(t, "fig5")
	if rep.Metrics()["ufab.satisfied"] != 4 {
		t.Errorf("uFAB satisfied %v/4 guarantees", rep.Metrics()["ufab.satisfied"])
	}
	if rep.Metrics()["pwc200.satisfied"] >= 4 {
		t.Errorf("PWC(200us) satisfied %v/4 — should break a guarantee", rep.Metrics()["pwc200.satisfied"])
	}
	// The small flowlet gap oscillates; μFAB settles after ≤2 switches.
	if rep.Metrics()["pwc36.switches"] < 10*rep.Metrics()["ufab.switches"] {
		t.Errorf("oscillation contrast missing: pwc36=%v ufab=%v switches",
			rep.Metrics()["pwc36.switches"], rep.Metrics()["ufab.switches"])
	}
}

func TestFig11Shape(t *testing.T) {
	rep := quick(t, "fig11")
	ufab := rep.Metrics()["ufab.dissat_pct"]
	pwc := rep.Metrics()["pwc.dissat_pct"]
	if ufab >= pwc {
		t.Errorf("uFAB dissatisfaction %v%% ≥ PWC %v%%", ufab, pwc)
	}
	if ufab > 12 {
		t.Errorf("uFAB dissatisfaction %v%%, want near zero", ufab)
	}
	// ES keeps guarantees by building queues: its max queue dwarfs μFAB's.
	if rep.Metrics()["es.maxq_kb"] < 5*rep.Metrics()["ufab.maxq_kb"] {
		t.Errorf("ES queue %v KB vs uFAB %v KB — deep-queue contrast missing",
			rep.Metrics()["es.maxq_kb"], rep.Metrics()["ufab.maxq_kb"])
	}
}

func TestFig12Shape(t *testing.T) {
	rep := quick(t, "fig12")
	// μFAB's max RTT must be below μFAB′'s (the burst bound at work)
	// and far below PWC's.
	if rep.Metrics()["ufab.rtt_max_us"] > rep.Metrics()["ufabp.rtt_max_us"] {
		t.Errorf("uFAB max RTT %v > uFAB' %v", rep.Metrics()["ufab.rtt_max_us"], rep.Metrics()["ufabp.rtt_max_us"])
	}
	if rep.Metrics()["ufab.rtt_max_us"] >= rep.Metrics()["pwc.rtt_max_us"] {
		t.Errorf("uFAB max RTT %v ≥ PWC %v", rep.Metrics()["ufab.rtt_max_us"], rep.Metrics()["pwc.rtt_max_us"])
	}
}

func TestFig15Shape(t *testing.T) {
	rep := quick(t, "fig15")
	if rep.Metrics()["guarantee.satisfied"] < 6 {
		t.Errorf("only %v/7 guarantees kept around the failure", rep.Metrics()["guarantee.satisfied"])
	}
	if rep.Metrics()["faults.migrations"] == 0 {
		t.Error("no migrations after the core failure")
	}
	// Probing overhead stays under the analytic bound and flattens.
	bound := rep.Metrics()["probe.overhead_bound_pct"]
	for _, k := range []string{"probe.overhead_pct.1", "probe.overhead_pct.10", "probe.overhead_pct.100"} {
		if rep.Metrics()[k] > bound*1.5 {
			t.Errorf("%s = %v%% exceeds bound %v%%", k, rep.Metrics()[k], bound)
		}
	}
}

func TestFig19Shape(t *testing.T) {
	rep := quick(t, "fig19")
	rtts := rep.Metrics()["reaction.rtts"]
	if rtts < 0 {
		t.Fatal("incumbent never reacted")
	}
	// Primal control reacts within a handful of RTTs (theory: ~2; allow
	// measurement slack for meter quantization and probe cadence).
	if rtts > 8 {
		t.Errorf("reaction = %.1f baseRTTs, want a few", rtts)
	}
}

func TestFig20Shape(t *testing.T) {
	rep := quick(t, "fig20")
	if rep.Metrics()["conv.us"] < 0 {
		t.Fatal("no convergence despite async responses")
	}
	if rep.Metrics()["rtt.spread_us"] <= 0 {
		t.Error("no response asynchrony measured")
	}
}

func TestTablesShape(t *testing.T) {
	t3 := quick(t, "tab3")
	if t3.Metrics()["fpga.total_bram_pct"] < 10 || t3.Metrics()["fpga.total_bram_pct"] > 25 {
		t.Errorf("tab3 BRAM = %v%%", t3.Metrics()["fpga.total_bram_pct"])
	}
	t4 := quick(t, "tab4")
	if !(t4.Metrics()["switch.sram_pct.20k"] < t4.Metrics()["switch.sram_pct.40k"] &&
		t4.Metrics()["switch.sram_pct.40k"] < t4.Metrics()["switch.sram_pct.80k"]) {
		t.Error("tab4 SRAM not monotone in VM-pairs")
	}
}

func TestFig13Shape(t *testing.T) {
	rep := quick(t, "fig13")
	// Under high load, μFAB's QPS beats the baselines'; the
	// interference-free Ideal beats everyone.
	if rep.Metrics()["high.ufab.qps"] <= rep.Metrics()["high.pwc.qps"] {
		t.Errorf("uFAB QPS %v ≤ PWC %v under high load",
			rep.Metrics()["high.ufab.qps"], rep.Metrics()["high.pwc.qps"])
	}
	if rep.Metrics()["high.ideal.qps"] < rep.Metrics()["high.ufab.qps"] {
		t.Errorf("Ideal QPS %v below uFAB %v", rep.Metrics()["high.ideal.qps"], rep.Metrics()["high.ufab.qps"])
	}
	if rep.Metrics()["high.ideal.qct_p99_us"] >= rep.Metrics()["high.pwc.qct_p99_us"] {
		t.Error("Ideal tail QCT not below PWC's")
	}
}

func TestFig16Shape(t *testing.T) {
	rep := quick(t, "fig16")
	// μFAB bounds the tail RTT under the on/off churn; PWC does not.
	if rep.Metrics()["ufab.rtt_max_us"] >= rep.Metrics()["pwc.rtt_max_us"] {
		t.Errorf("uFAB max RTT %v ≥ PWC %v", rep.Metrics()["ufab.rtt_max_us"], rep.Metrics()["pwc.rtt_max_us"])
	}
	// All schemes reach high utilization during unlimited phases.
	for _, k := range []string{"ufab.unlimited_gbps", "pwc.unlimited_gbps", "es.unlimited_gbps"} {
		if rep.Metrics()[k] < 40 {
			t.Errorf("%s = %v G, want high utilization", k, rep.Metrics()[k])
		}
	}
}

func TestFig18Shape(t *testing.T) {
	rep := quick(t, "fig18")
	// Convergence with the recommended [1,10] freeze window at 70% load.
	if v, ok := rep.Metrics()["freeze10.70%.conv_ms"]; !ok || v < 0 {
		t.Errorf("freeze [1,10] at 70%% load did not converge: %v", v)
	}
	// Self-clocked probing converges.
	if _, ok := rep.Metrics()["probe.self-clocking.conv_us"]; !ok {
		t.Error("self-clocking probing did not converge")
	}
}

func TestFig14Shape(t *testing.T) {
	rep := quick(t, "fig14")
	// Under overload, μFAB must keep the 3-way replication bounded while
	// the guarantee-agnostic schemes let it explode.
	ufabBA := rep.Metrics()["overload."+metricKey(schemeUFAB, "ba_p99_ms", -1)]
	pwcBA := rep.Metrics()["overload."+metricKey(schemePWC, "ba_p99_ms", -1)]
	if ufabBA >= pwcBA {
		t.Errorf("uFAB BA p99 %v ms ≥ PWC %v ms under overload", ufabBA, pwcBA)
	}
	// At the paper cadence every scheme's totals stay within the bound.
	if v := rep.Metrics()["paper."+metricKey(schemeUFAB, "total_p99_ms", -1)]; v > 10 {
		t.Errorf("uFAB paper-cadence total p99 %v ms exceeds the 10 ms bound", v)
	}
}

func TestAblationShape(t *testing.T) {
	rep := quick(t, "abl")
	if rep.Metrics()["full.rtt_max_us"] >= rep.Metrics()["nostage.rtt_max_us"] {
		t.Errorf("two-stage admission did not reduce the incast tail: %v vs %v",
			rep.Metrics()["full.rtt_max_us"], rep.Metrics()["nostage.rtt_max_us"])
	}
	if rep.Metrics()["gp.rate_gbps"] < 1.3*rep.Metrics()["static.rate_gbps"] {
		t.Errorf("GP did not reclaim the idle pair's tokens: %v vs %v",
			rep.Metrics()["gp.rate_gbps"], rep.Metrics()["static.rate_gbps"])
	}
	if rep.Metrics()["migration.worst_gbps"] <= rep.Metrics()["pinned.worst_gbps"] {
		t.Errorf("migration did not rescue the worst flow: %v vs %v",
			rep.Metrics()["migration.worst_gbps"], rep.Metrics()["pinned.worst_gbps"])
	}
	// Probing overhead grows as L_w shrinks.
	if rep.Metrics()["lw1024.overhead_pct"] <= rep.Metrics()["lw16384.overhead_pct"] {
		t.Error("L_w sweep shows no overhead gradient")
	}
}

func TestFaultFlapShape(t *testing.T) {
	rep := quick(t, "flap")
	if rep.Metrics()["guarantee.satisfied"] < 3 {
		t.Errorf("only %v/4 incast guarantees survived the flaps", rep.Metrics()["guarantee.satisfied"])
	}
	if rep.Metrics()["faults.migrations"] == 0 {
		t.Error("no migrations despite a flapping core path")
	}
	if rep.Metrics()["chaos.flaps_applied"] == 0 {
		t.Error("no flap events applied")
	}
	// The intra-ToR control tenant never crosses the flapped link.
	if rep.Metrics()["ctrl.gbps"] < 5 {
		t.Errorf("control tenant collapsed to %v G", rep.Metrics()["ctrl.gbps"])
	}
}

func TestFaultGrayShape(t *testing.T) {
	rep := quick(t, "gray")
	if rep.Metrics()["chaos.degrades_applied"] != 1 {
		t.Errorf("degrades_applied = %v", rep.Metrics()["chaos.degrades_applied"])
	}
	if rep.Metrics()["faults.drops"] == 0 {
		t.Error("lossy gray link dropped nothing")
	}
	if rep.Metrics()["faults.corrupted_probes"] == 0 {
		t.Error("probe corruption filter never fired")
	}
	if rep.Metrics()["ctrl.gbps"] < 5 {
		t.Errorf("control tenant collapsed to %v G", rep.Metrics()["ctrl.gbps"])
	}
}

func TestFaultRestartShape(t *testing.T) {
	rep := quick(t, "restart")
	if rep.Metrics()["faults.core_restarts"] != 4 {
		t.Errorf("restarts = %v, want 4", rep.Metrics()["faults.core_restarts"])
	}
	if rep.Metrics()["phi.before"] <= 0 {
		t.Error("Φ register empty before the restart")
	}
	if rep.Metrics()["phi.after_wipe"] != 0 {
		t.Errorf("Φ register %v right after the wipe, want 0", rep.Metrics()["phi.after_wipe"])
	}
	// Re-registration must rebuild Φ to its pre-restart value — not zero
	// (no rebuild) and not above it (double-counting).
	if rep.Metrics()["phi.rebuilt"] <= 0 || rep.Metrics()["phi.rebuilt"] > rep.Metrics()["phi.before"] {
		t.Errorf("Φ rebuilt to %v (before: %v)", rep.Metrics()["phi.rebuilt"], rep.Metrics()["phi.before"])
	}
	if rep.Metrics()["guarantee.satisfied"] < 3 {
		t.Errorf("only %v/4 guarantees survived the restarts", rep.Metrics()["guarantee.satisfied"])
	}
}

func TestFaultChurnShape(t *testing.T) {
	rep := quick(t, "churn")
	if rep.Metrics()["chaos.arrivals"] == 0 || rep.Metrics()["chaos.arrivals"] != rep.Metrics()["chaos.departures"] {
		t.Errorf("churn unbalanced: %v arrivals, %v departures",
			rep.Metrics()["chaos.arrivals"], rep.Metrics()["chaos.departures"])
	}
	if rep.Metrics()["chaos.rejected"] != 2 {
		t.Errorf("rejected = %v, want the 2 invalid events", rep.Metrics()["chaos.rejected"])
	}
	if rep.Metrics()["guarantee.satisfied"] < 3 {
		t.Errorf("stable guarantees lost under churn: %v/4", rep.Metrics()["guarantee.satisfied"])
	}
	// After the storm drains, only the 4 stable incast pairs (20 tokens
	// each at 2G / 100M BU) may remain registered on S8's downlink.
	if rep.Metrics()["phi.residue"] > 81 {
		t.Errorf("Φ residue %v after churn, want the stable tenants only", rep.Metrics()["phi.residue"])
	}
}

func TestChaosLabScenarioOption(t *testing.T) {
	// The built-in sampler applies every event kind.
	rep := quick(t, "chaoslab")
	if rep.Metrics()["chaos.events_applied"] < 9 {
		t.Errorf("built-in sampler applied %v events", rep.Metrics()["chaos.events_applied"])
	}
	// A user scenario replaces the built-in one.
	custom := `{"name":"custom","events":[{"at_ps":1000000,"kind":"node-crash","node":0}]}`
	rep2 := ChaosLab(Options{Quick: true, Seed: 1, Scenario: custom})
	if rep2.Metrics()["chaos.events_applied"] != 1 {
		t.Errorf("custom scenario applied %v events, want 1", rep2.Metrics()["chaos.events_applied"])
	}
	// A malformed scenario is reported, not fatal.
	rep3 := ChaosLab(Options{Quick: true, Seed: 1, Scenario: "{nope"})
	if rep3.Metrics()["chaos.events_applied"] != 0 {
		t.Error("malformed scenario was executed")
	}
}

func TestDeterminism(t *testing.T) {
	a := Find("fig4").Run(Options{Quick: true, Seed: 9})
	b := Find("fig4").Run(Options{Quick: true, Seed: 9})
	am, bm := a.Metrics(), b.Metrics()
	for k, v := range am {
		if bm[k] != v {
			t.Fatalf("metric %s differs across identical runs: %v vs %v", k, v, bm[k])
		}
	}
}
