package experiments

// The sharded-core exercise: a pod-partitioned Clos (folded FatTree)
// carrying per-host Poisson message workloads whose drivers schedule
// inside their host's shard, so the parallel-in-time core actually runs
// the pods concurrently instead of serializing on coordinator barriers.
// The experiment's metrics are defined to be bit-identical for every
// Options.Shards value — `check -shards N` and TestShardIdentity hold it
// to that.

import (
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/workload"
)

// ShardSim runs a cross-pod permutation message workload on μFAB over a
// pod-sharded Clos and reports throughput, slowdown and overhead.
func ShardSim(o Options) *Report {
	r := NewReport("shardsim", "sharded parallel-in-time core: cross-pod workload identity")
	pods := 4
	dur := 8 * sim.Millisecond
	if o.Quick {
		pods = 2
		dur = 3 * sim.Millisecond
	}
	cl := topo.NewClos(topo.ClosConfig{Pods: pods, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4,
		HostsPerToR: 4, LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond})
	sys := newSystem(schemeUFAB, o, cl.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))

	type pairState struct {
		fh   *flowHandle
		msgs *workload.Messages
		// slow is written only from the source host's shard (completion
		// callbacks run there); merged in pair order after the horizon.
		slow stats.Samples
	}
	dist := workload.WebSearch()
	hosts := cl.Hosts
	// Destinations half the host list away: every flow leaves its pod, so
	// all traffic crosses shard boundaries through the lookahead window.
	stride := len(hosts) / 2
	const guarantee = 1e9
	const load = 2e9
	pairs := make([]*pairState, 0, len(hosts))
	for i, src := range hosts {
		dst := hosts[(i+stride)%len(hosts)]
		msgs, fh := sys.addMessageFlow(int32(i+1), guarantee, src, dst)
		msgs.Sharing = true
		ps := &pairState{fh: fh, msgs: msgs}
		pairs = append(pairs, ps)
		ps.msgs.Observe(func(m workload.Message, fct sim.Duration) {
			ps.slow.Add(stats.Slowdown(fct, int(m.Size), guarantee))
		})
		// The workload driver lives in the host's shard: arrivals are
		// simulated events of that shard, not coordinator barriers.
		sched := sys.hostScheduler(src)
		stop := workload.Poisson(sched, newRand(o.Seed+int64(i)*7919), dist, load,
			func(size int64, now sim.Time) { ps.msgs.Send(size, now) })
		sched.At(dur*3/4, stop)
	}
	stopSampling := sys.startSampling(500 * sim.Microsecond)
	sys.eng.RunUntil(dur)
	stopSampling()
	sys.mergeTenantFCT()

	var slow stats.Samples
	var completed, delivered int64
	for _, ps := range pairs {
		slow.AddAll(&ps.slow)
		completed += ps.msgs.Completed
		delivered += ps.fh.delivered()
	}
	net := sys.net()
	shards := net.Shards()
	r.Printf("clos pods=%d hosts=%d logical shards=%d", pods, len(hosts), shards)
	r.Printf("messages completed %d | delivered %.1f MB | slowdown mean %.2f p99 %.2f | probe overhead %.3f%% | drops %d",
		completed, float64(delivered)/1e6, slow.Mean(), slow.P(0.99),
		sys.uf.ProbeOverhead()*100, net.TotalDrops)
	r.Metric("shardsim.logical_shards", float64(shards))
	r.Metric("shardsim.completed", float64(completed))
	r.Metric("shardsim.delivered_mb", float64(delivered)/1e6)
	r.Metric("shardsim.slowdown_mean", slow.Mean())
	r.Metric("shardsim.slowdown_p99", slow.P(0.99))
	r.Metric("shardsim.probe_overhead_pct", sys.uf.ProbeOverhead()*100)
	r.Metric("shardsim.drops", float64(net.TotalDrops))
	return r
}
