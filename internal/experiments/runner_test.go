package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// fastIDs is a representative, cheap subset of the registry used by the
// race-enabled determinism test (the full evaluation is covered by
// `ufabsim check` in CI, where the race detector's ~10x slowdown does not
// apply). It spans motivation figures, comparative incast runs, control
// laws, both resource-model tables, and two fault-injection experiments
// (link flaps and tenant churn) so chaos scheduling stays `-jobs`-proof,
// plus the control-plane suite's policy comparison, admission-checked
// churn and reconciler convergence so placement decisions do too.
var fastIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig12", "fig19", "tab3", "tab4", "flap", "churn", "placecmp", "placechurn", "reconcile"}

// TestParallelRunnerDeterminism is the CI gate for the tentpole claim: a
// parallel batch must produce Reports identical — field for field and
// byte for byte — to a sequential one, across several seeds.
func TestParallelRunnerDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		opts := Options{Quick: true, Seed: seed}
		jobs, err := ExpandIDs(fastIDs, opts, 1)
		if err != nil {
			t.Fatal(err)
		}
		seq := (&Runner{Jobs: 1}).Run(jobs)
		par := (&Runner{Jobs: 8}).Run(jobs)
		if len(seq) != len(par) {
			t.Fatalf("seed %d: %d sequential vs %d parallel results", seed, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].Err != nil || par[i].Err != nil {
				t.Fatalf("seed %d job %d: errs %v / %v", seed, i, seq[i].Err, par[i].Err)
			}
			a, b := seq[i].Report, par[i].Report
			if as, bs := a.String(), b.String(); as != bs {
				t.Errorf("seed %d %s: rendered reports differ:\n--- sequential\n%s\n--- parallel\n%s",
					seed, a.ID, as, bs)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("seed %d %s: report structures differ", seed, a.ID)
			}
		}
	}
}

// telemetryIDs keeps the instrumented determinism gate cheap while still
// spanning a baseline comparison (fig4), a multi-fabric experiment whose
// agents reattach to shared counter names (fig15), and a chaos run whose
// fault events land in the flight recorder (flap).
var telemetryIDs = []string{"fig4", "fig15", "flap"}

// snapshotAndTrace renders a run's full registry snapshot and flight
// recorder as bytes, the exact forms `ufabsim -metrics` and `ufabsim
// trace` export (the trace is the canonical merge across the run's
// per-shard recorders, which degenerates to the base recorder's stream
// for single-recorder runs).
func snapshotAndTrace(t *testing.T, r *Report) (string, string) {
	t.Helper()
	var snap, trace strings.Builder
	r.Reg.Snapshot().WriteJSON(&snap)
	if r.Reg.Recorder() == nil {
		t.Fatalf("%s: no flight recorder attached", r.ID)
	}
	if err := r.Reg.WriteTraceJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	return snap.String(), trace.String()
}

// TestTelemetryParallelDeterminism extends the runner gate to the
// instrumented path: with the registry and flight recorder attached, the
// exported snapshot JSON and trace JSONL must be bit-identical between a
// sequential and a parallel batch, across several seeds.
func TestTelemetryParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		opts := Options{Quick: true, Seed: seed, Telemetry: true}
		jobs, err := ExpandIDs(telemetryIDs, opts, 1)
		if err != nil {
			t.Fatal(err)
		}
		seq := (&Runner{Jobs: 1}).Run(jobs)
		par := (&Runner{Jobs: 8}).Run(jobs)
		for i := range seq {
			if seq[i].Err != nil || par[i].Err != nil {
				t.Fatalf("seed %d job %d: errs %v / %v", seed, i, seq[i].Err, par[i].Err)
			}
			id := seq[i].Report.ID
			aSnap, aTrace := snapshotAndTrace(t, seq[i].Report)
			bSnap, bTrace := snapshotAndTrace(t, par[i].Report)
			if aSnap != bSnap {
				t.Errorf("seed %d %s: registry snapshots differ between -jobs 1 and -jobs 8", seed, id)
			}
			if aTrace != bTrace {
				t.Errorf("seed %d %s: flight-recorder traces differ between -jobs 1 and -jobs 8", seed, id)
			}
			if aTrace == "" {
				t.Errorf("seed %d %s: empty trace — recorder saw no events", seed, id)
			}
		}
	}
}

// TestTelemetryDoesNotChangeResults guards the zero-feedback contract:
// attaching the registry and recorder must leave every headline metric
// exactly as in an uninstrumented run. fig15 rebuilds fabrics against one
// registry (the counter-reuse trap) and flap reads the fault-counter
// accessors, so both accessor paths are exercised.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	for _, id := range []string{"fig15", "flap"} {
		e := Find(id)
		if e == nil {
			t.Fatalf("unknown experiment %q", id)
		}
		plain := e.Run(Options{Quick: true, Seed: 1}).Metrics()
		inst := e.Run(Options{Quick: true, Seed: 1, Telemetry: true}).Metrics()
		if !reflect.DeepEqual(plain, inst) {
			t.Errorf("%s: metrics changed under telemetry:\noff: %v\non:  %v", id, plain, inst)
		}
	}
}

func TestRunnerResultsInJobOrder(t *testing.T) {
	// Jobs with deliberately inverted costs: if results were ordered by
	// completion, the slow first job would come last.
	mk := func(id string, d time.Duration) *Entry {
		return &Entry{ID: id, Title: id, Run: func(o Options) *Report {
			time.Sleep(d)
			return NewReport(id, id)
		}}
	}
	jobs := []Job{
		{Entry: mk("slow", 50*time.Millisecond)},
		{Entry: mk("mid", 10*time.Millisecond)},
		{Entry: mk("fast", 0)},
	}
	results := (&Runner{Jobs: 3}).Run(jobs)
	for i, want := range []string{"slow", "mid", "fast"} {
		if results[i].Report == nil || results[i].Report.ID != want {
			t.Fatalf("result %d = %+v, want report %q", i, results[i], want)
		}
	}
}

func TestRunnerTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	stuck := &Entry{ID: "stuck", Title: "never finishes", Run: func(o Options) *Report {
		<-block
		return NewReport("stuck", "late")
	}}
	ok := &Entry{ID: "ok", Title: "fine", Run: func(o Options) *Report {
		return NewReport("ok", "fine")
	}}
	r := &Runner{Jobs: 2, Timeout: 20 * time.Millisecond}
	results := r.Run([]Job{{Entry: stuck}, {Entry: ok}})
	if !results[0].TimedOut || results[0].Err == nil || results[0].Report != nil {
		t.Fatalf("stuck run not reported as timeout: %+v", results[0])
	}
	if !strings.Contains(results[0].Err.Error(), "timeout") {
		t.Errorf("timeout error = %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Report == nil {
		t.Fatalf("healthy run was collateral damage: %+v", results[1])
	}
}

func TestRunnerPanicIsolation(t *testing.T) {
	boom := &Entry{ID: "boom", Title: "panics", Run: func(o Options) *Report {
		panic("synthetic failure")
	}}
	ok := &Entry{ID: "ok", Title: "fine", Run: func(o Options) *Report {
		return NewReport("ok", "fine")
	}}
	results := (&Runner{Jobs: 1}).Run([]Job{{Entry: boom}, {Entry: ok}, {Entry: boom}})
	for _, i := range []int{0, 2} {
		if results[i].Err == nil || !strings.Contains(results[i].Err.Error(), "panicked") {
			t.Fatalf("result %d: panic not captured: %+v", i, results[i])
		}
	}
	if results[1].Err != nil || results[1].Report == nil {
		t.Fatalf("panic killed an unrelated run: %+v", results[1])
	}
}

func TestExpandIDs(t *testing.T) {
	jobs, err := ExpandIDs([]string{"fig1", "tab3"}, Options{Quick: true, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("len(jobs) = %d, want 6", len(jobs))
	}
	// Experiment-major order, seeds counting up from the base seed.
	for i, want := range []struct {
		id   string
		seed int64
	}{{"fig1", 5}, {"fig1", 6}, {"fig1", 7}, {"tab3", 5}, {"tab3", 6}, {"tab3", 7}} {
		if jobs[i].Entry.ID != want.id || jobs[i].Opts.Seed != want.seed {
			t.Errorf("job %d = (%s, seed %d), want (%s, seed %d)",
				i, jobs[i].Entry.ID, jobs[i].Opts.Seed, want.id, want.seed)
		}
		if !jobs[i].Opts.Quick {
			t.Errorf("job %d lost Quick", i)
		}
	}
	if _, err := ExpandIDs([]string{"nope"}, Options{}, 1); err == nil {
		t.Fatal("unknown id not rejected")
	}
}

func TestAllIDsMatchesRegistry(t *testing.T) {
	ids := AllIDs()
	if len(ids) != len(All) {
		t.Fatalf("AllIDs len %d, registry %d", len(ids), len(All))
	}
	for i := range ids {
		if ids[i] != All[i].ID {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], All[i].ID)
		}
	}
}
