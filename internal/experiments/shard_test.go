package experiments

import "testing"

// shardIdentityIDs are the experiments held to cross-mode shard
// identity under the race detector. shardsim is the adversarial case —
// its workload drivers schedule inside host shards, so every arrival
// crosses the conservative-lookahead machinery — and flap adds chaos
// fault injection on top of the partitioned dataplane.
var shardIdentityIDs = []string{"shardsim", "flap"}

// runShardMode executes one experiment fully instrumented (registry,
// flight recorder, auditor) under the given worker count and returns
// the three exported byte streams: rendered report, registry snapshot
// JSON, and the canonically merged trace JSONL.
func runShardMode(t *testing.T, id string, seed int64, shards int) (string, string, string) {
	t.Helper()
	e := Find(id)
	if e == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	r := e.Run(Options{Quick: true, Seed: seed, Telemetry: true, Audit: true, Shards: shards})
	snap, trace := snapshotAndTrace(t, r)
	return r.String(), snap, trace
}

// TestShardIdentity is the CI gate for the sharded-core claim: for any
// worker count, a partitioned run must reproduce the sequential
// engine's output byte for byte — rendered report, metrics snapshot,
// and merged event trace — across several seeds. Run under -race it
// doubles as the data-race gate for the cross-shard handoff path.
func TestShardIdentity(t *testing.T) {
	for _, id := range shardIdentityIDs {
		for _, seed := range []int64{1, 2, 3} {
			refRep, refSnap, refTrace := runShardMode(t, id, seed, 0)
			if refTrace == "" {
				t.Fatalf("%s seed %d: empty reference trace — recorder saw no events", id, seed)
			}
			for _, shards := range []int{1, 4} {
				rep, snap, trace := runShardMode(t, id, seed, shards)
				if rep != refRep {
					t.Errorf("%s seed %d: report differs between sequential and -shards %d:\n--- sequential\n%s\n--- shards %d\n%s",
						id, seed, shards, refRep, shards, rep)
				}
				if snap != refSnap {
					t.Errorf("%s seed %d: registry snapshot differs between sequential and -shards %d", id, seed, shards)
				}
				if trace != refTrace {
					t.Errorf("%s seed %d: merged trace differs between sequential and -shards %d", id, seed, shards)
				}
			}
		}
	}
}
