package experiments

// The control-plane suite: tenant admission control, VM placement and
// large-scale churn built on internal/placement. Where the fault suite
// injects damage into a fixed tenant set, these experiments exercise the
// path by which tenants come to exist at all — hose-model subscription
// accounting, per-link headroom checks, and placement policy — and pin
// the resulting accept ratios, decision latencies and subscription peaks
// in golden_metrics.json.

import (
	"fmt"

	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

func init() {
	All = append(All,
		Entry{ID: "placecmp", Title: "control plane: placement-policy comparison under open-loop churn (3-tier Clos)", Run: PlaceCompare},
		Entry{ID: "placechurn", Title: "control plane: admission-checked churn materialized on the testbed fabric", Run: PlaceChurn},
		Entry{ID: "placesweep", Title: "control plane: oversubscription-factor sweep (accept ratio vs committed risk)", Run: PlaceSweep},
	)
}

// placeClos is the control-plane suite's large fabric: a 3-tier Clos with
// 32 hosts in 8 racks (the same shape the ledger property test churns).
func placeClos() *topo.Clos {
	return topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
}

// PlaceCompare drives the identical open-loop request sequence through
// each placement policy (ledger-only: admission decisions without
// materialized traffic) and compares accept ratio, bottleneck
// subscription and time-to-admit. The fleet is sized so the arrival
// process contends for both host slots and link headroom — the regime
// where policy choice matters.
func PlaceCompare(o Options) *Report {
	r := NewReport("placecmp", "placement-policy comparison")
	arrivals := 2000
	if o.Quick {
		arrivals = 400
	}
	cc := placement.ChurnConfig{
		Arrivals:         arrivals,
		MeanInterarrival: 10 * sim.Microsecond,
		MeanHold:         400 * sim.Microsecond,
		Guarantees:       []float64{5e8, 1e9, 2e9},
		Seed:             o.Seed,
	}
	for _, name := range []string{"first-fit", "spread", "subscription-aware"} {
		eng := sim.New()
		cl := placeClos()
		ctl := placement.NewController(eng, cl.Graph, nil, placement.Config{
			Policy:       placement.PolicyByName(name),
			SlotsPerHost: 4,
		})
		st := placement.Churn(ctl, cc)
		eng.Run()
		st.Finish(ctl)
		ok := 1.0
		if err := ctl.Ledger().Verify(); err != nil {
			ok = 0
			r.Printf("%s: ledger verify FAILED: %v", name, err)
		}
		r.Printf("%-18s accept %5.1f%%  peak-sub %.3f  peak-tenants %3d  admit %6.1f µs  (headroom %d, placement %d)",
			name, 100*st.AcceptRatio(), st.PeakMaxSubscription, st.PeakTenants,
			st.TimeToAdmit.Mean(), st.RejectedBy["headroom"], st.RejectedBy["placement"])
		r.Metric(name+".accept_ratio", st.AcceptRatio())
		r.Metric(name+".peak_subscription", st.PeakMaxSubscription)
		r.Metric(name+".admit_us", st.TimeToAdmit.Mean())
		r.Metric(name+".ledger_ok", ok)
	}
	return r
}

// PlaceChurn runs admission-checked churn against a real fabric: every
// tenant — two standing 2G tenants, an open-loop churn population, and a
// chaos scenario's arrivals — is admitted through the controller, which
// materializes accepted specs as VFs and VM-pairs on the testbed. The
// controller's ledger is wired into the fabric's auditor (the
// ledger_bound invariant: realized Φ_l never exceeds the committed
// subscription), and one deliberately oversubscribed chaos arrival must
// bounce off the admission gate instead of reaching the data plane.
func PlaceChurn(o Options) *Report {
	r := NewReport("placechurn", "admission-checked churn on the testbed")
	dur := 80 * sim.Millisecond
	arrivals := 60
	cleanup := 5 * sim.Millisecond
	if o.Quick {
		dur = 26 * sim.Millisecond
		arrivals = 24
		cleanup = 3 * sim.Millisecond
	}
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
	cfg.Core.CleanupPeriod = cleanup
	uf := vfabric.New(eng, tb.Graph, cfg)
	uf.StartCoreCleanup()
	ctl := placement.NewController(eng, tb.Graph, uf, placement.Config{
		Policy:    placement.Spread{},
		Telemetry: o.fabricTelemetry(r),
	})
	// Checked-admit mode: the auditor can now hold realized subscription
	// against the control plane's commitments.
	uf.Cfg.Ledger = ctl.Ledger()

	// Two standing tenants submitted through the same controller as
	// everything else; their guarantees must hold through the churn.
	var standing []placement.Decision
	for id := int32(1); id <= 2; id++ {
		ctl.Submit(placement.Request{
			ID: id, GuaranteeBps: 2e9, VMs: 2, WeightClass: weightClass(2e9),
		}, func(d placement.Decision) { standing = append(standing, d) })
	}

	// Open-loop churn: short-lived tenants with finite bursts.
	st := placement.Churn(ctl, placement.ChurnConfig{
		Arrivals:         arrivals,
		MeanInterarrival: dur / sim.Duration(arrivals),
		MeanHold:         dur / 8,
		Guarantees:       []float64{5e8, 1e9},
		VMsMin:           2,
		VMsMax:           3,
		BacklogBytes:     256 << 10,
		FirstID:          100,
		Seed:             o.Seed,
	})

	// A chaos scenario routed through the admission gate: one valid
	// explicitly-placed arrival (admitted, then departs) and one 20G hose
	// no testbed link can honor — admission must reject it before the
	// data plane ever sees it.
	sc := chaos.New("admission-gated churn").
		ArriveTenant(dur/4, chaos.TenantSpec{
			VF: 300, GuaranteeBps: 1e9, WeightClass: weightClass(1e9),
			Pairs: []chaos.PairSpec{{Src: tb.Servers[4], Dst: tb.Servers[6], BacklogBytes: 1 << 20}},
		}).
		DepartTenant(dur/2, 300).
		ArriveTenant(dur/3, chaos.TenantSpec{
			VF: 301, GuaranteeBps: 20e9,
			Pairs: []chaos.PairSpec{{Src: tb.Servers[0], Dst: tb.Servers[7]}},
		})
	inj := uf.ApplyScenario(sc).WithAdmission(ctl)

	stop := uf.StartSampling(250 * sim.Microsecond)
	eng.RunUntil(dur)
	stop()
	uf.SampleRates()
	st.Finish(ctl)

	for i, d := range standing {
		if !d.Accepted {
			r.Printf("standing tenant %d REJECTED: %s", i+1, d.Reason)
		}
	}
	// Final-stretch rate of the standing tenants' pairs (one chain pair
	// per 2-VM tenant).
	for id := int32(1); id <= 2; id++ {
		rate := 0.0
		for _, fl := range uf.Flows {
			if fl.VF == uf.VFs[id] {
				rate += fl.Rate(sim.Time(dur-dur/10), sim.Time(dur))
			}
		}
		r.Printf("standing VF-%d (2G hose): final rate %5.2f G", id, rate/1e9)
		r.Metric(fmt.Sprintf("standing.vf%d_gbps", id), rate/1e9)
	}
	cs := ctl.Stats()
	ok := 1.0
	if err := ctl.Ledger().Verify(); err != nil {
		ok = 0
		r.Printf("ledger verify FAILED: %v", err)
	}
	for _, rec := range inj.Log {
		r.Printf("chaos: %s", rec)
	}
	if r.Findings != nil {
		r.Printf("audit: %d excused / %d unexcused finding(s)",
			r.Findings.Excused(), r.Findings.Unexcused())
	}
	r.Printf("controller: %d submitted, %d admitted, %d rejected, %d released, %d active at end",
		cs.Submitted, cs.Admitted, cs.Rejected, cs.Released, cs.Active)
	r.Metric("churn.accept_ratio", st.AcceptRatio())
	r.Metric("churn.peak_subscription", st.PeakMaxSubscription)
	r.Metric("ctl.admitted", float64(cs.Admitted))
	r.Metric("ctl.rejected", float64(cs.Rejected))
	r.Metric("ctl.active", float64(cs.Active))
	r.Metric("chaos.arrivals", float64(inj.Applied(chaos.TenantArrive)))
	r.Metric("chaos.admission_rejects", float64(inj.Rejected()))
	r.Metric("ledger.ok", ok)
	return r
}

// PlaceSweep sweeps the admission controller's oversubscription factor
// under heavy load (holds ≫ interarrival, ledger-only): factor 1.0 is
// the paper's predictability precondition — committed subscription never
// exceeds line rate — and each step above it trades admission yield for
// committed risk. The sweep pins the shape of that trade-off.
func PlaceSweep(o Options) *Report {
	r := NewReport("placesweep", "oversubscription sweep")
	arrivals := 1500
	if o.Quick {
		arrivals = 300
	}
	for _, factor := range []float64{1.0, 1.5, 2.0, 3.0} {
		eng := sim.New()
		cl := placeClos()
		ctl := placement.NewController(eng, cl.Graph, nil, placement.Config{
			Oversubscription: factor,
			SlotsPerHost:     16, // slot-rich: link headroom is the binding constraint
		})
		st := placement.Churn(ctl, placement.ChurnConfig{
			Arrivals:         arrivals,
			MeanInterarrival: 5 * sim.Microsecond,
			MeanHold:         2 * sim.Millisecond,
			Guarantees:       []float64{2e9},
			VMsMin:           2,
			VMsMax:           3,
			Seed:             o.Seed,
		})
		eng.Run()
		st.Finish(ctl)
		key := fmt.Sprintf("oversub.%.0f", 100*factor)
		r.Printf("factor %.2f: accept %5.1f%%  peak-sub %.3f  (headroom %d, placement %d)",
			factor, 100*st.AcceptRatio(), st.PeakMaxSubscription,
			st.RejectedBy["headroom"], st.RejectedBy["placement"])
		r.Metric(key+".accept_ratio", st.AcceptRatio())
		r.Metric(key+".peak_subscription", st.PeakMaxSubscription)
	}
	return r
}
