package experiments

// The failure suite: fault-injection experiments built on internal/chaos.
// Where fig15 crashes one core once, these experiments exercise the rest
// of the fault surface — link flaps, gray (partial) degradation with
// probe loss/corruption, μFAB-C agent restarts with register state loss,
// and tenant churn storms — and pin the resulting metrics in
// golden_metrics.json, so predictability-under-failure is a regression-
// gated property rather than a one-off demonstration.

import (
	"ufab/internal/chaos"
	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

func init() {
	All = append(All,
		Entry{ID: "flap", Title: "fault suite: link-flap incast on the testbed", Run: FaultFlap},
		Entry{ID: "gray", Title: "fault suite: gray core link (capacity loss, latency, probe corruption)", Run: FaultGray},
		Entry{ID: "restart", Title: "fault suite: uFAB-C agent restart and register rebuild", Run: FaultRestart},
		Entry{ID: "churn", Title: "fault suite: tenant churn storm against a stable guarantee", Run: FaultChurn},
		Entry{ID: "chaoslab", Title: "fault suite: scripted scenario playground (-scenario flag)", Run: ChaosLab},
	)
}

// linkBetween returns the directional link a→b, or topo.NoLink.
func linkBetween(g *topo.Graph, a, b topo.NodeID) topo.LinkID {
	for _, lid := range g.Node(a).Out {
		if g.Link(lid).Dst == b {
			return lid
		}
	}
	return topo.NoLink
}

// faultRig is the shared fixture of the failure suite: the Fig-10 testbed
// with a cross-pod incast (four 2G tenants sending S1..S4 → S8, paths
// through the core) plus one intra-ToR control tenant (S5 → S6) whose
// 2-hop path no core-tier fault can touch.
type faultRig struct {
	eng    *sim.Engine
	tb     *topo.Testbed
	uf     *vfabric.Fabric
	flows  []*vfabric.Flow // the four incast flows
	ctrl   *vfabric.Flow
	gbps   float64 // per-tenant guarantee
	report *Report
}

func newFaultRig(o Options, r *Report, mutate func(*vfabric.Config)) *faultRig {
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
	if mutate != nil {
		mutate(&cfg)
	}
	uf := vfabric.New(eng, tb.Graph, cfg)
	rig := &faultRig{eng: eng, tb: tb, uf: uf, gbps: 2e9, report: r}
	for i := 0; i < 4; i++ {
		vf := uf.AddVF(int32(i+1), rig.gbps, weightClass(rig.gbps))
		fl := uf.AddFlow(vf, tb.Servers[i], tb.Servers[7], 0)
		fl.Buffer.Add(1 << 42)
		rig.flows = append(rig.flows, fl)
	}
	cvf := uf.AddVF(9, rig.gbps, weightClass(rig.gbps))
	rig.ctrl = uf.AddFlow(cvf, tb.Servers[4], tb.Servers[5], 0)
	rig.ctrl.Buffer.Add(1 << 42)
	return rig
}

// run drives the rig to the horizon and reports the standard fault
// metrics: guarantees kept over the final 10%, migration telemetry, and
// the dataplane fault counters.
func (rig *faultRig) run(dur sim.Duration) {
	stop := rig.uf.StartSampling(250 * sim.Microsecond)
	rig.eng.RunUntil(dur)
	stop()
	rig.uf.SampleRates()
	r := rig.report
	satisfied := 0
	for i, fl := range rig.flows {
		rate := fl.Rate(dur-dur/10, dur)
		ok := rate >= 0.9*rig.gbps
		if ok {
			satisfied++
		}
		r.Printf("VF-%d (%.0fG): final rate %5.2f G, migrations %d, guarantee kept: %v",
			i+1, rig.gbps/1e9, rate/1e9, fl.Pair.Migrations, ok)
	}
	ctrlRate := rig.ctrl.Rate(dur-dur/10, dur)
	r.Printf("control VF-9 (intra-ToR): final rate %5.2f G", ctrlRate/1e9)
	fs := rig.uf.FaultStats()
	r.Metric("guarantee.satisfied", float64(satisfied))
	r.Metric("ctrl.gbps", ctrlRate/1e9)
	r.Metric("faults.migrations", float64(fs.Migrations))
	r.Metric("faults.freezes_armed", float64(fs.FreezesArmed))
	r.Metric("faults.freeze_suppressed", float64(fs.FreezeSuppressed))
	r.Metric("faults.drops", float64(fs.FaultDrops))
}

// logInjections appends the injection log to the report.
func (rig *faultRig) logInjections(inj *chaos.Injector) {
	for _, rec := range inj.Log {
		rig.report.Printf("chaos: %s", rec)
	}
}

// auditSummary reports the auditor's verdict on a chaos run and carries
// the scenario's excused-findings floor into the log so gates can assert
// the injected damage was actually observed. Counts go to report lines,
// not metrics: the golden baselines pin audit-off runs.
func (rig *faultRig) auditSummary(sc *chaos.Scenario) {
	r := rig.report
	if r.Findings == nil {
		return
	}
	if sc != nil && sc.ExpectExcusedMin > r.Findings.ExpectExcusedMin {
		r.Findings.ExpectExcusedMin = sc.ExpectExcusedMin
	}
	r.Printf("audit: %d excused / %d unexcused finding(s), expect >= %d excused",
		r.Findings.Excused(), r.Findings.Unexcused(), r.Findings.ExpectExcusedMin)
}

// FaultFlap flaps one agg→core link (both directions) under the incast:
// every affected pair must detect the dark path — via bounced type-4
// failure responses — migrate off it within RTTs, and keep its guarantee;
// the intra-ToR control tenant must not notice.
func FaultFlap(o Options) *Report {
	r := NewReport("flap", "link-flap incast")
	dur := 80 * sim.Millisecond
	start := 20 * sim.Millisecond
	period := 16 * sim.Millisecond
	down := 4 * sim.Millisecond
	cycles := 3
	if o.Quick {
		dur = 24 * sim.Millisecond
		start = 6 * sim.Millisecond
		period = 6 * sim.Millisecond
		down = 2 * sim.Millisecond
		cycles = 2
	}
	rig := newFaultRig(o, r, nil)
	lid := linkBetween(rig.tb.Graph, rig.tb.Aggs[0], rig.tb.Cores[0])
	sc := chaos.New("link-flap").Flap(start, lid, true, cycles, period, down)
	inj := rig.uf.ApplyScenario(sc)
	rig.run(dur)
	rig.logInjections(inj)
	rig.auditSummary(sc)
	r.Metric("chaos.flaps_applied", float64(inj.Applied(chaos.LinkDown)))
	r.Printf("flapped Agg1→Core1 duplex ×%d (down %v every %v)", cycles, down, period)
	return r
}

// FaultGray degrades one agg→core link without taking it down: quarter
// capacity, added latency, random loss, and probe drop/corruption. BFD
// sees nothing, so recovery must come from μFAB's own telemetry — probe
// timeouts and violation-triggered migration. After Restore the fabric
// settles back.
func FaultGray(o Options) *Report {
	r := NewReport("gray", "gray core link")
	dur := 80 * sim.Millisecond
	grayAt := 20 * sim.Millisecond
	healAt := 60 * sim.Millisecond
	if o.Quick {
		dur = 24 * sim.Millisecond
		grayAt = 6 * sim.Millisecond
		healAt = 18 * sim.Millisecond
	}
	rig := newFaultRig(o, r, nil)
	lid := linkBetween(rig.tb.Graph, rig.tb.Aggs[0], rig.tb.Cores[0])
	deg := dataplane.Degradation{
		CapacityScale:    0.25,
		ExtraDelay:       30 * sim.Microsecond,
		LossProb:         0.005,
		ProbeDropProb:    0.2,
		ProbeCorruptProb: 0.2,
	}
	sc := chaos.New("gray-core-link").
		Degrade(grayAt, lid, true, deg).
		Restore(healAt, lid, true)
	if o.Quick {
		// On the short horizon the gray window reaches into the final
		// stretch and one tenant's min-BW dip lands inside the restore's
		// excuse window — the auditor must observe (and excuse) it. The
		// full horizon leaves enough runway that recovery completes and
		// the run audits entirely clean.
		sc.ExpectExcused(1)
	}
	inj := rig.uf.ApplyScenario(sc)
	rig.run(dur)
	rig.logInjections(inj)
	rig.auditSummary(sc)
	fs := rig.uf.FaultStats()
	r.Metric("faults.corrupted_probes", float64(fs.CorruptedProbes))
	r.Metric("chaos.degrades_applied", float64(inj.Applied(chaos.LinkDegrade)))
	r.Printf("gray window [%v, %v): cap×%.2f, +%v, loss %.1f%%, probe drop/corrupt %.0f%%/%.0f%%",
		grayAt, healAt, deg.CapacityScale, deg.ExtraDelay, deg.LossProb*100,
		deg.ProbeDropProb*100, deg.ProbeCorruptProb*100)
	return r
}

// FaultRestart reboots every μFAB-C agent on the switch tier mid-run,
// wiping the Bloom tables and the Φ_l/W_l registers, with the silent-quit
// cleanup loop running at an aggressive period. The registers must
// rebuild from in-flight re-registration within RTTs — without
// double-counting — and no guarantee may be lost.
func FaultRestart(o Options) *Report {
	r := NewReport("restart", "uFAB-C restart and register rebuild")
	dur := 80 * sim.Millisecond
	restartAt := 40 * sim.Millisecond
	cleanup := 4 * sim.Millisecond
	if o.Quick {
		dur = 24 * sim.Millisecond
		restartAt = 12 * sim.Millisecond
		cleanup = 2 * sim.Millisecond
	}
	rig := newFaultRig(o, r, func(cfg *vfabric.Config) {
		cfg.Core.CleanupPeriod = cleanup
	})
	rig.uf.StartCoreCleanup()
	// Restart both cores and one aggregation switch.
	sc := chaos.New("core-restarts").
		RestartAgent(restartAt, rig.tb.Cores[0]).
		RestartAgent(restartAt, rig.tb.Cores[1]).
		RestartAgent(restartAt, rig.tb.Aggs[0])
	inj := rig.uf.ApplyScenario(sc)
	// Observe Φ on S8's ToR downlink (every incast pair registers there)
	// just before the restart, just after, and at the end of the run.
	tor := rig.tb.ToRs[3] // S8 = Servers[7] attaches to the last ToR
	downlink := linkBetween(rig.tb.Graph, tor, rig.tb.Servers[7])
	torRestartAt := restartAt + cleanup
	scTor := chaos.New("tor-restart").RestartAgent(torRestartAt, tor)
	injTor := rig.uf.ApplyScenario(scTor)
	var phiBefore, phiAfter, phiRebuilt float64
	rig.eng.At(torRestartAt-1, func() { phiBefore, _ = rig.uf.Cores[tor].Subscription(downlink) })
	rig.eng.At(torRestartAt+1, func() { phiAfter, _ = rig.uf.Cores[tor].Subscription(downlink) })
	rig.run(dur)
	phiRebuilt, _ = rig.uf.Cores[tor].Subscription(downlink)
	rig.logInjections(inj)
	rig.logInjections(injTor)
	rig.auditSummary(sc)
	fs := rig.uf.FaultStats()
	r.Printf("ToR4→S8 Φ register: %.2f tokens before restart, %.2f after wipe, %.2f rebuilt at end",
		phiBefore, phiAfter, phiRebuilt)
	r.Metric("faults.core_restarts", float64(fs.CoreRestarts))
	r.Metric("phi.before", phiBefore)
	r.Metric("phi.after_wipe", phiAfter)
	r.Metric("phi.rebuilt", phiRebuilt)
	return r
}

// FaultChurn fires a storm of short-lived tenants — arriving, sending
// hard, departing, with VF ids reused across waves — against the standing
// incast. Guarantees of the stable tenants must hold throughout, and
// after the storm the core registers must return to baseline (finish
// probes plus silent-quit cleanup, no residue or double-counting). Two
// deliberately invalid events check that rejections are logged, not
// crashed on.
func FaultChurn(o Options) *Report {
	r := NewReport("churn", "tenant churn storm")
	dur := 80 * sim.Millisecond
	start := 10 * sim.Millisecond
	step := 4 * sim.Millisecond
	hold := 6 * sim.Millisecond
	waves := 12
	cleanup := 5 * sim.Millisecond
	if o.Quick {
		dur = 26 * sim.Millisecond
		start = 4 * sim.Millisecond
		step = 2 * sim.Millisecond
		hold = 3 * sim.Millisecond
		waves = 6
		cleanup = 3 * sim.Millisecond
	}
	rig := newFaultRig(o, r, func(cfg *vfabric.Config) {
		cfg.Core.CleanupPeriod = cleanup
	})
	rig.uf.StartCoreCleanup()
	sc := chaos.New("churn-storm")
	for i := 0; i < waves; i++ {
		at := start + sim.Duration(i)*step
		vfID := int32(100 + i%3) // ids reused across waves
		src := rig.tb.Servers[i%4]
		dst := rig.tb.Servers[4+i%3]
		sc.ArriveTenant(at, chaos.TenantSpec{
			VF:           vfID,
			GuaranteeBps: 1e9,
			WeightClass:  weightClass(1e9),
			Pairs:        []chaos.PairSpec{{Src: src, Dst: dst}},
		})
		sc.DepartTenant(at+hold, vfID)
	}
	// Invalid events: an arrival on a switch node and a departure of a
	// VF that never existed. Both must be rejected and logged.
	sc.ArriveTenant(start, chaos.TenantSpec{
		VF: 200, GuaranteeBps: 1e9,
		Pairs: []chaos.PairSpec{{Src: rig.tb.Cores[0], Dst: rig.tb.Servers[0]}},
	})
	sc.DepartTenant(start, 201)
	inj := rig.uf.ApplyScenario(sc)
	rig.run(dur)
	rig.logInjections(inj)
	rig.auditSummary(sc)
	// Register residue on S8's ToR downlink: only the four stable incast
	// pairs should remain registered after the storm drains.
	tor := rig.tb.ToRs[3]
	downlink := linkBetween(rig.tb.Graph, tor, rig.tb.Servers[7])
	phiResidue, _ := rig.uf.Cores[tor].Subscription(downlink)
	r.Printf("S8 downlink Φ after storm: %.2f tokens (stable incast only)", phiResidue)
	r.Metric("chaos.arrivals", float64(inj.Applied(chaos.TenantArrive)))
	r.Metric("chaos.departures", float64(inj.Applied(chaos.TenantDepart)))
	r.Metric("chaos.rejected", float64(inj.Rejected()))
	r.Metric("phi.residue", phiResidue)
	return r
}

// ChaosLab runs the standard rig under a user-scripted scenario: pass
// `ufabsim -scenario file.json run chaoslab` to replay any fault schedule
// against the incast workload. With no scenario it runs a built-in
// sampler touching every event kind, which is what the golden baseline
// pins.
func ChaosLab(o Options) *Report {
	r := NewReport("chaoslab", "scripted chaos scenario")
	dur := 80 * sim.Millisecond
	if o.Quick {
		dur = 24 * sim.Millisecond
	}
	rig := newFaultRig(o, r, func(cfg *vfabric.Config) {
		cfg.Core.CleanupPeriod = dur / 8
	})
	rig.uf.StartCoreCleanup()
	var sc *chaos.Scenario
	if o.Scenario != "" {
		var err error
		sc, err = chaos.Parse([]byte(o.Scenario))
		if err != nil {
			r.Printf("scenario rejected: %v", err)
			r.Metric("chaos.events_applied", 0)
			r.Metric("chaos.events_rejected", 0)
			return r
		}
		r.Printf("replaying scenario %q (%d events)", sc.Name, len(sc.Events))
	} else {
		u := dur / 24 // scenario time unit, scales with the horizon
		lid := linkBetween(rig.tb.Graph, rig.tb.Aggs[1], rig.tb.Cores[1])
		sc = chaos.New("builtin-sampler").
			LinkDown(4*u, lid, true).
			LinkUp(6*u, lid, true).
			Degrade(8*u, lid, true, dataplane.Degradation{CapacityScale: 0.5, LossProb: 0.002}).
			Restore(12*u, lid, true).
			RestartAgent(14*u, rig.tb.Cores[1]).
			ArriveTenant(16*u, chaos.TenantSpec{
				VF: 50, GuaranteeBps: 1e9, WeightClass: weightClass(1e9),
				Pairs: []chaos.PairSpec{{Src: rig.tb.Servers[5], Dst: rig.tb.Servers[6]}},
			}).
			DepartTenant(20*u, 50).
			CrashNode(21*u, rig.tb.Cores[0]).
			RecoverNode(22*u, rig.tb.Cores[0])
	}
	inj := rig.uf.ApplyScenario(sc)
	rig.run(dur)
	rig.logInjections(inj)
	rig.auditSummary(sc)
	applied := 0
	for _, rec := range inj.Log {
		if rec.OK {
			applied++
		}
	}
	r.Metric("chaos.events_applied", float64(applied))
	r.Metric("chaos.events_rejected", float64(inj.Rejected()))
	return r
}
