package experiments

// Sensitivity and theory-validation experiments: the migration freeze
// window and probing frequency sweeps (Fig 18), the primal/dual reaction
// illustration of Appendix C (Fig 19), and the asynchronous-response
// convergence of Appendix D (Fig 20).

import (
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
	"ufab/internal/workload"
)

// Fig18 sweeps (a/b) the migration freeze window [1,N] under 50% and 70%
// load, reporting convergence time and migration counts, and (c) the
// probing frequency (self-clocking vs every 2/3 RTTs) in a 16-to-1 incast.
func Fig18(o Options) *Report {
	r := NewReport("fig18", "freeze window and probing frequency sensitivity")
	// ---- (a)/(b) freeze window under churn ----
	nFlows := 9
	settle := 30 * sim.Millisecond
	if o.Quick {
		settle = 12 * sim.Millisecond
	}
	for _, load := range []struct {
		name      string
		guarantee float64
	}{{"50%", 1.6e9}, {"70%", 2.9e9}} {
		for _, n := range []int{2, 3, 4, 10} {
			eng := sim.New()
			tt := topo.NewTwoTier(3, nFlows, topo.Gbps(10), 5*sim.Microsecond)
			cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
			cfg.Edge.FreezeMaxRTTs = n
			uf := vfabric.New(eng, tt.Graph, cfg)
			// Synchronized arrival: all VFs join at once, so initial
			// placements collide and migrations must untangle them —
			// the oscillation risk the freeze window addresses.
			var flows []*vfabric.Flow
			for i := 0; i < nFlows; i++ {
				vf := uf.AddVF(int32(i+1), load.guarantee, 3)
				fl := uf.AddFlow(vf, tt.HostsLeft[i], tt.HostsRight[i], 0)
				fl.Buffer.Add(1 << 42)
				flows = append(flows, fl)
			}
			lastInsert := sim.Time(0)
			end := settle
			agg := stats.NewRateMeter("agg", 250*sim.Microsecond)
			var last int64
			eng.Every(250*sim.Microsecond, func() {
				var d int64
				for _, fl := range flows {
					d += fl.Pair.Delivered
				}
				agg.Add(eng.Now(), int(d-last))
				last = d
			})
			eng.RunUntil(end)
			agg.Flush(end)
			// Convergence: aggregate goodput within 10% of the fabric's
			// max (3 paths × 9.5 G target) or the total guarantee,
			// whichever is smaller.
			target := 3 * 0.95 * 10e9
			ct := stats.ConvergenceTime(&agg.Series, lastInsert, target, 0.1, 2*sim.Millisecond)
			migrations := 0
			for _, fl := range flows {
				migrations += fl.Pair.Migrations
			}
			ctStr := "none"
			ctMs := -1.0
			if ct >= 0 {
				ctStr = ct.String()
				ctMs = ct.Millis()
			}
			r.Printf("load %s freeze [1,%2d]: convergence %8s, migrations %3d", load.name, n, ctStr, migrations)
			r.Metric("freeze"+itoa(n)+"."+sanitize(load.name)+".migrations", float64(migrations))
			r.Metric("freeze"+itoa(n)+"."+sanitize(load.name)+".conv_ms", ctMs)
		}
	}
	// ---- (c) probing frequency ----
	for _, pf := range []struct {
		name string
		rtts int
	}{{"self-clocking", 0}, {"2 RTT", 2}, {"3 RTT", 3}} {
		eng := sim.New()
		st := topo.NewStar(17, topo.Gbps(10), 5*sim.Microsecond)
		cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
		cfg.Edge.PeriodicProbeRTTs = pf.rtts
		uf := vfabric.New(eng, st.Graph, cfg)
		var flows []*vfabric.Flow
		for i := 0; i < 16; i++ {
			vf := uf.AddVF(int32(i+1), 500e6, 2)
			fl := uf.AddFlow(vf, st.Hosts[i], st.Hosts[16], 0)
			fl.Buffer.Add(1 << 42)
			flows = append(flows, fl)
		}
		agg := stats.NewRateMeter("agg", 100*sim.Microsecond)
		var last int64
		eng.Every(100*sim.Microsecond, func() {
			var d int64
			for _, fl := range flows {
				d += fl.Pair.Delivered
			}
			agg.Add(eng.Now(), int(d-last))
			last = d
		})
		dur := 8 * sim.Millisecond
		if o.Quick {
			dur = 4 * sim.Millisecond
		}
		eng.RunUntil(dur)
		agg.Flush(dur)
		ct := stats.ConvergenceTime(&agg.Series, 0, 0.95*10e9, 0.1, sim.Millisecond)
		ctStr := "none"
		if ct >= 0 {
			ctStr = ct.String()
		}
		r.Printf("probing %-14s: 16-to-1 aggregate convergence %s", pf.name, ctStr)
		if ct >= 0 {
			r.Metric("probe."+sanitize(pf.name)+".conv_us", ct.Micros())
		}
	}
	r.Printf("paper shape: [1,10] freeze cuts migrations sharply at 70%% load with similar convergence; probing frequency barely affects convergence")
	return r
}

// Fig19 measures the primal control's reaction delay (Appendix C /
// Fig 19a): a steady flow occupies the link; a second flow bursts; the
// incumbent's window/rate must start dropping within a few RTTs.
func Fig19(o Options) *Report {
	r := NewReport("fig19", "primal control reaction delay")
	eng := sim.New()
	st := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
	uf := vfabric.New(eng, st.Graph, vfabric.Config{Seed: o.Seed, MeterInterval: 25 * sim.Microsecond, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)})
	vfA := uf.AddVF(1, 2e9, 3)
	vfB := uf.AddVF(2, 2e9, 3)
	a := uf.AddFlow(vfA, st.Hosts[0], st.Hosts[2], 0)
	a.Buffer.Add(1 << 42)
	burstAt := 4 * sim.Millisecond
	var b *vfabric.Flow
	eng.At(burstAt, func() {
		b = uf.AddFlow(vfB, st.Hosts[1], st.Hosts[2], 0)
		b.Buffer.Add(1 << 42)
	})
	stop := uf.StartSampling(10 * sim.Microsecond)
	eng.RunUntil(8 * sim.Millisecond)
	stop()
	uf.SampleRates()
	pre := a.Rate(3*sim.Millisecond, burstAt)
	// Reaction: first sample after the burst where A's rate fell below
	// 75% of its pre-burst value.
	var reactAt sim.Time = -1
	for _, p := range a.Meter.Series.Pts {
		if p.T <= burstAt {
			continue
		}
		if p.V < 0.75*pre {
			reactAt = p.T
			break
		}
	}
	r.AddSeries("incumbent_bps", &a.Meter.Series)
	baseRTT := st.Graph.Diameter(1500)
	if reactAt < 0 {
		r.Printf("incumbent never reacted (pre-burst %.2f G)", pre/1e9)
		r.Metric("reaction.rtts", -1)
		return r
	}
	rtts := float64(reactAt-burstAt) / float64(baseRTT)
	r.Printf("incumbent at %.2f G reacted %.1f us after the burst = %.1f baseRTTs (theory: ~2 RTT for the primal/window control, ~4 for dual)",
		pre/1e9, (reactAt - burstAt).Micros(), rtts)
	r.Metric("reaction.rtts", rtts)
	return r
}

// Fig20 reproduces the Appendix-D asynchronous-response experiment: a
// large incast where senders' probe responses arrive out of sync by more
// than an RTT, yet the allocation still converges quickly.
func Fig20(o Options) *Report {
	r := NewReport("fig20", "asynchronous responses: large incast convergence")
	n := 128
	dur := 10 * sim.Millisecond
	if o.Quick {
		n = 32
		dur = 5 * sim.Millisecond
	}
	eng := sim.New()
	// Heterogeneous propagation delays (0.5–4 μs per host) make the
	// probe responses arrive out of sync across senders, as in the
	// paper's Fig 20a.
	rng := newRand(o.Seed + 20)
	g := &topo.Graph{}
	sw := g.AddNode(topo.Switch, topo.TierToR, "SW")
	var hosts []topo.NodeID
	for i := 0; i <= n; i++ {
		h := g.AddNode(topo.Host, topo.TierHost, "H"+itoa(i))
		prop := sim.Duration(500+rng.Intn(3500)) * sim.Nanosecond
		if i == n {
			prop = sim.Microsecond
		}
		g.AddDuplexLink(h, sw, topo.Gbps(100), prop)
		hosts = append(hosts, h)
	}
	uf := vfabric.New(eng, g, vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)})
	var flows []*flowHandle
	for i := 0; i < n; i++ {
		vf := uf.AddVF(int32(i+1), 500e6, 2)
		fl := uf.AddFlow(vf, hosts[i], hosts[n], 0)
		fl.Buffer.Add(1 << 42)
		flows = append(flows, &flowHandle{ufFlow: fl})
	}
	agg := aggMeter(eng, flows, 100*sim.Microsecond)
	// Background load is implicit: the incast itself saturates the
	// downlink, and senders' self-clocked probes desynchronize.
	eng.RunUntil(dur)
	agg.Flush(dur)
	ct := stats.ConvergenceTime(&agg.Series, 0, 0.95*100e9, 0.1, sim.Millisecond)
	// Response asynchrony: spread of median RTT across senders.
	var meds stats.Samples
	for _, fh := range flows {
		meds.Add(fh.rtt().P(0.5))
	}
	spread := meds.Max() - meds.Min()
	baseRTT := g.Diameter(1500).Micros()
	ctStr := "none"
	if ct >= 0 {
		ctStr = ct.String()
	}
	r.Printf("%d-to-1: per-sender median RTT spread %.1f us (baseRTT %.1f us) — responses are asynchronous", n, spread, baseRTT)
	r.Printf("aggregate convergence to 95%% of line rate: %s", ctStr)
	if ct >= 0 {
		r.Metric("conv.us", ct.Micros())
	} else {
		r.Metric("conv.us", -1)
	}
	r.Metric("rtt.spread_us", spread)
	r.Printf("paper shape: senders receive responses out of sync by >1 RTT yet rates converge quickly (Fig 20b)")
	return r
}

// fig18 helpers reuse workload only for documentation symmetry.
var _ = workload.Permutation
