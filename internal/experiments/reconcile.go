package experiments

// The reconciler experiment: desired-vs-realized convergence under the
// always-on control plane. Standing tenants are admitted through
// ctlplane.Service (which materializes them on the testbed fabric and
// commits them to the sharded ledger), then a chaos node crash and an
// operator drain each displace tenants mid-run; the watcher/reconciler
// must tear down the broken placements and re-place them on healthy
// hosts within its retry budget, with the ledger verifying clean and the
// auditor excusing exactly the fault-windowed disruption.

import (
	"fmt"

	"ufab/internal/chaos"
	"ufab/internal/ctlplane"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

func init() {
	All = append(All,
		Entry{ID: "reconcile", Title: "control plane: watcher/reconciler convergence under node crash and drain", Run: Reconcile},
	)
}

// Reconcile runs four standing tenants under the reconciling control
// plane, crashes one tenant's host a quarter of the way in (recovering
// it later), and drains another tenant's host at the midpoint. Both
// displacements must converge back to Placed — no evictions — and every
// tenant's guarantee must be realized again by the final stretch.
func Reconcile(o Options) *Report {
	r := NewReport("reconcile", "reconciler convergence under crash and drain")
	dur := 80 * sim.Millisecond
	cleanup := 5 * sim.Millisecond
	if o.Quick {
		dur = 26 * sim.Millisecond
		cleanup = 3 * sim.Millisecond
	}
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	// The watcher is event-driven off the flight recorder, so this
	// experiment always attaches a registry with a recorder to the fabric:
	// the report's own when the run exports telemetry, otherwise a private
	// one that exists only to carry the dataplane fault events. Attaching
	// it never changes results (telemetry is a pure observer), so the
	// golden metrics are identical either way.
	reg := o.fabricTelemetry(r)
	if reg == nil {
		reg = telemetry.New()
		reg.EnableRecorder(0)
	}
	cfg := vfabric.Config{Seed: o.Seed, Telemetry: reg, Audit: o.fabricAudit(r)}
	cfg.Core.CleanupPeriod = cleanup
	uf := vfabric.New(eng, tb.Graph, cfg)
	uf.StartCoreCleanup()

	svc := ctlplane.NewService(tb.Graph, nil, uf, ctlplane.Config{
		SlotsPerHost: 4,
		Policy:       placement.Spread{},
		Telemetry:    o.fabricTelemetry(r),
	})
	svc.WatchRecorder(reg.Recorder())
	// Checked-admit mode: realized Φ_l is audited against the sharded
	// ledger's commitments, exactly as with the sequential ledger.
	uf.Cfg.Ledger = svc.Ledger()
	svc.StartReconciler(eng, 500*sim.Microsecond)

	// Four standing 1G tenants, admitted (and materialized) up front.
	var placed [][]topo.NodeID
	for id := int32(1); id <= 4; id++ {
		d := svc.Admit(placement.Request{
			ID: id, GuaranteeBps: 1e9, VMs: 2, WeightClass: weightClass(1e9),
		}, int64(eng.Now()))
		if !d.Accepted {
			r.Printf("tenant %d REJECTED at admission: %s", id, d.Reason)
		}
		placed = append(placed, d.Hosts)
	}

	// Fault 1: crash tenant 1's first host; the watcher must pick the
	// fault event off the flight recorder and the reconciler evacuate.
	// The host recovers later so the fleet ends whole.
	crashHost := placed[0][0]
	sc := chaos.New("reconciler crash").
		CrashNode(dur/4, crashHost).
		RecoverNode(5*dur/8, crashHost)
	inj := uf.ApplyScenario(sc)

	// Fault 2: an operator drain of one of tenant 2's hosts at the
	// midpoint, uncordoned for the final quarter. Pick a host that the
	// crash does not already take down.
	drainHost := placed[1][0]
	if drainHost == crashHost {
		drainHost = placed[1][1]
	}
	eng.At(dur/2, func() { svc.Drain(drainHost) })
	eng.At(3*dur/4, func() { svc.Uncordon(drainHost) })

	stop := uf.StartSampling(250 * sim.Microsecond)
	eng.RunUntil(dur)
	stop()
	uf.SampleRates()

	// Final-stretch realized rate per standing tenant (re-placed tenants
	// carry fresh flows under the same VF id).
	for id := int32(1); id <= 4; id++ {
		rate := 0.0
		for _, fl := range uf.Flows {
			if fl.VF == uf.VFs[id] {
				rate += fl.Rate(sim.Time(dur-dur/10), sim.Time(dur))
			}
		}
		r.Printf("tenant %d (1G hose): final rate %5.2f G", id, rate/1e9)
		r.Metric(fmt.Sprintf("tenant%d.final_gbps", id), rate/1e9)
	}
	st := svc.Stats()
	byStatus := svc.StatusCounts()
	ok := 1.0
	if err := svc.Verify(); err != nil {
		ok = 0
		r.Printf("ledger verify FAILED: %v", err)
	}
	for _, rec := range inj.Log {
		r.Printf("chaos: %s", rec)
	}
	if r.Findings != nil {
		r.Printf("audit: %d excused / %d unexcused finding(s)",
			r.Findings.Excused(), r.Findings.Unexcused())
	}
	r.Printf("reconciler: %d loops, %d displaced, %d re-placed, %d retries, %d evicted; %d/%d placed at end",
		st.ReconcileLoops, st.Displaced, st.Replacements, st.Retries, st.Evictions,
		byStatus[ctlplane.StatusPlaced], st.Desired)
	r.Metric("ctl.displaced", float64(st.Displaced))
	r.Metric("ctl.replacements", float64(st.Replacements))
	r.Metric("ctl.retries", float64(st.Retries))
	r.Metric("ctl.evictions", float64(st.Evictions))
	r.Metric("ctl.placed_at_end", float64(byStatus[ctlplane.StatusPlaced]))
	r.Metric("chaos.applied", float64(inj.Applied(chaos.NodeCrash)+inj.Applied(chaos.NodeRecover)))
	r.Metric("ledger.ok", ok)
	return r
}
