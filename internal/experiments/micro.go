package experiments

// The micro-benchmarks of §2.2 and §5.2: Case-1 incast latency (Fig 4),
// Case-2 guarantee-breaking path migration (Fig 5), bandwidth guarantee
// with work conservation under continuous VF churn (Fig 11), and the
// 14-to-1 incast convergence/latency comparison (Fig 12).

import (
	"fmt"

	"ufab/internal/dataplane"
	"ufab/internal/flowsrc"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
	"ufab/internal/workload"

	blhost "ufab/internal/baseline/host"
)

// Fig4 reproduces Case-1: N flows of different VFs (500 Mbps guarantees)
// incast on one host; PWC's tail RTT grows with N while μFAB's stays
// bounded.
func Fig4(o Options) *Report {
	r := NewReport("fig4", "Case-1 incast RTT vs degree")
	degrees := []int{2, 6, 10, 14}
	dur := 30 * sim.Millisecond
	if o.Quick {
		degrees = []int{2, 6, 10}
		dur = 8 * sim.Millisecond
	}
	base := 0.0
	for _, sc := range []scheme{schemePWC, schemeUFAB} {
		for _, n := range degrees {
			st := topo.NewStar(n+1, topo.Gbps(10), 5*sim.Microsecond)
			sys := newSystem(sc, o, st.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
			eng := sys.eng
			var flows []*flowHandle
			for i := 0; i < n; i++ {
				fh := sys.addFlow(int32(i+1), 500e6, st.Hosts[i], st.Hosts[n])
				fh.backlog()
				flows = append(flows, fh)
			}
			eng.RunUntil(dur)
			// Pool per-flow samples via quantile resampling into the
			// figure's CDF.
			var all stats.Samples
			for _, fh := range flows {
				s := fh.rtt()
				for _, p := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 0.995, 0.999, 1} {
					all.Add(s.P(p))
				}
			}
			p50, p999 := all.P(0.3), all.Max()
			if base == 0 {
				base = st.Graph.Diameter(1500).Micros()
			}
			cdf := all.CDF(5)
			cdfStr := ""
			for _, pt := range cdf {
				cdfStr += fmt.Sprintf(" %.0f%%≤%.0fus", pt.F*100, pt.X)
			}
			r.Printf("%-18s %2d-to-1: RTT p50 ≈ %7.1f us, tail ≈ %8.1f us | CDF:%s",
				sc, n, p50, p999, cdfStr)
			r.Metric(metricKey(sc, "tail_us", n), p999)
		}
	}
	r.Printf("baseRTT %.1f us; latency bound ≈ %.0f us (3·BDP/C + baseRTT)", base, 5*base)
	m := r.Metrics()
	pwcGrowth := m[metricKey(schemePWC, "tail_us", degrees[len(degrees)-1])] /
		m[metricKey(schemePWC, "tail_us", degrees[0])]
	ufabGrowth := m[metricKey(schemeUFAB, "tail_us", degrees[len(degrees)-1])] /
		m[metricKey(schemeUFAB, "tail_us", degrees[0])]
	r.Printf("tail growth with incast degree: PWC %.1fx vs uFAB %.1fx (paper: PWC unbounded, uFAB bounded)",
		pwcGrowth, ufabGrowth)
	r.Metric("pwc.tail_growth", pwcGrowth)
	r.Metric("ufab.tail_growth", ufabGrowth)
	return r
}

// metricKey names a scheme's metric under the dotted scheme:
// <scheme>.<what>[.<n>].
func metricKey(sc scheme, what string, n int) string {
	name := map[scheme]string{
		schemeUFAB: "ufab", schemeUFABPrime: "ufabp", schemePWC: "pwc", schemeES: "es",
	}[sc]
	if n >= 0 {
		return name + "." + what + "." + itoa(n)
	}
	return name + "." + what
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// fig5Variant runs the Case-2 scenario under one scheme/flowlet-gap combo
// and returns the four VFs' rates in the final window plus F4's observed
// path-switch count.
type fig5Result struct {
	rates    [4]float64 // Gbps in final window
	switches int
	series   [4]*stats.Series
}

// Fig5 reproduces Case-2: F1/F2/F3 pinned on paths P1/P2/P3 with
// subscriptions 90/80/40% and utilizations 80/90/100%; F4 (3G) joins at
// t=100 ms. Utilization-oriented load balancing sends F4 to P1 and breaks
// F1's guarantee (or oscillates at small flowlet gaps); μFAB reads the
// subscription and picks P3.
func Fig5(o Options) *Report {
	r := NewReport("fig5", "Case-2 path selection vs guarantees")
	joinAt := 100 * sim.Millisecond
	dur := 400 * sim.Millisecond
	if o.Quick {
		joinAt = 20 * sim.Millisecond
		dur = 80 * sim.Millisecond
	}
	guarantees := [4]float64{9e9, 8e9, 4e9, 3e9}
	run := func(sc scheme, gap sim.Duration) fig5Result {
		eng := sim.New()
		tt := topo.NewTwoTier(3, 4, topo.Gbps(10), 5*sim.Microsecond)
		var uf *vfabric.Fabric
		var bl *blhost.Fabric
		if sc == schemeUFAB {
			uf = vfabric.New(eng, tt.Graph, vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)})
		} else {
			bl = blhost.NewFabric(eng, tt.Graph, blhost.Config{
				Scheme: blhost.PWC, CloveGap: gap, Seed: o.Seed,
			}, dataplane.Config{Telemetry: o.fabricTelemetry(r)})
		}
		// Per-flow routes: F1..F3 pinned to P1..P3; F4 sees all three.
		pathsFor := func(i int) []topo.Path {
			all := tt.Graph.Paths(tt.HostsLeft[i], tt.HostsRight[i], 0)
			if i < 3 {
				return all[i : i+1]
			}
			return all
		}
		var ufFlows [4]*vfabric.Flow
		var blFlows [4]*blhost.FlowHandle
		var bufs [4]*flowsrc.Buffer
		addFlow := func(i int) {
			bufs[i] = &flowsrc.Buffer{}
			if uf != nil {
				vf := uf.AddVF(int32(i+1), guarantees[i], weightClass(guarantees[i]))
				ufFlows[i] = uf.AddFlowRoutes(vf, pathsFor(i), 0, bufs[i])
			} else {
				blFlows[i] = bl.AddFlowRoutes(int32(i+1), guarantees[i]/100e6, pathsFor(i), bufs[i])
			}
		}
		for i := 0; i < 3; i++ {
			addFlow(i)
		}
		// F1 has insufficient demand (8G of its 9G guarantee: P1 at 80%
		// utilization); F2 and F3 are backlogged (work conservation).
		workload.FixedRate(eng, bufs[0], 8e9, 50*sim.Microsecond)
		bufs[1].Add(1 << 42)
		bufs[2].Add(1 << 42)
		eng.At(joinAt, func() {
			addFlow(3)
			bufs[3].Add(1 << 42)
		})
		var sampler func()
		if uf != nil {
			sampler = func() { uf.SampleRates() }
		} else {
			sampler = func() { bl.SampleRates() }
		}
		eng.Every(200*sim.Microsecond, sampler)
		eng.RunUntil(dur)
		sampler()
		var res fig5Result
		for i := 0; i < 4; i++ {
			var rate float64
			if uf != nil {
				rate = ufFlows[i].Rate(dur-dur/8, dur)
				res.series[i] = &ufFlows[i].Meter.Series
			} else {
				rate = blFlows[i].Rate(dur-dur/8, dur)
				res.series[i] = &blFlows[i].Meter.Series
			}
			res.rates[i] = rate / 1e9
		}
		if uf != nil {
			res.switches = ufFlows[3].Pair.Migrations
		} else {
			res.switches = blFlows[3].Flow.CurrentPath() // path id only
			res.switches = cloveRepicks(blFlows[3])
		}
		return res
	}
	type variant struct {
		name string
		sc   scheme
		gap  sim.Duration
	}
	for _, v := range []variant{
		{"PWC (200us gap)", schemePWC, 200 * sim.Microsecond},
		{"PWC (36us gap)", schemePWC, 36 * sim.Microsecond},
		{"uFAB", schemeUFAB, 0},
	} {
		res := run(v.sc, v.gap)
		ok := 0
		for i := range res.rates {
			// F1's demand is 8G; others owe their full guarantee.
			owed := guarantees[i] / 1e9
			if i == 0 {
				owed = 8
			}
			if res.rates[i] >= 0.9*owed {
				ok++
			}
		}
		r.Printf("%-18s F1=%.2fG(owes 8) F2=%.2fG(8) F3=%.2fG(4) F4=%.2fG(3); satisfied %d/4; F4 path switches %d",
			v.name, res.rates[0], res.rates[1], res.rates[2], res.rates[3], ok, res.switches)
		key := map[string]string{"PWC (200us gap)": "pwc200", "PWC (36us gap)": "pwc36", "uFAB": "ufab"}[v.name]
		r.Metric(key+".satisfied", float64(ok))
		r.Metric(key+".switches", float64(res.switches))
		for i, ser := range res.series {
			r.AddSeries(key+"_F"+itoa(i+1)+"_bps", ser)
		}
	}
	r.Printf("paper shape: PWC leaves guarantees unsatisfied (200us pins F4 on P1; 36us oscillates); uFAB close to ideal")
	return r
}

func cloveRepicks(fh *blhost.FlowHandle) int { return fh.Flow.Repicks() }

// Fig11 reproduces the permutation churn experiment: three VF classes
// (1/2/5 Gbps) per sending host, one VF inserted every 20 ms; μFAB
// converges fast with near-zero dissatisfaction and low queues, PWC
// under-delivers guarantees, ES keeps guarantees but builds queues.
func Fig11(o Options) *Report {
	r := NewReport("fig11", "bandwidth evolution under high load")
	insertEvery := 20 * sim.Millisecond
	tail := 60 * sim.Millisecond
	if o.Quick {
		insertEvery = 4 * sim.Millisecond
		tail = 16 * sim.Millisecond
	}
	classes := []float64{1e9, 2e9, 5e9}
	for _, sc := range []scheme{schemeUFAB, schemePWC, schemeES} {
		tb := topo.NewTestbed(topo.TestbedConfig{})
		sys := newSystem(sc, o, tb.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
		eng := sys.eng
		type vfFlow struct {
			fh        *flowHandle
			guarantee float64
			start     sim.Time
		}
		var flows []*vfFlow
		// 4 senders (pod 1) × 3 classes = 12 VFs, destinations are the
		// pod-2 servers (permutation).
		id := int32(0)
		var inserts []func()
		for ci, g := range classes {
			for h := 0; h < 4; h++ {
				g, h, ci := g, h, ci
				id++
				vfID := id
				inserts = append(inserts, func() {
					fh := sys.addFlow(vfID, g, tb.Servers[h], tb.Servers[4+(h+ci)%4])
					fh.backlog()
					flows = append(flows, &vfFlow{fh: fh, guarantee: g, start: eng.Now()})
				})
			}
		}
		// Deterministic shuffled insertion order.
		rng := newRand(o.Seed + 11)
		rng.Shuffle(len(inserts), func(i, j int) { inserts[i], inserts[j] = inserts[j], inserts[i] })
		for i, ins := range inserts {
			eng.At(sim.Time(i)*insertEvery, ins)
		}
		stopSampling := sys.startSampling(500 * sim.Microsecond)
		end := sim.Time(len(inserts))*insertEvery + tail
		eng.RunUntil(end)
		stopSampling()
		sys.sampleRates()
		// Steady-state dissatisfaction over the final window.
		var achieved, owed []float64
		for i, f := range flows {
			achieved = append(achieved, f.fh.rate(end-tail/2, end))
			owed = append(owed, f.guarantee)
			r.AddSeries(metricKey(sc, "vf"+itoa(i)+"_bps", -1), flowSeries(f.fh))
		}
		dissat := stats.Dissatisfaction(achieved, owed, nil)
		qhw := sys.queueHighWaters()
		maxQ := qhw.Max()
		r.Printf("%-18s dissatisfaction(final)=%5.1f%%  max queue=%6.0f KB  q-p90=%6.0f KB",
			sc, dissat*100, maxQ/1e3, qhw.P(0.9)/1e3)
		for ci, g := range classes {
			sum, n := 0.0, 0
			for _, f := range flows {
				if f.guarantee == g {
					sum += f.fh.rate(end-tail/2, end)
					n++
				}
			}
			r.Printf("    class %dG: avg rate %.2f G (n=%d)", int(g/1e9), sum/float64(n)/1e9, n)
			_ = ci
		}
		r.Metric(metricKey(sc, "dissat_pct", -1), dissat*100)
		r.Metric(metricKey(sc, "maxq_kb", -1), maxQ/1e3)
	}
	r.Printf("paper shape: uFAB ~0%% dissatisfaction with low queue; PWC >40%% dissatisfaction; ES low dissatisfaction but deep queues")
	return r
}

// Fig12 reproduces the 14-to-1 incast with all four schemes: μFAB and
// μFAB′ converge in well under a millisecond; μFAB additionally bounds the
// tail RTT; the baselines converge slowly with high tails.
func Fig12(o Options) *Report {
	r := NewReport("fig12", "14-to-1 incast: convergence and bounded latency")
	n := 14
	dur := 40 * sim.Millisecond
	if o.Quick {
		n = 8
		dur = 10 * sim.Millisecond
	}
	for _, sc := range []scheme{schemePWC, schemeES, schemeUFABPrime, schemeUFAB} {
		st := topo.NewStar(n+1, topo.Gbps(10), 5*sim.Microsecond)
		sys := newSystem(sc, o, st.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
		eng := sys.eng
		var flows []*flowHandle
		for i := 0; i < n; i++ {
			fh := sys.addFlow(int32(i+1), 500e6, st.Hosts[i], st.Hosts[n])
			fh.backlog()
			flows = append(flows, fh)
		}
		agg := aggMeter(eng, flows, 100*sim.Microsecond)
		stop := sys.startSampling(200 * sim.Microsecond)
		eng.RunUntil(dur)
		stop()
		sys.sampleRates()
		agg.Flush(dur)
		r.AddSeries(metricKey(sc, "agg_bps", -1), &agg.Series)
		// Convergence: aggregate goodput within 10% of the 95% target
		// for 1 ms, and per-flow fairness within 25% at the end.
		worst := stats.ConvergenceTime(&agg.Series, 0, 0.95*10e9, 0.1, sim.Millisecond)
		fair := 0.95 * 10e9 / float64(n)
		fairOK := 0
		for _, fh := range flows {
			rate := fh.rate(dur-dur/4, dur)
			if rate > 0.75*fair && rate < 1.25*fair {
				fairOK++
			}
		}
		var rttAll stats.Samples
		for _, fh := range flows {
			s := fh.rtt()
			for _, p := range []float64{0.5, 0.9, 0.99, 1} {
				rttAll.Add(s.P(p))
			}
		}
		baseRTT := st.Graph.Diameter(1500).Micros()
		bound := 5 * baseRTT // 3·BDP inflight + baseRTT ≈ 4–5 baseRTTs
		conv := "no"
		if worst >= 0 {
			conv = worst.String()
		}
		r.Printf("%-18s convergence=%9s fair %2d/%2d  RTT p50≈%7.1fus max≈%8.1fus  (bound %.0fus)",
			sc, conv, fairOK, n, rttAll.P(0.25), rttAll.Max(), bound)
		if worst >= 0 {
			r.Metric(metricKey(sc, "conv_us", -1), worst.Micros())
		} else {
			r.Metric(metricKey(sc, "conv_us", -1), -1)
		}
		r.Metric(metricKey(sc, "rtt_max_us", -1), rttAll.Max())
	}
	r.Printf("paper shape: uFAB/uFAB' react fast; baselines 99p RTT ~ms; uFAB bounds the tail, uFAB' cuts it ~11x vs baselines")
	return r
}

// flowSeries returns the flow's sampled rate series.
func flowSeries(fh *flowHandle) *stats.Series {
	if fh.ufFlow != nil {
		return &fh.ufFlow.Meter.Series
	}
	return &fh.blFlow.Meter.Series
}
