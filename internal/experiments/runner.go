package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one (experiment, options) run. Each run builds its own private
// sim.Engine, so jobs are independent and safe to execute concurrently.
type Job struct {
	Entry *Entry
	Opts  Options
}

// RunResult is the outcome of one Job. Exactly one of Report and Err is
// set. Results are deterministic per (experiment, Options): for the same
// job a parallel batch and a sequential batch yield identical Reports.
type RunResult struct {
	Job    Job
	Report *Report
	// Err is set when the run panicked or exceeded the wall-clock
	// timeout; the rest of the batch is unaffected.
	Err      error
	TimedOut bool
	Wall     time.Duration
}

// Runner executes batches of experiment runs across a bounded worker
// pool with per-run panic recovery and wall-clock timeouts. The zero
// value runs one job per CPU with no timeout.
type Runner struct {
	// Jobs bounds concurrent runs; <=0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Timeout limits each run's wall-clock time; 0 means no limit. A
	// timed-out run is abandoned (its goroutine is left to finish in the
	// background — simulation runs cannot be preempted) and reported
	// via RunResult.TimedOut.
	Timeout time.Duration
}

// Run executes all jobs and returns their results in job order,
// regardless of completion order, so batch output is deterministic.
func (r *Runner) Run(jobs []Job) []RunResult {
	workers := r.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]RunResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				results[i] = r.runOne(jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// outcome carries the inner run's result across the timeout boundary so
// an abandoned goroutine never writes into the results slice.
type outcome struct {
	rep *Report
	err error
}

func (r *Runner) runOne(j Job) RunResult {
	res := RunResult{Job: j}
	start := time.Now()
	ch := make(chan outcome, 1) // buffered: an abandoned run must not block forever
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("experiment %s (seed %d) panicked: %v\n%s",
					j.Entry.ID, j.Opts.Seed, p, debug.Stack())}
			}
		}()
		ch <- outcome{rep: j.Entry.Run(j.Opts)}
	}()
	if r.Timeout > 0 {
		timer := time.NewTimer(r.Timeout)
		defer timer.Stop()
		select {
		case o := <-ch:
			res.Report, res.Err = o.rep, o.err
		case <-timer.C:
			res.TimedOut = true
			res.Err = fmt.Errorf("experiment %s (seed %d) exceeded timeout %v",
				j.Entry.ID, j.Opts.Seed, r.Timeout)
		}
	} else {
		o := <-ch
		res.Report, res.Err = o.rep, o.err
	}
	res.Wall = time.Since(start)
	return res
}

// ExpandIDs builds the job list for the given experiment ids, repeating
// each experiment `repeat` times with seeds opts.Seed, opts.Seed+1, …
// (repeat < 1 is treated as 1). Jobs are ordered experiment-major so a
// batch prints in registry order.
func ExpandIDs(ids []string, opts Options, repeat int) ([]Job, error) {
	if repeat < 1 {
		repeat = 1
	}
	jobs := make([]Job, 0, len(ids)*repeat)
	for _, id := range ids {
		e := Find(id)
		if e == nil {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		for k := 0; k < repeat; k++ {
			o := opts
			o.Seed = opts.Seed + int64(k)
			jobs = append(jobs, Job{Entry: e, Opts: o})
		}
	}
	return jobs, nil
}

// AllIDs returns every registered experiment id in registry order.
func AllIDs() []string {
	ids := make([]string, len(All))
	for i := range All {
		ids[i] = All[i].ID
	}
	return ids
}
