package experiments

// The large-scale simulations of §5.5: the 90-to-1 highly dynamic
// workload (Fig 16) and the real-workload sweep over oversubscription and
// load (Fig 17). The paper runs these in NS3 on a 512-server 100G
// FatTree; here the same scenarios run on this repository's simulator,
// scaled to topologies whose event counts a unit-test budget tolerates
// (the comparative shape is preserved; see DESIGN.md).

import (
	"fmt"

	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/workload"
)

// aggMeter samples the aggregate delivered rate of a flow set.
func aggMeter(eng sim.Scheduler, flows []*flowHandle, interval sim.Duration) *stats.RateMeter {
	m := stats.NewRateMeter("agg", interval)
	var last int64
	eng.Every(interval, func() {
		var d int64
		for _, fh := range flows {
			d += fh.delivered()
		}
		m.Add(eng.Now(), int(d-last))
		last = d
	})
	return m
}

// Fig16 runs the 90-to-1 on/off workload: every sender alternates between
// a 500 Mbps trickle and unlimited demand every 4 ms. μFAB converges to
// the new allocation within the phase; PWC overshoots then under-utilizes;
// ES recovers bandwidth fast but at high latency.
func Fig16(o Options) *Report {
	r := NewReport("fig16", "90-to-1 dynamic on/off workload")
	n := 90
	dur := 32 * sim.Millisecond
	if o.Quick {
		n = 60
		dur = 12 * sim.Millisecond
	}
	period := 4 * sim.Millisecond
	for _, sc := range []scheme{schemePWC, schemeES, schemeUFABPrime, schemeUFAB} {
		st := topo.NewStar(n+1, topo.Gbps(100), 2*sim.Microsecond)
		sys := newSystem(sc, o, st.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
		eng := sys.eng
		var flows []*flowHandle
		for i := 0; i < n; i++ {
			fh := sys.addFlow(int32(i+1), 1e9, st.Hosts[i], st.Hosts[n])
			flows = append(flows, fh)
			buf := fh.buffer()
			if buf.uf != nil {
				workload.OnOff(eng, buf.uf.Buffer, 500e6, period, 50<<20)
			} else {
				workload.OnOff(eng, buf.bl.Buffer, 500e6, period, 50<<20)
			}
		}
		agg := aggMeter(eng, flows, 100*sim.Microsecond)
		eng.RunUntil(dur)
		agg.Flush(dur)
		r.AddSeries(metricKey(sc, "agg_bps", -1), &agg.Series)
		// Utilization during the unlimited phases (odd periods).
		var unlimited, under stats.Samples
		for _, p := range agg.Series.Pts {
			phase := int(p.T / period)
			if phase%2 == 1 {
				unlimited.Add(p.V)
			} else if p.T > period/2 {
				under.Add(p.V)
			}
		}
		var rtt stats.Samples
		for _, fh := range flows {
			s := fh.rtt()
			for _, q := range []float64{0.5, 0.99, 1} {
				rtt.Add(s.P(q))
			}
		}
		r.Printf("%-18s unlimited-phase rate %6.1f G (target 95) | underload %5.1f G | RTT p99≈%8.1fus max %9.1fus",
			sc, unlimited.Mean()/1e9, under.Mean()/1e9, rtt.P(0.9), rtt.Max())
		r.Metric(metricKey(sc, "unlimited_gbps", -1), unlimited.Mean()/1e9)
		r.Metric(metricKey(sc, "rtt_max_us", -1), rtt.Max())
	}
	r.Printf("paper shape: PWC overshoots then under-utilizes; ES recovers but with high latency; uFAB converges with max RTT ~27x below PWC")
	return r
}

// fig17Config is one (oversubscription, load) cell of Fig 17.
type fig17Config struct {
	name   string
	clos   topo.ClosConfig
	load   float64
	hostsG float64 // per-host line rate
}

// Fig17 sweeps oversubscription (1:2 vs 1:1) and average load (0.5, 0.7)
// with the empirical heavy-tailed flow size distribution: bandwidth
// dissatisfaction, tail RTT, and FCT slowdown (with a size breakdown at
// 1:1 / load 0.7).
func Fig17(o Options) *Report {
	r := NewReport("fig17", "real workload sweep")
	pods := 4
	dur := 30 * sim.Millisecond
	if o.Quick {
		pods = 2
		dur = 10 * sim.Millisecond
	}
	clos12 := topo.ClosConfig{Pods: pods, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4,
		HostsPerToR: 4, LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond}
	clos11 := topo.ClosConfig{Pods: pods, ToRsPerPod: 2, AggsPerPod: 4, Cores: 8,
		HostsPerToR: 4, LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond}
	cells := []fig17Config{
		{"1:2 load 0.5", clos12, 0.5, 10e9},
		{"1:2 load 0.7", clos12, 0.7, 10e9},
		{"1:1 load 0.5", clos11, 0.5, 10e9},
		{"1:1 load 0.7", clos11, 0.7, 10e9},
	}
	if o.Quick {
		cells = cells[1:3]
	}
	const pairsPerHost = 3
	for _, cell := range cells {
		// Permutation destinations keep every host's ingress hose equal
		// to its egress hose, and guarantee = offered load per pair —
		// the Silo-feasibility the paper enforces ("we make sure the
		// minimum bandwidth of all VFs can be theoretically satisfied").
		hostsRng := newRand(o.Seed + 13)
		nHosts := 0
		{
			cl := topo.NewClos(cell.clos)
			nHosts = len(cl.Hosts)
		}
		offsets := make([]int, pairsPerHost)
		for k := range offsets {
			offsets[k] = 1 + hostsRng.Intn(nHosts-1)
		}
		for _, sc := range []scheme{schemePWC, schemeES, schemeUFAB} {
			cl := topo.NewClos(cell.clos)
			sys := newSystem(sc, o, cl.Graph, o.Seed, o.fabricTelemetry(r), o.fabricAudit(r))
			eng := sys.eng
			dist := workload.WebSearch()
			type pairState struct {
				msgs      *workload.Messages
				guarantee float64
				offered   int64
				fh        *flowHandle
				// Per-pair slowdown accumulators: completion callbacks run
				// in the source host's shard, so each pair writes only its
				// own samples and the run-wide aggregation happens after
				// the horizon, in pair order.
				slow stats.Samples
				bins map[string]*stats.Samples
			}
			var pairs []*pairState
			var slow, rttAgg stats.Samples
			binsAvg := map[string]*stats.Samples{}
			vfID := int32(0)
			perPairLoad := cell.load * cell.hostsG / pairsPerHost
			for hi, src := range cl.Hosts {
				for k := 0; k < pairsPerHost; k++ {
					dst := cl.Hosts[(hi+offsets[k])%len(cl.Hosts)]
					vfID++
					guarantee := perPairLoad
					msgs, fh := sys.addMessageFlow(vfID, guarantee, src, dst)
					// Flows are independent entities sharing the pair's
					// allocation, not a FIFO behind one another.
					msgs.Sharing = true
					ps := &pairState{msgs: msgs, guarantee: guarantee, fh: fh,
						bins: map[string]*stats.Samples{}}
					pairs = append(pairs, ps)
					msgs.Observe(func(m workload.Message, fct sim.Duration) {
						sd := stats.Slowdown(fct, int(m.Size), guarantee)
						ps.slow.Add(sd)
						bin := sizeBin(m.Size)
						if ps.bins[bin] == nil {
							ps.bins[bin] = &stats.Samples{}
						}
						ps.bins[bin].Add(sd)
					})
					stopArrivals := workload.Poisson(eng, newRand(o.Seed+int64(vfID)), dist, perPairLoad,
						func(size int64, now sim.Time) {
							ps.offered += size
							msgs.Send(size, now)
						})
					// Arrivals stop at 75% of the horizon so in-flight
					// messages can drain before dissatisfaction is read.
					eng.At(dur*3/4, stopArrivals)
				}
			}
			eng.RunUntil(dur)
			sys.mergeTenantFCT()
			for _, ps := range pairs {
				slow.AddAll(&ps.slow)
				for bin, s := range ps.bins {
					if binsAvg[bin] == nil {
						binsAvg[bin] = &stats.Samples{}
					}
					binsAvg[bin].AddAll(s)
				}
			}
			// Dissatisfaction: owed = min(offered rate, guarantee).
			cutoff := (dur * 3 / 4).Seconds()
			var achieved, owed, demand []float64
			for _, ps := range pairs {
				achieved = append(achieved, float64(ps.fh.delivered()*8)/cutoff)
				owed = append(owed, ps.guarantee)
				demand = append(demand, float64(ps.offered*8)/cutoff)
			}
			dissat := stats.Dissatisfaction(achieved, owed, demand) * 100
			for _, ps := range pairs {
				s := ps.fh.rtt()
				if s.Len() > 0 {
					rttAgg.Add(s.P(0.99))
				}
			}
			r.Printf("%-12s %-18s dissat %5.1f%%  p99RTT %8.1fus  slowdown avg %6.2f p99 %8.2f (n=%d)",
				cell.name, sc, dissat, rttAgg.P(0.99), slow.Mean(), slow.P(0.99), slow.Len())
			tag := fmt.Sprintf("%s.%s", metricKey(sc, "dissat_pct", -1), sanitize(cell.name))
			r.Metric(tag, dissat)
			r.Metric(fmt.Sprintf("%s.%s", metricKey(sc, "slow_p99", -1), sanitize(cell.name)), slow.P(0.99))
			if cell.name == "1:1 load 0.7" || (o.Quick && cell.name == "1:1 load 0.5") {
				for _, bin := range []string{"<10K", "10-100K", "100K-1M", ">1M"} {
					if s := binsAvg[bin]; s != nil {
						r.Printf("    %-12s size %-8s slowdown avg %6.2f p99 %8.2f (n=%d)",
							sc, bin, s.Mean(), s.P(0.99), s.Len())
					}
				}
			}
		}
	}
	r.Printf("paper shape: uFAB far lower dissatisfaction and slowdown, especially at 0.7 load; ES beats PWC on dissatisfaction but pays tail RTT")
	return r
}

func sizeBin(size int64) string {
	switch {
	case size < 10_000:
		return "<10K"
	case size < 100_000:
		return "10-100K"
	case size < 1_000_000:
		return "100K-1M"
	default:
		return ">1M"
	}
}

// sanitize flattens a display name into one dot-free token, usable both
// as a segment of a dotted metric name and in a CSV filename.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == ' ' || c == ':' || c == '.':
			out = append(out, '_')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
