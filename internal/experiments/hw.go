package experiments

// Hardware-oriented experiments: Fig 15 (100GE predictability with
// failure; probing overhead) and the Tables 3/4 resource models.

import (
	"ufab/internal/chaos"
	"ufab/internal/probe"
	"ufab/internal/resmodel"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// Fig15 runs (a) seven VFs with staggered entry on the 100GE testbed,
// failing Core1 mid-run — μFAB keeps guarantees, migrates the victims and
// holds a near-zero queue; and (b) the probing-overhead scaling: with
// self-clocked probes every L_w = 4 KB, overhead is bounded by
// L_p/(L_p+L_w) regardless of the number of VM-pairs.
func Fig15(o Options) *Report {
	r := NewReport("fig15", "100GE predictability and probing overhead")
	enterEvery := 10 * sim.Millisecond
	failAt := 90 * sim.Millisecond
	dur := 120 * sim.Millisecond
	if o.Quick {
		enterEvery = 2 * sim.Millisecond
		failAt = 18 * sim.Millisecond
		dur = 26 * sim.Millisecond
	}
	// ---- (a) predictability under churn and failure ----
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{LinkCapacity: topo.Gbps(100)})
	uf := vfabric.New(eng, tb.Graph, vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)})
	guarantees := []float64{5e9, 5e9, 5e9, 10e9, 10e9, 10e9, 15e9}
	var flows []*vfabric.Flow
	for i, g := range guarantees {
		i, g := i, g
		eng.At(sim.Time(i)*enterEvery, func() {
			vf := uf.AddVF(int32(i+1), g, weightClass(g))
			fl := uf.AddFlow(vf, tb.Servers[i], tb.Servers[7], 0)
			fl.Buffer.Add(1 << 44)
			flows = append(flows, fl)
		})
	}
	// The Core1 crash is expressed as a chaos scenario: one NodeCrash
	// event at failAt, injected at setup so the event time is absolute.
	inj := uf.ApplyScenario(chaos.New("fig15-core1-crash").CrashNode(sim.Duration(failAt), tb.Cores[0]))
	stop := uf.StartSampling(250 * sim.Microsecond)
	eng.RunUntil(dur)
	stop()
	uf.SampleRates()
	satisfied := 0
	migrations := 0
	for i, fl := range flows {
		r.AddSeries("vf"+itoa(i+1)+"_bps", &fl.Meter.Series)
		rate := fl.Rate(dur-dur/10, dur)
		ok := rate >= 0.9*guarantees[i]
		if ok {
			satisfied++
		}
		migrations += fl.Pair.Migrations
		r.Printf("VF-%d (%2.0fG): final rate %6.2f G, migrations %d, guarantee kept: %v",
			i+1, guarantees[i]/1e9, rate/1e9, fl.Pair.Migrations, ok)
	}
	bdp := 100e9 * tb.Graph.Diameter(1500).Seconds() / 8
	maxQ := float64(uf.MaxQueueBytes())
	r.Printf("after Core1 failure at %v: %d/%d guarantees kept, %d total migrations, max queue %.0f KB (3BDP = %.0f KB)",
		failAt, satisfied, len(flows), migrations, maxQ/1e3, 3*bdp/1e3)
	r.Metric("guarantee.satisfied", float64(satisfied))
	r.Metric("faults.migrations", float64(migrations))
	r.Metric("queue.maxq_over_3bdp", maxQ/(3*bdp))
	for _, rec := range inj.Log {
		r.Printf("chaos: %s", rec)
	}
	r.Metric("chaos.node_crashes", float64(inj.Applied(chaos.NodeCrash)))

	// ---- (b) probing overhead vs number of VM-pairs ----
	lw := int64(4096)
	counts := []int{1, 10, 100, 1000}
	if o.Quick {
		counts = []int{1, 10, 100}
	}
	for _, n := range counts {
		eng2 := sim.New()
		st := topo.NewStar(2, topo.Gbps(100), 2*sim.Microsecond)
		cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
		cfg.Edge.ProbePayloadBytes = lw
		uf2 := vfabric.New(eng2, st.Graph, cfg)
		vf := uf2.AddVF(1, 50e9, 6)
		for i := 0; i < n; i++ {
			fl := uf2.AddFlow(vf, st.Hosts[0], st.Hosts[1], 0)
			fl.Buffer.Add(1 << 40)
		}
		horizon := 4 * sim.Millisecond
		if o.Quick {
			horizon = 2 * sim.Millisecond
		}
		eng2.RunUntil(horizon)
		ovh := uf2.ProbeOverhead() * 100
		r.Printf("probing overhead with %4d VM-pairs: %.3f%%", n, ovh)
		r.Metric("probe.overhead_pct."+itoa(n), ovh)
	}
	lp := float64(probe.WireSize(3))
	bound := lp / (lp + float64(lw)) * 100
	r.Printf("analytic bound L_p/(L_p+L_w) = %.2f%% (paper: 1.28%% with their L_p); overhead flattens with VM-pair count", bound)
	r.Metric("probe.overhead_bound_pct", bound)
	return r
}

// Table3 prints the μFAB-E FPGA resource model at the paper's prototype
// scale (8K VM-pairs, 1K tenants).
func Table3(o Options) *Report {
	r := NewReport("tab3", "uFAB-E FPGA resource consumption (model)")
	rows := resmodel.EdgeTable(resmodel.EdgeConfig{VMPairs: 8192, Tenants: 1024})
	for _, line := range splitLines(resmodel.FormatEdgeTable(rows)) {
		r.Printf("%s", line)
	}
	total := rows[len(rows)-1]
	r.Metric("fpga.total_lut_pct", total.LUT)
	r.Metric("fpga.total_bram_pct", total.BRAM)
	r.Metric("fpga.total_uram_pct", total.URAM)
	r.Printf("paper Table 3 totals: LUT 7.6%%, Registers 5.8%%, BRAM 16.4%%, URAM 9.5%%")
	return r
}

// Table4 prints the μFAB-C switch resource model for 20K/40K/80K VM-pairs.
func Table4(o Options) *Report {
	r := NewReport("tab4", "uFAB-C switch resource consumption (model)")
	cols := resmodel.CoreTable(nil)
	for _, line := range splitLines(resmodel.FormatCoreTable(cols)) {
		r.Printf("%s", line)
	}
	for _, c := range cols {
		r.Metric("switch.sram_pct."+itoa(c.VMPairs/1000)+"k", c.SRAM)
	}
	r.Printf("paper Table 4 SRAM: 17.29%% / 17.71%% / 18.75%% — only the active-pair table scales")
	return r
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
