package experiments

import (
	"testing"

	"ufab/internal/audit"
	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// TestPlaceChurnAuditClean: every tenant of the placechurn experiment
// goes through checked admission, so the audited run — including the
// ledger_bound invariant against the controller's commitments — must be
// spotless across seeds.
func TestPlaceChurnAuditClean(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		r := PlaceChurn(Options{Quick: true, Seed: seed, Audit: true})
		if n := r.Findings.Unexcused(); n != 0 {
			for _, f := range r.Findings.Findings() {
				t.Logf("seed %d: %s %s observed %.3g bound %.3g %s excused=%v",
					seed, f.Kind, f.Entity, f.Observed, f.Bound, f.Unit, f.Excused)
			}
			t.Fatalf("seed %d: %d unexcused finding(s) in checked-admit churn", seed, n)
		}
	}
}

// oversubRun materializes six 2G incast tenants (S1..S6 → S8, Σ = 12G
// against the 10G bottleneck) on an audited testbed. With checked=false
// every spec is force-admitted straight into the fabric; with
// checked=true each spec must first pass the admission controller at
// factor 0.8 (8G budget → four tenants). Returns the audit log and how
// many tenants reached the data plane.
func oversubRun(t *testing.T, checked bool) (*audit.Log, int) {
	t.Helper()
	o := Options{Quick: true, Seed: 1, Audit: true}
	r := NewReport("test", "oversubscription probe")
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
	uf := vfabric.New(eng, tb.Graph, cfg)
	var ctl *placement.Controller
	if checked {
		ctl = placement.NewController(eng, tb.Graph, nil, placement.Config{Oversubscription: 0.8})
		uf.Cfg.Ledger = ctl.Ledger()
	}
	materialized := 0
	for i := 0; i < 6; i++ {
		spec := chaos.TenantSpec{
			VF: int32(i + 1), GuaranteeBps: 2e9, WeightClass: weightClass(2e9),
			Pairs: []chaos.PairSpec{{Src: tb.Servers[i], Dst: tb.Servers[7]}},
		}
		if checked && !ctl.AdmitSpec(spec) {
			continue
		}
		if !uf.AddTenant(spec) {
			t.Fatalf("tenant %d spec invalid", i+1)
		}
		materialized++
	}
	stop := uf.StartSampling(250 * sim.Microsecond)
	eng.RunUntil(20 * sim.Millisecond)
	stop()
	uf.SampleRates()
	return r.Findings, materialized
}

// TestForceAdmitOversubscriptionFlagged is the knob the suite documents:
// force-admitting guarantees past line rate must surface as unexcused
// min_bw findings, while routing the same specs through checked
// admission keeps the committed subscription honest and the run clean.
func TestForceAdmitOversubscriptionFlagged(t *testing.T) {
	forced, n := oversubRun(t, false)
	if n != 6 {
		t.Fatalf("force-admit materialized %d tenants, want all 6", n)
	}
	minBW := 0
	for _, f := range forced.Findings() {
		if f.Kind == audit.MinBWViolation && !f.Excused {
			minBW++
		}
	}
	if minBW == 0 {
		t.Fatalf("force-admitted 12G over a 10G bottleneck produced no unexcused min_bw finding (%d findings total)",
			len(forced.Findings()))
	}

	gated, n := oversubRun(t, true)
	if n != 4 {
		t.Fatalf("checked admission materialized %d tenants, want 4 (8G budget / 2G hoses)", n)
	}
	if un := gated.Unexcused(); un != 0 {
		for _, f := range gated.Findings() {
			t.Logf("%s %s observed %.3g bound %.3g %s", f.Kind, f.Entity, f.Observed, f.Bound, f.Unit)
		}
		t.Fatalf("checked-admit run has %d unexcused finding(s)", un)
	}
}

// TestPlaceExperimentsDeterministic pins the ledger-only experiments'
// reports to be identical across repeated runs (the materialized
// placechurn path is covered by the runner determinism gate via fastIDs).
func TestPlaceExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"placecmp", "placesweep"} {
		e := Find(id)
		if e == nil {
			t.Fatalf("unknown experiment %q", id)
		}
		a := e.Run(Options{Quick: true, Seed: 1}).String()
		b := e.Run(Options{Quick: true, Seed: 1}).String()
		if a != b {
			t.Fatalf("%s not deterministic:\n--- first\n%s\n--- second\n%s", id, a, b)
		}
	}
}
