package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// dumpFindings renders a findings log for a test failure message.
func dumpFindings(t *testing.T, r *Report) string {
	t.Helper()
	var b strings.Builder
	if err := r.Findings.WriteJSONL(&b); err != nil {
		t.Fatalf("%s: WriteJSONL: %v", r.ID, err)
	}
	return b.String()
}

// TestAuditAllExperimentsClean is the standing auditor gate: every
// fault-free experiment in the registry must audit clean — zero
// unexcused findings — and every fault-injection experiment must stay
// clean outside its declared fault windows while producing at least the
// excused findings its scenario declares.
func TestAuditAllExperimentsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full audited batch is not -short material")
	}
	jobs, err := ExpandIDs(AllIDs(), Options{Quick: true, Seed: 1, Audit: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := (&Runner{}).Run(jobs)
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%v", res.Err)
		}
		r := res.Report
		if r.Findings == nil {
			// No μFAB fabric under audit (resource-model tables,
			// baseline-only motivation figures).
			continue
		}
		if n := r.Findings.Unexcused(); n != 0 {
			t.Errorf("%s: %d unexcused finding(s):\n%s", r.ID, n, dumpFindings(t, r))
		}
		if d := r.Findings.Dropped(); d != 0 {
			t.Errorf("%s: findings log dropped %d findings (cap too small or auditor runaway)", r.ID, d)
		}
		if min := r.Findings.ExpectExcusedMin; r.Findings.Excused() < min {
			t.Errorf("%s: %d excused finding(s), scenario declares >= %d — injected faults were not observed",
				r.ID, r.Findings.Excused(), min)
		}
	}
}

// auditIDs keeps the audited determinism gate cheap while spanning a
// baseline comparison (fig4), a multi-fabric run with a chaos crash
// (fig15), a fault-suite flap whose excuse windows must land identically
// (flap), the admission-checked churn whose ledger_bound invariant
// tracks the control plane's commitments (placechurn), and the
// reconciler convergence run whose crash/drain displacements must
// converge identically (reconcile).
var auditIDs = []string{"fig4", "fig15", "flap", "placechurn", "reconcile"}

// TestAuditParallelDeterminism extends the `-jobs`-proof gate to the
// audited path: with the auditor attached, both the rendered report and
// the exported findings JSONL must be byte-identical between a
// sequential and a parallel batch.
func TestAuditParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		opts := Options{Quick: true, Seed: seed, Audit: true}
		jobs, err := ExpandIDs(auditIDs, opts, 1)
		if err != nil {
			t.Fatal(err)
		}
		seq := (&Runner{Jobs: 1}).Run(jobs)
		par := (&Runner{Jobs: 8}).Run(jobs)
		for i := range seq {
			if seq[i].Err != nil || par[i].Err != nil {
				t.Fatalf("seed %d job %d: errs %v / %v", seed, i, seq[i].Err, par[i].Err)
			}
			a, b := seq[i].Report, par[i].Report
			if as, bs := a.String(), b.String(); as != bs {
				t.Errorf("seed %d %s: rendered reports differ between -jobs 1 and -jobs 8", seed, a.ID)
			}
			if af, bf := dumpFindings(t, a), dumpFindings(t, b); af != bf {
				t.Errorf("seed %d %s: findings JSONL differs between -jobs 1 and -jobs 8:\n--- sequential\n%s--- parallel\n%s",
					seed, a.ID, af, bf)
			}
		}
	}
}

// TestAuditDoesNotChangeResults guards the auditor's pure-observer
// contract: enabling it must leave every headline metric exactly as in
// an unaudited run.
func TestAuditDoesNotChangeResults(t *testing.T) {
	for _, id := range []string{"fig15", "flap"} {
		e := Find(id)
		if e == nil {
			t.Fatalf("unknown experiment %q", id)
		}
		plain := e.Run(Options{Quick: true, Seed: 1}).Metrics()
		audited := e.Run(Options{Quick: true, Seed: 1, Audit: true}).Metrics()
		if !reflect.DeepEqual(plain, audited) {
			t.Errorf("%s: metrics changed under audit:\noff: %v\non:  %v", id, plain, audited)
		}
	}
}
