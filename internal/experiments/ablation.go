package experiments

// Ablations of μFAB's design choices (DESIGN.md): the two-stage admission
// burst bound, the Guarantee Partitioning token loop, path migration, and
// the probing payload L_w. Each ablation removes one mechanism and
// measures the quantity that mechanism exists to protect.

import (
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/ufabe"
	"ufab/internal/vfabric"
)

func init() {
	All = append(All, Entry{
		ID:    "abl",
		Title: "ablations: two-stage admission, GP, migration, probing payload",
		Run:   Ablations,
	})
}

// Ablations runs the four ablations and reports what breaks.
func Ablations(o Options) *Report {
	r := NewReport("abl", "design ablations")
	dur := 10 * sim.Millisecond
	n := 12
	if o.Quick {
		dur = 5 * sim.Millisecond
		n = 8
	}

	// ---- (a) two-stage admission: max RTT in a synchronized incast ----
	incast := func(mutate func(*vfabric.Config)) (maxRTT float64, maxQ int, overhead float64) {
		eng := sim.New()
		st := topo.NewStar(n+1, topo.Gbps(10), 5*sim.Microsecond)
		cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r), Audit: o.fabricAudit(r)}
		if mutate != nil {
			mutate(&cfg)
		}
		uf := vfabric.New(eng, st.Graph, cfg)
		var flows []*vfabric.Flow
		for i := 0; i < n; i++ {
			vf := uf.AddVF(int32(i+1), 500e6, 2)
			fl := uf.AddFlow(vf, st.Hosts[i], st.Hosts[n], 0)
			fl.Buffer.Add(1 << 40)
			flows = append(flows, fl)
		}
		eng.RunUntil(dur)
		var rtt stats.Samples
		for _, fl := range flows {
			rtt.Add(fl.Pair.RTT.Max())
		}
		return rtt.Max(), uf.MaxQueueBytes(), uf.ProbeOverhead() * 100
	}
	fullRTT, fullQ, _ := incast(nil)
	noStageRTT, noStageQ, _ := incast(func(c *vfabric.Config) { c.Edge.DisableTwoStage = true })
	r.Printf("two-stage admission: max RTT %6.1fus / queue %3dKB with, %6.1fus / %3dKB without",
		fullRTT, fullQ/1024, noStageRTT, noStageQ/1024)
	r.Metric("full.rtt_max_us", fullRTT)
	r.Metric("nostage.rtt_max_us", noStageRTT)

	// ---- (b) probing payload L_w: overhead vs burst containment ----
	for _, lw := range []int64{1024, 4096, 16384} {
		rtt, _, ovh := incast(func(c *vfabric.Config) { c.Edge.ProbePayloadBytes = lw })
		r.Printf("L_w = %5d B: probing overhead %5.2f%%, max RTT %6.1fus", lw, ovh, rtt)
		r.Metric("lw"+itoa(int(lw))+".overhead_pct", ovh)
	}

	// ---- (c) Guarantee Partitioning: bursty pair reclaiming its hose ----
	gp := func(disable bool) float64 {
		eng := sim.New()
		st := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
		cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r)}
		if disable {
			// GP off is deliberate sabotage of the guarantee machinery — the
			// auditor would (correctly) flag it, so only the healthy variant
			// is audited.
			cfg.Edge.TokenPeriod = -1
		} else {
			cfg.Audit = o.fabricAudit(r)
		}
		uf := vfabric.New(eng, st.Graph, cfg)
		vf := uf.AddVF(1, 4e9, 4) // 40-token hose
		// Two pairs of the same VF: static split gives each 20 tokens;
		// GP moves the idle pair's share to the busy one.
		busyBuf := &ufabe.Buffer{}
		busy := uf.AddFlowDemand(vf, st.Hosts[0], st.Hosts[1], 20, busyBuf)
		_ = uf.AddFlowDemand(vf, st.Hosts[0], st.Hosts[2], 20, &ufabe.Buffer{})
		// A competing tenant keeps the uplink fully subscribed so the
		// busy pair's rate tracks its token share.
		other := uf.AddVF(2, 6e9, 5)
		comp := uf.AddFlow(other, st.Hosts[1], st.Hosts[0], 0)
		_ = comp
		compUp := uf.AddFlow(other, st.Hosts[2], st.Hosts[1], 0)
		compUp.Buffer.Add(1 << 40)
		busyBuf.Add(1 << 40)
		// Competitor shares the busy pair's destination downlink.
		stop := uf.StartSampling(200 * sim.Microsecond)
		eng.RunUntil(dur)
		stop()
		uf.SampleRates()
		return busy.Rate(dur/2, dur)
	}
	withGP := gp(false)
	withoutGP := gp(true)
	r.Printf("guarantee partitioning: busy pair %5.2f G with GP vs %5.2f G with static tokens (4G hose)",
		withGP/1e9, withoutGP/1e9)
	r.Metric("gp.rate_gbps", withGP/1e9)
	r.Metric("static.rate_gbps", withoutGP/1e9)

	// ---- (d) migration: colliding placement with and without candidates ----
	migr := func(pinned bool) float64 {
		eng := sim.New()
		tt := topo.NewTwoTier(2, 3, topo.Gbps(10), 5*sim.Microsecond)
		cfg := vfabric.Config{Seed: o.Seed, Telemetry: o.fabricTelemetry(r)}
		if !pinned {
			// The pinned variant deliberately overcommits one path (that is
			// the ablation); only the healthy multi-candidate run is audited.
			cfg.Audit = o.fabricAudit(r)
		}
		uf := vfabric.New(eng, tt.Graph, cfg)
		var flows []*vfabric.Flow
		for i := 0; i < 3; i++ {
			vf := uf.AddVF(int32(i+1), 4e9, 4)
			all := tt.Graph.Paths(tt.HostsLeft[i], tt.HostsRight[i], 0)
			routes := all
			if pinned {
				// Worst-case placement with no way out: everyone on
				// the first path only.
				routes = all[:1]
			}
			buf := &ufabe.Buffer{}
			fl := uf.AddFlowRoutes(vf, routes, 0, buf)
			buf.Add(1 << 40)
			flows = append(flows, fl)
		}
		stop := uf.StartSampling(200 * sim.Microsecond)
		eng.RunUntil(2 * dur)
		stop()
		uf.SampleRates()
		worst := -1.0
		for _, fl := range flows {
			rate := fl.Rate(dur, 2*dur)
			if worst < 0 || rate < worst {
				worst = rate
			}
		}
		return worst
	}
	withMigr := migr(false) // all paths available
	without := migr(true)   // everyone pinned to one path
	r.Printf("path migration: worst flow %5.2f G with candidates vs %5.2f G pinned (3x4G on 2x10G paths)",
		withMigr/1e9, without/1e9)
	r.Metric("migration.worst_gbps", withMigr/1e9)
	r.Metric("pinned.worst_gbps", without/1e9)
	r.Printf("expected: two-stage bounds the incast tail; GP roughly doubles the busy pair; migration rescues the worst flow when initial placement collides")
	return r
}
