// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from an Options struct to
// a Report; the cmd/ufabsim CLI, the root bench harness and EXPERIMENTS.md
// are all generated from the same functions.
//
// Absolute numbers differ from the paper (the substrate is a discrete-event
// simulator, not the authors' testbed), but each Report records the
// quantities whose *shape* the paper's claims rest on: who keeps its
// guarantee, whose tail latency is bounded, where the crossovers fall.
package experiments

import (
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"
	"strings"

	"ufab/internal/audit"
	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
	"ufab/internal/workload"

	blhost "ufab/internal/baseline/host"
)

// Options tunes an experiment run. The JSON tags pin the encoding used by
// the golden_metrics.json regression baseline.
type Options struct {
	// Quick runs a scaled-down version (shorter horizon, smaller
	// fan-in) suitable for go test -bench.
	Quick bool `json:"quick"`
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64 `json:"seed"`
	// Scenario, when non-empty, is a chaos scenario as JSON (see
	// internal/chaos). Only the chaoslab experiment consumes it; the
	// regression baseline is recorded with it empty, so the field is
	// omitted from golden_metrics.json.
	Scenario string `json:"scenario,omitempty"`
	// Telemetry attaches the run's unified registry to the fabric under
	// test: per-link instruments, agent counters, and the flight
	// recorder. Headline metrics and golden comparison are unaffected —
	// instrumentation never feeds back into the simulation — so results
	// are bit-identical with it on or off. Excluded from the golden
	// encoding.
	Telemetry bool `json:"-"`
	// Audit additionally runs the online predictability auditor over the
	// fabric under test (implies Telemetry for that fabric): every
	// sampling tick is checked against the min-bandwidth, work
	// conservation, queue-bound and register-accounting invariants, with
	// findings collected in Report.Findings. Like Telemetry, the auditor
	// is a pure observer — headline metrics and golden comparison are
	// unaffected. Excluded from the golden encoding.
	Audit bool `json:"-"`
	// Shards selects the μFAB simulation's execution mode: 0 runs each
	// fabric sequentially (through per-shard views of one engine), N >= 1
	// runs it on the sharded parallel-in-time core with N workers. Results
	// are bit-identical for every value — metrics, snapshots and traces —
	// which `check -shards N` and the shard-identity tests enforce. The
	// baseline already records with it zero, so the field is omitted from
	// golden_metrics.json.
	Shards int `json:"shards,omitempty"`
}

// fabricTelemetry returns the registry a fabric under test should attach
// (the report's own registry, flight recorder enabled), or nil when o
// does not ask for telemetry.
func (o Options) fabricTelemetry(r *Report) *telemetry.Registry {
	if !o.Telemetry && !o.Audit {
		return nil
	}
	r.Reg.EnableRecorder(0)
	return r.Reg
}

// fabricAudit returns the auditor configuration a fabric under test
// should attach, or nil when o does not ask for auditing. All audited
// fabrics of one run share the report's findings log. Experiments whose
// point is a deliberately crippled variant (pinned paths, disabled token
// loop) must not pass the result to that variant — the auditor would
// correctly flag the sabotage.
func (o Options) fabricAudit(r *Report) *audit.Config {
	if !o.Audit {
		return nil
	}
	if r.Findings == nil {
		r.Findings = &audit.Log{}
	}
	return &audit.Config{Log: r.Findings}
}

// Report is an experiment's structured result, built on the unified
// telemetry registry: headline metrics are gauges, attached curves are
// ring-buffer series, all under the dotted entity.instance.metric naming
// scheme. When the run's fabric is instrumented (Options.Telemetry), its
// per-link/per-agent instruments live in the same registry and come out
// of the same Snapshot; golden comparison still only sees the headline
// metrics recorded through Metric.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Reg is the run's unified telemetry registry.
	Reg *telemetry.Registry
	// Findings is the predictability auditor's output when the run was
	// audited (Options.Audit); nil otherwise. Deliberately not a headline
	// metric: golden comparison must stay identical with auditing on or
	// off.
	Findings *audit.Log

	order       []string // headline metric names, insertion order
	seriesNames []string // attached series names, insertion order
}

// NewReport creates an empty report with a fresh registry.
func NewReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Reg: telemetry.New()}
}

// Printf appends a formatted line.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// seriesKey maps an attached curve's display name to its registry name.
func seriesKey(name string) string { return "series." + telemetry.Token(name) }

// AddSeries attaches a named curve to the report, copying its points into
// a registry series.
func (r *Report) AddSeries(name string, s *stats.Series) {
	ts := r.Reg.Series(seriesKey(name), len(s.Pts))
	for _, pt := range s.Pts {
		ts.Add(int64(pt.T), pt.V)
	}
	r.seriesNames = append(r.seriesNames, name)
}

// SeriesCount returns how many curves are attached.
func (r *Report) SeriesCount() int { return len(r.seriesNames) }

// WriteCSV writes every attached series as CSV (time_us,value) files named
// <id>_<series>.csv under dir.
func (r *Report) WriteCSV(dir string) error {
	snap := r.Reg.Snapshot()
	points := make(map[string][]telemetry.Point, len(snap.Series))
	for _, sv := range snap.Series {
		points[sv.Name] = sv.Points
	}
	for _, name := range r.seriesNames {
		file := r.ID + "_" + sanitize(name) + ".csv"
		var b strings.Builder
		b.WriteString("time_us,value\n")
		for _, pt := range points[seriesKey(name)] {
			fmt.Fprintf(&b, "%.3f,%g\n", sim.Time(pt.T).Micros(), pt.V)
		}
		if err := os.WriteFile(filepath.Join(dir, file), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Metric records a headline number under a dotted name (the registry
// panics on undotted names). Re-recording a name overwrites its value but
// keeps its original position.
func (r *Report) Metric(name string, v float64) {
	g := r.Reg.Gauge(name) // validates the name even for duplicates
	for _, k := range r.order {
		if k == name {
			g.Set(v)
			return
		}
	}
	r.order = append(r.order, name)
	g.Set(v)
}

// Metrics returns the headline metrics as a name → value map. Fabric
// instruments sharing the registry are excluded: only names recorded
// through Metric appear, which keeps golden comparison identical whether
// telemetry is on or off.
func (r *Report) Metrics() map[string]float64 {
	out := make(map[string]float64, len(r.order))
	for _, k := range r.order {
		out[k] = r.Reg.GaugeValue(k)
	}
	return out
}

// MetricNames returns metric keys in insertion order.
func (r *Report) MetricNames() []string { return r.order }

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.order) > 0 {
		b.WriteString("-- metrics --\n")
		for _, k := range r.order {
			fmt.Fprintf(&b, "%s = %.4g\n", k, r.Reg.GaugeValue(k))
		}
	}
	return b.String()
}

// Entry describes one runnable experiment.
type Entry struct {
	ID    string
	Title string
	Run   func(Options) *Report
}

// All lists every experiment in paper order.
var All = []Entry{
	{"fig1", "ECS motivation: bursty interference inflates tail RTT at low average load", Fig1},
	{"fig2", "EBS motivation: millisecond bursts inflate tail task completion time", Fig2},
	{"fig3", "Hash polarization: load imbalance across equivalent uplinks", Fig3},
	{"fig4", "Case-1: incast RTT distribution vs incast degree (PWC vs uFAB)", Fig4},
	{"fig5", "Case-2: utilization-oriented migration breaks bandwidth guarantees", Fig5},
	{"fig11", "Bandwidth guarantee with work conservation under high load", Fig11},
	{"fig12", "14-to-1 incast: convergence and bounded latency", Fig12},
	{"fig13", "Memcached QPS/QCT under MongoDB background traffic", Fig13},
	{"fig14", "EBS task completion times under guarantees", Fig14},
	{"fig15", "100GE predictability under churn and failure; probing overhead", Fig15},
	{"fig16", "90-to-1 highly dynamic workload", Fig16},
	{"fig17", "Real workload on the large fabric (oversubscription x load sweep)", Fig17},
	{"fig18", "Sensitivity: migration freeze window and probing frequency", Fig18},
	{"fig19", "Control-law reaction: primal (2 RTT) vs dual (4 RTT)", Fig19},
	{"fig20", "Heterogeneous response delays: 128-to-1 convergence", Fig20},
	{"tab3", "uFAB-E FPGA resource consumption model", Table3},
	{"tab4", "uFAB-C switch resource consumption model", Table4},
	{"shardsim", "sharded parallel-in-time core: cross-pod workload identity", ShardSim},
}

// Find returns the entry with the given id, or nil.
func Find(id string) *Entry {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// ---- shared fabric helpers --------------------------------------------------

// scheme identifies the system under test in comparative experiments.
type scheme int

const (
	schemeUFAB scheme = iota
	schemeUFABPrime
	schemePWC
	schemeES
)

func (s scheme) String() string {
	switch s {
	case schemeUFAB:
		return "uFAB"
	case schemeUFABPrime:
		return "uFAB'"
	case schemePWC:
		return "PicNIC'+WCC+Clove"
	case schemeES:
		return "ES+Clove"
	}
	return "?"
}

// system is the uniform handle over a μFAB or baseline deployment used by
// the comparative experiments.
type system struct {
	scheme scheme
	// eng drives the deployment's simulation and doubles as the
	// coordinator scheduling context: experiment timelines (workload
	// feeders, chaos, samplers) scheduled here run at global barriers with
	// exclusive access to fabric state in every execution mode.
	eng   sim.Driver
	graph *topo.Graph

	uf *vfabric.Fabric
	bl *blhost.Fabric

	// reg is the attached registry (nil when telemetry is off). fctVFs and
	// fctPair track the per-pair FCT histograms created by addMessageFlow
	// so mergeTenantFCT can aggregate them per tenant after the run. Both
	// are written only at setup time (coordinator context).
	reg     *telemetry.Registry
	fctVFs  []int32
	fctPair map[int32][]*telemetry.Histogram
}

// flowHandle is the uniform per-flow measurement handle.
type flowHandle struct {
	ufFlow *vfabric.Flow
	blFlow *blhost.FlowHandle
}

func (h *flowHandle) buffer() *flowBuffer {
	if h.ufFlow != nil {
		return &flowBuffer{uf: h.ufFlow}
	}
	return &flowBuffer{bl: h.blFlow}
}

// flowBuffer writes demand into either fabric's buffer.
type flowBuffer struct {
	uf *vfabric.Flow
	bl *blhost.FlowHandle
}

func (b *flowBuffer) Add(n int64) {
	if b.uf != nil {
		b.uf.Buffer.Add(n)
	} else {
		b.bl.Buffer.Add(n)
	}
}

func (b *flowBuffer) Drain() {
	if b.uf != nil {
		b.uf.Buffer.Consume(b.uf.Buffer.Pending())
	} else {
		b.bl.Buffer.Consume(b.bl.Buffer.Pending())
	}
}

func (h *flowHandle) rate(from, to sim.Time) float64 {
	if h.ufFlow != nil {
		return h.ufFlow.Rate(from, to)
	}
	return h.blFlow.Rate(from, to)
}

func (h *flowHandle) rtt() *stats.Samples {
	if h.ufFlow != nil {
		return &h.ufFlow.Pair.RTT
	}
	return &h.blFlow.Flow.RTT
}

func (h *flowHandle) delivered() int64 {
	if h.ufFlow != nil {
		return h.ufFlow.Pair.Delivered
	}
	return h.blFlow.Flow.Delivered
}

// newSystem builds a deployment of the given scheme over g, with its own
// private simulation driver. A non-nil reg attaches the run's telemetry
// registry: the full fabric for μFAB schemes, the dataplane link
// instruments for baselines. A non-nil aud additionally attaches the
// predictability auditor to μFAB schemes (baselines make no μFAB
// guarantees to audit). μFAB schemes honor o.Shards through
// vfabric.Build; baselines always run sequentially (their results don't
// depend on the μFAB execution mode).
func newSystem(s scheme, o Options, g *topo.Graph, seed int64, reg *telemetry.Registry, aud *audit.Config) *system {
	sys := &system{scheme: s, graph: g, reg: reg, fctPair: make(map[int32][]*telemetry.Histogram)}
	switch s {
	case schemeUFAB, schemeUFABPrime:
		cfg := vfabric.Config{Seed: seed, Telemetry: reg, Audit: aud}
		cfg.Edge.DisableTwoStage = s == schemeUFABPrime
		uf, err := vfabric.Build(vfabric.BuildOptions{Graph: g, Cfg: cfg, Shards: o.Shards})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		sys.uf = uf
		sys.eng = uf.Eng
	case schemePWC:
		eng := sim.New()
		sys.eng = eng
		sys.bl = blhost.NewFabric(eng, g, blhost.Config{Scheme: blhost.PWC, Seed: seed}, dataplane.Config{Telemetry: reg})
	case schemeES:
		eng := sim.New()
		sys.eng = eng
		sys.bl = blhost.NewFabric(eng, g, blhost.Config{Scheme: blhost.ESClove, Seed: seed}, dataplane.Config{Telemetry: reg})
	}
	return sys
}

// hostScheduler returns the scheduling context owning a host: per-host
// workload drivers (as opposed to coordinator-paced feeders) must
// schedule there so their traffic runs inside the host's shard on the
// parallel core. Baselines are single-context, so it is their engine.
func (sys *system) hostScheduler(host topo.NodeID) sim.Scheduler {
	if sys.uf != nil {
		return sys.uf.HostScheduler(host)
	}
	return sys.eng
}

// addVF registers a VF (μFAB) — a no-op for baselines, which carry the
// weight per flow.
func (sys *system) addVF(id int32, guaranteeBps float64, class int) {
	if sys.uf != nil {
		sys.uf.AddVF(id, guaranteeBps, class)
	}
}

// addFlow creates a backing VM-pair of the VF with guarantee tokens.
func (sys *system) addFlow(vf int32, guaranteeBps float64, src, dst topo.NodeID) *flowHandle {
	if sys.uf != nil {
		v := sys.uf.VFs[vf]
		if v == nil {
			v = sys.uf.AddVF(vf, guaranteeBps, weightClass(guaranteeBps))
		}
		return &flowHandle{ufFlow: sys.uf.AddFlow(v, src, dst, 0)}
	}
	tokens := guaranteeBps / 100e6
	return &flowHandle{blFlow: sys.bl.AddFlow(vf, tokens, src, dst, 4)}
}

// weightClass maps a guarantee to one of the 8 WFQ classes.
func weightClass(guaranteeBps float64) int {
	c := 0
	for g := 1e9; g < guaranteeBps && c < 7; g *= 2 {
		c++
	}
	return c
}

func (sys *system) startSampling(interval sim.Duration) func() {
	if sys.uf != nil {
		return sys.uf.StartSampling(interval)
	}
	return sys.bl.StartSampling(interval)
}

func (sys *system) sampleRates() {
	if sys.uf != nil {
		sys.uf.SampleRates()
	} else {
		sys.bl.SampleRates()
	}
}

func (sys *system) maxQueueBytes() int {
	if sys.uf != nil {
		return sys.uf.MaxQueueBytes()
	}
	return sys.bl.MaxQueueBytes()
}

// queueHighWaters gathers the high-water marks of all switch egress
// queues as a sorted-once snapshot (quantiles come off it without
// re-sorting per call).
func (sys *system) queueHighWaters() stats.Snapshot {
	net := sys.net()
	var s stats.Samples
	for i := range net.Ports {
		p := &net.Ports[i]
		if sys.graph.Node(p.Link.Src).Kind != topo.Switch {
			continue
		}
		s.Add(float64(p.MaxQueueBytes))
	}
	return s.Snapshot()
}

func (sys *system) net() *dataplane.Network {
	if sys.uf != nil {
		return sys.uf.Net
	}
	return sys.bl.Net
}

// backlog fills a flow with effectively infinite demand.
func (h *flowHandle) backlog() { h.buffer().Add(1 << 42) }

// mcMessages dials a message-tracked flow on either fabric.
func (sys *system) addMessageFlow(vf int32, guaranteeBps float64, src, dst topo.NodeID) (*workload.Messages, *flowHandle) {
	msgs := &workload.Messages{}
	if sys.reg != nil {
		// Per-pair FCT histogram: completions fire in the source host's
		// shard, so each histogram keeps the single-writer discipline.
		// mergeTenantFCT folds them into per-tenant distributions after
		// the run.
		ent := fmt.Sprintf("workload.vf%d-%s-%s", vf,
			telemetry.Token(sys.graph.Node(src).Name), telemetry.Token(sys.graph.Node(dst).Name))
		h := sys.reg.Histogram(ent + ".fct_us")
		sys.fctPair[vf] = append(sys.fctPair[vf], h)
		if len(sys.fctPair[vf]) == 1 {
			sys.fctVFs = append(sys.fctVFs, vf)
		}
		msgs.Observe(func(_ workload.Message, fct sim.Duration) { h.Observe(fct.Micros()) })
	}
	if sys.uf != nil {
		v := sys.uf.VFs[vf]
		if v == nil {
			v = sys.uf.AddVF(vf, guaranteeBps, weightClass(guaranteeBps))
		}
		fl := sys.uf.AddFlowDemand(v, src, dst, 0, msgs)
		return msgs, &flowHandle{ufFlow: fl}
	}
	tokens := guaranteeBps / 100e6
	fh := sys.bl.AddFlowDemand(vf, tokens, src, dst, 4, msgs)
	return msgs, &flowHandle{blFlow: fh}
}

// mergeTenantFCT folds each tenant's per-pair FCT histograms into one
// "workload.vf<id>.fct_us" distribution — the shared global bucket layout
// makes the merge exact. Call at the coordinator after the horizon; merge
// order follows creation order, so the merged histograms are byte-identical
// across -jobs and -shards.
func (sys *system) mergeTenantFCT() {
	if sys.reg == nil {
		return
	}
	for _, vf := range sys.fctVFs {
		merged := sys.reg.Histogram(fmt.Sprintf("workload.vf%d.fct_us", vf))
		for _, h := range sys.fctPair[vf] {
			merged.Merge(h)
		}
	}
}

// newRand returns a deterministic RNG for experiment-level choices.
func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
