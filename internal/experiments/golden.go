package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Golden is the committed regression baseline for the whole evaluation:
// every experiment's headline metrics at a pinned (Quick, Seed)
// configuration, plus comparison tolerances. `ufabsim check` replays the
// evaluation and fails on drift, so CI guards the experiments' numbers,
// not just the unit tests.
type Golden struct {
	// Options pins the configuration the metrics were recorded at;
	// check replays with exactly these options.
	Options Options `json:"options"`
	// DefaultTolerance is the relative tolerance applied to every
	// metric without an explicit override. A metric passes when
	// |got-want| <= tol * max(|want|, 1); the max(...,1) floor makes
	// the tolerance absolute for near-zero metrics.
	DefaultTolerance float64 `json:"default_tolerance"`
	// Tolerances overrides the tolerance per "<experiment>/<metric>".
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	// Experiments maps experiment id -> metric name -> expected value.
	Experiments map[string]map[string]float64 `json:"experiments"`
}

// Drift is one metric that moved outside its tolerance, or a structural
// mismatch (experiment or metric missing/unexpected).
type Drift struct {
	Experiment string
	Metric     string
	Want, Got  float64
	Tol        float64
	Structural string // non-empty for missing/unexpected entries
}

func (d Drift) String() string {
	if d.Structural != "" {
		return fmt.Sprintf("%s: %s", d.Experiment, d.Structural)
	}
	return fmt.Sprintf("%s/%s: got %.6g, want %.6g (tol %.2g)",
		d.Experiment, d.Metric, d.Got, d.Want, d.Tol)
}

// BuildGolden records the metrics of the given reports as a new baseline.
// NaN/Inf metrics are skipped (JSON cannot carry them and they encode
// "did not happen" sentinels better checked by shape tests).
func BuildGolden(opts Options, reports []*Report, defaultTol float64) *Golden {
	g := &Golden{
		Options:          opts,
		DefaultTolerance: defaultTol,
		Experiments:      map[string]map[string]float64{},
	}
	for _, r := range reports {
		m := map[string]float64{}
		for k, v := range r.Metrics() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			m[k] = v
		}
		g.Experiments[r.ID] = m
	}
	return g
}

// tolerance returns the comparison tolerance for an experiment's metric.
func (g *Golden) tolerance(exp, metric string) float64 {
	if t, ok := g.Tolerances[exp+"/"+metric]; ok {
		return t
	}
	return g.DefaultTolerance
}

// Compare checks the reports against the baseline and returns every
// drift, sorted by experiment then metric. An empty slice means the
// evaluation reproduced the committed numbers.
func (g *Golden) Compare(reports []*Report) []Drift {
	var drifts []Drift
	byID := map[string]*Report{}
	for _, r := range reports {
		byID[r.ID] = r
	}
	for id, want := range g.Experiments {
		r, ok := byID[id]
		if !ok {
			drifts = append(drifts, Drift{Experiment: id,
				Structural: "experiment in golden file but not run"})
			continue
		}
		got := r.Metrics()
		for metric, w := range want {
			gotV, ok := got[metric]
			if !ok {
				drifts = append(drifts, Drift{Experiment: id, Metric: metric,
					Structural: fmt.Sprintf("metric %s missing from report", metric)})
				continue
			}
			tol := g.tolerance(id, metric)
			if math.Abs(gotV-w) > tol*math.Max(math.Abs(w), 1) {
				drifts = append(drifts, Drift{Experiment: id, Metric: metric,
					Want: w, Got: gotV, Tol: tol})
			}
		}
		// New metrics are drift too: they mean the golden file is stale.
		for metric, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if _, ok := want[metric]; !ok {
				drifts = append(drifts, Drift{Experiment: id, Metric: metric,
					Structural: fmt.Sprintf("metric %s not in golden file (run check -update)", metric)})
			}
		}
	}
	for _, r := range reports {
		if _, ok := g.Experiments[r.ID]; !ok {
			drifts = append(drifts, Drift{Experiment: r.ID,
				Structural: "experiment not in golden file (run check -update)"})
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		if drifts[i].Experiment != drifts[j].Experiment {
			return drifts[i].Experiment < drifts[j].Experiment
		}
		return drifts[i].Metric < drifts[j].Metric
	})
	return drifts
}

// LoadGolden reads a baseline from path.
func LoadGolden(path string) (*Golden, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := &Golden{}
	if err := json.Unmarshal(b, g); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if g.DefaultTolerance <= 0 {
		return nil, fmt.Errorf("%s: default_tolerance must be positive", path)
	}
	return g, nil
}

// Save writes the baseline to path with stable key order (encoding/json
// sorts map keys), so regeneration produces reviewable diffs.
func (g *Golden) Save(path string) error {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
