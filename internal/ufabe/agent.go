// Package ufabe implements μFAB-E, the active-edge agent (§3.3–§3.5,
// §4.1). One Agent runs per host (per SmartNIC). It performs
// hierarchical bandwidth allocation (Eqns 1–3), two-stage window-based
// traffic admission, self-clocked probing, and accurate, oscillation-free
// path migration, driven entirely by the INT telemetry μFAB-C piggybacks
// onto probe responses. It also embeds the Guarantee Partitioning token
// loop of Appendix E (sender assignment + receiver admission).
package ufabe

import (
	"fmt"
	"math"
	"math/rand"

	"ufab/internal/dataplane"
	"ufab/internal/flowsrc"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/token"
	"ufab/internal/topo"
)

// Config parameterizes an edge agent.
type Config struct {
	// BU is the bandwidth one token represents, bits/s (default 100 Mbps).
	BU float64
	// MTU is the data packet size in bytes (default 1500).
	MTU int
	// AckSize is the acknowledgment size in bytes (default 64).
	AckSize int
	// TargetUtilization is η, the fraction of physical capacity treated
	// as the target C̄_l (default 0.95).
	TargetUtilization float64
	// ProbePayloadBytes is L_w: the bytes transmitted between
	// self-clocked probes (default 4096, giving the ≤1.28% overhead
	// bound of Fig 15b).
	ProbePayloadBytes int64
	// PeriodicProbeRTTs switches from self-clocked to periodic probing
	// every n·baseRTT (Fig 18c). 0 keeps self-clocking.
	PeriodicProbeRTTs int
	// DisableTwoStage removes the two-stage admission burst bound — the
	// μFAB′ variant of Figs 12 and 16.
	DisableTwoStage bool
	// ViolationRTTs is how many consecutive RTT-spaced unqualified
	// observations trigger a migration (default 5, §3.5).
	ViolationRTTs int
	// FreezeMaxRTTs is N: after a migration, migrations freeze for a
	// uniform-random [1,N] RTTs (default 10, Fig 18a/b).
	FreezeMaxRTTs int
	// BetterPathHold is how long a persistently better path must be
	// observed before a work-conservation migration (default 30 s).
	BetterPathHold sim.Duration
	// CandidateProbeInterval is how often idle candidate paths are
	// re-probed for the better-path trigger (default 1 s; negative
	// disables).
	CandidateProbeInterval sim.Duration
	// ReorderFree delays data one baseRTT after each migration so the
	// old path drains (§3.5 "avoiding reordering").
	ReorderFree bool
	// TokenPeriod is the Guarantee Partitioning update period (default
	// 32 μs per §5.1; negative disables GP so pairs keep static tokens).
	TokenPeriod sim.Duration
	// IdleFinishAfter sends finish probes after this much idle time
	// (default 200 μs) — deregistering idle VM-pairs promptly keeps the
	// proportional shares of the remaining active pairs undiluted,
	// which is what work conservation for bursty RPC traffic rests on.
	IdleFinishAfter sim.Duration
	// ProbeTimeoutRTTs detects probe loss after n·baseRTT (default 8,
	// §4.1: latency is bounded by 4 baseRTTs, so 8 is safe).
	ProbeTimeoutRTTs int
	// Seed drives all randomized choices (initial path, freeze window).
	Seed int64
}

func (c *Config) setDefaults() {
	if c.BU == 0 {
		c.BU = 100e6
	}
	if c.MTU == 0 {
		c.MTU = 1500
	}
	if c.AckSize == 0 {
		c.AckSize = 64
	}
	if c.TargetUtilization == 0 {
		c.TargetUtilization = 0.95
	}
	if c.ProbePayloadBytes == 0 {
		c.ProbePayloadBytes = 4096
	}
	if c.ViolationRTTs == 0 {
		c.ViolationRTTs = 5
	}
	if c.FreezeMaxRTTs == 0 {
		c.FreezeMaxRTTs = 10
	}
	if c.BetterPathHold == 0 {
		c.BetterPathHold = 30 * sim.Second
	}
	if c.CandidateProbeInterval == 0 {
		c.CandidateProbeInterval = sim.Second
	}
	if c.TokenPeriod == 0 {
		c.TokenPeriod = 32 * sim.Microsecond
	}
	if c.IdleFinishAfter == 0 {
		c.IdleFinishAfter = 200 * sim.Microsecond
	}
	if c.ProbeTimeoutRTTs == 0 {
		c.ProbeTimeoutRTTs = 8
	}
}

// dataMeta tags data packets with the sender-side path index so the
// acknowledgment can be attributed to the right path (a real stack reads
// this from the SR header).
type dataMeta struct {
	path uint16
}

// ackMeta is the acknowledgment metadata a real stack would carry in the
// transport header.
type ackMeta struct {
	bytes  int
	sentAt sim.Time
	path   uint16
}

// recvPair is the receiver-side record of an incoming VM-pair, used for
// Guarantee Partitioning admission.
type recvPair struct {
	vf       int32
	tok      token.Pair
	lastSeen sim.Time
}

// PairConfig describes a new VM-pair for AddPair.
type PairConfig struct {
	ID dataplane.VMPair
	// VF is the tenant VF id; negative means no VF (static token).
	VF  int32
	Dst topo.NodeID
	// Routes are the candidate underlay paths (≥1). μFAB-E randomly
	// picks the initial active path among them.
	Routes []topo.Path
	// Phi is the initial bandwidth token; under GP it is reassigned
	// every TokenPeriod.
	Phi float64
	// Demand supplies the bytes to send; nil creates an idle pair.
	Demand Demand
}

// Agent is the per-host μFAB-E instance. It implements dataplane.Handler
// for its host.
type Agent struct {
	eng   sim.Scheduler
	net   *dataplane.Network
	graph *topo.Graph
	host  topo.NodeID
	cfg   Config
	rng   *rand.Rand

	vfs   map[int32]*vfState
	pairs map[dataplane.VMPair]*Pair
	sched *wfq

	nicNextFree sim.Time
	sendPending bool
	uplinkCap   float64

	// Per-host migration freeze window (§3.5 "avoiding oscillations").
	freezeUntil sim.Time

	// Receiver side.
	recvVFTokens map[int32]float64
	recvPairs    map[dataplane.VMPair]*recvPair

	// OnReceive, if set, observes data bytes arriving at this host
	// (used by application models).
	OnReceive func(vm dataplane.VMPair, bytes int, now sim.Time)

	// Telemetry: overhead accounting (Fig 15b) and migration counters for
	// the fault experiments. New seeds private counters so counts accrue
	// without a registry; AttachTelemetry swaps in the shared
	// registry-backed ones. The base values snapshot each counter at
	// attach time: experiments that build several fabrics against one
	// registry reuse counter names, so the per-agent view is the delta
	// since this agent attached.
	entity                            string
	cProbes                           *telemetry.Counter
	cProbeB                           *telemetry.Counter
	cDataB                            *telemetry.Counter
	cMigr                             *telemetry.Counter
	cFrArmed                          *telemetry.Counter
	cFrSupp                           *telemetry.Counter
	baseProbes, baseProbeB, baseDataB int64
	baseMigr, baseFrArmed, baseFrSupp int64
	hRTT                              *telemetry.Histogram
	rec                               *telemetry.Recorder

	tokenLoopStop func()
}

// AttachTelemetry registers this agent's instruments under
// "ufabe.<instance>.*" and wires probe/window/migration events into reg's
// flight recorder. Call before the simulation starts; a nil reg is a
// no-op.
func (a *Agent) AttachTelemetry(reg *telemetry.Registry, instance string) {
	if reg == nil {
		return
	}
	a.entity = "ufabe." + instance
	a.cProbes = reg.Counter(a.entity + ".probes_sent")
	a.cProbeB = reg.Counter(a.entity + ".probe_bytes")
	a.cDataB = reg.Counter(a.entity + ".data_bytes")
	a.cMigr = reg.Counter(a.entity + ".migrations")
	a.cFrArmed = reg.Counter(a.entity + ".freezes_armed")
	a.cFrSupp = reg.Counter(a.entity + ".freeze_suppressed")
	a.baseProbes = a.cProbes.Value()
	a.baseProbeB = a.cProbeB.Value()
	a.baseDataB = a.cDataB.Value()
	a.baseMigr = a.cMigr.Value()
	a.baseFrArmed = a.cFrArmed.Value()
	a.baseFrSupp = a.cFrSupp.Value()
	a.hRTT = reg.Histogram(a.entity + ".probe_rtt_us")
	a.rec = reg.Recorder()
}

// MigrationsCount returns completed path migrations (the delta since
// AttachTelemetry when a registry is attached).
func (a *Agent) MigrationsCount() uint64 {
	return uint64(a.cMigr.Value() - a.baseMigr)
}

// FreezesArmedCount returns freeze windows armed by urgent migrations.
func (a *Agent) FreezesArmedCount() uint64 {
	return uint64(a.cFrArmed.Value() - a.baseFrArmed)
}

// FreezeSuppressedCount returns migration attempts suppressed by an
// active freeze window.
func (a *Agent) FreezeSuppressedCount() uint64 {
	return uint64(a.cFrSupp.Value() - a.baseFrSupp)
}

// ProbesSentCount returns probes emitted by this agent.
func (a *Agent) ProbesSentCount() uint64 {
	return uint64(a.cProbes.Value() - a.baseProbes)
}

// ProbeBytesCount returns probe bytes at delivery size.
func (a *Agent) ProbeBytesCount() uint64 {
	return uint64(a.cProbeB.Value() - a.baseProbeB)
}

// DataBytesCount returns data bytes handed to the wire.
func (a *Agent) DataBytesCount() uint64 {
	return uint64(a.cDataB.Value() - a.baseDataB)
}

// New creates the agent for a host and installs it as the host's packet
// handler. The host must have exactly one uplink.
func New(eng sim.Scheduler, net *dataplane.Network, host topo.NodeID, cfg Config) *Agent {
	cfg.setDefaults()
	g := net.G
	if g.Node(host).Kind != topo.Host {
		panic(fmt.Sprintf("ufabe: node %d is not a host", host))
	}
	if len(g.Node(host).Out) != 1 {
		panic(fmt.Sprintf("ufabe: host %d has %d uplinks, want 1", host, len(g.Node(host).Out)))
	}
	a := &Agent{
		eng:          eng,
		net:          net,
		graph:        g,
		host:         host,
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed + int64(host)*0x9e3779b9)),
		vfs:          make(map[int32]*vfState),
		pairs:        make(map[dataplane.VMPair]*Pair),
		sched:        newWFQ(),
		recvVFTokens: make(map[int32]float64),
		recvPairs:    make(map[dataplane.VMPair]*recvPair),
		uplinkCap:    g.Link(g.Node(host).Out[0]).Capacity,
		cProbes:      &telemetry.Counter{},
		cProbeB:      &telemetry.Counter{},
		cDataB:       &telemetry.Counter{},
		cMigr:        &telemetry.Counter{},
		cFrArmed:     &telemetry.Counter{},
		cFrSupp:      &telemetry.Counter{},
	}
	net.SetHandler(host, a)
	if cfg.TokenPeriod > 0 {
		a.tokenLoopStop = eng.Every(cfg.TokenPeriod, a.tokenUpdate)
	}
	return a
}

// Stop cancels the agent's periodic loops (token updates).
func (a *Agent) Stop() {
	if a.tokenLoopStop != nil {
		a.tokenLoopStop()
	}
}

// Host returns the node this agent serves.
func (a *Agent) Host() topo.NodeID { return a.host }

// Config returns the agent's effective configuration.
func (a *Agent) Config() Config { return a.cfg }

// AddVF registers a tenant VF on both the sending and receiving side with
// the given hose tokens and WFQ weight class (0..7).
func (a *Agent) AddVF(id int32, hoseTokens float64, class int) {
	if _, ok := a.vfs[id]; ok {
		panic(fmt.Sprintf("ufabe: VF %d already registered", id))
	}
	vf := &vfState{id: id, class: class, senderTokens: hoseTokens, recvTokens: hoseTokens}
	a.vfs[id] = vf
	a.recvVFTokens[id] = hoseTokens
	a.sched.addVF(vf)
}

// Pair returns the sender-side pair state, or nil.
func (a *Agent) Pair(id dataplane.VMPair) *Pair { return a.pairs[id] }

// Pairs returns all sender-side pairs on this host.
func (a *Agent) Pairs() []*Pair {
	out := make([]*Pair, 0, len(a.pairs))
	for _, p := range a.pairs {
		out = append(out, p)
	}
	return out
}

// AddPair creates a VM-pair, probes its candidate paths in parallel
// (bootstrap, §3.5), and starts two-stage admission on a randomly chosen
// initial path.
func (a *Agent) AddPair(pc PairConfig) *Pair {
	if len(pc.Routes) == 0 {
		panic("ufabe: AddPair without routes")
	}
	if _, ok := a.pairs[pc.ID]; ok {
		panic(fmt.Sprintf("ufabe: pair %d already exists", pc.ID))
	}
	p := &Pair{
		ID:     pc.ID,
		VF:     pc.VF,
		Src:    a.host,
		Dst:    pc.Dst,
		Demand: pc.Demand,
		agent:  a,
		phi:    pc.Phi,
	}
	for i, r := range pc.Routes {
		if a.graph.PathSrc(r) != a.host {
			panic(fmt.Sprintf("ufabe: route %d does not start at host %d", i, a.host))
		}
		p.paths = append(p.paths, &pathState{
			id:      uint16(i),
			route:   r,
			baseRTT: a.graph.BaseRTT(r, a.cfg.MTU),
		})
	}
	p.active = a.rng.Intn(len(p.paths))
	a.pairs[pc.ID] = p
	vf := a.vfs[pc.VF]
	if vf == nil {
		// Static-token pair outside any registered VF: give it its own
		// single-pair group in class 0.
		vf = &vfState{id: pc.VF, class: 0, senderTokens: pc.Phi}
		a.vfs[pc.VF] = vf
		a.sched.addVF(vf)
	}
	vf.pairs = append(vf.pairs, p)
	if k, ok := pc.Demand.(flowsrc.Kicker); ok && pc.Demand != nil {
		k.SetKick(func() { a.Kick(p) })
	}
	p.enterRamp(a.eng.Now(), false)
	// Bootstrap: probe all candidates in parallel; evaluate when the
	// responses are in.
	p.migrating = true
	for i := range p.paths {
		a.sendProbe(p, i, probe.KindProbe)
	}
	a.eng.After(2*p.maxBaseRTT(), func() { a.finishEvaluation(p, evalBootstrap) })
	// The slow work-conservation scan (§3.5 trigger ii).
	if a.cfg.CandidateProbeInterval > 0 && len(p.paths) > 1 {
		a.eng.Every(a.cfg.CandidateProbeInterval, func() { a.scanForBetterPath(p) })
	}
	a.scheduleSend()
	return p
}

// RemovePair tears a pair down: finish probes on its active path and
// removal from the scheduler.
func (a *Agent) RemovePair(id dataplane.VMPair) {
	p := a.pairs[id]
	if p == nil {
		return
	}
	a.sendProbe(p, p.active, probe.KindFinish)
	delete(a.pairs, id)
	if vf := a.vfs[p.VF]; vf != nil {
		for i, q := range vf.pairs {
			if q == p {
				vf.pairs = append(vf.pairs[:i], vf.pairs[i+1:]...)
				break
			}
		}
	}
}

// RemoveVF deregisters a tenant VF from both the sending and receiving
// side, tearing down any remaining sender pairs first (finish probes
// included, so core registers deallocate). Returns false for an unknown
// VF, allowing churn scenarios to issue departures idempotently.
func (a *Agent) RemoveVF(id int32) bool {
	vf := a.vfs[id]
	if vf == nil {
		return false
	}
	for len(vf.pairs) > 0 {
		a.RemovePair(vf.pairs[0].ID)
	}
	delete(a.vfs, id)
	delete(a.recvVFTokens, id)
	a.sched.removeVF(vf)
	return true
}

func (p *Pair) maxBaseRTT() sim.Duration {
	var m sim.Duration
	for _, ps := range p.paths {
		if ps.baseRTT > m {
			m = ps.baseRTT
		}
	}
	return m
}

// Kick wakes the pair after new demand arrives, reactivating it from idle
// (Scenario-2 admission) when necessary.
func (a *Agent) Kick(p *Pair) {
	if p.idle {
		p.idle = false
		// Refresh the token split right away so the reactivated pair
		// does not spend its first RTTs on the idle-era equal share.
		if a.cfg.TokenPeriod > 0 {
			a.tokenUpdate()
		}
		p.enterRamp(a.eng.Now(), true)
		a.sendProbe(p, p.active, probe.KindProbe)
	}
	a.scheduleSend()
}

// ---- Sending path -------------------------------------------------------

func (a *Agent) scheduleSend() {
	if a.sendPending {
		return
	}
	a.sendPending = true
	at := a.nicNextFree
	if now := a.eng.Now(); at < now {
		at = now
	}
	a.eng.At(at, func() {
		a.sendPending = false
		a.trySend()
	})
}

// trySend emits at most one data packet (the WFQ engine schedules one
// packet at a time, §4.1) and re-arms itself while work remains.
func (a *Agent) trySend() {
	now := a.eng.Now()
	if now < a.nicNextFree {
		a.scheduleSend()
		return
	}
	p := a.sched.nextPair(int64(now), float64(a.cfg.MTU))
	if p == nil {
		return
	}
	size := int64(a.cfg.MTU)
	if pend := p.Demand.Pending(); pend < size {
		size = pend
	}
	if room := p.Window() - p.inflight; room < size {
		size = room
	}
	if size <= 0 {
		return
	}
	p.Demand.Consume(size)
	p.inflight += size
	p.SentBytes += size
	p.txSinceToken += size
	p.bytesSinceResp += size
	p.seq++
	p.lastProgress = now
	a.armRTO(p)
	a.cDataB.Add(size)
	ps := p.paths[p.active]
	ps.inflight += size
	a.net.Send(&dataplane.Packet{
		Kind:   dataplane.Data,
		VMPair: p.ID,
		Tenant: p.VF,
		Size:   int(size),
		Seq:    p.seq,
		Route:  ps.route,
		SentAt: now,
		Meta:   dataMeta{path: ps.id},
	})
	a.sched.charge(p, int(size), a.vfs[p.VF].class)
	a.nicNextFree = now + topo.SerializationDelay(int(size), a.uplinkCap)
	// Self-clocked probing: L_w bytes since the last response.
	if p.wantProbe && p.bytesSinceResp >= a.cfg.ProbePayloadBytes {
		a.sendProbe(p, p.active, probe.KindProbe)
	}
	a.scheduleSend()
}

// ---- Probing ------------------------------------------------------------

func (a *Agent) sendProbe(p *Pair, pathIdx int, kind probe.Kind) {
	ps := p.paths[pathIdx]
	ps.probeSeq++
	seq := ps.probeSeq
	pp := &probe.Packet{
		Kind:   kind,
		VMPair: uint32(p.ID),
		PathID: ps.id,
		Seq:    seq,
		Phi:    p.phi,
		Window: uint32(min64(p.Window(), int64(^uint32(0)))),
		SentAt: int64(a.eng.Now()),
	}
	buf, err := pp.Encode(nil)
	if err != nil {
		panic(fmt.Sprintf("ufabe: probe encode: %v", err))
	}
	size := probe.WireSize(0)
	a.net.Send(&dataplane.Packet{
		Kind:    dataplane.Probe,
		VMPair:  p.ID,
		Tenant:  p.VF,
		Size:    size,
		Route:   ps.route,
		SentAt:  a.eng.Now(),
		Payload: buf,
	})
	ps.probeOutstanding = true
	ps.probeSentAt = a.eng.Now()
	if kind == probe.KindProbe && pathIdx == p.active {
		p.wantProbe = false
	}
	a.cProbes.Inc()
	a.cProbeB.Add(int64(probe.WireSize(len(ps.route)))) // size at delivery
	if a.rec != nil {
		note := "probe"
		if kind == probe.KindFinish {
			note = "finish"
		}
		a.rec.Record(telemetry.Event{T: int64(a.eng.Now()), Kind: telemetry.EvProbeTX,
			Entity: a.entity, A: int64(p.ID), B: int64(pathIdx), Note: note,
			Trace: telemetry.SpanID(telemetry.TraceProbe, int64(p.ID), int64(ps.id), int64(seq)), Span: 1})
	}
	// Probe-loss detection (§4.1): timeout at n·baseRTT, stretched by
	// the smoothed measured RTT when standing queues dominate.
	timeout := sim.Duration(a.cfg.ProbeTimeoutRTTs) * ps.baseRTT
	if adaptive := 4 * ps.srtt; adaptive > timeout {
		timeout = adaptive
	}
	a.eng.After(timeout, func() { a.checkProbeTimeout(p, pathIdx, seq) })
}

func (a *Agent) checkProbeTimeout(p *Pair, pathIdx int, seq uint32) {
	if a.pairs[p.ID] != p {
		return // pair removed
	}
	ps := p.paths[pathIdx]
	if ps.respSeq >= seq {
		return // answered
	}
	ps.lostProbes++
	if pathIdx == p.active {
		// Consecutive probe drops count as predictability violations.
		p.violationStreak++
		if p.violationStreak >= a.cfg.ViolationRTTs {
			a.beginMigration(p)
		}
		if p.Demand != nil && (p.Demand.Pending() > 0 || p.inflight > 0) {
			a.sendProbe(p, pathIdx, probe.KindProbe)
		}
	}
}

// ---- Receive path ---------------------------------------------------------

// HandlePacket implements dataplane.Handler.
func (a *Agent) HandlePacket(pkt *dataplane.Packet) {
	switch pkt.Kind {
	case dataplane.Data:
		a.handleData(pkt)
	case dataplane.Ack:
		a.handleAck(pkt)
	case dataplane.Probe:
		a.handleProbe(pkt)
	case dataplane.Response:
		a.handleResponse(pkt)
	}
}

func (a *Agent) handleData(pkt *dataplane.Packet) {
	now := a.eng.Now()
	if a.OnReceive != nil {
		a.OnReceive(pkt.VMPair, pkt.Size, now)
	}
	// Acknowledge on the reverse path.
	var path uint16
	if dm, ok := pkt.Meta.(dataMeta); ok {
		path = dm.path
	}
	a.net.Send(&dataplane.Packet{
		Kind:   dataplane.Ack,
		VMPair: pkt.VMPair,
		Tenant: pkt.Tenant,
		Size:   a.cfg.AckSize,
		Route:  a.graph.ReversePath(pkt.Route),
		SentAt: now,
		Meta:   ackMeta{bytes: pkt.Size, sentAt: pkt.SentAt, path: path},
	})
}

func (a *Agent) handleAck(pkt *dataplane.Packet) {
	p := a.pairs[pkt.VMPair]
	if p == nil {
		return
	}
	meta, ok := pkt.Meta.(ackMeta)
	if !ok {
		return
	}
	now := a.eng.Now()
	// Attribute the ack to its path: bytes already reclaimed as orphans
	// (after a migration) must not be freed twice.
	credit := int64(meta.bytes)
	if int(meta.path) < len(p.paths) {
		ps := p.paths[meta.path]
		if ps.inflight < credit {
			credit = ps.inflight
		}
		ps.inflight -= credit
	}
	p.inflight -= credit
	if p.inflight < 0 {
		p.inflight = 0
	}
	p.lastProgress = now
	p.Delivered += int64(meta.bytes)
	p.RTT.Add((now - meta.sentAt).Micros())
	p.advanceRamp(now)
	if obs, ok := p.Demand.(DeliveryObserver); ok {
		obs.Delivered(int64(meta.bytes), now)
	}
	// Idle detection: demand drained and nothing in flight.
	if p.Demand.Pending() == 0 && p.inflight == 0 && !p.idle {
		p.idleSince = now
		a.eng.After(a.cfg.IdleFinishAfter, func() { a.checkIdle(p, now) })
	}
	a.scheduleSend()
}

func (a *Agent) checkIdle(p *Pair, since sim.Time) {
	if a.pairs[p.ID] != p || p.idle {
		return
	}
	if p.Demand.Pending() > 0 || p.inflight > 0 || p.idleSince != since {
		return
	}
	p.idle = true
	a.sendProbe(p, p.active, probe.KindFinish)
}

// handleProbe runs at the destination edge: record the sender's token
// demand for GP admission and return the response with the receiver-side
// admitted token (§3.2 steps 4–5).
func (a *Agent) handleProbe(pkt *dataplane.Packet) {
	pp, _, err := probe.Decode(pkt.Payload)
	if err != nil {
		return
	}
	now := a.eng.Now()
	var admitted float64 // 0 = unbound
	switch pp.Kind {
	case probe.KindProbe:
		rp := a.recvPairs[pkt.VMPair]
		if rp == nil {
			rp = &recvPair{vf: pkt.Tenant, tok: token.Pair{Admitted: token.Unbound}}
			a.recvPairs[pkt.VMPair] = rp
		}
		rp.lastSeen = now
		rp.tok.Requested = pp.Phi
		if rp.tok.Admitted != token.Unbound && rp.tok.Admitted > 0 {
			admitted = rp.tok.Admitted
		}
	case probe.KindFinish:
		delete(a.recvPairs, pkt.VMPair)
	default:
		return
	}
	resp := pp.ToResponse(admitted)
	buf, err := resp.Encode(nil)
	if err != nil {
		return
	}
	a.net.Send(&dataplane.Packet{
		Kind:    dataplane.Response,
		VMPair:  pkt.VMPair,
		Tenant:  pkt.Tenant,
		Size:    pkt.Size, // response carries the same telemetry back
		Route:   a.graph.ReversePath(pkt.Route),
		SentAt:  now,
		Payload: buf,
	})
}

// handleResponse runs at the source edge: step 6 of the workflow — rate
// adjustment on the current path or migration away from it.
func (a *Agent) handleResponse(pkt *dataplane.Packet) {
	p := a.pairs[pkt.VMPair]
	if p == nil {
		return
	}
	resp, _, err := probe.Decode(pkt.Payload)
	if err != nil {
		return
	}
	if int(resp.PathID) >= len(p.paths) {
		return
	}
	now := a.eng.Now()
	ps := p.paths[resp.PathID]
	ps.probeOutstanding = false
	if resp.Seq > ps.respSeq {
		ps.respSeq = resp.Seq
	}
	if resp.Kind == probe.KindFailure {
		// Explicit path-death notice (type-4 failure response): the
		// path's telemetry is void — it must not look like a fresh,
		// qualified candidate — and an active pair migrates right away
		// instead of accumulating timeout violations.
		ps.lastResp = nil
		ps.lastRespAt = 0
		ps.qualified = false
		ps.subscription = math.Inf(1)
		if int(resp.PathID) == p.active && !p.idle {
			a.beginMigration(p)
		}
		return
	}
	ps.lastRespAt = now
	ps.lostProbes = 0
	rttUS := (now - sim.Time(resp.SentAt)).Micros()
	a.hRTT.Observe(rttUS)
	if a.rec != nil {
		a.rec.Record(telemetry.Event{T: int64(now), Kind: telemetry.EvProbeRX,
			Entity: a.entity, A: int64(p.ID), B: int64(resp.PathID),
			V:     rttUS,
			Trace: telemetry.SpanID(telemetry.TraceProbe, int64(p.ID), int64(resp.PathID), int64(resp.Seq)), Span: 3})
	}
	if rtt := now - sim.Time(resp.SentAt); rtt > 0 {
		if ps.srtt == 0 {
			ps.srtt = rtt
		} else {
			ps.srtt = (7*ps.srtt + rtt) / 8
		}
	}
	if resp.Kind != probe.KindResponse {
		return
	}
	if resp.PeerPhi > 0 {
		p.peerPhi = resp.PeerPhi
	} else {
		p.peerPhi = 0
	}
	p.computeFromResponse(ps, resp)
	if int(resp.PathID) != p.active {
		return
	}
	p.advanceRamp(now)
	// Violation detection (§3.5 trigger i): the pair must be
	// *consistently* missing its minimum bandwidth while having
	// sufficient demand AND the path must be oversubscribed. A merely
	// oversubscribed path that still delivers (others have insufficient
	// demand — Case-2's P1) is not abandoned; a transient rate dip on a
	// qualified path is left to the allocation loop.
	if now-p.lastViolationAt >= ps.baseRTT {
		elapsed := now - p.lastViolationAt
		rate := float64(p.Delivered-p.deliveredAtCheck) * 8 / elapsed.Seconds()
		p.deliveredAtCheck = p.Delivered
		p.lastViolationAt = now
		demandSufficient := p.Demand != nil && p.Demand.Pending() > 0
		if demandSufficient && !ps.qualified && rate < 0.92*p.Guarantee() {
			p.violationStreak++
		} else {
			p.violationStreak = 0
		}
	}
	if p.violationStreak >= a.cfg.ViolationRTTs {
		a.beginMigration(p)
	}
	// Probing cadence.
	p.bytesSinceResp = 0
	if a.cfg.PeriodicProbeRTTs > 0 {
		a.eng.After(sim.Duration(a.cfg.PeriodicProbeRTTs)*ps.baseRTT, func() {
			if a.pairs[p.ID] == p && !p.idle {
				a.sendProbe(p, p.active, probe.KindProbe)
			}
		})
	} else {
		// Self-clocked probing (§4.1): the next probe goes out with the
		// data, once L_w more bytes have been transmitted. No timer
		// fallback — the L_p/(L_p+L_w) overhead bound depends on
		// probes being strictly data-clocked.
		p.wantProbe = true
	}
	a.scheduleSend()
}

// ---- Migration ------------------------------------------------------------

// evalMode distinguishes why a candidate-path evaluation was started.
type evalMode uint8

const (
	// evalBootstrap is the initial path selection at AddPair.
	evalBootstrap evalMode = iota
	// evalViolation is §3.5 trigger (i): consistent guarantee violation.
	evalViolation
	// evalWorkConservation is §3.5 trigger (ii): the slow hunt for a
	// persistently better path.
	evalWorkConservation
)

// beginMigration starts an evaluation round: probe every candidate path in
// parallel and decide when the responses are in (§3.5).
func (a *Agent) beginMigration(p *Pair) {
	now := a.eng.Now()
	if p.migrating || len(p.paths) < 2 {
		return
	}
	if now < a.freezeUntil {
		a.cFrSupp.Inc()
		if a.rec != nil {
			a.rec.Record(telemetry.Event{T: int64(now), Kind: telemetry.EvFreeze,
				Entity: a.entity, A: int64(p.ID), Note: "suppressed"})
		}
		return
	}
	p.migrating = true
	for i := range p.paths {
		if i != p.active {
			a.sendProbe(p, i, probe.KindProbe)
		}
	}
	a.eng.After(2*p.maxBaseRTT(), func() { a.finishEvaluation(p, evalViolation) })
}

// scanForBetterPath drives §3.5 trigger (ii): every
// CandidateProbeInterval an active pair re-probes its candidates; a
// qualified path persistently offering a substantially larger share for
// BetterPathHold wins a (non-urgent) migration.
func (a *Agent) scanForBetterPath(p *Pair) {
	if a.pairs[p.ID] != p || p.idle || p.migrating || len(p.paths) < 2 {
		return
	}
	if p.Demand == nil || (p.Demand.Pending() == 0 && p.inflight == 0) {
		return
	}
	p.migrating = true
	for i := range p.paths {
		if i != p.active {
			a.sendProbe(p, i, probe.KindProbe)
		}
	}
	a.eng.After(2*p.maxBaseRTT(), func() { a.finishEvaluation(p, evalWorkConservation) })
}

// finishEvaluation selects the new active path among candidates with fresh
// responses: qualified paths preferred, minimum subscription first, random
// tie-break (§3.5 "path selection"). The mode decides fallback and freeze
// behavior: violation-triggered migrations may fall back to the
// least-subscribed path and arm the freeze window; work-conservation
// evaluations only move after a persistently better path is observed.
func (a *Agent) finishEvaluation(p *Pair, mode evalMode) {
	if a.pairs[p.ID] != p {
		return
	}
	now := a.eng.Now()
	p.migrating = false
	freshAge := 4 * p.maxBaseRTT()
	// §3.5: "among all qualified paths, it selects one randomly with a
	// preference to the path with minimum bandwidth subscription."
	// Randomization matters: a deterministic argmin would herd every
	// migrating pair onto the same link and oscillate.
	pick := func(qualifiedOnly bool) int {
		minSub := -1.0
		for _, ps := range p.paths {
			if !ps.fresh(now, freshAge) || (qualifiedOnly && !ps.qualified) {
				continue
			}
			if minSub < 0 || ps.subscription < minSub {
				minSub = ps.subscription
			}
		}
		if minSub < 0 {
			return -1
		}
		var cands []int
		for i, ps := range p.paths {
			if !ps.fresh(now, freshAge) || (qualifiedOnly && !ps.qualified) {
				continue
			}
			if ps.subscription <= minSub+0.2 {
				cands = append(cands, i)
			}
		}
		return cands[a.rng.Intn(len(cands))]
	}
	if mode == evalWorkConservation {
		a.finishWorkConservation(p, now, freshAge)
		a.cleanupCandidates(p)
		return
	}
	best := pick(true)
	if best == -1 {
		// No qualified path: fall back to a least-subscribed fresh
		// path (best effort) on urgent migrations only.
		if mode != evalViolation {
			a.cleanupCandidates(p)
			return
		}
		best = pick(false)
	}
	if best != -1 && best != p.active {
		a.migrate(p, best, mode == evalViolation)
	} else {
		p.violationStreak = 0
	}
	a.cleanupCandidates(p)
}

// finishWorkConservation applies trigger (ii): among fresh qualified
// candidates, consider only the one with the largest share R; if it has
// beaten the active path by ≥20%% continuously for BetterPathHold, migrate.
func (a *Agent) finishWorkConservation(p *Pair, now sim.Time, freshAge sim.Duration) {
	active := p.paths[p.active]
	best := -1
	for i, ps := range p.paths {
		if i == p.active || !ps.fresh(now, freshAge) || !ps.qualified {
			continue
		}
		if best == -1 || ps.share > p.paths[best].share {
			best = i
		}
	}
	if best == -1 || p.paths[best].share <= 1.2*active.share {
		p.betterSince = 0
		return
	}
	if p.betterSince == 0 {
		p.betterSince = now
		return
	}
	if now-p.betterSince >= a.cfg.BetterPathHold {
		p.betterSince = 0
		a.migrate(p, best, false)
	}
}

// cleanupCandidates sends finish probes on probed-but-unused candidate
// paths so their registered φ/w does not linger in the core.
func (a *Agent) cleanupCandidates(p *Pair) {
	for i, ps := range p.paths {
		if i != p.active && ps.lastResp != nil {
			a.sendProbe(p, i, probe.KindFinish)
		}
	}
}

func (a *Agent) migrate(p *Pair, to int, urgent bool) {
	now := a.eng.Now()
	old := p.active
	a.sendProbe(p, old, probe.KindFinish)
	// Bytes still in flight on the old path are usually delivered and
	// acked normally; whatever remains after a drain timeout (e.g. the
	// old path failed) is declared lost and requeued.
	oldPS := p.paths[old]
	a.eng.After(sim.Duration(a.cfg.ProbeTimeoutRTTs)*oldPS.baseRTT, func() {
		a.reclaimOrphans(p, oldPS)
	})
	p.active = to
	p.Migrations++
	a.cMigr.Inc()
	migTrace := telemetry.SpanID(telemetry.TraceMigration, int64(p.ID), int64(p.Migrations))
	if a.rec != nil {
		note := "planned"
		if urgent {
			note = "urgent"
		}
		a.rec.Record(telemetry.Event{T: int64(now), Kind: telemetry.EvMigration,
			Entity: a.entity, A: int64(p.ID), B: int64(to), Note: note,
			Trace: migTrace, Span: 1})
	}
	p.violationStreak = 0
	p.lastViolationAt = now
	p.deliveredAtCheck = p.Delivered
	p.enterRamp(now, false) // Scenario-1 on the fresh path
	if a.cfg.ReorderFree {
		p.dataStartAt = now + p.paths[to].baseRTT
	}
	// Register on the new path immediately.
	a.sendProbe(p, to, probe.KindProbe)
	if urgent {
		// Freeze window: one migration per [1,N]-RTT window per host.
		n := 1 + a.rng.Intn(a.cfg.FreezeMaxRTTs)
		a.freezeUntil = now + sim.Duration(n)*p.paths[to].baseRTT
		a.cFrArmed.Inc()
		if a.rec != nil {
			a.rec.Record(telemetry.Event{T: int64(now), Kind: telemetry.EvFreeze,
				Entity: a.entity, A: int64(p.ID), B: int64(n), Note: "armed",
				Trace: migTrace, Span: 2})
		}
	}
	a.scheduleSend()
}

// ---- Guarantee Partitioning loop -------------------------------------------

// tokenUpdate runs every TokenPeriod: sender-side token assignment across
// each VF's pairs (Algorithm 1 sender) and receiver-side admission
// (Algorithm 1 receiver).
func (a *Agent) tokenUpdate() {
	period := a.cfg.TokenPeriod.Seconds()
	// Sender side.
	for _, vf := range a.vfs {
		if vf.senderTokens <= 0 || len(vf.pairs) == 0 {
			continue
		}
		// Externally-managed pairs (multipath token splits) keep their
		// φ; the rest share the remaining hose.
		hose := vf.senderTokens
		var managed []*Pair
		var free []*Pair
		for _, p := range vf.pairs {
			if p.phiManaged {
				hose -= p.phi
				managed = append(managed, p)
			} else {
				free = append(free, p)
			}
		}
		_ = managed
		if hose <= 0 || len(free) == 0 {
			continue
		}
		tps := make([]*token.Pair, len(free))
		for i, p := range free {
			demand := -1.0
			// A pair that drained its demand and is not backlogged is
			// demand-bounded: measure its actual rate in tokens.
			if p.Demand == nil {
				demand = 0
			} else if p.Demand.Pending() == 0 {
				demand = float64(p.txSinceToken*8) / period / a.cfg.BU
			}
			adm := token.Unbound
			if p.peerPhi > 0 {
				adm = p.peerPhi
			}
			tps[i] = &token.Pair{Demand: demand, Admitted: adm}
			p.txSinceToken = 0
		}
		token.SenderAssign(hose, tps)
		for i, p := range free {
			p.phi = tps[i].Requested
		}
	}
	// Receiver side: admit per VF.
	now := a.eng.Now()
	byVF := make(map[int32][]*recvPair)
	for vm, rp := range a.recvPairs {
		if now-rp.lastSeen > 100*a.cfg.TokenPeriod {
			delete(a.recvPairs, vm)
			continue
		}
		byVF[rp.vf] = append(byVF[rp.vf], rp)
	}
	for vfID, rps := range byVF {
		hose := a.recvVFTokens[vfID]
		if hose <= 0 {
			continue
		}
		tps := make([]*token.Pair, len(rps))
		for i, rp := range rps {
			tps[i] = &rp.tok
		}
		token.ReceiverAdmit(hose, tps)
	}
}

// armRTO schedules a retransmission-timeout check: if no send or ack
// progress happens for ProbeTimeoutRTTs·baseRTT while bytes are in flight,
// the inflight bytes are assumed dropped and are requeued.
func (a *Agent) armRTO(p *Pair) {
	if p.rtoArmed {
		return
	}
	p.rtoArmed = true
	rto := sim.Duration(2*a.cfg.ProbeTimeoutRTTs) * p.paths[p.active].baseRTT
	a.eng.After(rto, func() { a.checkRTO(p, rto) })
}

func (a *Agent) checkRTO(p *Pair, rto sim.Duration) {
	p.rtoArmed = false
	if a.pairs[p.ID] != p || p.inflight == 0 {
		return
	}
	now := a.eng.Now()
	if since := now - p.lastProgress; since < rto {
		// Progress happened; re-check after the remaining time.
		p.rtoArmed = true
		a.eng.After(rto-since, func() { a.checkRTO(p, rto) })
		return
	}
	p.Losses++
	a.recoverInflight(p)
	a.scheduleSend()
}

// recoverInflight requeues all unacknowledged bytes (retransmission).
func (a *Agent) recoverInflight(p *Pair) {
	if p.inflight == 0 {
		return
	}
	if rq, ok := p.Demand.(Requeuer); ok {
		rq.Requeue(p.inflight)
	}
	p.inflight = 0
	for _, ps := range p.paths {
		ps.inflight = 0
	}
}

// reclaimOrphans declares bytes still unacknowledged on a no-longer-active
// path lost, requeueing them for retransmission on the current path.
func (a *Agent) reclaimOrphans(p *Pair, ps *pathState) {
	if a.pairs[p.ID] != p || ps == p.paths[p.active] || ps.inflight == 0 {
		return
	}
	lost := ps.inflight
	ps.inflight = 0
	p.inflight -= lost
	if p.inflight < 0 {
		p.inflight = 0
	}
	p.Losses++
	if rq, ok := p.Demand.(Requeuer); ok {
		rq.Requeue(lost)
	}
	a.scheduleSend()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
