package ufabe

import (
	"math"
	"testing"

	"ufab/internal/dataplane"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/ufabc"
)

// rig is a minimal two-host star with μFAB-C on the switch and μFAB-E on
// both hosts — enough to drive the full probe loop.
type rig struct {
	eng      *sim.Engine
	net      *dataplane.Network
	st       *topo.Star
	src, dst *Agent
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), 5*sim.Microsecond)
	net := dataplane.New(eng, st.Graph, dataplane.Config{})
	net.SetSwitchAgent(st.Center, ufabc.New(ufabc.Config{}))
	for _, h := range st.Hosts {
		net.SetSwitchAgent(h, ufabc.New(ufabc.Config{}))
	}
	src := New(eng, net, st.Hosts[0], cfg)
	dst := New(eng, net, st.Hosts[1], cfg)
	return &rig{eng: eng, net: net, st: st, src: src, dst: dst}
}

func (r *rig) addPair(phi float64) (*Pair, *Buffer) {
	buf := &Buffer{}
	routes := r.st.Graph.Paths(r.st.Hosts[0], r.st.Hosts[1], 0)
	r.src.AddVF(1, phi, 2)
	r.dst.AddVF(1, phi, 2)
	p := r.src.AddPair(PairConfig{
		ID: 1, VF: 1, Dst: r.st.Hosts[1], Routes: routes, Phi: phi, Demand: buf,
	})
	return p, buf
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.BU != 100e6 || c.MTU != 1500 || c.TargetUtilization != 0.95 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.ProbePayloadBytes != 4096 || c.ViolationRTTs != 5 || c.FreezeMaxRTTs != 10 {
		t.Errorf("probe/migration defaults wrong: %+v", c)
	}
	if c.TokenPeriod != 32*sim.Microsecond {
		t.Errorf("token period default = %v", c.TokenPeriod)
	}
}

func TestNewPanicsOnSwitch(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	net := dataplane.New(eng, st.Graph, dataplane.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("New on switch did not panic")
		}
	}()
	New(eng, net, st.Center, Config{})
}

func TestAddPairValidation(t *testing.T) {
	r := newRig(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("AddPair without routes did not panic")
		}
	}()
	r.src.AddPair(PairConfig{ID: 9, Demand: &Buffer{}})
}

func TestPairAccessors(t *testing.T) {
	r := newRig(t, Config{})
	p, _ := r.addPair(10)
	if p.Phi() != 10 {
		t.Errorf("Phi = %v", p.Phi())
	}
	if p.Guarantee() != 1e9 {
		t.Errorf("Guarantee = %v", p.Guarantee())
	}
	if got := r.src.Pair(1); got != p {
		t.Error("Pair lookup failed")
	}
	if len(r.src.Pairs()) != 1 {
		t.Error("Pairs() wrong")
	}
	if p.ActivePathID() < 0 || len(p.ActivePath()) == 0 {
		t.Error("active path accessors wrong")
	}
}

func TestEffectivePhiUsesReceiverAdmission(t *testing.T) {
	r := newRig(t, Config{})
	p, _ := r.addPair(10)
	p.peerPhi = 4
	if p.EffectivePhi() != 4 {
		t.Errorf("EffectivePhi = %v, want receiver-capped 4", p.EffectivePhi())
	}
	p.peerPhi = 0 // unbound
	if p.EffectivePhi() != 10 {
		t.Errorf("EffectivePhi = %v, want sender 10", p.EffectivePhi())
	}
}

func TestProbeLoopDrivesWindow(t *testing.T) {
	r := newRig(t, Config{})
	p, buf := r.addPair(10)
	buf.Add(1 << 30)
	r.eng.RunUntil(2 * sim.Millisecond)
	// Alone on a 10G path the pair must reach ≈ a BDP window.
	bdp := 0.95 * 10e9 * r.st.Graph.BaseRTT(p.ActivePath(), 1500).Seconds() / 8
	if w := float64(p.Window()); w < 0.5*bdp {
		t.Errorf("window = %v, want near BDP %v", w, bdp)
	}
	if p.Delivered == 0 {
		t.Error("no bytes delivered")
	}
	if p.RTT.Len() == 0 {
		t.Error("no RTT samples")
	}
}

func TestSelfClockedProbing(t *testing.T) {
	r := newRig(t, Config{})
	p, buf := r.addPair(10)
	buf.Add(1 << 30)
	r.eng.RunUntil(2 * sim.Millisecond)
	// Self-clocking cadence: one probe per max(RTT, L_w/rate) — the
	// probe loop is closed (next probe waits for the response), so at
	// high rate it is RTT-limited and the L_w rule is the worst-case
	// bound (§4.1).
	rtt := p.paths[p.active].baseRTT.Seconds()
	rate := float64(p.Delivered*8) / (2 * sim.Millisecond).Seconds()
	expected := (2 * sim.Millisecond).Seconds() / (rtt + 4096/(rate/8))
	got := float64(r.src.ProbesSentCount())
	if got < 0.4*expected || got > 2.5*expected {
		t.Errorf("probes sent = %.0f, want ≈%.0f (RTT-limited self-clocking)", got, expected)
	}
	// And never more often than one per L_w bytes (the overhead bound).
	if got > float64(p.SentBytes)/4096*1.2+5 {
		t.Errorf("probe overhead bound violated: %.0f probes for %d bytes", got, p.SentBytes)
	}
}

func TestIdleFinishAndReactivation(t *testing.T) {
	r := newRig(t, Config{})
	p, buf := r.addPair(10)
	buf.Add(200_000)
	r.eng.RunUntil(3 * sim.Millisecond) // drains, then idles
	if !p.idle {
		t.Fatal("pair did not go idle")
	}
	// The switch registers must have been cleaned by the finish probe.
	downlink := p.ActivePath()[len(p.ActivePath())-1]
	swAgent := r.net.G.Link(downlink).Src
	_ = swAgent
	// Reactivate: Scenario-2. Kick must clear the idle flag at once.
	buf.Add(500_000)
	if p.idle {
		t.Fatal("Kick did not reactivate the pair")
	}
	r.eng.RunUntil(6 * sim.Millisecond)
	if p.Delivered != 700_000 {
		t.Fatalf("Delivered = %d, want all 700000", p.Delivered)
	}
	if !p.idle {
		t.Fatal("pair should have re-idled after draining")
	}
}

func TestRemovePair(t *testing.T) {
	r := newRig(t, Config{})
	p, _ := r.addPair(10)
	r.src.RemovePair(p.ID)
	if r.src.Pair(p.ID) != nil {
		t.Fatal("pair still present")
	}
	r.src.RemovePair(p.ID) // idempotent
	r.eng.RunUntil(sim.Millisecond)
}

func TestComputeFromResponseEquations(t *testing.T) {
	r := newRig(t, Config{})
	p, _ := r.addPair(10) // φ = 10 tokens = 1G
	ps := p.paths[p.active]
	T := ps.baseRTT.Seconds()
	resp := &probe.Packet{
		Kind: probe.KindResponse, Phi: 10,
		Hops: []probe.Hop{{
			TotalWindow: 40000,
			TotalTokens: 40,  // Φ = 40
			TxRate:      8e9, // below target
			Queue:       0,
			Capacity:    10e9,
		}},
	}
	p.computeFromResponse(ps, resp)
	// Eqn 1: r = (10/40)·0.95·10G = 2.375G.
	if math.Abs(ps.share-2.375e9) > 1e6 {
		t.Errorf("share = %v, want 2.375e9", ps.share)
	}
	// Eqn 3: w = (10/40)·W·(C̄T/8)/(txT/8) capped at BDP.
	bdp := 0.95 * 10e9 * T / 8
	want := 0.25 * 40000 * bdp / (8e9 * T / 8)
	if want > bdp {
		want = bdp
	}
	if math.Abs(float64(ps.window)-want) > 0.05*want {
		t.Errorf("window = %d, want ≈%f", ps.window, want)
	}
	if !ps.qualified {
		t.Error("40 tokens on a 95-token link must be qualified")
	}
	// Oversubscribed: Φ·BU > C̄.
	resp.Hops[0].TotalTokens = 120
	p.computeFromResponse(ps, resp)
	if ps.qualified {
		t.Error("120 tokens on a 95-token link must be unqualified")
	}
	if ps.subscription < 1.2 {
		t.Errorf("subscription = %v, want ≥1.2", ps.subscription)
	}
}

func TestComputeFromResponseIdleLink(t *testing.T) {
	r := newRig(t, Config{})
	p, _ := r.addPair(10)
	ps := p.paths[p.active]
	resp := &probe.Packet{
		Kind: probe.KindResponse, Phi: 10,
		Hops: []probe.Hop{{TotalTokens: 10, TxRate: 0, Queue: 0, Capacity: 10e9}},
	}
	p.computeFromResponse(ps, resp)
	// Idle link: the window jumps to the full BDP (§3.4: "any VM pair
	// with a single token can use the full capacity").
	bdp := int64(0.95 * 10e9 * ps.baseRTT.Seconds() / 8)
	if ps.window < bdp*9/10 {
		t.Errorf("idle-link window = %d, want ≈BDP %d", ps.window, bdp)
	}
}

func TestTwoStageAdmissionRamp(t *testing.T) {
	r := newRig(t, Config{})
	p, _ := r.addPair(10)
	p.enterRamp(0, false)
	if p.stage != stageRamp {
		t.Fatal("not in ramp")
	}
	// Bootstrap = φ·BU·T (≥ MTU floor).
	T := p.paths[p.active].baseRTT
	want := 10 * 100e6 * T.Seconds() / 8
	if want < 1500 {
		want = 1500
	}
	if math.Abs(p.rampWindow-want) > 1 {
		t.Errorf("bootstrap = %v, want %v", p.rampWindow, want)
	}
	// Additive increase needs a response to know the share.
	ps := p.paths[p.active]
	ps.lastResp = &probe.Packet{}
	ps.share = 2e9
	ps.window = 1 << 20 // keep eqn-3 above the ramp
	before := p.rampWindow
	p.advanceRamp(T)
	inc := p.rampWindow - before
	want = 2e9 * T.Seconds() / 8 // r·T per RTT
	if math.Abs(inc-want) > 0.05*want {
		t.Errorf("ramp increment = %v, want %v", inc, want)
	}
	// Crossing the eqn-3 window flips to steady.
	ps.window = int64(p.rampWindow) - 1
	p.advanceRamp(2 * T)
	if p.stage != stageSteady {
		t.Error("did not switch to steady after crossing")
	}
}

func TestUFABPrimeSkipsRamp(t *testing.T) {
	r := newRig(t, Config{DisableTwoStage: true})
	p, _ := r.addPair(10)
	if p.stage != stageSteady {
		t.Fatal("uFAB' must not ramp")
	}
	// Initial window is a full path BDP (the greedy burst).
	bdp := int64(10e9 * p.paths[p.active].baseRTT.Seconds() / 8)
	if w := p.Window(); w < bdp*9/10 {
		t.Errorf("uFAB' initial window = %d, want ≈%d", w, bdp)
	}
}

func TestPeriodicProbingMode(t *testing.T) {
	r := newRig(t, Config{PeriodicProbeRTTs: 3})
	p, buf := r.addPair(10)
	buf.Add(1 << 30)
	r.eng.RunUntil(2 * sim.Millisecond)
	// Probes every ~3 RTTs instead of every L_w bytes: far fewer than
	// self-clocking would send at 9.5G.
	rtts := float64(2*sim.Millisecond) / float64(p.paths[p.active].baseRTT)
	maxExpected := rtts/3*2 + 10
	if float64(r.src.ProbesSentCount()) > maxExpected {
		t.Errorf("periodic probing sent %d probes, want ≤ %.0f", r.src.ProbesSentCount(), maxExpected)
	}
}

func TestWFQClassWeights(t *testing.T) {
	w := newWFQ()
	hi := &vfState{id: 1, class: 7}
	lo := &vfState{id: 2, class: 0}
	w.addVF(hi)
	w.addVF(lo)
	// Two always-eligible pairs.
	mkPair := func(vf *vfState) *Pair {
		b := &Buffer{}
		b.Add(1 << 30)
		p := &Pair{Demand: b}
		ps := &pathState{window: 1 << 20}
		p.paths = []*pathState{ps}
		p.stage = stageSteady
		vf.pairs = append(vf.pairs, p)
		return p
	}
	ph := mkPair(hi)
	pl := mkPair(lo)
	served := map[*Pair]int{}
	for i := 0; i < 1000; i++ {
		p := w.nextPair(0, 1500)
		if p == nil {
			t.Fatal("no eligible pair")
		}
		served[p]++
		var cls int
		if p == ph {
			cls = 7
		}
		w.charge(p, 1500, cls)
	}
	ratio := float64(served[ph]) / float64(served[pl])
	// Class 7 weight 128 vs class 0 weight 1.
	if ratio < 30 {
		t.Errorf("WFQ ratio = %.1f, want heavily weighted toward class 7", ratio)
	}
}

func TestWFQClassClamping(t *testing.T) {
	w := newWFQ()
	v := &vfState{id: 1, class: 99}
	w.addVF(v)
	if v.class != NumWeightClasses-1 {
		t.Errorf("class clamped to %d", v.class)
	}
	v2 := &vfState{id: 2, class: -3}
	w.addVF(v2)
	if v2.class != 0 {
		t.Errorf("negative class clamped to %d", v2.class)
	}
}

func TestReorderFreeDelaysData(t *testing.T) {
	// With ReorderFree, dataStartAt is pushed one baseRTT after a
	// migration; verify via the eligibility gate.
	r := newRig(t, Config{ReorderFree: true})
	p, buf := r.addPair(10)
	buf.Add(1 << 20)
	p.dataStartAt = r.eng.Now() + 100*sim.Microsecond
	if eligible(p, int64(r.eng.Now())) {
		t.Fatal("pair eligible before dataStartAt")
	}
	if !eligible(p, int64(r.eng.Now()+101*sim.Microsecond)) {
		t.Fatal("pair not eligible after dataStartAt")
	}
}

func TestGuaranteePartitioningLoop(t *testing.T) {
	// Two pairs of one VF: when one has insufficient demand, the other's
	// token grows toward the full hose within a token period.
	eng := sim.New()
	st := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
	net := dataplane.New(eng, st.Graph, dataplane.Config{})
	net.SetSwitchAgent(st.Center, ufabc.New(ufabc.Config{}))
	src := New(eng, net, st.Hosts[0], Config{})
	New(eng, net, st.Hosts[1], Config{})
	New(eng, net, st.Hosts[2], Config{})
	src.AddVF(1, 40, 3) // 4G hose
	busy := &Buffer{}
	idle := &Buffer{}
	p1 := src.AddPair(PairConfig{ID: 1, VF: 1, Dst: st.Hosts[1],
		Routes: st.Graph.Paths(st.Hosts[0], st.Hosts[1], 0), Phi: 20, Demand: busy})
	p2 := src.AddPair(PairConfig{ID: 2, VF: 1, Dst: st.Hosts[2],
		Routes: st.Graph.Paths(st.Hosts[0], st.Hosts[2], 0), Phi: 20, Demand: idle})
	busy.Add(1 << 30)
	eng.RunUntil(500 * sim.Microsecond)
	if p1.Phi() < 30 {
		t.Errorf("busy pair φ = %v, want most of the 40-token hose", p1.Phi())
	}
	if p2.Phi() > 25 {
		t.Errorf("idle pair φ = %v, want ≈ the boosted equal share", p2.Phi())
	}
}
