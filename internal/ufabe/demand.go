package ufabe

import "ufab/internal/flowsrc"

// Demand, Buffer and the optional capability interfaces are shared with
// the baseline transports; see package flowsrc for the definitions.
type (
	// Demand is the traffic source a VM-pair drains.
	Demand = flowsrc.Source
	// Buffer is the basic demand buffer.
	Buffer = flowsrc.Buffer
	// DeliveryObserver observes end-to-end acknowledged bytes.
	DeliveryObserver = flowsrc.DeliveryObserver
	// Requeuer takes lost bytes back for retransmission.
	Requeuer = flowsrc.Requeuer
)
