package ufabe

import (
	"math"

	"ufab/internal/dataplane"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// pathState tracks one candidate underlay path of a VM-pair.
type pathState struct {
	id      uint16
	route   topo.Path
	baseRTT sim.Duration

	// Last probe response and when it arrived.
	lastResp   *probe.Packet
	lastRespAt sim.Time
	// srtt is the smoothed probe round-trip time on this path,
	// including queueing; probe-loss timeouts scale with it so heavy
	// standing queues (many pairs at the MTU window floor) do not look
	// like losses.
	srtt sim.Duration

	// Derived per-response quantities.
	share     float64 // r_{a→b}: proportional guarantee share, bits/s (Eqn 1)
	window    int64   // w_{a→b}: utilization-based window, bytes (Eqn 3)
	qualified bool    // C̄_l ≥ Φ_l·B_u on every link
	// headPhi is the largest Φ_l·B_u/C̄_l subscription ratio, for the
	// minimum-subscription path preference.
	subscription float64

	// inflight is the unacknowledged bytes this pair has on this path.
	inflight int64

	// Probe bookkeeping.
	probeSeq         uint32
	respSeq          uint32 // highest seq answered
	probeOutstanding bool
	probeSentAt      sim.Time
	lostProbes       int
}

// fresh reports whether the path has a response newer than age.
func (ps *pathState) fresh(now sim.Time, age sim.Duration) bool {
	return ps.lastResp != nil && now-ps.lastRespAt <= age
}

// admissionStage is the two-stage traffic admission state (§3.4).
type admissionStage uint8

const (
	// stageRamp additively increases a bootstrap window until it crosses
	// the Eqn-3 window.
	stageRamp admissionStage = iota
	// stageSteady uses the Eqn-3 window directly.
	stageSteady
)

// Pair is the sender-side state of one VM-pair (one row of the FPGA
// Context Table, §4.1).
type Pair struct {
	ID     dataplane.VMPair
	VF     int32
	Src    topo.NodeID
	Dst    topo.NodeID
	Demand Demand

	agent *Agent

	// Tokens. phi is the sender-assigned token (GP-managed or static);
	// peerPhi the last receiver admission (0 = unbound/unknown).
	// phiManaged pairs are excluded from Guarantee Partitioning — an
	// external controller (e.g. the Appendix-F multipath token split)
	// owns their φ.
	phi        float64
	peerPhi    float64
	phiManaged bool

	paths  []*pathState
	active int // index into paths

	// Window state.
	stage      admissionStage
	rampWindow float64 // w′ in bytes during stageRamp
	lastRampAt sim.Time
	inflight   int64
	seq        uint64
	// dataStartAt delays data after a reorder-free migration.
	dataStartAt sim.Time

	// Self-clocked probing (§4.1): next probe once L_w bytes have been
	// sent since the previous response arrived.
	bytesSinceResp int64
	wantProbe      bool

	// Migration state (§3.5).
	violationStreak int
	lastViolationAt sim.Time
	// deliveredAtCheck snapshots Delivered at the last violation check
	// so the achieved rate over the last RTT-spaced interval is known.
	deliveredAtCheck int64
	betterSince      sim.Time // when a persistently better path was first seen
	migrating        bool

	// Idle/finish state.
	idle      bool
	idleSince sim.Time

	// Loss recovery: lastProgress is the last send or ack; an RTO with
	// no progress assumes the inflight bytes were dropped and requeues
	// them.
	lastProgress sim.Time
	rtoArmed     bool

	// Measurements.
	Delivered  int64         // bytes acknowledged end-to-end
	SentBytes  int64         // bytes handed to the wire
	RTT        stats.Samples // per-ack network RTT in microseconds
	Migrations int           // migration count
	Losses     int           // RTO-recovered loss episodes
	// txSinceToken measures demand for Guarantee Partitioning.
	txSinceToken int64
}

// Phi returns the pair's current sender token.
func (p *Pair) Phi() float64 { return p.phi }

// SetPhi pins the pair's sender token and excludes the pair from the VF's
// Guarantee Partitioning loop; the Appendix-F multipath token split uses
// this to own the per-path budget.
func (p *Pair) SetPhi(phi float64) {
	p.phi = phi
	p.phiManaged = true
}

// EffectivePhi returns min(sender token, receiver admission) — the token
// used in probes and guarantees.
func (p *Pair) EffectivePhi() float64 {
	if p.peerPhi > 0 && p.peerPhi < p.phi {
		return p.peerPhi
	}
	return p.phi
}

// Guarantee returns the pair's current minimum-bandwidth guarantee in
// bits/s.
func (p *Pair) Guarantee() float64 { return p.EffectivePhi() * p.agent.cfg.BU }

// ActivePath returns the route currently carrying data.
func (p *Pair) ActivePath() topo.Path { return p.paths[p.active].route }

// ActivePathID returns the active candidate index.
func (p *Pair) ActivePathID() int { return p.active }

// Window returns the current sending window in bytes.
func (p *Pair) Window() int64 {
	ps := p.paths[p.active]
	switch p.stage {
	case stageRamp:
		w := int64(p.rampWindow)
		if ps.lastResp != nil && w > ps.window {
			return ps.window
		}
		return w
	default:
		return ps.window
	}
}

// Inflight returns the bytes in flight.
func (p *Pair) Inflight() int64 { return p.inflight }

// PathCount returns how many candidate paths the pair probes.
func (p *Pair) PathCount() int { return len(p.paths) }

// Route returns candidate path i's route.
func (p *Pair) Route(i int) topo.Path { return p.paths[i].route }

// Idle reports whether the pair has gone idle (no pending demand for the
// idle timeout) and released its admission.
func (p *Pair) Idle() bool { return p.idle }

// computeFromResponse derives {r, w, qualified, subscription} for a path
// from a probe response, implementing Eqns (1) and (3).
func (p *Pair) computeFromResponse(ps *pathState, resp *probe.Packet) {
	cfg := &p.agent.cfg
	phi := p.EffectivePhi()
	T := ps.baseRTT.Seconds()
	share := math.Inf(1)
	window := math.Inf(1)
	qualified := true
	subscription := 0.0
	for _, h := range resp.Hops {
		target := cfg.TargetUtilization * h.Capacity // C̄_l
		phiTotal := h.TotalTokens
		if phiTotal < phi {
			// The core's registers always include our own probe's φ;
			// guard against quantization shaving it below φ.
			phiTotal = phi
		}
		if phiTotal <= 0 {
			phiTotal = math.SmallestNonzeroFloat64
		}
		// Eqn (1): proportional share of the target capacity.
		if rl := phi / phiTotal * target; rl < share {
			share = rl
		}
		// Eqn (3): utilization-based window.
		bdpBytes := target * T / 8
		denomBytes := h.TxRate*T/8 + float64(h.Queue)
		var wl float64
		if denomBytes <= 0 {
			wl = bdpBytes
		} else {
			totalW := float64(h.TotalWindow)
			if totalW < float64(p.Window()) {
				totalW = float64(p.Window())
			}
			wl = phi / phiTotal * totalW * bdpBytes / denomBytes
			if wl > bdpBytes {
				wl = bdpBytes
			}
		}
		if wl < window {
			window = wl
		}
		// Qualification: the total subscription must fit under the
		// target capacity (Φ_l already includes our φ on this path).
		sub := phiTotal * cfg.BU / target
		if sub > subscription {
			subscription = sub
		}
		if sub > 1 {
			qualified = false
		}
	}
	ps.share = share
	ps.qualified = qualified
	ps.subscription = subscription
	minWindow := int64(cfg.MTU) // one MTU keeps the ack clock alive
	if w := int64(window); w > minWindow {
		ps.window = w
	} else {
		ps.window = minWindow
	}
	ps.lastResp = resp
	if a := p.agent; a.rec != nil {
		a.rec.Record(telemetry.Event{T: int64(a.eng.Now()), Kind: telemetry.EvWindow,
			Entity: a.entity, A: int64(p.ID), B: ps.window, V: ps.share,
			Trace: telemetry.SpanID(telemetry.TraceProbe, int64(p.ID), int64(ps.id), int64(resp.Seq)), Span: 4})
	}
}

// enterRamp starts two-stage admission: Scenario-1 (new pair, bootstrap
// window φ·B_u·T) or Scenario-2 (reactivated pair, window r·T).
func (p *Pair) enterRamp(now sim.Time, scenario2 bool) {
	if p.agent.cfg.DisableTwoStage {
		// μFAB′: no burst bound; start from the full Eqn-3 window (or
		// BDP before the first response).
		p.stage = stageSteady
		ps := p.paths[p.active]
		if ps.lastResp == nil {
			bdp := p.agent.graph.MinCapacity(ps.route) * ps.baseRTT.Seconds() / 8
			ps.window = int64(bdp)
		}
		return
	}
	p.stage = stageRamp
	ps := p.paths[p.active]
	cfg := &p.agent.cfg
	// Scenario-1 bootstraps at the guarantee (φ·B_u·T); Scenario-2 at
	// the last proportional share r·T, never below the guarantee — a
	// reactivating pair must reach its minimum bandwidth immediately,
	// not re-earn it (§3.4).
	p.rampWindow = p.EffectivePhi() * cfg.BU * ps.baseRTT.Seconds() / 8
	if scenario2 && ps.share > 0 {
		if w := ps.share * ps.baseRTT.Seconds() / 8; w > p.rampWindow {
			p.rampWindow = w
		}
	}
	if min := float64(cfg.MTU); p.rampWindow < min {
		p.rampWindow = min
	}
	p.lastRampAt = now
	p.recordStage(now, "ramp")
}

// recordStage traces a two-stage-admission transition (no-op without a
// recorder).
func (p *Pair) recordStage(now sim.Time, note string) {
	if a := p.agent; a.rec != nil {
		a.rec.Record(telemetry.Event{T: int64(now), Kind: telemetry.EvStage,
			Entity: a.entity, A: int64(p.ID), Note: note})
	}
}

// advanceRamp additively increases the ramp window by the proportional
// share per RTT and switches to steady state once it crosses the Eqn-3
// window (§3.4).
func (p *Pair) advanceRamp(now sim.Time) {
	if p.stage != stageRamp {
		return
	}
	ps := p.paths[p.active]
	if ps.lastResp == nil {
		return
	}
	elapsed := now - p.lastRampAt
	if elapsed <= 0 {
		return
	}
	if elapsed > ps.baseRTT {
		elapsed = ps.baseRTT
	}
	p.rampWindow += ps.share * elapsed.Seconds() / 8
	p.lastRampAt = now
	if int64(p.rampWindow) >= ps.window {
		p.stage = stageSteady
		p.recordStage(now, "steady")
	}
}
