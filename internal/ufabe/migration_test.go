package ufabe

import (
	"testing"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/ufabc"
)

// twoPathRig builds a 2-agg two-tier topology with agents everywhere.
type twoPathRig struct {
	eng    *sim.Engine
	net    *dataplane.Network
	tt     *topo.TwoTier
	agents map[topo.NodeID]*Agent
}

func newTwoPathRig(t *testing.T, cfg Config, dpCfg dataplane.Config) *twoPathRig {
	t.Helper()
	eng := sim.New()
	tt := topo.NewTwoTier(2, 3, topo.Gbps(10), 5*sim.Microsecond)
	net := dataplane.New(eng, tt.Graph, dpCfg)
	for _, n := range tt.Graph.Nodes {
		if n.Kind == topo.Switch {
			net.SetSwitchAgent(n.ID, ufabc.New(ufabc.Config{}))
		}
	}
	r := &twoPathRig{eng: eng, net: net, tt: tt, agents: map[topo.NodeID]*Agent{}}
	for _, h := range tt.Graph.Hosts() {
		net.SetSwitchAgent(h, ufabc.New(ufabc.Config{}))
		r.agents[h] = New(eng, net, h, cfg)
	}
	return r
}

func (r *twoPathRig) pair(id dataplane.VMPair, i int, phi float64) (*Pair, *Buffer) {
	src, dst := r.tt.HostsLeft[i], r.tt.HostsRight[i]
	a := r.agents[src]
	if a.vfs[int32(id)] == nil {
		a.AddVF(int32(id), phi, 3)
		r.agents[dst].AddVF(int32(id), phi, 3)
	}
	buf := &Buffer{}
	p := a.AddPair(PairConfig{
		ID: id, VF: int32(id), Dst: dst,
		Routes: r.tt.Graph.Paths(src, dst, 0),
		Phi:    phi, Demand: buf,
	})
	return p, buf
}

func TestViolationMigration(t *testing.T) {
	// Three 40-token (4G) pairs cannot share one 10G path; after
	// violation detection at least one migrates and all reach ≥3.5G.
	r := newTwoPathRig(t, Config{Seed: 3}, dataplane.Config{})
	var pairs []*Pair
	for i := 0; i < 3; i++ {
		p, buf := r.pair(dataplane.VMPair(i+1), i, 40)
		buf.Add(1 << 42)
		pairs = append(pairs, p)
	}
	r.eng.RunUntil(20 * sim.Millisecond)
	migrations := 0
	for i, p := range pairs {
		migrations += p.Migrations
		rate := float64(p.Delivered*8) / (20 * sim.Millisecond).Seconds()
		if rate < 3e9 {
			t.Errorf("pair %d long-run rate %.2f G", i, rate/1e9)
		}
	}
	if migrations == 0 {
		t.Error("no migrations despite initial collisions being likely")
	}
	// Distinct active paths at the end.
	paths := map[int]int{}
	for _, p := range pairs {
		paths[p.ActivePathID()]++
	}
	for _, n := range paths {
		if n == 3 {
			t.Error("all pairs still share one path")
		}
	}
}

func TestProbeTimeoutDetectsDeadPath(t *testing.T) {
	// Failing the active path's agg makes probes time out; the pair
	// must migrate to the surviving path and keep delivering.
	r := newTwoPathRig(t, Config{Seed: 4}, dataplane.Config{})
	p, buf := r.pair(1, 0, 20)
	buf.Add(1 << 42)
	r.eng.RunUntil(3 * sim.Millisecond)
	activeAgg := r.tt.Graph.Link(p.ActivePath()[1]).Dst
	r.net.FailNode(activeAgg)
	r.eng.RunUntil(15 * sim.Millisecond)
	if p.Migrations == 0 {
		t.Fatal("no migration after path death")
	}
	for _, lid := range p.ActivePath() {
		l := r.tt.Graph.Link(lid)
		if l.Src == activeAgg || l.Dst == activeAgg {
			t.Fatal("still routed through the failed agg")
		}
	}
	// reclaimOrphans/RTO must have recovered the stranded bytes.
	before := p.Delivered
	r.eng.RunUntil(18 * sim.Millisecond)
	if p.Delivered <= before {
		t.Fatal("delivery stalled after failure recovery")
	}
	if p.Losses == 0 {
		t.Error("no loss episodes recorded despite the path death")
	}
}

func TestWorkConservationMigration(t *testing.T) {
	// Trigger (ii): a pair parked on a path shared with a heavy
	// competitor should, after BetterPathHold, move to the idle path
	// even though its guarantee is technically satisfied.
	cfg := Config{
		Seed:                   5,
		BetterPathHold:         2 * sim.Millisecond,
		CandidateProbeInterval: 500 * sim.Microsecond,
	}
	r := newTwoPathRig(t, cfg, dataplane.Config{})
	// Competitor: 60 tokens pinned via a single-candidate pair on path 0.
	compBuf := &Buffer{}
	src, dst := r.tt.HostsLeft[1], r.tt.HostsRight[1]
	r.agents[src].AddVF(9, 60, 5)
	r.agents[dst].AddVF(9, 60, 5)
	comp := r.agents[src].AddPair(PairConfig{
		ID: 9, VF: 9, Dst: dst,
		Routes: r.tt.Graph.Paths(src, dst, 0)[:1],
		Phi:    60, Demand: compBuf,
	})
	compBuf.Add(1 << 42)
	r.eng.RunUntil(sim.Millisecond)
	// Subject: 10 tokens; force its initial path onto the competitor's
	// path by giving it that path first... candidates include both; pin
	// its start by setting active manually after creation.
	p, buf := r.pair(1, 0, 10)
	buf.Add(1 << 42)
	// Force the subject onto the competitor's agg path.
	compAgg := r.tt.Graph.Link(comp.ActivePath()[1]).Dst
	for i, ps := range p.paths {
		if r.tt.Graph.Link(ps.route[1]).Dst == compAgg {
			p.active = i
			break
		}
	}
	before := p.ActivePathID()
	r.eng.RunUntil(12 * sim.Millisecond)
	rate := float64(p.Delivered*8) / (12 * sim.Millisecond).Seconds()
	// Whether via trigger (i) or (ii), the subject must end up away
	// from the competitor with a work-conserving rate.
	sameAgg := r.tt.Graph.Link(p.ActivePath()[1]).Dst == compAgg
	if sameAgg && rate < 2e9 {
		t.Errorf("subject stuck with competitor at %.2f G (path %d→%d)",
			rate/1e9, before, p.ActivePathID())
	}
	if rate < 1.5e9 {
		t.Errorf("subject rate %.2f G, want work conservation beyond its 1G guarantee", rate/1e9)
	}
}

func TestAgentAccessors(t *testing.T) {
	r := newTwoPathRig(t, Config{Seed: 6}, dataplane.Config{})
	a := r.agents[r.tt.HostsLeft[0]]
	if a.Host() != r.tt.HostsLeft[0] {
		t.Error("Host() wrong")
	}
	if a.Config().MTU != 1500 {
		t.Error("Config() not defaulted")
	}
	a.Stop() // idempotent-ish: just must not panic
}

func TestRTORecoversTailDrops(t *testing.T) {
	// Tiny buffers force tail drops even for μFAB's bounded bursts
	// during bootstrap; the RTO must requeue so a finite message still
	// completes in full.
	r := newTwoPathRig(t, Config{Seed: 7}, dataplane.Config{QueueCapBytes: 9000})
	p, buf := r.pair(1, 0, 40)
	q, buf2 := r.pair(2, 1, 40)
	const msg = 2_000_000
	buf.Add(msg)
	buf2.Add(msg)
	r.eng.RunUntil(60 * sim.Millisecond)
	if p.Delivered != msg || q.Delivered != msg {
		t.Fatalf("delivered %d/%d of %d (drops=%d)", p.Delivered, q.Delivered, msg, r.net.TotalDrops)
	}
}

func TestLongPathPartialTelemetry(t *testing.T) {
	// A path longer than probe.MaxHops: switches beyond the 15th cannot
	// stamp INT records, and the edge must keep working off the partial
	// telemetry it gets.
	eng := sim.New()
	ch := topo.NewChain(18, topo.Gbps(10), sim.Microsecond)
	net := dataplane.New(eng, ch.Graph, dataplane.Config{})
	for _, sw := range ch.Switches {
		net.SetSwitchAgent(sw, ufabc.New(ufabc.Config{}))
	}
	src := New(eng, net, ch.Src, Config{Seed: 8})
	New(eng, net, ch.Dst, Config{Seed: 8})
	src.AddVF(1, 20, 3)
	buf := &Buffer{}
	p := src.AddPair(PairConfig{
		ID: 1, VF: 1, Dst: ch.Dst,
		Routes: ch.Graph.Paths(ch.Src, ch.Dst, 0),
		Phi:    20, Demand: buf,
	})
	buf.Add(3_000_000)
	eng.RunUntil(20 * sim.Millisecond)
	if p.Delivered != 3_000_000 {
		t.Fatalf("delivered %d over the long path", p.Delivered)
	}
	ps := p.paths[p.active]
	if ps.lastResp == nil {
		t.Fatal("no response over the long path")
	}
	if len(ps.lastResp.Hops) != 15 {
		t.Fatalf("stamped hops = %d, want MaxHops=15", len(ps.lastResp.Hops))
	}
}
