package ufabe

// Hierarchical traffic admission at the sender (§4.1): VM-pair queues are
// grouped per VF, VFs are assigned to one of eight weighted classes, and a
// deficit-round-robin engine arbitrates classes while plain round-robin
// arbitrates VFs within a class and VM-pairs within a VF. Constraining the
// WFQ engine to 8 distinct weight levels is the paper's FPGA scalability
// trade-off; the same constraint is kept here.

// NumWeightClasses is the number of weighted queues in the WFQ engine.
const NumWeightClasses = 8

// defaultClassWeights are the per-class scheduling weights (power-of-two
// ladder, distinct levels as in §4.1).
var defaultClassWeights = [NumWeightClasses]float64{1, 2, 4, 8, 16, 32, 64, 128}

// vfState groups a tenant VF's pairs on one host.
type vfState struct {
	id    int32
	class int
	// senderTokens is the VF's hose φ^a on the sending side;
	// recvTokens on the receiving side.
	senderTokens float64
	recvTokens   float64
	pairs        []*Pair
	rr           int // round-robin cursor over pairs
}

// wfq is the 8-class deficit-round-robin engine.
type wfq struct {
	classes [NumWeightClasses]struct {
		vfs     []*vfState
		rr      int // round-robin cursor over VFs
		deficit float64
	}
	weights [NumWeightClasses]float64
	cursor  int
}

func newWFQ() *wfq {
	w := &wfq{weights: defaultClassWeights}
	return w
}

func (w *wfq) addVF(vf *vfState) {
	c := vf.class
	if c < 0 {
		c = 0
	}
	if c >= NumWeightClasses {
		c = NumWeightClasses - 1
	}
	vf.class = c
	w.classes[c].vfs = append(w.classes[c].vfs, vf)
}

func (w *wfq) removeVF(vf *vfState) {
	cl := &w.classes[vf.class]
	for i, v := range cl.vfs {
		if v == vf {
			cl.vfs = append(cl.vfs[:i], cl.vfs[i+1:]...)
			// Keep the round-robin cursor in range so the next sweep
			// starts from a valid VF.
			if len(cl.vfs) > 0 {
				cl.rr %= len(cl.vfs)
			} else {
				cl.rr = 0
			}
			return
		}
	}
}

// eligible reports whether the pair can emit a packet right now.
func eligible(p *Pair, now int64) bool {
	if p.Demand == nil || p.Demand.Pending() <= 0 {
		return false
	}
	if int64(p.dataStartAt) > now {
		return false
	}
	return p.inflight < p.Window()
}

// nextPair picks the next VM-pair to serve using DRR over classes and RR
// within class/VF, charging cost bytes against the class deficit. It
// returns nil when no pair is eligible.
func (w *wfq) nextPair(now int64, quantum float64) *Pair {
	// Two sweeps: the first may need to refill deficits.
	for sweep := 0; sweep < 2*NumWeightClasses; sweep++ {
		cl := &w.classes[w.cursor]
		if len(cl.vfs) > 0 {
			if cl.deficit <= 0 {
				cl.deficit += quantum * w.weights[w.cursor]
			}
			// RR over VFs in this class.
			for i := 0; i < len(cl.vfs); i++ {
				vf := cl.vfs[(cl.rr+i)%len(cl.vfs)]
				// RR over pairs in this VF.
				for j := 0; j < len(vf.pairs); j++ {
					p := vf.pairs[(vf.rr+j)%len(vf.pairs)]
					if eligible(p, now) {
						cl.rr = (cl.rr + i + 1) % len(cl.vfs)
						vf.rr = (vf.rr + j + 1) % len(vf.pairs)
						return p
					}
				}
			}
		}
		// Nothing eligible in this class: move on without banking
		// deficit (DRR resets idle classes).
		cl.deficit = 0
		w.cursor = (w.cursor + 1) % NumWeightClasses
	}
	return nil
}

// charge deducts the transmitted bytes from the serving class and advances
// the cursor when the class has used its quantum.
func (w *wfq) charge(p *Pair, bytes int, vfClass int) {
	cl := &w.classes[vfClass]
	cl.deficit -= float64(bytes)
	if cl.deficit <= 0 {
		w.cursor = (w.cursor + 1) % NumWeightClasses
	}
}
