package telemetry

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// omSample is one parsed exposition line.
type omSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseOpenMetrics is a small vendored OpenMetrics text parser used only
// by tests: it validates the structural rules the exposition relies on
// (TYPE before samples, metric-name alphabet, label syntax, `# EOF`
// terminator) and returns the samples. It is intentionally strict — any
// line it does not understand is an error.
func parseOpenMetrics(text string) (types map[string]string, samples []omSample, err error) {
	types = map[string]string{}
	lines := strings.Split(text, "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		return nil, nil, fmt.Errorf("exposition must end with %q and a newline", "# EOF")
	}
	validName := func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				return false
			}
		}
		return true
	}
	for n, line := range lines[:len(lines)-2] {
		if line == "" {
			return nil, nil, fmt.Errorf("line %d: empty line before EOF", n+1)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[0] != "#" || (fields[1] != "TYPE" && fields[1] != "HELP" && fields[1] != "UNIT") {
				return nil, nil, fmt.Errorf("line %d: malformed comment %q", n+1, line)
			}
			if fields[1] == "TYPE" {
				if !validName(fields[2]) {
					return nil, nil, fmt.Errorf("line %d: bad family name %q", n+1, fields[2])
				}
				if _, dup := types[fields[2]]; dup {
					return nil, nil, fmt.Errorf("line %d: duplicate TYPE for %q", n+1, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		rest := line
		name := rest
		var labels map[string]string
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			end := strings.IndexByte(rest, '}')
			if end < i {
				return nil, nil, fmt.Errorf("line %d: unterminated label set", n+1)
			}
			labels = map[string]string{}
			for _, pair := range strings.Split(rest[i+1:end], ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					return nil, nil, fmt.Errorf("line %d: bad label %q", n+1, pair)
				}
				k, quoted := pair[:eq], pair[eq+1:]
				v, uerr := strconv.Unquote(quoted)
				if !validName(k) || uerr != nil {
					return nil, nil, fmt.Errorf("line %d: bad label %q", n+1, pair)
				}
				labels[k] = v
			}
			rest = rest[end+1:]
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, nil, fmt.Errorf("line %d: no value on %q", n+1, line)
			}
			name, rest = rest[:sp], rest[sp:]
		}
		if !validName(name) {
			return nil, nil, fmt.Errorf("line %d: bad metric name %q", n+1, name)
		}
		if !strings.HasPrefix(rest, " ") {
			return nil, nil, fmt.Errorf("line %d: missing space before value", n+1)
		}
		v, perr := strconv.ParseFloat(strings.TrimPrefix(rest, " "), 64)
		if perr != nil && !strings.Contains(rest, "Inf") && !strings.Contains(rest, "NaN") {
			return nil, nil, fmt.Errorf("line %d: bad value %q", n+1, rest)
		}
		// Samples must belong to a family declared above.
		fam := name
		for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name {
				if _, ok := types[base]; ok {
					fam = base
					break
				}
			}
		}
		typ, ok := types[fam]
		if !ok {
			return nil, nil, fmt.Errorf("line %d: sample %q has no TYPE", n+1, name)
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				return nil, nil, fmt.Errorf("line %d: counter sample %q must end _total", n+1, name)
			}
		case "histogram":
			if name == fam {
				return nil, nil, fmt.Errorf("line %d: bare histogram sample %q", n+1, name)
			}
			if strings.HasSuffix(name, "_bucket") && labels["le"] == "" {
				return nil, nil, fmt.Errorf("line %d: bucket sample without le", n+1)
			}
		}
		samples = append(samples, omSample{name: name, labels: labels, value: v})
	}
	return types, samples, nil
}

// TestOpenMetricsRoundTrip renders a populated snapshot and re-parses it
// with the vendored parser, checking families, label routing, histogram
// bucket cumulativeness and the +Inf terminal bucket.
func TestOpenMetricsRoundTrip(t *testing.T) {
	r := New()
	r.Counter("link.core1-agg2.drops").Add(7)
	r.Counter("link.agg2-tor1.drops").Add(3)
	r.Gauge("sim.shard0.ring_occupancy").Set(12)
	h := r.Histogram("ufabe.h3.probe_rtt_us")
	for _, v := range []float64{1, 2, 4, 8, 1e300} { // 1e300 exercises overflow bucket
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples, err := parseOpenMetrics(buf.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if types["ufab_drops"] != "counter" || types["ufab_ring_occupancy"] != "gauge" || types["ufab_probe_rtt_us"] != "histogram" {
		t.Fatalf("families = %v", types)
	}
	var drops, buckets int
	var lastCum, infCum float64
	for _, s := range samples {
		switch s.name {
		case "ufab_drops_total":
			drops++
			if s.labels["entity"] != "link.core1-agg2" && s.labels["entity"] != "link.agg2-tor1" {
				t.Fatalf("unexpected entity %q", s.labels["entity"])
			}
		case "ufab_probe_rtt_us_bucket":
			buckets++
			if s.value < lastCum {
				t.Fatalf("bucket counts not cumulative: %g after %g", s.value, lastCum)
			}
			lastCum = s.value
			if s.labels["le"] == "+Inf" {
				infCum = s.value
			}
		case "ufab_probe_rtt_us_count":
			if s.value != 5 {
				t.Fatalf("histogram count = %g, want 5", s.value)
			}
		}
	}
	if drops != 2 {
		t.Fatalf("want 2 drop samples, got %d", drops)
	}
	if buckets == 0 || infCum != 5 {
		t.Fatalf("want a +Inf bucket with cumulative 5, got %d buckets, inf=%g", buckets, infCum)
	}
}

// TestOpenMetricsEmpty: an empty snapshot is still a valid exposition.
func TestOpenMetricsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Snapshot{}).WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Fatalf("empty exposition = %q", buf.String())
	}
	if _, _, err := parseOpenMetrics(buf.String()); err != nil {
		t.Fatal(err)
	}
}
