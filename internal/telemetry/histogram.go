package telemetry

import "math"

// Histogram is a deterministic log-linear distribution instrument: every
// histogram shares one fixed global bucket layout (histSubBuckets linear
// sub-buckets per power-of-two octave), so two histograms built from the
// same observations are bit-identical regardless of construction order,
// and any two histograms can be merged by adding bucket counts. Observe is
// allocation-free and lock-free; like Counter, a histogram is written by
// one goroutine (per-entity instruments under the sharded engine) and read
// at barriers or after the run. All methods are safe no-ops on a nil
// receiver — the disabled fast path.
type Histogram struct {
	count  uint64
	sum    float64
	min    float64
	max    float64
	counts [histNumBuckets]uint64
}

// The global bucket layout. Bucket 0 holds v <= 0; bucket i >= 1 holds
// positive values with bucket upper bound BucketUpperBound(i), growing
// log-linearly: histSubBuckets equal-width buckets per binary octave over
// exponents [histMinExp, histMaxExp). With 8 sub-buckets the relative
// resolution is ~6%, and the range 2^-16..2^40 (~1.5e-5 .. ~1.1e12) covers
// every unit the reproduction records (microseconds, bytes, bits/s).
const (
	histSubBuckets = 8
	histMinExp     = -16
	histMaxExp     = 40
	histNumBuckets = 1 + (histMaxExp-histMinExp)*histSubBuckets
)

// bucketIndex maps an observation to its bucket. Pure function of the
// value — no per-histogram state — so merged histograms stay exact.
func bucketIndex(v float64) int {
	if v <= 0 || v != v { // non-positive and NaN go to the underflow bucket
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp <= histMinExp {
		return 1
	}
	if exp > histMaxExp {
		return histNumBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * histSubBuckets)) // in [0, histSubBuckets)
	if sub >= histSubBuckets {                      // guard frac rounding at 1.0
		sub = histSubBuckets - 1
	}
	return 1 + (exp-1-histMinExp)*histSubBuckets + sub
}

// BucketUpperBound returns the inclusive upper bound of bucket i: values v
// with bucketIndex(v) == i satisfy v <= BucketUpperBound(i). Bucket 0 (the
// underflow bucket, v <= 0) has bound 0; the last bucket absorbs overflow
// and reports +Inf.
func BucketUpperBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= histNumBuckets-1 {
		return math.Inf(1)
	}
	i--
	exp := histMinExp + i/histSubBuckets + 1
	sub := i % histSubBuckets
	return math.Ldexp(0.5+float64(sub+1)/(2*histSubBuckets), exp)
}

// Observe records one value. Allocation-free; a no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[bucketIndex(v)]++
}

// Count returns how many values were observed (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observed value (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed value (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Merge adds o's observations into h. Because every histogram shares the
// global bucket layout, the merge is exact: h ends up identical to a
// histogram that observed both value streams. Safe when either side is nil.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the target rank, clamped to the
// observed min/max so small samples don't report bucket edges far outside
// the data. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo := 0.0
			if i > 0 {
				lo = BucketUpperBound(i - 1)
			}
			hi := BucketUpperBound(i)
			if math.IsInf(hi, 1) {
				hi = h.max
			}
			v := lo + (hi-lo)*(rank-cum)/float64(c)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Buckets returns the non-zero buckets sparsely, ascending by bound, each
// carrying its inclusive upper bound and (non-cumulative) count. The slice
// is freshly allocated; nil when empty or on a nil receiver.
func (h *Histogram) Buckets() []HistogramBucket {
	if h == nil || h.count == 0 {
		return nil
	}
	var out []HistogramBucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, HistogramBucket{UpperBound: BucketUpperBound(i), Count: c})
		}
	}
	return out
}

// HistogramBucket is one non-zero bucket in a snapshot: Count observations
// with values <= UpperBound (and greater than the previous bucket's bound).
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Histogram returns (creating on first use) the histogram with the given
// dotted name. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}
