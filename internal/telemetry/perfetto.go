package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// WritePerfettoJSON exports the run's flight-recorder trace (the canonical
// shard merge, see TraceEvents) as Chrome trace-event JSON, the format the
// Perfetto UI (ui.perfetto.dev) opens directly. The mapping:
//
//   - Every distinct event entity becomes one "thread" (tid), numbered in
//     first-seen canonical-merge order with a thread_name metadata record,
//     so lanes are stable across runs, -jobs and -shards.
//   - Probe round trips (EvProbeTX/EvProbeRX carrying a trace id) become
//     async begin/end pairs keyed by that id, so a round trip renders as
//     one spanning slice from TX to RX.
//   - Other events carrying a trace id (window updates, admission stages,
//     migrations) become async instants ("n") on the same id, grouping
//     them with their cause.
//   - Untraced events render as plain thread instants ("i").
//
// Timestamps are simulated picoseconds scaled to the format's microsecond
// unit. The encoding is hand-rolled with fixed field order, so the export
// is byte-identical for identical event streams.
func (r *Registry) WritePerfettoJSON(w io.Writer) error {
	if r == nil || r.rec == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	evs := r.TraceEvents()

	// Assign one tid per entity in first-seen canonical order.
	tids := make(map[string]int)
	var entities []string
	for _, ev := range evs {
		if _, ok := tids[ev.Entity]; !ok {
			tids[ev.Entity] = len(entities) + 1
			entities = append(entities, ev.Entity)
		}
	}

	bw.WriteString(`{"traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n  ")
	}
	for i, entity := range entities {
		sep()
		bw.WriteString(`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(i + 1))
		bw.WriteString(`,"args":{"name":`)
		name := entity
		if name == "" {
			name = "(run)"
		}
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(`}}`)
	}
	for _, ev := range evs {
		sep()
		ph, cat := "i", ""
		if ev.Trace != 0 {
			switch ev.Kind {
			case EvProbeTX:
				ph, cat = "b", "probe"
			case EvProbeRX:
				ph, cat = "e", "probe"
			default:
				ph, cat = "n", ev.Kind.String()
			}
		}
		bw.WriteString(`{"name":`)
		name := ev.Kind.String()
		if ev.Note != "" {
			name += ":" + ev.Note
		}
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(`,"ph":"`)
		bw.WriteString(ph)
		bw.WriteString(`","ts":`)
		bw.WriteString(formatFloat(float64(ev.T) / 1e6))
		bw.WriteString(`,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(tids[ev.Entity]))
		if ev.Trace != 0 {
			bw.WriteString(`,"cat":`)
			bw.WriteString(strconv.Quote(cat))
			bw.WriteString(`,"id":"`)
			bw.WriteString(strconv.FormatUint(ev.Trace, 16))
			bw.WriteByte('"')
		}
		bw.WriteString(`,"args":{`)
		bw.WriteString(`"a":`)
		bw.WriteString(strconv.FormatInt(ev.A, 10))
		bw.WriteString(`,"b":`)
		bw.WriteString(strconv.FormatInt(ev.B, 10))
		bw.WriteString(`,"v":`)
		bw.WriteString(formatFloat(ev.V))
		if ev.Span != 0 {
			bw.WriteString(`,"span":"`)
			bw.WriteString(strconv.FormatUint(ev.Span, 16))
			bw.WriteByte('"')
		}
		bw.WriteString(`}}`)
	}
	if !first {
		bw.WriteByte('\n')
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
