package telemetry

import "testing"

// BenchmarkTelemetryDisabled measures the nil-instrument fast path that
// every instrumented hot loop (dataplane enqueue, ufabe probe handling)
// pays when telemetry is off: it must be 0 allocs/op and a few ns of nil
// checks, so uninstrumented runs stay within 5% of the pre-telemetry
// scheduler benchmarks.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("dp.port.tx_packets")
	g := r.Gauge("dp.port.qlen_hiwater_bytes")
	s := r.Series("dp.port.qlen_bytes", 0)
	h := r.Histogram("dp.port.qdepth_bytes")
	rec := r.Recorder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(1500)
		g.SetMax(float64(i))
		s.Add(int64(i), float64(i))
		h.Observe(float64(i))
		rec.Record(Event{T: int64(i), Kind: EvDrop, B: int64(i), Trace: SpanID(int64(i)), Span: 1})
	}
	if c.Value() != 0 {
		b.Fatal("nil counter must stay 0")
	}
}

// BenchmarkTelemetryEnabled is the same loop with live instruments, for
// comparing the cost of turning telemetry on.
func BenchmarkTelemetryEnabled(b *testing.B) {
	r := New()
	c := r.Counter("dp.port.tx_packets")
	g := r.Gauge("dp.port.qlen_hiwater_bytes")
	s := r.Series("dp.port.qlen_bytes", 1<<12)
	h := r.Histogram("dp.port.qdepth_bytes")
	rec := r.EnableRecorder(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(1500)
		g.SetMax(float64(i))
		s.Add(int64(i), float64(i))
		h.Observe(float64(i))
		rec.Record(Event{T: int64(i), Kind: EvDrop, B: int64(i), Trace: SpanID(int64(i)), Span: 1})
	}
}
