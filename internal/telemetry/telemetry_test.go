package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("ufabe.h3.migrations")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ufabe.h3.migrations") != c {
		t.Fatalf("second Counter call should return the same instrument")
	}
	g := r.Gauge("link.a-b.qlen_hiwater_bytes")
	g.SetMax(10)
	g.SetMax(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge high-water = %g, want 10", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7", got)
	}
	if got := r.CounterValue("ufabe.h3.migrations"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("no.such.counter"); got != 0 {
		t.Fatalf("missing CounterValue = %d, want 0", got)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("a.b")
	g := r.Gauge("a.b")
	s := r.Series("a.b", 8)
	h := r.Histogram("a.b")
	rec := r.Recorder()
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	s.Add(1, 2)
	h.Observe(3.5)
	h.Merge(&Histogram{})
	rec.Record(Event{T: 1, Kind: EvDrop})
	if c.Value() != 0 || g.Value() != 0 || s.Len() != 0 || rec.Len() != 0 {
		t.Fatalf("nil instruments must stay empty")
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Buckets() != nil || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram must stay empty")
	}
	if got := r.Snapshot(); len(got.Counters)+len(got.Gauges)+len(got.Histograms)+len(got.Series) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}
	if r.EnableRecorder(16) != nil {
		t.Fatalf("EnableRecorder on nil registry must return nil")
	}
}

func TestCheckNameRejectsMalformed(t *testing.T) {
	bad := []string{"", "nodot", "a..b", ".a.b", "a.b.", "a b.c", "a,b.c"}
	for _, name := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", name)
				}
			}()
			New().Counter(name)
		}()
	}
	// These must all be fine.
	for _, name := range []string{"a.b", "ufab.tail_us.10", "link.core1-agg2.qlen_bytes"} {
		New().Counter(name)
	}
}

func TestSeriesRingWraparound(t *testing.T) {
	r := New()
	s := r.Series("x.y", 4)
	for i := 0; i < 10; i++ {
		s.Add(int64(i), float64(i)*2)
	}
	if s.Len() != 4 || s.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 4/10", s.Len(), s.Total())
	}
	pts := s.Points()
	for i, p := range pts {
		wantT := int64(6 + i)
		if p.T != wantT || p.V != float64(wantT)*2 {
			t.Fatalf("point %d = %+v, want t=%d v=%g", i, p, wantT, float64(wantT)*2)
		}
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	r := New()
	rec := r.EnableRecorder(4)
	if r.EnableRecorder(99) != rec {
		t.Fatalf("EnableRecorder must be idempotent")
	}
	for i := 0; i < 7; i++ {
		rec.Record(Event{T: int64(i), Kind: EvMigration, A: int64(i)})
	}
	if rec.Len() != 4 || rec.Total() != 7 || rec.Dropped() != 3 {
		t.Fatalf("len=%d total=%d dropped=%d, want 4/7/3", rec.Len(), rec.Total(), rec.Dropped())
	}
	evs := rec.Events()
	for i, ev := range evs {
		if ev.T != int64(3+i) {
			t.Fatalf("event %d has t=%d, want %d (oldest-first after wrap)", i, ev.T, 3+i)
		}
	}
}

func TestRecorderJSONL(t *testing.T) {
	r := New()
	rec := r.EnableRecorder(16)
	rec.Record(Event{T: 1000, Kind: EvProbeTX, Entity: "ufabe.h0", A: 3, Note: "probe"})
	rec.Record(Event{T: 2000, Kind: EvDrop, Entity: "link.a-b", B: 4096, Note: "overflow"})
	rec.Record(Event{T: 3000, Kind: EvProbeRX, Entity: "ufabe.h0", A: 3, V: 12.5})
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t_ps":1000,"kind":"probe_tx","entity":"ufabe.h0","a":3,"note":"probe"}
{"t_ps":2000,"kind":"drop","entity":"link.a-b","b":4096,"note":"overflow"}
{"t_ps":3000,"kind":"probe_rx","entity":"ufabe.h0","a":3,"v":12.5}
`
	if buf.String() != want {
		t.Fatalf("JSONL mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

// TestSnapshotDeterministicOrdering creates the same instruments in three
// different (seed-shuffled) orders and demands byte-identical JSON.
func TestSnapshotDeterministicOrdering(t *testing.T) {
	names := []string{
		"ufabe.h0.migrations", "ufabe.h1.migrations", "link.a-b.drops",
		"link.b-c.drops", "sim.engine.events_processed", "ufabc.core1.probes_seen",
	}
	build := func(seed int) string {
		r := New()
		// Rotate creation order by seed; values do not depend on order.
		for i := range names {
			name := names[(i+seed*7)%len(names)]
			r.Counter(name).Add(int64(len(name)))
			r.Gauge(name + ".g").Set(float64(len(name)))
			r.Series(name+".s", 8).Add(int64(len(name)), 1)
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := build(1)
	for seed := 2; seed <= 3; seed++ {
		if got := build(seed); got != first {
			t.Fatalf("snapshot JSON differs between creation orders:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, `"link.a-b.drops"`) {
		t.Fatalf("snapshot JSON missing expected name:\n%s", first)
	}
}

// TestRegistryConcurrentRuns models the parallel experiment runner: many
// goroutines each own a registry and hammer it, while a shared registry
// takes concurrent instrument *creation* (the only cross-goroutine use the
// package supports). Run under -race.
func TestRegistryConcurrentRuns(t *testing.T) {
	shared := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := New()
			rec := own.EnableRecorder(64)
			c := own.Counter("run.worker.ops")
			for i := 0; i < 1000; i++ {
				c.Inc()
				own.Gauge("run.worker.last").Set(float64(i))
				rec.Record(Event{T: int64(i), Kind: EvWindow})
				// Distinct names per worker: creation on the shared
				// registry is mutex-guarded.
				shared.Counter(fmt.Sprintf("worker.w%d.created", w)).Inc()
			}
			if c.Value() != 1000 {
				t.Errorf("worker %d counter = %d", w, c.Value())
			}
		}(w)
	}
	wg.Wait()
	snap := shared.Snapshot()
	if len(snap.Counters) != 8 {
		t.Fatalf("shared registry has %d counters, want 8", len(snap.Counters))
	}
	for _, c := range snap.Counters {
		if c.Value != 1000 {
			t.Fatalf("shared counter %s = %d, want 1000", c.Name, c.Value)
		}
	}
}

func TestToken(t *testing.T) {
	cases := map[string]string{
		"Core1":     "core1",
		"Agg2 S3":   "agg2-s3",
		"a.b":       "a-b",
		"":          "x",
		"Host,Left": "host-left",
	}
	for in, want := range cases {
		if got := Token(in); got != want {
			t.Errorf("Token(%q) = %q, want %q", in, got, want)
		}
	}
}
