package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// fillRecorder records n events with T = 0..n-1 so position in the stream
// is recoverable from the timestamp.
func fillRecorder(rec *Recorder, n int) {
	for i := 0; i < n; i++ {
		rec.Record(Event{T: int64(i), Kind: EvWindow, Entity: "ufabe.h0", A: int64(i % 7)})
	}
}

func TestRecorderExactlyAtDefaultCap(t *testing.T) {
	r := New()
	rec := r.EnableRecorder(0) // DefaultRecorderCap
	fillRecorder(rec, DefaultRecorderCap)
	if got := rec.Len(); got != DefaultRecorderCap {
		t.Fatalf("Len = %d, want %d", got, DefaultRecorderCap)
	}
	if got := rec.Total(); got != DefaultRecorderCap {
		t.Fatalf("Total = %d, want %d", got, DefaultRecorderCap)
	}
	if got := rec.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0: the ring is exactly full, nothing evicted", got)
	}
	evs := rec.Events()
	if len(evs) != DefaultRecorderCap {
		t.Fatalf("Events len = %d, want %d", len(evs), DefaultRecorderCap)
	}
	if evs[0].T != 0 || evs[len(evs)-1].T != DefaultRecorderCap-1 {
		t.Fatalf("Events range [%d, %d], want [0, %d]", evs[0].T, evs[len(evs)-1].T, DefaultRecorderCap-1)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != DefaultRecorderCap {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), DefaultRecorderCap)
	}
	if !strings.HasPrefix(lines[0], `{"t_ps":0,`) {
		t.Fatalf("first line = %q, want t_ps 0", lines[0])
	}
}

func TestRecorderPastDefaultCap(t *testing.T) {
	const extra = 1000
	r := New()
	rec := r.EnableRecorder(0)
	fillRecorder(rec, DefaultRecorderCap+extra)
	if got := rec.Len(); got != DefaultRecorderCap {
		t.Fatalf("Len = %d, want cap %d", got, DefaultRecorderCap)
	}
	if got := rec.Total(); got != DefaultRecorderCap+extra {
		t.Fatalf("Total = %d, want %d", got, DefaultRecorderCap+extra)
	}
	if got := rec.Dropped(); got != extra {
		t.Fatalf("Dropped = %d, want %d", got, extra)
	}
	evs := rec.Events()
	if len(evs) != DefaultRecorderCap {
		t.Fatalf("Events len = %d, want %d", len(evs), DefaultRecorderCap)
	}
	// Oldest retained is the first not evicted; ordering must be strict.
	if evs[0].T != extra {
		t.Fatalf("oldest retained T = %d, want %d", evs[0].T, extra)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T != evs[i-1].T+1 {
			t.Fatalf("Events out of order at %d: T %d after %d", i, evs[i].T, evs[i-1].T)
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != DefaultRecorderCap {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), DefaultRecorderCap)
	}
	wantFirst := `{"t_ps":` + strconv.Itoa(extra) + `,`
	if !strings.HasPrefix(lines[0], wantFirst) {
		t.Fatalf("first JSONL line = %q, want prefix %q", lines[0], wantFirst)
	}
	wantLast := `{"t_ps":` + strconv.Itoa(DefaultRecorderCap+extra-1) + `,`
	if !strings.HasPrefix(lines[len(lines)-1], wantLast) {
		t.Fatalf("last JSONL line = %q, want prefix %q", lines[len(lines)-1], wantLast)
	}
}

func TestRecorderSubscribe(t *testing.T) {
	r := New()
	rec := r.EnableRecorder(4)
	var seen []int64
	rec.Subscribe(func(ev Event) { seen = append(seen, ev.T) })
	var seen2 int
	rec.Subscribe(func(Event) { seen2++ })
	fillRecorder(rec, 10)
	// Subscribers observe the full stream, including evicted events.
	if len(seen) != 10 || seen2 != 10 {
		t.Fatalf("subscribers saw %d/%d events, want 10/10", len(seen), seen2)
	}
	for i, tp := range seen {
		if tp != int64(i) {
			t.Fatalf("subscriber order broken at %d: T = %d", i, tp)
		}
	}
	if rec.Len() != 4 {
		t.Fatalf("ring retained %d, want 4", rec.Len())
	}
	// Nil receiver and nil callback are no-ops.
	var nilRec *Recorder
	nilRec.Subscribe(func(Event) { t.Fatal("subscriber on nil recorder must never fire") })
	nilRec.Record(Event{})
	rec.Subscribe(nil)
	rec.Record(Event{T: 99})
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	a := r.Counter("agent.h0.probes")
	b := r.Counter("agent.h1.probes")
	g := r.Gauge("link.a-b.qlen_bytes")
	a.Add(5)
	g.Set(10)
	prev := r.Snapshot()
	a.Add(3)
	b.Inc()
	g.Set(4)
	r.Counter("agent.h2.probes").Add(7) // born after prev: diffs against 0
	r.Gauge("link.c-d.qlen_bytes")      // zero-valued: no delta
	d := r.Snapshot().Diff(prev)
	if len(d.Counters) != 3 {
		t.Fatalf("counter deltas = %+v, want 3 entries", d.Counters)
	}
	want := map[string]int64{"agent.h0.probes": 3, "agent.h1.probes": 1, "agent.h2.probes": 7}
	for _, c := range d.Counters {
		if want[c.Name] != c.Value {
			t.Fatalf("delta %s = %d, want %d", c.Name, c.Value, want[c.Name])
		}
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Name != "link.a-b.qlen_bytes" || d.Gauges[0].Value != -6 {
		t.Fatalf("gauge deltas = %+v, want link.a-b.qlen_bytes = -6", d.Gauges)
	}
	// No changes → empty diff.
	snap := r.Snapshot()
	if d := snap.Diff(snap); len(d.Counters) != 0 || len(d.Gauges) != 0 {
		t.Fatalf("self-diff not empty: %+v", d)
	}
}
