package telemetry

import (
	"testing"
)

// TestSubscribeSeesEvictedEvents: a subscriber observes the complete event
// stream even when the ring wraps long before the reader catches up — the
// "slow subscriber" case: the subscriber only copies sequence numbers, so
// by the time it inspects them the ring has already evicted the events.
func TestSubscribeSeesEvictedEvents(t *testing.T) {
	r := New()
	rec := r.EnableRecorder(4)
	var seen []int64
	rec.Subscribe(func(ev Event) { seen = append(seen, ev.A) })
	const n = 100
	for i := 0; i < n; i++ {
		rec.Record(Event{T: int64(i), Kind: EvWindow, A: int64(i)})
	}
	if len(seen) != n {
		t.Fatalf("subscriber saw %d events, want %d", len(seen), n)
	}
	for i, a := range seen {
		if a != int64(i) {
			t.Fatalf("subscriber event %d has A=%d — out of recording order", i, a)
		}
	}
	if rec.Len() != 4 || rec.Total() != n || rec.Dropped() != n-4 {
		t.Fatalf("ring accounting len=%d total=%d dropped=%d, want 4/%d/%d",
			rec.Len(), rec.Total(), rec.Dropped(), n, n-4)
	}
	// The ring retains only the tail; the subscriber kept everything.
	if evs := rec.Events(); evs[0].A != n-4 {
		t.Fatalf("ring oldest A=%d, want %d", evs[0].A, n-4)
	}
}

// TestSubscribePerShardRings: subscribers attach per ring under the
// sharded layout; each sees exactly its own shard's stream, and the
// canonical merge of the rings is unaffected by live subscribers.
func TestSubscribePerShardRings(t *testing.T) {
	r := New()
	r.EnableRecorder(64)
	recs := r.EnableShardRecorders(3, 4)
	perShard := make([][]Event, 3)
	for i, sr := range recs {
		i := i
		sr.Subscribe(func(ev Event) { perShard[i] = append(perShard[i], ev) })
	}
	// Interleave recording across shards with deliberately unsorted times.
	var total int
	for round := 0; round < 10; round++ {
		for s := 0; s < 3; s++ {
			recs[s].Record(Event{T: int64(100 - round), Kind: EvStage, Entity: "ufabe.h1", A: int64(s), B: int64(round)})
			total++
		}
	}
	for s, evs := range perShard {
		if len(evs) != 10 {
			t.Fatalf("shard %d subscriber saw %d events, want 10", s, len(evs))
		}
		for i, ev := range evs {
			if ev.A != int64(s) || ev.B != int64(i) {
				t.Fatalf("shard %d subscriber out of order at %d: %+v", s, i, ev)
			}
		}
	}
	merged := r.TraceEvents()
	for i := 1; i < len(merged); i++ {
		if EventBefore(merged[i], merged[i-1]) {
			t.Fatalf("TraceEvents not canonically sorted at %d", i)
		}
	}
	gotTotal, gotDropped := r.TraceTotals()
	if gotTotal != uint64(total) {
		t.Fatalf("TraceTotals total=%d, want %d", gotTotal, total)
	}
	// Each 4-deep shard ring retained 4 of its 10 events.
	if wantDrop := uint64(3 * (10 - 4)); gotDropped != wantDrop {
		t.Fatalf("TraceTotals dropped=%d, want %d", gotDropped, wantDrop)
	}
}

// TestSubscribeMultiple: several subscribers on one recorder all see the
// stream; subscribing after some events only sees the suffix.
func TestSubscribeMultiple(t *testing.T) {
	rec := newRecorder(8)
	var a, b int
	rec.Subscribe(func(Event) { a++ })
	rec.Record(Event{T: 1})
	rec.Subscribe(func(Event) { b++ })
	rec.Record(Event{T: 2})
	rec.Record(Event{T: 3})
	if a != 3 || b != 2 {
		t.Fatalf("subscriber counts a=%d b=%d, want 3/2", a, b)
	}
}
