package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// EventKind classifies flight-recorder events.
type EventKind uint8

// Event kinds. The set mirrors the signals the paper's workflow turns on:
// probe traffic, window/admission dynamics, migrations, and faults.
const (
	// EvProbeTX: an edge sent a probe or finish probe (A = pair id, B =
	// path index, Note = "probe"/"finish").
	EvProbeTX EventKind = iota
	// EvProbeRX: an edge received a probe response (A = pair id, B = path
	// index, V = RTT in microseconds).
	EvProbeRX
	// EvWindow: a pair recomputed its Eqn-3 window from a response (A =
	// pair id, B = window bytes, V = share bits/s).
	EvWindow
	// EvStage: a pair's two-stage admission changed stage (A = pair id,
	// Note = "ramp"/"steady").
	EvStage
	// EvMigration: a pair migrated paths (A = pair id, B = new path
	// index, Note = "urgent" for violation-triggered moves).
	EvMigration
	// EvFreeze: a migration attempt was suppressed by the freeze window
	// (A = pair id).
	EvFreeze
	// EvRegister: a μFAB-C register changed from a probe (A = Φ delta in
	// millitokens, B = W delta in bytes, Note = "update"/"remove").
	EvRegister
	// EvDrop: the dataplane dropped a packet (A = packet kind, B = queue
	// bytes, Note = "overflow"/"fault"/"failed"/"noroute").
	EvDrop
	// EvFault: a fault transition. From the chaos injector (Entity
	// "chaos.injector"): Note = event kind, A = 1 when applied, 0 when
	// rejected. From the dataplane (Entity "dataplane.node"): A = node id,
	// B = 1 down / 0 recovered, Note = "fail"/"recover" — the stream the
	// ctlplane reconciler subscribes to for node health.
	EvFault
	// EvTenant: a tenant arrived or departed (A = VF id, Note =
	// "arrive"/"depart").
	EvTenant
	// EvPlacement: the admission controller decided a tenant request (A =
	// request/VF id, B = VM count, V = guarantee bits/s, Note =
	// "admit"/"reject"/"place"/"release").
	EvPlacement
)

var eventKindNames = [...]string{
	EvProbeTX:   "probe_tx",
	EvProbeRX:   "probe_rx",
	EvWindow:    "window",
	EvStage:     "stage",
	EvMigration: "migration",
	EvFreeze:    "freeze",
	EvRegister:  "register",
	EvDrop:      "drop",
	EvFault:     "fault",
	EvTenant:    "tenant",
	EvPlacement: "placement",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one flight-recorder entry. The fields are fixed scalars plus
// two strings that call sites keep constant or precomputed, so recording
// an event never allocates.
type Event struct {
	// T is simulated time in picoseconds.
	T    int64
	Kind EventKind
	// Entity is the dotted instance the event belongs to, e.g. "ufabe.h3"
	// or "link.core1-agg2" (precomputed at attach time).
	Entity string
	// A and B carry kind-specific scalars (see the EventKind docs).
	A, B int64
	// V carries a kind-specific float (rate, RTT, ...).
	V float64
	// Note is a short constant tag ("urgent", "overflow", ...).
	Note string
	// Trace groups causally related events (one probe round trip, one
	// admission decision, one migration) into a trace. Span distinguishes
	// steps within the trace. Both are pure functions of scheduling
	// context (SpanID over pair/sequence scalars — never wall clock or
	// worker identity), so traces are byte-identical across -jobs and
	// -shards. Zero means "not part of a trace" and is omitted from JSON.
	Trace, Span uint64
}

// Trace-id domains: the first argument to SpanID namespaces the trace so
// a probe round trip, a migration, and an admission decision over the same
// scalar ids never collide. Shared here so every layer (ufabe edges, ufabc
// core hops, the placement controller) derives identical ids.
const (
	TraceProbe     int64 = 1
	TraceMigration int64 = 2
	TraceAdmission int64 = 3
)

// SpanID derives a deterministic 64-bit trace or span identifier from
// scheduling-context scalars via FNV-1a. Call sites pass stable inputs
// (pair id, path index, probe sequence, request id) so the id — and with
// it the exported trace — is independent of worker count and shard layout.
func SpanID(parts ...int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		v := uint64(p)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	if h == 0 { // 0 is the "no trace" sentinel
		h = offset64
	}
	return h
}

// DefaultRecorderCap bounds the flight recorder's ring buffer (64k events
// ≈ 4 MB). Deep enough to hold the full tail of any quick-scale run; long
// runs keep the most recent window, which is what post-mortem debugging
// wants.
const DefaultRecorderCap = 1 << 16

// Recorder is the run-trace flight recorder: a bounded in-memory ring of
// structured events. Record is a safe no-op on a nil receiver, which is
// the disabled fast path. A Recorder is single-goroutine, like the
// simulation engine that feeds it.
type Recorder struct {
	buf     []Event
	cap     int
	start   int
	total   uint64
	wrapped bool
	subs    []func(Event)
}

func newRecorder(capEvents int) *Recorder {
	return &Recorder{cap: capEvents}
}

// Record appends an event, overwriting the oldest once the ring is full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.total++
	for _, fn := range r.subs {
		fn(ev)
	}
	if !r.wrapped && len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.wrapped = true
	r.buf[r.start] = ev
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
}

// Subscribe registers fn to observe every subsequently recorded event,
// called synchronously from Record in recording order — subscribers see
// events the ring has already evicted. fn must not re-enter Record. A nil
// receiver ignores the subscription (the disabled fast path).
func (r *Recorder) Subscribe(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.subs = append(r.subs, fn)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many events were ever recorded (retained + evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Events returns the retained events oldest-first. The slice is freshly
// allocated.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// EventsSince returns the events recorded after the first n, oldest first.
// Events the ring has already evicted are silently absent (callers that
// need a complete view size the ring accordingly). The slice is freshly
// allocated.
func (r *Recorder) EventsSince(n uint64) []Event {
	if r == nil {
		return nil
	}
	evicted := r.total - uint64(len(r.buf))
	if n < evicted {
		n = evicted
	}
	if n >= r.total {
		return nil
	}
	all := r.Events()
	return all[n-evicted:]
}

// EventBefore is the canonical content order used to merge per-shard
// flight-recorder streams into one trace: time first, then the event's
// fields in declaration order. It is a pure function of event content, so a
// merged trace is independent of how the simulation was sharded onto
// workers.
func EventBefore(a, b Event) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.V != b.V {
		return a.V < b.V
	}
	if a.Note != b.Note {
		return a.Note < b.Note
	}
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	return a.Span < b.Span
}

// SortEventsCanonical stable-sorts events into the EventBefore order.
// Stability makes ties (fully identical events) keep their input order, so
// callers that concatenate shard streams in shard order get a fully
// deterministic result.
func SortEventsCanonical(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return EventBefore(evs[i], evs[j]) })
}

// TraceEvents returns the run's full retained trace, oldest first: the base
// recorder's events for sequential runs, or the canonical merge of the base
// and every per-shard recorder for sharded runs.
func (r *Registry) TraceEvents() []Event {
	if r == nil {
		return nil
	}
	if len(r.shardRecs) == 0 {
		return r.rec.Events()
	}
	var all []Event
	all = append(all, r.rec.Events()...)
	for _, sr := range r.shardRecs {
		all = append(all, sr.Events()...)
	}
	SortEventsCanonical(all)
	return all
}

// TraceTotals sums Total and Dropped across the base recorder and every
// per-shard recorder, so exporters can report ring completeness for the
// whole trace rather than one shard's slice of it.
func (r *Registry) TraceTotals() (total, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	total, dropped = r.rec.Total(), r.rec.Dropped()
	for _, sr := range r.shardRecs {
		total += sr.Total()
		dropped += sr.Dropped()
	}
	return total, dropped
}

// WriteTraceJSONL writes the run's trace as JSONL: identical to the base
// recorder's WriteJSONL for sequential runs, and the canonical shard merge
// for sharded runs. Exporters should prefer this over Recorder().WriteJSONL
// so they stay correct under `-shards`.
func (r *Registry) WriteTraceJSONL(w io.Writer) error {
	if r == nil || r.rec == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, ev := range r.TraceEvents() {
		WriteEventJSON(bw, ev)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first. The encoding is hand-rolled so field order is fixed and
// the output is byte-identical across runs with identical event streams.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, ev := range r.Events() {
		WriteEventJSON(bw, ev)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteEventJSON writes one event as a single JSON object (no trailing
// newline), fields in fixed order with zero-valued fields omitted — the
// encoding WriteJSONL uses per line, exported so other emitters (the
// audit findings log) embed events byte-identically.
func WriteEventJSON(bw *bufio.Writer, ev Event) {
	bw.WriteString(`{"t_ps":`)
	bw.WriteString(strconv.FormatInt(ev.T, 10))
	bw.WriteString(`,"kind":"`)
	bw.WriteString(ev.Kind.String())
	bw.WriteByte('"')
	if ev.Entity != "" {
		bw.WriteString(`,"entity":`)
		bw.WriteString(strconv.Quote(ev.Entity))
	}
	if ev.A != 0 {
		bw.WriteString(`,"a":`)
		bw.WriteString(strconv.FormatInt(ev.A, 10))
	}
	if ev.B != 0 {
		bw.WriteString(`,"b":`)
		bw.WriteString(strconv.FormatInt(ev.B, 10))
	}
	if ev.V != 0 {
		bw.WriteString(`,"v":`)
		bw.WriteString(strconv.FormatFloat(ev.V, 'g', -1, 64))
	}
	if ev.Note != "" {
		bw.WriteString(`,"note":`)
		bw.WriteString(strconv.Quote(ev.Note))
	}
	if ev.Trace != 0 {
		bw.WriteString(`,"trace":`)
		bw.WriteString(strconv.FormatUint(ev.Trace, 10))
	}
	if ev.Span != 0 {
		bw.WriteString(`,"span":`)
		bw.WriteString(strconv.FormatUint(ev.Span, 10))
	}
	bw.WriteByte('}')
}
