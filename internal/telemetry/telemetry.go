// Package telemetry is the unified introspection substrate of the μFAB
// reproduction: a deterministic metrics registry (typed counters, gauges,
// and ring-buffer time series keyed by a dotted `entity.instance.metric`
// name scheme, e.g. `ufabe.h3.migrations` or `link.core1-agg2.qlen_bytes`)
// plus a run-trace "flight recorder" (see Recorder) that captures
// timestamped structured events into a bounded in-memory buffer with JSONL
// export.
//
// Two properties are load-bearing:
//
//   - Determinism. Snapshots order every instrument by name, so two runs
//     with the same seed serialize byte-identically regardless of map
//     iteration order or how many runner workers executed them.
//
//   - Zero overhead when disabled. Every instrument method is a safe no-op
//     on a nil receiver, and a nil *Registry returns nil instruments, so
//     uninstrumented runs pay only a nil check per call site — no
//     allocation, no branch misprediction of note, and bit-identical
//     simulation results (instruments never feed back into the run).
//
// Instruments are created at setup time (map lookup under a mutex) and
// updated on the simulation goroutine; a Registry may be shared across
// goroutines only for instrument creation, which is how the parallel
// experiment runner uses one registry per run safely.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// Counter is a monotonically increasing int64 instrument. All methods are
// safe no-ops on a nil receiver — the disabled fast path.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d (negative deltas are allowed for churn-style accounting).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value float64 instrument. All methods are safe no-ops on
// a nil receiver.
type Gauge struct {
	v float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// SetMax stores v if it exceeds the current value — high-water marks.
func (g *Gauge) SetMax(v float64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Point is one time-series sample. T is simulated time in picoseconds
// (kept as int64 rather than sim.Time so the package stays import-free of
// the engine and every layer can depend on it).
type Point struct {
	T int64   `json:"t_ps"`
	V float64 `json:"v"`
}

// Series is a bounded ring-buffer time series: once Cap points have been
// added, the oldest are overwritten. All methods are safe no-ops on a nil
// receiver.
type Series struct {
	cap     int
	buf     []Point
	start   int    // index of the oldest point when the ring has wrapped
	total   uint64 // points ever added
	wrapped bool
}

// DefaultSeriesCap bounds a time series when no explicit capacity is given
// (64k points ≈ 1 MB — deep enough for every experiment's sampling loop).
const DefaultSeriesCap = 1 << 16

// Add appends a sample.
func (s *Series) Add(tPS int64, v float64) {
	if s == nil {
		return
	}
	s.total++
	if !s.wrapped && len(s.buf) < s.cap {
		s.buf = append(s.buf, Point{T: tPS, V: v})
		return
	}
	s.wrapped = true
	s.buf[s.start] = Point{T: tPS, V: v}
	s.start++
	if s.start == s.cap {
		s.start = 0
	}
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}

// Total returns how many points were ever added (retained + overwritten).
func (s *Series) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Points returns the retained samples in insertion order. The slice is
// freshly allocated; mutating it does not affect the series.
func (s *Series) Points() []Point {
	if s == nil || len(s.buf) == 0 {
		return nil
	}
	out := make([]Point, 0, len(s.buf))
	out = append(out, s.buf[s.start:]...)
	out = append(out, s.buf[:s.start]...)
	return out
}

// Registry holds every instrument of one run. The zero value is not usable;
// call New. A nil *Registry is the "telemetry disabled" sentinel: all its
// methods return nil instruments whose operations are free no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	series     map[string]*Series
	histograms map[string]*Histogram
	rec        *Recorder
	// shardRecs are the per-shard flight recorders of a sharded run:
	// each simulation shard records into its own ring (single-goroutine,
	// like the shard engine), and exports merge them canonically. Empty
	// for sequential runs.
	shardRecs []*Recorder
	// activeShard redirects Recorder() during sharded fabric
	// construction so agents capture their own shard's recorder without
	// code changes; -1 means the base recorder.
	activeShard int
}

// New returns an empty registry (no flight recorder; see EnableRecorder).
func New() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		series:      make(map[string]*Series),
		histograms:  make(map[string]*Histogram),
		activeShard: -1,
	}
}

// checkName panics on names that would break the dotted scheme or the
// JSONL/CSV encodings: empty, whitespace, or missing a dot separator.
// Instrument creation happens at setup time, so a panic here is a build
// error caught by the first test run, never a mid-simulation surprise.
func checkName(name string) {
	if name == "" {
		panic("telemetry: empty instrument name")
	}
	dotted := false
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c == '.':
			if i == 0 || i == len(name)-1 || name[i-1] == '.' {
				panic(fmt.Sprintf("telemetry: malformed dotted name %q", name))
			}
			dotted = true
		case c == ' ' || c == '\t' || c == '\n' || c == ',':
			panic(fmt.Sprintf("telemetry: name %q contains whitespace/comma", name))
		}
	}
	if !dotted {
		panic(fmt.Sprintf("telemetry: name %q is not dotted (want entity.instance.metric)", name))
	}
}

// Counter returns (creating on first use) the counter with the given
// dotted name. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given dotted
// name. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns (creating on first use) the ring-buffer time series with
// the given dotted name. capHint bounds the ring on creation; <=0 uses
// DefaultSeriesCap. Returns nil on a nil registry.
func (r *Registry) Series(name string, capHint int) *Series {
	if r == nil {
		return nil
	}
	checkName(name)
	if capHint <= 0 {
		capHint = DefaultSeriesCap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.series[name]
	if s == nil {
		s = &Series{cap: capHint}
		r.series[name] = s
	}
	return s
}

// EnableRecorder attaches a flight recorder with the given event capacity
// (<=0 uses DefaultRecorderCap) and returns it. Idempotent: a second call
// returns the existing recorder unchanged.
func (r *Registry) EnableRecorder(capEvents int) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec == nil {
		if capEvents <= 0 {
			capEvents = DefaultRecorderCap
		}
		r.rec = newRecorder(capEvents)
	}
	return r.rec
}

// Recorder returns the attached flight recorder, or nil when none (the
// disabled fast path: recording into a nil recorder is a free no-op).
// During sharded fabric construction SetActiveShard redirects it to the
// shard under construction, so per-node agents capture their own shard's
// recorder.
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	if r.activeShard >= 0 && r.activeShard < len(r.shardRecs) {
		return r.shardRecs[r.activeShard]
	}
	return r.rec
}

// EnableShardRecorders attaches n per-shard recorders (in addition to the
// base recorder, which a sharded run reserves for coordinator-context
// events such as chaos injections). capEvents <= 0 uses
// DefaultRecorderCap per shard. Idempotent for the same n; growing or
// shrinking an existing set panics, since agents already hold pointers.
func (r *Registry) EnableShardRecorders(n, capEvents int) []*Recorder {
	if r == nil || n <= 0 {
		return nil
	}
	if capEvents <= 0 {
		capEvents = DefaultRecorderCap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shardRecs != nil {
		if len(r.shardRecs) != n {
			panic(fmt.Sprintf("telemetry: shard recorders already sized %d, want %d", len(r.shardRecs), n))
		}
		return r.shardRecs
	}
	r.shardRecs = make([]*Recorder, n)
	for i := range r.shardRecs {
		r.shardRecs[i] = newRecorder(capEvents)
	}
	return r.shardRecs
}

// ShardRecorder returns shard i's recorder, or the base recorder when no
// shard recorders are attached (sequential runs) or i is out of range.
func (r *Registry) ShardRecorder(i int) *Recorder {
	if r == nil {
		return nil
	}
	if i >= 0 && i < len(r.shardRecs) {
		return r.shardRecs[i]
	}
	return r.rec
}

// ShardRecorders returns the per-shard recorders (nil for sequential runs).
func (r *Registry) ShardRecorders() []*Recorder {
	if r == nil {
		return nil
	}
	return r.shardRecs
}

// SetActiveShard makes Recorder() return shard i's recorder until the next
// call; i < 0 restores the base recorder. Construction-time only — it
// exists so per-node agents built for shard i capture the right recorder
// without threading shard IDs through every constructor.
func (r *Registry) SetActiveShard(i int) {
	if r == nil {
		return
	}
	r.activeShard = i
}

// Token sanitizes s into one dotted-name segment: lowercased, with
// whitespace, dots and commas replaced by '-'. Used to turn node and link
// names ("Core1", "Agg2→S3") into instance tokens.
func Token(s string) string {
	out := make([]byte, 0, len(s))
	for _, c := range []byte(s) {
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c-'A'+'a')
		case c == ' ' || c == '\t' || c == '.' || c == ',' || c == '\n':
			out = append(out, '-')
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
