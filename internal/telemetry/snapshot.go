package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// Snapshot is a point-in-time copy of every instrument in a registry, with
// all names in ascending order so serialization is deterministic.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Series     []SeriesValue    `json:"series,omitempty"`
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot: summary statistics plus
// the non-zero buckets sparsely (per-bucket counts, not cumulative).
type HistogramValue struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Buckets []HistogramBucket `json:"buckets"`
}

// SeriesValue is one time series in a snapshot. Total counts points ever
// added; len(Points) is what the ring retained.
type SeriesValue struct {
	Name   string  `json:"name"`
	Total  uint64  `json:"total"`
	Points []Point `json:"points"`
}

// Snapshot copies every instrument's current value, sorted by name. Safe
// on a nil registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		snap.Counters = append(snap.Counters, CounterValue{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		snap.Histograms = append(snap.Histograms, HistogramValue{
			Name: name, Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Buckets: h.Buckets(),
		})
	}
	for _, name := range sortedKeys(r.series) {
		s := r.series[name]
		snap.Series = append(snap.Series, SeriesValue{Name: name, Total: s.Total(), Points: s.Points()})
	}
	return snap
}

// CounterValue returns the named counter's current value (0 if absent or
// nil registry) without creating the instrument.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name].Value()
}

// GaugeValue returns the named gauge's current value (0 if absent or nil
// registry) without creating the instrument.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name].Value()
}

// Diff returns the instrument deltas between prev and s: every counter or
// gauge whose value changed, carrying value − previous (instruments absent
// from prev diff against zero). Series are omitted — their rings already
// retain history. Both snapshots must come from Registry.Snapshot (sorted
// by name); the result is sorted the same way.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var out Snapshot
	i := 0
	for _, c := range s.Counters {
		for i < len(prev.Counters) && prev.Counters[i].Name < c.Name {
			i++
		}
		var base int64
		if i < len(prev.Counters) && prev.Counters[i].Name == c.Name {
			base = prev.Counters[i].Value
		}
		if d := c.Value - base; d != 0 {
			out.Counters = append(out.Counters, CounterValue{Name: c.Name, Value: d})
		}
	}
	i = 0
	for _, g := range s.Gauges {
		for i < len(prev.Gauges) && prev.Gauges[i].Name < g.Name {
			i++
		}
		var base float64
		if i < len(prev.Gauges) && prev.Gauges[i].Name == g.Name {
			base = prev.Gauges[i].Value
		}
		if d := g.Value - base; d != 0 {
			out.Gauges = append(out.Gauges, GaugeValue{Name: g.Name, Value: d})
		}
	}
	return out
}

// WriteJSON writes the snapshot as deterministic JSON: instruments sorted
// by name, fields in fixed order, floats in Go's shortest 'g' form. Two
// snapshots of identical runs serialize byte-identically.
func (s Snapshot) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n  \"counters\": [")
	for i, c := range s.Counters {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    {\"name\": ")
		bw.WriteString(strconv.Quote(c.Name))
		bw.WriteString(", \"value\": ")
		bw.WriteString(strconv.FormatInt(c.Value, 10))
		bw.WriteByte('}')
	}
	if len(s.Counters) > 0 {
		bw.WriteString("\n  ")
	}
	bw.WriteString("],\n  \"gauges\": [")
	for i, g := range s.Gauges {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    {\"name\": ")
		bw.WriteString(strconv.Quote(g.Name))
		bw.WriteString(", \"value\": ")
		bw.WriteString(formatFloat(g.Value))
		bw.WriteByte('}')
	}
	if len(s.Gauges) > 0 {
		bw.WriteString("\n  ")
	}
	bw.WriteString("],\n  \"histograms\": [")
	for i, h := range s.Histograms {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    {\"name\": ")
		bw.WriteString(strconv.Quote(h.Name))
		bw.WriteString(", \"count\": ")
		bw.WriteString(strconv.FormatUint(h.Count, 10))
		bw.WriteString(", \"sum\": ")
		bw.WriteString(formatFloat(h.Sum))
		bw.WriteString(", \"min\": ")
		bw.WriteString(formatFloat(h.Min))
		bw.WriteString(", \"max\": ")
		bw.WriteString(formatFloat(h.Max))
		bw.WriteString(", \"buckets\": [")
		for j, b := range h.Buckets {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString("[")
			bw.WriteString(formatFloat(b.UpperBound))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatUint(b.Count, 10))
			bw.WriteByte(']')
		}
		bw.WriteString("]}")
	}
	if len(s.Histograms) > 0 {
		bw.WriteString("\n  ")
	}
	bw.WriteString("],\n  \"series\": [")
	for i, sv := range s.Series {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n    {\"name\": ")
		bw.WriteString(strconv.Quote(sv.Name))
		bw.WriteString(", \"total\": ")
		bw.WriteString(strconv.FormatUint(sv.Total, 10))
		bw.WriteString(", \"points\": [")
		for j, p := range sv.Points {
			if j > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString("[")
			bw.WriteString(strconv.FormatInt(p.T, 10))
			bw.WriteByte(',')
			bw.WriteString(formatFloat(p.V))
			bw.WriteByte(']')
		}
		bw.WriteString("]}")
	}
	if len(s.Series) > 0 {
		bw.WriteString("\n  ")
	}
	bw.WriteString("]\n}\n")
	return bw.Flush()
}

// formatFloat renders v in shortest round-trip form; NaN/Inf (not valid
// JSON) become null so a stray unfinished metric can't corrupt the file.
func formatFloat(v float64) string {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
