package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	r := New()
	h := r.Histogram("ufabe.h3.probe_rtt_us")
	if r.Histogram("ufabe.h3.probe_rtt_us") != h {
		t.Fatalf("second Histogram call should return the same instrument")
	}
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 115 {
		t.Fatalf("sum = %g, want 115", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %g/%g, want 1/100", h.Min(), h.Max())
	}
	bks := h.Buckets()
	var total uint64
	for i, b := range bks {
		total += b.Count
		if i > 0 && bks[i-1].UpperBound >= b.UpperBound {
			t.Fatalf("buckets not ascending: %v", bks)
		}
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
}

// TestHistogramBucketLayout checks the index/bound pair agree: every
// observation lands in a bucket whose bound brackets it.
func TestHistogramBucketLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := math.Ldexp(rng.Float64()+0.5, rng.Intn(60)-20)
		idx := bucketIndex(v)
		if idx <= 0 || idx >= histNumBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of positive range", v, idx)
		}
		lo, hi := BucketUpperBound(idx-1), BucketUpperBound(idx)
		if !(v > lo || idx == 1) || v > hi {
			t.Fatalf("v=%g not in bucket %d bounds (%g, %g]", v, idx, lo, hi)
		}
	}
	// Relative bucket width stays under ~1/histSubBuckets.
	for i := 2; i < histNumBuckets-1; i++ {
		lo, hi := BucketUpperBound(i-1), BucketUpperBound(i)
		if rel := (hi - lo) / lo; rel > 1.0/histSubBuckets*1.01 {
			t.Fatalf("bucket %d relative width %g too coarse", i, rel)
		}
	}
	// Edge cases: non-positive and NaN go to the underflow bucket, huge
	// values to the overflow bucket.
	for _, v := range []float64{0, -1, math.NaN()} {
		if bucketIndex(v) != 0 {
			t.Fatalf("bucketIndex(%g) = %d, want 0", v, bucketIndex(v))
		}
	}
	if idx := bucketIndex(1e300); idx != histNumBuckets-1 {
		t.Fatalf("overflow bucketIndex = %d, want %d", idx, histNumBuckets-1)
	}
	if !math.IsInf(BucketUpperBound(histNumBuckets-1), 1) {
		t.Fatalf("last bucket bound must be +Inf")
	}
	if BucketUpperBound(0) != 0 {
		t.Fatalf("underflow bucket bound must be 0")
	}
}

// TestHistogramMergeExact: merging shard-local histograms must equal the
// histogram that observed the union stream — the property the per-tenant
// FCT aggregation relies on.
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	whole := &Histogram{}
	parts := []*Histogram{{}, {}, {}}
	for i := 0; i < 5000; i++ {
		// Integer values keep every partial sum exact, so summary
		// equality below is independent of addition order.
		v := float64(rng.Intn(1<<20) + 1)
		whole.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := &Histogram{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary differs: %d/%g vs %d/%g",
			merged.Count(), merged.Sum(), whole.Count(), whole.Sum())
	}
	if merged.counts != whole.counts {
		t.Fatalf("merged bucket counts differ from whole-stream histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0, 1, 0},
		{1, 1000, 0},
		{0.5, 500, 0.10},
		{0.99, 990, 0.10},
	} {
		got := h.Quantile(tc.q)
		if tc.tol == 0 {
			if got != tc.want {
				t.Fatalf("q%g = %g, want exactly %g", tc.q, got, tc.want)
			}
			continue
		}
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Fatalf("q%g = %g, want %g within %g%%", tc.q, got, tc.want, tc.tol*100)
		}
	}
}

// TestHistogramSnapshotJSON locks the snapshot section's shape and its
// determinism across instrument-creation orders.
func TestHistogramSnapshotJSON(t *testing.T) {
	build := func(flip bool) string {
		r := New()
		names := []string{"fct.vf1-a-b.us", "fct.vf2-c-d.us"}
		if flip {
			names[0], names[1] = names[1], names[0]
		}
		for _, n := range names {
			h := r.Histogram(n)
			h.Observe(1)
			h.Observe(2.5)
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(false), build(true)
	if a != b {
		t.Fatalf("histogram snapshot differs by creation order:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Contains([]byte(a), []byte(`"histograms": [`)) ||
		!bytes.Contains([]byte(a), []byte(`"name": "fct.vf1-a-b.us", "count": 2, "sum": 3.5, "min": 1, "max": 2.5`)) {
		t.Fatalf("unexpected histogram snapshot JSON:\n%s", a)
	}
}
