package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
)

// WriteOpenMetrics renders the snapshot as OpenMetrics text (the format
// Prometheus scrapes). The dotted instrument scheme maps onto metric
// families by splitting each name at its last dot: the final segment
// becomes the family name (sanitized, prefixed "ufab_") and the leading
// segments become an `entity` label — so `ufabe.h3.migrations` and
// `ufabe.h7.migrations` are two samples of one `ufab_migrations` family
// rather than an explosion of per-instance families. Counters expose
// `_total` samples, histograms expose cumulative `le` buckets plus
// `_sum`/`_count`, and series are omitted (their rings are trace data, not
// scrape data). Families are emitted in sorted order and samples in
// snapshot (name-sorted) order, so the rendering is deterministic.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type sample struct {
		entity string
		value  float64
		hist   *HistogramValue
	}
	families := map[string]*struct {
		typ     string
		samples []sample
	}{}
	add := func(name, typ string, sm sample) {
		fam := "ufab_" + sanitizeMetricName(metricSuffix(name))
		f := families[fam]
		if f == nil {
			f = &struct {
				typ     string
				samples []sample
			}{typ: typ}
			families[fam] = f
		}
		sm.entity = entityPrefix(name)
		f.samples = append(f.samples, sm)
	}
	for _, c := range s.Counters {
		add(c.Name, "counter", sample{value: float64(c.Value)})
	}
	for _, g := range s.Gauges {
		add(g.Name, "gauge", sample{value: g.Value})
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		add(h.Name, "histogram", sample{hist: h})
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, fam := range names {
		f := families[fam]
		bw.WriteString("# TYPE ")
		bw.WriteString(fam)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, sm := range f.samples {
			switch f.typ {
			case "counter":
				writeOMSample(bw, fam+"_total", sm.entity, "", sm.value)
			case "gauge":
				writeOMSample(bw, fam, sm.entity, "", sm.value)
			case "histogram":
				h := sm.hist
				var cum uint64
				sawInf := false
				for _, b := range h.Buckets {
					cum += b.Count
					if math.IsInf(b.UpperBound, 1) {
						sawInf = true
					}
					writeOMSample(bw, fam+"_bucket", sm.entity, formatOMFloat(b.UpperBound), float64(cum))
				}
				if !sawInf {
					writeOMSample(bw, fam+"_bucket", sm.entity, "+Inf", float64(h.Count))
				}
				writeOMSample(bw, fam+"_sum", sm.entity, "", h.Sum)
				writeOMSample(bw, fam+"_count", sm.entity, "", float64(h.Count))
			}
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// metricSuffix returns the final dotted segment of name — the metric.
func metricSuffix(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// entityPrefix returns everything before the final dot — the entity label
// value ("" for undotted names, which checkName forbids anyway).
func entityPrefix(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return ""
}

// sanitizeMetricName maps a dotted-name segment into the OpenMetrics
// name alphabet [a-zA-Z0-9_] (the "ufab_" prefix supplies a valid first
// character).
func sanitizeMetricName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// writeOMSample writes one exposition line: name{entity="...",le="..."} v.
func writeOMSample(bw *bufio.Writer, name, entity, le string, v float64) {
	bw.WriteString(name)
	if entity != "" || le != "" {
		bw.WriteByte('{')
		if entity != "" {
			bw.WriteString(`entity="`)
			writeOMLabelValue(bw, entity)
			bw.WriteByte('"')
		}
		if le != "" {
			if entity != "" {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatOMFloat(v))
	bw.WriteByte('\n')
}

// writeOMLabelValue escapes backslash, quote and newline per the spec.
func writeOMLabelValue(bw *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '"':
			bw.WriteString(`\"`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

// formatOMFloat renders v for exposition: shortest round-trip form, with
// the spec's spellings for the non-finite values.
func formatOMFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
