package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPerfettoExportValidates decodes the export as JSON and checks every
// record carries the trace-event format's required keys, async begin/end
// pairs share an id, and the export is byte-identical regardless of which
// shard ring each event came from.
func TestPerfettoExportValidates(t *testing.T) {
	build := func(shardOrder []int) *Registry {
		r := New()
		r.EnableRecorder(64)
		recs := r.EnableShardRecorders(2, 64)
		trace := SpanID(3, 1, 9)
		evs := []Event{
			{T: 1000, Kind: EvProbeTX, Entity: "ufabe.h0", A: 3, B: 1, Note: "probe", Trace: trace, Span: SpanID(1)},
			{T: 2500, Kind: EvWindow, Entity: "ufabe.h0", A: 3, B: 4096, V: 1e9, Trace: trace, Span: SpanID(2)},
			{T: 3000, Kind: EvProbeRX, Entity: "ufabe.h0", A: 3, B: 1, V: 2, Trace: trace, Span: SpanID(3)},
			{T: 1500, Kind: EvDrop, Entity: "link.a-b", B: 9000, Note: "overflow"},
		}
		for i, ev := range evs {
			recs[shardOrder[i%2]].Record(ev)
		}
		r.Recorder().Record(Event{T: 500, Kind: EvFault, Entity: "chaos.injector", A: 1, Note: "node_down"})
		return r
	}

	var a, b bytes.Buffer
	if err := build([]int{0, 1}).WritePerfettoJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{1, 0}).WritePerfettoJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("perfetto export depends on shard placement:\n%s\nvs\n%s", a.String(), b.String())
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	begins, ends := map[string]int{}, map[string]int{}
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing required key %q: %v", key, ev)
			}
		}
		ph := ev["ph"].(string)
		if ph == "b" || ph == "e" || ph == "n" {
			id, ok := ev["id"].(string)
			if !ok || id == "" {
				t.Fatalf("async event missing id: %v", ev)
			}
			if _, ok := ev["cat"]; !ok {
				t.Fatalf("async event missing cat: %v", ev)
			}
			switch ph {
			case "b":
				begins[id]++
			case "e":
				ends[id]++
			}
		}
	}
	if len(begins) != 1 {
		t.Fatalf("want one async begin id, got %v", begins)
	}
	for id, n := range begins {
		if ends[id] != n {
			t.Fatalf("async id %s has %d begins, %d ends", id, n, ends[id])
		}
	}
}

// TestPerfettoNilAndEmpty: nil registry and no-recorder registry export
// nothing without error.
func TestPerfettoNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var r *Registry
	if err := r.WritePerfettoJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf.Len())
	}
	if err := New().WritePerfettoJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("recorder-less registry: err=%v len=%d", err, buf.Len())
	}
}
