// Package bloom implements the two-memory-bank, 2-way hashed structure
// μFAB-C uses to recognize active VM-pairs on a link (§3.6, §4.2).
//
// On Tofino the structure is a pair of register arrays indexed by two
// independent hashes: each slot holds a short fingerprint plus the VM-pair's
// last-reported token φ and sending window w, so the switch can maintain
// the per-link aggregates Φ_l and W_l incrementally (adding the delta when
// a VM-pair's demand changes, subtracting on a finish probe, and expiring
// entries that have been silent for a cleanup period). A hash collision in
// both banks behaves exactly like the paper's Bloom-filter false positive:
// the VM-pair is omitted, so Φ_l and W_l under-count slightly — which §3.6
// argues is digested by the 5% capacity headroom and migration.
package bloom

import "fmt"

// Entry is the per-slot payload.
type entry struct {
	fp       uint16 // fingerprint; 0 means empty
	phi      uint32
	window   uint32
	lastSeen int64
}

// bucketWidth is the number of entry slots per bucket. Two slots per
// bucket keeps the omission rate below the paper's 5% target at the
// paper's 20K-VM-pair load.
const bucketWidth = 2

type bucket [bucketWidth]entry

// Table is the 2-way hashed active-VM-pair table. Create one with New.
type Table struct {
	banks [2][]bucket
	mask  uint64
	// Collisions counts Update calls rejected because both candidate
	// slots were held by other keys (the false-positive analogue).
	Collisions uint64
	// Occupied counts live entries.
	Occupied int
}

// New returns a table with the given number of slots per bank, rounded up
// to a power of two. Paper configuration: a 20 KB filter ≈ 2 banks × 10K
// slots supports 20K distinct VM-pairs with <5% collision rate.
func New(slotsPerBank int) *Table {
	if slotsPerBank < 1 {
		panic(fmt.Sprintf("bloom: slotsPerBank %d < 1", slotsPerBank))
	}
	n := 1
	for n*bucketWidth < slotsPerBank {
		n <<= 1
	}
	t := &Table{mask: uint64(n - 1)}
	t.banks[0] = make([]bucket, n)
	t.banks[1] = make([]bucket, n)
	return t
}

// SlotsPerBank returns the (rounded) per-bank slot capacity.
func (t *Table) SlotsPerBank() int { return int(t.mask+1) * bucketWidth }

func mix(x, c uint64) uint64 {
	x += c
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Table) slots(key uint64) (i0, i1 uint64, fp uint16) {
	i0 = mix(key, 0x9e3779b97f4a7c15) & t.mask
	i1 = mix(key, 0xd1b54a32d192ed03) & t.mask
	fp = uint16(mix(key, 0x2545f4914f6cdd1d))
	if fp == 0 {
		fp = 1
	}
	return
}

// Update records that the VM-pair identified by key reported token phi and
// window w at time now (simulation picoseconds). It returns the deltas the
// caller must apply to the link's Φ and W registers. ok is false when both
// candidate slots are occupied by other keys; the entry is then omitted and
// the deltas are zero.
func (t *Table) Update(key uint64, phi, w uint32, now int64) (dPhi, dW int64, ok bool) {
	i0, i1, fp := t.slots(key)
	// Existing entry in either bank?
	for b, idx := range [2]uint64{i0, i1} {
		for s := range t.banks[b][idx] {
			e := &t.banks[b][idx][s]
			if e.fp == fp {
				dPhi = int64(phi) - int64(e.phi)
				dW = int64(w) - int64(e.window)
				e.phi, e.window, e.lastSeen = phi, w, now
				return dPhi, dW, true
			}
		}
	}
	// Empty slot?
	for b, idx := range [2]uint64{i0, i1} {
		for s := range t.banks[b][idx] {
			e := &t.banks[b][idx][s]
			if e.fp == 0 {
				*e = entry{fp: fp, phi: phi, window: w, lastSeen: now}
				t.Occupied++
				return int64(phi), int64(w), true
			}
		}
	}
	t.Collisions++
	return 0, 0, false
}

// Remove deletes the VM-pair's entry (finish probe, §3.6), returning the
// register deltas (negative) and whether an entry was found.
func (t *Table) Remove(key uint64) (dPhi, dW int64, ok bool) {
	i0, i1, fp := t.slots(key)
	for b, idx := range [2]uint64{i0, i1} {
		for s := range t.banks[b][idx] {
			e := &t.banks[b][idx][s]
			if e.fp == fp {
				dPhi, dW = -int64(e.phi), -int64(e.window)
				*e = entry{}
				t.Occupied--
				return dPhi, dW, true
			}
		}
	}
	return 0, 0, false
}

// Contains reports whether the key currently has an entry.
func (t *Table) Contains(key uint64) bool {
	i0, i1, fp := t.slots(key)
	for b, idx := range [2]uint64{i0, i1} {
		for s := range t.banks[b][idx] {
			if t.banks[b][idx][s].fp == fp {
				return true
			}
		}
	}
	return false
}

// Expire removes every entry whose lastSeen is strictly older than cutoff
// (the silent-quit cleanup μFAB-C runs every 10 s). It returns the summed
// register deltas (≤ 0) and the number of entries expired.
func (t *Table) Expire(cutoff int64) (dPhi, dW int64, n int) {
	for b := range t.banks {
		for i := range t.banks[b] {
			for s := range t.banks[b][i] {
				e := &t.banks[b][i][s]
				if e.fp != 0 && e.lastSeen < cutoff {
					dPhi -= int64(e.phi)
					dW -= int64(e.window)
					*e = entry{}
					t.Occupied--
					n++
				}
			}
		}
	}
	return dPhi, dW, n
}

// LoadFactor returns occupied slots over total slots.
func (t *Table) LoadFactor() float64 {
	return float64(t.Occupied) / float64(2*(t.mask+1)*bucketWidth)
}

// Reset clears all entries and counters.
func (t *Table) Reset() {
	for b := range t.banks {
		clear(t.banks[b])
	}
	t.Occupied = 0
	t.Collisions = 0
}

// Drain removes every entry, returning the summed register deltas (≤ 0)
// and the number of entries removed.
func (t *Table) Drain() (dPhi, dW int64, n int) {
	for b := range t.banks {
		for i := range t.banks[b] {
			for s := range t.banks[b][i] {
				e := &t.banks[b][i][s]
				if e.fp != 0 {
					dPhi -= int64(e.phi)
					dW -= int64(e.window)
					*e = entry{}
					t.Occupied--
					n++
				}
			}
		}
	}
	return dPhi, dW, n
}

// Rotating is the timing-Bloom-filter variant §3.6 points to: two epoch
// tables alternate, so expiring silent VM-pairs is a table swap instead of
// a timestamp scan, and an entry's staleness is bounded by two epochs. A
// VM-pair seen in the previous epoch is carried into the current one on
// its next probe.
type Rotating struct {
	cur, prev *Table
	// Collisions counts rejected updates (as Table.Collisions).
	Collisions uint64
}

// NewRotating returns a rotating filter whose two epoch tables each have
// the given per-bank slot count.
func NewRotating(slotsPerBank int) *Rotating {
	return &Rotating{cur: New(slotsPerBank), prev: New(slotsPerBank)}
}

// Update records the VM-pair in the current epoch, migrating it from the
// previous epoch if present there. Register deltas follow the same
// contract as Table.Update.
func (r *Rotating) Update(key uint64, phi, w uint32, now int64) (dPhi, dW int64, ok bool) {
	if pPhi, pW, found := r.prev.Remove(key); found {
		// Migrate: the registers already contain the old contribution.
		d1, d2, ok := r.cur.Update(key, phi, w, now)
		if !ok {
			// No room in the current epoch: the pair is dropped, so
			// its old contribution leaves the registers.
			r.Collisions++
			return pPhi, pW, false
		}
		// cur.Update returned +phi/+w (fresh insert); combined with the
		// -old from prev.Remove the caller sees the net change.
		return d1 + pPhi, d2 + pW, ok
	}
	dPhi, dW, ok = r.cur.Update(key, phi, w, now)
	if !ok {
		r.Collisions++
	}
	return dPhi, dW, ok
}

// Remove deletes the VM-pair from whichever epoch holds it.
func (r *Rotating) Remove(key uint64) (dPhi, dW int64, ok bool) {
	if d1, d2, found := r.cur.Remove(key); found {
		return d1, d2, true
	}
	return r.prev.Remove(key)
}

// Contains reports whether either epoch holds the key.
func (r *Rotating) Contains(key uint64) bool {
	return r.cur.Contains(key) || r.prev.Contains(key)
}

// Rotate expires everything not refreshed during the last epoch: the
// previous table is drained (its register deltas returned) and the tables
// swap, so the just-current epoch becomes the grace period.
func (r *Rotating) Rotate() (dPhi, dW int64, n int) {
	dPhi, dW, n = r.prev.Drain()
	r.cur, r.prev = r.prev, r.cur
	return dPhi, dW, n
}

// Occupied returns live entries across both epochs.
func (r *Rotating) Occupied() int { return r.cur.Occupied + r.prev.Occupied }
