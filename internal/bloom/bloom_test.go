package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertUpdateRemove(t *testing.T) {
	tb := New(1024)
	dPhi, dW, ok := tb.Update(42, 10, 1000, 1)
	if !ok || dPhi != 10 || dW != 1000 {
		t.Fatalf("insert: dPhi=%d dW=%d ok=%v", dPhi, dW, ok)
	}
	if !tb.Contains(42) {
		t.Fatal("Contains(42) = false after insert")
	}
	if tb.Occupied != 1 {
		t.Fatalf("Occupied = %d", tb.Occupied)
	}
	// Update with changed window: delta only.
	dPhi, dW, ok = tb.Update(42, 10, 1500, 2)
	if !ok || dPhi != 0 || dW != 500 {
		t.Fatalf("update: dPhi=%d dW=%d ok=%v", dPhi, dW, ok)
	}
	// Shrinking window gives negative delta.
	_, dW, _ = tb.Update(42, 10, 200, 3)
	if dW != -1300 {
		t.Fatalf("shrink dW = %d, want -1300", dW)
	}
	// Remove returns the full negative contribution.
	dPhi, dW, ok = tb.Remove(42)
	if !ok || dPhi != -10 || dW != -200 {
		t.Fatalf("remove: dPhi=%d dW=%d ok=%v", dPhi, dW, ok)
	}
	if tb.Contains(42) || tb.Occupied != 0 {
		t.Fatal("entry survived Remove")
	}
	// Removing again finds nothing.
	if _, _, ok := tb.Remove(42); ok {
		t.Fatal("second Remove ok")
	}
}

func TestRegisterInvariant(t *testing.T) {
	// Applying all deltas must keep registers equal to the sum over
	// live entries.
	tb := New(4096)
	rng := rand.New(rand.NewSource(7))
	var phiReg, wReg int64
	truth := map[uint64][2]uint32{}
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			phi, w := uint32(rng.Intn(100)+1), uint32(rng.Intn(1<<20))
			dPhi, dW, ok := tb.Update(key, phi, w, int64(i))
			phiReg += dPhi
			wReg += dW
			if ok {
				truth[key] = [2]uint32{phi, w}
			}
		case 2:
			dPhi, dW, ok := tb.Remove(key)
			phiReg += dPhi
			wReg += dW
			if ok {
				delete(truth, key)
			}
		}
	}
	var wantPhi, wantW int64
	for _, v := range truth {
		wantPhi += int64(v[0])
		wantW += int64(v[1])
	}
	if phiReg != wantPhi || wReg != wantW {
		t.Fatalf("registers (%d,%d) != truth (%d,%d)", phiReg, wReg, wantPhi, wantW)
	}
	if phiReg < 0 || wReg < 0 {
		t.Fatal("negative registers")
	}
}

func TestExpire(t *testing.T) {
	tb := New(64)
	tb.Update(1, 5, 100, 10)
	tb.Update(2, 7, 200, 20)
	tb.Update(3, 9, 300, 30)
	dPhi, dW, n := tb.Expire(25) // entries with lastSeen < 25: keys 1, 2
	if n != 2 || dPhi != -12 || dW != -300 {
		t.Fatalf("Expire: n=%d dPhi=%d dW=%d", n, dPhi, dW)
	}
	if tb.Contains(1) || tb.Contains(2) || !tb.Contains(3) {
		t.Fatal("wrong entries expired")
	}
	// Touching an entry via Update refreshes lastSeen.
	tb.Update(3, 9, 300, 100)
	if _, _, n := tb.Expire(50); n != 0 {
		t.Fatalf("refreshed entry expired (n=%d)", n)
	}
}

func TestCollisionRate(t *testing.T) {
	// Paper: 20K distinct VM-pairs on a 2-way structure sized for 20K
	// keeps the omission (false-positive analogue) rate under 5%.
	tb := New(16384) // 2×16384 slots
	inserted, omitted := 0, 0
	for k := uint64(1); k <= 20000; k++ {
		_, _, ok := tb.Update(k, 1, 1, 0)
		if ok {
			inserted++
		} else {
			omitted++
		}
	}
	rate := float64(omitted) / 20000
	if rate >= 0.05 {
		t.Fatalf("omission rate = %.3f, want < 0.05 (inserted %d)", rate, inserted)
	}
	if tb.Collisions != uint64(omitted) {
		t.Errorf("Collisions = %d, omitted = %d", tb.Collisions, omitted)
	}
}

func TestLoadFactorAndReset(t *testing.T) {
	tb := New(100) // rounds to 128
	if tb.SlotsPerBank() != 128 {
		t.Fatalf("SlotsPerBank = %d, want 128", tb.SlotsPerBank())
	}
	for k := uint64(0); k < 64; k++ {
		tb.Update(k, 1, 1, 0)
	}
	if lf := tb.LoadFactor(); lf <= 0 || lf > 0.5 {
		t.Fatalf("LoadFactor = %v", lf)
	}
	tb.Reset()
	if tb.Occupied != 0 || tb.Collisions != 0 || tb.LoadFactor() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: for any operation sequence, Occupied matches the number of
// distinct contained keys and registers never go negative when applying
// deltas in order.
func TestOccupiedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(512)
		live := map[uint64]bool{}
		var phiReg int64
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(200))
			if rng.Intn(2) == 0 {
				if dPhi, _, ok := tb.Update(key, 1, 1, int64(i)); ok {
					live[key] = true
					phiReg += dPhi
				}
			} else {
				if dPhi, _, ok := tb.Remove(key); ok {
					delete(live, key)
					phiReg += dPhi
				}
			}
			if phiReg < 0 {
				return false
			}
		}
		return tb.Occupied == len(live) && phiReg == int64(len(live))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdate(b *testing.B) {
	tb := New(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Update(uint64(i%20000), 1, uint32(i), int64(i))
	}
}

func TestDrain(t *testing.T) {
	tb := New(64)
	tb.Update(1, 5, 100, 0)
	tb.Update(2, 7, 200, 0)
	dPhi, dW, n := tb.Drain()
	if n != 2 || dPhi != -12 || dW != -300 || tb.Occupied != 0 {
		t.Fatalf("Drain: n=%d dPhi=%d dW=%d occ=%d", n, dPhi, dW, tb.Occupied)
	}
}

func TestRotatingLifecycle(t *testing.T) {
	r := NewRotating(128)
	var phiReg int64
	apply := func(d int64) { phiReg += d }

	d, _, ok := r.Update(1, 10, 100, 0)
	apply(d)
	if !ok || phiReg != 10 {
		t.Fatalf("insert: phiReg=%d", phiReg)
	}
	// Rotate once: entry moves to the grace epoch, registers unchanged.
	d, _, _ = r.Rotate()
	apply(d)
	if phiReg != 10 || !r.Contains(1) {
		t.Fatalf("after rotate 1: phiReg=%d contains=%v", phiReg, r.Contains(1))
	}
	// Refresh during grace migrates it back with a new value.
	d, _, ok = r.Update(1, 15, 100, 1)
	apply(d)
	if !ok || phiReg != 15 {
		t.Fatalf("refresh: phiReg=%d", phiReg)
	}
	// Two silent rotations expire it.
	d, _, _ = r.Rotate()
	apply(d)
	d, _, n := r.Rotate()
	apply(d)
	if n != 1 || phiReg != 0 || r.Contains(1) {
		t.Fatalf("expiry: n=%d phiReg=%d contains=%v", n, phiReg, r.Contains(1))
	}
	if r.Occupied() != 0 {
		t.Fatalf("Occupied = %d", r.Occupied())
	}
}

func TestRotatingRemove(t *testing.T) {
	r := NewRotating(64)
	r.Update(7, 3, 30, 0)
	r.Rotate() // entry now in prev
	dPhi, dW, ok := r.Remove(7)
	if !ok || dPhi != -3 || dW != -30 {
		t.Fatalf("Remove from grace epoch: %d/%d/%v", dPhi, dW, ok)
	}
}

func TestRotatingRegisterInvariant(t *testing.T) {
	r := NewRotating(1024)
	rng := rand.New(rand.NewSource(11))
	var phiReg int64
	live := map[uint64]uint32{}
	for i := 0; i < 5000; i++ {
		key := uint64(rng.Intn(300))
		switch rng.Intn(10) {
		case 0:
			d, _, _ := r.Rotate()
			phiReg += d
			// Anything not refreshed in the last epoch may be gone;
			// rebuild truth lazily below via Contains.
			for k := range live {
				if !r.Contains(k) {
					delete(live, k)
				}
			}
		case 1, 2:
			d, _, ok := r.Remove(key)
			phiReg += d
			if ok {
				delete(live, key)
			}
		default:
			phi := uint32(rng.Intn(50) + 1)
			d, _, ok := r.Update(key, phi, 1, int64(i))
			phiReg += d
			if ok {
				live[key] = phi
			} else {
				delete(live, key)
			}
		}
		if phiReg < 0 {
			t.Fatalf("negative register at step %d", i)
		}
	}
	var want int64
	for _, v := range live {
		want += int64(v)
	}
	if phiReg != want {
		t.Fatalf("register %d != live sum %d", phiReg, want)
	}
}
