package ctlplane

import (
	"testing"

	"ufab/internal/placement"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// watchedRecorder wires a fresh flight recorder into the service's
// event-driven watcher and returns helpers that record the dataplane
// fault events the watcher listens for.
func watchedRecorder(s *Service) (fail, heal func(at int64, h topo.NodeID)) {
	reg := telemetry.New()
	rec := reg.EnableRecorder(0)
	s.WatchRecorder(rec)
	ev := func(at int64, h topo.NodeID, down int64, note string) {
		rec.Record(telemetry.Event{
			T: at, Kind: telemetry.EvFault, Entity: "dataplane.node",
			A: int64(h), B: down, Note: note,
		})
	}
	return func(at int64, h topo.NodeID) { ev(at, h, 1, "fail") },
		func(at int64, h topo.NodeID) { ev(at, h, 0, "recover") }
}

// TestReconcileReplacesAfterNodeFailure: a recorded node-fault event
// displaces the host's tenants; the next reconcile pass tears them down
// and re-places them on live hosts, with the ledger verifying clean
// throughout.
func TestReconcileReplacesAfterNodeFailure(t *testing.T) {
	mat := newFakeMat()
	s := testService(t, nil, mat)
	fail, heal := watchedRecorder(s)

	var victims []topo.NodeID
	for id := int32(1); id <= 4; id++ {
		d := s.Admit(placement.Request{ID: id, GuaranteeBps: 1e9, VMs: 2}, 0)
		if !d.Accepted {
			t.Fatalf("admit %d: %+v", id, d)
		}
		if id == 1 {
			victims = d.Hosts
		}
	}
	dead := victims[0]
	fail(500, dead)

	if n := s.Reconcile(1000); n == 0 {
		t.Fatal("reconcile saw nothing to do")
	}
	st := s.Stats()
	if st.Displaced == 0 || st.Replacements == 0 || st.Evictions != 0 {
		t.Fatalf("stats %+v: want displacements and replacements, no evictions", st)
	}
	for _, tn := range s.TenantList() {
		if tn.Status != StatusPlaced {
			t.Fatalf("tenant %d not converged: %+v", tn.ID, tn)
		}
		for _, h := range tn.Hosts {
			if h == dead {
				t.Fatalf("tenant %d still on dead host %d", tn.ID, h)
			}
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}

	// A second pass with nothing changed must be a no-op.
	if n := s.Reconcile(2000); n != 0 {
		t.Fatalf("steady-state reconcile changed %d tenants", n)
	}

	// A recovery event restores schedulability: an admission spanning
	// every host (including the recovered one) must land.
	heal(3000, dead)
	s.Reconcile(3000)
	if d := s.Admit(placement.Request{ID: 9, GuaranteeBps: 1e9, VMs: 8}, 4000); !d.Accepted {
		t.Fatalf("admit spanning the recovered host: %+v", d)
	}
}

// TestReconcileDrainEvacuation: draining a host evacuates its tenants in
// one pass (demote + immediate re-place) and no new placement lands on it
// until uncordoned.
func TestReconcileDrainEvacuation(t *testing.T) {
	mat := newFakeMat()
	s := testService(t, nil, mat)
	d := s.Admit(placement.Request{ID: 1, GuaranteeBps: 1e9, VMs: 2}, 0)
	if !d.Accepted {
		t.Fatalf("admit: %+v", d)
	}
	drained := d.Hosts[1]
	if !s.Drain(drained) {
		t.Fatal("drain refused")
	}
	s.Reconcile(1000)
	tn, _ := s.Get(1)
	if tn.Status != StatusPlaced {
		t.Fatalf("tenant not re-placed after drain: %+v", tn)
	}
	for _, h := range tn.Hosts {
		if h == drained {
			t.Fatalf("tenant still on draining host %d", h)
		}
	}
	// New admissions avoid the drained host too.
	d2 := s.Admit(placement.Request{ID: 2, GuaranteeBps: 1e9, VMs: 7}, 2000)
	if !d2.Accepted {
		t.Fatalf("admit onto 7 remaining hosts failed: %+v", d2)
	}
	for _, h := range d2.Hosts {
		if h == drained {
			t.Fatal("policy placed onto a draining host")
		}
	}
	if !s.Uncordon(drained) {
		t.Fatal("uncordon refused")
	}
	d3 := s.Admit(placement.Request{ID: 3, GuaranteeBps: 1e9, VMs: 8}, 3000)
	if !d3.Accepted {
		t.Fatalf("admit spanning the uncordoned host failed: %+v", d3)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestReconcileBackoffAndEviction: when re-placement cannot succeed the
// retry counter walks the exponential backoff schedule and the tenant is
// evicted once the budget is spent — never sooner, never spinning.
func TestReconcileBackoffAndEviction(t *testing.T) {
	mat := newFakeMat()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	s := NewService(tb.Graph, nil, mat, Config{
		SlotsPerHost: 4,
		MaxPaths:     4,
		MaxRetries:   3,
		RetryBackoff: 100, // 100 ps base, doubling
	})
	fail, _ := watchedRecorder(s)

	d := s.Admit(placement.Request{ID: 1, GuaranteeBps: 1e9, VMs: 2}, 0)
	if !d.Accepted {
		t.Fatalf("admit: %+v", d)
	}
	// Kill every host: re-placement is impossible.
	for _, h := range s.Fleet().Hosts {
		fail(500, h)
	}
	now := int64(1000)
	s.Reconcile(now) // demote + retry 1 fails
	tn, _ := s.Get(1)
	if tn.Status != StatusDegraded || tn.Retries != 1 {
		t.Fatalf("after first pass: %+v", tn)
	}
	if tn.NotBeforePS != now+100 {
		t.Fatalf("backoff gate %d, want %d", tn.NotBeforePS, now+100)
	}
	// Before the gate: no attempt is burned.
	s.Reconcile(now + 50)
	if tn, _ = s.Get(1); tn.Retries != 1 {
		t.Fatalf("retry burned before backoff expired: %+v", tn)
	}
	// Walk the schedule to eviction: retries 2, 3, then budget exhausted.
	for i := 0; i < 3; i++ {
		tn, _ = s.Get(1)
		now = tn.NotBeforePS
		s.Reconcile(now)
	}
	tn, _ = s.Get(1)
	if tn.Status != StatusEvicted {
		t.Fatalf("not evicted after budget: %+v", tn)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Retries != 4 {
		t.Fatalf("stats %+v: want 1 eviction after 4 failed attempts", st)
	}
	// Evicted tenants hold nothing.
	if s.Ledger().Tenants() != 0 || len(mat.live) != 0 {
		t.Fatal("evicted tenant still holds resources")
	}
	// And stay evicted: reconcile is a no-op now.
	if n := s.Reconcile(now + 1_000_000); n != 0 {
		t.Fatalf("evicted tenant still being reconciled (%d changes)", n)
	}
}
