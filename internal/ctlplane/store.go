package ctlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ufab/internal/topo"
)

// TenantStatus is the reconciler's per-tenant state machine.
type TenantStatus string

const (
	// StatusPending: desired but never realized (admission accepted the
	// intent, placement has not happened yet).
	StatusPending TenantStatus = "Pending"
	// StatusPlaced: realized — hosts assigned, ledger committed, fabric
	// materialized.
	StatusPlaced TenantStatus = "Placed"
	// StatusDegraded: was Placed, lost a host (failure or drain); realized
	// state has been torn down and the reconciler is re-placing it.
	StatusDegraded TenantStatus = "Degraded"
	// StatusEvicted: the retry budget ran out; the tenant keeps its record
	// (operators can see why it's gone) but holds no resources.
	StatusEvicted TenantStatus = "Evicted"
)

// Tenant is one desired-state record: what the tenant asked for, plus the
// reconciler's view of how far reality has converged. It is the unit of
// persistence — every transition is a WAL record.
type Tenant struct {
	ID           int32        `json:"id"`
	GuaranteeBps float64      `json:"guarantee_bps"`
	VMs          int          `json:"vms"`
	WeightClass  int          `json:"weight_class"`
	BacklogBytes int64        `json:"backlog_bytes,omitempty"`
	Status       TenantStatus `json:"status"`
	// Hosts is the realized placement (Placed only).
	Hosts []topo.NodeID `json:"hosts,omitempty"`
	// Retries counts failed re-placement attempts since the tenant left
	// Placed; NotBeforePS is the backoff gate on the next attempt.
	Retries     int   `json:"retries,omitempty"`
	NotBeforePS int64 `json:"not_before_ps,omitempty"`
	UpdatedPS   int64 `json:"updated_ps,omitempty"`
}

// walRecord is one WAL line. CRC is crc32-IEEE over the record's JSON
// encoding with CRC set to zero, so a torn or bit-flipped tail line is
// detected on replay.
type walRecord struct {
	Seq    uint64  `json:"seq"`
	Op     string  `json:"op"` // "put" | "del"
	Tenant *Tenant `json:"tenant,omitempty"`
	ID     int32   `json:"id,omitempty"`
	CRC    uint32  `json:"crc"`
}

// storeSnapshot is the periodic full-state checkpoint. Seq is the last
// WAL sequence folded in: replay skips records at or below it.
type storeSnapshot struct {
	Seq     uint64   `json:"seq"`
	Tenants []Tenant `json:"tenants"`
}

// StoreStats reports what recovery found.
type StoreStats struct {
	// SnapshotSeq is the checkpoint the state was rebuilt from (0 = none).
	SnapshotSeq uint64
	// Replayed is how many WAL records were applied on top.
	Replayed int
	// DroppedTail is how many trailing WAL lines were discarded as torn
	// or corrupt (they are physically truncated away).
	DroppedTail int
}

// Store persists the control plane's desired tenant state: an append-only
// JSONL write-ahead log plus a periodic snapshot, both plain files in one
// directory. Every Put/Delete appends one CRC-protected record; every
// SnapshotEvery records the full state is checkpointed atomically
// (tmp+rename) and the WAL truncated. Open replays snapshot+WAL,
// dropping a torn or corrupt tail — the crash-recovery contract the
// daemon's restart path builds on.
type Store struct {
	dir string

	mu       sync.Mutex
	tenants  map[int32]Tenant
	wal      *os.File
	seq      uint64 // last sequence written (or recovered)
	snapSeq  uint64 // last sequence folded into the snapshot
	pending  int    // WAL records since the last snapshot
	stats    StoreStats
	snapshot int // SnapshotEvery, resolved
}

// DefaultSnapshotEvery is how many WAL records accumulate before an
// automatic checkpoint.
const DefaultSnapshotEvery = 256

func (s *Store) walPath() string  { return filepath.Join(s.dir, "wal.jsonl") }
func (s *Store) snapPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Open opens (creating if absent) the store in dir and recovers its
// state: snapshot first, then every intact WAL record above the
// snapshot's sequence. The first torn or corrupt WAL line and everything
// after it are discarded and physically truncated.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ctlplane: store: %w", err)
	}
	s := &Store{dir: dir, tenants: make(map[int32]Tenant), snapshot: DefaultSnapshotEvery}

	if b, err := os.ReadFile(s.snapPath()); err == nil {
		var snap storeSnapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			return nil, fmt.Errorf("ctlplane: store: corrupt snapshot: %w", err)
		}
		s.seq, s.snapSeq = snap.Seq, snap.Seq
		s.stats.SnapshotSeq = snap.Seq
		for _, t := range snap.Tenants {
			s.tenants[t.ID] = t
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("ctlplane: store: %w", err)
	}

	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: store: %w", err)
	}
	s.wal = wal
	return s, nil
}

// replayWAL applies intact records and truncates the file at the first
// bad line (torn write, CRC mismatch, non-monotonic sequence).
func (s *Store) replayWAL() error {
	data, err := os.ReadFile(s.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	valid := 0 // byte offset of the end of the last intact line
	off := 0
	prev := uint64(0)
	first := true
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn final line — no newline made it to disk
		}
		line := data[off : off+nl]
		rec, ok := decodeWALRecord(line)
		if !ok {
			break
		}
		if !first && rec.Seq != prev+1 {
			break // sequence gap or replay: the tail is not trustworthy
		}
		first, prev = false, rec.Seq
		if rec.Seq > s.snapSeq {
			switch rec.Op {
			case "put":
				if rec.Tenant == nil {
					return fmt.Errorf("ctlplane: store: put record %d without tenant", rec.Seq)
				}
				s.tenants[rec.Tenant.ID] = *rec.Tenant
			case "del":
				delete(s.tenants, rec.ID)
			default:
				return fmt.Errorf("ctlplane: store: record %d unknown op %q", rec.Seq, rec.Op)
			}
			s.stats.Replayed++
			s.pending++
		}
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		off += nl + 1
		valid = off
	}
	if valid < len(data) {
		s.stats.DroppedTail = 1 + bytes.Count(data[valid:], []byte{'\n'})
		if err := os.Truncate(s.walPath(), int64(valid)); err != nil {
			return fmt.Errorf("ctlplane: store: truncating corrupt tail: %w", err)
		}
	}
	return nil
}

func encodeWALRecord(rec walRecord) ([]byte, error) {
	rec.CRC = 0
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	rec.CRC = crc32.ChecksumIEEE(b)
	b, err = json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func decodeWALRecord(line []byte) (walRecord, bool) {
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, false
	}
	want := rec.CRC
	rec.CRC = 0
	b, err := json.Marshal(rec)
	if err != nil || crc32.ChecksumIEEE(b) != want {
		return rec, false
	}
	rec.CRC = want
	return rec, true
}

// Put records the tenant's current desired/realized state.
func (s *Store) Put(t Tenant) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(walRecord{Op: "put", Tenant: &t}); err != nil {
		return err
	}
	s.tenants[t.ID] = t
	return s.maybeSnapshotLocked()
}

// Delete removes the tenant's record (release).
func (s *Store) Delete(id int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(walRecord{Op: "del", ID: id}); err != nil {
		return err
	}
	delete(s.tenants, id)
	return s.maybeSnapshotLocked()
}

func (s *Store) appendLocked(rec walRecord) error {
	rec.Seq = s.seq + 1
	b, err := encodeWALRecord(rec)
	if err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	if _, err := s.wal.Write(b); err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	s.seq++
	s.pending++
	return nil
}

func (s *Store) maybeSnapshotLocked() error {
	if s.pending < s.snapshot {
		return nil
	}
	return s.snapshotLocked()
}

// Snapshot forces a checkpoint: the full state is written atomically and
// the WAL truncated.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	snap := storeSnapshot{Seq: s.seq, Tenants: s.tenantsLocked()}
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	tmp := s.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	s.snapSeq = s.seq
	// The snapshot now covers every WAL record; recycle the log. A crash
	// between rename and truncate is safe: replay skips seq ≤ snapSeq.
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	wal, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ctlplane: store: %w", err)
	}
	s.wal = wal
	s.pending = 0
	return nil
}

// SetSnapshotEvery overrides the automatic checkpoint threshold (n ≤ 0
// restores the default).
func (s *Store) SetSnapshotEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = DefaultSnapshotEvery
	}
	s.snapshot = n
}

func (s *Store) tenantsLocked() []Tenant {
	out := make([]Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tenants returns every record, sorted by id.
func (s *Store) Tenants() []Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantsLocked()
}

// Get returns one record.
func (s *Store) Get(id int32) (Tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	return t, ok
}

// Len returns the record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// Seq returns the last WAL sequence written or recovered.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Stats reports what recovery found when the store was opened.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close flushes nothing (writes are unbuffered appends) and releases the
// WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
