package ctlplane

// The watcher/reconciler: each Reconcile pass folds the event-driven
// liveness view (fed by the flight recorder's dataplane fault events, see
// Service.WatchRecorder) into schedulability, demotes Placed tenants whose
// hosts died or are draining (tearing down their realized state), and
// re-places Pending/Degraded tenants under the retry/backoff budget. The
// pass is deterministic — tenants are visited in sorted-id order and the
// only inputs are the fleet, the ledger and the failed set, whose updates
// happen at fault-event times that are themselves pure functions of the
// scenario — so experiments driving it from simulated time are
// byte-identical across parallel runs.

import (
	"ufab/internal/placement"
	"ufab/internal/sim"
)

// Reconcile runs one convergence pass at simulated time nowPS and
// returns how many tenants changed state.
func (s *Service) Reconcile(nowPS int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reconcileLoops++
	changed := 0

	// Watch: refresh schedulability from the fault-event-driven failed
	// set ∨ drain. The set was updated synchronously as the recorder saw
	// each dataplane fault, so a pass at time T observes exactly the
	// faults before T — the same view the old fabric poll produced.
	for i, h := range s.fleet.Hosts {
		s.fleet.Unschedulable[i] = s.failed[h] || s.draining[h]
	}

	ids := s.sortedIDsLocked()

	// Demote: a Placed tenant with any VM on an unschedulable host has
	// lost its guarantee; tear down what remains so re-placement starts
	// from a clean slate (no half-materialized state survives).
	for _, id := range ids {
		t := s.tenants[id]
		if t.Status != StatusPlaced || !s.displacedLocked(t) {
			continue
		}
		s.teardownLocked(t)
		t.Status = StatusDegraded
		t.Retries = 0
		t.NotBeforePS = nowPS
		t.UpdatedPS = nowPS
		s.displaced++
		s.persistPutLocked(t)
		changed++
	}

	// Converge: re-place what should be running but isn't.
	for _, id := range ids {
		t := s.tenants[id]
		if t.Status != StatusPending && t.Status != StatusDegraded {
			continue
		}
		if nowPS < t.NotBeforePS {
			continue
		}
		if d := s.placeLocked(t, nowPS); d.Accepted {
			s.replacements++
			s.persistPutLocked(t)
			changed++
			continue
		}
		t.Retries++
		s.retries++
		if t.Retries > s.cfg.MaxRetries {
			t.Status = StatusEvicted
			t.UpdatedPS = nowPS
			s.evictions++
		} else {
			// Exponential backoff: base·2^(retries-1).
			t.NotBeforePS = nowPS + int64(s.cfg.RetryBackoff)<<uint(t.Retries-1)
			t.UpdatedPS = nowPS
		}
		s.persistPutLocked(t)
		changed++
	}
	s.flushLocked()
	return changed
}

// displacedLocked reports whether any of t's hosts is unschedulable.
func (s *Service) displacedLocked(t *Tenant) bool {
	for _, h := range t.Hosts {
		if i := s.fleet.HostIndex(h); i >= 0 && s.fleet.Unschedulable[i] {
			return true
		}
	}
	return false
}

// StartReconciler schedules Reconcile every period on the engine and
// returns the stop function. period ≤ 0 defaults to 500 µs — well inside
// the auditor's 5 ms fault-excuse window, so a crash-displaced tenant is
// re-placed before its findings can outlive the excuse.
func (s *Service) StartReconciler(eng sim.Scheduler, period sim.Duration) (stop func()) {
	if period <= 0 {
		period = 500 * sim.Microsecond
	}
	return eng.Every(period, func() {
		s.Reconcile(int64(eng.Now()))
	})
}

// Recover rebuilds realized state from the store's desired records after
// a restart: Placed tenants are re-committed to the (fresh) ledger,
// their fleet slots retaken, and — when a materializer is attached — the
// fabric re-materialized. A tenant whose recorded placement no longer
// fits demotes to Degraded for the reconciler to re-place. Returns the
// ledger's Verify error, if any — the store-vs-ledger consistency check
// the restart contract requires.
func (s *Service) Recover(nowPS int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	for _, rec := range s.store.Tenants() {
		t := rec
		s.tenants[t.ID] = &t
	}
	for _, id := range s.sortedIDsLocked() {
		t := s.tenants[id]
		if t.Status != StatusPlaced {
			continue
		}
		hosts := t.Hosts
		pairs := placement.ChainPairs(hosts)
		ok := len(hosts) == t.VMs
		if ok {
			ok = s.ledger.Admit(t.ID, t.GuaranteeBps, pairs) == nil
		}
		if ok && s.mat != nil && !s.mat.AddTenant(s.spec(t, pairs)) {
			s.ledger.Release(t.ID)
			ok = false
		}
		if !ok {
			t.Hosts = nil
			t.Status = StatusDegraded
			t.Retries = 0
			t.NotBeforePS = nowPS
			t.UpdatedPS = nowPS
			s.persistPutLocked(t)
			continue
		}
		s.fleet.Place(hosts)
	}
	s.flushLocked()
	return s.ledger.Verify()
}
