package ctlplane

// The northbound API: stdlib net/http + JSON, one handler per resource.
// Every request body/response is a small JSON document; /v1/findings is
// JSONL (one finding per line), optionally streamed with ?follow=1. All
// state access funnels through Daemon.Do onto the engine goroutine.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ufab/internal/audit"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// admitBody is the wire form of an admit/evaluate request.
type admitBody struct {
	ID           int32   `json:"id"`
	GuaranteeBps float64 `json:"guarantee_bps"`
	VMs          int     `json:"vms"`
	WeightClass  int     `json:"weight_class"`
	BacklogBytes int64   `json:"backlog_bytes"`
}

func (b admitBody) request() placement.Request {
	return placement.Request{
		ID:           b.ID,
		GuaranteeBps: b.GuaranteeBps,
		VMs:          b.VMs,
		WeightClass:  b.WeightClass,
		BacklogBytes: b.BacklogBytes,
	}
}

type idBody struct {
	ID int32 `json:"id"`
}

type hostBody struct {
	Host topo.NodeID `json:"host"`
}

type statusReply struct {
	NowPS    int64          `json:"now_ps"`
	Tenants  int            `json:"tenants"`
	ByStatus map[string]int `json:"by_status"`
	Stats    Stats          `json:"stats"`
	MaxSub   float64        `json:"max_subscription"`
	StoreSeq uint64         `json:"store_seq,omitempty"`
}

type fleetReply struct {
	SlotsPerHost int             `json:"slots_per_host"`
	Hosts        []fleetHostInfo `json:"hosts"`
}

type fleetHostInfo struct {
	Host          topo.NodeID `json:"host"`
	Used          int         `json:"used"`
	ToRGroup      int         `json:"tor_group"`
	Unschedulable bool        `json:"unschedulable,omitempty"`
}

type ledgerReply struct {
	Tenants  int     `json:"tenants"`
	Shards   int     `json:"shards"`
	MaxSub   float64 `json:"max_subscription"`
	MeanSub  float64 `json:"mean_subscription"`
	VerifyOK bool    `json:"verify_ok"`
	Verify   string  `json:"verify_error,omitempty"`
}

// Handler returns the daemon's northbound HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		var rep statusReply
		d.Do(func() {
			st := d.Svc.Stats()
			rep = statusReply{
				NowPS:   int64(d.Eng.Now()),
				Tenants: st.Desired,
				Stats:   st,
				MaxSub:  d.Svc.Ledger().MaxSubscription(),
			}
			rep.ByStatus = make(map[string]int)
			for k, v := range d.Svc.StatusCounts() {
				rep.ByStatus[string(k)] = v
			}
			if s := d.Svc.Store(); s != nil {
				rep.StoreSeq = s.Seq()
			}
		})
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("POST /v1/admit", func(w http.ResponseWriter, r *http.Request) {
		var body admitBody
		if !readJSON(w, r, &body) {
			return
		}
		var dec Decision
		d.Do(func() { dec = d.Svc.Admit(body.request(), int64(d.Eng.Now())) })
		writeJSON(w, http.StatusOK, dec)
	})

	mux.HandleFunc("POST /v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var body admitBody
		if !readJSON(w, r, &body) {
			return
		}
		var dec Decision
		d.Do(func() { dec = d.Svc.Evaluate(body.request()) })
		writeJSON(w, http.StatusOK, dec)
	})

	mux.HandleFunc("POST /v1/release", func(w http.ResponseWriter, r *http.Request) {
		var body idBody
		if !readJSON(w, r, &body) {
			return
		}
		var ok bool
		d.Do(func() { ok = d.Svc.Release(body.ID, int64(d.Eng.Now())) })
		if !ok {
			httpError(w, http.StatusNotFound, "unknown tenant %d", body.ID)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"released": true})
	})

	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var list []Tenant
		d.Do(func() { list = d.Svc.TenantList() })
		writeJSON(w, http.StatusOK, list)
	})

	mux.HandleFunc("GET /v1/tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad tenant id")
			return
		}
		var (
			t  Tenant
			ok bool
		)
		d.Do(func() { t, ok = d.Svc.Get(int32(id64)) })
		if !ok {
			httpError(w, http.StatusNotFound, "unknown tenant %d", id64)
			return
		}
		writeJSON(w, http.StatusOK, t)
	})

	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		var rep fleetReply
		d.Do(func() {
			fl := d.Svc.Fleet()
			rep.SlotsPerHost = fl.SlotsPerHost
			for i, h := range fl.Hosts {
				rep.Hosts = append(rep.Hosts, fleetHostInfo{
					Host: h, Used: fl.Used[i], ToRGroup: fl.ToRGroup[i],
					Unschedulable: fl.Unschedulable[i],
				})
			}
		})
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("GET /v1/ledger", func(w http.ResponseWriter, r *http.Request) {
		var rep ledgerReply
		d.Do(func() {
			l := d.Svc.Ledger()
			rep = ledgerReply{
				Tenants: l.Tenants(),
				Shards:  l.Shards(),
				MaxSub:  l.MaxSubscription(),
				MeanSub: l.MeanSubscription(),
			}
			if err := l.Verify(); err != nil {
				rep.Verify = err.Error()
			} else {
				rep.VerifyOK = true
			}
		})
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		var body hostBody
		if !readJSON(w, r, &body) {
			return
		}
		var ok bool
		d.Do(func() { ok = d.Svc.Drain(body.Host) })
		if !ok {
			httpError(w, http.StatusNotFound, "host %d not in fleet", body.Host)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"draining": true})
	})

	mux.HandleFunc("POST /v1/uncordon", func(w http.ResponseWriter, r *http.Request) {
		var body hostBody
		if !readJSON(w, r, &body) {
			return
		}
		var ok bool
		d.Do(func() { ok = d.Svc.Uncordon(body.Host) })
		if !ok {
			httpError(w, http.StatusNotFound, "host %d not draining", body.Host)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"draining": false})
	})

	mux.HandleFunc("GET /v1/findings", func(w http.ResponseWriter, r *http.Request) {
		d.serveFindings(w, r)
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf []byte
		d.Do(func() {
			snap := d.Reg.Snapshot()
			buf, _ = json.Marshal(snap)
		})
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		d.Do(func() {
			snap := d.Reg.Snapshot()
			appendHealthGauges(&snap, d.Eng)
			_ = snap.WriteOpenMetrics(&buf)
		})
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		w.Write(buf.Bytes())
	})

	return mux
}

// appendHealthGauges folds the simulation driver's operational shard-health
// counters (window stalls, seal latency, ring occupancy — wall-clock and
// scheduling dependent, so deliberately kept out of the deterministic
// registry) into a snapshot as extra gauges for exposition. A sequential
// engine reports no shards and contributes nothing.
func appendHealthGauges(snap *telemetry.Snapshot, src sim.HealthSource) {
	for _, h := range src.Health() {
		ent := fmt.Sprintf("simhealth.shard%d", h.Shard)
		snap.Gauges = append(snap.Gauges,
			telemetry.GaugeValue{Name: ent + ".window_stalls", Value: float64(h.WindowStalls)},
			telemetry.GaugeValue{Name: ent + ".send_spins", Value: float64(h.SendSpins)},
			telemetry.GaugeValue{Name: ent + ".window_seals", Value: float64(h.Seals)},
			telemetry.GaugeValue{Name: ent + ".seal_nanos", Value: float64(h.SealNanos)},
			telemetry.GaugeValue{Name: ent + ".ring_peak", Value: float64(h.RingPeak)},
		)
	}
}

// serveFindings dumps the audit log as JSONL; with ?follow=1 it keeps the
// connection open and streams findings as the auditor emits them.
func (d *Daemon) serveFindings(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	follow := r.URL.Query().Get("follow") != ""
	var ch chan audit.Finding
	var cancel func()
	if follow {
		// Subscribe before the backlog dump so nothing lands in the gap.
		ch, cancel = d.subscribeFindings()
		defer cancel()
	}
	d.Do(func() { _ = d.Audit.WriteJSONL(w) })
	if !follow {
		return
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	bw := bufio.NewWriter(w)
	for {
		select {
		case f := <-ch:
			b, err := json.Marshal(map[string]any{
				"kind": f.Kind.String(), "from_ps": f.FromPS, "to_ps": f.ToPS,
				"entity": f.Entity, "vf": f.VF, "observed": f.Observed,
				"bound": f.Bound, "unit": f.Unit, "excused": f.Excused,
			})
			if err != nil {
				return
			}
			bw.Write(b)
			bw.WriteByte('\n')
			if bw.Flush() != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-d.quit:
			return
		}
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
