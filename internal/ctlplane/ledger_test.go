package ctlplane

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

func testClos() *topo.Clos {
	return topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
}

func closHosts(cl *topo.Clos) []topo.NodeID {
	var hosts []topo.NodeID
	for _, n := range cl.Graph.Nodes {
		if n.Kind == topo.Host {
			hosts = append(hosts, n.ID)
		}
	}
	return hosts
}

// TestShardedLedgerMatchesSequential drives the identical admit/release
// sequence through the sharded ledger and the single-goroutine reference
// ledger and requires identical per-link commitments.
func TestShardedLedgerMatchesSequential(t *testing.T) {
	cl := testClos()
	hosts := closHosts(cl)
	sh := NewShardedLedger(cl.Graph, 4, 4, 1.0)
	ref := placement.NewLedger(cl.Graph, 4)

	rng := rand.New(rand.NewSource(7))
	var live []int32
	for id := int32(1); id <= 400; id++ {
		a, b := hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))]
		if a == b {
			continue
		}
		pairs := []placement.Pair{{Src: a, Dst: b}}
		g := 1e9
		errSh := sh.Admit(id, g, pairs)
		errRef := ref.Commit(id, g, pairs)
		if (errSh == nil) != (errRef == nil) {
			// Expected asymmetry: the sharded ledger enforces headroom
			// itself, the reference does not. Undo the successful side so
			// the two accounts stay element-wise comparable.
			if errSh == nil {
				sh.Release(id)
			} else if !errors.Is(errSh, ErrHeadroom) {
				t.Fatalf("id %d: sharded %v, reference %v", id, errSh, errRef)
			} else {
				ref.Release(id)
			}
			continue
		}
		if errSh == nil {
			live = append(live, id)
		}
		if len(live) > 8 && rng.Intn(3) == 0 {
			victim := live[rng.Intn(len(live))]
			if sh.Release(victim) != ref.Release(victim) {
				t.Fatalf("release %d diverged", victim)
			}
			for i, v := range live {
				if v == victim {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
	for lid := range cl.Graph.Links {
		a, b := sh.CommittedBps(topo.LinkID(lid)), ref.CommittedBps(topo.LinkID(lid))
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-6*(1+b) {
			t.Fatalf("link %d: sharded %v != reference %v", lid, a, b)
		}
	}
	if err := sh.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedLedgerConcurrentChurn hammers the two-phase commit from many
// goroutines (run under -race in CI); after the drain the ledger must
// verify with zero residue and zero leaked reservations.
func TestShardedLedgerConcurrentChurn(t *testing.T) {
	cl := testClos()
	hosts := closHosts(cl)
	sh := NewShardedLedger(cl.Graph, 4, 8, 1.0)

	const workers = 8
	var next int32 // atomic tenant-id source
	var admitted, rejected int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var held []int32
			for i := 0; i < 500; i++ {
				id := atomic.AddInt32(&next, 1)
				a := hosts[rng.Intn(len(hosts))]
				b := hosts[rng.Intn(len(hosts))]
				if a == b {
					continue
				}
				err := sh.Admit(id, 2e9, []placement.Pair{{Src: a, Dst: b}})
				if err == nil {
					atomic.AddInt64(&admitted, 1)
					held = append(held, id)
				} else if errors.Is(err, ErrHeadroom) {
					atomic.AddInt64(&rejected, 1)
				} else {
					t.Errorf("unexpected admit error: %v", err)
					return
				}
				if len(held) > 16 {
					if !sh.Release(held[0]) {
						t.Errorf("release of own tenant %d failed", held[0])
						return
					}
					held = held[1:]
				}
			}
			for _, id := range held {
				sh.Release(id)
			}
		}(w)
	}
	wg.Wait()
	if admitted == 0 {
		t.Fatal("no admissions went through")
	}
	if sh.Tenants() != 0 {
		t.Fatalf("%d tenants left after drain", sh.Tenants())
	}
	if err := sh.Verify(); err != nil {
		t.Fatalf("post-drain verify: %v", err)
	}
	if max := sh.MaxSubscription(); max > 1e-9 {
		t.Fatalf("residual subscription %v after full drain", max)
	}
}

// TestShardedLedgerHeadroomAtomic checks the property two-phase commit
// exists for: concurrent admissions racing for the same bottleneck link
// can never jointly exceed the budget, even transiently committed.
func TestShardedLedgerHeadroomAtomic(t *testing.T) {
	cl := testClos()
	hosts := closHosts(cl)
	// Oversub 1.0 on 10G links; each tenant wants 3G on the same
	// host-pair, so at most 3 of the 12 racing admissions fit per path
	// set — the rest must bounce off prepare.
	sh := NewShardedLedger(cl.Graph, 1, 8, 1.0)
	a, b := hosts[0], hosts[len(hosts)-1]

	var wg sync.WaitGroup
	for id := int32(1); id <= 12; id++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			err := sh.Admit(id, 3e9, []placement.Pair{{Src: a, Dst: b}})
			if err != nil && !errors.Is(err, ErrHeadroom) {
				t.Errorf("tenant %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	for lid := range cl.Graph.Links {
		c := sh.CommittedBps(topo.LinkID(lid))
		if cap := cl.Graph.Links[lid].Capacity; c > cap+1e-6 {
			t.Fatalf("link %d committed %v exceeds capacity %v", lid, c, cap)
		}
	}
	if err := sh.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedLedgerRejectsDuplicates ensures the in-flight guard holds
// the id from the moment prepare starts.
func TestShardedLedgerRejectsDuplicates(t *testing.T) {
	cl := testClos()
	hosts := closHosts(cl)
	sh := NewShardedLedger(cl.Graph, 2, 4, 1.0)
	pairs := []placement.Pair{{Src: hosts[0], Dst: hosts[1]}}
	if err := sh.Admit(7, 1e9, pairs); err != nil {
		t.Fatal(err)
	}
	if err := sh.Admit(7, 1e9, pairs); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	if !sh.Release(7) {
		t.Fatal("release failed")
	}
	if sh.Release(7) {
		t.Fatal("double release succeeded")
	}
	if err := sh.Admit(7, 1e9, pairs); err != nil {
		t.Fatalf("id not reusable after release: %v", err)
	}
}
