package ctlplane

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ufab/internal/topo"
)

func tenant(id int32, status TenantStatus, hosts ...topo.NodeID) Tenant {
	return Tenant{
		ID: id, GuaranteeBps: 1e9 * float64(id), VMs: len(hosts),
		WeightClass: 3, Status: status, Hosts: hosts, UpdatedPS: int64(id) * 1000,
	}
}

// TestStoreRoundTrip: puts and deletes survive a close/reopen via the WAL
// alone (no snapshot).
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		tenant(1, StatusPlaced, 10, 11),
		tenant(3, StatusDegraded),
		tenant(5, StatusPlaced, 12, 13, 14),
	}
	for _, tn := range want {
		if err := s.Put(tn); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(tenant(4, StatusPlaced, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(4); err != nil {
		t.Fatal(err)
	}
	seq := s.Seq()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v\nwant %+v", got, want)
	}
	if r.Seq() != seq {
		t.Fatalf("recovered seq %d, want %d", r.Seq(), seq)
	}
	if st := r.Stats(); st.Replayed != 5 || st.DroppedTail != 0 {
		t.Fatalf("stats %+v, want 5 replayed, 0 dropped", st)
	}
}

// TestStoreSnapshotReplay: state rebuilt from snapshot + subsequent WAL
// records equals the live state, and the snapshot truncates the WAL.
func TestStoreSnapshotReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSnapshotEvery(8)
	for id := int32(1); id <= 30; id++ {
		if err := s.Put(tenant(id, StatusPlaced, topo.NodeID(id), topo.NodeID(id+100))); err != nil {
			t.Fatal(err)
		}
		if id%5 == 0 {
			if err := s.Delete(id - 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := s.Tenants()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot missing after auto-checkpoint: %v", err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Tenants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d tenants, want %d\n got %+v\nwant %+v",
			len(got), len(want), got, want)
	}
	if st := r.Stats(); st.SnapshotSeq == 0 {
		t.Fatal("recovery did not use the snapshot")
	}
}

// TestStoreCorruptTail: a torn final line, a bit-flipped record and
// trailing garbage are each detected, dropped and physically truncated;
// everything before the first bad byte survives.
func TestStoreCorruptTail(t *testing.T) {
	corruptions := map[string]func(wal []byte) []byte{
		"torn final line": func(wal []byte) []byte {
			return wal[:len(wal)-7] // chop mid-record, no trailing newline
		},
		"bit flip in last record": func(wal []byte) []byte {
			out := append([]byte(nil), wal...)
			// Flip a digit inside the last line's payload (not its CRC
			// field's own digits? any flip must fail the checksum).
			lines := bytes.Split(bytes.TrimSuffix(out, []byte{'\n'}), []byte{'\n'})
			last := lines[len(lines)-1]
			i := bytes.Index(last, []byte("guarantee_bps"))
			last[i+len("guarantee_bps\":")+1] ^= 0x01
			return out
		},
		"trailing garbage": func(wal []byte) []byte {
			return append(append([]byte(nil), wal...), []byte("{not json\n")...)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for id := int32(1); id <= 6; id++ {
				if err := s.Put(tenant(id, StatusPlaced, topo.NodeID(id))); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			walPath := filepath.Join(dir, "wal.jsonl")
			wal, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, corrupt(wal), 0o644); err != nil {
				t.Fatal(err)
			}

			r, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery must drop the bad tail, got %v", err)
			}
			defer r.Close()
			st := r.Stats()
			if st.DroppedTail == 0 {
				t.Fatal("corrupt tail not detected")
			}
			got := r.Tenants()
			// The intact prefix must survive exactly; at most the final
			// record(s) may be gone.
			if len(got) < 5 || len(got) > 6 {
				t.Fatalf("recovered %d tenants, want 5 or 6", len(got))
			}
			for i, tn := range got {
				if want := tenant(int32(i+1), StatusPlaced, topo.NodeID(i+1)); !reflect.DeepEqual(tn, want) {
					t.Fatalf("tenant %d corrupted: %+v", i+1, tn)
				}
			}
			// The file must have been truncated at the first bad byte —
			// a second reopen sees a clean log.
			r2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if st2 := r2.Stats(); st2.DroppedTail != 0 {
				t.Fatalf("tail not physically truncated: %+v", st2)
			}
			if !reflect.DeepEqual(r2.Tenants(), got) {
				t.Fatal("second recovery diverged from first")
			}
		})
	}
}

// TestStoreAppendAfterRecovery: the store keeps accepting writes after a
// tail-drop recovery, and those writes persist.
func TestStoreAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for id := int32(1); id <= 3; id++ {
		if err := s.Put(tenant(id, StatusPlaced, topo.NodeID(id))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, "wal.jsonl")
	wal, _ := os.ReadFile(walPath)
	os.WriteFile(walPath, wal[:len(wal)-3], 0o644) // tear the tail

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(tenant(9, StatusPending)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Get(9); !ok {
		t.Fatal("post-recovery write lost")
	}
	if st := r2.Stats(); st.DroppedTail != 0 {
		t.Fatalf("clean log flagged corrupt: %+v", st)
	}
}
