// Package ctlplane is the always-on tenant control plane: it wraps
// internal/placement's admission/placement machinery in a long-lived
// service with the controller/watcher/store layering of production
// network control planes. Desired tenant state (what was admitted) lives
// in a persistent store (JSONL WAL + snapshot); realized state (ledger
// commitments, fleet slots, materialized VFs) is continuously converged
// toward it by a reconciler that re-places tenants displaced by node
// failures, evacuates drained hosts, and rolls back partial
// materializations — with per-tenant status and bounded retry/backoff.
// Concurrent admissions scale through a sharded two-phase-commit
// subscription ledger, and the whole thing is served northbound over
// HTTP/JSON by the daemon in daemon.go (`ufabsim serve`).
package ctlplane

import (
	"errors"
	"sort"
	"sync"

	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// Config parameterizes a Service.
type Config struct {
	// Oversubscription scales every link's admission budget (default 1.0,
	// the paper's predictability precondition).
	Oversubscription float64
	// SlotsPerHost caps VMs per host (default 8).
	SlotsPerHost int
	// MaxPaths bounds the ledger's per-pair ECMP enumeration (0 = all).
	MaxPaths int
	// Shards is the ledger's lock-partition count (0 = 8).
	Shards int
	// Policy picks VM hosts (default Spread — the service exists to
	// survive failure domains).
	Policy placement.Policy
	// MaxRetries bounds re-placement attempts before eviction (default 5).
	MaxRetries int
	// RetryBackoff is the base re-placement backoff, doubled per retry
	// (default 250 µs).
	RetryBackoff sim.Duration
	// Telemetry, if non-nil, publishes placement.ctl.* counters.
	Telemetry *telemetry.Registry
}

// Decision is the service's verdict on one admit/evaluate call.
type Decision struct {
	Accepted bool `json:"accepted"`
	// Reason explains a rejection: "placement", "headroom",
	// "materialize", "invalid", "duplicate".
	Reason string `json:"reason,omitempty"`
	// Hosts are the (would-be) VM locations.
	Hosts []topo.NodeID `json:"hosts,omitempty"`
}

// Stats are the service's lifetime counters; the reconciler rows are the
// placement.ctl.* satellite metrics.
type Stats struct {
	Admitted, Rejected, Released                                int64
	ReconcileLoops, Displaced, Replacements, Retries, Evictions int64
	Desired, Placed                                             int
}

// Service owns desired tenant state and converges realized state toward
// it. All methods are safe for concurrent use; determinism-sensitive
// callers (experiments) drive it from one goroutine, where iteration
// order is fixed by sorted tenant ids.
type Service struct {
	g      *topo.Graph
	cfg    Config
	ledger *ShardedLedger
	fleet  *placement.Fleet
	store  *Store
	mat    placement.Materializer

	mu       sync.Mutex
	tenants  map[int32]*Tenant
	draining map[topo.NodeID]bool
	// failed is the watcher's view of fabric liveness, maintained
	// event-driven from the flight recorder's dataplane fault events
	// (WatchRecorder) rather than by polling the fabric.
	failed map[topo.NodeID]bool

	admitted, rejected, released                                int64
	reconcileLoops, displaced, replacements, retries, evictions int64
}

// NewService builds the control plane over the graph. store may be nil
// (no persistence — experiments run in-memory); mat may be nil
// (ledger-only operation).
func NewService(g *topo.Graph, store *Store, mat placement.Materializer, cfg Config) *Service {
	if cfg.Oversubscription == 0 {
		cfg.Oversubscription = 1.0
	}
	if cfg.SlotsPerHost == 0 {
		cfg.SlotsPerHost = 8
	}
	if cfg.Policy == nil {
		cfg.Policy = placement.Spread{}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 250 * sim.Microsecond
	}
	return &Service{
		g:        g,
		cfg:      cfg,
		ledger:   NewShardedLedger(g, cfg.MaxPaths, cfg.Shards, cfg.Oversubscription),
		fleet:    placement.NewFleet(g, cfg.SlotsPerHost),
		store:    store,
		mat:      mat,
		tenants:  make(map[int32]*Tenant),
		draining: make(map[topo.NodeID]bool),
		failed:   make(map[topo.NodeID]bool),
	}
}

// WatchRecorder subscribes the watcher to a flight recorder: dataplane
// node-fault events (EvFault on entity "dataplane.node", A = node id,
// B = 1 down / 0 recovered) drive the failed set that Reconcile folds into
// schedulability. Wire it before faults can occur — a subscriber only sees
// events recorded after it registers. With no recorder (nil) the service
// has no failure detection; drains still work.
func (s *Service) WatchRecorder(rec *telemetry.Recorder) {
	rec.Subscribe(func(ev telemetry.Event) {
		// Filter before locking: the subscriber runs inside Record for
		// every event, including ones recorded while s.mu is held (e.g.
		// materialization churn during placeLocked).
		if ev.Kind != telemetry.EvFault || ev.Entity != "dataplane.node" {
			return
		}
		s.mu.Lock()
		if ev.B != 0 {
			s.failed[topo.NodeID(ev.A)] = true
		} else {
			delete(s.failed, topo.NodeID(ev.A))
		}
		s.mu.Unlock()
	})
}

// Ledger exposes the sharded subscription account (read side for the
// auditor's ledger_bound invariant and for experiments).
func (s *Service) Ledger() *ShardedLedger { return s.ledger }

// Fleet exposes the slot-occupancy view.
func (s *Service) Fleet() *placement.Fleet { return s.fleet }

// Store exposes the persistence layer (nil when running in-memory).
func (s *Service) Store() *Store { return s.store }

// Admit decides one tenant request at simulated time nowPS. Accepted
// tenants are realized immediately (ledger committed, fleet slots taken,
// fabric materialized) and recorded as desired state; rejected requests
// leave no trace.
func (s *Service) Admit(req placement.Request, nowPS int64) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.GuaranteeBps <= 0 || req.VMs < 1 {
		return s.rejectLocked("invalid")
	}
	if s.tenants[req.ID] != nil {
		return s.rejectLocked("duplicate")
	}
	t := &Tenant{
		ID:           req.ID,
		GuaranteeBps: req.GuaranteeBps,
		VMs:          req.VMs,
		WeightClass:  req.WeightClass,
		BacklogBytes: req.BacklogBytes,
		Status:       StatusPending,
		UpdatedPS:    nowPS,
	}
	d := s.placeLocked(t, nowPS)
	if !d.Accepted {
		return s.rejectLocked(d.Reason)
	}
	s.tenants[t.ID] = t
	s.persistPutLocked(t)
	s.admitted++
	s.flushLocked()
	return d
}

// Evaluate answers the what-if: would this request be admitted right now,
// and where would it land? Nothing is committed.
func (s *Service) Evaluate(req placement.Request) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.GuaranteeBps <= 0 || req.VMs < 1 {
		return Decision{Reason: "invalid"}
	}
	if s.tenants[req.ID] != nil {
		return Decision{Reason: "duplicate"}
	}
	hosts := s.cfg.Policy.Place(req, s.fleet, s.ledger)
	if len(hosts) != req.VMs {
		return Decision{Reason: "placement"}
	}
	pairs := placement.ChainPairs(hosts)
	links, amounts, err := s.ledger.Evaluate(req.GuaranteeBps, pairs)
	if err != nil {
		return Decision{Reason: "placement"}
	}
	for i, lid := range links {
		budget := s.cfg.Oversubscription * s.g.Link(lid).Capacity
		if s.ledger.CommittedBps(lid)+amounts[i] > budget+1e-9 {
			return Decision{Reason: "headroom"}
		}
	}
	return Decision{Accepted: true, Hosts: hosts}
}

// Release withdraws a tenant: realized state is torn down and the desired
// record deleted. Returns false for an unknown id.
func (s *Service) Release(id int32, nowPS int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[id]
	if t == nil {
		return false
	}
	s.teardownLocked(t)
	delete(s.tenants, id)
	s.persistDeleteLocked(id)
	s.released++
	s.flushLocked()
	return true
}

// Drain cordons a host and marks it for evacuation: no new placements
// land on it, and the next reconcile pass re-places every tenant with a
// VM there. Returns false for a host outside the fleet.
func (s *Service) Drain(h topo.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.fleet.SetUnschedulable(h, true) {
		return false
	}
	s.draining[h] = true
	return true
}

// Uncordon reverses Drain (already-evacuated tenants stay where the
// reconciler put them).
func (s *Service) Uncordon(h topo.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining[h] {
		return false
	}
	delete(s.draining, h)
	// Schedulability is recomputed (failed ∨ drain) next reconcile; clear
	// the drain bit now so admissions between ticks can use the host.
	if !s.failed[h] {
		s.fleet.SetUnschedulable(h, false)
	}
	return true
}

// placeLocked attempts to realize t: policy placement, two-phase ledger
// commit, fabric materialization with rollback. On success t becomes
// Placed. mu must be held.
func (s *Service) placeLocked(t *Tenant, nowPS int64) Decision {
	req := placement.Request{
		ID:           t.ID,
		GuaranteeBps: t.GuaranteeBps,
		VMs:          t.VMs,
		WeightClass:  t.WeightClass,
		BacklogBytes: t.BacklogBytes,
	}
	hosts := s.cfg.Policy.Place(req, s.fleet, s.ledger)
	if len(hosts) != t.VMs {
		return Decision{Reason: "placement"}
	}
	pairs := placement.ChainPairs(hosts)
	if err := s.ledger.Admit(t.ID, t.GuaranteeBps, pairs); err != nil {
		switch {
		case errors.Is(err, ErrHeadroom):
			return Decision{Reason: "headroom"}
		case errors.Is(err, ErrDuplicate):
			return Decision{Reason: "duplicate"}
		default:
			return Decision{Reason: "invalid"}
		}
	}
	if s.mat != nil {
		if !s.mat.AddTenant(s.spec(t, pairs)) {
			s.ledger.Release(t.ID)
			return Decision{Reason: "materialize"}
		}
	}
	s.fleet.Place(hosts)
	t.Hosts = hosts
	t.Status = StatusPlaced
	t.Retries = 0
	t.NotBeforePS = 0
	t.UpdatedPS = nowPS
	return Decision{Accepted: true, Hosts: hosts}
}

// teardownLocked removes t's realized state (ledger, slots, fabric), if
// any. mu must be held.
func (s *Service) teardownLocked(t *Tenant) {
	if t.Status != StatusPlaced {
		return
	}
	if s.mat != nil {
		s.mat.RemoveTenant(t.ID)
	}
	s.ledger.Release(t.ID)
	s.fleet.Release(t.Hosts)
	t.Hosts = nil
}

// spec converts a tenant + chain into the churn surface's tenant spec.
func (s *Service) spec(t *Tenant, pairs []placement.Pair) chaos.TenantSpec {
	sp := chaos.TenantSpec{
		VF:           t.ID,
		GuaranteeBps: t.GuaranteeBps,
		WeightClass:  t.WeightClass,
	}
	for _, p := range pairs {
		sp.Pairs = append(sp.Pairs, chaos.PairSpec{
			Src: p.Src, Dst: p.Dst, BacklogBytes: t.BacklogBytes,
		})
	}
	return sp
}

func (s *Service) rejectLocked(reason string) Decision {
	s.rejected++
	s.flushLocked()
	return Decision{Reason: reason}
}

// Get returns a copy of one tenant record.
func (s *Service) Get(id int32) (Tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[id]
	if t == nil {
		return Tenant{}, false
	}
	return *t, true
}

// TenantList returns copies of every record, sorted by id.
func (s *Service) TenantList() []Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Tenant, 0, len(s.tenants))
	for _, id := range s.sortedIDsLocked() {
		out = append(out, *s.tenants[id])
	}
	return out
}

// StatusCounts returns how many tenants sit in each state.
func (s *Service) StatusCounts() map[TenantStatus]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[TenantStatus]int)
	for _, t := range s.tenants {
		m[t.Status]++
	}
	return m
}

// Stats returns the lifetime counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	placed := 0
	for _, t := range s.tenants {
		if t.Status == StatusPlaced {
			placed++
		}
	}
	return Stats{
		Admitted:       s.admitted,
		Rejected:       s.rejected,
		Released:       s.released,
		ReconcileLoops: s.reconcileLoops,
		Displaced:      s.displaced,
		Replacements:   s.replacements,
		Retries:        s.retries,
		Evictions:      s.evictions,
		Desired:        len(s.tenants),
		Placed:         placed,
	}
}

// Verify recomputes the sharded ledger from the admitted set (quiescent
// callers only).
func (s *Service) Verify() error { return s.ledger.Verify() }

func (s *Service) sortedIDsLocked() []int32 {
	ids := make([]int32, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s *Service) persistPutLocked(t *Tenant) {
	if s.store != nil {
		_ = s.store.Put(*t)
	}
}

func (s *Service) persistDeleteLocked(id int32) {
	if s.store != nil {
		_ = s.store.Delete(id)
	}
}

// flushLocked mirrors the counters into the telemetry registry.
func (s *Service) flushLocked() {
	reg := s.cfg.Telemetry
	if reg == nil {
		return
	}
	set := func(name string, v int64) {
		cnt := reg.Counter(name)
		if d := v - cnt.Value(); d > 0 {
			cnt.Add(d)
		}
	}
	set("placement.ctl.admitted", s.admitted)
	set("placement.ctl.rejected", s.rejected)
	set("placement.ctl.released", s.released)
	set("placement.ctl.reconcile_loops", s.reconcileLoops)
	set("placement.ctl.displaced", s.displaced)
	set("placement.ctl.replacements", s.replacements)
	set("placement.ctl.retries", s.retries)
	set("placement.ctl.evictions", s.evictions)
	placed := 0
	for _, t := range s.tenants {
		if t.Status == StatusPlaced {
			placed++
		}
	}
	reg.Gauge("placement.ctl.desired_tenants").Set(float64(len(s.tenants)))
	reg.Gauge("placement.ctl.placed_tenants").Set(float64(placed))
	reg.Gauge("placement.ctl.max_subscription").SetMax(s.ledger.MaxSubscription())
}
