package ctlplane

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"ufab/internal/audit"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// DaemonConfig parameterizes `ufabsim serve`.
type DaemonConfig struct {
	// Addr is the northbound listen address (default 127.0.0.1:7663).
	Addr string
	// StoreDir is where the WAL + snapshot live ("" = in-memory only).
	StoreDir string
	// Seed drives the fabric and the optional churn generator.
	Seed int64
	// Quantum is how much simulated time advances per wall tick (default
	// 1 ms of sim time).
	Quantum sim.Duration
	// TickEvery is the wall-clock tick period (default 10 ms).
	TickEvery time.Duration
	// ReconcilePeriod is the reconciler's sim-time cadence (default 500 µs).
	ReconcilePeriod sim.Duration
	// Churn, when true, runs an open-loop background tenant workload so
	// the daemon has something to reconcile.
	Churn bool
	// Policy names the placement policy (default "spread").
	Policy string
	// Shards is the ledger partition count (0 = 8).
	Shards int
	// Oversubscription scales the admission budget (0 = 1.0).
	Oversubscription float64
	// SlotsPerHost caps VMs per host (0 = 4).
	SlotsPerHost int
}

// Daemon is the always-on control plane: a simulated Clos fabric advanced
// in wall-clock ticks, the Service reconciling over it, and the
// northbound HTTP API. Every mutation — HTTP handler or timer — runs on
// the single engine goroutine via Do, so the simulation stays
// deterministic and lock-free inside.
type Daemon struct {
	Cfg DaemonConfig

	Eng   *sim.Engine
	Clos  *topo.Clos
	UF    *vfabric.Fabric
	Svc   *Service
	Reg   *telemetry.Registry
	Audit *audit.Log

	ops  chan func()
	quit chan struct{}
	done chan struct{}

	findingsMu   sync.Mutex
	findingsSubs map[chan audit.Finding]struct{}

	rng    *rand.Rand
	nextID int32
	live   []int32 // churn tenants currently admitted
}

// NewDaemon builds the daemon: a 32-host 3-tier Clos fabric with
// telemetry and the auditor attached, the persistent store opened (and
// recovered) from cfg.StoreDir, and the service wired ledger→auditor.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:7663"
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = sim.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	if cfg.ReconcilePeriod <= 0 {
		cfg.ReconcilePeriod = 500 * sim.Microsecond
	}
	if cfg.Policy == "" {
		cfg.Policy = "spread"
	}
	if cfg.SlotsPerHost == 0 {
		cfg.SlotsPerHost = 4
	}
	pol := placement.PolicyByName(cfg.Policy)
	if pol == nil {
		return nil, fmt.Errorf("ctlplane: unknown policy %q", cfg.Policy)
	}

	d := &Daemon{
		Cfg:          cfg,
		Eng:          sim.New(),
		Reg:          telemetry.New(),
		Audit:        &audit.Log{},
		ops:          make(chan func(), 64),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		findingsSubs: make(map[chan audit.Finding]struct{}),
		rng:          rand.New(rand.NewSource(cfg.Seed ^ 0x63746c64)), // "ctld"
		nextID:       1000,
	}
	d.Reg.EnableRecorder(0)
	d.Audit.Subscribe(d.broadcastFinding)

	d.Clos = topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
	ufCfg := vfabric.Config{
		Seed:      cfg.Seed,
		Telemetry: d.Reg,
		Audit:     &audit.Config{Log: d.Audit},
	}
	ufCfg.Core.CleanupPeriod = 5 * sim.Millisecond
	// The daemon's fabric comes from the same construction path as the
	// experiments and fuzzer; the daemon owns the engine loop, so the
	// fabric stays sequential regardless of the pod partition.
	uf, err := vfabric.Build(vfabric.BuildOptions{Graph: d.Clos.Graph, Cfg: ufCfg, Eng: d.Eng})
	if err != nil {
		return nil, fmt.Errorf("ctlplane: build fabric: %w", err)
	}
	d.UF = uf
	d.UF.StartCoreCleanup()

	var store *Store
	if cfg.StoreDir != "" {
		var err error
		if store, err = Open(cfg.StoreDir); err != nil {
			return nil, err
		}
	}
	d.Svc = NewService(d.Clos.Graph, store, d.UF, Config{
		Oversubscription: cfg.Oversubscription,
		SlotsPerHost:     cfg.SlotsPerHost,
		Shards:           cfg.Shards,
		Policy:           pol,
		Telemetry:        d.Reg,
	})
	d.Svc.WatchRecorder(d.Reg.Recorder())
	d.UF.Cfg.Ledger = d.Svc.Ledger()
	if err := d.Svc.Recover(int64(d.Eng.Now())); err != nil {
		return nil, fmt.Errorf("ctlplane: recover: store and ledger disagree: %w", err)
	}
	d.Svc.StartReconciler(d.Eng, cfg.ReconcilePeriod)
	d.UF.StartSampling(250 * sim.Microsecond)
	if cfg.Churn {
		d.Eng.Every(200*sim.Microsecond, d.churnTick)
	}
	return d, nil
}

// churnTick admits/releases one random tenant per tick — enough load that
// the reconciler, auditor and store all have work between API calls.
func (d *Daemon) churnTick() {
	now := int64(d.Eng.Now())
	if len(d.live) < 24 && d.rng.Intn(2) == 0 {
		id := d.nextID
		d.nextID++
		g := []float64{5e8, 1e9, 2e9}[d.rng.Intn(3)]
		dec := d.Svc.Admit(placement.Request{
			ID: id, GuaranteeBps: g, VMs: 2 + d.rng.Intn(2),
			WeightClass: 3, BacklogBytes: 256 << 10,
		}, now)
		if dec.Accepted {
			d.live = append(d.live, id)
		}
	} else if len(d.live) > 0 {
		i := d.rng.Intn(len(d.live))
		d.Svc.Release(d.live[i], now)
		d.live = append(d.live[:i], d.live[i+1:]...)
	}
}

// Do runs f on the engine goroutine and waits for it — the only way HTTP
// handlers may touch the simulation, the service or the registry. Code
// already running on the engine goroutine must call f directly instead.
func (d *Daemon) Do(f func()) {
	doneCh := make(chan struct{})
	select {
	case d.ops <- func() { f(); close(doneCh) }:
	case <-d.quit:
		return
	}
	select {
	case <-doneCh:
	case <-d.done:
	}
}

// Loop is the engine goroutine: wall ticks advance simulated time by one
// quantum, interleaved with serialized API operations. It returns when
// Stop is called.
func (d *Daemon) Loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.Cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case f := <-d.ops:
			f()
		case <-ticker.C:
			d.Eng.RunUntil(d.Eng.Now() + sim.Time(d.Cfg.Quantum))
		case <-d.quit:
			// Drain operations that raced the shutdown.
			for {
				select {
				case f := <-d.ops:
					f()
				default:
					return
				}
			}
		}
	}
}

// Stop terminates the loop. Safe to call more than once.
func (d *Daemon) Stop() {
	select {
	case <-d.quit:
	default:
		close(d.quit)
	}
	<-d.done
	if st := d.Svc.Store(); st != nil {
		_ = st.Snapshot()
		_ = st.Close()
	}
}

// broadcastFinding fans a finding out to the streaming subscribers
// without blocking the auditor (slow subscribers lose events).
func (d *Daemon) broadcastFinding(f audit.Finding) {
	d.findingsMu.Lock()
	for ch := range d.findingsSubs {
		select {
		case ch <- f:
		default:
		}
	}
	d.findingsMu.Unlock()
}

// subscribeFindings registers a streaming findings subscriber; the
// returned cancel must be called when the stream ends.
func (d *Daemon) subscribeFindings() (ch chan audit.Finding, cancel func()) {
	ch = make(chan audit.Finding, 64)
	d.findingsMu.Lock()
	d.findingsSubs[ch] = struct{}{}
	d.findingsMu.Unlock()
	return ch, func() {
		d.findingsMu.Lock()
		delete(d.findingsSubs, ch)
		d.findingsMu.Unlock()
	}
}

// ListenAndServe runs the daemon: engine loop in the background, HTTP in
// the foreground until the listener fails or Stop is called. ready, if
// non-nil, receives the bound address (useful with ":0").
func (d *Daemon) ListenAndServe(ready chan<- string) error {
	ln, err := net.Listen("tcp", d.Cfg.Addr)
	if err != nil {
		return err
	}
	go d.Loop()
	srv := &http.Server{Handler: d.Handler()}
	go func() {
		<-d.quit
		ln.Close()
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	err = srv.Serve(ln)
	select {
	case <-d.quit: // orderly Stop: the listener close is expected
		return nil
	default:
		return err
	}
}
