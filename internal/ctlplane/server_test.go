package ctlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// testDaemon spins a daemon (engine loop running, HTTP via httptest) and
// returns it with its base URL; cleanup stops everything.
func testDaemon(t *testing.T, cfg DaemonConfig) (*Daemon, string) {
	t.Helper()
	cfg.TickEvery = time.Millisecond
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go d.Loop()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Stop()
	})
	return d, srv.URL
}

func postJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

// TestServerEndToEnd drives the full northbound surface over HTTP:
// admit, duplicate-reject, evaluate, inspect, release, drain, ledger
// verification.
func TestServerEndToEnd(t *testing.T) {
	_, base := testDaemon(t, DaemonConfig{Seed: 1})

	var dec Decision
	postJSON(t, base+"/v1/admit", admitBody{ID: 1, GuaranteeBps: 2e9, VMs: 2, WeightClass: 5}, &dec)
	if !dec.Accepted || len(dec.Hosts) != 2 {
		t.Fatalf("admit: %+v", dec)
	}
	// Copy: later decodes into dec would otherwise scribble over the
	// shared backing array.
	placedHosts := append([]topo.NodeID(nil), dec.Hosts...)
	postJSON(t, base+"/v1/admit", admitBody{ID: 1, GuaranteeBps: 1e9, VMs: 1}, &dec)
	if dec.Accepted || dec.Reason != "duplicate" {
		t.Fatalf("duplicate admit: %+v", dec)
	}
	postJSON(t, base+"/v1/evaluate", admitBody{ID: 2, GuaranteeBps: 1e9, VMs: 3}, &dec)
	if !dec.Accepted {
		t.Fatalf("evaluate: %+v", dec)
	}

	var tenants []Tenant
	getJSON(t, base+"/v1/tenants", &tenants)
	if len(tenants) != 1 || tenants[0].Status != StatusPlaced {
		t.Fatalf("tenants: %+v", tenants)
	}
	var one Tenant
	getJSON(t, fmt.Sprintf("%s/v1/tenants/%d", base, 1), &one)
	if !reflect.DeepEqual(one, tenants[0]) {
		t.Fatalf("tenant by id diverged: %+v vs %+v", one, tenants[0])
	}

	var led ledgerReply
	getJSON(t, base+"/v1/ledger", &led)
	if !led.VerifyOK || led.Tenants != 1 {
		t.Fatalf("ledger: %+v", led)
	}

	var fl fleetReply
	getJSON(t, base+"/v1/fleet", &fl)
	if len(fl.Hosts) != 32 {
		t.Fatalf("fleet has %d hosts, want 32", len(fl.Hosts))
	}

	// Drain the tenant's first host; the reconciler (sim time advances in
	// the background loop) must evacuate it.
	postJSON(t, base+"/v1/drain", hostBody{Host: placedHosts[0]}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, fmt.Sprintf("%s/v1/tenants/%d", base, 1), &one)
		moved := one.Status == StatusPlaced
		for _, h := range one.Hosts {
			if h == placedHosts[0] {
				moved = false
			}
		}
		if moved {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never evacuated the drained host: %+v", one)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var st statusReply
	getJSON(t, base+"/v1/status", &st)
	if st.Stats.Displaced == 0 || st.Stats.Replacements == 0 {
		t.Fatalf("status counters missed the evacuation: %+v", st.Stats)
	}

	resp := postJSON(t, base+"/v1/release", idBody{ID: 1}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: HTTP %d", resp.StatusCode)
	}
	getJSON(t, base+"/v1/ledger", &led)
	if !led.VerifyOK || led.Tenants != 0 {
		t.Fatalf("ledger after release: %+v", led)
	}
}

// TestDaemonRestartRecovery: stop a daemon mid-state and start a fresh
// one on the same store directory — the desired set, tenant statuses and
// ledger commitments must all reproduce.
func TestDaemonRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	d1, base1 := testDaemon(t, DaemonConfig{Seed: 1, StoreDir: dir})
	var dec Decision
	for id := int32(1); id <= 3; id++ {
		postJSON(t, base1+"/v1/admit", admitBody{ID: id, GuaranteeBps: 1e9, VMs: 2}, &dec)
		if !dec.Accepted {
			t.Fatalf("admit %d: %+v", id, dec)
		}
	}
	postJSON(t, base1+"/v1/release", idBody{ID: 2}, nil)
	var before []Tenant
	getJSON(t, base1+"/v1/tenants", &before)
	d1.Stop()

	_, base2 := testDaemon(t, DaemonConfig{Seed: 99, StoreDir: dir})
	var after []Tenant
	getJSON(t, base2+"/v1/tenants", &after)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("desired set diverged across restart:\n before %+v\n after  %+v", before, after)
	}
	var led ledgerReply
	getJSON(t, base2+"/v1/ledger", &led)
	if !led.VerifyOK || led.Tenants != 2 {
		t.Fatalf("recovered ledger: %+v", led)
	}
}

// TestServerOpenMetricsEndpoint: GET /metrics serves the registry snapshot
// in OpenMetrics text form — typed families, EOF terminator — suitable for
// a Prometheus-compatible scraper.
func TestServerOpenMetricsEndpoint(t *testing.T) {
	_, base := testDaemon(t, DaemonConfig{Seed: 1})
	var dec Decision
	postJSON(t, base+"/v1/admit", admitBody{ID: 1, GuaranteeBps: 2e9, VMs: 2, WeightClass: 5}, &dec)
	if !dec.Accepted {
		t.Fatalf("admit: %+v", dec)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition not EOF-terminated:\n...%s", text[max(0, len(text)-120):])
	}
	for _, want := range []string{"# TYPE ", "ufab_", `entity="`} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text[:min(len(text), 400)])
		}
	}
}

// fakeHealth is a HealthSource with canned shard counters.
type fakeHealth []sim.ShardHealth

func (f fakeHealth) Health() []sim.ShardHealth { return f }

// TestAppendHealthGauges: shard counters become per-shard gauges on the
// snapshot (the daemon's engine is sequential, so the live endpoint only
// exercises the empty case — the sharded shape is pinned here).
func TestAppendHealthGauges(t *testing.T) {
	snap := telemetry.Snapshot{}
	appendHealthGauges(&snap, fakeHealth{
		{Shard: 0, WindowStalls: 3, SendSpins: 1, Seals: 40, SealNanos: 8000, RingPeak: 12},
		{Shard: 1, Seals: 40},
	})
	if len(snap.Gauges) != 10 {
		t.Fatalf("gauges = %d, want 10 (5 per shard)", len(snap.Gauges))
	}
	byName := map[string]float64{}
	for _, g := range snap.Gauges {
		byName[g.Name] = g.Value
	}
	if byName["simhealth.shard0.window_stalls"] != 3 || byName["simhealth.shard1.window_seals"] != 40 {
		t.Fatalf("gauge values wrong: %v", byName)
	}
	var buf bytes.Buffer
	if err := snap.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `ufab_window_stalls{entity="simhealth.shard0"} 3`) {
		t.Fatalf("health gauge missing from exposition:\n%s", buf.String())
	}
	// A sequential engine contributes nothing.
	n := len(snap.Gauges)
	appendHealthGauges(&snap, sim.New())
	if len(snap.Gauges) != n {
		t.Fatalf("sequential engine added gauges")
	}
}

// TestServerFindingsEndpoint: the findings dump responds with JSONL (the
// daemon's audited fabric usually has none this early — the endpoint must
// still answer cleanly).
func TestServerFindingsEndpoint(t *testing.T) {
	_, base := testDaemon(t, DaemonConfig{Seed: 1})
	resp, err := http.Get(base + "/v1/findings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("findings: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("content type %q", ct)
	}
}
