package ctlplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ufab/internal/placement"
	"ufab/internal/topo"
)

// Sentinel errors Admit wraps so callers can map a failure to an API
// rejection reason without string matching.
var (
	// ErrHeadroom: a link would exceed the oversubscribed admission budget.
	ErrHeadroom = errors.New("headroom")
	// ErrDuplicate: the tenant id already holds (or is acquiring) a
	// commitment.
	ErrDuplicate = errors.New("duplicate tenant")
	// ErrInvalid: malformed request (non-positive guarantee, no pairs).
	ErrInvalid = errors.New("invalid request")
)

// ShardedLedger is the concurrent counterpart of placement.Ledger: the
// same per-link Σ-guarantee subscription account, with the link space
// partitioned into contiguous ranges, one lock per range, and admissions
// committed by a two-phase protocol — prepare reserves headroom on every
// affected shard in ascending shard order (so concurrent admissions never
// deadlock), then commit converts the reservations to commitments, or
// abort returns them. Unlike placement.Ledger it also owns the headroom
// check: prepare fails atomically when any link would exceed
// oversubscription·capacity, so two racing admissions can never jointly
// overshoot a link the way check-then-commit ledgers can.
//
// It implements both placement.LedgerView (policies score candidate hosts
// against it) and vfabric.SubscriptionLedger (the auditor's ledger_bound
// invariant reads it).
type ShardedLedger struct {
	g        *topo.Graph
	maxPaths int
	oversub  float64
	width    int // links per shard
	shards   []ledgerShard

	mu       sync.Mutex // guards tenants + inflight
	tenants  map[int32]*sledgerEntry
	inflight map[int32]bool

	scratch sync.Pool // *deltaScratch
}

// ledgerShard owns the contiguous link range [base, base+len(committed)).
type ledgerShard struct {
	mu        sync.Mutex
	base      int
	committed []float64
	reserved  []float64
}

type sledgerEntry struct {
	guaranteeBps float64
	pairs        []placement.Pair
	links        []topo.LinkID
	amounts      []float64
}

// deltaScratch is the per-call working set of the ECMP path-union delta
// computation, pooled so concurrent Evaluate/Admit calls don't allocate
// two O(links) slices each.
type deltaScratch struct {
	stamp   []int64
	seq     int64
	scratch []float64
	touched []topo.LinkID
}

// NewShardedLedger builds the account over the graph. maxPaths bounds the
// per-pair ECMP enumeration (0 = all equal-cost paths); shards is the
// lock-partition count (0 = 8); oversub scales every link's admission
// budget (0 = 1.0, the paper's predictability precondition). All host-pair
// ECMP path sets are enumerated eagerly so the graph's memoization cache
// is read-only afterwards — the concurrency precondition for Evaluate.
func NewShardedLedger(g *topo.Graph, maxPaths, shards int, oversub float64) *ShardedLedger {
	if shards <= 0 {
		shards = 8
	}
	if oversub == 0 {
		oversub = 1.0
	}
	n := len(g.Links)
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	width := (n + shards - 1) / shards
	s := &ShardedLedger{
		g:        g,
		maxPaths: maxPaths,
		oversub:  oversub,
		width:    width,
		tenants:  make(map[int32]*sledgerEntry),
		inflight: make(map[int32]bool),
	}
	for base := 0; base < n; base += width {
		end := base + width
		if end > n {
			end = n
		}
		s.shards = append(s.shards, ledgerShard{
			base:      base,
			committed: make([]float64, end-base),
			reserved:  make([]float64, end-base),
		})
	}
	s.scratch.New = func() any {
		return &deltaScratch{
			stamp:   make([]int64, n),
			scratch: make([]float64, n),
		}
	}
	// Warm the path cache: enumerate every ordered host pair once, on
	// this goroutine, so concurrent admissions only ever hit the
	// read-only memoized entries.
	var hosts []topo.NodeID
	for _, nd := range g.Nodes {
		if nd.Kind == topo.Host {
			hosts = append(hosts, nd.ID)
		}
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a != b {
				g.Paths(a, b, maxPaths)
			}
		}
	}
	return s
}

// Graph returns the topology the ledger accounts over.
func (s *ShardedLedger) Graph() *topo.Graph { return s.g }

// Shards returns the lock-partition count.
func (s *ShardedLedger) Shards() int { return len(s.shards) }

// shardOf maps a link id to its owning shard index.
func (s *ShardedLedger) shardOf(lid topo.LinkID) int { return int(lid) / s.width }

// delta computes the per-link commitment of (guaranteeBps, pairs) — the
// same path-union dedup as placement.Ledger.delta, against pooled
// scratch. The returned links are sorted ascending (prepare's lock
// order).
func (s *ShardedLedger) delta(guaranteeBps float64, pairs []placement.Pair) ([]topo.LinkID, []float64, error) {
	ds := s.scratch.Get().(*deltaScratch)
	defer s.scratch.Put(ds)
	ds.touched = ds.touched[:0]
	for _, pr := range pairs {
		paths := s.g.Paths(pr.Src, pr.Dst, s.maxPaths)
		if len(paths) == 0 {
			// Reset scratch contributions before bailing.
			for _, lid := range ds.touched {
				ds.scratch[lid] = 0
			}
			return nil, nil, fmt.Errorf("ctlplane: no path %d→%d: %w", pr.Src, pr.Dst, ErrInvalid)
		}
		ds.seq++
		for _, p := range paths {
			for _, lid := range p {
				if ds.stamp[lid] != ds.seq {
					ds.stamp[lid] = ds.seq
					if ds.scratch[lid] == 0 {
						ds.touched = append(ds.touched, lid)
					}
					ds.scratch[lid] += guaranteeBps
				}
			}
		}
	}
	sort.Slice(ds.touched, func(i, j int) bool { return ds.touched[i] < ds.touched[j] })
	links := make([]topo.LinkID, len(ds.touched))
	amounts := make([]float64, len(ds.touched))
	for i, lid := range ds.touched {
		links[i] = lid
		amounts[i] = ds.scratch[lid]
		ds.scratch[lid] = 0
	}
	return links, amounts, nil
}

// Evaluate returns, without committing anything, the links a placement
// would touch and the bps it would add to each. Safe for concurrent use.
// It implements placement.LedgerView.
func (s *ShardedLedger) Evaluate(guaranteeBps float64, pairs []placement.Pair) ([]topo.LinkID, []float64, error) {
	return s.delta(guaranteeBps, pairs)
}

// Admit commits a tenant through the two-phase protocol. On success the
// guarantee is added to every link of each pair's ECMP union; on any
// failure (duplicate id, unroutable pair, headroom exhausted) the ledger
// is untouched. The error wraps ErrDuplicate, ErrInvalid or ErrHeadroom.
func (s *ShardedLedger) Admit(id int32, guaranteeBps float64, pairs []placement.Pair) error {
	if guaranteeBps <= 0 {
		return fmt.Errorf("ctlplane: tenant %d guarantee %v: %w", id, guaranteeBps, ErrInvalid)
	}
	links, amounts, err := s.delta(guaranteeBps, pairs)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.tenants[id] != nil || s.inflight[id] {
		s.mu.Unlock()
		return fmt.Errorf("ctlplane: tenant %d: %w", id, ErrDuplicate)
	}
	s.inflight[id] = true
	s.mu.Unlock()

	// Phase 1 — prepare: walk the sorted link list as contiguous
	// per-shard runs, reserving under each shard's lock. Ascending shard
	// order makes concurrent prepares deadlock-free.
	if hot, ok := s.prepare(links, amounts); !ok {
		s.mu.Lock()
		delete(s.inflight, id)
		s.mu.Unlock()
		return fmt.Errorf("ctlplane: tenant %d link %d over budget: %w", id, hot, ErrHeadroom)
	}
	// Phase 2 — commit: reservations become commitments.
	s.forRuns(links, func(sh *ledgerShard, i, j int) {
		sh.mu.Lock()
		for k := i; k < j; k++ {
			off := int(links[k]) - sh.base
			sh.committed[off] += amounts[k]
			sh.reserved[off] -= amounts[k]
		}
		sh.mu.Unlock()
	})

	e := &sledgerEntry{guaranteeBps: guaranteeBps, links: links, amounts: amounts}
	e.pairs = append(e.pairs, pairs...)
	s.mu.Lock()
	delete(s.inflight, id)
	s.tenants[id] = e
	s.mu.Unlock()
	return nil
}

// prepare reserves headroom for every link; on failure it unreserves
// everything reserved so far and returns the offending link.
func (s *ShardedLedger) prepare(links []topo.LinkID, amounts []float64) (topo.LinkID, bool) {
	prepared := 0 // links successfully reserved
	ok := true
	var hot topo.LinkID
	s.forRuns(links, func(sh *ledgerShard, i, j int) {
		if !ok {
			return
		}
		sh.mu.Lock()
		for k := i; k < j; k++ {
			off := int(links[k]) - sh.base
			budget := s.oversub * s.g.Links[links[k]].Capacity
			if sh.committed[off]+sh.reserved[off]+amounts[k] > budget+1e-9 {
				// Undo this shard's partial reservations before unlocking.
				for u := i; u < k; u++ {
					sh.reserved[int(links[u])-sh.base] -= amounts[u]
				}
				sh.mu.Unlock()
				ok = false
				hot = links[k]
				return
			}
			sh.reserved[off] += amounts[k]
		}
		sh.mu.Unlock()
		prepared = j
	})
	if ok {
		return 0, true
	}
	// Abort: unreserve the fully-prepared prefix.
	s.forRuns(links[:prepared], func(sh *ledgerShard, i, j int) {
		sh.mu.Lock()
		for k := i; k < j; k++ {
			sh.reserved[int(links[k])-sh.base] -= amounts[k]
		}
		sh.mu.Unlock()
	})
	return hot, false
}

// forRuns calls fn once per maximal run links[i:j] owned by a single
// shard. links must be sorted ascending, so shards are visited in
// ascending order.
func (s *ShardedLedger) forRuns(links []topo.LinkID, fn func(sh *ledgerShard, i, j int)) {
	for i := 0; i < len(links); {
		si := s.shardOf(links[i])
		j := i + 1
		for j < len(links) && s.shardOf(links[j]) == si {
			j++
		}
		fn(&s.shards[si], i, j)
		i = j
	}
}

// Release withdraws a tenant's commitment, subtracting exactly the
// amounts Admit added. Returns false for an unknown id.
func (s *ShardedLedger) Release(id int32) bool {
	s.mu.Lock()
	e := s.tenants[id]
	if e == nil {
		s.mu.Unlock()
		return false
	}
	delete(s.tenants, id)
	s.mu.Unlock()
	s.forRuns(e.links, func(sh *ledgerShard, i, j int) {
		sh.mu.Lock()
		for k := i; k < j; k++ {
			off := int(e.links[k]) - sh.base
			sh.committed[off] -= e.amounts[k]
			// Clamp float residue so long churn runs can't drift negative.
			if sh.committed[off] < 0 && sh.committed[off] > -1e-6 {
				sh.committed[off] = 0
			}
		}
		sh.mu.Unlock()
	})
	return true
}

// Has reports whether the tenant currently holds a commitment.
func (s *ShardedLedger) Has(id int32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[id] != nil
}

// Tenants returns the number of tenants currently committed.
func (s *ShardedLedger) Tenants() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// CommittedBps returns the Σ-guarantee currently committed on the link.
// It implements vfabric.SubscriptionLedger and placement.LedgerView.
func (s *ShardedLedger) CommittedBps(lid topo.LinkID) float64 {
	sh := &s.shards[s.shardOf(lid)]
	sh.mu.Lock()
	v := sh.committed[int(lid)-sh.base]
	sh.mu.Unlock()
	return v
}

// Subscription returns the link's committed subscription as a fraction of
// its physical capacity.
func (s *ShardedLedger) Subscription(lid topo.LinkID) float64 {
	return s.CommittedBps(lid) / s.g.Link(lid).Capacity
}

// MaxSubscription returns the highest committed/capacity ratio across all
// links, the fleet's bottleneck subscription.
func (s *ShardedLedger) MaxSubscription() float64 {
	max := 0.0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for off, c := range sh.committed {
			if r := c / s.g.Links[sh.base+off].Capacity; r > max {
				max = r
			}
		}
		sh.mu.Unlock()
	}
	return max
}

// MeanSubscription returns the mean committed/capacity ratio across all
// links — the fleet's committed utilization.
func (s *ShardedLedger) MeanSubscription() float64 {
	if len(s.g.Links) == 0 {
		return 0
	}
	sum := 0.0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for off, c := range sh.committed {
			sum += c / s.g.Links[sh.base+off].Capacity
		}
		sh.mu.Unlock()
	}
	return sum / float64(len(s.g.Links))
}

// Verify recomputes every link's commitment from scratch from the stored
// tenant inputs and compares it with the sharded state; it also checks
// that no reservation leaked (all reserved ≈ 0). Call it quiescent — no
// concurrent Admit/Release — e.g. after a churn drain. Returns the first
// discrepancy (nil when consistent).
func (s *ShardedLedger) Verify() error {
	s.mu.Lock()
	entries := make([]*sledgerEntry, 0, len(s.tenants))
	ids := make([]int32, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		entries = append(entries, s.tenants[id])
	}
	inflight := len(s.inflight)
	s.mu.Unlock()
	if inflight > 0 {
		return fmt.Errorf("ctlplane: verify: %d admission(s) still in flight", inflight)
	}

	full := make([]float64, len(s.g.Links))
	for i, e := range entries {
		links, amounts, err := s.delta(e.guaranteeBps, e.pairs)
		if err != nil {
			return fmt.Errorf("ctlplane: verify: tenant %d: %v", ids[i], err)
		}
		for k, lid := range links {
			full[lid] += amounts[k]
		}
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for off := range sh.committed {
			lid := sh.base + off
			diff := sh.committed[off] - full[lid]
			if diff < 0 {
				diff = -diff
			}
			if tol := 1e-6 * (1 + full[lid]); diff > tol {
				sh.mu.Unlock()
				return fmt.Errorf("ctlplane: verify: link %d sharded %v != recomputed %v",
					lid, sh.committed[off], full[lid])
			}
			if r := sh.reserved[off]; r > 1e-6 || r < -1e-6 {
				sh.mu.Unlock()
				return fmt.Errorf("ctlplane: verify: link %d leaked reservation %v", lid, r)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}
