package ctlplane

import (
	"reflect"
	"testing"

	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/topo"
)

// fakeMat is a Materializer double: it records live specs and can be told
// to refuse the next AddTenant (to exercise rollback).
type fakeMat struct {
	live    map[int32]chaos.TenantSpec
	refuse  bool
	adds    int
	removes int
}

func newFakeMat() *fakeMat { return &fakeMat{live: make(map[int32]chaos.TenantSpec)} }

func (m *fakeMat) AddTenant(spec chaos.TenantSpec) bool {
	if m.refuse {
		return false
	}
	m.adds++
	m.live[spec.VF] = spec
	return true
}

func (m *fakeMat) RemoveTenant(vf int32) bool {
	if _, ok := m.live[vf]; !ok {
		return false
	}
	m.removes++
	delete(m.live, vf)
	return true
}

func testService(t *testing.T, store *Store, mat placement.Materializer) *Service {
	t.Helper()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	return NewService(tb.Graph, store, mat, Config{
		SlotsPerHost: 4,
		MaxPaths:     4,
	})
}

func TestServiceAdmitEvaluateRelease(t *testing.T) {
	mat := newFakeMat()
	s := testService(t, nil, mat)

	ev := s.Evaluate(placement.Request{ID: 1, GuaranteeBps: 2e9, VMs: 2})
	if !ev.Accepted {
		t.Fatalf("evaluate rejected: %s", ev.Reason)
	}
	if s.Stats().Desired != 0 {
		t.Fatal("evaluate must not commit anything")
	}

	d := s.Admit(placement.Request{ID: 1, GuaranteeBps: 2e9, VMs: 2, WeightClass: 5}, 10)
	if !d.Accepted || len(d.Hosts) != 2 {
		t.Fatalf("admit: %+v", d)
	}
	if !reflect.DeepEqual(ev.Hosts, d.Hosts) {
		t.Fatalf("evaluate predicted %v, admit landed %v", ev.Hosts, d.Hosts)
	}
	if mat.adds != 1 {
		t.Fatalf("materialized %d times", mat.adds)
	}
	tn, ok := s.Get(1)
	if !ok || tn.Status != StatusPlaced {
		t.Fatalf("tenant record %+v", tn)
	}
	if dup := s.Admit(placement.Request{ID: 1, GuaranteeBps: 1e9, VMs: 1}, 11); dup.Accepted || dup.Reason != "duplicate" {
		t.Fatalf("duplicate admit: %+v", dup)
	}
	if !s.Release(1, 20) {
		t.Fatal("release failed")
	}
	if mat.removes != 1 || s.Ledger().Tenants() != 0 || s.Fleet().FreeSlots() != 8*4 {
		t.Fatalf("release left state: removes=%d ledger=%d slots=%d",
			mat.removes, s.Ledger().Tenants(), s.Fleet().FreeSlots())
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceMaterializeRollback: when the fabric refuses a spec, the
// ledger commitment and fleet slots must both roll back.
func TestServiceMaterializeRollback(t *testing.T) {
	mat := newFakeMat()
	mat.refuse = true
	s := testService(t, nil, mat)
	d := s.Admit(placement.Request{ID: 1, GuaranteeBps: 1e9, VMs: 2}, 0)
	if d.Accepted || d.Reason != "materialize" {
		t.Fatalf("decision %+v", d)
	}
	if s.Ledger().Tenants() != 0 {
		t.Fatal("ledger commitment leaked")
	}
	if got := s.Fleet().FreeSlots(); got != 8*4 {
		t.Fatalf("fleet slots leaked: %d free", got)
	}
	if s.Stats().Desired != 0 {
		t.Fatal("rejected tenant left a desired record")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceRecover: a fresh service over a reopened store reproduces
// the exact pre-crash desired set, ledger commitments and fleet slots.
func TestServiceRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mat := newFakeMat()
	s := testService(t, st, mat)
	for id := int32(1); id <= 4; id++ {
		if d := s.Admit(placement.Request{ID: id, GuaranteeBps: 1e9, VMs: 2}, int64(id)); !d.Accepted {
			t.Fatalf("admit %d: %+v", id, d)
		}
	}
	s.Release(2, 100)
	before := s.TenantList()
	links := map[topo.LinkID]float64{}
	for lid := range s.g.Links {
		links[topo.LinkID(lid)] = s.Ledger().CommittedBps(topo.LinkID(lid))
	}
	usedBefore := append([]int(nil), s.Fleet().Used...)
	st.Close() // simulated crash: no final snapshot

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mat2 := newFakeMat()
	s2 := testService(t, st2, mat2)
	if err := s2.Recover(200); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := s2.TenantList(); !reflect.DeepEqual(got, before) {
		t.Fatalf("desired set diverged:\n got %+v\nwant %+v", got, before)
	}
	for lid, want := range links {
		if got := s2.Ledger().CommittedBps(lid); got != want {
			t.Fatalf("link %d: recovered %v, want %v", lid, got, want)
		}
	}
	if !reflect.DeepEqual(s2.Fleet().Used, usedBefore) {
		t.Fatalf("fleet slots diverged: %v vs %v", s2.Fleet().Used, usedBefore)
	}
	if mat2.adds != 3 {
		t.Fatalf("re-materialized %d tenants, want 3", mat2.adds)
	}
	if err := s2.Verify(); err != nil {
		t.Fatal(err)
	}
}
