package host

import (
	"testing"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

func starBaseline(n int, scheme Scheme, seed int64) (*sim.Engine, *Fabric, *topo.Star) {
	eng := sim.New()
	st := topo.NewStar(n, topo.Gbps(10), 5*sim.Microsecond)
	f := NewFabric(eng, st.Graph, Config{Scheme: scheme, Seed: seed}, dataplane.Config{})
	return eng, f, st
}

func TestSchemeString(t *testing.T) {
	if PWC.String() != "PicNIC'+WCC+Clove" || ESClove.String() != "ES+Clove" {
		t.Error("Scheme.String wrong")
	}
}

func TestPWCSingleFlowThroughput(t *testing.T) {
	eng, f, st := starBaseline(2, PWC, 1)
	fh := f.AddFlow(1, 10, st.Hosts[0], st.Hosts[1], 0)
	fh.Buffer.Add(1 << 40)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(10 * sim.Millisecond)
	stop()
	f.SampleRates()
	rate := fh.Rate(5*sim.Millisecond, 10*sim.Millisecond)
	if rate < 6e9 {
		t.Fatalf("PWC single flow = %.2f G, want high utilization", rate/1e9)
	}
}

func TestESSingleFlowThroughput(t *testing.T) {
	eng, f, st := starBaseline(2, ESClove, 2)
	fh := f.AddFlow(1, 10, st.Hosts[0], st.Hosts[1], 0)
	fh.Buffer.Add(1 << 40)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(20 * sim.Millisecond)
	stop()
	f.SampleRates()
	rate := fh.Rate(10*sim.Millisecond, 20*sim.Millisecond)
	// ES probes up from its 1G guarantee; with 200 Mbps/RTT AI it
	// should be well above the guarantee by 10 ms.
	if rate < 3e9 {
		t.Fatalf("ES flow = %.2f G, want rate probing above guarantee", rate/1e9)
	}
}

func TestESNeverBelowGuaranteeUnderCongestion(t *testing.T) {
	// Two ES flows with guarantees 2G and 6G into one 10G host: both
	// must at least keep their guarantees (ES's defining property).
	eng, f, st := starBaseline(3, ESClove, 3)
	fa := f.AddFlow(1, 20, st.Hosts[0], st.Hosts[2], 0)
	fb := f.AddFlow(2, 60, st.Hosts[1], st.Hosts[2], 0)
	fa.Buffer.Add(1 << 40)
	fb.Buffer.Add(1 << 40)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(20 * sim.Millisecond)
	stop()
	f.SampleRates()
	ra := fa.Rate(10*sim.Millisecond, 20*sim.Millisecond)
	rb := fb.Rate(10*sim.Millisecond, 20*sim.Millisecond)
	if ra < 0.85*2e9 {
		t.Errorf("flow A = %.2f G, want ≥ guarantee 2 G", ra/1e9)
	}
	if rb < 0.85*6e9 {
		t.Errorf("flow B = %.2f G, want ≥ guarantee 6 G", rb/1e9)
	}
}

func TestESBuildsQueues(t *testing.T) {
	// Oversubscribed ES senders (8+6 > 10G) keep sending at ≥ guarantee
	// even when congested, so the switch queue grows — Fig 11e's
	// pathology.
	eng, f, st := starBaseline(3, ESClove, 4)
	fa := f.AddFlow(1, 60, st.Hosts[0], st.Hosts[2], 0)
	fb := f.AddFlow(2, 60, st.Hosts[1], st.Hosts[2], 0)
	fa.Buffer.Add(1 << 40)
	fb.Buffer.Add(1 << 40)
	eng.RunUntil(10 * sim.Millisecond)
	if q := f.MaxQueueBytes(); q < 100_000 {
		t.Errorf("ES max queue = %d bytes, expected deep queues when guarantees exceed capacity", q)
	}
}

func TestPWCReceiverAdmissionWeighted(t *testing.T) {
	// Two PWC senders (weights 1 and 4) into one host: receiver-driven
	// admission should steer the split toward 1:4.
	eng, f, st := starBaseline(3, PWC, 5)
	fa := f.AddFlow(1, 10, st.Hosts[0], st.Hosts[2], 0)
	fb := f.AddFlow(2, 40, st.Hosts[1], st.Hosts[2], 0)
	fa.Buffer.Add(1 << 40)
	fb.Buffer.Add(1 << 40)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(20 * sim.Millisecond)
	stop()
	f.SampleRates()
	ra := fa.Rate(10*sim.Millisecond, 20*sim.Millisecond)
	rb := fb.Rate(10*sim.Millisecond, 20*sim.Millisecond)
	ratio := rb / ra
	if ratio < 2 {
		t.Errorf("weighted split rb/ra = %.2f, want ≳4 (weighted admission)", ratio)
	}
}

func TestPWCIncastLatencyGrowsWithFanIn(t *testing.T) {
	// Case-1 (Fig 4): PWC's tail RTT grows with the incast degree.
	p99 := func(n int) float64 {
		eng, f, st := starBaseline(n+1, PWC, 7)
		for i := 0; i < n; i++ {
			fh := f.AddFlow(int32(i+1), 5, st.Hosts[i], st.Hosts[n], 0)
			fh.Buffer.Add(1 << 40)
		}
		eng.RunUntil(10 * sim.Millisecond)
		worst := 0.0
		for _, fh := range f.Flows {
			if v := fh.Flow.RTT.P(0.99); v > worst {
				worst = v
			}
		}
		return worst
	}
	small := p99(2)
	large := p99(12)
	if large < 1.5*small {
		t.Errorf("p99 RTT: 12-to-1 = %.1f μs vs 2-to-1 = %.1f μs; want growth with incast degree", large, small)
	}
}

func TestCloveSpreadsFlowlets(t *testing.T) {
	// A single flow over 3 paths with a tiny flowlet gap should use
	// more than one path over time.
	eng := sim.New()
	tt := topo.NewTwoTier(3, 1, topo.Gbps(10), 2*sim.Microsecond)
	f := NewFabric(eng, tt.Graph, Config{
		Scheme:   PWC,
		CloveGap: 36 * sim.Microsecond,
		Seed:     11,
	}, dataplane.Config{})
	fh := f.AddFlow(1, 10, tt.HostsLeft[0], tt.HostsRight[0], 0)
	// On-off traffic to create flowlet gaps.
	var tick func()
	tick = func() {
		if eng.Now() > 5*sim.Millisecond {
			return
		}
		fh.Buffer.Add(30000)
		eng.After(100*sim.Microsecond, tick)
	}
	eng.At(0, tick)
	eng.RunUntil(6 * sim.Millisecond)
	if fh.Flow.lb.Repicks == 0 {
		t.Error("Clove never repicked a path across flowlet gaps")
	}
}

func TestLossRecoveryRequeues(t *testing.T) {
	// Tiny switch buffers force drops; the RTO must requeue so the flow
	// still delivers everything.
	eng := sim.New()
	st := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
	f := NewFabric(eng, st.Graph, Config{Scheme: ESClove, Seed: 13}, dataplane.Config{
		QueueCapBytes: 20000,
	})
	fa := f.AddFlow(1, 50, st.Hosts[0], st.Hosts[2], 0)
	fb := f.AddFlow(2, 50, st.Hosts[1], st.Hosts[2], 0)
	const msg = 3_000_000
	fa.Buffer.Add(msg)
	fb.Buffer.Add(msg)
	eng.RunUntil(60 * sim.Millisecond)
	if f.Net.TotalDrops == 0 {
		t.Skip("no drops induced; cannot exercise recovery")
	}
	if fa.Flow.Delivered != msg || fb.Flow.Delivered != msg {
		t.Fatalf("delivered %d/%d of %d with %d drops (losses %d/%d)",
			fa.Flow.Delivered, fb.Flow.Delivered, msg, f.Net.TotalDrops,
			fa.Flow.Losses, fb.Flow.Losses)
	}
}
