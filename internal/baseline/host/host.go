// Package host wires the baseline schemes onto the simulated dataplane:
// one Agent per host plays the role μFAB-E plays for μFAB, but drives
// either PicNIC′+WCC+Clove (PWC) or ElasticSwitch+Clove (§5.1
// "Alternatives"). Both use Clove's utilization-oriented flowlet load
// balancing fed by explicit path-utilization probes; PWC adds sender WFQ,
// receiver-driven admission grants and the Swift-based weighted window;
// ES+Clove paces each VM-pair at the ElasticSwitch RA rate (never below
// its guarantee) with ECN feedback.
package host

import (
	"fmt"
	"math/rand"

	"ufab/internal/baseline/clove"
	"ufab/internal/baseline/elasticswitch"
	"ufab/internal/baseline/picnic"
	"ufab/internal/baseline/wcc"
	"ufab/internal/dataplane"
	"ufab/internal/flowsrc"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
)

// Scheme selects the baseline combination an Agent runs.
type Scheme uint8

// The two baseline combinations of the evaluation.
const (
	// PWC is PicNIC′ + WCC + Clove.
	PWC Scheme = iota
	// ESClove is ElasticSwitch + Clove.
	ESClove
)

func (s Scheme) String() string {
	if s == PWC {
		return "PicNIC'+WCC+Clove"
	}
	return "ES+Clove"
}

// Config parameterizes a baseline host agent.
type Config struct {
	Scheme Scheme
	// BU converts tokens to bandwidth, bits/s (default 100 Mbps).
	BU float64
	// MTU and AckSize are packet sizes in bytes (1500 / 64).
	MTU, AckSize int
	// TargetUtilization bounds receiver admission (default 0.95).
	TargetUtilization float64
	// WCC configures the PWC transport; its TargetDelay defaults to
	// 1.5× the first path's baseRTT per flow when zero.
	WCC wcc.Config
	// ES configures the ES+Clove rate allocator; MaxRateBps defaults to
	// the uplink capacity.
	ES elasticswitch.Config
	// CloveGap is the flowlet gap (default 200 μs; Fig 5 also uses 36 μs).
	CloveGap sim.Duration
	// UtilProbeInterval is how often active flows refresh per-path
	// utilization for Clove (default 100 μs).
	UtilProbeInterval sim.Duration
	// AdmissionWindow is the PicNIC′ receiver measurement window
	// (default 100 μs).
	AdmissionWindow sim.Duration
	// RTORTTs is the loss-recovery timeout in baseRTTs (default 16).
	RTORTTs int
	// Seed drives Clove tie-breaking.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.BU == 0 {
		c.BU = 100e6
	}
	if c.MTU == 0 {
		c.MTU = 1500
	}
	if c.AckSize == 0 {
		c.AckSize = 64
	}
	if c.TargetUtilization == 0 {
		c.TargetUtilization = 0.95
	}
	if c.CloveGap == 0 {
		c.CloveGap = 200 * sim.Microsecond
	}
	if c.UtilProbeInterval == 0 {
		c.UtilProbeInterval = 100 * sim.Microsecond
	}
	if c.AdmissionWindow == 0 {
		c.AdmissionWindow = 100 * sim.Microsecond
	}
	if c.RTORTTs == 0 {
		c.RTORTTs = 16
	}
}

// FlowConfig describes a VM-pair for AddFlow.
type FlowConfig struct {
	ID dataplane.VMPair
	VF int32
	// Weight is the pair's bandwidth tokens; guarantee = Weight·BU.
	Weight float64
	Dst    topo.NodeID
	Routes []topo.Path
	Demand flowsrc.Source
}

// Flow is the sender-side state of one baseline VM-pair.
type Flow struct {
	ID     dataplane.VMPair
	VF     int32
	Weight float64
	Dst    topo.NodeID

	agent   *Agent
	routes  []topo.Path
	baseRTT []sim.Duration
	lb      *clove.State

	demand flowsrc.Source

	// PWC state.
	wf    *wcc.Flow
	grant float64 // receiver-driven rate cap, bits/s; 0 = uncapped

	// ES state.
	ra *elasticswitch.RA

	inflight int64
	paceNext sim.Time
	seq      uint64

	vservice float64 // WFQ virtual service (normalized bytes)

	lastProgress sim.Time
	rtoArmed     bool

	// Measurements (mirroring ufabe.Pair).
	Delivered int64
	SentBytes int64
	RTT       stats.Samples
	Losses    int
}

// Guarantee returns the flow's minimum-bandwidth guarantee in bits/s.
func (fl *Flow) Guarantee() float64 { return fl.Weight * fl.agent.cfg.BU }

// CurrentPath returns the index of the flowlet's current path.
func (fl *Flow) CurrentPath() int { return fl.lb.Current() }

// Rate returns the transport's current rate view in bits/s: the RA rate
// for ES, cwnd/baseRTT for PWC.
func (fl *Flow) Rate() float64 {
	if fl.agent.cfg.Scheme == ESClove {
		return fl.ra.Rate
	}
	return fl.wf.Cwnd * 8 / fl.baseRTT[fl.lb.Current()].Seconds()
}

type ackMeta struct {
	bytes  int
	sentAt sim.Time
	ecn    bool
	grant  float64
}

type dataMeta struct {
	weight float64
}

type recvState struct {
	weight float64
	bytes  int64
	grant  float64
}

// Agent is a per-host baseline agent; it implements dataplane.Handler.
type Agent struct {
	eng   *sim.Engine
	net   *dataplane.Network
	graph *topo.Graph
	host  topo.NodeID
	cfg   Config
	rng   *rand.Rand

	flows map[dataplane.VMPair]*Flow
	order []*Flow

	nicNextFree sim.Time
	sendTimer   sim.Handle
	timerActive bool
	wakeAt      sim.Time
	uplinkCap   float64

	recv map[dataplane.VMPair]*recvState

	// OnReceive observes data arriving at this host (application hook).
	OnReceive func(vm dataplane.VMPair, bytes int, now sim.Time)
}

// New creates a baseline agent on a host and installs it as the host's
// handler. Receiver-side admission (PWC) starts immediately.
func New(eng *sim.Engine, net *dataplane.Network, hostID topo.NodeID, cfg Config) *Agent {
	cfg.setDefaults()
	g := net.G
	if g.Node(hostID).Kind != topo.Host {
		panic(fmt.Sprintf("baseline/host: node %d is not a host", hostID))
	}
	a := &Agent{
		eng:       eng,
		net:       net,
		graph:     g,
		host:      hostID,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed + int64(hostID)*0x7f4a7c15)),
		flows:     make(map[dataplane.VMPair]*Flow),
		recv:      make(map[dataplane.VMPair]*recvState),
		uplinkCap: g.Link(g.Node(hostID).Out[0]).Capacity,
	}
	net.SetHandler(hostID, a)
	if cfg.Scheme == PWC {
		eng.Every(cfg.AdmissionWindow, a.admissionUpdate)
	}
	return a
}

// Flow returns a sender-side flow by id, or nil.
func (a *Agent) Flow(id dataplane.VMPair) *Flow { return a.flows[id] }

// AddFlow registers a VM-pair and starts its utilization probing.
func (a *Agent) AddFlow(fc FlowConfig) *Flow {
	if len(fc.Routes) == 0 {
		panic("baseline/host: AddFlow without routes")
	}
	fl := &Flow{
		ID:     fc.ID,
		VF:     fc.VF,
		Weight: fc.Weight,
		Dst:    fc.Dst,
		agent:  a,
		routes: fc.Routes,
		demand: fc.Demand,
		lb: clove.New(len(fc.Routes), clove.Config{
			FlowletGap: a.cfg.CloveGap,
			Seed:       a.cfg.Seed + int64(fc.ID),
		}),
	}
	for _, r := range fc.Routes {
		fl.baseRTT = append(fl.baseRTT, a.graph.BaseRTT(r, a.cfg.MTU))
	}
	switch a.cfg.Scheme {
	case PWC:
		wcfg := a.cfg.WCC
		if wcfg.TargetDelay == 0 {
			wcfg = wcc.Defaults(fl.baseRTT[0] * 3 / 2)
		}
		// Greedy initial window: one path BDP — the burst behavior
		// Case-1 (Fig 4) attributes to guarantee-agnostic transports.
		bdp := a.graph.MinCapacity(fc.Routes[0]) * fl.baseRTT[0].Seconds() / 8
		fl.wf = wcc.NewFlow(wcfg, fc.Weight, bdp)
	case ESClove:
		ecfg := a.cfg.ES
		if ecfg.MaxRateBps == 0 {
			ecfg = elasticswitch.Defaults(a.uplinkCap)
		}
		fl.ra = elasticswitch.New(ecfg, fl.Guarantee())
	}
	a.flows[fc.ID] = fl
	a.order = append(a.order, fl)
	if k, ok := fc.Demand.(flowsrc.Kicker); ok {
		k.SetKick(func() { a.scheduleSend() })
	}
	// Clove's explicit utilization feedback loop.
	a.eng.Every(a.cfg.UtilProbeInterval, func() { a.probeUtil(fl) })
	a.probeUtil(fl)
	a.scheduleSend()
	return fl
}

// probeUtil sends one utilization probe per candidate path for an active
// flow (Clove-INT style feedback).
func (a *Agent) probeUtil(fl *Flow) {
	if fl.demand.Pending() == 0 && fl.inflight == 0 {
		return
	}
	for i, route := range fl.routes {
		pp := &probe.Packet{
			Kind:   probe.KindProbe,
			VMPair: uint32(fl.ID),
			PathID: uint16(i),
			SentAt: int64(a.eng.Now()),
		}
		buf, err := pp.Encode(nil)
		if err != nil {
			continue
		}
		a.net.Send(&dataplane.Packet{
			Kind:    dataplane.Probe,
			VMPair:  fl.ID,
			Tenant:  fl.VF,
			Size:    probe.WireSize(0),
			Route:   route,
			SentAt:  a.eng.Now(),
			Payload: buf,
		})
	}
}

// ---- Sending ---------------------------------------------------------------

// wakeup (re)arms the single send timer to fire no later than at. Exactly
// one timer is ever outstanding; an earlier request cancels and replaces a
// later one.
func (a *Agent) wakeup(at sim.Time) {
	if now := a.eng.Now(); at < now {
		at = now
	}
	if a.timerActive {
		if a.wakeAt <= at {
			return
		}
		a.eng.Cancel(a.sendTimer)
	}
	a.timerActive = true
	a.wakeAt = at
	a.sendTimer = a.eng.At(at, func() {
		a.timerActive = false
		a.trySend()
	})
}

func (a *Agent) scheduleSend() { a.wakeup(a.nicNextFree) }

func (fl *Flow) eligible(now sim.Time) bool {
	if fl.demand.Pending() <= 0 {
		return false
	}
	switch fl.agent.cfg.Scheme {
	case PWC:
		if fl.inflight >= int64(fl.wf.Cwnd) {
			return false
		}
		return now >= fl.paceNext // receiver grant pacing
	default: // ESClove: pure rate pacing
		return now >= fl.paceNext
	}
}

// nextEligible picks the eligible flow with the least normalized WFQ
// service (sender-side weighted fair queueing, PicNIC′'s envelope; ES
// flows are rate-paced so the pick order hardly matters).
func (a *Agent) nextEligible(now sim.Time) *Flow {
	var best *Flow
	for _, fl := range a.order {
		if !fl.eligible(now) {
			continue
		}
		if best == nil || fl.vservice < best.vservice {
			best = fl
		}
	}
	return best
}

func (a *Agent) trySend() {
	now := a.eng.Now()
	if now < a.nicNextFree {
		a.scheduleSend()
		return
	}
	fl := a.nextEligible(now)
	if fl == nil {
		// Wake when the earliest paced flow becomes ready.
		var wake sim.Time = -1
		for _, f := range a.order {
			if f.demand.Pending() > 0 && f.paceNext > now {
				if wake < 0 || f.paceNext < wake {
					wake = f.paceNext
				}
			}
		}
		if wake > 0 {
			a.wakeup(wake)
		}
		return
	}
	size := int64(a.cfg.MTU)
	if pend := fl.demand.Pending(); pend < size {
		size = pend
	}
	if a.cfg.Scheme == PWC {
		if room := int64(fl.wf.Cwnd) - fl.inflight; room < size {
			size = room
		}
	}
	if size <= 0 {
		return
	}
	fl.demand.Consume(size)
	fl.inflight += size
	fl.SentBytes += size
	fl.seq++
	fl.lastProgress = now
	a.armRTO(fl)
	path := fl.lb.Pick(now)
	a.net.Send(&dataplane.Packet{
		Kind:   dataplane.Data,
		VMPair: fl.ID,
		Tenant: fl.VF,
		Size:   int(size),
		Seq:    fl.seq,
		Route:  fl.routes[path],
		SentAt: now,
		Meta:   dataMeta{weight: fl.Weight},
	})
	if fl.Weight > 0 {
		fl.vservice += float64(size) / fl.Weight
	}
	// Pacing.
	switch a.cfg.Scheme {
	case PWC:
		if fl.grant > 0 {
			next := now + sim.Duration(float64(size*8)/fl.grant*float64(sim.Second))
			if fl.paceNext < now {
				fl.paceNext = next
			} else {
				fl.paceNext += next - now
			}
		}
	case ESClove:
		gap := sim.Duration(float64(size*8) / fl.ra.Rate * float64(sim.Second))
		if fl.paceNext < now {
			fl.paceNext = now + gap
		} else {
			fl.paceNext += gap
		}
	}
	a.nicNextFree = now + topo.SerializationDelay(int(size), a.uplinkCap)
	a.scheduleSend()
}

// ---- Receiving -------------------------------------------------------------

// HandlePacket implements dataplane.Handler.
func (a *Agent) HandlePacket(pkt *dataplane.Packet) {
	switch pkt.Kind {
	case dataplane.Data:
		a.handleData(pkt)
	case dataplane.Ack:
		a.handleAck(pkt)
	case dataplane.Probe:
		a.handleProbe(pkt)
	case dataplane.Response:
		a.handleUtilResponse(pkt)
	}
}

func (a *Agent) handleData(pkt *dataplane.Packet) {
	now := a.eng.Now()
	if a.OnReceive != nil {
		a.OnReceive(pkt.VMPair, pkt.Size, now)
	}
	var grant float64
	if a.cfg.Scheme == PWC {
		rs := a.recv[pkt.VMPair]
		if rs == nil {
			rs = &recvState{}
			a.recv[pkt.VMPair] = rs
		}
		if dm, ok := pkt.Meta.(dataMeta); ok {
			rs.weight = dm.weight
		}
		rs.bytes += int64(pkt.Size)
		grant = rs.grant
	}
	a.net.Send(&dataplane.Packet{
		Kind:   dataplane.Ack,
		VMPair: pkt.VMPair,
		Tenant: pkt.Tenant,
		Size:   a.cfg.AckSize,
		Route:  a.graph.ReversePath(pkt.Route),
		SentAt: now,
		Meta:   ackMeta{bytes: pkt.Size, sentAt: pkt.SentAt, ecn: pkt.ECN, grant: grant},
	})
}

func (a *Agent) handleAck(pkt *dataplane.Packet) {
	fl := a.flows[pkt.VMPair]
	if fl == nil {
		return
	}
	meta, ok := pkt.Meta.(ackMeta)
	if !ok {
		return
	}
	now := a.eng.Now()
	fl.inflight -= int64(meta.bytes)
	if fl.inflight < 0 {
		fl.inflight = 0
	}
	fl.lastProgress = now
	fl.Delivered += int64(meta.bytes)
	rtt := now - meta.sentAt
	fl.RTT.Add(rtt.Micros())
	switch a.cfg.Scheme {
	case PWC:
		fl.wf.OnAck(now, rtt, meta.bytes)
		fl.grant = meta.grant
	case ESClove:
		fl.ra.OnAck(now, rtt, meta.bytes, meta.ecn)
	}
	if obs, ok := fl.demand.(flowsrc.DeliveryObserver); ok {
		obs.Delivered(int64(meta.bytes), now)
	}
	a.scheduleSend()
}

// handleProbe answers utilization probes at the destination.
func (a *Agent) handleProbe(pkt *dataplane.Packet) {
	pp, _, err := probe.Decode(pkt.Payload)
	if err != nil || pp.Kind != probe.KindProbe {
		return
	}
	resp := pp.ToResponse(0)
	buf, err := resp.Encode(nil)
	if err != nil {
		return
	}
	a.net.Send(&dataplane.Packet{
		Kind:    dataplane.Response,
		VMPair:  pkt.VMPair,
		Tenant:  pkt.Tenant,
		Size:    pkt.Size,
		Route:   a.graph.ReversePath(pkt.Route),
		SentAt:  a.eng.Now(),
		Payload: buf,
	})
}

// handleUtilResponse feeds explicit path utilization into Clove.
func (a *Agent) handleUtilResponse(pkt *dataplane.Packet) {
	fl := a.flows[pkt.VMPair]
	if fl == nil {
		return
	}
	resp, _, err := probe.Decode(pkt.Payload)
	if err != nil || int(resp.PathID) >= len(fl.routes) {
		return
	}
	util := 0.0
	for _, h := range resp.Hops {
		if h.Capacity <= 0 {
			continue
		}
		u := h.TxRate / h.Capacity
		// Queue buildup marks a path hot even before tx saturates.
		u += float64(h.Queue) * 8 / (h.Capacity * fl.baseRTT[resp.PathID].Seconds())
		if u > util {
			util = u
		}
	}
	fl.lb.SetUtil(int(resp.PathID), util)
}

// admissionUpdate runs every AdmissionWindow at PWC receivers: measure
// per-pair demand, grant weighted max-min rates when oversubscribed.
func (a *Agent) admissionUpdate() {
	if len(a.recv) == 0 {
		return
	}
	demands := make([]picnic.Demand, 0, len(a.recv))
	order := make([]*recvState, 0, len(a.recv))
	for _, rs := range a.recv {
		demands = append(demands, picnic.Demand{Weight: rs.weight, Bytes: rs.bytes})
		order = append(order, rs)
		rs.bytes = 0
	}
	grants := picnic.Allocate(a.cfg.TargetUtilization*a.uplinkCap, a.cfg.AdmissionWindow, demands)
	for i, rs := range order {
		if grants == nil {
			rs.grant = 0
		} else {
			rs.grant = grants[i]
		}
	}
}

// ---- Loss recovery ----------------------------------------------------------

func (a *Agent) armRTO(fl *Flow) {
	if fl.rtoArmed {
		return
	}
	fl.rtoArmed = true
	rto := sim.Duration(a.cfg.RTORTTs) * fl.baseRTT[0]
	a.eng.After(rto, func() { a.checkRTO(fl, rto) })
}

func (a *Agent) checkRTO(fl *Flow, rto sim.Duration) {
	fl.rtoArmed = false
	if fl.inflight == 0 {
		return
	}
	now := a.eng.Now()
	if since := now - fl.lastProgress; since < rto {
		fl.rtoArmed = true
		a.eng.After(rto-since, func() { a.checkRTO(fl, rto) })
		return
	}
	fl.Losses++
	if rq, ok := fl.demand.(flowsrc.Requeuer); ok {
		rq.Requeue(fl.inflight)
	}
	fl.inflight = 0
	switch a.cfg.Scheme {
	case PWC:
		fl.wf.OnLoss()
	case ESClove:
		fl.ra.OnLoss(now)
	}
	a.scheduleSend()
}

// Repicks returns how many flowlet-boundary path changes Clove made for
// this flow (the oscillation diagnostic of Fig 5c).
func (fl *Flow) Repicks() int { return fl.lb.Repicks }
