package host

import (
	"fmt"
	"math/rand"

	"ufab/internal/dataplane"
	"ufab/internal/flowsrc"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/ufabc"
)

// Fabric assembles a baseline deployment over a topology, mirroring
// vfabric.Fabric for the alternatives: a baseline Agent per host and a
// μFAB-C telemetry agent per switch (the probes feeding Clove's explicit
// utilization need the informative switches; the baselines simply ignore
// the subscription fields).
type Fabric struct {
	Eng   *sim.Engine
	Graph *topo.Graph
	Net   *dataplane.Network
	Cfg   Config

	Agents map[topo.NodeID]*Agent
	Flows  []*FlowHandle

	// MeterInterval is the per-flow rate meter resolution (default 500 μs).
	MeterInterval sim.Duration

	nextVM dataplane.VMPair
	rng    *rand.Rand
}

// FlowHandle bundles a baseline flow with its demand buffer and meter,
// matching vfabric.Flow's measurement surface.
type FlowHandle struct {
	Flow   *Flow
	Demand flowsrc.Source
	// Buffer is non-nil when the flow was created with AddFlow.
	Buffer *flowsrc.Buffer
	Meter  *stats.RateMeter

	lastDelivered int64
}

// Rate returns acknowledged throughput in bits/s averaged over [from, to].
func (fh *FlowHandle) Rate(from, to sim.Time) float64 {
	return fh.Meter.Series.MeanOver(from, to)
}

// NewFabric builds the baseline deployment. dpCfg.ECNThresholdBytes
// defaults to 65 MTUs (the usual DCTCP-style marking point) because
// ElasticSwitch's rate probing needs ECN.
func NewFabric(eng *sim.Engine, g *topo.Graph, cfg Config, dpCfg dataplane.Config) *Fabric {
	cfg.setDefaults()
	if dpCfg.ECNThresholdBytes == 0 {
		dpCfg.ECNThresholdBytes = 65 * cfg.MTU
	}
	f := &Fabric{
		Eng:           eng,
		Graph:         g,
		Net:           dataplane.New(eng, g, dpCfg),
		Cfg:           cfg,
		Agents:        make(map[topo.NodeID]*Agent),
		MeterInterval: 500 * sim.Microsecond,
		rng:           rand.New(rand.NewSource(cfg.Seed ^ 0x626c6662)),
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case topo.Switch:
			f.Net.SetSwitchAgent(n.ID, ufabc.New(ufabc.Config{}))
		case topo.Host:
			f.Agents[n.ID] = New(eng, f.Net, n.ID, cfg)
		}
	}
	return f
}

// AddFlow creates a VM-pair with the given token weight (guarantee =
// weight·BU) using up to maxPaths equal-cost paths (0 = all, as Clove
// spreads over every equivalent path).
func (f *Fabric) AddFlow(vf int32, weight float64, src, dst topo.NodeID, maxPaths int) *FlowHandle {
	buf := &flowsrc.Buffer{}
	fh := f.AddFlowDemand(vf, weight, src, dst, maxPaths, buf)
	fh.Buffer = buf
	return fh
}

// AddFlowDemand is AddFlow with a caller-supplied demand source.
func (f *Fabric) AddFlowDemand(vf int32, weight float64, src, dst topo.NodeID, maxPaths int, demand flowsrc.Source) *FlowHandle {
	if maxPaths <= 0 {
		maxPaths = 8
	}
	all := f.Graph.Paths(src, dst, 8*maxPaths)
	if len(all) == 0 {
		panic(fmt.Sprintf("baseline/host: no path %d→%d", src, dst))
	}
	if len(all) > maxPaths {
		f.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		all = all[:maxPaths]
	}
	return f.AddFlowRoutes(vf, weight, all, demand)
}

// AddFlowRoutes creates a flow over an explicit candidate-path set.
func (f *Fabric) AddFlowRoutes(vf int32, weight float64, routes []topo.Path, demand flowsrc.Source) *FlowHandle {
	src := f.Graph.PathSrc(routes[0])
	dst := f.Graph.PathDst(routes[0])
	f.nextVM++
	fl := f.Agents[src].AddFlow(FlowConfig{
		ID:     f.nextVM,
		VF:     vf,
		Weight: weight,
		Dst:    dst,
		Routes: routes,
		Demand: demand,
	})
	fh := &FlowHandle{
		Flow:   fl,
		Demand: demand,
		Meter:  stats.NewRateMeter(fmt.Sprintf("bl-vf%d-%d", vf, f.nextVM), f.MeterInterval),
	}
	f.Flows = append(f.Flows, fh)
	return fh
}

// SampleRates flushes flow meters up to now.
func (f *Fabric) SampleRates() {
	now := f.Eng.Now()
	for _, fh := range f.Flows {
		d := fh.Flow.Delivered
		if delta := d - fh.lastDelivered; delta > 0 {
			fh.Meter.Add(now, int(delta))
			fh.lastDelivered = d
		}
		fh.Meter.Flush(now)
	}
}

// StartSampling arranges for SampleRates to run every interval.
func (f *Fabric) StartSampling(interval sim.Duration) (stop func()) {
	return f.Eng.Every(interval, f.SampleRates)
}

// MaxQueueBytes returns the largest switch egress queue high-water mark.
func (f *Fabric) MaxQueueBytes() int {
	max := 0
	for i := range f.Net.Ports {
		p := &f.Net.Ports[i]
		if f.Graph.Node(p.Link.Src).Kind != topo.Switch {
			continue
		}
		if p.MaxQueueBytes > max {
			max = p.MaxQueueBytes
		}
	}
	return max
}
