package elasticswitch

import (
	"testing"
	"testing/quick"

	"ufab/internal/sim"
)

func TestStartsAtGuarantee(t *testing.T) {
	ra := New(Defaults(10e9), 2e9)
	if ra.Rate != 2e9 {
		t.Fatalf("initial rate = %v", ra.Rate)
	}
}

func TestNeverBelowGuarantee(t *testing.T) {
	ra := New(Defaults(10e9), 2e9)
	rtt := 24 * sim.Microsecond
	now := sim.Time(0)
	// Persistent congestion: the rate converges to the guarantee but
	// never below it — ElasticSwitch's defining (queue-building)
	// behavior.
	for i := 0; i < 100; i++ {
		now += sim.Time(rtt)
		ra.OnAck(now, rtt, 1500, true)
		if ra.Rate < 2e9 {
			t.Fatalf("rate %v fell below guarantee", ra.Rate)
		}
	}
	if ra.Rate > 2.01e9 {
		t.Fatalf("rate = %v, want converged to guarantee", ra.Rate)
	}
}

func TestProbesUpWhenUncongested(t *testing.T) {
	ra := New(Defaults(10e9), 1e9)
	rtt := 24 * sim.Microsecond
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		now += sim.Time(rtt)
		ra.OnAck(now, rtt, 1500, false)
	}
	if ra.Rate < 5e9 {
		t.Fatalf("rate = %v, want substantial growth", ra.Rate)
	}
	if ra.Rate > 10e9 {
		t.Fatalf("rate = %v exceeds cap", ra.Rate)
	}
}

func TestOneDecreasePerRTT(t *testing.T) {
	ra := New(Defaults(10e9), 1e9)
	ra.Rate = 8e9
	rtt := 24 * sim.Microsecond
	ra.OnAck(sim.Millisecond, rtt, 1500, true)
	after := ra.Rate
	ra.OnAck(sim.Millisecond+sim.Microsecond, rtt, 1500, true)
	if ra.Rate != after {
		t.Fatalf("second decrease within an RTT: %v -> %v", after, ra.Rate)
	}
}

func TestSetGuaranteeRaisesFloor(t *testing.T) {
	ra := New(Defaults(10e9), 1e9)
	ra.SetGuarantee(4e9)
	if ra.Rate != 4e9 {
		t.Fatalf("rate after floor raise = %v", ra.Rate)
	}
}

func TestOnLoss(t *testing.T) {
	ra := New(Defaults(10e9), 2e9)
	ra.Rate = 10e9
	ra.OnLoss(0)
	if ra.Rate != 2e9+8e9*0.5 {
		t.Fatalf("rate after loss = %v", ra.Rate)
	}
}

// Property: the rate always stays in [guarantee, max] for any feedback
// sequence.
func TestRateBoundsProperty(t *testing.T) {
	f := func(events []bool) bool {
		ra := New(Defaults(10e9), 1.5e9)
		now := sim.Time(0)
		rtt := 30 * sim.Microsecond
		for _, congested := range events {
			now += sim.Time(rtt)
			ra.OnAck(now, rtt, 1500, congested)
			if ra.Rate < 1.5e9 || ra.Rate > 10e9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
