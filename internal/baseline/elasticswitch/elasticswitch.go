// Package elasticswitch implements the Rate Allocation (RA) half of
// ElasticSwitch [Popa et al., SIGCOMM'13] as the paper's ES+Clove baseline
// uses it: every VM-pair sends at least its minimum-bandwidth guarantee
// (GP, shared with μFAB via internal/token) and probes for spare capacity
// with a TCP-like rate AIMD driven by ECN congestion feedback. Crucially,
// the rate never drops below the guarantee even when the network is
// congested — which is why ES+Clove keeps its guarantees in Fig 11 but
// builds deep queues in Fig 11e.
package elasticswitch

import "ufab/internal/sim"

// Config holds the RA constants.
type Config struct {
	// AIBps is the additive rate increase per RTT when uncongested.
	AIBps float64
	// Beta is the multiplicative decrease applied to the above-guarantee
	// headroom on congestion.
	Beta float64
	// MaxRateBps caps the rate (the path line rate).
	MaxRateBps float64
}

// Defaults returns the constants used in the evaluation.
func Defaults(maxRate float64) Config {
	return Config{AIBps: 200e6, Beta: 0.5, MaxRateBps: maxRate}
}

// RA is one VM-pair's rate allocation state.
type RA struct {
	cfg Config
	// Guarantee is the pair's minimum bandwidth in bits/s (from GP).
	Guarantee float64
	// Rate is the current sending rate in bits/s.
	Rate         float64
	lastDecrease sim.Time
}

// New returns an RA starting at the guarantee.
func New(cfg Config, guarantee float64) *RA {
	ra := &RA{cfg: cfg, Guarantee: guarantee, Rate: guarantee}
	ra.clamp()
	return ra
}

// SetGuarantee updates the guarantee when GP reassigns tokens.
func (ra *RA) SetGuarantee(g float64) {
	ra.Guarantee = g
	ra.clamp()
}

func (ra *RA) clamp() {
	if ra.Rate < ra.Guarantee {
		ra.Rate = ra.Guarantee
	}
	if ra.cfg.MaxRateBps > 0 && ra.Rate > ra.cfg.MaxRateBps {
		ra.Rate = ra.cfg.MaxRateBps
	}
}

// OnAck advances the rate from one acknowledgment: congestion (ECN echo)
// multiplicatively shrinks only the headroom above the guarantee, at most
// once per RTT; otherwise the rate grows additively (rate-probing for
// work conservation).
func (ra *RA) OnAck(now sim.Time, rtt sim.Duration, acked int, congested bool) {
	if congested {
		if now-ra.lastDecrease >= rtt {
			ra.Rate = ra.Guarantee + (ra.Rate-ra.Guarantee)*(1-ra.cfg.Beta)
			ra.lastDecrease = now
		}
	} else {
		// Per-ack share of the per-RTT additive increase.
		bdp := ra.Rate * rtt.Seconds() / 8
		if bdp > 0 {
			ra.Rate += ra.cfg.AIBps * float64(acked) / 8 / bdp
		}
	}
	ra.clamp()
}

// OnLoss reacts to a retransmission timeout like congestion.
func (ra *RA) OnLoss(now sim.Time) {
	ra.Rate = ra.Guarantee + (ra.Rate-ra.Guarantee)*(1-ra.cfg.Beta)
	ra.lastDecrease = now
	ra.clamp()
}
