package wcc

import (
	"testing"
	"testing/quick"

	"ufab/internal/sim"
)

func cfg() Config { return Defaults(36 * sim.Microsecond) }

func TestIncreaseBelowTarget(t *testing.T) {
	f := NewFlow(cfg(), 1, 10000)
	before := f.Cwnd
	f.OnAck(0, 24*sim.Microsecond, 1500)
	if f.Cwnd <= before {
		t.Fatalf("cwnd did not grow: %v -> %v", before, f.Cwnd)
	}
}

func TestWeightScalesIncrease(t *testing.T) {
	f1 := NewFlow(cfg(), 1, 10000)
	f5 := NewFlow(cfg(), 5, 10000)
	f1.OnAck(0, 24*sim.Microsecond, 1500)
	f5.OnAck(0, 24*sim.Microsecond, 1500)
	d1 := f1.Cwnd - 10000
	d5 := f5.Cwnd - 10000
	if d5 < 4.9*d1 || d5 > 5.1*d1 {
		t.Fatalf("weighted increase ratio = %v, want ≈5", d5/d1)
	}
}

func TestDecreaseAboveTarget(t *testing.T) {
	f := NewFlow(cfg(), 1, 10000)
	f.OnAck(sim.Millisecond, 72*sim.Microsecond, 1500)
	if f.Cwnd >= 10000 {
		t.Fatalf("cwnd did not shrink: %v", f.Cwnd)
	}
	// Decrease proportional to delay excess, capped at MaxMDF.
	if f.Cwnd < 10000*(1-cfg().MaxMDF)-1 {
		t.Fatalf("decrease exceeded MaxMDF: %v", f.Cwnd)
	}
}

func TestOneDecreasePerRTT(t *testing.T) {
	f := NewFlow(cfg(), 1, 10000)
	rtt := 72 * sim.Microsecond
	f.OnAck(sim.Millisecond, rtt, 1500)
	after1 := f.Cwnd
	// A second congested ack within the same RTT must not decrease again.
	f.OnAck(sim.Millisecond+10*sim.Microsecond, rtt, 1500)
	if f.Cwnd != after1 {
		t.Fatalf("second decrease within one RTT: %v -> %v", after1, f.Cwnd)
	}
	// After an RTT it may decrease again.
	f.OnAck(sim.Millisecond+rtt, rtt, 1500)
	if f.Cwnd >= after1 {
		t.Fatalf("no decrease after an RTT: %v", f.Cwnd)
	}
}

func TestClamp(t *testing.T) {
	c := cfg()
	f := NewFlow(c, 1, 100)
	if f.Cwnd != c.MinCwnd {
		t.Fatalf("initial clamp: %v", f.Cwnd)
	}
	f.OnLoss()
	if f.Cwnd != c.MinCwnd {
		t.Fatalf("loss clamp: %v", f.Cwnd)
	}
	g := NewFlow(c, 1, 1e12)
	if g.Cwnd != c.MaxCwnd {
		t.Fatalf("max clamp: %v", g.Cwnd)
	}
}

func TestOnLossHalves(t *testing.T) {
	f := NewFlow(cfg(), 1, 10000)
	f.OnLoss()
	if f.Cwnd != 5000 {
		t.Fatalf("OnLoss cwnd = %v, want 5000", f.Cwnd)
	}
}

// Property: the window always stays within [MinCwnd, MaxCwnd] under any
// ack sequence.
func TestBoundsProperty(t *testing.T) {
	c := cfg()
	fn := func(rtts []uint16, seed int64) bool {
		f := NewFlow(c, 2, 20000)
		now := sim.Time(0)
		for _, r := range rtts {
			now += 10 * sim.Microsecond
			rtt := sim.Duration(r%200+1) * sim.Microsecond
			f.OnAck(now, rtt, 1500)
			if f.Cwnd < c.MinCwnd || f.Cwnd > c.MaxCwnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
