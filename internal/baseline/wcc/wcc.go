// Package wcc implements Weighted Congestion Control in the style the
// paper evaluates (§2.2, §5): a Swift-like delay-based window algorithm
// [Kumar et al., SIGCOMM'20] whose additive increase is scaled by a
// per-source weight, as Seawall-family bandwidth allocators do. It is the
// transport inside the PicNIC′+WCC+Clove (PWC) baseline.
//
// The package is a pure state machine — the host agent feeds it ACK
// events and reads the congestion window — so its convergence behavior is
// unit-testable without a network.
package wcc

import "ufab/internal/sim"

// Config holds the algorithm constants.
type Config struct {
	// TargetDelay is the end-to-end delay target; below it the window
	// grows, above it the window shrinks (Swift's base target).
	TargetDelay sim.Duration
	// AI is the additive increase in bytes per RTT per unit weight.
	AI float64
	// Beta scales the multiplicative decrease with the relative delay
	// excess (Swift's β).
	Beta float64
	// MaxMDF caps the per-RTT multiplicative decrease factor.
	MaxMDF float64
	// MinCwnd and MaxCwnd bound the window in bytes.
	MinCwnd, MaxCwnd float64
}

// Defaults returns the constants used by the evaluation: Swift's β = 0.8,
// max decrease 0.5, AI of one MTU per RTT per unit weight.
func Defaults(targetDelay sim.Duration) Config {
	return Config{
		TargetDelay: targetDelay,
		AI:          1500,
		Beta:        0.8,
		MaxMDF:      0.5,
		MinCwnd:     1500,
		MaxCwnd:     64 << 20,
	}
}

// Flow is one weighted flow's congestion state.
type Flow struct {
	cfg    Config
	Weight float64
	Cwnd   float64 // bytes
	// lastDecrease enforces at most one multiplicative decrease per RTT.
	lastDecrease sim.Time
}

// NewFlow returns a flow with the given weight and initial window.
func NewFlow(cfg Config, weight, initialCwnd float64) *Flow {
	f := &Flow{cfg: cfg, Weight: weight, Cwnd: initialCwnd}
	f.clamp()
	return f
}

func (f *Flow) clamp() {
	if f.Cwnd < f.cfg.MinCwnd {
		f.Cwnd = f.cfg.MinCwnd
	}
	if f.Cwnd > f.cfg.MaxCwnd {
		f.Cwnd = f.cfg.MaxCwnd
	}
}

// OnAck updates the window from one acknowledgment: rtt is the measured
// delay, acked the bytes covered. Increase is weighted additive
// (AI·weight per RTT, spread per-ack); decrease is multiplicative in the
// relative delay excess, at most once per RTT — the slow, heuristic
// evolution the paper contrasts with μFAB's jump-to-target.
func (f *Flow) OnAck(now sim.Time, rtt sim.Duration, acked int) {
	if rtt <= f.cfg.TargetDelay {
		f.Cwnd += f.cfg.AI * f.Weight * float64(acked) / f.Cwnd
	} else if now-f.lastDecrease >= rtt {
		excess := float64(rtt-f.cfg.TargetDelay) / float64(rtt)
		md := f.cfg.Beta * excess
		if md > f.cfg.MaxMDF {
			md = f.cfg.MaxMDF
		}
		f.Cwnd *= 1 - md
		f.lastDecrease = now
	}
	f.clamp()
}

// OnLoss halves the window (retransmission-timeout response).
func (f *Flow) OnLoss() {
	f.Cwnd *= 0.5
	f.clamp()
}
