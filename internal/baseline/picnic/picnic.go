// Package picnic implements the bandwidth-envelope components of PicNIC
// [Kumar et al., SIGCOMM'19] that the paper compares against as PicNIC′
// (§2.2): sender-side weighted fair queueing plus receiver-driven
// admission control, similar to EyeQ. The receiver measures each incoming
// VM-pair's demand over a short window and, when the aggregate exceeds the
// target downlink capacity, grants per-pair rates by weighted max-min fair
// sharing; the grants travel back on acknowledgments.
//
// PicNIC′ guarantees performance at the edge but is blind to fabric
// congestion — the limitation the informative core removes.
package picnic

import (
	"ufab/internal/sim"
	"ufab/internal/stats"
)

// Demand is one incoming VM-pair's measured state at the receiver.
type Demand struct {
	// Weight is the pair's share weight (bandwidth tokens).
	Weight float64
	// Bytes is the payload received in the current window.
	Bytes int64
}

// Allocate computes per-pair rate grants in bits/s given the receiver's
// target capacity and each pair's measured demand over the window. It
// returns nil when the aggregate fits under the capacity (no admission
// needed — senders stay uncapped).
func Allocate(capacityBps float64, window sim.Duration, demands []Demand) []float64 {
	if len(demands) == 0 {
		return nil
	}
	total := 0.0
	rates := make([]float64, len(demands))
	weights := make([]float64, len(demands))
	flows := make([]int, len(demands))
	for i, d := range demands {
		rates[i] = float64(d.Bytes*8) / window.Seconds()
		weights[i] = d.Weight
		flows[i] = i
		total += rates[i]
	}
	if total <= capacityBps {
		return nil
	}
	// Weighted max-min of the capacity among the active pairs; demand
	// does not cap the grant (a pair may ramp up next window).
	unbounded := make([]float64, len(demands))
	for i := range unbounded {
		unbounded[i] = -1
	}
	return stats.Waterfill(weights, unbounded, []stats.WaterfillLink{
		{Capacity: capacityBps, Flows: flows},
	})
}
