package picnic

import (
	"math"
	"testing"

	"ufab/internal/sim"
)

const win = 100 * sim.Microsecond

// bytesFor returns the window byte count corresponding to a rate.
func bytesFor(bps float64) int64 { return int64(bps * win.Seconds() / 8) }

func TestNoAdmissionUnderCapacity(t *testing.T) {
	grants := Allocate(10e9, win, []Demand{
		{Weight: 1, Bytes: bytesFor(2e9)},
		{Weight: 1, Bytes: bytesFor(3e9)},
	})
	if grants != nil {
		t.Fatalf("grants = %v, want nil under capacity", grants)
	}
}

func TestWeightedGrantsWhenOversubscribed(t *testing.T) {
	grants := Allocate(9.5e9, win, []Demand{
		{Weight: 1, Bytes: bytesFor(8e9)},
		{Weight: 4, Bytes: bytesFor(8e9)},
	})
	if grants == nil {
		t.Fatal("no grants despite oversubscription")
	}
	if math.Abs(grants[0]-9.5e9/5) > 1e6 {
		t.Errorf("grant[0] = %v, want 1.9G", grants[0])
	}
	if math.Abs(grants[1]-4*9.5e9/5) > 1e6 {
		t.Errorf("grant[1] = %v, want 7.6G", grants[1])
	}
}

func TestEmptyDemands(t *testing.T) {
	if Allocate(10e9, win, nil) != nil {
		t.Fatal("empty demands must return nil")
	}
}

func TestGrantsSumToCapacity(t *testing.T) {
	demands := []Demand{
		{Weight: 1, Bytes: bytesFor(5e9)},
		{Weight: 2, Bytes: bytesFor(5e9)},
		{Weight: 3, Bytes: bytesFor(5e9)},
	}
	grants := Allocate(9e9, win, demands)
	sum := 0.0
	for _, g := range grants {
		sum += g
	}
	if math.Abs(sum-9e9) > 1e6 {
		t.Fatalf("grants sum = %v, want 9e9", sum)
	}
}
