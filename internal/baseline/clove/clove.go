// Package clove implements the utilization-oriented flowlet load
// balancing of Clove [Katta et al., CoNEXT'17] as the paper's baselines
// use it (§2.2): traffic is split at flowlet granularity — a new flowlet
// starts after an idle gap — and each new flowlet is steered to the
// candidate path with the lowest explicit utilization.
//
// Clove is deliberately guarantee-agnostic: it sees link *utilization*,
// not bandwidth *subscription*, which is exactly the failure mode Case-2
// (Fig 5) demonstrates.
package clove

import (
	"math/rand"

	"ufab/internal/sim"
)

// Config parameterizes a flowlet state.
type Config struct {
	// FlowletGap is the idle gap that opens a new flowlet. The paper
	// evaluates the recommended 200 μs and an aggressive 36 μs
	// (1.5 × baseRTT).
	FlowletGap sim.Duration
	// Seed drives random tie-breaking among equally utilized paths.
	Seed int64
}

// State tracks one flow's flowlet and per-path utilization knowledge.
type State struct {
	cfg      Config
	utils    []float64
	haveUtil []bool
	current  int
	lastSend sim.Time
	started  bool
	rng      *rand.Rand
	// Repicks counts flowlet-boundary path decisions (oscillation
	// diagnostics for Fig 5c).
	Repicks int
}

// New returns a state over nPaths candidate paths.
func New(nPaths int, cfg Config) *State {
	if nPaths < 1 {
		panic("clove: need at least one path")
	}
	s := &State{
		cfg:      cfg,
		utils:    make([]float64, nPaths),
		haveUtil: make([]bool, nPaths),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	s.current = s.rng.Intn(nPaths)
	return s
}

// SetUtil records a path's observed utilization (0..1+), e.g. from an
// INT/ECN feedback loop.
func (s *State) SetUtil(path int, util float64) {
	s.utils[path] = util
	s.haveUtil[path] = true
}

// Util returns the last recorded utilization of a path.
func (s *State) Util(path int) float64 { return s.utils[path] }

// Current returns the path of the ongoing flowlet.
func (s *State) Current() int { return s.current }

// Pick returns the path for a packet sent at now. A packet following an
// idle gap longer than FlowletGap starts a new flowlet, which is steered
// to the least-utilized path (random among ties within 1%).
func (s *State) Pick(now sim.Time) int {
	if s.started && now-s.lastSend <= s.cfg.FlowletGap {
		s.lastSend = now
		return s.current
	}
	s.lastSend = now
	s.started = true
	best := -1
	for i := range s.utils {
		if !s.haveUtil[i] {
			continue
		}
		switch {
		case best == -1 || s.utils[i] < s.utils[best]-0.01:
			best = i
		case s.utils[i] <= s.utils[best]+0.01 && s.rng.Intn(2) == 0:
			best = i
		}
	}
	if best == -1 {
		best = s.rng.Intn(len(s.utils))
	}
	if best != s.current {
		s.Repicks++
	}
	s.current = best
	return s.current
}
