package clove

import (
	"testing"

	"ufab/internal/sim"
)

func gap() Config { return Config{FlowletGap: 200 * sim.Microsecond, Seed: 1} }

func TestSameFlowletSticksToPath(t *testing.T) {
	s := New(3, gap())
	s.SetUtil(0, 0.9)
	s.SetUtil(1, 0.1)
	s.SetUtil(2, 0.5)
	first := s.Pick(0)
	if first != 1 {
		t.Fatalf("first pick = %d, want least-utilized 1", first)
	}
	// Packets inside the gap stay on the same path even if utilization
	// flips.
	s.SetUtil(1, 1.0)
	for i := 1; i <= 5; i++ {
		if p := s.Pick(sim.Time(i) * 10 * sim.Microsecond); p != first {
			t.Fatalf("mid-flowlet repick to %d", p)
		}
	}
}

func TestNewFlowletRepicks(t *testing.T) {
	s := New(2, gap())
	s.SetUtil(0, 0.2)
	s.SetUtil(1, 0.8)
	if p := s.Pick(0); p != 0 {
		t.Fatalf("pick = %d", p)
	}
	// Idle beyond the gap, with utilization inverted: new flowlet moves.
	s.SetUtil(0, 0.9)
	s.SetUtil(1, 0.1)
	if p := s.Pick(500 * sim.Microsecond); p != 1 {
		t.Fatalf("new flowlet pick = %d, want 1", p)
	}
	if s.Repicks == 0 {
		t.Error("Repicks not counted")
	}
}

func TestUnknownUtilizationRandom(t *testing.T) {
	s := New(4, gap())
	p := s.Pick(0)
	if p < 0 || p >= 4 {
		t.Fatalf("pick out of range: %d", p)
	}
}

func TestUtilAccessors(t *testing.T) {
	s := New(2, gap())
	s.SetUtil(1, 0.42)
	if s.Util(1) != 0.42 {
		t.Fatalf("Util = %v", s.Util(1))
	}
	if s.Current() < 0 || s.Current() > 1 {
		t.Fatalf("Current = %d", s.Current())
	}
}

func TestNewPanicsOnZeroPaths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, gap())
}

func TestOscillationUnderSmallGap(t *testing.T) {
	// With a tiny flowlet gap and utilization feedback that flips after
	// each migration (the Fig 5c pathology), Clove keeps bouncing.
	s := New(2, Config{FlowletGap: 1 * sim.Microsecond, Seed: 2})
	s.SetUtil(0, 0.5)
	s.SetUtil(1, 0.5)
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		now += 10 * sim.Microsecond // always beyond the gap
		p := s.Pick(now)
		// The chosen path becomes hot, the other cools down.
		s.SetUtil(p, 1.0)
		s.SetUtil(1-p, 0.1)
	}
	if s.Repicks < 40 {
		t.Fatalf("Repicks = %d, expected persistent oscillation", s.Repicks)
	}
}
