package vfabric

import (
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

// TestMultiFlowExceedsSinglePath shows why oversubscribed fabrics need
// multiple underlay paths (§6): one 10G path cannot carry a 3-path pair's
// demand, but the Appendix-F split can.
func TestMultiFlowExceedsSinglePath(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(3, 1, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, tt.Graph, Config{Seed: 4})
	vf := f.AddVF(1, 12e9, 6) // guarantee above any single path
	mf := f.AddMultiFlow(vf, tt.HostsLeft[0], tt.HostsRight[0], 3, 0)
	mf.SendAll(1 << 40)
	stop := f.StartSampling(200 * sim.Microsecond)
	eng.RunUntil(10 * sim.Millisecond)
	stop()
	f.SampleRates()
	rate := mf.Rate(5*sim.Millisecond, 10*sim.Millisecond)
	// Three 10G paths, but source/dest uplinks... NewTwoTier hosts have
	// one 10G uplink: the uplink caps the pair at ~9.5G — use per-path
	// delivery instead: with 3 pinned subflows all carrying traffic, at
	// least 2 paths must be in use.
	used := 0
	for _, fl := range mf.Subflows {
		if fl.Pair.Delivered > 100_000 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("multipath used %d/3 paths", used)
	}
	if rate < 7e9 {
		t.Fatalf("aggregate rate %.2f G, want near uplink capacity", rate/1e9)
	}
	if mf.Delivered() == 0 {
		t.Fatal("no delivery")
	}
	mf.Stop()
}

// TestMultiFlowRebalancesTokens verifies Algorithm 2's demand-driven
// redistribution: when one path's subflow has no demand, its token share
// migrates to the busy paths.
func TestMultiFlowRebalancesTokens(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(2, 2, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, tt.Graph, Config{Seed: 5})
	vf := f.AddVF(1, 8e9, 5)
	mf := f.AddMultiFlow(vf, tt.HostsLeft[0], tt.HostsRight[0], 2, 0)
	// Only subflow 0 gets demand.
	mf.Subflows[0].Buffer.Add(1 << 40)
	eng.RunUntil(5 * sim.Millisecond)
	phi0 := mf.Subflows[0].Pair.Phi()
	phi1 := mf.Subflows[1].Pair.Phi()
	// Algorithm 2: the idle path keeps the boosted equal share (40);
	// the busy path gets equal + spare ≈ 80... boost keeps idle at
	// equal share, busy gets equal + spare = 40 + ~40.
	if phi0 <= phi1 {
		t.Fatalf("busy path φ=%v ≤ idle path φ=%v", phi0, phi1)
	}
	if phi0 < 60 {
		t.Fatalf("busy path φ=%v, want ≥ 60 of the 80-token pair", phi0)
	}
	mf.Stop()
}

// TestMultiFlowSendDispatch checks least-backlog dispatch.
func TestMultiFlowSendDispatch(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(2, 1, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, tt.Graph, Config{Seed: 6})
	vf := f.AddVF(1, 4e9, 4)
	mf := f.AddMultiFlow(vf, tt.HostsLeft[0], tt.HostsRight[0], 2, 0)
	mf.Subflows[0].Buffer.Add(1 << 20) // preload path 0
	mf.Send(1000)                      // must go to path 1
	if mf.Subflows[1].Buffer.Pending() != 1000 {
		t.Fatalf("Send did not pick the least-backlogged subflow")
	}
	eng.RunUntil(2 * sim.Millisecond)
	mf.Stop()
}

// TestManagedPhiExcludedFromGP: a SetPhi pair keeps its token while its
// VF's other pairs share the rest.
func TestManagedPhiExcludedFromGP(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, st.Graph, Config{Seed: 7})
	vf := f.AddVF(1, 8e9, 5) // 80 tokens
	pinned := f.AddFlow(vf, st.Hosts[0], st.Hosts[1], 0)
	pinned.Pair.SetPhi(30)
	other := f.AddFlow(vf, st.Hosts[0], st.Hosts[2], 0)
	backlog(other)
	eng.RunUntil(2 * sim.Millisecond)
	if got := pinned.Pair.Phi(); got != 30 {
		t.Fatalf("managed φ = %v, want pinned 30", got)
	}
	// The free pair gets the remaining 50 (alone and backlogged).
	if got := other.Pair.Phi(); got < 45 {
		t.Fatalf("free pair φ = %v, want ≈50", got)
	}
}
