package vfabric

import (
	"sort"

	"ufab/internal/audit"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// auditState holds the fabric's auditor and the reusable sample buffers
// the per-tick collector fills. Everything is preallocated or reused so an
// audited run's marginal cost is bounded and — more importantly — so the
// collector never perturbs the simulation it observes.
type auditState struct {
	a      *audit.Auditor
	eta    float64
	sample audit.Sample
	// Per-link accumulators, indexed by LinkID.
	cand   []float64
	act    []float64
	stamp  []int64 // per-pair dedup stamp for cand
	seq    int64
	faulty []bool
	// Per-flow active-route buffers (audit.PairSample.Links).
	routes [][]int32
	// Barrier-fed event delivery for partitioned fabrics: instead of a
	// live subscription (whose delivery order would depend on which shard
	// recorded first), each tick drains every recorder from its cursor,
	// merges the batch into canonical order, and replays it into the
	// auditor. feedRecs[0] is the base (coordinator) recorder, then one
	// per shard.
	feedRecs []*telemetry.Recorder
	cursors  []uint64
	batch    []telemetry.Event
}

// initAudit wires the auditor into a freshly assembled fabric. Audit
// requires telemetry: the excused-window and context machinery feed off
// the flight recorder, and an auditor without it would silently report
// chaos damage as bugs.
func (f *Fabric) initAudit(cfg *Config) {
	if cfg.Audit == nil {
		return
	}
	if cfg.Telemetry == nil {
		panic("vfabric: Config.Audit requires Config.Telemetry")
	}
	ac := *cfg.Audit
	if cfg.Edge.DisableTwoStage {
		// μFAB′ removes the admission ramp, and with it the burst bound the
		// queue check derives from — the invariant doesn't exist there.
		ac.DisableQueueBound = true
	}
	if ac.AcctHoldPS == 0 {
		// Register residue after a pair vanishes is legitimate until the
		// silent-quit cleanup expires it: only drift persisting past the
		// declared staleness bound (period + age) is a bug.
		cp := cfg.Core.CleanupPeriod
		if cp == 0 {
			cp = 10 * sim.Second
		}
		ca := cfg.Core.CleanupAge
		if ca == 0 {
			ca = cp
		}
		ac.AcctHoldPS = int64(cp + ca)
	}
	eta := cfg.Core.TargetUtilization
	if eta == 0 {
		eta = 0.95
	}
	nLinks := len(f.Graph.Links)
	f.aud = &auditState{
		a:      audit.New(ac),
		eta:    eta,
		cand:   make([]float64, nLinks),
		act:    make([]float64, nLinks),
		stamp:  make([]int64, nLinks),
		faulty: make([]bool, nLinks),
	}
	f.aud.sample.Links = make([]audit.LinkSample, nLinks)
	if shardRecs := cfg.Telemetry.ShardRecorders(); len(shardRecs) > 0 {
		f.aud.feedRecs = append(f.aud.feedRecs, cfg.Telemetry.ShardRecorder(-1))
		f.aud.feedRecs = append(f.aud.feedRecs, shardRecs...)
		f.aud.cursors = make([]uint64, len(f.aud.feedRecs))
	} else {
		cfg.Telemetry.Recorder().Subscribe(f.aud.a.ObserveEvent)
	}
}

// feedEvents drains every recorder's new events since the last tick,
// merges them canonically, and replays them into the auditor. Running at
// the sampling barrier makes the fed stream a pure function of the
// simulation state — identical whether the shards executed sequentially
// or on the parallel core — because the set of events recorded before a
// barrier is mode-invariant and the merge order is content-defined.
func (au *auditState) feedEvents() {
	if au.feedRecs == nil {
		return
	}
	au.batch = au.batch[:0]
	for i, r := range au.feedRecs {
		if r == nil {
			continue
		}
		au.batch = append(au.batch, r.EventsSince(au.cursors[i])...)
		au.cursors[i] = r.Total()
	}
	telemetry.SortEventsCanonical(au.batch)
	for i := range au.batch {
		au.a.ObserveEvent(au.batch[i])
	}
}

// AuditLog returns the findings sink of the fabric's auditor (nil when
// auditing is off).
func (f *Fabric) AuditLog() *audit.Log {
	if f.aud == nil {
		return nil
	}
	return f.aud.a.Log()
}

// auditTick snapshots the fabric into an audit.Sample and feeds the
// auditor. It runs from SampleRates, after telemetry flush, so the
// auditor sees exactly the sampling cadence the run reports at.
func (f *Fabric) auditTick() {
	au := f.aud
	if au == nil {
		return
	}
	au.feedEvents()
	s := &au.sample
	s.T = int64(f.Eng.Now())

	// Live register references: sum each non-idle pair's token over its
	// candidate-path links (what μFAB-C should have admitted at most) and
	// its active-path links (what must still be registered).
	for i := range au.cand {
		au.cand[i] = 0
		au.act[i] = 0
	}
	for _, fl := range f.Flows {
		p := fl.Pair
		if p.Idle() {
			continue
		}
		phi := p.Phi()
		au.seq++
		for i := 0; i < p.PathCount(); i++ {
			for _, lid := range p.Route(i) {
				if au.stamp[lid] != au.seq {
					au.stamp[lid] = au.seq
					au.cand[lid] += phi
				}
			}
		}
		// The lower reference counts only pairs actually exercising the
		// fabric. A non-idle but silent pair — created before its first
		// message, or drained between messages — sends no probes, so
		// past the staleness bound the core may legitimately have
		// cleaned its registration.
		if fl.Demand == nil || (fl.Demand.Pending() == 0 && p.Inflight() == 0) {
			continue
		}
		for _, lid := range p.ActivePath() {
			au.act[lid] += phi
		}
	}

	for i := range f.Graph.Links {
		lid := topo.LinkID(i)
		link := f.Graph.Link(lid)
		port := f.Net.Port(lid)
		core := f.Cores[link.Src]
		au.faulty[i] = f.Net.LinkFailed(lid) || f.Net.LinkDegraded(lid) ||
			f.Net.Failed(link.Src) || f.Net.Failed(link.Dst)
		ls := &s.Links[i]
		*ls = audit.LinkSample{
			Entity:        f.Net.LinkEntity(lid),
			TargetBps:     au.eta * f.Net.EffectiveCapacity(lid),
			TxBytes:       port.TxBytes,
			QueueBytes:    int64(port.QueueBytes()),
			HasCore:       core != nil,
			LivePhiCand:   au.cand[i],
			LivePhiActive: au.act[i],
			Faulty:        au.faulty[i],
		}
		if core != nil {
			phi, w := core.Subscription(lid)
			ls.PhiTokens = phi
			ls.WindowBytes = w
		}
		if f.Cfg.Ledger != nil {
			ls.CommittedTokens = f.Cfg.Ledger.CommittedBps(lid) / f.Cfg.Edge.BU
			ls.HasLedger = true
		}
	}

	for len(au.routes) < len(f.Flows) {
		au.routes = append(au.routes, nil)
	}
	s.Pairs = s.Pairs[:0]
	for i, fl := range f.Flows {
		p := fl.Pair
		route := au.routes[i][:0]
		pairFaulty := false
		for _, lid := range p.ActivePath() {
			route = append(route, int32(lid))
			if au.faulty[lid] {
				pairFaulty = true
			}
		}
		au.routes[i] = route
		s.Pairs = append(s.Pairs, audit.PairSample{
			VM:         int64(p.ID),
			VF:         p.VF,
			PhiBps:     p.Guarantee(),
			Backlogged: !p.Idle() && fl.Demand != nil && fl.Demand.Pending() > 0,
			Delivered:  p.Delivered,
			Migrations: p.Migrations,
			Links:      route,
			Faulty:     pairFaulty,
		})
	}

	s.VFs = s.VFs[:0]
	for _, id := range f.vfOrder {
		vf := f.VFs[id]
		s.VFs = append(s.VFs, audit.VFSample{ID: vf.ID, GuaranteeBps: vf.GuaranteeBps})
	}
	sort.Slice(s.VFs, func(i, j int) bool { return s.VFs[i].ID < s.VFs[j].ID })

	au.a.Tick(s)
}
