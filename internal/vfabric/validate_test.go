package vfabric

import (
	"strings"
	"testing"

	"ufab/internal/chaos"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

func newValidateFabric(t *testing.T) (*Fabric, *topo.Testbed) {
	t.Helper()
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	return New(eng, tb.Graph, Config{Seed: 1}), tb
}

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	fn()
}

// The construction-time API and the chaos churn path reject the same
// malformed specs: one panics, the other returns false, both through the
// shared validators.
func TestValidationUnified(t *testing.T) {
	f, tb := newValidateFabric(t)
	s1, s2 := tb.Servers[0], tb.Servers[1]

	// Non-positive guarantee.
	mustPanic(t, "non-positive guarantee", func() { f.AddVF(1, 0, 0) })
	if f.AddTenant(chaos.TenantSpec{VF: 1, GuaranteeBps: -5}) {
		t.Fatal("AddTenant accepted non-positive guarantee")
	}

	// Bad weight class.
	mustPanic(t, "weight class", func() { f.AddVF(1, 1e9, 8) })
	mustPanic(t, "weight class", func() { f.AddVF(1, 1e9, -1) })
	if f.AddTenant(chaos.TenantSpec{VF: 1, GuaranteeBps: 1e9, WeightClass: 99}) {
		t.Fatal("AddTenant accepted weight class 99")
	}

	// Duplicate id.
	vf := f.AddVF(1, 1e9, 0)
	mustPanic(t, "already exists", func() { f.AddVF(1, 1e9, 0) })
	if f.AddTenant(chaos.TenantSpec{VF: 1, GuaranteeBps: 1e9}) {
		t.Fatal("AddTenant accepted duplicate VF id")
	}

	// Unknown hosts and self-loops.
	mustPanic(t, "not a host", func() { f.AddFlow(vf, topo.NodeID(999), s2, 0) })
	sw := tb.ToRs[0]
	mustPanic(t, "not a host", func() { f.AddFlow(vf, s1, sw, 0) })
	mustPanic(t, "self-loop", func() { f.AddFlow(vf, s1, s1, 0) })
	bad := chaos.TenantSpec{VF: 2, GuaranteeBps: 1e9,
		Pairs: []chaos.PairSpec{{Src: s1, Dst: s1}}}
	if f.AddTenant(bad) {
		t.Fatal("AddTenant accepted self-loop pair")
	}
	if f.VFs[2] != nil {
		t.Fatal("rejected arrival left VF registered")
	}

	// A valid spec passes both paths.
	f.AddFlow(vf, s1, s2, 0)
	ok := f.AddTenant(chaos.TenantSpec{VF: 2, GuaranteeBps: 1e9, WeightClass: 7,
		Pairs: []chaos.PairSpec{{Src: s1, Dst: s2}}})
	if !ok {
		t.Fatal("AddTenant rejected a valid spec")
	}
}

func TestValidateTenantSpecDoesNotMutate(t *testing.T) {
	f, tb := newValidateFabric(t)
	spec := chaos.TenantSpec{VF: 9, GuaranteeBps: 2e9, WeightClass: 3,
		Pairs: []chaos.PairSpec{{Src: tb.Servers[0], Dst: tb.Servers[4]}}}
	if err := f.ValidateTenantSpec(spec); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(f.VFs) != 0 || len(f.Flows) != 0 {
		t.Fatal("ValidateTenantSpec mutated the fabric")
	}
}
