package vfabric

import (
	"math"
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

// backlog keeps a flow permanently backlogged.
func backlog(fl *Flow) { fl.Buffer.Add(1 << 40) }

// starFabric builds an n-host star at 10G with the paper's ≈24 μs testbed
// baseRTT (5 μs per-hop propagation).
func starFabric(n int, seed int64) (*sim.Engine, *Fabric, *topo.Star) {
	eng := sim.New()
	st := topo.NewStar(n, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, st.Graph, Config{Seed: seed})
	return eng, f, st
}

func TestSingleFlowReachesLineRate(t *testing.T) {
	eng, f, st := starFabric(2, 1)
	vf := f.AddVF(1, 1e9, 3)
	fl := f.AddFlow(vf, st.Hosts[0], st.Hosts[1], 0)
	backlog(fl)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(5 * sim.Millisecond)
	stop()
	f.SampleRates()
	// Work conservation: a single backlogged flow should reach ≈ the
	// 95% target utilization of 10G regardless of its 1G guarantee.
	rate := fl.Rate(2*sim.Millisecond, 5*sim.Millisecond)
	if rate < 8.5e9 {
		t.Fatalf("single flow rate = %.2f Gbps, want ≥8.5 (work conservation)", rate/1e9)
	}
	if rate > 10.1e9 {
		t.Fatalf("rate = %v exceeds line rate", rate)
	}
}

func TestProportionalSharing(t *testing.T) {
	// Three VFs with guarantees 1:2:5 from different hosts into one
	// host: rates must converge to ≈1.19:2.38:5.94 G (95% of 10G split
	// proportionally — §3.3).
	eng, f, st := starFabric(4, 2)
	g := []float64{1e9, 2e9, 5e9}
	var flows []*Flow
	for i, gi := range g {
		vf := f.AddVF(int32(i+1), gi, i)
		fl := f.AddFlow(vf, st.Hosts[i], st.Hosts[3], 0)
		backlog(fl)
		flows = append(flows, fl)
	}
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(10 * sim.Millisecond)
	stop()
	f.SampleRates()
	total := 0.0
	for i, fl := range flows {
		rate := fl.Rate(5*sim.Millisecond, 10*sim.Millisecond)
		want := g[i] / 8e9 * 0.95 * 10e9
		if math.Abs(rate-want) > 0.25*want {
			t.Errorf("flow %d rate = %.2f G, want ≈%.2f G", i, rate/1e9, want/1e9)
		}
		if rate < g[i]*0.9 {
			t.Errorf("flow %d below guarantee: %.2f < %.2f G", i, rate/1e9, g[i]/1e9)
		}
		total += rate
	}
	if total < 0.85*10e9 {
		t.Errorf("total = %.2f G, want high utilization", total/1e9)
	}
}

func TestWorkConservationReclaim(t *testing.T) {
	// VF1 (5G guarantee) goes idle; VF2 (1G) should absorb the freed
	// bandwidth, then release it when VF1 returns.
	eng, f, st := starFabric(3, 3)
	vf1 := f.AddVF(1, 5e9, 5)
	vf2 := f.AddVF(2, 1e9, 2)
	fl1 := f.AddFlow(vf1, st.Hosts[0], st.Hosts[2], 0)
	fl2 := f.AddFlow(vf2, st.Hosts[1], st.Hosts[2], 0)
	backlog(fl1)
	backlog(fl2)
	stop := f.StartSampling(100 * sim.Microsecond)
	// Drain fl1's demand at 4 ms by replacing its buffer contents: we
	// cannot remove bytes, so instead use a finite backlog that runs
	// out. Rebuild: give fl1 a finite demand that drains around ~4 ms.
	_ = fl1
	eng.RunUntil(4 * sim.Millisecond)
	// Phase 2: fl1 idle (consume its remaining demand by removing it).
	fl1.Buffer.Consume(fl1.Buffer.Pending())
	eng.RunUntil(9 * sim.Millisecond)
	// Phase 3: fl1 returns.
	backlog(fl1)
	eng.RunUntil(14 * sim.Millisecond)
	stop()
	f.SampleRates()

	phase1 := fl2.Rate(2*sim.Millisecond, 4*sim.Millisecond)
	phase2 := fl2.Rate(6*sim.Millisecond, 9*sim.Millisecond)
	phase3 := fl2.Rate(12*sim.Millisecond, 14*sim.Millisecond)
	phase3fl1 := fl1.Rate(12*sim.Millisecond, 14*sim.Millisecond)
	// Phase 1: proportional share ≈ 1/6·9.5G ≈ 1.6G.
	if phase1 > 3.2e9 {
		t.Errorf("phase1 fl2 = %.2f G, want ≈1.6 G", phase1/1e9)
	}
	// Phase 2: fl2 alone → near full rate.
	if phase2 < 7e9 {
		t.Errorf("phase2 fl2 = %.2f G, want ≥7 G (work conservation)", phase2/1e9)
	}
	// Phase 3: fl1 grabs back ≥ its 5G guarantee; fl2 recedes.
	if phase3fl1 < 4.5e9 {
		t.Errorf("phase3 fl1 = %.2f G, want ≥4.5 G (guarantee reclaim)", phase3fl1/1e9)
	}
	if phase3 > 3.2e9 {
		t.Errorf("phase3 fl2 = %.2f G, want back to ≈1.6 G", phase3/1e9)
	}
}

func TestIncastBoundedQueue(t *testing.T) {
	// 8-to-1 incast of backlogged flows starting simultaneously: the
	// bottleneck queue must stay bounded near 3·BDP (§3.4).
	eng, f, st := starFabric(9, 4)
	for i := 0; i < 8; i++ {
		vf := f.AddVF(int32(i+1), 500e6, 2)
		fl := f.AddFlow(vf, st.Hosts[i], st.Hosts[8], 0)
		backlog(fl)
	}
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(5 * sim.Millisecond)
	stop()
	// BDP of the 10G star path: baseRTT ≈ 2×(2.2 μs + 1.2 μs)... use
	// the graph's diameter.
	// The paper bounds inflight by 3·C·T_max; the TX-rate estimator lag
	// and per-flow MTU floors add a small constant, so allow 8·BDP here
	// (Fig 12 compares the transient against the baselines, where the
	// gap is orders of magnitude).
	bdp := int(10e9 * f.Graph.Diameter(1500).Seconds() / 8)
	maxQ := f.MaxQueueBytes()
	if maxQ > 8*bdp {
		t.Errorf("max queue = %d bytes, want ≤ 8·BDP = %d", maxQ, 8*bdp)
	}
	// All flows keep their guarantee.
	f.SampleRates()
	for i, fl := range f.Flows {
		rate := fl.Rate(2*sim.Millisecond, 5*sim.Millisecond)
		if rate < 0.8*10e9/8*0.95/1 {
			// Each of 8 equal flows should get ≈ 9.5G/8 ≈ 1.19G.
			if rate < 0.8e9 {
				t.Errorf("flow %d rate = %.2f G, want ≈1.19 G", i, rate/1e9)
			}
		}
	}
}

func TestGuaranteeUnderIncastOfAnotherVF(t *testing.T) {
	// VF1 (5G) on H1→H4 shares the bottleneck with a 2-host incast of
	// VF2 (1G hose): VF1 must keep ≥ 5G.
	eng, f, st := starFabric(4, 5)
	vf1 := f.AddVF(1, 5e9, 5)
	vf2 := f.AddVF(2, 1e9, 2)
	fl1 := f.AddFlow(vf1, st.Hosts[0], st.Hosts[3], 0)
	backlog(fl1)
	eng.RunUntil(2 * sim.Millisecond)
	for i := 1; i <= 2; i++ {
		fl := f.AddFlow(vf2, st.Hosts[i], st.Hosts[3], 0)
		backlog(fl)
	}
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(8 * sim.Millisecond)
	stop()
	f.SampleRates()
	rate := fl1.Rate(5*sim.Millisecond, 8*sim.Millisecond)
	if rate < 4.5e9 {
		t.Errorf("VF1 rate = %.2f G under VF2 incast, want ≥4.5 G", rate/1e9)
	}
}

func TestPathMigrationOnOverSubscription(t *testing.T) {
	// Two-tier topology with 2 parallel paths. Three 4G-guarantee flows
	// cannot fit on one path (12G > 9.5G target): μFAB must spread them
	// so every flow gets ≥ ~4G.
	eng := sim.New()
	tt := topo.NewTwoTier(2, 3, topo.Gbps(10), sim.Microsecond)
	f := New(eng, tt.Graph, Config{Seed: 42})
	var flows []*Flow
	for i := 0; i < 3; i++ {
		vf := f.AddVF(int32(i+1), 4e9, 4)
		fl := f.AddFlow(vf, tt.HostsLeft[i], tt.HostsRight[i], 0)
		backlog(fl)
		flows = append(flows, fl)
	}
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(20 * sim.Millisecond)
	stop()
	f.SampleRates()
	paths := map[int]int{}
	for i, fl := range flows {
		rate := fl.Rate(15*sim.Millisecond, 20*sim.Millisecond)
		if rate < 3.5e9 {
			t.Errorf("flow %d rate = %.2f G, want ≥3.5 G after migration", i, rate/1e9)
		}
		paths[fl.Pair.ActivePathID()]++
	}
	// The three flows must not all sit on one path.
	for _, n := range paths {
		if n == 3 {
			t.Error("all flows on one path: no migration happened")
		}
	}
}

func TestFailureTriggersMigration(t *testing.T) {
	// Kill the agg on the active path: the flow must move to the other
	// path and recover (Fig 15a behavior).
	eng := sim.New()
	tt := topo.NewTwoTier(2, 1, topo.Gbps(10), sim.Microsecond)
	f := New(eng, tt.Graph, Config{Seed: 7})
	vf := f.AddVF(1, 2e9, 3)
	fl := f.AddFlow(vf, tt.HostsLeft[0], tt.HostsRight[0], 0)
	backlog(fl)
	eng.RunUntil(3 * sim.Millisecond)
	// Fail the agg currently carrying the flow.
	route := fl.Pair.ActivePath()
	aggNode := f.Graph.Link(route[1]).Dst
	f.Net.FailNode(aggNode)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(15 * sim.Millisecond)
	stop()
	f.SampleRates()
	if fl.Pair.Migrations == 0 {
		t.Fatal("no migration after failure")
	}
	rate := fl.Rate(12*sim.Millisecond, 15*sim.Millisecond)
	if rate < 5e9 {
		t.Errorf("post-failure rate = %.2f G, want recovery ≥5 G", rate/1e9)
	}
	// The new active path must avoid the failed node.
	for _, lid := range fl.Pair.ActivePath() {
		l := f.Graph.Link(lid)
		if l.Src == aggNode || l.Dst == aggNode {
			t.Error("active path still crosses failed node")
		}
	}
}

func TestProbeOverheadBounded(t *testing.T) {
	// One saturating flow: probe overhead must be ≤ L_p/(L_p+L_w) ≈
	// 2.6% with the default L_w = 4 KB (paper: 1.28% with their L_p).
	eng, f, st := starFabric(2, 8)
	vf := f.AddVF(1, 1e9, 3)
	fl := f.AddFlow(vf, st.Hosts[0], st.Hosts[1], 0)
	backlog(fl)
	eng.RunUntil(10 * sim.Millisecond)
	ovh := f.ProbeOverhead()
	if ovh <= 0 || ovh > 0.04 {
		t.Errorf("probe overhead = %.4f, want (0, 0.04]", ovh)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, uint64) {
		eng, f, st := starFabric(4, 99)
		for i := 0; i < 3; i++ {
			vf := f.AddVF(int32(i+1), 1e9, 2)
			fl := f.AddFlow(vf, st.Hosts[i], st.Hosts[3], 0)
			backlog(fl)
		}
		eng.RunUntil(2 * sim.Millisecond)
		var total int64
		for _, fl := range f.Flows {
			total += fl.Pair.Delivered
		}
		return total, eng.Processed
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", d1, e1, d2, e2)
	}
}

func TestRTTBoundedUnderLoad(t *testing.T) {
	// With two-stage admission, per-packet RTT should stay within a few
	// baseRTTs even with 8 concurrent senders (bounded tail latency).
	eng, f, st := starFabric(9, 11)
	for i := 0; i < 8; i++ {
		vf := f.AddVF(int32(i+1), 500e6, 2)
		fl := f.AddFlow(vf, st.Hosts[i], st.Hosts[8], 0)
		backlog(fl)
	}
	eng.RunUntil(5 * sim.Millisecond)
	base := f.Graph.Diameter(1500).Micros()
	for i, fl := range f.Flows {
		if fl.Pair.RTT.Len() == 0 {
			t.Fatalf("flow %d has no RTT samples", i)
		}
		p99 := fl.Pair.RTT.P(0.99)
		if p99 > 12*base {
			t.Errorf("flow %d p99 RTT = %.1f μs (> 12×base %.1f μs)", i, p99, base)
		}
	}
}

func TestFailureNotificationFastRecovery(t *testing.T) {
	// The type-4 failure response (bounced by the switch that detects
	// the dead neighbor) triggers migration far faster than the probe
	// timeout (8 baseRTTs) would.
	eng := sim.New()
	tt := topo.NewTwoTier(2, 1, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, tt.Graph, Config{Seed: 21})
	vf := f.AddVF(1, 2e9, 3)
	fl := f.AddFlow(vf, tt.HostsLeft[0], tt.HostsRight[0], 0)
	backlog(fl)
	eng.RunUntil(3 * sim.Millisecond)
	failAt := eng.Now()
	aggNode := f.Graph.Link(fl.Pair.ActivePath()[1]).Dst
	f.Net.FailNode(aggNode)
	// Step until the migration happens, recording when.
	var migratedAt sim.Time = -1
	for eng.Now() < failAt+2*sim.Millisecond {
		eng.RunUntil(eng.Now() + 10*sim.Microsecond)
		if fl.Pair.Migrations > 0 {
			migratedAt = eng.Now()
			break
		}
	}
	if migratedAt < 0 {
		t.Fatal("no migration within 2 ms of the failure")
	}
	baseRTT := f.Graph.BaseRTT(fl.Pair.ActivePath(), 1500)
	if migratedAt-failAt > 8*baseRTT {
		t.Errorf("migration took %v after failure, want well under the 8-RTT timeout (%v)",
			migratedAt-failAt, 8*baseRTT)
	}
}
