package vfabric

import (
	"fmt"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// BuildOptions selects how a fabric and its simulation core are
// constructed. It is the one construction path shared by the experiment
// harness, the scenario fuzzer, and the control-plane daemon, so the
// sequential/sharded choice and its invariants live in exactly one place.
type BuildOptions struct {
	// Graph is the physical topology (required).
	Graph *topo.Graph
	// Cfg is the fabric configuration (seed, telemetry, audit, agents).
	Cfg Config
	// Shards selects the execution mode. 0 runs the logically sharded
	// fabric on one sequential engine (through per-shard views); N >= 1
	// runs it on the parallel-in-time core with N worker goroutines.
	// Output is bit-identical across every value: both modes order every
	// event by the same (time, schedule-time, shard, sequence) key.
	Shards int
	// Eng optionally supplies the sequential engine to drive (the daemon
	// and fuzzer keep their own handle for timers and quantum stepping).
	// It must be fresh — no events scheduled yet — and is only legal with
	// Shards == 0: the parallel core owns its engines.
	Eng *sim.Engine
}

// Build assembles a μFAB fabric over a pod partition of the topology.
//
// Both execution modes build the same logical structure: the topology is
// cut into one shard per pod (cores round-robined), every node's agents
// schedule and record inside the node's shard, fault randomness comes
// from per-shard streams derived from (seed, shard), and the auditor is
// fed the canonically merged event stream at each sampling barrier.
// Sequentially the shards are views over one engine; on the parallel
// core they are per-worker engines synchronized by conservative
// lookahead. Because every event carries the same ordering key either
// way, metrics and traces are bit-identical for any Shards value.
//
// Topologies that cannot be partitioned (a cut link with zero
// propagation delay leaves no lookahead window) degrade to a single
// logical shard sequentially and are an error for Shards >= 1.
func Build(o BuildOptions) (*Fabric, error) {
	if o.Graph == nil {
		return nil, fmt.Errorf("vfabric: Build requires a Graph")
	}
	part, err := topo.PartitionPods(o.Graph)
	if err != nil {
		if o.Shards >= 1 {
			return nil, fmt.Errorf("vfabric: cannot shard topology: %w", err)
		}
		part = singleShard(o.Graph)
	}
	cfg := o.Cfg
	normalize(&cfg)
	if cfg.Telemetry != nil {
		cfg.Telemetry.EnableShardRecorders(part.Shards, 0)
	}

	var drv sim.Driver
	var net *dataplane.Network
	switch {
	case o.Shards >= 1:
		if o.Eng != nil {
			return nil, fmt.Errorf("vfabric: external engine is only legal with Shards == 0")
		}
		sh := sim.NewSharded(part.Shards, o.Shards, part.MinCutDelay)
		drv = sh
		net = dataplane.NewPartitioned(sh, part, o.Graph, cfg.Dataplane)
	default:
		eng := o.Eng
		if eng == nil {
			eng = sim.New()
		}
		drv = eng
		net = dataplane.NewPartitioned(eng, part, o.Graph, cfg.Dataplane)
	}

	f := assemble(drv, net, o.Graph, cfg)
	f.partitioned = true
	return f, nil
}

// singleShard is the degenerate partition: everything in shard 0, no cut
// links, no window bound.
func singleShard(g *topo.Graph) *topo.Partition {
	return &topo.Partition{Shards: 1, Node: make([]int32, len(g.Nodes))}
}
