package vfabric

import (
	"ufab/internal/chaos"
	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// This file makes *Fabric a chaos.Target and hosts the tenant-churn
// operations fault scenarios exercise. Where the construction-time API
// panics on misuse (AddVF, AddFlow), these entry points validate and
// return false instead: an injected event must never crash a running
// simulation.

var _ chaos.Target = (*Fabric)(nil)

// ApplyScenario schedules a fault scenario against this fabric and
// returns the recording injector. Call it during setup (t = 0) so event
// times are absolute.
func (f *Fabric) ApplyScenario(s *chaos.Scenario) *chaos.Injector {
	return chaos.Inject(f, s)
}

// Engine implements chaos.Target.
func (f *Fabric) Engine() sim.Scheduler { return f.Eng }

// Network implements chaos.Target.
func (f *Fabric) Network() *dataplane.Network { return f.Net }

// RestartCoreAgent implements chaos.Target: it reboots the μFAB-C agent
// on the node, losing its Bloom/Φ/W registers. False if the node runs no
// core agent.
func (f *Fabric) RestartCoreAgent(node topo.NodeID) bool {
	c := f.Cores[node]
	if c == nil {
		return false
	}
	c.Restart()
	return true
}

// validHost reports whether id is a host with an edge agent.
func (f *Fabric) validHost(id topo.NodeID) bool {
	return int(id) >= 0 && int(id) < len(f.Graph.Nodes) &&
		f.Graph.Node(id).Kind == topo.Host && f.Edges[id] != nil
}

// AddTenant implements chaos.Target: it creates a VF and its VM-pairs
// mid-run. The whole spec is validated (through the same shared helpers
// AddVF/AddFlow panic with) before anything mutates, so a rejected
// arrival leaves the fabric untouched.
func (f *Fabric) AddTenant(spec chaos.TenantSpec) bool {
	if f.ValidateTenantSpec(spec) != nil {
		return false
	}
	vf := f.AddVF(spec.VF, spec.GuaranteeBps, spec.WeightClass)
	for _, pr := range spec.Pairs {
		fl := f.AddFlow(vf, pr.Src, pr.Dst, 0)
		backlog := pr.BacklogBytes
		if backlog <= 0 {
			backlog = 1 << 42
		}
		fl.Buffer.Add(backlog)
	}
	return true
}

// RemoveTenant implements chaos.Target.
func (f *Fabric) RemoveTenant(vf int32) bool { return f.RemoveVF(vf) }

// RemoveVF tears a tenant VF down: every VM-pair is finished (the finish
// probes deallocate its Φ/W contribution in the core) and the VF is
// deregistered from every edge, freeing the id for a later arrival.
// Returns false for an unknown id. Edges are walked in graph order —
// removal schedules packets, and map order would break run determinism.
func (f *Fabric) RemoveVF(id int32) bool {
	vf := f.VFs[id]
	if vf == nil {
		return false
	}
	for _, host := range f.Graph.Hosts() {
		if e := f.Edges[host]; e != nil {
			e.RemoveVF(id)
		}
	}
	delete(f.VFs, id)
	for i, vid := range f.vfOrder {
		if vid == id {
			f.vfOrder = append(f.vfOrder[:i], f.vfOrder[i+1:]...)
			break
		}
	}
	if len(vf.pairs) > 0 {
		flows := f.Flows[:0]
		for _, fl := range f.Flows {
			if fl.VF != vf {
				flows = append(flows, fl)
			}
		}
		f.Flows = flows
		vf.pairs = nil
	}
	return true
}

// FaultStats aggregates the fault-related telemetry of a run.
type FaultStats struct {
	// Migrations / FreezesArmed / FreezeSuppressed sum the edge agents'
	// migration telemetry.
	Migrations       uint64
	FreezesArmed     uint64
	FreezeSuppressed uint64
	// CoreRestarts sums μFAB-C reboots.
	CoreRestarts uint64
	// FaultDrops / CorruptedProbes mirror the dataplane counters.
	FaultDrops      uint64
	CorruptedProbes uint64
}

// FaultStats gathers the fabric-wide fault telemetry, aggregating the
// agents' registry-backed counters.
func (f *Fabric) FaultStats() FaultStats {
	var s FaultStats
	for _, e := range f.Edges {
		s.Migrations += e.MigrationsCount()
		s.FreezesArmed += e.FreezesArmedCount()
		s.FreezeSuppressed += e.FreezeSuppressedCount()
	}
	for _, c := range f.Cores {
		s.CoreRestarts += c.RestartCount()
	}
	s.FaultDrops = f.Net.FaultDrops
	s.CorruptedProbes = f.Net.CorruptedProbes
	return s
}
