// Package vfabric assembles a complete μFAB deployment over a simulated
// data center: a discrete-event engine, a topology, the packet dataplane,
// one μFAB-C agent per switch (and optionally per host hypervisor, §6),
// and one μFAB-E agent per host. It exposes the tenant-facing service
// model: create VFs with hose-model minimum-bandwidth guarantees, attach
// VM-pairs with demands, run, and measure.
//
// This is the package downstream users import; the experiment harness and
// the examples are built on it.
package vfabric

import (
	"fmt"
	"math/rand"

	"ufab/internal/audit"
	"ufab/internal/dataplane"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
	"ufab/internal/ufabc"
	"ufab/internal/ufabe"
)

// Config parameterizes a Fabric.
type Config struct {
	// Edge configures every μFAB-E agent.
	Edge ufabe.Config
	// Core configures every μFAB-C agent.
	Core ufabc.Config
	// Dataplane configures queues/ECN/ECMP.
	Dataplane dataplane.Config
	// CandidatePaths bounds how many underlay paths each VM-pair
	// monitors (0 = up to 4, §3.5 "it randomly chooses a few of them");
	// candidates are sampled uniformly from the equal-cost set.
	CandidatePaths int
	// MeterInterval is the per-flow rate meter resolution (default
	// 500 μs; reaction-time experiments use finer).
	MeterInterval sim.Duration
	// HostCoreAgents attaches a μFAB-C instance to each host so the
	// host uplink contributes INT records (the hypervisor deployment of
	// §6). Default true via New; set DisableHostCoreAgents to turn off.
	DisableHostCoreAgents bool
	// Seed drives path-candidate selection and the edge agents.
	Seed int64
	// Telemetry, if non-nil, attaches the unified registry to every layer
	// of the fabric: per-link dataplane instruments, μFAB-C/μFAB-E agent
	// counters, and the flight recorder (which must be enabled on the
	// registry before New so drop/probe/migration events are captured).
	// Instruments are published at sampling time by SampleRates.
	Telemetry *telemetry.Registry
	// Audit, if non-nil, attaches the online predictability auditor: every
	// SampleRates tick is checked against the min-bandwidth, work
	// conservation, queue-bound and register-accounting invariants, with
	// findings reported into Audit.Log (a fresh log when nil — read it
	// back via AuditLog). Requires Telemetry; enable the registry's flight
	// recorder so chaos faults open excused windows.
	Audit *audit.Config
	// Ledger, if non-nil, exposes the admission control plane's committed
	// per-link subscription to the auditor: every audit tick compares the
	// realized Φ_l register against the ledger's commitment (the
	// ledger_bound invariant). Only meaningful when every tenant routes
	// through the admission controller — force-admitted tenants consume
	// guarantee the ledger never committed.
	Ledger SubscriptionLedger
}

// SubscriptionLedger is the read side of the admission control plane's
// per-link Σ-guarantee accounting (internal/placement.Ledger implements
// it). vfabric depends only on this interface, keeping the packages
// cycle-free.
type SubscriptionLedger interface {
	// CommittedBps returns the admitted Σ-guarantee currently committed on
	// the link, in bits per second.
	CommittedBps(topo.LinkID) float64
}

// VF is a tenant virtual fabric with a hose-model guarantee.
type VF struct {
	ID int32
	// GuaranteeBps is the per-vNIC hose minimum bandwidth.
	GuaranteeBps float64
	// WeightClass is the WFQ class (0..7).
	WeightClass int

	pairs []*Flow
}

// Flow is one VM-pair of a VF, the unit of allocation and measurement.
type Flow struct {
	VF   *VF
	Pair *ufabe.Pair
	// Demand is the flow's traffic source.
	Demand ufabe.Demand
	// Buffer is the demand buffer when the flow was created with
	// AddFlow; nil for custom demands (AddFlowDemand).
	Buffer *ufabe.Buffer
	// Meter samples acknowledged throughput.
	Meter *stats.RateMeter

	lastDelivered int64
}

// Fabric is an assembled μFAB deployment.
type Fabric struct {
	// Eng is the driver of the fabric's simulation: a plain *sim.Engine
	// for sequential deployments, a *sim.Sharded for the parallel core.
	// It is also the coordinator scheduling context — experiment-level
	// timelines (sampling, chaos, tenant churn) schedule here and run at
	// global barriers with exclusive access to all shards' state. Per-host
	// traffic must instead schedule on HostScheduler.
	Eng   sim.Driver
	Graph *topo.Graph
	Net   *dataplane.Network
	Cfg   Config

	Edges map[topo.NodeID]*ufabe.Agent
	Cores map[topo.NodeID]*ufabc.Agent

	VFs   map[int32]*VF
	Flows []*Flow

	nextVM  dataplane.VMPair
	rng     *rand.Rand
	vfOrder []int32
	aud     *auditState
	// partitioned marks fabrics assembled by Build over a pod partition
	// (regardless of execution mode); they suppress per-heap gauges whose
	// values depend on how the event queues are laid out.
	partitioned bool
}

// normalize fills the config's defaults in place.
func normalize(cfg *Config) {
	if cfg.CandidatePaths == 0 {
		cfg.CandidatePaths = 4
	}
	if cfg.Edge.BU == 0 {
		cfg.Edge.BU = 100e6
	}
	if cfg.MeterInterval == 0 {
		cfg.MeterInterval = 500 * sim.Microsecond
	}
	cfg.Edge.Seed = cfg.Seed
	cfg.Dataplane.Telemetry = cfg.Telemetry
}

// New assembles a fabric over the topology: μFAB-C on every switch (and
// host unless disabled), μFAB-E on every host. The whole fabric runs as
// one scheduling context on eng; Build is the shard-aware constructor.
func New(eng sim.Driver, g *topo.Graph, cfg Config) *Fabric {
	normalize(&cfg)
	return assemble(eng, dataplane.New(eng, g, cfg.Dataplane), g, cfg)
}

// assemble wires the agents of a fabric onto an already constructed
// dataplane. Each node's agents are created under that node's shard: they
// capture the shard's scheduler for their timers and the shard's flight
// recorder for their telemetry, so every per-node event they ever produce
// stays inside the shard that owns the node. (On a single-shard dataplane
// both collapse to the engine and base recorder, preserving the classic
// construction exactly.)
func assemble(drv sim.Driver, net *dataplane.Network, g *topo.Graph, cfg Config) *Fabric {
	f := &Fabric{
		Eng:   drv,
		Graph: g,
		Net:   net,
		Cfg:   cfg,
		Edges: make(map[topo.NodeID]*ufabe.Agent),
		Cores: make(map[topo.NodeID]*ufabc.Agent),
		VFs:   make(map[int32]*VF),
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x76666162)),
	}
	f.Net.OnFailDrop = f.bounceFailure
	for _, n := range g.Nodes {
		if cfg.Telemetry != nil {
			cfg.Telemetry.SetActiveShard(int(f.Net.ShardOf(n.ID)))
		}
		switch {
		case n.Kind == topo.Switch:
			ag := ufabc.New(cfg.Core)
			ag.AttachTelemetry(cfg.Telemetry, telemetry.Token(n.Name))
			f.Net.SetSwitchAgent(n.ID, ag)
			f.Cores[n.ID] = ag
		case n.Kind == topo.Host:
			if !cfg.DisableHostCoreAgents {
				ag := ufabc.New(cfg.Core)
				ag.AttachTelemetry(cfg.Telemetry, telemetry.Token(n.Name))
				f.Net.SetSwitchAgent(n.ID, ag)
				f.Cores[n.ID] = ag
			}
			e := ufabe.New(f.Net.NodeScheduler(n.ID), f.Net, n.ID, cfg.Edge)
			e.AttachTelemetry(cfg.Telemetry, telemetry.Token(n.Name))
			f.Edges[n.ID] = e
		}
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.SetActiveShard(-1)
	}
	f.initAudit(&cfg)
	return f
}

// HostScheduler returns the scheduling context that owns a host: workload
// drivers feeding that host's demand at simulated times (rather than from
// the coordinator's barriers) must schedule on it so the traffic runs
// inside the host's shard.
func (f *Fabric) HostScheduler(host topo.NodeID) sim.Scheduler {
	return f.Net.NodeScheduler(host)
}

// bounceFailure converts a probe dropped at a dead hop into the
// Appendix-G type-4 failure response, returned to the source along the
// reverse of the prefix it already traversed. The source edge treats it
// as an immediate path-death signal instead of waiting out the probe
// timeout. `at` is the detecting switch (which must itself be alive to
// bounce anything); `failed` is the node that actually died, unused here
// because the type-4 response identifies the path, not the hop.
func (f *Fabric) bounceFailure(pkt *dataplane.Packet, at, failed topo.NodeID) {
	if pkt.Kind != dataplane.Probe || len(pkt.Payload) == 0 || pkt.Hop <= 0 {
		return
	}
	if f.Graph.Node(at).Kind != topo.Switch || f.Net.Failed(at) {
		return
	}
	p, _, err := probe.Decode(pkt.Payload)
	if err != nil || p.Kind != probe.KindProbe {
		return
	}
	fail := *p
	fail.Kind = probe.KindFailure
	fail.Hops = nil
	buf, err := fail.Encode(nil)
	if err != nil {
		return
	}
	back := f.Graph.ReversePath(pkt.Route[:pkt.Hop])
	f.Net.Send(&dataplane.Packet{
		Kind:    dataplane.Response,
		VMPair:  pkt.VMPair,
		Tenant:  pkt.Tenant,
		Size:    probe.WireSize(0),
		Route:   back,
		SentAt:  f.Net.NodeScheduler(at).Now(),
		Payload: buf,
	})
}

// Edge returns the μFAB-E agent of a host.
func (f *Fabric) Edge(host topo.NodeID) *ufabe.Agent { return f.Edges[host] }

// AddVF registers a tenant VF with the given hose guarantee on every edge.
// It panics on a malformed registration (duplicate id, non-positive
// guarantee, weight class outside the WFQ range) — the same rules the
// mid-run AddTenant path rejects with false.
func (f *Fabric) AddVF(id int32, guaranteeBps float64, weightClass int) *VF {
	if err := f.validateVF(id, guaranteeBps, weightClass); err != nil {
		panic(err.Error())
	}
	tokens := guaranteeBps / f.Cfg.Edge.BU
	for _, e := range f.Edges {
		e.AddVF(id, tokens, weightClass)
	}
	vf := &VF{ID: id, GuaranteeBps: guaranteeBps, WeightClass: weightClass}
	f.VFs[id] = vf
	f.vfOrder = append(f.vfOrder, id)
	return vf
}

// AddFlow creates a VM-pair of vf from src to dst with the given initial
// token share of the VF's guarantee (tokens = guarantee/BU when 0). It
// enumerates up to CandidatePaths equal-cost underlay paths.
func (f *Fabric) AddFlow(vf *VF, src, dst topo.NodeID, phi float64) *Flow {
	buf := &ufabe.Buffer{}
	fl := f.AddFlowDemand(vf, src, dst, phi, buf)
	fl.Buffer = buf
	return fl
}

// AddFlowDemand is AddFlow with a caller-supplied demand source (e.g. a
// workload.Messages tracker for FCT measurement). It panics on invalid
// endpoints — the same checks AddTenant's pair validation applies.
func (f *Fabric) AddFlowDemand(vf *VF, src, dst topo.NodeID, phi float64, demand ufabe.Demand) *Flow {
	if err := f.validatePair(src, dst); err != nil {
		panic(err.Error())
	}
	routes := f.sampleRoutes(src, dst, f.Cfg.CandidatePaths)
	if len(routes) == 0 {
		panic(fmt.Sprintf("vfabric: no path %d→%d", src, dst))
	}
	return f.AddFlowRoutes(vf, routes, phi, demand)
}

// sampleRoutes picks up to k candidate paths uniformly at random from the
// equal-cost set (§3.5: the edge "randomly chooses a few of them").
func (f *Fabric) sampleRoutes(src, dst topo.NodeID, k int) []topo.Path {
	all := f.Graph.Paths(src, dst, 8*k)
	if len(all) <= k {
		return all
	}
	f.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:k]
}

// AddFlowRoutes creates a VM-pair over an explicit candidate-path set
// (experiments use it to pin flows to specific underlay paths).
func (f *Fabric) AddFlowRoutes(vf *VF, routes []topo.Path, phi float64, demand ufabe.Demand) *Flow {
	src := f.Graph.PathSrc(routes[0])
	dst := f.Graph.PathDst(routes[0])
	if phi == 0 {
		phi = vf.GuaranteeBps / f.Cfg.Edge.BU
	}
	f.nextVM++
	pair := f.Edges[src].AddPair(ufabe.PairConfig{
		ID:     f.nextVM,
		VF:     vf.ID,
		Dst:    dst,
		Routes: routes,
		Phi:    phi,
		Demand: demand,
	})
	fl := &Flow{
		VF:     vf,
		Pair:   pair,
		Demand: demand,
		Meter:  stats.NewRateMeter(fmt.Sprintf("vf%d-pair%d", vf.ID, f.nextVM), f.Cfg.MeterInterval),
	}
	vf.pairs = append(vf.pairs, fl)
	f.Flows = append(f.Flows, fl)
	return fl
}

// SampleRates flushes every flow's rate meter up to now; call it
// periodically (or once at the end) so Meter series cover the run.
func (f *Fabric) SampleRates() {
	now := f.Eng.Now()
	for _, fl := range f.Flows {
		d := fl.Pair.Delivered
		if delta := d - fl.lastDelivered; delta > 0 {
			fl.Meter.Add(now, int(delta))
			fl.lastDelivered = d
		}
		fl.Meter.Flush(now)
	}
	f.FlushTelemetry()
	f.auditTick()
}

// FlushTelemetry publishes fabric-level instruments to the attached
// registry: per-link dataplane gauges/series, per-link Φ_l/W_l registers
// from the link's source μFAB-C agent, engine scheduling stats, and the
// fabric-wide fault aggregates. It runs from SampleRates (the meter
// interval) and is a no-op when telemetry is disabled.
func (f *Fabric) FlushTelemetry() {
	reg := f.Cfg.Telemetry
	if reg == nil {
		return
	}
	now := f.Eng.Now()
	f.Net.FlushTelemetry(now)
	for i := range f.Graph.Links {
		lid := topo.LinkID(i)
		c := f.Cores[f.Graph.Link(lid).Src]
		if c == nil {
			continue
		}
		phi, w := c.Subscription(lid)
		ent := f.Net.LinkEntity(lid)
		reg.Gauge(ent + ".phi_tokens").Set(phi)
		reg.Gauge(ent + ".window_bytes").Set(float64(w))
	}
	if src, ok := f.Eng.(sim.StatsSource); ok {
		es := src.Stats()
		reg.Gauge("sim.engine.events_processed").Set(float64(es.Processed))
		reg.Gauge("sim.engine.pending").Set(float64(es.Pending))
		// Processed and pending count logical events, so they are identical
		// across execution modes. Queue peaks and arena sizes are per-heap
		// artifacts (one heap sequentially, one per shard on the parallel
		// core), so partitioned fabrics skip them to keep snapshots
		// bit-identical for every -shards value.
		if !f.partitioned {
			reg.Gauge("sim.engine.peak_pending").Set(float64(es.PeakPending))
			reg.Gauge("sim.engine.arena_slots").Set(float64(es.ArenaSlots))
		}
	}
	fs := f.FaultStats()
	reg.Gauge("vfabric.faults.migrations").Set(float64(fs.Migrations))
	reg.Gauge("vfabric.faults.freezes_armed").Set(float64(fs.FreezesArmed))
	reg.Gauge("vfabric.faults.freeze_suppressed").Set(float64(fs.FreezeSuppressed))
	reg.Gauge("vfabric.faults.core_restarts").Set(float64(fs.CoreRestarts))
	reg.Gauge("vfabric.faults.fault_drops").Set(float64(fs.FaultDrops))
	reg.Gauge("vfabric.faults.corrupted_probes").Set(float64(fs.CorruptedProbes))
}

// StartSampling arranges for SampleRates to run every interval.
func (f *Fabric) StartSampling(interval sim.Duration) (stop func()) {
	return f.Eng.Every(interval, f.SampleRates)
}

// StartCoreCleanup starts the silent-quit cleanup loop on every μFAB-C,
// each on its own node's shard scheduler (node order keeps the schedule
// deterministic).
func (f *Fabric) StartCoreCleanup() {
	for _, n := range f.Graph.Nodes {
		if c := f.Cores[n.ID]; c != nil {
			c.StartCleanup(f.Net.NodeScheduler(n.ID))
		}
	}
}

// Rate returns the flow's acknowledged throughput in bits/s averaged over
// [from, to].
func (fl *Flow) Rate(from, to sim.Time) float64 {
	return fl.Meter.Series.MeanOver(from, to)
}

// ProbeOverhead returns probe bytes as a fraction of total (probe + data)
// bytes sent across all edges — the Fig 15b metric.
func (f *Fabric) ProbeOverhead() float64 {
	var probeB, dataB uint64
	for _, e := range f.Edges {
		probeB += e.ProbeBytesCount()
		dataB += e.DataBytesCount()
	}
	if probeB+dataB == 0 {
		return 0
	}
	return float64(probeB) / float64(probeB+dataB)
}

// MaxQueueBytes returns the largest egress queue high-water mark across
// all switch ports (host uplinks excluded).
func (f *Fabric) MaxQueueBytes() int {
	max := 0
	for i := range f.Net.Ports {
		p := &f.Net.Ports[i]
		if f.Graph.Node(p.Link.Src).Kind != topo.Switch {
			continue
		}
		if p.MaxQueueBytes > max {
			max = p.MaxQueueBytes
		}
	}
	return max
}
