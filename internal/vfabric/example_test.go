package vfabric_test

import (
	"fmt"

	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/vfabric"
)

// Example demonstrates the core promise: two tenants with hose guarantees
// share a bottleneck in proportion to what they bought, and the idle
// tenant's bandwidth is reclaimed the moment it has demand again.
func Example() {
	eng := sim.New()
	star := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
	fabric := vfabric.New(eng, star.Graph, vfabric.Config{Seed: 42})

	gold := fabric.AddVF(1, 6e9, 5)   // 6 Gbps hose
	bronze := fabric.AddVF(2, 2e9, 2) // 2 Gbps hose
	g := fabric.AddFlow(gold, star.Hosts[0], star.Hosts[2], 0)
	b := fabric.AddFlow(bronze, star.Hosts[1], star.Hosts[2], 0)
	g.Buffer.Add(1 << 40)
	b.Buffer.Add(1 << 40)

	stop := fabric.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(5 * sim.Millisecond)
	stop()
	fabric.SampleRates()

	ratio := g.Rate(3*sim.Millisecond, 5*sim.Millisecond) /
		b.Rate(3*sim.Millisecond, 5*sim.Millisecond)
	fmt.Printf("gold:bronze share ratio ≈ %.0f:1\n", ratio)
	fmt.Printf("switch queue stayed under 3 BDP: %v\n",
		fabric.MaxQueueBytes() < 3*45_000)
	// Output:
	// gold:bronze share ratio ≈ 3:1
	// switch queue stayed under 3 BDP: true
}
