package vfabric

import (
	"fmt"

	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/token"
	"ufab/internal/topo"
	"ufab/internal/ufabe"
)

// MultiFlow is a VM-pair spread over several underlay paths per Appendix F
// of the paper. Each path is carried by one μFAB subflow (pinned to its
// path); the pair's total token is split across the paths with
// Algorithm 2 (equal split, demand-bounded paths boosted, spare
// redistributed) every rebalance period. In high-bisection fabrics a
// single dynamic path suffices (§6), but oversubscribed DCNs need multiple
// underlay paths to reach the pair's full allocation — which is exactly
// what this type demonstrates.
type MultiFlow struct {
	VF *VF
	// Subflows are the per-path μFAB flows.
	Subflows []*Flow
	// Buffer is the pair's shared demand; bytes are dispatched to the
	// least-backlogged subflow.
	Buffer *ufabe.Buffer

	fabric    *Fabric
	phiPair   float64
	paths     []*token.PathToken
	lastBytes []int64
	stopFns   []func()
}

// AddMultiFlow creates a VM-pair over k pinned underlay paths with a total
// token budget of the VF's guarantee. Demand pushed through mf.Send is
// spread across the subflows; tokens rebalance every rebalance period
// (default: 10 token periods).
func (f *Fabric) AddMultiFlow(vf *VF, src, dst topo.NodeID, k int, rebalance sim.Duration) *MultiFlow {
	routes := f.Graph.Paths(src, dst, 0)
	if len(routes) == 0 {
		panic(fmt.Sprintf("vfabric: no path %d→%d", src, dst))
	}
	if k <= 0 || k > len(routes) {
		k = len(routes)
	}
	f.rng.Shuffle(len(routes), func(i, j int) { routes[i], routes[j] = routes[j], routes[i] })
	routes = routes[:k]
	if rebalance <= 0 {
		rebalance = 320 * sim.Microsecond
	}
	phiPair := vf.GuaranteeBps / f.Cfg.Edge.BU
	mf := &MultiFlow{
		VF:      vf,
		Buffer:  &ufabe.Buffer{},
		fabric:  f,
		phiPair: phiPair,
	}
	for i := range routes {
		pt := &token.PathToken{Demand: -1, Token: phiPair / float64(k)}
		mf.paths = append(mf.paths, pt)
		// Each subflow is pinned to its path so Algorithm 2 controls
		// the split, not the path monitor.
		fl := f.AddFlowRoutes(vf, routes[i:i+1], pt.Token, &ufabe.Buffer{})
		fl.Buffer = fl.Demand.(*ufabe.Buffer)
		mf.Subflows = append(mf.Subflows, fl)
		mf.lastBytes = append(mf.lastBytes, 0)
	}
	mf.stopFns = append(mf.stopFns, f.Eng.Every(rebalance, func() { mf.rebalance(rebalance) }))
	return mf
}

// Send pushes n bytes of demand, dispatching to the subflow with the
// smallest backlog (per-path queues, as the FPGA's per-VM-pair queues do).
func (mf *MultiFlow) Send(n int64) {
	best := 0
	for i, fl := range mf.Subflows {
		if fl.Buffer.Pending() < mf.Subflows[best].Buffer.Pending() {
			best = i
		}
		_ = i
	}
	mf.Subflows[best].Buffer.Add(n)
}

// SendAll pushes n bytes to every subflow (backlogged multipath use).
func (mf *MultiFlow) SendAll(n int64) {
	for _, fl := range mf.Subflows {
		fl.Buffer.Add(n)
	}
}

// rebalance measures each path's demand and reruns Algorithm 2.
func (mf *MultiFlow) rebalance(period sim.Duration) {
	bu := mf.fabric.Cfg.Edge.BU
	for i, fl := range mf.Subflows {
		sent := fl.Pair.SentBytes
		rate := float64(sent-mf.lastBytes[i]) * 8 / period.Seconds()
		mf.lastBytes[i] = sent
		if fl.Buffer.Pending() > 0 {
			mf.paths[i].Demand = -1 // backlogged: unbounded
		} else {
			mf.paths[i].Demand = rate / bu
		}
	}
	token.MultipathAssign(mf.phiPair, mf.paths)
	for i, fl := range mf.Subflows {
		fl.Pair.SetPhi(mf.paths[i].Token)
	}
}

// Stop cancels the rebalance loop.
func (mf *MultiFlow) Stop() {
	for _, s := range mf.stopFns {
		s()
	}
}

// Rate returns the pair's aggregate acknowledged throughput over [from, to].
func (mf *MultiFlow) Rate(from, to sim.Time) float64 {
	total := 0.0
	for _, fl := range mf.Subflows {
		if r := fl.Meter.Series.MeanOver(from, to); r == r { // skip NaN
			total += r
		}
	}
	return total
}

// Delivered returns the aggregate acknowledged bytes.
func (mf *MultiFlow) Delivered() int64 {
	var d int64
	for _, fl := range mf.Subflows {
		d += fl.Pair.Delivered
	}
	return d
}

// RTT pools the subflows' RTT samples' quantiles.
func (mf *MultiFlow) RTT() stats.Samples {
	var s stats.Samples
	for _, fl := range mf.Subflows {
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			if v := fl.Pair.RTT.P(q); v == v {
				s.Add(v)
			}
		}
	}
	return s
}
