package vfabric

import (
	"testing"

	"ufab/internal/audit"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// auditedStar assembles an audited 3-host star with two 4G-guarantee VFs
// sending backlogged into the same host.
func auditedStar(seed int64) (*sim.Engine, *Fabric, *Flow, *Flow) {
	eng := sim.New()
	st := topo.NewStar(3, topo.Gbps(10), 5*sim.Microsecond)
	reg := telemetry.New()
	reg.EnableRecorder(0)
	f := New(eng, st.Graph, Config{
		Seed:      seed,
		Telemetry: reg,
		Audit:     &audit.Config{},
	})
	vf1 := f.AddVF(1, 4e9, 3)
	vf2 := f.AddVF(2, 4e9, 3)
	fl1 := f.AddFlow(vf1, st.Hosts[0], st.Hosts[2], 0)
	fl2 := f.AddFlow(vf2, st.Hosts[1], st.Hosts[2], 0)
	fl1.Buffer.Add(1 << 40)
	fl2.Buffer.Add(1 << 40)
	return eng, f, fl1, fl2
}

func TestAuditCleanRun(t *testing.T) {
	eng, f, _, _ := auditedStar(1)
	stop := f.StartSampling(100 * sim.Microsecond)
	eng.RunUntil(14 * sim.Millisecond)
	stop()
	f.SampleRates()
	log := f.AuditLog()
	if log == nil {
		t.Fatal("AuditLog = nil with Audit configured")
	}
	if n := log.Unexcused(); n != 0 {
		t.Fatalf("clean run has %d unexcused findings: %+v", n, log.Findings())
	}
}

func TestAuditCatchesDeliberateMinBWViolation(t *testing.T) {
	eng, f, fl1, _ := auditedStar(1)
	stop := f.StartSampling(100 * sim.Microsecond)
	// Sabotage VF 1 mid-run: pin its pair's sender token to 1 (100 Mbps
	// worth) while the VF's declared guarantee stays 4G — the WFQ share
	// collapses and Eqn 1 is violated from here on.
	eng.At(6*sim.Millisecond, func() { fl1.Pair.SetPhi(1) })
	eng.RunUntil(14 * sim.Millisecond)
	stop()
	f.SampleRates()
	log := f.AuditLog()
	fs := log.Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly the one injected min-BW violation", fs)
	}
	fd := fs[0]
	if fd.Kind != audit.MinBWViolation || fd.VF != 1 || fd.Entity != "vf.1" {
		t.Fatalf("finding = %+v, want min_bw on vf.1", fd)
	}
	if fd.Excused {
		t.Fatalf("finding excused without any fault window: %+v", fd)
	}
	// The violation interval must start after the sabotage (plus up to one
	// rate window of averaging lag) and persist to the end of the run.
	if fd.FromPS < 6_000_000_000 || fd.FromPS > 8_500_000_000 {
		t.Fatalf("FromPS = %d, want within [6ms, 8.5ms]", fd.FromPS)
	}
	if fd.ToPS < 13_500_000_000 {
		t.Fatalf("ToPS = %d, want the violation held to the end (≥13.5ms)", fd.ToPS)
	}
	if fd.Observed >= fd.Bound || fd.Observed > 1e9 {
		t.Fatalf("Observed = %g (bound %g), want the collapsed ≈0.23G rate", fd.Observed, fd.Bound)
	}
}
