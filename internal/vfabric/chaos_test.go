package vfabric

import (
	"math"
	"testing"

	"ufab/internal/chaos"
	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/ufabc"
)

func TestAddTenantValidation(t *testing.T) {
	_, f, st := starFabric(3, 12)
	pair := func(src, dst topo.NodeID) []chaos.PairSpec {
		return []chaos.PairSpec{{Src: src, Dst: dst}}
	}
	good := chaos.TenantSpec{VF: 1, GuaranteeBps: 1e9, WeightClass: 2,
		Pairs: pair(st.Hosts[0], st.Hosts[1])}
	bad := []chaos.TenantSpec{
		{VF: 2, GuaranteeBps: 0, Pairs: pair(st.Hosts[0], st.Hosts[1])},   // no guarantee
		{VF: 2, GuaranteeBps: 1e9, Pairs: pair(st.Hosts[0], st.Hosts[0])}, // src == dst
		{VF: 2, GuaranteeBps: 1e9, Pairs: pair(st.Hosts[0], st.Center)},   // switch endpoint
		{VF: 2, GuaranteeBps: 1e9, Pairs: pair(st.Hosts[0], 99)},          // out of range
		{VF: 2, GuaranteeBps: 1e9, Pairs: []chaos.PairSpec{ // one bad pair poisons the spec
			{Src: st.Hosts[0], Dst: st.Hosts[1]}, {Src: st.Hosts[1], Dst: -1}}},
	}
	if !f.AddTenant(good) {
		t.Fatal("valid tenant rejected")
	}
	if f.AddTenant(good) {
		t.Error("duplicate VF accepted")
	}
	flows := len(f.Flows)
	for i, spec := range bad {
		if f.AddTenant(spec) {
			t.Errorf("invalid spec %d accepted", i)
		}
		if f.VFs[2] != nil || len(f.Flows) != flows {
			t.Fatalf("rejected spec %d mutated the fabric", i)
		}
	}
	if !f.RemoveTenant(1) || f.VFs[1] != nil || len(f.Flows) != 0 {
		t.Fatal("RemoveTenant did not tear the VF down")
	}
	if f.RemoveTenant(1) {
		t.Error("double removal accepted")
	}
	// The id is free for reuse after removal.
	if !f.AddTenant(good) {
		t.Error("freed VF id rejected")
	}
}

func TestRestartCoreAgentUnknownNode(t *testing.T) {
	_, f, st := starFabric(2, 13)
	if !f.RestartCoreAgent(st.Center) {
		t.Error("switch agent restart rejected")
	}
	if f.RestartCoreAgent(999) {
		t.Error("restart of agent-less node accepted")
	}
	if got := f.FaultStats().CoreRestarts; got != 1 {
		t.Errorf("CoreRestarts = %d, want 1", got)
	}
}

// TestScenarioRestartAndChurn is the end-to-end satellite check: a μFAB-C
// restart wipes the core registers, live tenants rebuild them without
// double-counting, and an arrive/depart churn cycle leaves no Φ residue
// with the silent-quit cleanup running throughout.
func TestScenarioRestartAndChurn(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(4, topo.Gbps(10), 5*sim.Microsecond)
	f := New(eng, st.Graph, Config{Seed: 6,
		Core: ufabc.Config{CleanupPeriod: 2 * sim.Millisecond}})
	f.StartCoreCleanup()
	for i, g := range []float64{2e9, 1e9} {
		vf := f.AddVF(int32(i+1), g, 2)
		backlog(f.AddFlow(vf, st.Hosts[i], st.Hosts[3], 0))
	}
	down := st.Graph.Paths(st.Hosts[0], st.Hosts[3], 1)[0][1] // center→H4
	core := f.Cores[st.Center]
	phiAt := func() float64 { phi, _ := core.Subscription(down); return phi }

	inj := f.ApplyScenario(chaos.New("restart-churn").
		RestartAgent(4*sim.Millisecond, st.Center).
		ArriveTenant(6*sim.Millisecond, chaos.TenantSpec{
			VF: 7, GuaranteeBps: 1e9, WeightClass: 2,
			Pairs: []chaos.PairSpec{{Src: st.Hosts[2], Dst: st.Hosts[3]}},
		}).
		DepartTenant(9*sim.Millisecond, 7).
		DepartTenant(9*sim.Millisecond+1, 99)) // unknown VF → rejected

	var phiBefore, phiWiped, phiRebuilt, phiPeak float64
	eng.At(4*sim.Millisecond-1, func() { phiBefore = phiAt() })
	eng.At(4*sim.Millisecond+1, func() { phiWiped = phiAt() })
	eng.At(6*sim.Millisecond-1, func() { phiRebuilt = phiAt() })
	eng.At(8*sim.Millisecond, func() { phiPeak = phiAt() })
	eng.RunUntil(14 * sim.Millisecond)
	phiFinal := phiAt()

	if inj.Rejected() != 1 {
		t.Errorf("Rejected() = %d, want 1 (unknown VF)\n%v", inj.Rejected(), inj.Log)
	}
	for _, k := range []chaos.Kind{chaos.AgentRestart, chaos.TenantArrive} {
		if inj.Applied(k) != 1 {
			t.Errorf("Applied(%v) = %d, want 1", k, inj.Applied(k))
		}
	}
	if phiBefore < 25 {
		t.Fatalf("Φ = %v before restart, want ≈30 (2G+1G tenants)", phiBefore)
	}
	if phiWiped != 0 {
		t.Errorf("Φ = %v right after restart, want 0 (registers wiped)", phiWiped)
	}
	if math.Abs(phiRebuilt-phiBefore) > 0.5 {
		t.Errorf("Φ rebuilt to %v, want %v (no loss, no double count)", phiRebuilt, phiBefore)
	}
	if phiPeak < phiRebuilt+5 {
		t.Errorf("Φ = %v with the churn tenant active, want ≈%v+10", phiPeak, phiRebuilt)
	}
	if math.Abs(phiFinal-phiBefore) > 0.5 {
		t.Errorf("Φ = %v after churn drained, want %v (no residue)", phiFinal, phiBefore)
	}
	if f.VFs[7] != nil || len(f.Flows) != 2 {
		t.Errorf("churn tenant not torn down: %d flows", len(f.Flows))
	}
	if got := f.FaultStats().CoreRestarts; got != 1 {
		t.Errorf("CoreRestarts = %d, want 1", got)
	}
}
