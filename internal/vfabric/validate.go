package vfabric

// Shared tenant-spec validation. The construction-time API (AddVF,
// AddFlow — which panic on misuse) and the mid-run churn path
// (AddTenant — which must reject and return false, an injected event
// never crashes a running simulation) check the same rules through these
// helpers, so a malformed spec is rejected identically however it
// arrives: non-positive guarantee, duplicate VF id, weight class outside
// the WFQ range, unknown or edge-less hosts, self-loop pairs, and
// unreachable endpoints.

import (
	"fmt"

	"ufab/internal/chaos"
	"ufab/internal/topo"
	"ufab/internal/ufabe"
)

// validateVF checks a VF registration against the fabric's current state.
func (f *Fabric) validateVF(id int32, guaranteeBps float64, weightClass int) error {
	if f.VFs[id] != nil {
		return fmt.Errorf("vfabric: VF %d already exists", id)
	}
	if guaranteeBps <= 0 {
		return fmt.Errorf("vfabric: VF %d non-positive guarantee %v", id, guaranteeBps)
	}
	if weightClass < 0 || weightClass >= ufabe.NumWeightClasses {
		return fmt.Errorf("vfabric: VF %d weight class %d outside 0..%d",
			id, weightClass, ufabe.NumWeightClasses-1)
	}
	return nil
}

// validatePair checks one VM-pair's endpoints: both must be hosts with
// edge agents, distinct, and connected.
func (f *Fabric) validatePair(src, dst topo.NodeID) error {
	if !f.validHost(src) {
		return fmt.Errorf("vfabric: src %d is not a host with an edge agent", src)
	}
	if !f.validHost(dst) {
		return fmt.Errorf("vfabric: dst %d is not a host with an edge agent", dst)
	}
	if src == dst {
		return fmt.Errorf("vfabric: pair %d→%d is a self-loop", src, dst)
	}
	if len(f.Graph.Paths(src, dst, 1)) == 0 {
		return fmt.Errorf("vfabric: no path %d→%d", src, dst)
	}
	return nil
}

// ValidateTenantSpec checks a whole tenant spec without mutating the
// fabric: the VF registration plus every pair. The admission controller
// and the chaos churn path both call it before materializing anything.
func (f *Fabric) ValidateTenantSpec(spec chaos.TenantSpec) error {
	if err := f.validateVF(spec.VF, spec.GuaranteeBps, spec.WeightClass); err != nil {
		return err
	}
	for _, pr := range spec.Pairs {
		if err := f.validatePair(pr.Src, pr.Dst); err != nil {
			return err
		}
	}
	return nil
}
