// Package ufabc implements μFAB-C, the informative-core agent that runs on
// every programmable switch (§3.6, §4.2). For each egress link it
// maintains two registers — the total bandwidth subscription Φ_l and the
// total sending window W_l of all active VM-pairs — behind a two-bank
// hashed active-VM-pair table, and stamps each passing probe with an INT
// hop record carrying {W_l, Φ_l, tx_l, q_l, C_l}.
//
// VM-pairs announce themselves through their probes' φ and w fields;
// finish probes deduct a departing VM-pair's contribution; a periodic
// cleanup expires VM-pairs that went silent (§4.2 runs it every 10 s).
// Φ_l is used against the *target* capacity C̄_l = η·C_l (η = 0.95) so a
// 5% headroom absorbs transient bursts and table-collision under-counts.
package ufabc

import (
	"ufab/internal/bloom"
	"ufab/internal/dataplane"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// Config parameterizes a μFAB-C agent.
type Config struct {
	// TableSlotsPerBank sizes the active-VM-pair table (default 16384,
	// supporting the paper's 20K VM-pairs at <5% omission).
	TableSlotsPerBank int
	// TargetUtilization is η: the fraction of physical capacity
	// advertised as the target capacity C̄_l (default 0.95).
	TargetUtilization float64
	// CleanupPeriod is how often silent VM-pairs are expired (default
	// 10 s per §4.2; experiments shorten it).
	CleanupPeriod sim.Duration
	// CleanupAge is how long a VM-pair may be silent before expiry
	// (default = CleanupPeriod).
	CleanupAge sim.Duration
	// UseTimingFilter switches the active-pair structure to the
	// rotating (timing Bloom filter) variant §3.6 suggests: expiry
	// becomes an epoch swap instead of a timestamp scan, at the cost of
	// a staleness bound of two cleanup periods.
	UseTimingFilter bool
}

func (c *Config) setDefaults() {
	if c.TableSlotsPerBank == 0 {
		c.TableSlotsPerBank = 16384
	}
	if c.TargetUtilization == 0 {
		c.TargetUtilization = 0.95
	}
	if c.CleanupPeriod == 0 {
		c.CleanupPeriod = 10 * sim.Second
	}
	if c.CleanupAge == 0 {
		c.CleanupAge = c.CleanupPeriod
	}
}

// linkState is the per-egress-link register set. Exactly one of scan/rot
// is non-nil, per Config.UseTimingFilter.
type linkState struct {
	scan *bloom.Table
	rot  *bloom.Rotating
	// phiMilli is Φ_l in millitokens; windowBytes is W_l in bytes.
	phiMilli    int64
	windowBytes int64
}

func (ls *linkState) update(key uint64, phi, w uint32, now int64) (int64, int64, bool) {
	if ls.rot != nil {
		return ls.rot.Update(key, phi, w, now)
	}
	return ls.scan.Update(key, phi, w, now)
}

func (ls *linkState) remove(key uint64) (int64, int64, bool) {
	if ls.rot != nil {
		return ls.rot.Remove(key)
	}
	return ls.scan.Remove(key)
}

func (ls *linkState) cleanup(cutoff int64) (int64, int64) {
	if ls.rot != nil {
		dPhi, dW, _ := ls.rot.Rotate()
		return dPhi, dW
	}
	dPhi, dW, _ := ls.scan.Expire(cutoff)
	return dPhi, dW
}

// Agent is a μFAB-C instance for one switch (or one host hypervisor, for
// the partial-deployment mode of §6). It implements
// dataplane.SwitchAgent.
type Agent struct {
	cfg   Config
	links map[topo.LinkID]*linkState

	// Telemetry. New seeds private counters so counts accrue without a
	// registry; AttachTelemetry swaps in the shared registry-backed ones.
	// The base values snapshot each counter at attach time: experiments
	// that build several fabrics against one registry reuse counter names,
	// so the per-agent view is the delta since this agent attached.
	entity                   string
	cProbes                  *telemetry.Counter
	cRestarts                *telemetry.Counter
	cPhiChurn                *telemetry.Counter // sum |ΔΦ_l| in millitokens
	cWChurn                  *telemetry.Counter // sum |ΔW_l| in bytes
	baseProbes, baseRestarts int64
	rec                      *telemetry.Recorder
}

// New returns an agent with the given configuration.
func New(cfg Config) *Agent {
	cfg.setDefaults()
	return &Agent{
		cfg:       cfg,
		links:     make(map[topo.LinkID]*linkState),
		cProbes:   &telemetry.Counter{},
		cRestarts: &telemetry.Counter{},
		cPhiChurn: &telemetry.Counter{},
		cWChurn:   &telemetry.Counter{},
	}
}

// AttachTelemetry registers this agent's instruments under
// "ufabc.<instance>.*" and wires register-churn events into reg's flight
// recorder. Call before the simulation starts; a nil reg is a no-op.
func (a *Agent) AttachTelemetry(reg *telemetry.Registry, instance string) {
	if reg == nil {
		return
	}
	a.entity = "ufabc." + instance
	a.cProbes = reg.Counter(a.entity + ".probes_seen")
	a.cRestarts = reg.Counter(a.entity + ".restarts")
	a.cPhiChurn = reg.Counter(a.entity + ".phi_churn_millitokens")
	a.cWChurn = reg.Counter(a.entity + ".w_churn_bytes")
	a.baseProbes = a.cProbes.Value()
	a.baseRestarts = a.cRestarts.Value()
	a.rec = reg.Recorder()
}

// ProbesSeenCount returns how many probes the agent has processed (the
// delta since AttachTelemetry when a registry is attached).
func (a *Agent) ProbesSeenCount() uint64 {
	return uint64(a.cProbes.Value() - a.baseProbes)
}

// RestartCount returns how many times the agent was restarted (the delta
// since AttachTelemetry when a registry is attached).
func (a *Agent) RestartCount() uint64 {
	return uint64(a.cRestarts.Value() - a.baseRestarts)
}

// StartCleanup registers the periodic silent-quit cleanup on the engine
// and returns a stop function.
func (a *Agent) StartCleanup(eng sim.Scheduler) (stop func()) {
	return eng.Every(a.cfg.CleanupPeriod, func() {
		cutoff := int64(eng.Now() - a.cfg.CleanupAge)
		for _, ls := range a.links {
			dPhi, dW := ls.cleanup(cutoff)
			ls.phiMilli += dPhi
			ls.windowBytes += dW
		}
	})
}

// Restart models an agent reboot: every per-link register — the hashed
// active-VM-pair tables and the Φ_l/W_l aggregates — is lost. The next
// probe of each still-active pair re-registers it, so the registers
// rebuild within an RTT; because the tables restart empty, cleanup never
// sees stale pre-restart entries and re-registration cannot double-count.
func (a *Agent) Restart() {
	a.links = make(map[topo.LinkID]*linkState)
	a.cRestarts.Inc()
}

func (a *Agent) link(id topo.LinkID) *linkState {
	ls := a.links[id]
	if ls == nil {
		ls = &linkState{}
		if a.cfg.UseTimingFilter {
			ls.rot = bloom.NewRotating(a.cfg.TableSlotsPerBank)
		} else {
			ls.scan = bloom.New(a.cfg.TableSlotsPerBank)
		}
		a.links[id] = ls
	}
	return ls
}

// Subscription returns the current Φ_l (tokens) and W_l (bytes) registers
// for a link, for tests and experiment instrumentation.
func (a *Agent) Subscription(id topo.LinkID) (phiTokens float64, windowBytes int64) {
	ls := a.links[id]
	if ls == nil {
		return 0, 0
	}
	return float64(ls.phiMilli) * 1e-3, ls.windowBytes
}

// pairKey builds the table key from the probe identity. The switch
// recognizes the VM-pair (§3.6), NOT the (pair, path) combination:
// candidate paths of one pair share prefix links (always the host
// uplink), and keying by pair keeps Φ_l idempotent when several candidate
// probes of the same pair traverse the same link during a migration
// evaluation. The cost is a transient under-count on a link both of a
// pair's active paths share in the multipath mode of Appendix F, digested
// by the 5% headroom like other register noise.
func pairKey(p *probe.Packet) uint64 {
	return uint64(p.VMPair)
}

// OnForward implements dataplane.SwitchAgent: it processes probe packets
// at egress enqueue time, updating the link registers and appending the
// INT hop record. Data, ACK and response packets pass through untouched
// (responses only carry information back; §3.2 step 5).
func (a *Agent) OnForward(pkt *dataplane.Packet, out *dataplane.Port, now sim.Time) {
	if pkt.Kind != dataplane.Probe || len(pkt.Payload) == 0 {
		return
	}
	p, _, err := probe.Decode(pkt.Payload)
	if err != nil {
		return // malformed probe: forward without touching registers
	}
	if !(p.Phi >= 0 && p.Phi < 1e12) {
		// A corrupted payload can decode into a NaN/Inf/absurd φ; keep
		// such garbage out of the Φ_l register (NaN fails the comparison).
		return
	}
	a.cProbes.Inc()
	ls := a.link(out.Link.ID)
	key := pairKey(p)
	// The probe's wire identity (pair, path, seq) reproduces the edge's
	// trace id, so per-hop register updates join the probe's causal trace.
	trace := telemetry.SpanID(telemetry.TraceProbe, int64(p.VMPair), int64(p.PathID), int64(p.Seq))
	switch p.Kind {
	case probe.KindProbe:
		phiMilli := uint32(p.Phi*1000 + 0.5)
		dPhi, dW, _ := ls.update(key, phiMilli, p.Window, int64(now))
		ls.phiMilli += dPhi
		ls.windowBytes += dW
		a.recordChurn(dPhi, dW, now, "update", trace)
	case probe.KindFinish:
		dPhi, dW, _ := ls.remove(key)
		ls.phiMilli += dPhi
		ls.windowBytes += dW
		a.recordChurn(dPhi, dW, now, "remove", trace)
	default:
		return
	}
	// Stamp the INT record against the *target* capacity.
	err = p.AppendHop(probe.Hop{
		TotalWindow: clampU32(ls.windowBytes),
		TotalTokens: float64(ls.phiMilli) * 1e-3,
		TxRate:      out.TxRate(now),
		Queue:       uint32(out.QueueBytes()),
		Capacity:    a.cfg.TargetUtilization * out.Capacity(),
		LinkID:      int32(out.Link.ID),
	})
	if err != nil {
		return // path longer than MaxHops: leave remaining hops unstamped
	}
	buf, err := p.Encode(pkt.Payload[:0])
	if err != nil {
		return
	}
	pkt.Payload = buf
	pkt.Size = p.Size()
}

// recordChurn accounts a register delta in the churn counters and the
// flight recorder. A no-op when telemetry is unattached or the probe left
// the registers untouched (the steady-state re-registration case).
func (a *Agent) recordChurn(dPhi, dW int64, now sim.Time, note string, trace uint64) {
	if a.cPhiChurn == nil || (dPhi == 0 && dW == 0) {
		return
	}
	a.cPhiChurn.Add(abs64(dPhi))
	a.cWChurn.Add(abs64(dW))
	if a.rec != nil {
		a.rec.Record(telemetry.Event{T: int64(now), Kind: telemetry.EvRegister,
			Entity: a.entity, A: dPhi, B: dW, Note: note, Trace: trace, Span: 2})
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func clampU32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}
