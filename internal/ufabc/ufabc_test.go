package ufabc

import (
	"math"
	"testing"

	"ufab/internal/dataplane"
	"ufab/internal/probe"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// testNet builds a 2-host star with a μFAB-C agent on the switch and
// returns everything needed to push probes through it.
func testNet(t *testing.T, cfg Config) (*sim.Engine, *dataplane.Network, *topo.Star, *Agent, topo.Path) {
	t.Helper()
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	net := dataplane.New(eng, st.Graph, dataplane.Config{})
	ag := New(cfg)
	net.SetSwitchAgent(st.Center, ag)
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	return eng, net, st, ag, route
}

func sendProbe(net *dataplane.Network, route topo.Path, p *probe.Packet) {
	buf, err := p.Encode(nil)
	if err != nil {
		panic(err)
	}
	net.Send(&dataplane.Packet{
		Kind:    dataplane.Probe,
		VMPair:  dataplane.VMPair(p.VMPair),
		Size:    probe.WireSize(len(p.Hops)),
		Route:   route,
		Payload: buf,
	})
}

func TestProbeAccumulatesRegisters(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	var got *probe.Packet
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {
		p, _, err := probe.Decode(pkt.Payload)
		if err != nil {
			t.Errorf("decode at dst: %v", err)
			return
		}
		got = p
	}))
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, PathID: 0, Phi: 5, Window: 64 * 1024})
	eng.Run()
	if got == nil {
		t.Fatal("probe not delivered")
	}
	if len(got.Hops) != 1 {
		t.Fatalf("hops = %d, want 1 (switch egress)", len(got.Hops))
	}
	h := got.Hops[0]
	if math.Abs(h.TotalTokens-5) > 0.11 {
		t.Errorf("Φ = %v, want 5", h.TotalTokens)
	}
	if h.TotalWindow < 63*1024 || h.TotalWindow > 65*1024 {
		t.Errorf("W = %d, want ≈64KiB", h.TotalWindow)
	}
	// Target capacity is η·10G = 9.5G, advertised via the nearest speed
	// class (10G).
	if h.Capacity != 10e9 {
		t.Errorf("C = %v", h.Capacity)
	}
	phi, w := ag.Subscription(route[1])
	if math.Abs(phi-5) > 1e-6 || w != 64*1024 {
		t.Errorf("registers: Φ=%v W=%d", phi, w)
	}
}

func TestMultipleVMPairsSum(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	for vm := uint32(1); vm <= 10; vm++ {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: vm, Phi: 2, Window: 1024})
	}
	eng.Run()
	phi, w := ag.Subscription(route[1])
	if math.Abs(phi-20) > 1e-6 {
		t.Errorf("Φ = %v, want 20", phi)
	}
	if w != 10240 {
		t.Errorf("W = %d, want 10240", w)
	}
}

func TestRepeatedProbeUpdatesNotDoubleCounts(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	for i := 0; i < 5; i++ {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: uint32(1024 * (i + 1))})
		eng.Run()
	}
	phi, w := ag.Subscription(route[1])
	if math.Abs(phi-5) > 1e-6 {
		t.Errorf("Φ = %v, want 5 (no double count)", phi)
	}
	if w != 5120 {
		t.Errorf("W = %d, want 5120 (latest window)", w)
	}
}

func TestFinishProbeDeducts(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: 1024})
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 2, Phi: 3, Window: 512})
	eng.Run()
	sendProbe(net, route, &probe.Packet{Kind: probe.KindFinish, VMPair: 1, Phi: 5, Window: 1024})
	eng.Run()
	phi, w := ag.Subscription(route[1])
	if math.Abs(phi-3) > 1e-6 || w != 512 {
		t.Errorf("after finish: Φ=%v W=%d, want 3/512", phi, w)
	}
}

func TestSilentQuitCleanup(t *testing.T) {
	cfg := Config{CleanupPeriod: 10 * sim.Millisecond}
	eng, net, st, ag, route := testNet(t, cfg)
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	stop := ag.StartCleanup(eng)
	defer stop()
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: 1000})
	// Keep VM-pair 2 alive with periodic probes.
	aliveStop := eng.Every(5*sim.Millisecond, func() {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 2, Phi: 3, Window: 500})
	})
	eng.RunUntil(25 * sim.Millisecond)
	aliveStop()
	phi, _ := ag.Subscription(route[1])
	if math.Abs(phi-3) > 1e-6 {
		t.Errorf("after cleanup Φ = %v, want 3 (silent VM-pair expired)", phi)
	}
}

func TestSilentQuitCleanupTimingFilter(t *testing.T) {
	// The rotating variant expires a silent pair within two epochs.
	cfg := Config{CleanupPeriod: 10 * sim.Millisecond, UseTimingFilter: true}
	eng, net, st, ag, route := testNet(t, cfg)
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	stop := ag.StartCleanup(eng)
	defer stop()
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: 1024})
	aliveStop := eng.Every(5*sim.Millisecond, func() {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 2, Phi: 3, Window: 512})
	})
	eng.RunUntil(35 * sim.Millisecond)
	aliveStop()
	phi, _ := ag.Subscription(route[1])
	if math.Abs(phi-3) > 1e-6 {
		t.Errorf("after rotations Φ = %v, want 3 (silent VM-pair expired)", phi)
	}
}

func TestTelemetryReflectsLoadAndQueue(t *testing.T) {
	eng, net, st, _, route := testNet(t, Config{})
	var last *probe.Packet
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {
		if pkt.Kind == dataplane.Probe {
			last, _, _ = probe.Decode(pkt.Payload)
		}
	}))
	// Saturate the switch→host link with data from host 0, then probe.
	var feed func()
	feed = func() {
		if eng.Now() > 100*sim.Microsecond {
			return
		}
		net.Send(&dataplane.Packet{Kind: dataplane.Data, Size: 1500, Route: route})
		eng.After(1200*sim.Nanosecond, feed) // 10 Gbps line rate
	}
	eng.At(0, feed)
	eng.At(95*sim.Microsecond, func() {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 9, Phi: 1, Window: 1})
	})
	eng.Run()
	if last == nil {
		t.Fatal("no probe delivered")
	}
	h := last.Hops[0]
	if h.TxRate < 0.7*10e9 {
		t.Errorf("probe tx rate = %v, want near line rate", h.TxRate)
	}
}

func TestDataPacketsUntouched(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	var got *dataplane.Packet
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) { got = pkt }))
	net.Send(&dataplane.Packet{Kind: dataplane.Data, Size: 1500, Route: route})
	eng.Run()
	if got == nil || got.Size != 1500 || got.Payload != nil {
		t.Fatalf("data packet modified: %+v", got)
	}
	if phi, w := ag.Subscription(route[1]); phi != 0 || w != 0 {
		t.Error("data packet affected registers")
	}
	if ag.ProbesSeenCount() != 0 {
		t.Error("data packet counted as probe")
	}
}

func TestMalformedProbeIgnored(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	net.Send(&dataplane.Packet{Kind: dataplane.Probe, Size: 10, Route: route, Payload: []byte{0xff, 0x01}})
	eng.Run()
	if phi, _ := ag.Subscription(route[1]); phi != 0 {
		t.Error("malformed probe affected registers")
	}
}

func TestProbeSizeGrowsPerHop(t *testing.T) {
	// Across the testbed (host agent absent), a cross-pod probe gains
	// one hop record per switch: 5 switches on a 6-link path.
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	net := dataplane.New(eng, tb.Graph, dataplane.Config{})
	for _, sw := range [][]topo.NodeID{tb.ToRs, tb.Aggs, tb.Cores} {
		for _, id := range sw {
			net.SetSwitchAgent(id, New(Config{}))
		}
	}
	route := tb.Graph.Paths(tb.Servers[0], tb.Servers[4], 1)[0]
	var got *probe.Packet
	var gotSize int
	net.SetHandler(tb.Servers[4], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {
		got, _, _ = probe.Decode(pkt.Payload)
		gotSize = pkt.Size
	}))
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 1, Window: 1000})
	eng.Run()
	if got == nil {
		t.Fatal("probe lost")
	}
	if len(got.Hops) != 5 {
		t.Fatalf("hops = %d, want 5", len(got.Hops))
	}
	if gotSize != probe.WireSize(5) {
		t.Errorf("packet size = %d, want %d", gotSize, probe.WireSize(5))
	}
	// Hop link IDs must follow the route's switch egress links.
	for i, h := range got.Hops {
		if topo.LinkID(h.LinkID) != route[i+1] {
			t.Errorf("hop %d link = %d, want %d", i, h.LinkID, route[i+1])
		}
	}
}

func TestRestartWipesAndRebuildsWithoutDoubleCount(t *testing.T) {
	eng, net, st, ag, route := testNet(t, Config{})
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: 1024})
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 2, Phi: 3, Window: 512})
	eng.Run()
	if phi, w := ag.Subscription(route[1]); math.Abs(phi-8) > 1e-6 || w != 1536 {
		t.Fatalf("pre-restart registers: Φ=%v W=%d", phi, w)
	}
	ag.Restart()
	if ag.RestartCount() != 1 {
		t.Errorf("RestartCount = %d, want 1", ag.RestartCount())
	}
	if phi, w := ag.Subscription(route[1]); phi != 0 || w != 0 {
		t.Fatalf("post-restart registers not wiped: Φ=%v W=%d", phi, w)
	}
	// Each pair re-registers on its next probe; repeated probes after the
	// rebuild must stay idempotent (no double count against the fresh
	// table).
	for i := 0; i < 2; i++ {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: 1024})
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 2, Phi: 3, Window: 512})
		eng.Run()
	}
	if phi, w := ag.Subscription(route[1]); math.Abs(phi-8) > 1e-6 || w != 1536 {
		t.Fatalf("rebuilt registers: Φ=%v W=%d, want 8/1536", phi, w)
	}
}

func TestRestartThenCleanupExpiresStalePairs(t *testing.T) {
	// Satellite check for silent-quit cleanup × faults: the cleanup loop
	// keeps operating on the registers an agent rebuilds after a restart.
	cfg := Config{CleanupPeriod: 10 * sim.Millisecond}
	eng, net, st, ag, route := testNet(t, cfg)
	net.SetHandler(st.Hosts[1], dataplane.HandlerFunc(func(pkt *dataplane.Packet) {}))
	stop := ag.StartCleanup(eng)
	defer stop()
	// VM-pair 1 registers once and never again; VM-pair 2 probes every
	// 5 ms until t = 25 ms.
	sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 1, Phi: 5, Window: 1024})
	aliveStop := eng.Every(5*sim.Millisecond, func() {
		sendProbe(net, route, &probe.Packet{Kind: probe.KindProbe, VMPair: 2, Phi: 3, Window: 512})
	})
	eng.At(12*sim.Millisecond, func() { ag.Restart() })
	eng.At(25*sim.Millisecond, aliveStop)
	var phiMid float64
	eng.At(21*sim.Millisecond, func() { phiMid, _ = ag.Subscription(route[1]) })
	eng.RunUntil(50 * sim.Millisecond)
	// Between restart and expiry only the still-probing pair is registered.
	if math.Abs(phiMid-3) > 1e-6 {
		t.Errorf("Φ = %v at 21 ms, want 3 (pair 1 wiped by restart, pair 2 rebuilt)", phiMid)
	}
	// Once pair 2 goes silent, the post-restart cleanup expires it too.
	if phi, w := ag.Subscription(route[1]); phi != 0 || w != 0 {
		t.Errorf("Φ=%v W=%d at 50 ms, want 0/0 (cleanup dead after restart?)", phi, w)
	}
}
