// Package chaos is μFAB's deterministic fault-injection subsystem. A
// Scenario is a declarative list of timed fault events — node crashes,
// link loss, gray (partial) link degradation, probe/INT filters, μFAB-C
// agent restarts with register state loss, and tenant churn — and an
// Injector schedules those events on the simulation engine and records a
// machine-readable injection log that experiments assert against.
//
// The package sits below vfabric: it drives any Target (vfabric.Fabric
// implements the interface) through the dataplane's per-link fault state
// and the target's agent/tenant hooks. All randomness used by injected
// faults (packet loss, probe corruption) lives in the dataplane's seeded
// fault RNG, so a scenario replays identically for a given seed — the
// property the failure-suite golden metrics and the `-jobs` determinism
// gate rely on.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// Kind enumerates the fault event types a Scenario can carry.
type Kind uint8

// Fault event kinds.
const (
	// NodeCrash fails a node: packets arriving at it or queued to leave
	// it are dropped (Fig 15's Core1 crash).
	NodeCrash Kind = iota
	// NodeRecover clears a node failure.
	NodeRecover
	// LinkDown takes a single directional link (or the duplex pair) down
	// while its endpoints stay alive — the BFD-visible black-hole case.
	LinkDown
	// LinkUp brings a downed link back.
	LinkUp
	// LinkDegrade applies a gray fault: capacity scaling, added latency,
	// random loss, and/or probe drop/corruption filters.
	LinkDegrade
	// LinkRestore clears a link's gray degradation (not its down state).
	LinkRestore
	// AgentRestart reboots the μFAB-C agent on a node: its Bloom/Φ/W
	// register state is lost and rebuilds from re-registration.
	AgentRestart
	// TenantArrive creates a tenant VF with backlogged VM-pairs.
	TenantArrive
	// TenantDepart tears a tenant VF and all its VM-pairs down.
	TenantDepart
)

var kindNames = map[Kind]string{
	NodeCrash:    "node-crash",
	NodeRecover:  "node-recover",
	LinkDown:     "link-down",
	LinkUp:       "link-up",
	LinkDegrade:  "link-degrade",
	LinkRestore:  "link-restore",
	AgentRestart: "agent-restart",
	TenantArrive: "tenant-arrive",
	TenantDepart: "tenant-depart",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText encodes the kind as its stable name, so scenario JSON files
// are human-writable.
func (k Kind) MarshalText() ([]byte, error) {
	s, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown kind %d", uint8(k))
	}
	return []byte(s), nil
}

// UnmarshalText decodes a kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	for kk, s := range kindNames {
		if s == string(b) {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("chaos: unknown kind %q", string(b))
}

// PairSpec describes one VM-pair of an arriving tenant.
type PairSpec struct {
	Src topo.NodeID `json:"src"`
	Dst topo.NodeID `json:"dst"`
	// BacklogBytes fills the pair's demand buffer on arrival; <= 0 means
	// an effectively infinite backlog.
	BacklogBytes int64 `json:"backlog_bytes,omitempty"`
}

// TenantSpec describes a tenant VF created by a TenantArrive event.
type TenantSpec struct {
	VF           int32      `json:"vf"`
	GuaranteeBps float64    `json:"guarantee_bps"`
	WeightClass  int        `json:"weight_class"`
	Pairs        []PairSpec `json:"pairs"`
}

// Event is one timed fault action. Times are relative to when the
// scenario is injected (experiments inject at t = 0, making them
// absolute).
type Event struct {
	// At is when the event fires, in simulated picoseconds
	// (sim.Duration) after injection.
	At   sim.Duration `json:"at_ps"`
	Kind Kind         `json:"kind"`
	// Node targets node events (NodeCrash/NodeRecover/AgentRestart).
	Node topo.NodeID `json:"node"`
	// Link targets link events; Duplex applies them to the reverse
	// direction as well.
	Link   topo.LinkID `json:"link"`
	Duplex bool        `json:"duplex,omitempty"`
	// Degradation parameterizes LinkDegrade.
	Degradation *dataplane.Degradation `json:"degradation,omitempty"`
	// Tenant parameterizes TenantArrive; VF targets TenantDepart.
	Tenant *TenantSpec `json:"tenant,omitempty"`
	VF     int32       `json:"vf,omitempty"`
	// Note is free-form, carried into the injection log.
	Note string `json:"note,omitempty"`
}

// detail renders the event's target for the injection log.
func (ev *Event) detail() string {
	switch ev.Kind {
	case NodeCrash, NodeRecover, AgentRestart:
		return fmt.Sprintf("node=%d", ev.Node)
	case LinkDown, LinkUp, LinkRestore:
		return fmt.Sprintf("link=%d duplex=%v", ev.Link, ev.Duplex)
	case LinkDegrade:
		d := ev.Degradation
		if d == nil {
			return fmt.Sprintf("link=%d (no degradation)", ev.Link)
		}
		return fmt.Sprintf("link=%d duplex=%v cap×%.2g +%v loss=%.3g probedrop=%.3g probecorrupt=%.3g",
			ev.Link, ev.Duplex, d.CapacityScale, d.ExtraDelay, d.LossProb, d.ProbeDropProb, d.ProbeCorruptProb)
	case TenantArrive:
		if ev.Tenant == nil {
			return "(no tenant spec)"
		}
		return fmt.Sprintf("vf=%d guarantee=%.3gG pairs=%d",
			ev.Tenant.VF, ev.Tenant.GuaranteeBps/1e9, len(ev.Tenant.Pairs))
	case TenantDepart:
		return fmt.Sprintf("vf=%d", ev.VF)
	}
	return ""
}

// Scenario is a named, declarative fault schedule.
type Scenario struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
	// ExpectExcusedMin declares how many excused audit findings this
	// scenario must produce at minimum when run under the online auditor —
	// the assertion that the injected damage was actually observed. Zero
	// means no expectation.
	ExpectExcusedMin int `json:"expect_excused_min,omitempty"`
}

// ExpectExcused sets ExpectExcusedMin and returns the scenario for
// chaining.
func (s *Scenario) ExpectExcused(n int) *Scenario {
	s.ExpectExcusedMin = n
	return s
}

// New returns an empty scenario.
func New(name string) *Scenario { return &Scenario{Name: name} }

// add appends an event and returns the scenario for chaining.
func (s *Scenario) add(ev Event) *Scenario {
	s.Events = append(s.Events, ev)
	return s
}

// CrashNode schedules a node failure.
func (s *Scenario) CrashNode(at sim.Duration, node topo.NodeID) *Scenario {
	return s.add(Event{At: at, Kind: NodeCrash, Node: node})
}

// RecoverNode schedules a node recovery.
func (s *Scenario) RecoverNode(at sim.Duration, node topo.NodeID) *Scenario {
	return s.add(Event{At: at, Kind: NodeRecover, Node: node})
}

// LinkDown schedules a link (duplex: both directions) going dark.
func (s *Scenario) LinkDown(at sim.Duration, link topo.LinkID, duplex bool) *Scenario {
	return s.add(Event{At: at, Kind: LinkDown, Link: link, Duplex: duplex})
}

// LinkUp schedules a downed link's return.
func (s *Scenario) LinkUp(at sim.Duration, link topo.LinkID, duplex bool) *Scenario {
	return s.add(Event{At: at, Kind: LinkUp, Link: link, Duplex: duplex})
}

// Flap schedules n down/up cycles starting at `at`: down for downFor,
// then up until the next period boundary.
func (s *Scenario) Flap(at sim.Duration, link topo.LinkID, duplex bool, n int, period, downFor sim.Duration) *Scenario {
	for i := 0; i < n; i++ {
		t := at + sim.Duration(i)*period
		s.LinkDown(t, link, duplex)
		s.LinkUp(t+downFor, link, duplex)
	}
	return s
}

// Degrade schedules a gray fault on a link.
func (s *Scenario) Degrade(at sim.Duration, link topo.LinkID, duplex bool, d dataplane.Degradation) *Scenario {
	dd := d
	return s.add(Event{At: at, Kind: LinkDegrade, Link: link, Duplex: duplex, Degradation: &dd})
}

// Restore schedules the removal of a link's gray fault.
func (s *Scenario) Restore(at sim.Duration, link topo.LinkID, duplex bool) *Scenario {
	return s.add(Event{At: at, Kind: LinkRestore, Link: link, Duplex: duplex})
}

// RestartAgent schedules a μFAB-C agent restart (register state loss).
func (s *Scenario) RestartAgent(at sim.Duration, node topo.NodeID) *Scenario {
	return s.add(Event{At: at, Kind: AgentRestart, Node: node})
}

// ArriveTenant schedules a tenant arrival.
func (s *Scenario) ArriveTenant(at sim.Duration, spec TenantSpec) *Scenario {
	sp := spec
	return s.add(Event{At: at, Kind: TenantArrive, Tenant: &sp})
}

// DepartTenant schedules a tenant departure.
func (s *Scenario) DepartTenant(at sim.Duration, vf int32) *Scenario {
	return s.add(Event{At: at, Kind: TenantDepart, VF: vf})
}

// Clone returns a deep copy of the scenario: the event list, each
// event's degradation and tenant spec (with its pair list) are all
// duplicated, so a shrinker can mutate the copy without disturbing the
// original.
func (s *Scenario) Clone() *Scenario {
	if s == nil {
		return nil
	}
	cp := &Scenario{Name: s.Name, ExpectExcusedMin: s.ExpectExcusedMin}
	cp.Events = make([]Event, len(s.Events))
	copy(cp.Events, s.Events)
	for i := range cp.Events {
		ev := &cp.Events[i]
		if ev.Degradation != nil {
			d := *ev.Degradation
			ev.Degradation = &d
		}
		if ev.Tenant != nil {
			t := *ev.Tenant
			t.Pairs = append([]PairSpec(nil), ev.Tenant.Pairs...)
			ev.Tenant = &t
		}
	}
	return cp
}

// Encode renders the scenario as indented JSON.
func (s *Scenario) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Parse decodes a scenario from JSON.
func Parse(b []byte) (*Scenario, error) {
	s := &Scenario{}
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("chaos: parse scenario: %w", err)
	}
	for i := range s.Events {
		if s.Events[i].At < 0 {
			return nil, fmt.Errorf("chaos: event %d at negative time %v", i, s.Events[i].At)
		}
	}
	return s, nil
}

// LoadFile reads a scenario JSON file.
func LoadFile(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}
