package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

func TestKindTextRoundTrip(t *testing.T) {
	for k, name := range kindNames {
		b, err := k.MarshalText()
		if err != nil || string(b) != name {
			t.Errorf("%v.MarshalText() = %q, %v", k, b, err)
		}
		var got Kind
		if err := got.UnmarshalText(b); err != nil || got != k {
			t.Errorf("UnmarshalText(%q) = %v, %v", b, got, err)
		}
	}
	if _, err := Kind(99).MarshalText(); err == nil {
		t.Error("unknown kind marshaled")
	}
	var k Kind
	if err := k.UnmarshalText([]byte("link-melt")); err == nil {
		t.Error("unknown kind name unmarshaled")
	}
	if s := Kind(99).String(); s != "kind(99)" {
		t.Errorf("Kind(99).String() = %q", s)
	}
}

// fullScenario exercises every builder once.
func fullScenario() *Scenario {
	return New("everything").
		CrashNode(sim.Millisecond, 3).
		RecoverNode(2*sim.Millisecond, 3).
		LinkDown(3*sim.Millisecond, 0, true).
		LinkUp(4*sim.Millisecond, 0, true).
		Degrade(5*sim.Millisecond, 1, false, dataplane.Degradation{
			CapacityScale: 0.5, ExtraDelay: 30 * sim.Microsecond,
			LossProb: 0.01, ProbeDropProb: 0.2, ProbeCorruptProb: 0.1,
		}).
		Restore(6*sim.Millisecond, 1, false).
		RestartAgent(7*sim.Millisecond, 2).
		ArriveTenant(8*sim.Millisecond, TenantSpec{
			VF: 7, GuaranteeBps: 2e9, WeightClass: 3,
			Pairs: []PairSpec{{Src: 4, Dst: 5, BacklogBytes: 1 << 20}},
		}).
		DepartTenant(9*sim.Millisecond, 7)
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := fullScenario()
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip lost data:\n%+v\nvs\n%+v", s, got)
	}
	// The wire format uses kind names, not raw codes.
	if !strings.Contains(string(b), `"link-degrade"`) {
		t.Errorf("encoded scenario lacks kind name:\n%s", b)
	}
}

func TestParseRejections(t *testing.T) {
	if _, err := Parse([]byte(`{nope`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","events":[{"at_ps":-1,"kind":"link-down"}]}`)); err == nil {
		t.Error("negative event time accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","events":[{"at_ps":1,"kind":"link-melt"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestLoadFile(t *testing.T) {
	b, err := fullScenario().Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "everything" || len(s.Events) != 9 {
		t.Fatalf("loaded %q with %d events", s.Name, len(s.Events))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestFlapBuilder(t *testing.T) {
	s := New("flap").Flap(10*sim.Millisecond, 3, true, 2, 4*sim.Millisecond, sim.Millisecond)
	want := []struct {
		at   sim.Duration
		kind Kind
	}{
		{10 * sim.Millisecond, LinkDown},
		{11 * sim.Millisecond, LinkUp},
		{14 * sim.Millisecond, LinkDown},
		{15 * sim.Millisecond, LinkUp},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("%d events, want %d", len(s.Events), len(want))
	}
	for i, w := range want {
		ev := s.Events[i]
		if ev.At != w.at || ev.Kind != w.kind || ev.Link != 3 || !ev.Duplex {
			t.Errorf("event %d = %+v, want at=%v kind=%v link=3 duplex", i, ev, w.at, w.kind)
		}
	}
}

// fakeTarget wraps a real engine and dataplane (link/node fault state
// lives there) with scripted agent/tenant hooks.
type fakeTarget struct {
	eng       *sim.Engine
	net       *dataplane.Network
	restarts  []topo.NodeID
	restartOK bool
	tenants   map[int32]bool
}

func newFakeTarget() (*fakeTarget, *topo.Star) {
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	return &fakeTarget{
		eng: eng, net: dataplane.New(eng, st.Graph, dataplane.Config{}),
		restartOK: true, tenants: map[int32]bool{},
	}, st
}

func (f *fakeTarget) Engine() sim.Scheduler       { return f.eng }
func (f *fakeTarget) Network() *dataplane.Network { return f.net }
func (f *fakeTarget) RestartCoreAgent(n topo.NodeID) bool {
	f.restarts = append(f.restarts, n)
	return f.restartOK
}
func (f *fakeTarget) AddTenant(s TenantSpec) bool {
	if f.tenants[s.VF] {
		return false
	}
	f.tenants[s.VF] = true
	return true
}
func (f *fakeTarget) RemoveTenant(vf int32) bool {
	if !f.tenants[vf] {
		return false
	}
	delete(f.tenants, vf)
	return true
}

func TestInjectorAppliesInOrder(t *testing.T) {
	tgt, st := newFakeTarget()
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	lid := route[0]
	s := New("happy").
		LinkDown(sim.Millisecond, lid, true).
		Degrade(2*sim.Millisecond, lid, true, dataplane.Degradation{LossProb: 0.1}).
		LinkUp(3*sim.Millisecond, lid, true).
		Restore(4*sim.Millisecond, lid, true).
		CrashNode(5*sim.Millisecond, st.Center).
		RecoverNode(6*sim.Millisecond, st.Center).
		RestartAgent(7*sim.Millisecond, st.Center).
		ArriveTenant(8*sim.Millisecond, TenantSpec{VF: 1, GuaranteeBps: 1e9}).
		DepartTenant(9*sim.Millisecond, 1)

	inj := Inject(tgt, s)
	// Mid-run, fault state must actually toggle.
	tgt.eng.At(sim.Millisecond+1, func() {
		if !tgt.net.LinkFailed(lid) {
			t.Error("link not down after LinkDown")
		}
	})
	tgt.eng.At(5*sim.Millisecond+1, func() {
		if !tgt.net.Failed(st.Center) {
			t.Error("node not failed after NodeCrash")
		}
	})
	tgt.eng.Run()

	if len(inj.Log) != len(s.Events) {
		t.Fatalf("log has %d records, want %d", len(inj.Log), len(s.Events))
	}
	for i, rec := range inj.Log {
		ev := s.Events[i]
		if !rec.OK {
			t.Errorf("record %d rejected: %s", i, rec)
		}
		if rec.At != sim.Time(ev.At) || rec.Kind != ev.Kind {
			t.Errorf("record %d = %s, want kind %v at %v", i, rec, ev.Kind, ev.At)
		}
	}
	for _, k := range []Kind{NodeCrash, NodeRecover, LinkDown, LinkUp, LinkDegrade,
		LinkRestore, AgentRestart, TenantArrive, TenantDepart} {
		if inj.Applied(k) != 1 {
			t.Errorf("Applied(%v) = %d, want 1", k, inj.Applied(k))
		}
	}
	if inj.Rejected() != 0 {
		t.Errorf("Rejected() = %d", inj.Rejected())
	}
	if tgt.net.LinkFailed(lid) || tgt.net.LinkDegraded(lid) || tgt.net.Failed(st.Center) {
		t.Error("fault state not cleared by the recovery events")
	}
	if len(tgt.restarts) != 1 || tgt.restarts[0] != st.Center {
		t.Errorf("restarts = %v", tgt.restarts)
	}
	if len(tgt.tenants) != 0 {
		t.Errorf("tenants left behind: %v", tgt.tenants)
	}
	if b, err := inj.LogJSON(); err != nil || !strings.Contains(string(b), `"node-crash"`) {
		t.Errorf("LogJSON: %v\n%s", err, b)
	}
}

func TestInjectorRecordsRejections(t *testing.T) {
	tgt, st := newFakeTarget()
	tgt.restartOK = false
	nLinks := len(st.Graph.Links)
	s := New("broken").
		LinkDown(sim.Millisecond, topo.LinkID(nLinks), false). // out of range
		CrashNode(2*sim.Millisecond, topo.NodeID(-5)).         // out of range
		RestartAgent(3*sim.Millisecond, st.Center).            // target refuses
		DepartTenant(4*sim.Millisecond, 42)                    // unknown VF
	// Events with missing parameters.
	s.add(Event{At: 5 * sim.Millisecond, Kind: LinkDegrade, Link: 0})
	s.add(Event{At: 6 * sim.Millisecond, Kind: TenantArrive, Note: "no spec"})

	inj := Inject(tgt, s)
	tgt.eng.Run()
	if got := inj.Rejected(); got != len(s.Events) {
		t.Fatalf("Rejected() = %d, want %d:\n%v", got, len(s.Events), inj.Log)
	}
	for i, rec := range inj.Log {
		if rec.OK {
			t.Errorf("record %d not rejected: %s", i, rec)
		}
	}
	// The rendered log flags the rejection and carries the note.
	last := inj.Log[len(inj.Log)-1].String()
	if !strings.Contains(last, "REJECTED") || !strings.Contains(last, "no spec") {
		t.Errorf("rendered record = %q", last)
	}
}

func TestInjectOffsetsFromNow(t *testing.T) {
	// Injecting mid-run schedules events relative to the current time.
	tgt, st := newFakeTarget()
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	var inj *Injector
	tgt.eng.At(10*sim.Millisecond, func() {
		inj = Inject(tgt, New("late").LinkDown(sim.Millisecond, route[0], false))
	})
	tgt.eng.Run()
	if len(inj.Log) != 1 || inj.Log[0].At != 11*sim.Millisecond {
		t.Fatalf("log = %v, want one record at 11ms", inj.Log)
	}
}
