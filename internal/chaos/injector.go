package chaos

import (
	"encoding/json"
	"fmt"

	"ufab/internal/dataplane"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// Target is the surface the injector drives. *vfabric.Fabric implements
// it; tests use lightweight fakes. Methods must be safe to call with
// arbitrary (even invalid) arguments and report success — the injector
// records rejections in the log instead of panicking mid-simulation.
type Target interface {
	// Engine returns the simulation engine events are scheduled on.
	Engine() sim.Scheduler
	// Network returns the dataplane carrying node and link fault state.
	Network() *dataplane.Network
	// RestartCoreAgent reboots the μFAB-C agent on a switch, losing its
	// Bloom/Φ/W registers. Returns false if the node has no core agent.
	RestartCoreAgent(node topo.NodeID) bool
	// AddTenant creates a tenant VF with its VM-pairs. Returns false if
	// the spec is invalid (duplicate VF, unknown hosts, no path).
	AddTenant(spec TenantSpec) bool
	// RemoveTenant tears down a tenant VF and all its pairs. Returns
	// false if the VF does not exist.
	RemoveTenant(vf int32) bool
}

// Record is one line of the injection log.
type Record struct {
	At     sim.Time `json:"at_ps"`
	Kind   Kind     `json:"kind"`
	Detail string   `json:"detail,omitempty"`
	Note   string   `json:"note,omitempty"`
	// OK is false when the target rejected the event (bad node/link id,
	// unknown VF, ...); the simulation continues either way.
	OK bool `json:"ok"`
}

func (r Record) String() string {
	status := "ok"
	if !r.OK {
		status = "REJECTED"
	}
	s := fmt.Sprintf("t=%.3fus %-13s %s [%s]", r.At.Micros(), r.Kind, r.Detail, status)
	if r.Note != "" {
		s += " # " + r.Note
	}
	return s
}

// Admission is the optional control-plane gate on tenant churn events
// (implemented by placement.Controller). When an Injector carries one,
// TenantArrive events must pass the admission check before the target
// materializes them — the checked-admit mode; without one the injector
// force-admits, preserving pre-control-plane behavior exactly.
type Admission interface {
	// AdmitSpec checks ledger headroom for the spec's pairs and commits
	// the subscription on accept. Returns false on reject.
	AdmitSpec(spec TenantSpec) bool
	// ReleaseTenant releases a prior commitment (tenant departed, or its
	// materialization failed after admission).
	ReleaseTenant(vf int32) bool
}

// Injector owns a scheduled scenario and its injection log.
type Injector struct {
	target   Target
	eng      sim.Scheduler
	scenario *Scenario
	adm      Admission
	// Log records every applied (or rejected) event in firing order.
	Log []Record
}

// WithAdmission routes this injector's tenant churn through the admission
// gate: arrivals commit ledger headroom before materializing (and reject
// when there is none), departures release it. Call before the first event
// fires. Returns the injector for chaining.
func (inj *Injector) WithAdmission(adm Admission) *Injector {
	inj.adm = adm
	return inj
}

// Inject schedules every event of s on t's engine, offset from the
// current simulation time, and returns the recording Injector. Events
// fire in scenario order when timestamps tie, so injection is
// deterministic.
func Inject(t Target, s *Scenario) *Injector {
	inj := &Injector{target: t, eng: t.Engine(), scenario: s}
	base := inj.eng.Now()
	for i := range s.Events {
		ev := s.Events[i]
		inj.eng.At(base+sim.Time(ev.At), func() { inj.apply(ev) })
	}
	return inj
}

// apply executes one event against the target and records the outcome.
func (inj *Injector) apply(ev Event) {
	net := inj.target.Network()
	ok := false
	note := ev.Note
	switch ev.Kind {
	case NodeCrash:
		ok = net.FailNode(ev.Node)
	case NodeRecover:
		ok = net.RecoverNode(ev.Node)
	case LinkDown:
		ok = inj.eachLink(net, ev, net.FailLink)
	case LinkUp:
		ok = inj.eachLink(net, ev, net.RecoverLink)
	case LinkDegrade:
		if ev.Degradation != nil {
			d := *ev.Degradation
			ok = inj.eachLink(net, ev, func(l topo.LinkID) bool { return net.DegradeLink(l, d) })
		}
	case LinkRestore:
		ok = inj.eachLink(net, ev, net.RestoreLink)
	case AgentRestart:
		ok = inj.target.RestartCoreAgent(ev.Node)
	case TenantArrive:
		if ev.Tenant != nil {
			switch {
			case inj.adm == nil:
				ok = inj.target.AddTenant(*ev.Tenant)
			case !inj.adm.AdmitSpec(*ev.Tenant):
				note = joinNote(ev.Note, "admission-reject")
			default:
				ok = inj.target.AddTenant(*ev.Tenant)
				if !ok {
					// Admitted but unmaterializable (e.g. duplicate VF id):
					// hand the committed headroom back.
					inj.adm.ReleaseTenant(ev.Tenant.VF)
				}
			}
		}
	case TenantDepart:
		ok = inj.target.RemoveTenant(ev.VF)
		if ok && inj.adm != nil {
			inj.adm.ReleaseTenant(ev.VF)
		}
	}
	inj.Log = append(inj.Log, Record{
		At: inj.eng.Now(), Kind: ev.Kind, Detail: ev.detail(), Note: note, OK: ok,
	})
	if rec := net.FlightRecorder(); rec != nil {
		applied := int64(0)
		if ok {
			applied = 1
		}
		rec.Record(telemetry.Event{T: int64(inj.eng.Now()), Kind: telemetry.EvFault,
			Entity: "chaos.injector", A: applied, Note: ev.Kind.String()})
	}
}

// joinNote appends a marker to an event's user note.
func joinNote(base, marker string) string {
	if base == "" {
		return marker
	}
	return base + "; " + marker
}

// eachLink applies f to the event's link, and to its reverse direction
// when the event is duplex. Out-of-range links are rejected, not panics.
func (inj *Injector) eachLink(net *dataplane.Network, ev Event, f func(topo.LinkID) bool) bool {
	if int(ev.Link) < 0 || int(ev.Link) >= len(net.G.Links) {
		return false
	}
	ok := f(ev.Link)
	if ev.Duplex {
		if rev := net.G.Link(ev.Link).Reverse; rev >= 0 {
			ok = f(rev) && ok
		} else {
			ok = false
		}
	}
	return ok
}

// Applied counts successfully applied events of the given kind.
func (inj *Injector) Applied(k Kind) int {
	n := 0
	for _, r := range inj.Log {
		if r.Kind == k && r.OK {
			n++
		}
	}
	return n
}

// Rejected counts events the target refused.
func (inj *Injector) Rejected() int {
	n := 0
	for _, r := range inj.Log {
		if !r.OK {
			n++
		}
	}
	return n
}

// LogJSON renders the injection log as indented JSON for archival
// alongside experiment output.
func (inj *Injector) LogJSON() ([]byte, error) {
	return json.MarshalIndent(inj.Log, "", "  ")
}
