// Package topo models data center network topologies as directed graphs of
// nodes (hosts and switches) and directional links, and enumerates the
// equal-cost underlay paths that μFAB-E selects among.
//
// Builders are provided for the three topologies the paper evaluates on:
// the Fig-10 testbed (2 pods, 8 servers, 10 switches), the Fig-5 Case-2
// two-tier network (2 ToRs, 3 aggregation switches), and a 3-tier Clos with
// configurable oversubscription standing in for the 512-server NS3 FatTree.
package topo

import (
	"fmt"

	"ufab/internal/sim"
)

// NodeID identifies a node within a Graph.
type NodeID int32

// LinkID identifies a directional link within a Graph.
type LinkID int32

// NoLink is the invalid LinkID.
const NoLink LinkID = -1

// NodeKind distinguishes hosts (traffic endpoints) from switches.
type NodeKind uint8

// Node kinds.
const (
	Host NodeKind = iota
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Tier labels a node's layer in a Clos fabric; hosts are tier 0.
type Tier uint8

// Clos tiers.
const (
	TierHost Tier = iota
	TierToR
	TierAgg
	TierCore
)

// Node is a vertex in the topology graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Tier Tier
	Name string
	// Out lists the outgoing links, in insertion order.
	Out []LinkID
}

// Link is a directional edge. Duplex connections are modeled as two Links
// that reference each other through Reverse.
type Link struct {
	ID       LinkID
	Src, Dst NodeID
	// Capacity is the physical line rate in bits per second.
	Capacity float64
	// PropDelay is the one-way propagation delay.
	PropDelay sim.Duration
	// Reverse is the link carrying traffic in the opposite direction.
	Reverse LinkID
}

// Path is an ordered sequence of link IDs from a source node to a
// destination node.
type Path []LinkID

// Graph holds the nodes and links of a topology. The zero value is an empty
// graph ready for use.
type Graph struct {
	Nodes []Node
	Links []Link

	// pathCache memoizes Paths results per (src, dst, maxPaths). It is
	// dropped whenever the graph mutates (AddNode / AddDuplexLink). The
	// cached inner Path slices are shared between calls and must be
	// treated as read-only by callers.
	pathCache map[pathKey][]Path
}

type pathKey struct {
	src, dst NodeID
	max      int
}

// invalidatePaths drops all memoized path enumerations; called on every
// graph mutation.
func (g *Graph) invalidatePaths() { g.pathCache = nil }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(kind NodeKind, tier Tier, name string) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Tier: tier, Name: name})
	g.invalidatePaths()
	return id
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return &g.Nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) *Link { return &g.Links[id] }

// AddDuplexLink connects a and b with a pair of opposite-direction links of
// the given capacity (bits/s) and one-way propagation delay, returning the
// a→b link ID and the b→a link ID.
func (g *Graph) AddDuplexLink(a, b NodeID, capacity float64, prop sim.Duration) (ab, ba LinkID) {
	if capacity <= 0 {
		panic(fmt.Sprintf("topo: non-positive capacity %v", capacity))
	}
	ab = LinkID(len(g.Links))
	ba = ab + 1
	g.Links = append(g.Links,
		Link{ID: ab, Src: a, Dst: b, Capacity: capacity, PropDelay: prop, Reverse: ba},
		Link{ID: ba, Src: b, Dst: a, Capacity: capacity, PropDelay: prop, Reverse: ab},
	)
	g.Nodes[a].Out = append(g.Nodes[a].Out, ab)
	g.Nodes[b].Out = append(g.Nodes[b].Out, ba)
	g.invalidatePaths()
	return ab, ba
}

// ReversePath returns the path from the destination back to the source,
// traversing the reverse of each link in opposite order.
func (g *Graph) ReversePath(p Path) Path {
	r := make(Path, len(p))
	for i, l := range p {
		r[len(p)-1-i] = g.Links[l].Reverse
	}
	return r
}

// PathDst returns the final node of a path.
func (g *Graph) PathDst(p Path) NodeID { return g.Links[p[len(p)-1]].Dst }

// PathSrc returns the first node of a path.
func (g *Graph) PathSrc(p Path) NodeID { return g.Links[p[0]].Src }

// BaseRTT returns the round-trip propagation plus per-hop serialization
// delay of one MTU-sized packet along the path and back, which is the
// baseRTT T_{a→b} μFAB uses (the RTT without queuing).
func (g *Graph) BaseRTT(p Path, mtu int) sim.Duration {
	var d sim.Duration
	for _, l := range p {
		lk := &g.Links[l]
		d += lk.PropDelay + SerializationDelay(mtu, lk.Capacity)
	}
	return 2 * d
}

// SerializationDelay returns the time to put size bytes on a wire of the
// given capacity in bits per second.
func SerializationDelay(size int, capacity float64) sim.Duration {
	return sim.Duration(float64(size*8) / capacity * float64(sim.Second))
}

// MinCapacity returns the smallest link capacity along the path.
func (g *Graph) MinCapacity(p Path) float64 {
	min := g.Links[p[0]].Capacity
	for _, l := range p[1:] {
		if c := g.Links[l].Capacity; c < min {
			min = c
		}
	}
	return min
}

// Validate checks structural invariants: link endpoints are in range,
// Reverse pointers are symmetric, and Out lists are consistent.
func (g *Graph) Validate() error {
	for _, l := range g.Links {
		if int(l.Src) >= len(g.Nodes) || int(l.Dst) >= len(g.Nodes) {
			return fmt.Errorf("link %d endpoints out of range", l.ID)
		}
		if l.Reverse != NoLink {
			r := g.Links[l.Reverse]
			if r.Reverse != l.ID || r.Src != l.Dst || r.Dst != l.Src {
				return fmt.Errorf("link %d reverse %d not symmetric", l.ID, l.Reverse)
			}
		}
	}
	for _, n := range g.Nodes {
		for _, lid := range n.Out {
			if g.Links[lid].Src != n.ID {
				return fmt.Errorf("node %d lists link %d whose src is %d", n.ID, lid, g.Links[lid].Src)
			}
		}
	}
	return nil
}

// Paths enumerates up to maxPaths shortest (hop-count) paths from src to
// dst, in a deterministic order. All returned paths have equal length, so
// in Clos fabrics they are exactly the ECMP-equivalent paths. maxPaths ≤ 0
// means no limit.
//
// Results are memoized per (src, dst, maxPaths) until the graph mutates.
// The outer slice is freshly allocated on every call (callers reorder it),
// but the Path values themselves are shared and must not be modified.
func (g *Graph) Paths(src, dst NodeID, maxPaths int) []Path {
	if src == dst {
		return nil
	}
	key := pathKey{src: src, dst: dst, max: maxPaths}
	if cached, ok := g.pathCache[key]; ok {
		if cached == nil {
			return nil
		}
		out := make([]Path, len(cached))
		copy(out, cached)
		return out
	}
	paths := g.enumeratePaths(src, dst, maxPaths)
	if g.pathCache == nil {
		g.pathCache = make(map[pathKey][]Path)
	}
	g.pathCache[key] = paths
	if paths == nil {
		return nil
	}
	out := make([]Path, len(paths))
	copy(out, paths)
	return out
}

// enumeratePaths is the uncached path enumeration behind Paths.
func (g *Graph) enumeratePaths(src, dst NodeID, maxPaths int) []Path {
	// BFS from src computing hop distance.
	const inf = int32(1) << 30
	dist := make([]int32, len(g.Nodes))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, lid := range g.Nodes[n].Out {
			m := g.Links[lid].Dst
			if dist[m] == inf {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	if dist[dst] == inf {
		return nil
	}
	// DFS over the shortest-path DAG, collecting link sequences.
	var paths []Path
	cur := make(Path, 0, dist[dst])
	var dfs func(n NodeID)
	dfs = func(n NodeID) {
		if maxPaths > 0 && len(paths) >= maxPaths {
			return
		}
		if n == dst {
			p := make(Path, len(cur))
			copy(p, cur)
			paths = append(paths, p)
			return
		}
		for _, lid := range g.Nodes[n].Out {
			m := g.Links[lid].Dst
			if dist[m] == dist[n]+1 && dist[m] <= dist[dst] {
				cur = append(cur, lid)
				dfs(m)
				cur = cur[:len(cur)-1]
			}
		}
	}
	dfs(src)
	return paths
}

// Diameter returns the maximum over all host pairs of BaseRTT, i.e. the
// network's T_max used in the 3·C·T_max inflight bound. It is computed by
// BFS from every host; intended for setup, not per-packet use.
func (g *Graph) Diameter(mtu int) sim.Duration {
	var max sim.Duration
	for _, n := range g.Nodes {
		if n.Kind != Host {
			continue
		}
		for _, m := range g.Nodes {
			if m.Kind != Host || m.ID == n.ID {
				continue
			}
			ps := g.Paths(n.ID, m.ID, 1)
			if len(ps) == 0 {
				continue
			}
			if rtt := g.BaseRTT(ps[0], mtu); rtt > max {
				max = rtt
			}
		}
	}
	return max
}

// Hosts returns the IDs of all host nodes in insertion order.
func (g *Graph) Hosts() []NodeID {
	var hs []NodeID
	for _, n := range g.Nodes {
		if n.Kind == Host {
			hs = append(hs, n.ID)
		}
	}
	return hs
}
