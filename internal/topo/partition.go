package topo

import (
	"fmt"

	"ufab/internal/sim"
)

// Partition assigns every node of a graph to a logical shard for the
// parallel-in-time simulation core. The partition follows the fabric's pod
// structure: removing the core tier splits a Clos/fat-tree into its pods
// (hosts, ToRs and aggs stay together), each becoming one shard, and the
// core switches are distributed round-robin across the pod shards so
// inter-pod forwarding load spreads over all workers. Every cut link — a
// link whose endpoints land on different shards — is then a pod↔core hop,
// whose propagation delay lower-bounds the conservative-lookahead window.
type Partition struct {
	// Shards is the number of logical shards (= connected components of
	// the graph with core switches removed, or 1 for core-less graphs).
	Shards int
	// Node maps each NodeID to its shard.
	Node []int32
	// MinCutDelay is the smallest propagation delay over all cut links;
	// it is the widest safe lookahead window. Zero when no link is cut.
	MinCutDelay sim.Duration
	// CutLinks counts directed links crossing a shard boundary.
	CutLinks int
}

// PartitionPods computes the pod partition of g. It fails if a cut link has
// a non-positive propagation delay, which would leave no safe lookahead
// window for the sharded engine.
func PartitionPods(g *Graph) (*Partition, error) {
	p := &Partition{Node: make([]int32, len(g.Nodes))}
	const unassigned = int32(-1)
	for i := range p.Node {
		p.Node[i] = unassigned
	}
	// Flood-fill the graph with core switches removed: each component is
	// one pod shard. Seeding in node-ID order keeps shard numbering a
	// pure function of the topology.
	var next int32
	var stack []NodeID
	for _, n := range g.Nodes {
		if n.Tier == TierCore || p.Node[n.ID] != unassigned {
			continue
		}
		shard := next
		next++
		stack = append(stack[:0], n.ID)
		p.Node[n.ID] = shard
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, lid := range g.Nodes[v].Out {
				m := g.Links[lid].Dst
				if g.Nodes[m].Tier == TierCore || p.Node[m] != unassigned {
					continue
				}
				p.Node[m] = shard
				stack = append(stack, m)
			}
		}
	}
	if next == 0 {
		// Core-only (or empty) graph: a single shard owns everything.
		next = 1
	}
	p.Shards = int(next)
	// Spread core switches round-robin over the pod shards, in node-ID
	// order for determinism.
	core := 0
	for _, n := range g.Nodes {
		if n.Tier != TierCore {
			continue
		}
		p.Node[n.ID] = int32(core % p.Shards)
		core++
	}
	// Enumerate cut links and the minimum cross-shard latency.
	for _, l := range g.Links {
		if p.Node[l.Src] == p.Node[l.Dst] {
			continue
		}
		p.CutLinks++
		if l.PropDelay <= 0 {
			return nil, fmt.Errorf("topo: cut link %d (%s→%s) has non-positive propagation delay %v; no safe lookahead window",
				l.ID, g.Nodes[l.Src].Name, g.Nodes[l.Dst].Name, l.PropDelay)
		}
		if p.MinCutDelay == 0 || l.PropDelay < p.MinCutDelay {
			p.MinCutDelay = l.PropDelay
		}
	}
	return p, nil
}

// Shard returns the shard owning node id.
func (p *Partition) Shard(id NodeID) int { return int(p.Node[id]) }
