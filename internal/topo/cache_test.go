package topo

import (
	"testing"

	"ufab/internal/sim"
)

// pathsEqual reports whether two path sets are identical element-wise.
func pathsEqual(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPathsCacheHit: repeated calls return identical results, and the
// second call is served from the cache.
func TestPathsCacheHit(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	g := tb.Graph
	first := g.Paths(tb.Servers[0], tb.Servers[4], 0)
	if g.pathCache == nil || len(g.pathCache) == 0 {
		t.Fatal("cache not populated after first call")
	}
	second := g.Paths(tb.Servers[0], tb.Servers[4], 0)
	if !pathsEqual(first, second) {
		t.Fatal("cached result differs from first enumeration")
	}
}

// TestPathsCacheFreshOuterSlice: callers reorder the returned slice
// (vfabric.sampleRoutes shuffles it); the cache must hand out a fresh
// outer slice each call so one caller's reordering cannot leak into
// another's result.
func TestPathsCacheFreshOuterSlice(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	g := tb.Graph
	a := g.Paths(tb.Servers[0], tb.Servers[4], 0)
	if len(a) < 2 {
		t.Fatalf("need ≥2 paths, got %d", len(a))
	}
	// Reverse the caller's copy in place.
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
	b := g.Paths(tb.Servers[0], tb.Servers[4], 0)
	// b must come back in canonical enumeration order, unaffected.
	fresh := g.enumeratePaths(tb.Servers[0], tb.Servers[4], 0)
	if !pathsEqual(b, fresh) {
		t.Fatal("cached result was perturbed by caller mutation of outer slice")
	}
}

// TestPathsCacheKeyedByMax: different maxPaths values are distinct cache
// entries with correct truncation.
func TestPathsCacheKeyedByMax(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	g := tb.Graph
	all := g.Paths(tb.Servers[0], tb.Servers[4], 0)
	two := g.Paths(tb.Servers[0], tb.Servers[4], 2)
	if len(all) != 8 || len(two) != 2 {
		t.Fatalf("len(all)=%d len(two)=%d, want 8 and 2", len(all), len(two))
	}
	// Again, now both served from cache.
	if got := g.Paths(tb.Servers[0], tb.Servers[4], 0); len(got) != 8 {
		t.Fatalf("cached all = %d paths, want 8", len(got))
	}
	if got := g.Paths(tb.Servers[0], tb.Servers[4], 2); len(got) != 2 {
		t.Fatalf("cached two = %d paths, want 2", len(got))
	}
}

// TestPathsCacheInvalidation: mutating the graph drops the cache, and the
// next enumeration sees the new topology.
func TestPathsCacheInvalidation(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, TierHost, "a")
	s1 := g.AddNode(Switch, TierToR, "s1")
	b := g.AddNode(Host, TierHost, "b")
	g.AddDuplexLink(a, s1, Gbps(10), sim.Microsecond)
	g.AddDuplexLink(s1, b, Gbps(10), sim.Microsecond)
	if got := g.Paths(a, b, 0); len(got) != 1 {
		t.Fatalf("paths = %d, want 1", len(got))
	}
	// Add a second equal-cost route a→s2→b: the cache must be dropped by
	// both the AddNode and the AddDuplexLink calls.
	s2 := g.AddNode(Switch, TierToR, "s2")
	if g.pathCache != nil {
		t.Fatal("AddNode did not invalidate the path cache")
	}
	g.Paths(a, b, 0) // repopulate
	g.AddDuplexLink(a, s2, Gbps(10), sim.Microsecond)
	if g.pathCache != nil {
		t.Fatal("AddDuplexLink did not invalidate the path cache")
	}
	g.AddDuplexLink(s2, b, Gbps(10), sim.Microsecond)
	if got := g.Paths(a, b, 0); len(got) != 2 {
		t.Fatalf("after adding s2: paths = %d, want 2", len(got))
	}
}

// TestPathsCacheNilResult: unreachable pairs cache their nil result too.
func TestPathsCacheNilResult(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, TierHost, "a")
	b := g.AddNode(Host, TierHost, "b")
	if p := g.Paths(a, b, 0); p != nil {
		t.Fatalf("disconnected = %v, want nil", p)
	}
	if _, ok := g.pathCache[pathKey{src: a, dst: b, max: 0}]; !ok {
		t.Fatal("nil result not cached")
	}
	if p := g.Paths(a, b, 0); p != nil {
		t.Fatalf("cached disconnected = %v, want nil", p)
	}
}

// BenchmarkPathsCold measures raw enumeration on the 3-tier Clos
// (cache defeated by invalidating between iterations); BenchmarkPathsWarm
// measures the memoized path. The ratio is the win the subscription
// ledger and sampleRoutes see on every admit after the first.
func BenchmarkPathsCold(b *testing.B) {
	cl := NewClos(Paper512(16))
	g := cl.Graph
	src, dst := cl.Hosts[0], cl.Hosts[len(cl.Hosts)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.invalidatePaths()
		if p := g.Paths(src, dst, 0); len(p) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkPathsWarm(b *testing.B) {
	cl := NewClos(Paper512(16))
	g := cl.Graph
	src, dst := cl.Hosts[0], cl.Hosts[len(cl.Hosts)-1]
	g.Paths(src, dst, 0) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := g.Paths(src, dst, 0); len(p) == 0 {
			b.Fatal("no paths")
		}
	}
}
