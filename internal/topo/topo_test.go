package topo

import (
	"testing"
	"testing/quick"

	"ufab/internal/sim"
)

func TestAddDuplexLink(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, TierHost, "a")
	b := g.AddNode(Switch, TierToR, "b")
	ab, ba := g.AddDuplexLink(a, b, Gbps(10), sim.Microsecond)
	if g.Link(ab).Reverse != ba || g.Link(ba).Reverse != ab {
		t.Fatal("reverse pointers wrong")
	}
	if g.Link(ab).Src != a || g.Link(ab).Dst != b {
		t.Fatal("ab endpoints wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddDuplexLinkBadCapacity(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, TierHost, "a")
	b := g.AddNode(Host, TierHost, "b")
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	g.AddDuplexLink(a, b, 0, 0)
}

func TestSerializationDelay(t *testing.T) {
	// 1500 B at 10 Gbps = 1.2 μs.
	got := SerializationDelay(1500, Gbps(10))
	if got != 1200*sim.Nanosecond {
		t.Errorf("1500B@10G = %v, want 1.2us", got)
	}
	// 64 B at 100 Gbps = 5.12 ns.
	got = SerializationDelay(64, Gbps(100))
	if got != 5120*sim.Picosecond {
		t.Errorf("64B@100G = %v, want 5.12ns", got)
	}
}

func TestTestbedShape(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	if len(tb.Servers) != 8 {
		t.Fatalf("servers = %d, want 8", len(tb.Servers))
	}
	if n := len(tb.ToRs) + len(tb.Aggs) + len(tb.Cores); n != 10 {
		t.Fatalf("switches = %d, want 10", n)
	}
	if err := tb.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cross-pod paths: S1 (pod 1) to S5 (pod 2) should have
	// 2 aggs × 2 cores × 2 aggs = 8 equal-cost paths of 6 hops.
	paths := tb.Graph.Paths(tb.Servers[0], tb.Servers[4], 0)
	if len(paths) != 8 {
		t.Fatalf("cross-pod paths = %d, want 8", len(paths))
	}
	for _, p := range paths {
		if len(p) != 6 {
			t.Fatalf("cross-pod path length = %d, want 6", len(p))
		}
	}
	// Same-ToR path: S1→S2 is 2 hops, single path.
	paths = tb.Graph.Paths(tb.Servers[0], tb.Servers[1], 0)
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("same-ToR paths = %v", paths)
	}
}

func TestTestbedBaseRTT(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	paths := tb.Graph.Paths(tb.Servers[0], tb.Servers[4], 1)
	rtt := tb.Graph.BaseRTT(paths[0], 1500)
	// 6 hops × (2 μs prop + 1.2 μs ser) × 2 = 38.4 μs; the paper's 24 μs
	// maximum baseRTT is approximate — just sanity-check the ballpark.
	if rtt < 20*sim.Microsecond || rtt > 60*sim.Microsecond {
		t.Errorf("cross-pod baseRTT = %v, outside sane range", rtt)
	}
}

func TestTwoTierPaths(t *testing.T) {
	tt := NewTwoTier(3, 4, Gbps(10), sim.Microsecond)
	if err := tt.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	paths := tt.Graph.Paths(tt.HostsLeft[0], tt.HostsRight[0], 0)
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3 (one per agg)", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Fatalf("path len = %d, want 4", len(p))
		}
		if got := tt.Graph.PathSrc(p); got != tt.HostsLeft[0] {
			t.Errorf("PathSrc = %v", got)
		}
		if got := tt.Graph.PathDst(p); got != tt.HostsRight[0] {
			t.Errorf("PathDst = %v", got)
		}
	}
}

func TestReversePath(t *testing.T) {
	tt := NewTwoTier(2, 2, Gbps(10), sim.Microsecond)
	p := tt.Graph.Paths(tt.HostsLeft[0], tt.HostsRight[1], 1)[0]
	r := tt.Graph.ReversePath(p)
	if len(r) != len(p) {
		t.Fatal("reverse length mismatch")
	}
	if tt.Graph.PathSrc(r) != tt.HostsRight[1] || tt.Graph.PathDst(r) != tt.HostsLeft[0] {
		t.Fatal("reverse endpoints wrong")
	}
	// Reversing twice gives the original.
	rr := tt.Graph.ReversePath(r)
	for i := range p {
		if rr[i] != p[i] {
			t.Fatal("double reverse != original")
		}
	}
}

func TestStar(t *testing.T) {
	st := NewStar(15, Gbps(10), sim.Microsecond)
	if err := st.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	p := st.Graph.Paths(st.Hosts[0], st.Hosts[14], 0)
	if len(p) != 1 || len(p[0]) != 2 {
		t.Fatalf("star paths = %v", p)
	}
}

func TestClos512(t *testing.T) {
	for _, cores := range []int{16, 32} {
		cl := NewClos(Paper512(cores))
		if len(cl.Hosts) != 512 {
			t.Fatalf("cores=%d: hosts = %d, want 512", cores, len(cl.Hosts))
		}
		if err := cl.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		// Cross-pod host pair must have paths through the core.
		paths := cl.Graph.Paths(cl.Hosts[0], cl.Hosts[len(cl.Hosts)-1], 0)
		if len(paths) == 0 {
			t.Fatalf("cores=%d: no cross-pod path", cores)
		}
		for _, p := range paths {
			if len(p) != 6 {
				t.Fatalf("cores=%d: path len %d, want 6", cores, len(p))
			}
		}
		// Each agg connects to cores/aggsPerPod cores; total cross-pod
		// path count = aggsPerPod × (cores/aggsPerPod) = cores.
		if len(paths) != cores {
			t.Errorf("cores=%d: cross-pod paths = %d, want %d", cores, len(paths), cores)
		}
	}
}

func TestPathsMaxLimit(t *testing.T) {
	cl := NewClos(Paper512(16))
	paths := cl.Graph.Paths(cl.Hosts[0], cl.Hosts[511], 4)
	if len(paths) != 4 {
		t.Fatalf("maxPaths=4 returned %d", len(paths))
	}
}

func TestPathsSameNode(t *testing.T) {
	st := NewStar(2, Gbps(1), 0)
	if p := st.Graph.Paths(st.Hosts[0], st.Hosts[0], 0); p != nil {
		t.Fatalf("self paths = %v, want nil", p)
	}
}

func TestPathsDisconnected(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, TierHost, "a")
	b := g.AddNode(Host, TierHost, "b")
	if p := g.Paths(a, b, 0); p != nil {
		t.Fatalf("disconnected paths = %v, want nil", p)
	}
}

func TestHosts(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	if got := tb.Graph.Hosts(); len(got) != 8 {
		t.Fatalf("Hosts() = %d, want 8", len(got))
	}
}

func TestDiameter(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	d := tb.Graph.Diameter(1500)
	p := tb.Graph.Paths(tb.Servers[0], tb.Servers[4], 1)[0]
	if want := tb.Graph.BaseRTT(p, 1500); d != want {
		t.Errorf("Diameter = %v, want cross-pod RTT %v", d, want)
	}
}

func TestMinCapacity(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(Host, TierHost, "a")
	s := g.AddNode(Switch, TierToR, "s")
	b := g.AddNode(Host, TierHost, "b")
	l1, _ := g.AddDuplexLink(a, s, Gbps(10), 0)
	l2, _ := g.AddDuplexLink(s, b, Gbps(1), 0)
	if got := g.MinCapacity(Path{l1, l2}); got != Gbps(1) {
		t.Errorf("MinCapacity = %v, want 1G", got)
	}
}

func TestNodeKindString(t *testing.T) {
	if Host.String() != "host" || Switch.String() != "switch" {
		t.Error("NodeKind.String wrong")
	}
}

// Property: all paths returned between any two hosts of a random two-tier
// topology are valid (contiguous, start/end correct) and equal length.
func TestPathsProperty(t *testing.T) {
	f := func(nAggsRaw, hostsRaw uint8) bool {
		nAggs := int(nAggsRaw%6) + 1
		hosts := int(hostsRaw%4) + 1
		tt := NewTwoTier(nAggs, hosts, Gbps(10), sim.Microsecond)
		g := tt.Graph
		src, dst := tt.HostsLeft[0], tt.HostsRight[hosts-1]
		paths := g.Paths(src, dst, 0)
		if len(paths) != nAggs {
			return false
		}
		seen := map[string]bool{}
		for _, p := range paths {
			if g.PathSrc(p) != src || g.PathDst(p) != dst {
				return false
			}
			for i := 1; i < len(p); i++ {
				if g.Links[p[i]].Src != g.Links[p[i-1]].Dst {
					return false
				}
			}
			key := ""
			for _, l := range p {
				key += string(rune(l)) + ","
			}
			if seen[key] {
				return false // duplicate path
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFatTree(t *testing.T) {
	ft := FatTree(4, Gbps(10), sim.Microsecond)
	if err := ft.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// k=4: 16 hosts, 4 cores, 8 aggs, 8 tors.
	if len(ft.Hosts) != 16 || len(ft.Cores) != 4 || len(ft.Aggs) != 8 || len(ft.ToRs) != 8 {
		t.Fatalf("k=4 shape: hosts=%d cores=%d aggs=%d tors=%d",
			len(ft.Hosts), len(ft.Cores), len(ft.Aggs), len(ft.ToRs))
	}
	// Cross-pod pair has (k/2)² = 4 equal-cost paths.
	paths := ft.Graph.Paths(ft.Hosts[0], ft.Hosts[15], 0)
	if len(paths) != 4 {
		t.Fatalf("cross-pod paths = %d, want 4", len(paths))
	}
}

func TestFatTreeBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd arity did not panic")
		}
	}()
	FatTree(3, Gbps(10), 0)
}

func TestChain(t *testing.T) {
	c := NewChain(20, Gbps(10), sim.Microsecond)
	if err := c.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	paths := c.Graph.Paths(c.Src, c.Dst, 0)
	if len(paths) != 1 || len(paths[0]) != 21 {
		t.Fatalf("chain path: %d paths, len %d", len(paths), len(paths[0]))
	}
}
