package topo

import (
	"fmt"

	"ufab/internal/sim"
)

// Gbps converts gigabits per second to bits per second.
func Gbps(g float64) float64 { return g * 1e9 }

// Testbed describes the Fig-10 evaluation topology: a 3-tier network with
// two pods. Each pod has two ToR switches and two aggregation switches;
// two core switches interconnect the pods; two servers attach to each ToR
// (8 servers, 10 switches).
type Testbed struct {
	Graph   *Graph
	Servers []NodeID // S1..S8
	ToRs    []NodeID // 2 per pod
	Aggs    []NodeID // 2 per pod
	Cores   []NodeID
}

// TestbedConfig parameterizes NewTestbed.
type TestbedConfig struct {
	// LinkCapacity is the uniform line rate in bits/s (default 10 Gbps,
	// the SoC prototype; Fig 15 uses 100 Gbps).
	LinkCapacity float64
	// PropDelay is the per-hop one-way propagation delay. The default
	// (2 μs) gives the paper's maximum baseRTT of ~24 μs across pods.
	PropDelay sim.Duration
}

func (c *TestbedConfig) setDefaults() {
	if c.LinkCapacity == 0 {
		c.LinkCapacity = Gbps(10)
	}
	if c.PropDelay == 0 {
		c.PropDelay = 2 * sim.Microsecond
	}
}

// NewTestbed builds the Fig-10 testbed.
func NewTestbed(cfg TestbedConfig) *Testbed {
	cfg.setDefaults()
	g := &Graph{}
	tb := &Testbed{Graph: g}
	for i := 0; i < 2; i++ {
		tb.Cores = append(tb.Cores, g.AddNode(Switch, TierCore, fmt.Sprintf("Core%d", i+1)))
	}
	server := 0
	for pod := 0; pod < 2; pod++ {
		var aggs []NodeID
		for i := 0; i < 2; i++ {
			a := g.AddNode(Switch, TierAgg, fmt.Sprintf("Pod%d-Agg%d", pod+1, i+1))
			aggs = append(aggs, a)
			tb.Aggs = append(tb.Aggs, a)
			for _, c := range tb.Cores {
				g.AddDuplexLink(a, c, cfg.LinkCapacity, cfg.PropDelay)
			}
		}
		for i := 0; i < 2; i++ {
			t := g.AddNode(Switch, TierToR, fmt.Sprintf("Pod%d-ToR%d", pod+1, i+1))
			tb.ToRs = append(tb.ToRs, t)
			for _, a := range aggs {
				g.AddDuplexLink(t, a, cfg.LinkCapacity, cfg.PropDelay)
			}
			for j := 0; j < 2; j++ {
				server++
				s := g.AddNode(Host, TierHost, fmt.Sprintf("S%d", server))
				tb.Servers = append(tb.Servers, s)
				g.AddDuplexLink(s, t, cfg.LinkCapacity, cfg.PropDelay)
			}
		}
	}
	return tb
}

// TwoTier describes the Fig-5 Case-2 topology: hosts under two ToR
// switches, with nAggs aggregation switches providing nAggs equal-cost
// paths (P1..Pn) between the ToRs.
type TwoTier struct {
	Graph *Graph
	// HostsLeft and HostsRight attach to ToR1 and ToR2 respectively.
	HostsLeft, HostsRight []NodeID
	ToR1, ToR2            NodeID
	Aggs                  []NodeID
}

// NewTwoTier builds a two-ToR topology with nAggs parallel aggregation
// switches and the given number of hosts per ToR, all links at capacity
// bits/s with the given propagation delay.
func NewTwoTier(nAggs, hostsPerToR int, capacity float64, prop sim.Duration) *TwoTier {
	g := &Graph{}
	tt := &TwoTier{Graph: g}
	tt.ToR1 = g.AddNode(Switch, TierToR, "ToR1")
	tt.ToR2 = g.AddNode(Switch, TierToR, "ToR2")
	for i := 0; i < nAggs; i++ {
		a := g.AddNode(Switch, TierAgg, fmt.Sprintf("Agg%d", i+1))
		tt.Aggs = append(tt.Aggs, a)
		g.AddDuplexLink(tt.ToR1, a, capacity, prop)
		g.AddDuplexLink(tt.ToR2, a, capacity, prop)
	}
	for i := 0; i < hostsPerToR; i++ {
		h := g.AddNode(Host, TierHost, fmt.Sprintf("H%d", i+1))
		tt.HostsLeft = append(tt.HostsLeft, h)
		g.AddDuplexLink(h, tt.ToR1, capacity, prop)
	}
	for i := 0; i < hostsPerToR; i++ {
		h := g.AddNode(Host, TierHost, fmt.Sprintf("H%d", hostsPerToR+i+1))
		tt.HostsRight = append(tt.HostsRight, h)
		g.AddDuplexLink(h, tt.ToR2, capacity, prop)
	}
	return tt
}

// Star describes a single-switch topology used by incast experiments and
// unit tests: n hosts around one switch.
type Star struct {
	Graph  *Graph
	Hosts  []NodeID
	Center NodeID
}

// NewStar builds an n-host star with all links at capacity bits/s.
func NewStar(n int, capacity float64, prop sim.Duration) *Star {
	g := &Graph{}
	st := &Star{Graph: g}
	st.Center = g.AddNode(Switch, TierToR, "SW")
	for i := 0; i < n; i++ {
		h := g.AddNode(Host, TierHost, fmt.Sprintf("H%d", i+1))
		st.Hosts = append(st.Hosts, h)
		g.AddDuplexLink(h, st.Center, capacity, prop)
	}
	return st
}

// ClosConfig parameterizes NewClos, the 3-tier fabric standing in for the
// paper's 512-server NS3 FatTree. Oversubscription is set by the ratio of
// host-facing to core-facing bandwidth at each tier: with HostsPerToR=16,
// ToRUplinks=AggsPerPod and equal link speeds, the paper's 1:2 and 1:1
// ratios correspond to 16 and 32 core switches (as in §5.1).
type ClosConfig struct {
	Pods        int
	ToRsPerPod  int
	AggsPerPod  int
	Cores       int
	HostsPerToR int
	// LinkCapacity applies to all links (paper: 100 Gbps).
	LinkCapacity float64
	PropDelay    sim.Duration // paper: 1 μs
}

// Paper512 returns the configuration of the paper's 512-server simulation
// fabric with the given number of core switches (16 → 1:2 oversubscription,
// 32 → 1:1).
func Paper512(cores int) ClosConfig {
	return ClosConfig{
		Pods:         8,
		ToRsPerPod:   4,
		AggsPerPod:   4,
		Cores:        cores,
		HostsPerToR:  16,
		LinkCapacity: Gbps(100),
		PropDelay:    1 * sim.Microsecond,
	}
}

// Clos is a 3-tier Clos fabric.
type Clos struct {
	Graph *Graph
	Hosts []NodeID
	ToRs  []NodeID
	Aggs  []NodeID
	Cores []NodeID
	Cfg   ClosConfig
}

// NewClos builds the fabric. Each ToR connects to every agg in its pod;
// aggs connect to a stripe of cores (core c connects to agg a of each pod
// when c % AggsPerPod == a), the standard fat-tree wiring generalized to
// arbitrary core counts.
func NewClos(cfg ClosConfig) *Clos {
	if cfg.LinkCapacity == 0 {
		cfg.LinkCapacity = Gbps(100)
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = 1 * sim.Microsecond
	}
	g := &Graph{}
	cl := &Clos{Graph: g, Cfg: cfg}
	for c := 0; c < cfg.Cores; c++ {
		cl.Cores = append(cl.Cores, g.AddNode(Switch, TierCore, fmt.Sprintf("Core%d", c)))
	}
	host := 0
	for p := 0; p < cfg.Pods; p++ {
		var aggs []NodeID
		for a := 0; a < cfg.AggsPerPod; a++ {
			agg := g.AddNode(Switch, TierAgg, fmt.Sprintf("P%d-Agg%d", p, a))
			aggs = append(aggs, agg)
			cl.Aggs = append(cl.Aggs, agg)
			for c := 0; c < cfg.Cores; c++ {
				if c%cfg.AggsPerPod == a {
					g.AddDuplexLink(agg, cl.Cores[c], cfg.LinkCapacity, cfg.PropDelay)
				}
			}
		}
		for t := 0; t < cfg.ToRsPerPod; t++ {
			tor := g.AddNode(Switch, TierToR, fmt.Sprintf("P%d-ToR%d", p, t))
			cl.ToRs = append(cl.ToRs, tor)
			for _, agg := range aggs {
				g.AddDuplexLink(tor, agg, cfg.LinkCapacity, cfg.PropDelay)
			}
			for h := 0; h < cfg.HostsPerToR; h++ {
				hn := g.AddNode(Host, TierHost, fmt.Sprintf("H%d", host))
				host++
				cl.Hosts = append(cl.Hosts, hn)
				g.AddDuplexLink(hn, tor, cfg.LinkCapacity, cfg.PropDelay)
			}
		}
	}
	return cl
}

// FatTree builds the canonical k-ary fat tree [Al-Fares et al., SIGCOMM'08]:
// k pods, each with k/2 edge and k/2 aggregation switches, (k/2)² core
// switches, and k³/4 hosts, with full bisection bandwidth. k must be even
// and ≥ 2.
func FatTree(k int, capacity float64, prop sim.Duration) *Clos {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat tree arity %d must be even and ≥ 2", k))
	}
	return NewClos(ClosConfig{
		Pods:         k,
		ToRsPerPod:   k / 2,
		AggsPerPod:   k / 2,
		Cores:        k * k / 4,
		HostsPerToR:  k / 2,
		LinkCapacity: capacity,
		PropDelay:    prop,
	})
}

// Chain builds a linear topology: host — n switches — host. It exists for
// protocol tests that need paths longer than the probe format's MaxHops.
type Chain struct {
	Graph    *Graph
	Src, Dst NodeID
	Switches []NodeID
}

// NewChain builds the linear topology with the given switch count.
func NewChain(nSwitches int, capacity float64, prop sim.Duration) *Chain {
	g := &Graph{}
	c := &Chain{Graph: g}
	c.Src = g.AddNode(Host, TierHost, "src")
	prev := c.Src
	for i := 0; i < nSwitches; i++ {
		sw := g.AddNode(Switch, TierToR, fmt.Sprintf("SW%d", i))
		c.Switches = append(c.Switches, sw)
		g.AddDuplexLink(prev, sw, capacity, prop)
		prev = sw
	}
	c.Dst = g.AddNode(Host, TierHost, "dst")
	g.AddDuplexLink(prev, c.Dst, capacity, prop)
	return c
}
