package topo

import (
	"testing"

	"ufab/internal/sim"
)

// checkPartition verifies the structural invariants the sharded engine
// depends on: every node is assigned, every link either stays inside one
// shard or crosses exactly one boundary whose propagation delay is at least
// the declared minimum, and non-core nodes of one pod share a shard.
func checkPartition(t *testing.T, g *Graph, p *Partition) {
	t.Helper()
	if p.Shards < 1 {
		t.Fatalf("Shards = %d", p.Shards)
	}
	for id, s := range p.Node {
		if s < 0 || int(s) >= p.Shards {
			t.Fatalf("node %d assigned to out-of-range shard %d", id, s)
		}
	}
	cuts := 0
	for _, l := range g.Links {
		a, b := p.Node[l.Src], p.Node[l.Dst]
		if a == b {
			continue
		}
		cuts++
		// A link has two endpoints, so it can cross at most one shard
		// boundary; what the lookahead needs is that every crossing
		// carries at least the declared minimum latency.
		if l.PropDelay < p.MinCutDelay {
			t.Errorf("cut link %d has delay %v below declared minimum %v", l.ID, l.PropDelay, p.MinCutDelay)
		}
		// Pod partition: only pod↔core hops may be cut. Host and ToR
		// links always stay inside their pod shard.
		st, dt := g.Nodes[l.Src].Tier, g.Nodes[l.Dst].Tier
		if st != TierCore && dt != TierCore {
			t.Errorf("cut link %d crosses shards without touching the core tier (%v→%v)", l.ID, st, dt)
		}
	}
	if cuts != p.CutLinks {
		t.Errorf("CutLinks = %d, found %d", p.CutLinks, cuts)
	}
}

func TestPartitionClos(t *testing.T) {
	cl := NewClos(ClosConfig{Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4})
	p, err := PartitionPods(cl.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 4 {
		t.Fatalf("Shards = %d, want one per pod (4)", p.Shards)
	}
	checkPartition(t, cl.Graph, p)
	if p.MinCutDelay != cl.Cfg.PropDelay {
		t.Errorf("MinCutDelay = %v, want uniform link delay %v", p.MinCutDelay, cl.Cfg.PropDelay)
	}
	// Hosts under the same ToR share their ToR's shard.
	for i, h := range cl.Hosts {
		tor := cl.ToRs[i/cl.Cfg.HostsPerToR]
		if p.Node[h] != p.Node[tor] {
			t.Errorf("host %d in shard %d, its ToR in %d", h, p.Node[h], p.Node[tor])
		}
	}
	// Cores are spread round-robin, so with 4 cores and 4 pods each pod
	// shard owns exactly one.
	perShard := make([]int, p.Shards)
	for _, c := range cl.Cores {
		perShard[p.Node[c]]++
	}
	for s, n := range perShard {
		if n != 1 {
			t.Errorf("shard %d owns %d cores, want 1", s, n)
		}
	}
}

func TestPartitionFatTree(t *testing.T) {
	ft := FatTree(4, Gbps(100), sim.Microsecond)
	p, err := PartitionPods(ft.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 4 {
		t.Fatalf("Shards = %d, want 4 pods", p.Shards)
	}
	checkPartition(t, ft.Graph, p)
	// Every agg↔core link is potentially cut; each agg has k/2 = 2 core
	// uplinks, 8 aggs total, 2 directions — minus those whose core
	// landed in the same pod shard.
	if p.CutLinks == 0 || p.CutLinks%2 != 0 {
		t.Errorf("CutLinks = %d, want a positive even count", p.CutLinks)
	}
}

func TestPartitionTestbed(t *testing.T) {
	tb := NewTestbed(TestbedConfig{})
	p, err := PartitionPods(tb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 2 {
		t.Fatalf("Shards = %d, want 2 pods", p.Shards)
	}
	checkPartition(t, tb.Graph, p)
}

// TestPartitionCorelessGraph pins the degenerate single-shard case: no core
// tier means one shard and no cut links, which the sharded engine runs with
// an unbounded window.
func TestPartitionCorelessGraph(t *testing.T) {
	st := NewStar(4, Gbps(10), sim.Microsecond)
	p, err := PartitionPods(st.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 1 || p.CutLinks != 0 || p.MinCutDelay != 0 {
		t.Fatalf("star partition = %+v, want 1 shard, no cuts", p)
	}
	checkPartition(t, st.Graph, p)
}

// TestPartitionZeroDelayCutRejected pins the error path: a cut link with no
// propagation delay leaves no safe lookahead window.
func TestPartitionZeroDelayCutRejected(t *testing.T) {
	g := &Graph{}
	h1 := g.AddNode(Host, TierHost, "h1")
	t1 := g.AddNode(Switch, TierToR, "t1")
	h2 := g.AddNode(Host, TierHost, "h2")
	t2 := g.AddNode(Switch, TierToR, "t2")
	c := g.AddNode(Switch, TierCore, "c")
	g.AddDuplexLink(h1, t1, Gbps(10), sim.Microsecond)
	g.AddDuplexLink(h2, t2, Gbps(10), sim.Microsecond)
	// The lone core round-robins into shard 0 (t1's pod), so the t2↔c
	// links are the cut ones — give them the zero delay.
	g.AddDuplexLink(t1, c, Gbps(10), sim.Microsecond)
	g.AddDuplexLink(t2, c, Gbps(10), 0)
	if _, err := PartitionPods(g); err == nil {
		t.Fatal("zero-delay cut link not rejected")
	}
}
