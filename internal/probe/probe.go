// Package probe implements the μFAB probe/response wire format of
// Appendix G. Probes are the only coordination channel between the active
// edge (μFAB-E) and the informative core (μFAB-C): the source edge inserts
// its VM-pair's bandwidth token φ and per-link sending window w; every
// switch on the path appends an INT hop record carrying the link's total
// sending window W_l, total token Φ_l, TX rate tx_l, queue size q_l, and
// capacity C_l; the destination edge echoes everything back in a response
// together with its local minimum-bandwidth token.
//
// The encoding follows the paper's field widths (type 4 b, nHop 4 b,
// φ 24 b, and 64-bit hop records of W 16 b | Φ 16 b | tx 16 b | q 12 b |
// C 4 b). Quantization units are chosen so the 16/12-bit fields cover
// data-center magnitudes; Encode→Decode round-trips are exact up to those
// units (see the package tests). A small simulation preamble (VM-pair id,
// path id, sequence number, timestamp, sender window, and the receiver
// token) carries the identifiers a real deployment would take from the
// outer Ethernet/IP/SR headers.
package probe

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind is the probe packet type from the 4-bit type field.
type Kind uint8

// Probe packet types. Finish probes tell switches a VM-pair has gone
// inactive so they can deduct its φ and w from Φ_l and W_l (§3.6).
const (
	KindProbe    Kind = 1
	KindResponse Kind = 2
	KindFailure  Kind = 4
	KindFinish   Kind = 8
)

func (k Kind) String() string {
	switch k {
	case KindProbe:
		return "probe"
	case KindResponse:
		return "response"
	case KindFailure:
		return "failure"
	case KindFinish:
		return "finish"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MaxHops is the largest number of INT hop records a probe can carry,
// bounded by the 4-bit nHop field.
const MaxHops = 15

// Quantization units for the INT fields.
const (
	// WindowUnit quantizes sending windows (w, W_l) in bytes: 16 bits ×
	// 256 B covers 16 MiB, far above 3·BDP of any DCN path, while a
	// single-MTU window still encodes without vanishing.
	WindowUnit = 256
	// QueueUnit quantizes queue sizes in bytes: 12 bits × 64 B covers
	// 256 KiB, beyond the shallow-buffer regime μFAB keeps switches in.
	QueueUnit = 64
	// TxUnit quantizes TX rates in bits/s: 16 bits × 2 Mbps covers
	// 131 Gbps.
	TxUnit = 2e6
	// PhiUnit quantizes per-VM-pair tokens φ (24-bit field) in
	// millitokens: Guarantee Partitioning yields fractional tokens.
	PhiUnit = 1e-3
	// TotalPhiUnit quantizes the per-link total Φ_l (16-bit field) in
	// decitokens: 6553 tokens cover a 655 Gbps subscription at
	// B_u = 100 Mbps.
	TotalPhiUnit = 1e-1
)

// speedClasses maps the 4-bit C_l field to port speeds in bits/s.
var speedClasses = [...]float64{
	0, 1e9, 2.5e9, 5e9, 10e9, 25e9, 40e9, 50e9, 100e9, 200e9, 400e9, 800e9,
}

// EncodeSpeedClass returns the 4-bit class whose speed is closest to the
// given capacity in bits/s.
func EncodeSpeedClass(bps float64) uint8 {
	best, bestDiff := 0, -1.0
	for i, s := range speedClasses {
		d := bps - s
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return uint8(best)
}

// DecodeSpeedClass returns the port speed in bits/s for a 4-bit class.
func DecodeSpeedClass(class uint8) float64 {
	if int(class) >= len(speedClasses) {
		return 0
	}
	return speedClasses[class]
}

// Hop is one switch's INT record, in physical units.
type Hop struct {
	// TotalWindow is W_l: the sum of the sending windows of all active
	// VM-pairs traversing the link, in bytes.
	TotalWindow uint32
	// TotalTokens is Φ_l: the total bandwidth token of all active
	// VM-pairs on the link, in tokens (decitoken wire resolution).
	TotalTokens float64
	// TxRate is the link's measured output rate in bits/s.
	TxRate float64
	// Queue is the link's real-time egress queue size in bytes.
	Queue uint32
	// Capacity is the link's physical line rate in bits/s (a 4-bit
	// speed class on the wire).
	Capacity float64
	// LinkID identifies the link in simulation (carried in the
	// preamble-extended hop record; a hardware deployment derives it
	// from the SR header instead).
	LinkID int32
}

// Packet is a decoded probe or response.
type Packet struct {
	Kind Kind
	// VMPair identifies the VM-pair the probe belongs to.
	VMPair uint32
	// PathID identifies which of the VM-pair's candidate underlay paths
	// the probe traveled.
	PathID uint16
	// Seq is the probe sequence number, echoed in the response.
	Seq uint32
	// Phi is φ_{a→b}: the sender-assigned bandwidth token in tokens
	// (24-bit millitoken wire resolution). In a response it is the
	// receiver-admitted token (Appendix G).
	Phi float64
	// Window is w^u_{a→b}: the VM-pair's current sending window on this
	// path in bytes.
	Window uint32
	// PeerPhi is the receiver-side admitted token in tokens, filled
	// into the response by the destination edge so the source can take
	// min(sender, receiver) per Guarantee Partitioning.
	PeerPhi float64
	// SentAt is the source timestamp in simulation picoseconds, echoed
	// back for RTT measurement.
	SentAt int64
	// Hops holds one INT record per switch traversed, in path order.
	Hops []Hop
}

const (
	preambleLen = 1 + 4 + 2 + 4 + 3 + 2 + 4 + 8 // kind/nhop .. sentAt
	hopLen      = 8 + 4                         // 64-bit record + link id
	// HeaderOverhead models the outer Ethernet+IP+SR headers a real
	// probe carries (Fig 22); it contributes to probe size accounting.
	HeaderOverhead = 14 + 20 + 16
)

// WireSize returns the on-wire byte size of a probe carrying n hop
// records, including the modeled outer headers.
func WireSize(nHops int) int { return HeaderOverhead + preambleLen + nHops*hopLen }

// Size returns the packet's current on-wire size.
func (p *Packet) Size() int { return WireSize(len(p.Hops)) }

// Errors returned by Decode and AppendHop.
var (
	ErrTruncated = errors.New("probe: buffer truncated")
	ErrTooLong   = errors.New("probe: more than MaxHops hop records")
	ErrBadKind   = errors.New("probe: unknown packet kind")
)

func clamp(v uint64, max uint64) uint64 {
	if v > max {
		return max
	}
	return v
}

// quantize divides v by unit, rounding to nearest, clamped to max.
func quantize(v float64, unit float64, max uint64) uint64 {
	if v <= 0 {
		return 0
	}
	return clamp(uint64(v/unit+0.5), max)
}

// Encode appends the packet's wire representation (without the modeled
// outer headers) to dst and returns the extended slice.
func (p *Packet) Encode(dst []byte) ([]byte, error) {
	if len(p.Hops) > MaxHops {
		return dst, ErrTooLong
	}
	switch p.Kind {
	case KindProbe, KindResponse, KindFailure, KindFinish:
	default:
		return dst, ErrBadKind
	}
	var kindBits uint8
	switch p.Kind {
	case KindProbe:
		kindBits = 1
	case KindResponse:
		kindBits = 2
	case KindFailure:
		kindBits = 4
	case KindFinish:
		kindBits = 8
	}
	dst = append(dst, kindBits<<4|uint8(len(p.Hops)))
	dst = binary.BigEndian.AppendUint32(dst, p.VMPair)
	dst = binary.BigEndian.AppendUint16(dst, p.PathID)
	dst = binary.BigEndian.AppendUint32(dst, p.Seq)
	phi := uint32(quantize(p.Phi, PhiUnit, 1<<24-1))
	dst = append(dst, byte(phi>>16), byte(phi>>8), byte(phi))
	dst = binary.BigEndian.AppendUint16(dst, uint16(quantize(float64(p.Window), WindowUnit, 1<<16-1)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(quantize(p.PeerPhi, PhiUnit, 1<<32-1)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.SentAt))
	for _, h := range p.Hops {
		rec := uint64(quantize(float64(h.TotalWindow), WindowUnit, 1<<16-1)) << 48
		rec |= quantize(h.TotalTokens, TotalPhiUnit, 1<<16-1) << 32
		rec |= quantize(h.TxRate, TxUnit, 1<<16-1) << 16
		rec |= quantize(float64(h.Queue), QueueUnit, 1<<12-1) << 4
		rec |= uint64(EncodeSpeedClass(h.Capacity))
		dst = binary.BigEndian.AppendUint64(dst, rec)
		dst = binary.BigEndian.AppendUint32(dst, uint32(h.LinkID))
	}
	return dst, nil
}

// Decode parses a wire representation produced by Encode. It returns the
// number of bytes consumed.
func Decode(buf []byte) (*Packet, int, error) {
	if len(buf) < preambleLen {
		return nil, 0, ErrTruncated
	}
	p := &Packet{}
	switch buf[0] >> 4 {
	case 1:
		p.Kind = KindProbe
	case 2:
		p.Kind = KindResponse
	case 4:
		p.Kind = KindFailure
	case 8:
		p.Kind = KindFinish
	default:
		return nil, 0, ErrBadKind
	}
	nHops := int(buf[0] & 0xf)
	p.VMPair = binary.BigEndian.Uint32(buf[1:])
	p.PathID = binary.BigEndian.Uint16(buf[5:])
	p.Seq = binary.BigEndian.Uint32(buf[7:])
	p.Phi = float64(uint32(buf[11])<<16|uint32(buf[12])<<8|uint32(buf[13])) * PhiUnit
	p.Window = uint32(binary.BigEndian.Uint16(buf[14:])) * WindowUnit
	p.PeerPhi = float64(binary.BigEndian.Uint32(buf[16:])) * PhiUnit
	p.SentAt = int64(binary.BigEndian.Uint64(buf[20:]))
	n := preambleLen
	if len(buf) < n+nHops*hopLen {
		return nil, 0, ErrTruncated
	}
	p.Hops = make([]Hop, nHops)
	for i := 0; i < nHops; i++ {
		rec := binary.BigEndian.Uint64(buf[n:])
		p.Hops[i] = Hop{
			TotalWindow: uint32(rec>>48) * WindowUnit,
			TotalTokens: float64(rec>>32&0xffff) * TotalPhiUnit,
			TxRate:      float64(rec>>16&0xffff) * TxUnit,
			Queue:       uint32(rec>>4&0xfff) * QueueUnit,
			Capacity:    DecodeSpeedClass(uint8(rec & 0xf)),
			LinkID:      int32(binary.BigEndian.Uint32(buf[n+8:])),
		}
		n += hopLen
	}
	return p, n, nil
}

// AppendHop adds a switch's INT record; it fails once MaxHops is reached,
// mirroring the fixed-width nHop field.
func (p *Packet) AppendHop(h Hop) error {
	if len(p.Hops) >= MaxHops {
		return ErrTooLong
	}
	p.Hops = append(p.Hops, h)
	return nil
}

// ToResponse converts a probe arriving at the destination edge into the
// response the destination sends back: same telemetry, kind flipped, and
// the receiver-admitted token attached.
func (p *Packet) ToResponse(peerPhi float64) *Packet {
	r := *p
	r.Kind = KindResponse
	r.PeerPhi = peerPhi
	r.Hops = make([]Hop, len(p.Hops))
	copy(r.Hops, p.Hops)
	return &r
}

// BottleneckIndex returns the index of the hop that minimizes the
// proportional share φ/Φ_l·C_l, i.e. the link that bounds r_{a→b} in
// Eqn (1). It returns -1 for an empty hop list.
func (p *Packet) BottleneckIndex() int {
	best, bestShare := -1, 0.0
	for i, h := range p.Hops {
		phiTotal := h.TotalTokens
		if phiTotal == 0 {
			phiTotal = TotalPhiUnit
		}
		share := p.Phi / phiTotal * h.Capacity
		if best == -1 || share < bestShare {
			best, bestShare = i, share
		}
	}
	return best
}
