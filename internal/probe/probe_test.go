package probe

import (
	"math"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Kind:    KindProbe,
		VMPair:  0xdeadbeef,
		PathID:  7,
		Seq:     42,
		Phi:     1234.5,
		Window:  64 * 1024,
		PeerPhi: 99.25,
		SentAt:  123456789,
		Hops: []Hop{
			{TotalWindow: 256 * 1024, TotalTokens: 500.3, TxRate: 9.4e9, Queue: 12 * 1024, Capacity: 10e9, LinkID: 3},
			{TotalWindow: 1024 * 1024, TotalTokens: 6000.7, TxRate: 96e9, Queue: 0, Capacity: 100e9, LinkID: 17},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.Size()-HeaderOverhead {
		t.Fatalf("encoded %d bytes, Size()-overhead = %d", len(buf), p.Size()-HeaderOverhead)
	}
	q, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if q.Kind != p.Kind || q.VMPair != p.VMPair || q.PathID != p.PathID ||
		q.Seq != p.Seq || q.SentAt != p.SentAt {
		t.Fatalf("preamble mismatch: %+v vs %+v", q, p)
	}
	if math.Abs(q.Phi-p.Phi) > PhiUnit/2+1e-9 || math.Abs(q.PeerPhi-p.PeerPhi) > PhiUnit/2+1e-9 {
		t.Fatalf("token mismatch: %v/%v vs %v/%v", q.Phi, q.PeerPhi, p.Phi, p.PeerPhi)
	}
	if len(q.Hops) != len(p.Hops) {
		t.Fatalf("hops = %d, want %d", len(q.Hops), len(p.Hops))
	}
	for i := range p.Hops {
		in, out := p.Hops[i], q.Hops[i]
		if out.LinkID != in.LinkID {
			t.Errorf("hop %d link id mismatch: %+v vs %+v", i, out, in)
		}
		if math.Abs(out.TotalTokens-in.TotalTokens) > TotalPhiUnit/2+1e-9 {
			t.Errorf("hop %d tokens %v vs %v", i, out.TotalTokens, in.TotalTokens)
		}
		if math.Abs(float64(out.TotalWindow)-float64(in.TotalWindow)) > WindowUnit/2+1 {
			t.Errorf("hop %d window %d vs %d", i, out.TotalWindow, in.TotalWindow)
		}
		if math.Abs(out.TxRate-in.TxRate) > TxUnit/2+1 {
			t.Errorf("hop %d tx %v vs %v", i, out.TxRate, in.TxRate)
		}
		if math.Abs(float64(out.Queue)-float64(in.Queue)) > QueueUnit/2+1 {
			t.Errorf("hop %d queue %d vs %d", i, out.Queue, in.Queue)
		}
		if out.Capacity != in.Capacity {
			t.Errorf("hop %d capacity %v vs %v", i, out.Capacity, in.Capacity)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Encode(nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("Decode of %d-byte prefix succeeded", i)
		}
	}
}

func TestDecodeBadKind(t *testing.T) {
	buf := make([]byte, preambleLen)
	buf[0] = 0x30 // kind bits 3: invalid
	if _, _, err := Decode(buf); err != ErrBadKind {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestEncodeBadKind(t *testing.T) {
	p := &Packet{Kind: 3}
	if _, err := p.Encode(nil); err != ErrBadKind {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestMaxHops(t *testing.T) {
	p := &Packet{Kind: KindProbe}
	for i := 0; i < MaxHops; i++ {
		if err := p.AppendHop(Hop{}); err != nil {
			t.Fatalf("AppendHop %d: %v", i, err)
		}
	}
	if err := p.AppendHop(Hop{}); err != ErrTooLong {
		t.Fatalf("AppendHop beyond max: %v, want ErrTooLong", err)
	}
	if _, err := p.Encode(nil); err != nil {
		t.Fatalf("Encode at MaxHops: %v", err)
	}
	p.Hops = append(p.Hops, Hop{})
	if _, err := p.Encode(nil); err != ErrTooLong {
		t.Fatalf("Encode beyond MaxHops: %v, want ErrTooLong", err)
	}
}

func TestAllKindsRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindProbe, KindResponse, KindFailure, KindFinish} {
		p := &Packet{Kind: k}
		buf, err := p.Encode(nil)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		q, _, err := Decode(buf)
		if err != nil || q.Kind != k {
			t.Fatalf("%v round trip: kind=%v err=%v", k, q.Kind, err)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindProbe.String() != "probe" || KindFinish.String() != "finish" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestSpeedClassRoundTrip(t *testing.T) {
	for _, bps := range []float64{1e9, 10e9, 25e9, 40e9, 100e9, 400e9} {
		if got := DecodeSpeedClass(EncodeSpeedClass(bps)); got != bps {
			t.Errorf("speed %v → %v", bps, got)
		}
	}
	if DecodeSpeedClass(15) != 0 {
		t.Error("out-of-range class must decode to 0")
	}
}

func TestPhiClamp(t *testing.T) {
	p := &Packet{Kind: KindProbe, Phi: 1 << 25} // exceeds 24-bit millitokens
	buf, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, _ := Decode(buf)
	if q.Phi != float64(1<<24-1)*PhiUnit {
		t.Errorf("Phi = %v, want clamped 24-bit max", q.Phi)
	}
}

func TestWireSize(t *testing.T) {
	// Paper: with a 5-hop diameter total telemetry < 100 bytes.
	intBytes := WireSize(5) - HeaderOverhead
	if intBytes >= 100 {
		t.Errorf("5-hop INT payload = %d bytes, paper says <100", intBytes)
	}
	if WireSize(0) != HeaderOverhead+preambleLen {
		t.Error("WireSize(0) inconsistent")
	}
}

func TestToResponse(t *testing.T) {
	p := samplePacket()
	r := p.ToResponse(777)
	if r.Kind != KindResponse || r.PeerPhi != 777 {
		t.Fatalf("response = %+v", r)
	}
	if len(r.Hops) != len(p.Hops) {
		t.Fatal("hops not copied")
	}
	// Mutating the response's hops must not alias the probe's.
	r.Hops[0].TotalTokens = 1
	if p.Hops[0].TotalTokens == 1 {
		t.Fatal("ToResponse aliases hop storage")
	}
}

func TestBottleneckIndex(t *testing.T) {
	p := &Packet{
		Kind: KindProbe, Phi: 10,
		Hops: []Hop{
			{TotalTokens: 20, Capacity: 10e9},  // share 5e9
			{TotalTokens: 100, Capacity: 10e9}, // share 1e9 ← bottleneck
			{TotalTokens: 10, Capacity: 10e9},  // share 10e9
		},
	}
	if got := p.BottleneckIndex(); got != 1 {
		t.Fatalf("BottleneckIndex = %d, want 1", got)
	}
	empty := &Packet{}
	if empty.BottleneckIndex() != -1 {
		t.Error("empty packet bottleneck != -1")
	}
	// Zero total tokens must not divide by zero.
	z := &Packet{Phi: 1, Hops: []Hop{{TotalTokens: 0, Capacity: 1e9}}}
	if z.BottleneckIndex() != 0 {
		t.Error("zero-token hop not handled")
	}
}

// Property: Encode→Decode round-trips any packet within quantization
// bounds and never panics or over/under-reads.
func TestRoundTripProperty(t *testing.T) {
	f := func(vm uint32, path uint16, seq uint32, phi uint32, win uint32, nhRaw uint8,
		tw uint32, tk uint16, tx uint32, qlen uint16) bool {
		p := &Packet{
			Kind: KindProbe, VMPair: vm, PathID: path, Seq: seq,
			Phi: float64(phi%(1<<24)) * PhiUnit, Window: win % (60 << 20),
		}
		nh := int(nhRaw % (MaxHops + 1))
		for i := 0; i < nh; i++ {
			p.Hops = append(p.Hops, Hop{
				TotalWindow: tw % (60 << 20),
				TotalTokens: float64(tk) * TotalPhiUnit,
				TxRate:      float64(uint64(tx) * 29 % 100_000_000_000),
				Queue:       uint32(qlen) % (250 << 10),
				Capacity:    10e9,
				LinkID:      int32(i),
			})
		}
		buf, err := p.Encode(nil)
		if err != nil {
			return false
		}
		q, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if q.VMPair != p.VMPair || len(q.Hops) != nh {
			return false
		}
		if math.Abs(q.Phi-p.Phi) > PhiUnit/2+1e-9 {
			return false
		}
		for i := range q.Hops {
			if math.Abs(q.Hops[i].TotalTokens-p.Hops[i].TotalTokens) > TotalPhiUnit/2+1e-9 {
				return false
			}
			if math.Abs(q.Hops[i].TxRate-p.Hops[i].TxRate) > TxUnit/2+1 {
				return false
			}
			if math.Abs(float64(q.Hops[i].Queue)-float64(p.Hops[i].Queue)) > QueueUnit/2+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if _, err := p.Encode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := samplePacket()
	buf, _ := p.Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
