// Package fairness implements the theoretical machinery of Appendix C:
// weighted α-fair allocations over a resource/path incidence structure
// (Eqns 4–5) and the discrete dual-control recursion (Eqns 6–7) whose
// equilibrium is the α-fair optimum. The package exists to validate the
// paper's convergence claims numerically — the μFAB edge uses the α→∞
// (weighted max-min) corner of this family, computed per-link from
// telemetry rather than iteratively.
package fairness

import (
	"fmt"
	"math"
)

// Network is the incidence structure of Appendix C.1: resources (links)
// with capacities, and paths (flows) with weights, where Routes[j] lists
// the resources path j uses.
type Network struct {
	// Capacity[i] is resource i's capacity C_i.
	Capacity []float64
	// Weight[j] is path j's weight w_j.
	Weight []float64
	// Routes[j] lists the resource indices used by path j.
	Routes [][]int
}

// Validate checks the structure.
func (n *Network) Validate() error {
	for j, route := range n.Routes {
		if len(route) == 0 {
			return fmt.Errorf("fairness: path %d uses no resources", j)
		}
		for _, i := range route {
			if i < 0 || i >= len(n.Capacity) {
				return fmt.Errorf("fairness: path %d references resource %d", j, i)
			}
		}
	}
	if len(n.Weight) != len(n.Routes) {
		return fmt.Errorf("fairness: %d weights for %d paths", len(n.Weight), len(n.Routes))
	}
	return nil
}

// Rates computes the sending rates (Eqn 5) from per-resource link rates R:
//
//	x_j = w_j · (Σ_{i∈route(j)} R_i^{-α})^{-1/α}
//
// As α→∞ this approaches x_j = w_j · min_i R_i (weighted max-min); α=1 is
// weighted proportional fairness.
func (n *Network) Rates(R []float64, alpha float64) []float64 {
	x := make([]float64, len(n.Routes))
	for j, route := range n.Routes {
		sum := 0.0
		for _, i := range route {
			sum += math.Pow(R[i], -alpha)
		}
		x[j] = n.Weight[j] * math.Pow(sum, -1/alpha)
	}
	return x
}

// Loads returns y = A·x, the per-resource load.
func (n *Network) Loads(x []float64) []float64 {
	y := make([]float64, len(n.Capacity))
	for j, route := range n.Routes {
		for _, i := range route {
			y[i] += x[j]
		}
	}
	return y
}

// DualStep advances the link rates by one round of the recursion (Eqn 7)
// with gain κ (κ=1 is the plain recursion; Appendix C.3 requires the
// per-RTT gain below π/2 for stability):
//
//	R_i(n+1) = R_i(n) · (C_i / y_i(n))^κ
//
// Resources with zero load keep their rate.
func (n *Network) DualStep(R []float64, alpha, kappa float64) []float64 {
	y := n.Loads(n.Rates(R, alpha))
	next := make([]float64, len(R))
	for i := range R {
		if y[i] <= 0 {
			next[i] = R[i]
			continue
		}
		next[i] = R[i] * math.Pow(n.Capacity[i]/y[i], kappa)
	}
	return next
}

// Equilibrium iterates DualStep until the per-resource load mismatch is
// within tol of capacity (or maxIters is hit), returning the final link
// rates, the per-path rates, and the number of iterations used (-1 when it
// did not converge). This reproduces Fig 19b's "dual control" dynamics.
func (n *Network) Equilibrium(alpha, kappa, tol float64, maxIters int) (R, x []float64, iters int) {
	R = make([]float64, len(n.Capacity))
	for i := range R {
		R[i] = n.Capacity[i]
	}
	for it := 0; it < maxIters; it++ {
		x = n.Rates(R, alpha)
		y := n.Loads(x)
		done := true
		for i := range y {
			if y[i] == 0 {
				continue
			}
			if math.Abs(y[i]-n.Capacity[i]) > tol*n.Capacity[i] {
				done = false
				break
			}
		}
		if done {
			return R, x, it
		}
		R = n.DualStep(R, alpha, kappa)
	}
	return R, n.Rates(R, alpha), -1
}

// Objective evaluates the α-fair utility Σ w_j/(1-α)·(x_j/w_j)^{1-α}
// (Eqn 4), with the α=1 limit Σ w_j·log(x_j/w_j).
func (n *Network) Objective(x []float64, alpha float64) float64 {
	sum := 0.0
	for j := range x {
		r := x[j] / n.Weight[j]
		if alpha == 1 {
			sum += n.Weight[j] * math.Log(r)
		} else {
			sum += n.Weight[j] / (1 - alpha) * math.Pow(r, 1-alpha)
		}
	}
	return sum
}
