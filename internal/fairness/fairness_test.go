package fairness

import (
	"math"
	"testing"
	"testing/quick"
)

// singleLink: three weighted flows on one resource.
func singleLink() *Network {
	return &Network{
		Capacity: []float64{10},
		Weight:   []float64{1, 2, 5},
		Routes:   [][]int{{0}, {0}, {0}},
	}
}

// linear: the classic 2-resource line network — flow 0 crosses both
// resources, flows 1 and 2 use one each.
func linear() *Network {
	return &Network{
		Capacity: []float64{10, 4},
		Weight:   []float64{1, 1, 1},
		Routes:   [][]int{{0, 1}, {0}, {1}},
	}
}

func TestValidate(t *testing.T) {
	if err := singleLink().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Network{Capacity: []float64{1}, Weight: []float64{1}, Routes: [][]int{{}}}
	if bad.Validate() == nil {
		t.Fatal("empty route accepted")
	}
	bad2 := &Network{Capacity: []float64{1}, Weight: []float64{1}, Routes: [][]int{{7}}}
	if bad2.Validate() == nil {
		t.Fatal("dangling resource accepted")
	}
}

func TestSingleLinkProportional(t *testing.T) {
	// On one link every fairness criterion gives weighted sharing.
	for _, alpha := range []float64{1, 2, 16} {
		_, x, iters := singleLink().Equilibrium(alpha, 0.5, 1e-6, 10000)
		if iters < 0 {
			t.Fatalf("α=%v did not converge", alpha)
		}
		want := []float64{1.25, 2.5, 6.25}
		for j := range want {
			if math.Abs(x[j]-want[j]) > 0.01 {
				t.Errorf("α=%v: x[%d]=%v, want %v", alpha, j, x[j], want[j])
			}
		}
	}
}

func TestMaxMinLimit(t *testing.T) {
	// α→∞ on the line network gives max-min: x0=x2=2 (bottleneck at the
	// 4-capacity link), x1=8.
	_, x, iters := linear().Equilibrium(24, 0.4, 1e-4, 50000)
	if iters < 0 {
		t.Fatal("did not converge")
	}
	if math.Abs(x[0]-2) > 0.1 || math.Abs(x[2]-2) > 0.1 {
		t.Errorf("max-min bottleneck rates: %v", x)
	}
	if math.Abs(x[1]-8) > 0.1 {
		t.Errorf("max-min spare: x1=%v, want 8", x[1])
	}
}

func TestProportionalFairnessFavorsShortPaths(t *testing.T) {
	// α=1 on the line network: the 2-hop flow gets less than max-min
	// (proportional fairness trades its rate for efficiency).
	_, x1, it1 := linear().Equilibrium(1, 0.4, 1e-5, 50000)
	if it1 < 0 {
		t.Fatal("α=1 did not converge")
	}
	_, xInf, itInf := linear().Equilibrium(24, 0.4, 1e-4, 50000)
	if itInf < 0 {
		t.Fatal("α→∞ did not converge")
	}
	if x1[0] >= xInf[0] {
		t.Errorf("2-hop flow: proportional %v should be below max-min %v", x1[0], xInf[0])
	}
	// Total throughput is higher under proportional fairness.
	if x1[0]+x1[1]+x1[2] <= xInf[0]+xInf[1]+xInf[2] {
		t.Error("proportional fairness did not improve efficiency")
	}
}

func TestObjectiveIncreasesTowardEquilibrium(t *testing.T) {
	n := linear()
	alpha := 2.0
	R := []float64{10, 4}
	start := n.Objective(n.feasible(n.Rates(R, alpha)), alpha)
	_, x, iters := n.Equilibrium(alpha, 0.4, 1e-5, 50000)
	if iters < 0 {
		t.Fatal("no convergence")
	}
	if got := n.Objective(x, alpha); got < start {
		t.Errorf("objective decreased: %v → %v", start, got)
	}
}

// feasible scales rates down uniformly until no capacity is violated, so
// objectives are compared between feasible points.
func (n *Network) feasible(x []float64) []float64 {
	y := n.Loads(x)
	worst := 1.0
	for i := range y {
		if y[i] > n.Capacity[i] {
			if r := n.Capacity[i] / y[i]; r < worst {
				worst = r
			}
		}
	}
	out := make([]float64, len(x))
	for j := range x {
		out[j] = x[j] * worst
	}
	return out
}

func TestGainIndependentEquilibrium(t *testing.T) {
	// Appendix C.2: the equilibrium of the recursion is the α-fair
	// optimum regardless of the adaptation gain; the gain only changes
	// how fast (and, with delays, whether) it is reached.
	n := linear()
	_, xSlow, itSlow := n.Equilibrium(8, 0.1, 1e-4, 60000)
	_, xFast, itFast := n.Equilibrium(8, 0.8, 1e-4, 60000)
	if itSlow < 0 || itFast < 0 {
		t.Fatalf("convergence failed: slow=%d fast=%d", itSlow, itFast)
	}
	for j := range xSlow {
		if math.Abs(xSlow[j]-xFast[j]) > 0.05*xSlow[j] {
			t.Errorf("equilibria differ with gain: %v vs %v", xSlow, xFast)
		}
	}
	if itFast >= itSlow {
		t.Errorf("higher gain was not faster: %d vs %d iterations", itFast, itSlow)
	}
}

func TestDualStepZeroLoad(t *testing.T) {
	n := &Network{
		Capacity: []float64{10, 5},
		Weight:   []float64{0},
		Routes:   [][]int{{0}},
	}
	R := []float64{10, 5}
	next := n.DualStep(R, 2, 0.5)
	if next[1] != 5 {
		t.Errorf("unloaded resource changed rate: %v", next[1])
	}
}

// Property: at any equilibrium the allocation is feasible and saturates
// every loaded resource (complementary slackness).
func TestEquilibriumFeasibleProperty(t *testing.T) {
	f := func(capRaw [3]uint8, wRaw [3]uint8) bool {
		n := &Network{
			Capacity: []float64{float64(capRaw[0]%20) + 1, float64(capRaw[1]%20) + 1},
			Weight: []float64{float64(wRaw[0]%5) + 1, float64(wRaw[1]%5) + 1,
				float64(wRaw[2]%5) + 1},
			Routes: [][]int{{0, 1}, {0}, {1}},
		}
		_, x, iters := n.Equilibrium(4, 0.4, 1e-4, 60000)
		if iters < 0 {
			return true // a handful of stiff instances may be slow; skip
		}
		y := n.Loads(x)
		for i := range y {
			if y[i] > n.Capacity[i]*1.01 {
				return false
			}
			if y[i] < n.Capacity[i]*0.98 {
				return false // every resource is used by some path here
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
