// Package token implements μFAB's bandwidth-token machinery: the hose-model
// Guarantee Partitioning of Appendix E (Algorithm 1), which splits a VF's
// minimum-bandwidth tokens φ^a into per-VM-pair tokens φ_{a→b} under online
// traffic patterns, and the multipath token split of Appendix F
// (Algorithm 2).
//
// A VF with hose guarantee B^a_min owns φ^a = B^a_min / B_u tokens on each
// side (sender and receiver), where B_u is the bandwidth one token
// represents. The sender apportions tokens across its VM-pairs to fully
// use its hose (conveying the assignment as a demand to the receiver); the
// receiver arbitrates incoming demands with max-min fair sharing. A
// VM-pair's effective token is the minimum of the two sides.
//
// Following the paper's design choice, a VM-pair whose measured demand is
// below its fair share is still admitted at least the fair-share token
// ("boost"), so it can ramp instantly when demand returns; the spare is
// simultaneously redistributed, so at most double the VF's tokens are in
// the network for one RTT (Appendix E).
package token

import (
	"math"
	"sort"
)

// Unbound marks a receiver response that does not constrain the sender
// (the sender's requested token was below the receiver's fair share).
const Unbound = math.MaxFloat64

// Pair is one VM-pair's token state as seen by one side.
type Pair struct {
	// Demand is the pair's measured demand in tokens (actual TX rate
	// divided by B_u). Negative means unbounded (backlogged).
	Demand float64
	// Requested is the sender-assigned token φ_s, the "demand" conveyed
	// to the receiver.
	Requested float64
	// Admitted is the receiver's response φ_D: Unbound, or the max-min
	// share granted.
	Admitted float64
}

// Effective returns the pair's effective token: min(sender, receiver).
func (p *Pair) Effective() float64 {
	if p.Admitted == Unbound || p.Admitted <= 0 {
		return p.Requested
	}
	return math.Min(p.Requested, p.Admitted)
}

// SenderAssign implements the sender side of Algorithm 1: it distributes
// the VF's total tokens phiVF over the pairs, writing each pair's
// Requested field.
//
// Three classes emerge: demand-bounded pairs (measured demand below the
// equal share) are still admitted the equal share but donate their spare;
// receiver-bounded pairs (a previous response admitted less than the
// current share) are clipped to the admission; the remaining pairs split
// everything left over.
func SenderAssign(phiVF float64, pairs []*Pair) {
	n := len(pairs)
	if n == 0 || phiVF <= 0 {
		return
	}
	equal := phiVF / float64(n)
	spare := 0.0
	var rest []*Pair
	for _, p := range pairs {
		p.Requested = 0
		if p.Demand >= 0 && p.Demand < equal {
			// Demand-bounded: boost to the fair share anyway so
			// the pair can grab bandwidth back instantly, but
			// donate the unused part.
			spare += equal - p.Demand
			p.Requested = equal
		} else {
			rest = append(rest, p)
		}
	}
	if len(rest) == 0 {
		return
	}
	// Max-min over the remaining pairs against receiver admissions,
	// ascending on last admitted token.
	sort.SliceStable(rest, func(i, j int) bool {
		ai, aj := rest[i].Admitted, rest[j].Admitted
		if ai <= 0 {
			ai = Unbound
		}
		if aj <= 0 {
			aj = Unbound
		}
		return ai < aj
	})
	remainingTokens := equal*float64(len(rest)) + spare
	remaining := len(rest)
	for _, p := range rest {
		share := remainingTokens / float64(remaining)
		adm := p.Admitted
		if adm <= 0 {
			adm = Unbound
		}
		if adm < share {
			// Receiver-bounded: take the admission, free the rest.
			p.Requested = adm
			remainingTokens -= adm
		} else {
			p.Requested = share
			remainingTokens -= share
		}
		remaining--
	}
}

// ReceiverAdmit implements the receiver side of Algorithm 1: max-min fair
// arbitration of the incoming Requested tokens against the VF's receiver
// hose phiVF, writing each pair's Admitted field (Unbound when the request
// fits under the fair share).
func ReceiverAdmit(phiVF float64, pairs []*Pair) {
	n := len(pairs)
	if n == 0 {
		return
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return pairs[idx[a]].Requested < pairs[idx[b]].Requested
	})
	remainingTokens := phiVF
	remaining := n
	for _, i := range idx {
		p := pairs[i]
		share := remainingTokens / float64(remaining)
		if p.Requested <= share {
			p.Admitted = Unbound
			remainingTokens -= p.Requested
		} else {
			p.Admitted = share
			remainingTokens -= share
		}
		remaining--
	}
}

// PathToken is one underlay path's token state for a multipath VM-pair.
type PathToken struct {
	// Demand is the path's measured demand in tokens (TX rate / B_u);
	// negative means unbounded.
	Demand float64
	// Token is the assigned per-path token, written by MultipathAssign.
	Token float64
}

// MultipathAssign implements Algorithm 2: it splits the VM-pair's token
// phiPair equally over its underlay paths, boosts paths with insufficient
// demand to the fair share (so demand growth is not throttled), and
// redistributes the spare to the remaining paths.
func MultipathAssign(phiPair float64, paths []*PathToken) {
	n := len(paths)
	if n == 0 {
		return
	}
	equal := phiPair / float64(n)
	spare := 0.0
	unbounded := 0
	for _, l := range paths {
		l.Token = 0
		if l.Demand >= 0 && l.Demand < equal {
			spare += equal - l.Demand
			l.Token = equal // boost demand growth
		} else {
			unbounded++
		}
	}
	if unbounded == 0 {
		return
	}
	extra := spare / float64(unbounded)
	for _, l := range paths {
		if l.Token == 0 {
			l.Token = equal + extra
		}
	}
}

// TokensFor converts a bandwidth guarantee in bits/s into tokens given the
// per-token bandwidth B_u in bits/s.
func TokensFor(guaranteeBps, buBps float64) float64 { return guaranteeBps / buBps }
