package token

import (
	"math"
	"testing"
	"testing/quick"
)

const phiA = 90.0 // a VF hose of 90 tokens divides evenly by 2 and 3

func backlogged() *Pair { return &Pair{Demand: -1} }

func TestSenderAssignEqualSplit(t *testing.T) {
	// Fig 21a: sender a1 has three backlogged pairs → φ^a/3 each.
	pairs := []*Pair{backlogged(), backlogged(), backlogged()}
	SenderAssign(phiA, pairs)
	for i, p := range pairs {
		if math.Abs(p.Requested-phiA/3) > 1e-9 {
			t.Errorf("pair %d requested %v, want %v", i, p.Requested, phiA/3)
		}
	}
}

func TestReceiverAdmitMaxMin(t *testing.T) {
	// Fig 21a receiver a6: demands φ^a/3 (from a1) and φ^a (from a2)
	// against hose φ^a. Fair share φ^a/2: a1's request fits → Unbound;
	// a2 gets the leftover 2φ^a/3.
	pairs := []*Pair{
		{Requested: phiA / 3},
		{Requested: phiA},
	}
	ReceiverAdmit(phiA, pairs)
	if pairs[0].Admitted != Unbound {
		t.Errorf("small demand admitted = %v, want Unbound", pairs[0].Admitted)
	}
	if math.Abs(pairs[1].Admitted-2*phiA/3) > 1e-9 {
		t.Errorf("large demand admitted = %v, want %v", pairs[1].Admitted, 2*phiA/3)
	}
}

func TestSenderAssignInsufficientDemand(t *testing.T) {
	// Fig 21b: one of three pairs has tiny demand ε. It is still
	// admitted the fair share (boost), and its spare (fair−ε) is
	// redistributed to the other two.
	eps := 3.0
	pairs := []*Pair{
		{Demand: eps},
		backlogged(),
		backlogged(),
	}
	SenderAssign(phiA, pairs)
	equal := phiA / 3
	if math.Abs(pairs[0].Requested-equal) > 1e-9 {
		t.Errorf("bounded pair requested %v, want boost to %v", pairs[0].Requested, equal)
	}
	wantOther := equal + (equal-eps)/2
	for i := 1; i < 3; i++ {
		if math.Abs(pairs[i].Requested-wantOther) > 1e-9 {
			t.Errorf("pair %d requested %v, want %v", i, pairs[i].Requested, wantOther)
		}
	}
	// Total over-assignment is bounded by double the VF tokens.
	total := 0.0
	for _, p := range pairs {
		total += p.Requested
	}
	if total > 2*phiA+1e-9 {
		t.Errorf("total assigned %v exceeds 2φ^a", total)
	}
}

func TestSenderAssignReceiverBounded(t *testing.T) {
	// A pair previously admitted only 10 tokens by its receiver frees
	// the rest for its sibling.
	pairs := []*Pair{
		{Demand: -1, Admitted: 10},
		{Demand: -1, Admitted: Unbound},
	}
	SenderAssign(phiA, pairs)
	if math.Abs(pairs[0].Requested-10) > 1e-9 {
		t.Errorf("receiver-bounded pair requested %v, want 10", pairs[0].Requested)
	}
	if math.Abs(pairs[1].Requested-(phiA-10)) > 1e-9 {
		t.Errorf("sibling requested %v, want %v", pairs[1].Requested, phiA-10)
	}
}

func TestSenderAssignNoPairsOrNoTokens(t *testing.T) {
	SenderAssign(phiA, nil) // must not panic
	p := backlogged()
	SenderAssign(0, []*Pair{p})
	if p.Requested != 0 {
		t.Errorf("zero-hose assignment = %v", p.Requested)
	}
}

func TestReceiverAdmitAllFit(t *testing.T) {
	pairs := []*Pair{{Requested: 10}, {Requested: 20}}
	ReceiverAdmit(phiA, pairs)
	for i, p := range pairs {
		if p.Admitted != Unbound {
			t.Errorf("pair %d admitted %v, want Unbound", i, p.Admitted)
		}
	}
}

func TestEffective(t *testing.T) {
	p := &Pair{Requested: 30, Admitted: Unbound}
	if p.Effective() != 30 {
		t.Errorf("Effective with Unbound = %v", p.Effective())
	}
	p.Admitted = 20
	if p.Effective() != 20 {
		t.Errorf("Effective clipped = %v", p.Effective())
	}
	p.Admitted = 0 // no response yet
	if p.Effective() != 30 {
		t.Errorf("Effective without response = %v", p.Effective())
	}
}

func TestMultipathAssignEqual(t *testing.T) {
	paths := []*PathToken{{Demand: -1}, {Demand: -1}, {Demand: -1}}
	MultipathAssign(30, paths)
	for i, l := range paths {
		if math.Abs(l.Token-10) > 1e-9 {
			t.Errorf("path %d token %v, want 10", i, l.Token)
		}
	}
}

func TestMultipathAssignInsufficient(t *testing.T) {
	paths := []*PathToken{{Demand: 2}, {Demand: -1}, {Demand: -1}}
	MultipathAssign(30, paths)
	if math.Abs(paths[0].Token-10) > 1e-9 {
		t.Errorf("bounded path token %v, want boosted 10", paths[0].Token)
	}
	for i := 1; i < 3; i++ {
		if math.Abs(paths[i].Token-14) > 1e-9 {
			t.Errorf("path %d token %v, want 14", i, paths[i].Token)
		}
	}
}

func TestMultipathAssignAllBounded(t *testing.T) {
	paths := []*PathToken{{Demand: 1}, {Demand: 2}}
	MultipathAssign(30, paths)
	for i, l := range paths {
		if math.Abs(l.Token-15) > 1e-9 {
			t.Errorf("path %d token %v, want equal share 15", i, l.Token)
		}
	}
}

func TestMultipathAssignEmpty(t *testing.T) {
	MultipathAssign(30, nil) // must not panic
}

func TestTokensFor(t *testing.T) {
	if got := TokensFor(5e9, 100e6); got != 50 {
		t.Errorf("TokensFor = %v, want 50", got)
	}
}

// Property: receiver admission is feasible — the sum of what bounded pairs
// are admitted plus fitting requests never exceeds the hose, and every
// response is either Unbound or ≤ the request... (a bounded admission is
// always strictly below the request).
func TestReceiverAdmitFeasibleProperty(t *testing.T) {
	f := func(reqsRaw []uint16, hoseRaw uint16) bool {
		if len(reqsRaw) == 0 || len(reqsRaw) > 20 {
			return true
		}
		hose := float64(hoseRaw%1000) + 1
		pairs := make([]*Pair, len(reqsRaw))
		for i, r := range reqsRaw {
			pairs[i] = &Pair{Requested: float64(r % 500)}
		}
		ReceiverAdmit(hose, pairs)
		total := 0.0
		for _, p := range pairs {
			if p.Admitted == Unbound {
				total += p.Requested
			} else {
				if p.Admitted > p.Requested+1e-9 {
					return false
				}
				total += p.Admitted
			}
		}
		return total <= hose+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: sender assignment conserves tokens up to the documented 2×
// boost bound, and all requests are non-negative.
func TestSenderAssignBoundProperty(t *testing.T) {
	f := func(demandsRaw []int16, hoseRaw uint16) bool {
		if len(demandsRaw) == 0 || len(demandsRaw) > 20 {
			return true
		}
		hose := float64(hoseRaw%1000) + 1
		pairs := make([]*Pair, len(demandsRaw))
		for i, d := range demandsRaw {
			dem := float64(d)
			if d%3 == 0 {
				dem = -1
			} else if dem < 0 {
				dem = -dem
			}
			pairs[i] = &Pair{Demand: dem}
		}
		SenderAssign(hose, pairs)
		total := 0.0
		for _, p := range pairs {
			if p.Requested < -1e-9 {
				return false
			}
			total += p.Requested
		}
		return total <= 2*hose+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenAssignment(b *testing.B) {
	pairs := make([]*Pair, 64)
	for i := range pairs {
		pairs[i] = &Pair{Demand: float64(i % 7)}
		if i%3 == 0 {
			pairs[i].Demand = -1
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SenderAssign(1000, pairs)
		ReceiverAdmit(1000, pairs)
	}
}
