// Package flowsrc defines the traffic-source abstraction shared by every
// transport in the repository (μFAB-E and the baseline schemes): a demand
// is a byte buffer the workload generators and application models push
// into and the transport drains as its admission control permits.
package flowsrc

import "ufab/internal/sim"

// Source is the traffic source a VM-pair drains. Implementations must
// call the wired kick function (see Kicker) when Pending transitions from
// zero so the transport's scheduler wakes up.
type Source interface {
	// Pending returns the bytes currently available to send.
	Pending() int64
	// Consume removes n bytes from the demand (n ≤ Pending()).
	Consume(n int64)
}

// DeliveryObserver is optionally implemented by Sources that track
// end-to-end completion (e.g. message workloads measuring FCT). Delivered
// is invoked when bytes are acknowledged by the receiver.
type DeliveryObserver interface {
	Delivered(n int64, now sim.Time)
}

// Requeuer is optionally implemented by Sources that can take lost bytes
// back for retransmission; without it, lost inflight bytes are forgotten.
type Requeuer interface{ Requeue(n int64) }

// Kicker is implemented by Sources that accept a wake-up hook from the
// transport.
type Kicker interface{ SetKick(func()) }

// Buffer is the basic Source: a byte buffer with a wake-up hook. The zero
// value is usable once the transport wires the kick function.
type Buffer struct {
	pending int64
	kick    func()
}

// Add makes n more bytes available and wakes the scheduler.
func (b *Buffer) Add(n int64) {
	if n <= 0 {
		return
	}
	b.pending += n
	if b.kick != nil {
		b.kick()
	}
}

// Pending implements Source.
func (b *Buffer) Pending() int64 { return b.pending }

// Consume implements Source.
func (b *Buffer) Consume(n int64) {
	if n > b.pending {
		panic("flowsrc: Consume beyond Pending")
	}
	b.pending -= n
}

// Requeue returns n lost bytes to the demand (retransmission after packet
// loss). It does not kick: the caller reschedules.
func (b *Buffer) Requeue(n int64) { b.pending += n }

// SetKick implements Kicker.
func (b *Buffer) SetKick(f func()) { b.kick = f }
