package flowsrc

import (
	"testing"
	"testing/quick"
)

func TestBufferBasics(t *testing.T) {
	var b Buffer
	if b.Pending() != 0 {
		t.Fatal("zero value not empty")
	}
	b.Add(100)
	if b.Pending() != 100 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	b.Consume(60)
	if b.Pending() != 40 {
		t.Fatalf("Pending = %d after Consume", b.Pending())
	}
	b.Requeue(10)
	if b.Pending() != 50 {
		t.Fatalf("Pending = %d after Requeue", b.Pending())
	}
}

func TestBufferKick(t *testing.T) {
	var b Buffer
	kicks := 0
	b.SetKick(func() { kicks++ })
	b.Add(10)
	b.Add(5)
	if kicks != 2 {
		t.Fatalf("kicks = %d", kicks)
	}
	// Non-positive adds are ignored and do not kick.
	b.Add(0)
	b.Add(-3)
	if kicks != 2 || b.Pending() != 15 {
		t.Fatalf("kicks=%d pending=%d after no-op adds", kicks, b.Pending())
	}
	// Requeue does not kick (the caller reschedules).
	b.Consume(15)
	b.Requeue(7)
	if kicks != 2 {
		t.Fatalf("Requeue kicked")
	}
}

func TestBufferOverConsumePanics(t *testing.T) {
	var b Buffer
	b.Add(5)
	defer func() {
		if recover() == nil {
			t.Fatal("over-Consume did not panic")
		}
	}()
	b.Consume(6)
}

// Property: Pending always equals adds − consumes + requeues and never
// goes negative under valid operation sequences.
func TestBufferAccountingProperty(t *testing.T) {
	f := func(ops []int16) bool {
		var b Buffer
		var expect int64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				b.Add(n)
				if n > 0 {
					expect += n
				}
			} else {
				take := -n
				if take > b.Pending() {
					take = b.Pending()
				}
				b.Consume(take)
				expect -= take
			}
			if b.Pending() != expect || expect < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
