package dataplane

import (
	"bytes"
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

func TestFaultAPIBoundsChecked(t *testing.T) {
	_, n, st := twoHostNet(topo.Gbps(10))
	badLinks := []topo.LinkID{-1, topo.LinkID(len(st.Graph.Links))}
	for _, l := range badLinks {
		if n.FailLink(l) || n.RecoverLink(l) || n.RestoreLink(l) ||
			n.DegradeLink(l, Degradation{LossProb: 1}) {
			t.Errorf("link %d accepted out of range", l)
		}
		if n.LinkFailed(l) || n.LinkDegraded(l) {
			t.Errorf("link %d reported fault state out of range", l)
		}
	}
	badNodes := []topo.NodeID{-1, topo.NodeID(len(st.Graph.Nodes))}
	for _, id := range badNodes {
		if n.FailNode(id) || n.RecoverNode(id) || n.Failed(id) {
			t.Errorf("node %d accepted out of range", id)
		}
	}
	if !n.FailLink(0) || !n.LinkFailed(0) || !n.RecoverLink(0) {
		t.Error("valid link id rejected")
	}
	if !n.FailNode(0) || !n.Failed(0) || !n.RecoverNode(0) {
		t.Error("valid node id rejected")
	}
}

func TestOnFailDropReportsFailedNode(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	var ats, faileds []topo.NodeID
	n.OnFailDrop = func(pkt *Packet, at, failed topo.NodeID) {
		ats = append(ats, at)
		faileds = append(faileds, failed)
	}
	// Dead next hop: the live source reports its failed neighbor.
	n.FailNode(st.Center)
	n.Send(&Packet{Kind: Data, Size: 100, Route: route})
	eng.Run()
	// Dead source: the drop happens at the failed node itself.
	n.RecoverNode(st.Center)
	n.FailNode(st.Hosts[0])
	n.Send(&Packet{Kind: Data, Size: 100, Route: route})
	eng.Run()
	if len(faileds) != 2 {
		t.Fatalf("OnFailDrop fired %d times, want 2", len(faileds))
	}
	if ats[0] != st.Hosts[0] || faileds[0] != st.Center {
		t.Errorf("dead next hop reported at=%d failed=%d, want at=%d failed=%d",
			ats[0], faileds[0], st.Hosts[0], st.Center)
	}
	if ats[1] != st.Hosts[0] || faileds[1] != st.Hosts[0] {
		t.Errorf("dead source reported at=%d failed=%d, want both %d",
			ats[1], faileds[1], st.Hosts[0])
	}
}

func TestFailLinkBlackholes(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	delivered := 0
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { delivered++ }))
	var at, failed topo.NodeID
	n.OnFailDrop = func(pkt *Packet, a, f topo.NodeID) { at, failed = a, f }
	n.FailLink(route[0])
	n.Send(&Packet{Kind: Data, Size: 100, Route: route})
	eng.Run()
	if delivered != 0 {
		t.Fatal("packet crossed a downed link")
	}
	if n.FaultDrops != 1 || n.TotalDrops != 1 || n.Port(route[0]).FaultDrops != 1 {
		t.Errorf("drop counters: net=%d total=%d port=%d, want 1 each",
			n.FaultDrops, n.TotalDrops, n.Port(route[0]).FaultDrops)
	}
	// The near end detects the dark link; the far end is "failed".
	if at != st.Hosts[0] || failed != st.Center {
		t.Errorf("reported at=%d failed=%d, want %d/%d", at, failed, st.Hosts[0], st.Center)
	}
	n.RecoverLink(route[0])
	n.Send(&Packet{Kind: Data, Size: 100, Route: route})
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after recovery, want 1", delivered)
	}
}

func TestECMPAvoidsDownedLink(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(2, 1, topo.Gbps(10), sim.Microsecond)
	n := New(eng, tt.Graph, Config{ECMP: Independent})
	var down topo.LinkID = topo.NoLink
	for _, lid := range tt.Graph.Node(tt.ToR1).Out {
		if tt.Graph.Link(lid).Dst == tt.Aggs[0] {
			down = lid
		}
	}
	if down == topo.NoLink {
		t.Fatal("no ToR1→Agg0 uplink found")
	}
	delivered := 0
	n.SetHandler(tt.HostsRight[0], HandlerFunc(func(pkt *Packet) { delivered++ }))
	n.FailLink(down)
	for vm := 0; vm < 100; vm++ {
		n.SendECMP(&Packet{Kind: Data, Size: 100, VMPair: VMPair(vm), Dst: tt.HostsRight[0]}, tt.HostsLeft[0])
	}
	eng.Run()
	if delivered != 100 {
		t.Fatalf("delivered %d/100 with one of two uplinks down", delivered)
	}
	if tx := n.Port(down).TxPackets; tx != 0 {
		t.Fatalf("downed uplink carried %d packets", tx)
	}
	// After recovery the hash spreads over both uplinks again.
	n.RecoverLink(down)
	for vm := 0; vm < 100; vm++ {
		n.SendECMP(&Packet{Kind: Data, Size: 100, VMPair: VMPair(vm), Dst: tt.HostsRight[0]}, tt.HostsLeft[0])
	}
	eng.Run()
	if tx := n.Port(down).TxPackets; tx == 0 {
		t.Error("recovered uplink never used")
	}
}

func TestDegradedCapacityAndExtraDelay(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	n.DegradeLink(route[0], Degradation{CapacityScale: 0.5, ExtraDelay: 5 * sim.Microsecond})
	if !n.LinkDegraded(route[0]) {
		t.Fatal("degradation not recorded")
	}
	var gotAt sim.Time
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { gotAt = eng.Now() }))
	n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	eng.Run()
	// Hop 1 at half rate plus the added latency, hop 2 untouched:
	// 2.4 μs ser + (1 + 5) μs prop, then 1.2 μs ser + 1 μs prop.
	want := 2400*sim.Nanosecond + 6*sim.Microsecond + 1200*sim.Nanosecond + sim.Microsecond
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
	// Restore returns the link to full speed.
	n.RestoreLink(route[0])
	if n.LinkDegraded(route[0]) {
		t.Fatal("degradation survived RestoreLink")
	}
	start := eng.Now()
	n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	eng.Run()
	if lat := gotAt - start; lat != 2*(1200*sim.Nanosecond+sim.Microsecond) {
		t.Fatalf("post-restore latency %v, want 4.4 μs", lat)
	}
}

func TestLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		eng := sim.New()
		st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
		n := New(eng, st.Graph, Config{FaultSeed: seed})
		route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
		n.DegradeLink(route[0], Degradation{LossProb: 0.3})
		got := make([]bool, 200)
		n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { got[pkt.Seq] = true }))
		for i := 0; i < 200; i++ {
			n.Send(&Packet{Kind: Data, Size: 100, Seq: uint64(i), Route: route})
			eng.Run()
		}
		delivered := 0
		for _, ok := range got {
			if ok {
				delivered++
			}
		}
		if delivered == 0 || delivered == 200 {
			t.Fatalf("seed %d: delivered %d/200 at 30%% loss", seed, delivered)
		}
		if int(n.FaultDrops) != 200-delivered {
			t.Fatalf("seed %d: FaultDrops %d vs %d lost", seed, n.FaultDrops, 200-delivered)
		}
		return got
	}
	a, b := run(1), run(1)
	if !equalBools(a, b) {
		t.Fatal("same seed produced different loss patterns")
	}
	if equalBools(a, run(2)) {
		t.Fatal("different seeds produced identical loss patterns")
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestProbeDropStarvesControlOnly(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	n.DegradeLink(route[0], Degradation{ProbeDropProb: 1})
	var kinds []Kind
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { kinds = append(kinds, pkt.Kind) }))
	n.Send(&Packet{Kind: Probe, Size: 64, Route: route, Payload: []byte{1, 2, 3}})
	n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	n.Send(&Packet{Kind: Response, Size: 64, Route: route, Payload: []byte{4, 5, 6}})
	eng.Run()
	if len(kinds) != 1 || kinds[0] != Data {
		t.Fatalf("delivered kinds %v, want only data", kinds)
	}
	if n.FaultDrops != 2 {
		t.Fatalf("FaultDrops = %d, want the 2 control packets", n.FaultDrops)
	}
}

func TestProbeCorruptionFlipsCopy(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, st.Graph, Config{FaultSeed: 3})
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	n.DegradeLink(route[0], Degradation{ProbeCorruptProb: 1})
	orig := []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80}
	payload := append([]byte(nil), orig...)
	var got []byte
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { got = pkt.Payload }))
	n.Send(&Packet{Kind: Probe, Size: 64, Route: route, Payload: payload})
	eng.Run()
	if n.CorruptedProbes != 1 {
		t.Fatalf("CorruptedProbes = %d, want 1", n.CorruptedProbes)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("corruption mutated the sender's buffer instead of a copy")
	}
	diffBits := 0
	for i := range got {
		for b := got[i] ^ orig[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("payload differs in %d bits, want exactly 1 flipped", diffBits)
	}
	// Data payloads pass the corrupting link untouched.
	n.Send(&Packet{Kind: Data, Size: 100, Route: route, Payload: append([]byte(nil), orig...)})
	eng.Run()
	if !bytes.Equal(got, orig) || n.CorruptedProbes != 1 {
		t.Fatal("data payload corrupted")
	}
}

func TestFaultFreePathUnchanged(t *testing.T) {
	// With no faults configured the filter must be a no-op: identical
	// delivery time and untouched counters (the fault RNG is never
	// consulted, keeping fault-free runs bit-identical).
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	var gotAt sim.Time
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { gotAt = eng.Now() }))
	n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	eng.Run()
	if want := 2 * (1200*sim.Nanosecond + sim.Microsecond); gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
	if n.FaultDrops != 0 || n.CorruptedProbes != 0 {
		t.Fatal("fault counters moved on a clean network")
	}
}
