package dataplane

import (
	"strings"
	"testing"
	"testing/quick"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

func twoHostNet(capacity float64) (*sim.Engine, *Network, *topo.Star) {
	eng := sim.New()
	st := topo.NewStar(2, capacity, sim.Microsecond)
	n := New(eng, st.Graph, Config{})
	return eng, n, st
}

func TestDeliverySourceRouted(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	var gotAt sim.Time
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {
		gotAt = eng.Now()
		if pkt.Kind != Data || pkt.Size != 1500 {
			t.Errorf("delivered %+v", pkt)
		}
	}))
	n.Send(&Packet{Kind: Data, Size: 1500, Route: route, SentAt: 0})
	eng.Run()
	// Two hops: each 1.2 μs serialization + 1 μs prop = 4.4 μs.
	want := 2 * (1200*sim.Nanosecond + sim.Microsecond)
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
}

func TestQueueingDelay(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	var deliveries []sim.Time
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {
		deliveries = append(deliveries, eng.Now())
	}))
	// Send 3 back-to-back packets at t = 0: they serialize one after
	// another on the first link.
	for i := 0; i < 3; i++ {
		n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	}
	eng.Run()
	if len(deliveries) != 3 {
		t.Fatalf("delivered %d", len(deliveries))
	}
	ser := 1200 * sim.Nanosecond
	for i := 1; i < 3; i++ {
		if gap := deliveries[i] - deliveries[i-1]; gap != ser {
			t.Errorf("gap %d = %v, want %v", i, gap, ser)
		}
	}
}

func TestTailDrop(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, st.Graph, Config{QueueCapBytes: 3000})
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	delivered := 0
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { delivered++ }))
	// 1 transmitting + 2 queued fit; the rest drop.
	for i := 0; i < 6; i++ {
		n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	}
	eng.Run()
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
	if n.TotalDrops != 3 {
		t.Fatalf("TotalDrops = %d, want 3", n.TotalDrops)
	}
	if n.Port(route[0]).Drops != 3 {
		t.Fatalf("port drops = %d", n.Port(route[0]).Drops)
	}
}

func TestECNMarking(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, st.Graph, Config{ECNThresholdBytes: 2000})
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	var marks []bool
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { marks = append(marks, pkt.ECN) }))
	for i := 0; i < 4; i++ {
		n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	}
	eng.Run()
	// First packet starts tx immediately (queue 0), second sees queue 0
	// (first already transmitting), third sees 1500 < 2000, fourth sees
	// 3000 ≥ 2000 → marked.
	want := []bool{false, false, false, true}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestECMPDelivery(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(3, 2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, tt.Graph, Config{})
	got := 0
	n.SetHandler(tt.HostsRight[0], HandlerFunc(func(pkt *Packet) { got++ }))
	for vm := 0; vm < 30; vm++ {
		pkt := &Packet{Kind: Data, Size: 100, VMPair: VMPair(vm), Dst: tt.HostsRight[0]}
		n.SendECMP(pkt, tt.HostsLeft[0])
		eng.Run()
	}
	if got != 30 {
		t.Fatalf("delivered %d/30", got)
	}
}

func TestECMPSpreadsAcrossPaths(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(4, 2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, tt.Graph, Config{ECMP: Independent})
	n.SetHandler(tt.HostsRight[0], HandlerFunc(func(pkt *Packet) {}))
	for vm := 0; vm < 400; vm++ {
		pkt := &Packet{Kind: Data, Size: 100, VMPair: VMPair(vm), Dst: tt.HostsRight[0]}
		n.SendECMP(pkt, tt.HostsLeft[0])
	}
	eng.Run()
	// Count packets per ToR1→Agg uplink.
	used := 0
	for _, agg := range tt.Aggs {
		for _, lid := range tt.Graph.Node(tt.ToR1).Out {
			if tt.Graph.Link(lid).Dst == agg && n.Port(lid).TxPackets > 0 {
				used++
			}
		}
	}
	if used != 4 {
		t.Fatalf("independent hash used %d/4 uplinks", used)
	}
}

func TestPolarizedHashConcentrates(t *testing.T) {
	// With the identical hash applied at ToR and Agg tiers, the Agg's
	// choice is correlated with the ToR's: across a 2-tier (ToR→Agg→
	// core-like) cascade the downstream stage uses fewer distinct links
	// than independent hashing. Here we verify the weaker, deterministic
	// property that polarized mode is insensitive to the switch ID: two
	// different switches with the same candidate count pick the same
	// index for the same flow.
	eng := sim.New()
	tt := topo.NewTwoTier(4, 2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, tt.Graph, Config{ECMP: Polarized})
	pkt := &Packet{VMPair: 7, Dst: tt.HostsRight[0]}
	l1 := n.ecmpNext(tt.ToR1, pkt)
	// Same flow from the other ToR (same 4 candidates, different switch).
	pkt2 := &Packet{VMPair: 7, Dst: tt.HostsLeft[0]}
	l2 := n.ecmpNext(tt.ToR2, pkt2)
	i1 := indexOf(tt.Graph, tt.ToR1, l1)
	i2 := indexOf(tt.Graph, tt.ToR2, l2)
	if i1 != i2 {
		t.Fatalf("polarized hash picked different indices %d vs %d", i1, i2)
	}
	// Independent mode should (for some flow) differ between switches.
	n2 := New(eng, tt.Graph, Config{ECMP: Independent})
	same := 0
	for vm := VMPair(0); vm < 64; vm++ {
		a := indexOf(tt.Graph, tt.ToR1, n2.ecmpNext(tt.ToR1, &Packet{VMPair: vm, Dst: tt.HostsRight[0]}))
		b := indexOf(tt.Graph, tt.ToR2, n2.ecmpNext(tt.ToR2, &Packet{VMPair: vm, Dst: tt.HostsLeft[0]}))
		if a == b {
			same++
		}
	}
	if same == 64 {
		t.Fatal("independent hash identical across switches for all flows")
	}
}

func indexOf(g *topo.Graph, node topo.NodeID, lid topo.LinkID) int {
	// Index among this node's upward (agg-facing) candidates.
	i := 0
	for _, out := range g.Node(node).Out {
		if g.Node(g.Link(out).Dst).Kind == topo.Switch {
			if out == lid {
				return i
			}
			i++
		}
	}
	return -1
}

func TestFailNodeDropsTraffic(t *testing.T) {
	eng := sim.New()
	tt := topo.NewTwoTier(2, 1, topo.Gbps(10), sim.Microsecond)
	n := New(eng, tt.Graph, Config{})
	paths := tt.Graph.Paths(tt.HostsLeft[0], tt.HostsRight[0], 0)
	delivered := 0
	n.SetHandler(tt.HostsRight[0], HandlerFunc(func(pkt *Packet) { delivered++ }))
	n.FailNode(tt.Aggs[0])
	for _, p := range paths {
		n.Send(&Packet{Kind: Data, Size: 100, Route: p})
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only the non-failed agg path)", delivered)
	}
	n.RecoverNode(tt.Aggs[0])
	if n.Failed(tt.Aggs[0]) {
		t.Fatal("RecoverNode did not clear failure")
	}
	for _, p := range paths {
		n.Send(&Packet{Kind: Data, Size: 100, Route: p})
	}
	eng.Run()
	if delivered != 3 {
		t.Fatalf("after recovery delivered = %d, want 3", delivered)
	}
}

func TestSwitchAgentHook(t *testing.T) {
	eng := sim.New()
	st := topo.NewStar(2, topo.Gbps(10), sim.Microsecond)
	n := New(eng, st.Graph, Config{})
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	calls := 0
	n.SetSwitchAgent(st.Center, agentFunc(func(pkt *Packet, out *Port, now sim.Time) {
		calls++
		if out.Link.ID != route[1] {
			t.Errorf("agent saw egress %d, want %d", out.Link.ID, route[1])
		}
	}))
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {}))
	n.Send(&Packet{Kind: Data, Size: 100, Route: route})
	eng.Run()
	if calls != 1 {
		t.Fatalf("agent calls = %d, want 1", calls)
	}
}

type agentFunc func(pkt *Packet, out *Port, now sim.Time)

func (f agentFunc) OnForward(pkt *Packet, out *Port, now sim.Time) { f(pkt, out, now) }

func TestTxRateEstimator(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {}))
	// Saturate the 10G link for 200 μs with 1500B packets.
	var send func()
	sent := 0
	send = func() {
		if eng.Now() > 200*sim.Microsecond {
			return
		}
		n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
		sent++
		eng.After(1200*sim.Nanosecond, send)
	}
	eng.At(0, send)
	eng.Run()
	rate := n.Port(route[0]).TxRate(200 * sim.Microsecond)
	if rate < 0.9*topo.Gbps(10) || rate > 1.05*topo.Gbps(10) {
		t.Fatalf("TxRate = %v, want ≈10G", rate)
	}
	// After a long idle period the estimate decays to 0.
	rate = n.Port(route[0]).TxRate(10 * sim.Millisecond)
	if rate != 0 {
		t.Fatalf("idle TxRate = %v, want 0", rate)
	}
}

func TestLinkUtilization(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {}))
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
	}
	end := eng.Run()
	u := n.LinkUtilization(route[0], end)
	if u <= 0 || u > 1.01 {
		t.Fatalf("utilization = %v", u)
	}
	if n.LinkUtilization(route[0], 0) != 0 {
		t.Fatal("utilization at t=0 not 0")
	}
}

func TestSendWithoutRoutePanics(t *testing.T) {
	_, n, _ := twoHostNet(topo.Gbps(10))
	defer func() {
		if recover() == nil {
			t.Fatal("Send without route did not panic")
		}
	}()
	n.Send(&Packet{Kind: Data, Size: 100})
}

func TestSetHandlerOnSwitchPanics(t *testing.T) {
	_, n, st := twoHostNet(topo.Gbps(10))
	defer func() {
		if recover() == nil {
			t.Fatal("SetHandler on switch did not panic")
		}
	}()
	n.SetHandler(st.Center, HandlerFunc(func(pkt *Packet) {}))
}

func TestSwitchAgentOnHostUplink(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	seen := 0
	n.SetSwitchAgent(st.Hosts[0], agentFunc(func(pkt *Packet, out *Port, now sim.Time) { seen++ }))
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {}))
	n.Send(&Packet{Kind: Data, Size: 100, Route: route})
	eng.Run()
	if seen != 1 {
		t.Fatalf("host-attached agent saw %d packets, want 1", seen)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Data: "data", Ack: "ack", Probe: "probe", Response: "response", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

// Property: conservation — over a star with generous buffers, every packet
// sent is delivered exactly once, in per-path FIFO order.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 200 {
			return true
		}
		eng, n, st := twoHostNet(topo.Gbps(10))
		route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
		var got []uint64
		n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) { got = append(got, pkt.Seq) }))
		for i, s := range sizes {
			n.Send(&Packet{Kind: Data, Size: int(s%1400) + 64, Seq: uint64(i), Route: route})
		}
		eng.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i := range got {
			if got[i] != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForwarding(b *testing.B) {
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	n := New(eng, tb.Graph, Config{})
	route := tb.Graph.Paths(tb.Servers[0], tb.Servers[4], 1)[0]
	n.SetHandler(tb.Servers[4], HandlerFunc(func(pkt *Packet) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(&Packet{Kind: Data, Size: 1500, Route: route})
		eng.Run()
	}
}

func TestTracer(t *testing.T) {
	eng, n, st := twoHostNet(topo.Gbps(10))
	var buf strings.Builder
	tr := n.AttachTracer(&buf)
	tr.Filter = func(pkt *Packet) bool { return pkt.Kind == Data }
	route := st.Graph.Paths(st.Hosts[0], st.Hosts[1], 1)[0]
	n.SetHandler(st.Hosts[1], HandlerFunc(func(pkt *Packet) {}))
	n.Send(&Packet{Kind: Data, Size: 1500, Route: route, VMPair: 7})
	n.Send(&Packet{Kind: Ack, Size: 64, Route: route}) // filtered out
	eng.Run()
	if tr.Lines != 1 {
		t.Fatalf("traced %d lines, want 1", tr.Lines)
	}
	out := buf.String()
	if !strings.Contains(out, "vm=7") || !strings.Contains(out, "data") || !strings.Contains(out, "H2") {
		t.Fatalf("trace line = %q", out)
	}
}
