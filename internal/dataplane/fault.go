package dataplane

import (
	"sync/atomic"

	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// Degradation describes a gray link fault: the link stays up (BFD keeps
// passing) but misbehaves. Zero fields leave the corresponding aspect
// untouched, so a Degradation is composable from any subset of symptoms.
type Degradation struct {
	// CapacityScale in (0, 1) scales the effective line rate (e.g. an
	// autoneg downshift or a failing lane); 0 or >= 1 means full rate.
	CapacityScale float64 `json:"capacity_scale,omitempty"`
	// ExtraDelay is added to the link's propagation delay.
	ExtraDelay sim.Duration `json:"extra_delay_ps,omitempty"`
	// LossProb drops any packet entering the link with this probability.
	LossProb float64 `json:"loss_prob,omitempty"`
	// ProbeDropProb additionally drops probe/response packets — the
	// "control plane starves while data flows" failure mode.
	ProbeDropProb float64 `json:"probe_drop_prob,omitempty"`
	// ProbeCorruptProb flips a random payload byte of probe/response
	// packets instead of dropping them; agents must survive the garbage.
	ProbeCorruptProb float64 `json:"probe_corrupt_prob,omitempty"`
}

// active reports whether any symptom is configured.
func (d *Degradation) active() bool {
	return d.CapacityScale > 0 || d.ExtraDelay > 0 || d.LossProb > 0 ||
		d.ProbeDropProb > 0 || d.ProbeCorruptProb > 0
}

// linkFault is the per-link fault state, distinct from node failure: the
// endpoints stay alive while the link itself is down or degraded.
type linkFault struct {
	down bool
	deg  Degradation
}

func (f *linkFault) clear() bool { return !f.down && !f.deg.active() }

// validLink reports whether l indexes a real link.
func (n *Network) validLink(l topo.LinkID) bool {
	return int(l) >= 0 && int(l) < len(n.faults)
}

// FailLink takes a directional link down: packets entering it are
// dropped (and reported through OnFailDrop) while both endpoints stay
// alive, and ECMP stops choosing it. Returns false for an out-of-range
// id.
func (n *Network) FailLink(l topo.LinkID) bool {
	if !n.validLink(l) {
		return false
	}
	n.faults[l].down = true
	return true
}

// RecoverLink brings a downed link back; any degradation persists.
func (n *Network) RecoverLink(l topo.LinkID) bool {
	if !n.validLink(l) {
		return false
	}
	n.faults[l].down = false
	return true
}

// LinkFailed reports whether a link is down (false for bad ids).
func (n *Network) LinkFailed(l topo.LinkID) bool {
	return n.validLink(l) && n.faults[l].down
}

// DegradeLink applies a gray fault to a link, replacing any previous
// degradation. Returns false for an out-of-range id.
func (n *Network) DegradeLink(l topo.LinkID, d Degradation) bool {
	if !n.validLink(l) {
		return false
	}
	n.faults[l].deg = d
	return true
}

// RestoreLink clears a link's degradation (but not its down state).
func (n *Network) RestoreLink(l topo.LinkID) bool {
	if !n.validLink(l) {
		return false
	}
	n.faults[l].deg = Degradation{}
	return true
}

// LinkDegraded reports whether a link carries a gray fault.
func (n *Network) LinkDegraded(l topo.LinkID) bool {
	return n.validLink(l) && n.faults[l].deg.active()
}

// EffectiveCapacity returns a link's line rate after any gray-fault
// capacity scaling (0 for out-of-range ids) — what the link can actually
// carry right now, as opposed to Port.Capacity's configured line rate.
func (n *Network) EffectiveCapacity(l topo.LinkID) float64 {
	if !n.validLink(l) {
		return 0
	}
	return n.effectiveCapacity(&n.Ports[l])
}

// effectiveCapacity is the link line rate after any degradation.
func (n *Network) effectiveCapacity(port *Port) float64 {
	c := port.Link.Capacity
	if s := n.faults[port.Link.ID].deg.CapacityScale; s > 0 && s < 1 {
		c *= s
	}
	return c
}

// faultFilter applies the link's fault state to a packet about to enter
// it. It returns false when the packet is dropped. Corruption mutates a
// copy of the payload so shared probe buffers are never aliased. It runs in
// the link-source shard's context: probabilistic draws consume that shard's
// RNG stream, so fault outcomes are a pure function of (topology, seed) no
// matter how many workers execute the shards.
func (n *Network) faultFilter(pkt *Packet, port *Port) bool {
	f := &n.faults[port.Link.ID]
	if f.clear() {
		return true
	}
	if f.down {
		port.FaultDrops++
		atomic.AddUint64(&n.FaultDrops, 1)
		atomic.AddUint64(&n.TotalDrops, 1)
		n.recordFaultDrop(pkt, port)
		if n.OnFailDrop != nil {
			// The near end detects the dark link; from its viewpoint the
			// far end is unreachable.
			n.OnFailDrop(pkt, port.Link.Src, port.Link.Dst)
		}
		return false
	}
	d := &f.deg
	rng := n.rngAt(port.Link.Src)
	if d.LossProb > 0 && rng.Float64() < d.LossProb {
		port.FaultDrops++
		atomic.AddUint64(&n.FaultDrops, 1)
		atomic.AddUint64(&n.TotalDrops, 1)
		n.recordFaultDrop(pkt, port)
		return false
	}
	if pkt.Kind == Probe || pkt.Kind == Response {
		if d.ProbeDropProb > 0 && rng.Float64() < d.ProbeDropProb {
			port.FaultDrops++
			atomic.AddUint64(&n.FaultDrops, 1)
			atomic.AddUint64(&n.TotalDrops, 1)
			n.recordFaultDrop(pkt, port)
			return false
		}
		if d.ProbeCorruptProb > 0 && len(pkt.Payload) > 0 && rng.Float64() < d.ProbeCorruptProb {
			b := make([]byte, len(pkt.Payload))
			copy(b, pkt.Payload)
			i := rng.Intn(len(b))
			b[i] ^= 1 << uint(rng.Intn(8))
			pkt.Payload = b
			atomic.AddUint64(&n.CorruptedProbes, 1)
			if rec := n.recAt(port.Link.Src); rec != nil {
				rec.Record(telemetry.Event{T: int64(n.schedAt(port.Link.Src).Now()), Kind: telemetry.EvFault,
					Entity: n.linkEnt(port.Link.ID), A: int64(pkt.Kind), Note: "probe_corrupt"})
			}
		}
	}
	return true
}

// recordFaultDrop traces a fault-induced packet loss (no-op without a
// recorder), into the link-source shard's recorder.
func (n *Network) recordFaultDrop(pkt *Packet, port *Port) {
	rec := n.recAt(port.Link.Src)
	if rec == nil {
		return
	}
	rec.Record(telemetry.Event{T: int64(n.schedAt(port.Link.Src).Now()), Kind: telemetry.EvDrop,
		Entity: n.linkEnt(port.Link.ID), A: int64(pkt.Kind), Note: "fault"})
}
