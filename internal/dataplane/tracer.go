package dataplane

import (
	"fmt"
	"io"

	"ufab/internal/topo"
)

// Tracer writes one line per delivered packet — a text "packet capture"
// for debugging simulations. Install it with Network.AttachTracer; the
// columns are delivery time, destination node, kind, VM-pair, size, and
// source-to-delivery latency.
type Tracer struct {
	w   io.Writer
	net *Network
	// Filter, if non-nil, limits tracing to packets it returns true for.
	Filter func(pkt *Packet) bool
	// Lines counts emitted records.
	Lines uint64
}

// AttachTracer installs a tracer as the network's Trace hook (replacing
// any previous hook) and returns it.
func (n *Network) AttachTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, net: n}
	n.Trace = t.record
	return t
}

func (t *Tracer) record(at topo.NodeID, pkt *Packet) {
	if t.Filter != nil && !t.Filter(pkt) {
		return
	}
	t.Lines++
	now := t.net.Eng.Now()
	fmt.Fprintf(t.w, "t=%-14v %-12s %-8s vm=%-6d size=%-5d lat=%v\n",
		now, t.net.G.Node(at).Name, pkt.Kind, pkt.VMPair, pkt.Size, now-pkt.SentAt)
}
