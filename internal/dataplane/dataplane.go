// Package dataplane is the packet-level network substrate every experiment
// runs on: links with serialization and propagation delay, a single FIFO
// egress queue per switch port (μFAB needs no priority queues, §3.1),
// source-routed and ECMP forwarding, per-port telemetry (queue size and a
// windowed TX-rate estimator), ECN marking for the baselines, tail drops,
// and node failure injection.
//
// It stands in for the paper's hardware testbed and NS3: the evaluation's
// quantities (rates, RTTs, queue occupancy, FCT) are all network-level
// metrics that a discrete-event packet simulation reproduces.
package dataplane

import (
	"fmt"
	mrand "math/rand"

	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// VMPair identifies a VM-to-VM traffic aggregate, the unit μFAB allocates
// bandwidth to.
type VMPair uint32

// Kind classifies packets for handlers and tracing.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
	Probe
	Response
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Probe:
		return "probe"
	case Response:
		return "response"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet is the unit of transmission. Packets are created by edge agents
// and mutated in place as they traverse the network (hop index, ECN mark,
// probe payload).
type Packet struct {
	Kind   Kind
	VMPair VMPair
	Tenant int32
	// Size is the on-wire size in bytes.
	Size int
	// Seq is a scheme-defined sequence number (bytes or packets).
	Seq uint64
	// Route is the source route as a sequence of link IDs; Hop indexes
	// the next link to take. Empty Route means ECMP forwarding to Dst.
	Route topo.Path
	Hop   int
	// Dst is the destination host (required for ECMP, informative
	// otherwise).
	Dst topo.NodeID
	// SentAt is when the source emitted the packet (for RTT/latency).
	SentAt sim.Time
	// ECN is set by switches when the egress queue exceeds the marking
	// threshold; baselines use it as their congestion signal.
	ECN bool
	// Payload carries an encoded probe (for Probe/Response packets).
	Payload []byte
	// Meta carries scheme-specific data (e.g. ack bookkeeping) that a
	// real implementation would encode in headers.
	Meta any
}

// Handler receives packets delivered to a host.
type Handler interface {
	HandlePacket(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// HandlePacket calls f.
func (f HandlerFunc) HandlePacket(pkt *Packet) { f(pkt) }

// SwitchAgent is the per-switch processing hook (μFAB-C). OnForward runs
// when a packet is about to be enqueued on egress port out at a switch.
type SwitchAgent interface {
	OnForward(pkt *Packet, out *Port, now sim.Time)
}

// Config parameterizes a Network.
type Config struct {
	// QueueCapBytes is the per-port egress buffer; beyond it packets
	// tail-drop. 0 means a deep default (10 MB).
	QueueCapBytes int
	// ECNThresholdBytes marks packets ECN when the egress queue exceeds
	// it. 0 disables marking.
	ECNThresholdBytes int
	// RateWindow is the TX-rate estimator window (default 16 μs).
	RateWindow sim.Duration
	// ECMP selects the hash used by hash-based forwarding.
	ECMP ECMPMode
	// HashSeed perturbs the ECMP hash.
	HashSeed uint64
	// FaultSeed seeds the RNG behind probabilistic link faults (random
	// loss, probe drop/corruption). Runs are deterministic per seed; the
	// RNG is only consulted while a probabilistic degradation is active,
	// so fault-free runs are bit-identical to pre-fault builds.
	FaultSeed int64
	// Telemetry, if non-nil, receives per-link instruments (published by
	// FlushTelemetry) and drop events into its flight recorder. Enable
	// the recorder on the registry before calling New. Nil keeps every
	// hot-path instrument on the zero-cost nil fast path.
	Telemetry *telemetry.Registry
}

// ECMPMode selects how switches hash flows onto equal-cost next hops.
type ECMPMode uint8

// ECMP modes. Polarized applies the identical hash function at every tier
// (no per-switch entropy), reproducing the hash-polarization pathology of
// Fig 3; Independent mixes the switch ID into the hash.
const (
	Independent ECMPMode = iota
	Polarized
)

// Port is the egress side of a link: a FIFO queue plus telemetry.
type Port struct {
	Link *topo.Link
	// queue holds packets waiting behind the one being serialized.
	queue      []*Packet
	queueBytes int
	busy       bool
	// Telemetry.
	rate     rateEstimator
	capBytes int
	ecnBytes int
	// Drops counts tail-dropped packets.
	Drops uint64
	// FaultDrops counts packets lost to link faults (down or lossy).
	FaultDrops uint64
	// TxPackets and TxBytes count completed transmissions.
	TxPackets, TxBytes uint64
	// MaxQueueBytes tracks the high-water mark for queue CDFs.
	MaxQueueBytes int
}

// QueueBytes returns the bytes currently waiting in the egress queue
// (excluding the packet on the wire).
func (p *Port) QueueBytes() int { return p.queueBytes }

// Capacity returns the link line rate in bits/s.
func (p *Port) Capacity() float64 { return p.Link.Capacity }

// TxRate returns the estimated output rate in bits/s over the most recent
// estimator window, clamped to the line rate (the estimator's live-window
// blend can momentarily overshoot; a port cannot).
func (p *Port) TxRate(now sim.Time) float64 {
	r := p.rate.Rate(now)
	if r > p.Link.Capacity {
		return p.Link.Capacity
	}
	return r
}

// rateEstimator measures bytes sent in rotating windows; the reported rate
// is from the last completed window, blended with the live one, which is
// what a switch data plane computes with paired byte/time registers.
type rateEstimator struct {
	window     sim.Duration
	winStart   sim.Time
	winBytes   int64
	prevRate   float64 // bits/s of last completed window
	havePrev   bool
	totalBytes int64
}

func (r *rateEstimator) add(now sim.Time, bytes int) {
	r.roll(now)
	r.winBytes += int64(bytes)
	r.totalBytes += int64(bytes)
}

func (r *rateEstimator) roll(now sim.Time) {
	for now-r.winStart >= r.window {
		elapsed := r.window
		r.prevRate = float64(r.winBytes*8) / elapsed.Seconds()
		r.havePrev = true
		r.winBytes = 0
		r.winStart += r.window
		if now-r.winStart >= 16*r.window {
			// Long idle gap: jump instead of looping.
			r.prevRate = 0
			r.winStart = now - (now-r.winStart)%r.window
		}
	}
}

// Rate returns the estimate in bits/s.
func (r *rateEstimator) Rate(now sim.Time) float64 {
	r.roll(now)
	if !r.havePrev {
		if now == r.winStart {
			return 0
		}
		return float64(r.winBytes*8) / (now - r.winStart).Seconds()
	}
	// Blend the completed window with the live partial window for
	// responsiveness at sub-window timescales.
	frac := float64(now-r.winStart) / float64(r.window)
	if frac <= 0 {
		return r.prevRate
	}
	live := float64(r.winBytes*8) / (now - r.winStart).Seconds()
	return r.prevRate*(1-frac) + live*frac
}

// Network simulates packet forwarding over a topology graph.
type Network struct {
	Eng *sim.Engine
	G   *topo.Graph
	Cfg Config

	Ports []Port // indexed by LinkID

	handlers []Handler     // indexed by NodeID (hosts)
	agents   []SwitchAgent // indexed by NodeID (switches)
	failed   []bool        // indexed by NodeID
	faults   []linkFault   // indexed by LinkID
	faultRng *mrand.Rand   // drives probabilistic link faults

	// dist[h] is the hop distance from every node to host h, for ECMP;
	// computed lazily per destination.
	dist map[topo.NodeID][]int32

	// rec is the flight recorder (nil when telemetry is off — recording
	// into a nil recorder is a free no-op). linkEntity[l] is the
	// precomputed dotted instance name of link l ("link.core1-agg2"), so
	// drop-path recording never allocates.
	rec        *telemetry.Recorder
	linkEntity []string

	// TotalDrops counts packets dropped anywhere (queue overflow, failed
	// node, or link fault).
	TotalDrops uint64
	// FaultDrops counts the subset of TotalDrops caused by link faults.
	FaultDrops uint64
	// CorruptedProbes counts probe payloads mangled by a gray link.
	CorruptedProbes uint64
	// Trace, if non-nil, observes every host delivery (testing hook).
	Trace func(at topo.NodeID, pkt *Packet)
	// OnFailDrop, if non-nil, runs when a packet is dropped because its
	// next hop (or the local node, or the link between them) has failed.
	// `at` is the node that detects the drop (the switch whose BFD sees
	// the failure and can bounce a type-4 failure notification back to
	// the source); `failed` is the node that actually failed or became
	// unreachable.
	OnFailDrop func(pkt *Packet, at, failed topo.NodeID)
}

// New builds a Network over g driven by eng.
func New(eng *sim.Engine, g *topo.Graph, cfg Config) *Network {
	if cfg.QueueCapBytes == 0 {
		cfg.QueueCapBytes = 10 << 20
	}
	if cfg.RateWindow == 0 {
		cfg.RateWindow = 16 * sim.Microsecond
	}
	n := &Network{
		Eng:      eng,
		G:        g,
		Cfg:      cfg,
		Ports:    make([]Port, len(g.Links)),
		handlers: make([]Handler, len(g.Nodes)),
		agents:   make([]SwitchAgent, len(g.Nodes)),
		failed:   make([]bool, len(g.Nodes)),
		faults:   make([]linkFault, len(g.Links)),
		faultRng: mrand.New(mrand.NewSource(cfg.FaultSeed ^ 0x5fa017b8c2d94e63)),
		dist:     make(map[topo.NodeID][]int32),
	}
	for i := range n.Ports {
		p := &n.Ports[i]
		p.Link = g.Link(topo.LinkID(i))
		p.capBytes = cfg.QueueCapBytes
		p.ecnBytes = cfg.ECNThresholdBytes
		p.rate.window = cfg.RateWindow
	}
	if cfg.Telemetry != nil {
		n.rec = cfg.Telemetry.Recorder()
		n.linkEntity = make([]string, len(g.Links))
		for i := range n.linkEntity {
			l := g.Link(topo.LinkID(i))
			n.linkEntity[i] = "link." + telemetry.Token(g.Node(l.Src).Name) +
				"-" + telemetry.Token(g.Node(l.Dst).Name)
		}
	}
	return n
}

// FlightRecorder returns the run-trace recorder drop events go to (nil
// when telemetry is off); chaos injection records its faults there too.
func (n *Network) FlightRecorder() *telemetry.Recorder { return n.rec }

// linkEnt returns link l's dotted instance name, or "" without telemetry.
func (n *Network) linkEnt(l topo.LinkID) string {
	if n.linkEntity == nil {
		return ""
	}
	return n.linkEntity[l]
}

// LinkEntity returns link l's dotted instance name ("link.core1-agg2"),
// or "" when telemetry is disabled.
func (n *Network) LinkEntity(l topo.LinkID) string { return n.linkEnt(l) }

// FlushTelemetry publishes per-link instruments — cumulative TX bytes,
// windowed TX rate, queue high-water, drop counts, and a queue-depth time
// series point — to the attached registry. It runs at sampling time (the
// vfabric meter interval), never on the per-packet path; a no-op when
// telemetry is disabled.
func (n *Network) FlushTelemetry(now sim.Time) {
	reg := n.Cfg.Telemetry
	if reg == nil {
		return
	}
	for i := range n.Ports {
		p := &n.Ports[i]
		ent := n.linkEntity[i]
		reg.Gauge(ent + ".tx_bytes").Set(float64(p.TxBytes))
		reg.Gauge(ent + ".tx_gbps").Set(p.TxRate(now) / 1e9)
		reg.Gauge(ent + ".qlen_hiwater_bytes").SetMax(float64(p.MaxQueueBytes))
		reg.Gauge(ent + ".drops").Set(float64(p.Drops))
		reg.Gauge(ent + ".fault_drops").Set(float64(p.FaultDrops))
		reg.Series(ent+".qlen_bytes", 0).Add(int64(now), float64(p.queueBytes))
	}
}

// Port returns the egress port of link l.
func (n *Network) Port(l topo.LinkID) *Port { return &n.Ports[l] }

// SetHandler installs the packet handler for a host node.
func (n *Network) SetHandler(host topo.NodeID, h Handler) {
	if n.G.Node(host).Kind != topo.Host {
		panic(fmt.Sprintf("dataplane: SetHandler on non-host %d", host))
	}
	n.handlers[host] = h
}

// SetSwitchAgent installs the per-node forwarding agent (μFAB-C). It may
// also be attached to a host node, in which case it observes the host's
// uplink egress — the "μFAB-C in the hypervisor" deployment of §6.
func (n *Network) SetSwitchAgent(sw topo.NodeID, a SwitchAgent) {
	n.agents[sw] = a
}

// validNode reports whether id indexes a real node.
func (n *Network) validNode(id topo.NodeID) bool {
	return int(id) >= 0 && int(id) < len(n.failed)
}

// FailNode marks a node as failed: packets arriving at it or queued to
// leave it are dropped. Fig 15 fails Core1 at t = 90 ms. An out-of-range
// id is a no-op returning false rather than a panic mid-simulation.
func (n *Network) FailNode(id topo.NodeID) bool {
	if !n.validNode(id) {
		return false
	}
	n.failed[id] = true
	return true
}

// RecoverNode clears a failure (false for out-of-range ids).
func (n *Network) RecoverNode(id topo.NodeID) bool {
	if !n.validNode(id) {
		return false
	}
	n.failed[id] = false
	return true
}

// Failed reports whether a node is failed (false for out-of-range ids).
func (n *Network) Failed(id topo.NodeID) bool {
	return n.validNode(id) && n.failed[id]
}

// Send injects a source-routed packet at the source of its route's first
// link. The caller must have set Route; Hop must be 0.
func (n *Network) Send(pkt *Packet) {
	if len(pkt.Route) == 0 {
		panic("dataplane: Send without route (use SendECMP)")
	}
	pkt.Hop = 0
	pkt.Dst = n.G.PathDst(pkt.Route)
	n.enqueue(pkt, pkt.Route[0])
}

// SendECMP injects a packet at src to be hash-forwarded to pkt.Dst.
func (n *Network) SendECMP(pkt *Packet, src topo.NodeID) {
	pkt.Route = nil
	next := n.ecmpNext(src, pkt)
	if next == topo.NoLink {
		n.TotalDrops++
		return
	}
	n.enqueue(pkt, next)
}

func (n *Network) enqueue(pkt *Packet, lid topo.LinkID) {
	port := &n.Ports[lid]
	if n.failed[port.Link.Src] || n.failed[port.Link.Dst] {
		n.TotalDrops++
		if n.rec != nil {
			n.rec.Record(telemetry.Event{T: int64(n.Eng.Now()), Kind: telemetry.EvDrop,
				Entity: n.linkEntity[lid], A: int64(pkt.Kind), Note: "failed"})
		}
		if n.OnFailDrop != nil {
			// Report the node that actually failed; when the local node
			// itself is dead that is Src, otherwise the far end.
			failed := port.Link.Dst
			if n.failed[port.Link.Src] {
				failed = port.Link.Src
			}
			n.OnFailDrop(pkt, port.Link.Src, failed)
		}
		return
	}
	if !n.faultFilter(pkt, port) {
		return
	}
	// Switch agent hook (INT read/write) fires at enqueue time on
	// switch egress.
	if ag := n.agents[port.Link.Src]; ag != nil {
		ag.OnForward(pkt, port, n.Eng.Now())
	}
	// ECN marking on queue buildup.
	if port.ecnBytes > 0 && port.queueBytes >= port.ecnBytes {
		pkt.ECN = true
	}
	if port.queueBytes+pkt.Size > port.capBytes {
		port.Drops++
		n.TotalDrops++
		if n.rec != nil {
			n.rec.Record(telemetry.Event{T: int64(n.Eng.Now()), Kind: telemetry.EvDrop,
				Entity: n.linkEntity[lid], A: int64(pkt.Kind),
				B: int64(port.queueBytes), Note: "overflow"})
		}
		return
	}
	port.queue = append(port.queue, pkt)
	port.queueBytes += pkt.Size
	if port.queueBytes > port.MaxQueueBytes {
		port.MaxQueueBytes = port.queueBytes
	}
	if !port.busy {
		n.startTx(port)
	}
}

func (n *Network) startTx(port *Port) {
	pkt := port.queue[0]
	port.queue = port.queue[1:]
	port.queueBytes -= pkt.Size
	port.busy = true
	ser := topo.SerializationDelay(pkt.Size, n.effectiveCapacity(port))
	n.Eng.After(ser, func() {
		port.busy = false
		port.TxPackets++
		port.TxBytes += uint64(pkt.Size)
		port.rate.add(n.Eng.Now(), pkt.Size)
		// Propagate to the far end (a gray fault may add latency).
		dst := port.Link.Dst
		prop := port.Link.PropDelay + n.faults[port.Link.ID].deg.ExtraDelay
		n.Eng.After(prop, func() { n.arrive(pkt, dst) })
		if len(port.queue) > 0 {
			n.startTx(port)
		}
	})
}

func (n *Network) arrive(pkt *Packet, at topo.NodeID) {
	if n.failed[at] {
		n.TotalDrops++
		return
	}
	node := n.G.Node(at)
	if node.Kind == topo.Host {
		if n.Trace != nil {
			n.Trace(at, pkt)
		}
		if h := n.handlers[at]; h != nil {
			h.HandlePacket(pkt)
		}
		return
	}
	// Switch: forward.
	var next topo.LinkID
	if len(pkt.Route) > 0 {
		pkt.Hop++
		if pkt.Hop >= len(pkt.Route) {
			n.TotalDrops++ // route exhausted before reaching a host
			return
		}
		next = pkt.Route[pkt.Hop]
		if n.G.Link(next).Src != at {
			panic(fmt.Sprintf("dataplane: route hop %d link %d does not start at node %d", pkt.Hop, next, at))
		}
	} else {
		next = n.ecmpNext(at, pkt)
		if next == topo.NoLink {
			n.TotalDrops++
			return
		}
	}
	n.enqueue(pkt, next)
}

// distTo returns (computing if needed) hop distances from all nodes to dst.
func (n *Network) distTo(dst topo.NodeID) []int32 {
	if d, ok := n.dist[dst]; ok {
		return d
	}
	const inf = int32(1) << 30
	d := make([]int32, len(n.G.Nodes))
	for i := range d {
		d[i] = inf
	}
	d[dst] = 0
	queue := []topo.NodeID{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Incoming links of v are reverses of v's out links (duplex).
		for _, lid := range n.G.Node(v).Out {
			rev := n.G.Link(lid).Reverse
			if rev == topo.NoLink {
				continue
			}
			u := n.G.Link(rev).Src
			if d[u] > d[v]+1 {
				d[u] = d[v] + 1
				queue = append(queue, u)
			}
		}
	}
	n.dist[dst] = d
	return d
}

func (n *Network) ecmpNext(at topo.NodeID, pkt *Packet) topo.LinkID {
	d := n.distTo(pkt.Dst)
	var candidates []topo.LinkID
	for _, lid := range n.G.Node(at).Out {
		to := n.G.Link(lid).Dst
		if d[to] == d[at]-1 && !n.failed[to] && !n.faults[lid].down {
			candidates = append(candidates, lid)
		}
	}
	if len(candidates) == 0 {
		return topo.NoLink
	}
	h := ecmpHash(uint64(pkt.VMPair), n.Cfg.HashSeed)
	if n.Cfg.ECMP == Independent {
		// Mix per-switch entropy in, as independent hash functions do.
		h = ecmpHash(h^uint64(at)*0x9e3779b97f4a7c15, n.Cfg.HashSeed)
	}
	return candidates[h%uint64(len(candidates))]
}

func ecmpHash(x, seed uint64) uint64 {
	x ^= seed
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// LinkUtilization returns TX bytes on link l as a fraction of what the link
// could have carried in [0, now].
func (n *Network) LinkUtilization(l topo.LinkID, now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	p := &n.Ports[l]
	return float64(p.TxBytes*8) / (p.Link.Capacity * now.Seconds())
}
