// Package dataplane is the packet-level network substrate every experiment
// runs on: links with serialization and propagation delay, a single FIFO
// egress queue per switch port (μFAB needs no priority queues, §3.1),
// source-routed and ECMP forwarding, per-port telemetry (queue size and a
// windowed TX-rate estimator), ECN marking for the baselines, tail drops,
// and node failure injection.
//
// It stands in for the paper's hardware testbed and NS3: the evaluation's
// quantities (rates, RTTs, queue occupancy, FCT) are all network-level
// metrics that a discrete-event packet simulation reproduces.
package dataplane

import (
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"

	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// VMPair identifies a VM-to-VM traffic aggregate, the unit μFAB allocates
// bandwidth to.
type VMPair uint32

// Kind classifies packets for handlers and tracing.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
	Probe
	Response
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Probe:
		return "probe"
	case Response:
		return "response"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet is the unit of transmission. Packets are created by edge agents
// and mutated in place as they traverse the network (hop index, ECN mark,
// probe payload).
type Packet struct {
	Kind   Kind
	VMPair VMPair
	Tenant int32
	// Size is the on-wire size in bytes.
	Size int
	// Seq is a scheme-defined sequence number (bytes or packets).
	Seq uint64
	// Route is the source route as a sequence of link IDs; Hop indexes
	// the next link to take. Empty Route means ECMP forwarding to Dst.
	Route topo.Path
	Hop   int
	// Dst is the destination host (required for ECMP, informative
	// otherwise).
	Dst topo.NodeID
	// SentAt is when the source emitted the packet (for RTT/latency).
	SentAt sim.Time
	// ECN is set by switches when the egress queue exceeds the marking
	// threshold; baselines use it as their congestion signal.
	ECN bool
	// Payload carries an encoded probe (for Probe/Response packets).
	Payload []byte
	// Meta carries scheme-specific data (e.g. ack bookkeeping) that a
	// real implementation would encode in headers.
	Meta any
}

// Handler receives packets delivered to a host.
type Handler interface {
	HandlePacket(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// HandlePacket calls f.
func (f HandlerFunc) HandlePacket(pkt *Packet) { f(pkt) }

// SwitchAgent is the per-switch processing hook (μFAB-C). OnForward runs
// when a packet is about to be enqueued on egress port out at a switch.
type SwitchAgent interface {
	OnForward(pkt *Packet, out *Port, now sim.Time)
}

// Config parameterizes a Network.
type Config struct {
	// QueueCapBytes is the per-port egress buffer; beyond it packets
	// tail-drop. 0 means a deep default (10 MB).
	QueueCapBytes int
	// ECNThresholdBytes marks packets ECN when the egress queue exceeds
	// it. 0 disables marking.
	ECNThresholdBytes int
	// RateWindow is the TX-rate estimator window (default 16 μs).
	RateWindow sim.Duration
	// ECMP selects the hash used by hash-based forwarding.
	ECMP ECMPMode
	// HashSeed perturbs the ECMP hash.
	HashSeed uint64
	// FaultSeed seeds the RNG behind probabilistic link faults (random
	// loss, probe drop/corruption). Runs are deterministic per seed; the
	// RNG is only consulted while a probabilistic degradation is active,
	// so fault-free runs are bit-identical to pre-fault builds.
	FaultSeed int64
	// Telemetry, if non-nil, receives per-link instruments (published by
	// FlushTelemetry) and drop events into its flight recorder. Enable
	// the recorder on the registry before calling New. Nil keeps every
	// hot-path instrument on the zero-cost nil fast path.
	Telemetry *telemetry.Registry
}

// ECMPMode selects how switches hash flows onto equal-cost next hops.
type ECMPMode uint8

// ECMP modes. Polarized applies the identical hash function at every tier
// (no per-switch entropy), reproducing the hash-polarization pathology of
// Fig 3; Independent mixes the switch ID into the hash.
const (
	Independent ECMPMode = iota
	Polarized
)

// Port is the egress side of a link: a FIFO queue plus telemetry.
type Port struct {
	Link *topo.Link
	// queue holds packets waiting behind the one being serialized.
	queue      []*Packet
	queueBytes int
	busy       bool
	// Telemetry.
	rate     rateEstimator
	capBytes int
	ecnBytes int
	// Drops counts tail-dropped packets.
	Drops uint64
	// FaultDrops counts packets lost to link faults (down or lossy).
	FaultDrops uint64
	// TxPackets and TxBytes count completed transmissions.
	TxPackets, TxBytes uint64
	// MaxQueueBytes tracks the high-water mark for queue CDFs.
	MaxQueueBytes int
}

// QueueBytes returns the bytes currently waiting in the egress queue
// (excluding the packet on the wire).
func (p *Port) QueueBytes() int { return p.queueBytes }

// Capacity returns the link line rate in bits/s.
func (p *Port) Capacity() float64 { return p.Link.Capacity }

// TxRate returns the estimated output rate in bits/s over the most recent
// estimator window, clamped to the line rate (the estimator's live-window
// blend can momentarily overshoot; a port cannot).
func (p *Port) TxRate(now sim.Time) float64 {
	r := p.rate.Rate(now)
	if r > p.Link.Capacity {
		return p.Link.Capacity
	}
	return r
}

// rateEstimator measures bytes sent in rotating windows; the reported rate
// is from the last completed window, blended with the live one, which is
// what a switch data plane computes with paired byte/time registers.
type rateEstimator struct {
	window     sim.Duration
	winStart   sim.Time
	winBytes   int64
	prevRate   float64 // bits/s of last completed window
	havePrev   bool
	totalBytes int64
}

func (r *rateEstimator) add(now sim.Time, bytes int) {
	r.roll(now)
	r.winBytes += int64(bytes)
	r.totalBytes += int64(bytes)
}

func (r *rateEstimator) roll(now sim.Time) {
	for now-r.winStart >= r.window {
		elapsed := r.window
		r.prevRate = float64(r.winBytes*8) / elapsed.Seconds()
		r.havePrev = true
		r.winBytes = 0
		r.winStart += r.window
		if now-r.winStart >= 16*r.window {
			// Long idle gap: jump instead of looping.
			r.prevRate = 0
			r.winStart = now - (now-r.winStart)%r.window
		}
	}
}

// Rate returns the estimate in bits/s.
func (r *rateEstimator) Rate(now sim.Time) float64 {
	r.roll(now)
	if !r.havePrev {
		if now == r.winStart {
			return 0
		}
		return float64(r.winBytes*8) / (now - r.winStart).Seconds()
	}
	// Blend the completed window with the live partial window for
	// responsiveness at sub-window timescales.
	frac := float64(now-r.winStart) / float64(r.window)
	if frac <= 0 {
		return r.prevRate
	}
	live := float64(r.winBytes*8) / (now - r.winStart).Seconds()
	return r.prevRate*(1-frac) + live*frac
}

// Network simulates packet forwarding over a topology graph.
//
// Sharding: every node belongs to a logical shard (shardOf), and all state
// keyed by a node — its egress ports, queues, handlers, agents, per-shard RNG
// and recorder — is only ever touched from that shard's scheduling context.
// Under the plain constructor there is a single shard and a single context;
// under NewPartitioned the contexts are either views of one sequential engine
// or the shard engines of the parallel core, with cross-shard packet
// propagation handed off through sim.Sharded.Send.
type Network struct {
	// Eng is the coordinator-context scheduler: use it for setup and for
	// globally scoped work (sampling, chaos). Per-node work must schedule on
	// NodeScheduler.
	Eng sim.Scheduler
	G   *topo.Graph
	Cfg Config

	Ports []Port // indexed by LinkID

	handlers []Handler     // indexed by NodeID (hosts)
	agents   []SwitchAgent // indexed by NodeID (switches)
	failed   []bool        // indexed by NodeID
	faults   []linkFault   // indexed by LinkID

	// shardOf maps every node to its logical shard; scheds, faultRngs and
	// recs are indexed by shard. shard is the parallel driver when running
	// on the sharded core, nil otherwise.
	shardOf   []int32
	scheds    []sim.Scheduler
	faultRngs []*mrand.Rand
	shard     *sim.Sharded

	// dist[h] is the hop distance from every node to host h, for ECMP;
	// computed lazily per destination. distMu serializes the lazy fill,
	// which shards may race on.
	distMu sync.RWMutex
	dist   map[topo.NodeID][]int32

	// rec is the coordinator-context flight recorder (nil when telemetry is
	// off — recording into a nil recorder is a free no-op); recs[s] is the
	// recorder drop/fault events from shard s's links go to (all equal to
	// rec in a single-shard Network). linkEntity[l] is the precomputed
	// dotted instance name of link l ("link.core1-agg2"), so drop-path
	// recording never allocates.
	rec        *telemetry.Recorder
	recs       []*telemetry.Recorder
	linkEntity []string

	// TotalDrops counts packets dropped anywhere (queue overflow, failed
	// node, or link fault). Updated atomically: drops happen in shard
	// context, and the global counters are the only dataplane state shared
	// across shards.
	TotalDrops uint64
	// FaultDrops counts the subset of TotalDrops caused by link faults.
	FaultDrops uint64
	// CorruptedProbes counts probe payloads mangled by a gray link.
	CorruptedProbes uint64
	// Trace, if non-nil, observes every host delivery (testing hook).
	Trace func(at topo.NodeID, pkt *Packet)
	// OnFailDrop, if non-nil, runs when a packet is dropped because its
	// next hop (or the local node, or the link between them) has failed.
	// `at` is the node that detects the drop (the switch whose BFD sees
	// the failure and can bounce a type-4 failure notification back to
	// the source); `failed` is the node that actually failed or became
	// unreachable. It runs in the detecting node's shard context.
	OnFailDrop func(pkt *Packet, at, failed topo.NodeID)
}

// faultSeedMix whitens the user-facing fault seed; shard 0 keeps the exact
// historical sequential stream so single-shard topologies reproduce old runs.
const faultSeedMix = 0x5fa017b8c2d94e63

// faultSeed derives shard s's fault-RNG seed from the configured seed — a
// pure function of (seed, shardID), never of worker count, so fault draws are
// identical across `-shards 0 … N`.
func faultSeed(seed int64, s int) int64 {
	x := uint64(seed) ^ faultSeedMix
	if s == 0 {
		return int64(x)
	}
	x += uint64(s) * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return int64(x ^ (x >> 33))
}

func newNetwork(g *topo.Graph, cfg Config) *Network {
	if cfg.QueueCapBytes == 0 {
		cfg.QueueCapBytes = 10 << 20
	}
	if cfg.RateWindow == 0 {
		cfg.RateWindow = 16 * sim.Microsecond
	}
	n := &Network{
		G:        g,
		Cfg:      cfg,
		Ports:    make([]Port, len(g.Links)),
		handlers: make([]Handler, len(g.Nodes)),
		agents:   make([]SwitchAgent, len(g.Nodes)),
		failed:   make([]bool, len(g.Nodes)),
		faults:   make([]linkFault, len(g.Links)),
		dist:     make(map[topo.NodeID][]int32),
	}
	for i := range n.Ports {
		p := &n.Ports[i]
		p.Link = g.Link(topo.LinkID(i))
		p.capBytes = cfg.QueueCapBytes
		p.ecnBytes = cfg.ECNThresholdBytes
		p.rate.window = cfg.RateWindow
	}
	if cfg.Telemetry != nil {
		n.linkEntity = make([]string, len(g.Links))
		for i := range n.linkEntity {
			l := g.Link(topo.LinkID(i))
			n.linkEntity[i] = "link." + telemetry.Token(g.Node(l.Src).Name) +
				"-" + telemetry.Token(g.Node(l.Dst).Name)
		}
	}
	return n
}

// New builds a Network over g driven by eng, with all nodes in one logical
// shard — the classic sequential dataplane.
func New(eng sim.Scheduler, g *topo.Graph, cfg Config) *Network {
	n := newNetwork(g, cfg)
	n.Eng = eng
	n.shardOf = make([]int32, len(g.Nodes))
	n.scheds = []sim.Scheduler{eng}
	n.faultRngs = []*mrand.Rand{mrand.New(mrand.NewSource(faultSeed(cfg.FaultSeed, 0)))}
	if cfg.Telemetry != nil {
		n.rec = cfg.Telemetry.Recorder()
	}
	n.recs = []*telemetry.Recorder{n.rec}
	return n
}

// NewPartitioned builds a Network whose scheduling contexts follow a
// topology partition: one scheduler, fault-RNG stream and flight recorder
// per logical shard. The driver picks the execution mode — a *sim.Engine
// runs every shard through views of one sequential heap, a *sim.Sharded runs
// them in parallel with cross-shard propagation over its rings — and both
// modes stamp identical event keys, so their output is bit-identical.
func NewPartitioned(drv sim.Driver, part *topo.Partition, g *topo.Graph, cfg Config) *Network {
	if len(part.Node) != len(g.Nodes) {
		panic(fmt.Sprintf("dataplane: partition covers %d nodes, graph has %d", len(part.Node), len(g.Nodes)))
	}
	n := newNetwork(g, cfg)
	n.Eng = drv
	n.shardOf = part.Node
	n.scheds = make([]sim.Scheduler, part.Shards)
	n.faultRngs = make([]*mrand.Rand, part.Shards)
	for i := range n.faultRngs {
		n.faultRngs[i] = mrand.New(mrand.NewSource(faultSeed(cfg.FaultSeed, i)))
	}
	switch d := drv.(type) {
	case *sim.Sharded:
		if d.Shards() != part.Shards {
			panic(fmt.Sprintf("dataplane: driver has %d shards, partition %d", d.Shards(), part.Shards))
		}
		n.shard = d
		for i := range n.scheds {
			n.scheds[i] = d.Shard(i)
		}
		// Declare the ring pairs cross-shard propagation will use.
		for _, l := range g.Links {
			if a, b := part.Node[l.Src], part.Node[l.Dst]; a != b {
				d.Connect(int(a), int(b))
			}
		}
	case *sim.Engine:
		d.SetSrc(uint32(part.Shards))
		for i := range n.scheds {
			n.scheds[i] = d.ShardView(uint32(i))
		}
	default:
		panic(fmt.Sprintf("dataplane: unsupported driver %T", drv))
	}
	if cfg.Telemetry != nil {
		n.rec = cfg.Telemetry.ShardRecorder(-1)
		n.recs = make([]*telemetry.Recorder, part.Shards)
		for i := range n.recs {
			n.recs[i] = cfg.Telemetry.ShardRecorder(i)
		}
	} else {
		n.recs = make([]*telemetry.Recorder, part.Shards)
	}
	return n
}

// Shards returns the number of logical shards (1 for the plain constructor).
func (n *Network) Shards() int { return len(n.scheds) }

// ShardOf returns the logical shard owning node id.
func (n *Network) ShardOf(id topo.NodeID) int { return int(n.shardOf[id]) }

// NodeScheduler returns the scheduler for node id's shard context — the
// clock all work attached to that node (agents, workloads, host timers) must
// schedule on.
func (n *Network) NodeScheduler(id topo.NodeID) sim.Scheduler {
	return n.scheds[n.shardOf[id]]
}

// schedAt / recAt / rngAt return the scheduling context, flight recorder and
// fault-RNG stream of node id's shard.
func (n *Network) schedAt(id topo.NodeID) sim.Scheduler     { return n.scheds[n.shardOf[id]] }
func (n *Network) recAt(id topo.NodeID) *telemetry.Recorder { return n.recs[n.shardOf[id]] }
func (n *Network) rngAt(id topo.NodeID) *mrand.Rand         { return n.faultRngs[n.shardOf[id]] }

// FlightRecorder returns the run-trace recorder drop events go to (nil
// when telemetry is off); chaos injection records its faults there too.
func (n *Network) FlightRecorder() *telemetry.Recorder { return n.rec }

// linkEnt returns link l's dotted instance name, or "" without telemetry.
func (n *Network) linkEnt(l topo.LinkID) string {
	if n.linkEntity == nil {
		return ""
	}
	return n.linkEntity[l]
}

// LinkEntity returns link l's dotted instance name ("link.core1-agg2"),
// or "" when telemetry is disabled.
func (n *Network) LinkEntity(l topo.LinkID) string { return n.linkEnt(l) }

// FlushTelemetry publishes per-link instruments — cumulative TX bytes,
// windowed TX rate, queue high-water, drop counts, and a queue-depth time
// series point — to the attached registry. It runs at sampling time (the
// vfabric meter interval), never on the per-packet path; a no-op when
// telemetry is disabled.
func (n *Network) FlushTelemetry(now sim.Time) {
	reg := n.Cfg.Telemetry
	if reg == nil {
		return
	}
	for i := range n.Ports {
		p := &n.Ports[i]
		ent := n.linkEntity[i]
		reg.Gauge(ent + ".tx_bytes").Set(float64(p.TxBytes))
		reg.Gauge(ent + ".tx_gbps").Set(p.TxRate(now) / 1e9)
		reg.Gauge(ent + ".qlen_hiwater_bytes").SetMax(float64(p.MaxQueueBytes))
		reg.Gauge(ent + ".drops").Set(float64(p.Drops))
		reg.Gauge(ent + ".fault_drops").Set(float64(p.FaultDrops))
		reg.Series(ent+".qlen_bytes", 0).Add(int64(now), float64(p.queueBytes))
		reg.Histogram(ent + ".qdepth_bytes").Observe(float64(p.queueBytes))
	}
}

// Port returns the egress port of link l.
func (n *Network) Port(l topo.LinkID) *Port { return &n.Ports[l] }

// SetHandler installs the packet handler for a host node.
func (n *Network) SetHandler(host topo.NodeID, h Handler) {
	if n.G.Node(host).Kind != topo.Host {
		panic(fmt.Sprintf("dataplane: SetHandler on non-host %d", host))
	}
	n.handlers[host] = h
}

// SetSwitchAgent installs the per-node forwarding agent (μFAB-C). It may
// also be attached to a host node, in which case it observes the host's
// uplink egress — the "μFAB-C in the hypervisor" deployment of §6.
func (n *Network) SetSwitchAgent(sw topo.NodeID, a SwitchAgent) {
	n.agents[sw] = a
}

// validNode reports whether id indexes a real node.
func (n *Network) validNode(id topo.NodeID) bool {
	return int(id) >= 0 && int(id) < len(n.failed)
}

// FailNode marks a node as failed: packets arriving at it or queued to
// leave it are dropped. Fig 15 fails Core1 at t = 90 ms. An out-of-range
// id is a no-op returning false rather than a panic mid-simulation.
// The transition is recorded as an EvFault on the coordinator recorder —
// the event stream the ctlplane reconciler subscribes to for node health.
func (n *Network) FailNode(id topo.NodeID) bool {
	if !n.validNode(id) {
		return false
	}
	n.failed[id] = true
	n.recordNodeFault(id, 1, "fail") // B=1: node is down
	return true
}

// RecoverNode clears a failure (false for out-of-range ids).
func (n *Network) RecoverNode(id topo.NodeID) bool {
	if !n.validNode(id) {
		return false
	}
	n.failed[id] = false
	n.recordNodeFault(id, 0, "recover")
	return true
}

// recordNodeFault emits the node up/down transition. Fail/recover calls
// originate in coordinator context (chaos fires at coordinator barriers),
// so the event goes to the coordinator recorder with coordinator time and
// is identical under sequential and sharded execution.
func (n *Network) recordNodeFault(id topo.NodeID, down int64, note string) {
	if n.rec == nil {
		return
	}
	n.rec.Record(telemetry.Event{T: int64(n.Eng.Now()), Kind: telemetry.EvFault,
		Entity: "dataplane.node", A: int64(id), B: down, Note: note})
}

// Failed reports whether a node is failed (false for out-of-range ids).
func (n *Network) Failed(id topo.NodeID) bool {
	return n.validNode(id) && n.failed[id]
}

// Send injects a source-routed packet at the source of its route's first
// link. The caller must have set Route; Hop must be 0.
func (n *Network) Send(pkt *Packet) {
	if len(pkt.Route) == 0 {
		panic("dataplane: Send without route (use SendECMP)")
	}
	pkt.Hop = 0
	pkt.Dst = n.G.PathDst(pkt.Route)
	n.enqueue(pkt, pkt.Route[0])
}

// SendECMP injects a packet at src to be hash-forwarded to pkt.Dst.
func (n *Network) SendECMP(pkt *Packet, src topo.NodeID) {
	pkt.Route = nil
	next := n.ecmpNext(src, pkt)
	if next == topo.NoLink {
		atomic.AddUint64(&n.TotalDrops, 1)
		return
	}
	n.enqueue(pkt, next)
}

func (n *Network) enqueue(pkt *Packet, lid topo.LinkID) {
	port := &n.Ports[lid]
	sched := n.schedAt(port.Link.Src)
	if n.failed[port.Link.Src] || n.failed[port.Link.Dst] {
		atomic.AddUint64(&n.TotalDrops, 1)
		if rec := n.recAt(port.Link.Src); rec != nil {
			rec.Record(telemetry.Event{T: int64(sched.Now()), Kind: telemetry.EvDrop,
				Entity: n.linkEntity[lid], A: int64(pkt.Kind), Note: "failed"})
		}
		if n.OnFailDrop != nil {
			// Report the node that actually failed; when the local node
			// itself is dead that is Src, otherwise the far end.
			failed := port.Link.Dst
			if n.failed[port.Link.Src] {
				failed = port.Link.Src
			}
			n.OnFailDrop(pkt, port.Link.Src, failed)
		}
		return
	}
	if !n.faultFilter(pkt, port) {
		return
	}
	// Switch agent hook (INT read/write) fires at enqueue time on
	// switch egress.
	if ag := n.agents[port.Link.Src]; ag != nil {
		ag.OnForward(pkt, port, sched.Now())
	}
	// ECN marking on queue buildup.
	if port.ecnBytes > 0 && port.queueBytes >= port.ecnBytes {
		pkt.ECN = true
	}
	if port.queueBytes+pkt.Size > port.capBytes {
		port.Drops++
		atomic.AddUint64(&n.TotalDrops, 1)
		if rec := n.recAt(port.Link.Src); rec != nil {
			rec.Record(telemetry.Event{T: int64(sched.Now()), Kind: telemetry.EvDrop,
				Entity: n.linkEntity[lid], A: int64(pkt.Kind),
				B: int64(port.queueBytes), Note: "overflow"})
		}
		return
	}
	port.queue = append(port.queue, pkt)
	port.queueBytes += pkt.Size
	if port.queueBytes > port.MaxQueueBytes {
		port.MaxQueueBytes = port.queueBytes
	}
	if !port.busy {
		n.startTx(port)
	}
}

func (n *Network) startTx(port *Port) {
	pkt := port.queue[0]
	port.queue = port.queue[1:]
	port.queueBytes -= pkt.Size
	port.busy = true
	src := port.Link.Src
	sched := n.schedAt(src)
	ser := topo.SerializationDelay(pkt.Size, n.effectiveCapacity(port))
	sched.After(ser, func() {
		port.busy = false
		port.TxPackets++
		port.TxBytes += uint64(pkt.Size)
		port.rate.add(sched.Now(), pkt.Size)
		// Propagate to the far end (a gray fault may add latency). A
		// cross-shard hop hands the arrival to the destination shard's
		// heap; the partition guarantees prop is at least the lookahead
		// window.
		dst := port.Link.Dst
		prop := port.Link.PropDelay + n.faults[port.Link.ID].deg.ExtraDelay
		if sd, dd := n.shardOf[src], n.shardOf[dst]; n.shard != nil && sd != dd {
			n.shard.Send(int(sd), int(dd), prop, func() { n.arrive(pkt, dst) })
		} else {
			sched.After(prop, func() { n.arrive(pkt, dst) })
		}
		if len(port.queue) > 0 {
			n.startTx(port)
		}
	})
}

func (n *Network) arrive(pkt *Packet, at topo.NodeID) {
	if n.failed[at] {
		atomic.AddUint64(&n.TotalDrops, 1)
		return
	}
	node := n.G.Node(at)
	if node.Kind == topo.Host {
		if n.Trace != nil {
			n.Trace(at, pkt)
		}
		if h := n.handlers[at]; h != nil {
			h.HandlePacket(pkt)
		}
		return
	}
	// Switch: forward.
	var next topo.LinkID
	if len(pkt.Route) > 0 {
		pkt.Hop++
		if pkt.Hop >= len(pkt.Route) {
			atomic.AddUint64(&n.TotalDrops, 1) // route exhausted before reaching a host
			return
		}
		next = pkt.Route[pkt.Hop]
		if n.G.Link(next).Src != at {
			panic(fmt.Sprintf("dataplane: route hop %d link %d does not start at node %d", pkt.Hop, next, at))
		}
	} else {
		next = n.ecmpNext(at, pkt)
		if next == topo.NoLink {
			atomic.AddUint64(&n.TotalDrops, 1)
			return
		}
	}
	n.enqueue(pkt, next)
}

// distTo returns (computing if needed) hop distances from all nodes to dst.
// Shards race on the lazy fill, so the map is guarded: reads take the shared
// lock, a miss recomputes under the exclusive one.
func (n *Network) distTo(dst topo.NodeID) []int32 {
	n.distMu.RLock()
	d, ok := n.dist[dst]
	n.distMu.RUnlock()
	if ok {
		return d
	}
	n.distMu.Lock()
	defer n.distMu.Unlock()
	if d, ok := n.dist[dst]; ok {
		return d
	}
	const inf = int32(1) << 30
	d = make([]int32, len(n.G.Nodes))
	for i := range d {
		d[i] = inf
	}
	d[dst] = 0
	queue := []topo.NodeID{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Incoming links of v are reverses of v's out links (duplex).
		for _, lid := range n.G.Node(v).Out {
			rev := n.G.Link(lid).Reverse
			if rev == topo.NoLink {
				continue
			}
			u := n.G.Link(rev).Src
			if d[u] > d[v]+1 {
				d[u] = d[v] + 1
				queue = append(queue, u)
			}
		}
	}
	n.dist[dst] = d
	return d
}

func (n *Network) ecmpNext(at topo.NodeID, pkt *Packet) topo.LinkID {
	d := n.distTo(pkt.Dst)
	var candidates []topo.LinkID
	for _, lid := range n.G.Node(at).Out {
		to := n.G.Link(lid).Dst
		if d[to] == d[at]-1 && !n.failed[to] && !n.faults[lid].down {
			candidates = append(candidates, lid)
		}
	}
	if len(candidates) == 0 {
		return topo.NoLink
	}
	h := ecmpHash(uint64(pkt.VMPair), n.Cfg.HashSeed)
	if n.Cfg.ECMP == Independent {
		// Mix per-switch entropy in, as independent hash functions do.
		h = ecmpHash(h^uint64(at)*0x9e3779b97f4a7c15, n.Cfg.HashSeed)
	}
	return candidates[h%uint64(len(candidates))]
}

func ecmpHash(x, seed uint64) uint64 {
	x ^= seed
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// LinkUtilization returns TX bytes on link l as a fraction of what the link
// could have carried in [0, now].
func (n *Network) LinkUtilization(l topo.LinkID, now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	p := &n.Ports[l]
	return float64(p.TxBytes*8) / (p.Link.Capacity * now.Seconds())
}
