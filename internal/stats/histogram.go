package stats

import "ufab/internal/telemetry"

// BucketQuantile estimates the q-quantile of a snapshot histogram (the
// sparse non-cumulative bucket form telemetry.HistogramValue carries) by
// linear interpolation inside the bucket holding the target rank, clamped
// to the observed min/max. It mirrors telemetry.(*Histogram).Quantile for
// consumers that only hold exported snapshot data — the CLI summaries and
// offline analysis — rather than the live instrument.
func BucketQuantile(h telemetry.HistogramValue, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum float64
	prevBound := 0.0
	for _, b := range h.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			hi := b.UpperBound
			if hi != hi || hi > 1.7976931348623157e308 { // +Inf overflow bucket
				hi = h.Max
			}
			v := prevBound + (hi-prevBound)*(rank-cum)/float64(b.Count)
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
		cum = next
		prevBound = b.UpperBound
	}
	return h.Max
}
