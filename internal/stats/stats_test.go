package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ufab/internal/sim"
)

func TestSamplesQuantiles(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.P(0); got != 1 {
		t.Errorf("P(0) = %v", got)
	}
	if got := s.P(1); got != 100 {
		t.Errorf("P(1) = %v", got)
	}
	if got := s.P(0.5); math.Abs(got-50.5) > 0.01 {
		t.Errorf("P(0.5) = %v", got)
	}
	if got := s.P(0.99); math.Abs(got-99.01) > 0.01 {
		t.Errorf("P(0.99) = %v", got)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
}

func TestSamplesEmpty(t *testing.T) {
	var s Samples
	for _, v := range []float64{s.P(0.5), s.Mean(), s.Max(), s.Min(), s.StdDev()} {
		if !math.IsNaN(v) {
			t.Errorf("empty stat = %v, want NaN", v)
		}
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestStdDev(t *testing.T) {
	var s Samples
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestCDF(t *testing.T) {
	var s Samples
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF points = %d", len(pts))
	}
	if pts[9].F != 1 || pts[9].X != 1000 {
		t.Errorf("last point = %+v", pts[9])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].F <= pts[i-1].F || pts[i].X < pts[i-1].X {
			t.Fatalf("CDF not monotone: %+v", pts)
		}
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	var s Samples
	s.Add(1)
	if s.Summary("us") == "" {
		t.Error("empty Summary")
	}
}

func TestSeriesAtAndBackwardsPanic(t *testing.T) {
	var s Series
	s.Add(10*sim.Microsecond, 1)
	s.Add(20*sim.Microsecond, 2)
	if got := s.At(5 * sim.Microsecond); got != 0 {
		t.Errorf("At(5us) = %v", got)
	}
	if got := s.At(15 * sim.Microsecond); got != 1 {
		t.Errorf("At(15us) = %v", got)
	}
	if got := s.At(20 * sim.Microsecond); got != 2 {
		t.Errorf("At(20us) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Add did not panic")
		}
	}()
	s.Add(5*sim.Microsecond, 3)
}

func TestSeriesMeanOver(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(10*sim.Microsecond, 20)
	// Over [0,20us]: 10 for first half, 20 for second = 15.
	if got := s.MeanOver(0, 20*sim.Microsecond); math.Abs(got-15) > 1e-9 {
		t.Errorf("MeanOver = %v, want 15", got)
	}
	var empty Series
	if !math.IsNaN(empty.MeanOver(0, 1)) {
		t.Error("empty MeanOver not NaN")
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter("r", 10*sim.Microsecond)
	// 12500 bytes in each of two windows = 10 Gbps.
	m.Add(1*sim.Microsecond, 12500)
	m.Add(11*sim.Microsecond, 12500)
	m.Flush(20 * sim.Microsecond)
	if len(m.Series.Pts) != 2 {
		t.Fatalf("points = %d", len(m.Series.Pts))
	}
	for _, p := range m.Series.Pts {
		if math.Abs(p.V-10e9) > 1 {
			t.Errorf("rate = %v, want 10e9", p.V)
		}
	}
	if m.TotalBytes() != 25000 {
		t.Errorf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestRateMeterIdleWindows(t *testing.T) {
	m := NewRateMeter("r", sim.Microsecond)
	m.Add(500*sim.Nanosecond, 125)
	m.Add(10500*sim.Nanosecond, 125) // 9 idle windows between
	m.Flush(11 * sim.Microsecond)
	zero := 0
	for _, p := range m.Series.Pts {
		if p.V == 0 {
			zero++
		}
	}
	if zero != 9 {
		t.Fatalf("zero windows = %d, want 9", zero)
	}
}

func TestConvergenceTime(t *testing.T) {
	var s Series
	// Ramp to 10 by t=50us, hold after.
	for i := 0; i <= 100; i++ {
		v := float64(i) / 5
		if v > 10 {
			v = 10
		}
		s.Add(sim.Time(i)*sim.Microsecond, v)
	}
	ct := ConvergenceTime(&s, 0, 10, 0.05, 20*sim.Microsecond)
	// Within 5% of 10 means ≥ 9.5, reached at i=48 (v=9.6).
	if ct != 48*sim.Microsecond {
		t.Fatalf("ConvergenceTime = %v, want 48us", ct)
	}
	// Never converges to 100.
	if ct := ConvergenceTime(&s, 0, 100, 0.05, sim.Microsecond); ct != -1 {
		t.Fatalf("impossible target converged at %v", ct)
	}
	if ct := ConvergenceTime(&s, 0, 0, 0.05, sim.Microsecond); ct != -1 {
		t.Fatal("zero target must return -1")
	}
}

func TestConvergenceResetsOnExit(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(10*sim.Microsecond, 0) // leaves band
	s.Add(20*sim.Microsecond, 10)
	s.Add(40*sim.Microsecond, 10)
	ct := ConvergenceTime(&s, 0, 10, 0.05, 15*sim.Microsecond)
	if ct != 20*sim.Microsecond {
		t.Fatalf("ConvergenceTime = %v, want 20us", ct)
	}
}

func TestWaterfillSingleLink(t *testing.T) {
	// 3 flows, weights 1:2:5 on a 10G link, unbounded demand →
	// 1.25 / 2.5 / 6.25 G.
	rates := Waterfill(
		[]float64{1, 2, 5},
		[]float64{-1, -1, -1},
		[]WaterfillLink{{Capacity: 10e9, Flows: []int{0, 1, 2}}},
	)
	want := []float64{1.25e9, 2.5e9, 6.25e9}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e3 {
			t.Errorf("rate[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestWaterfillDemandBound(t *testing.T) {
	// Flow 0 demands only 1G; its leftover goes to the others.
	rates := Waterfill(
		[]float64{1, 1, 1},
		[]float64{1e9, -1, -1},
		[]WaterfillLink{{Capacity: 10e9, Flows: []int{0, 1, 2}}},
	)
	if math.Abs(rates[0]-1e9) > 1e3 {
		t.Errorf("rate[0] = %v", rates[0])
	}
	if math.Abs(rates[1]-4.5e9) > 1e3 || math.Abs(rates[2]-4.5e9) > 1e3 {
		t.Errorf("rates = %v, want 4.5G each", rates)
	}
}

func TestWaterfillMultiLink(t *testing.T) {
	// Flow 0 crosses links A and B; flow 1 only A; flow 2 only B.
	// A: 10G, B: 4G. Flow 0 is max-min bottlenecked at B: 2G; flow 2
	// gets 2G; flow 1 gets the rest of A: 8G.
	rates := Waterfill(
		[]float64{1, 1, 1},
		[]float64{-1, -1, -1},
		[]WaterfillLink{
			{Capacity: 10e9, Flows: []int{0, 1}},
			{Capacity: 4e9, Flows: []int{0, 2}},
		},
	)
	want := []float64{2e9, 8e9, 2e9}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e3 {
			t.Errorf("rates = %v, want %v", rates, want)
		}
	}
}

func TestWaterfillZeroWeight(t *testing.T) {
	rates := Waterfill(
		[]float64{0, 1},
		[]float64{-1, -1},
		[]WaterfillLink{{Capacity: 10e9, Flows: []int{0, 1}}},
	)
	if rates[0] != 0 || math.Abs(rates[1]-10e9) > 1e3 {
		t.Errorf("rates = %v", rates)
	}
}

// Property: water-filling never exceeds any link capacity and never
// exceeds demand.
func TestWaterfillFeasibleProperty(t *testing.T) {
	f := func(wRaw, dRaw []uint8, capRaw uint16) bool {
		n := len(wRaw)
		if n == 0 || n > 12 {
			return true
		}
		weights := make([]float64, n)
		demands := make([]float64, n)
		flows := make([]int, n)
		for i := range wRaw {
			weights[i] = float64(wRaw[i]%10) + 1
			demands[i] = -1
			if i < len(dRaw) && dRaw[i]%2 == 0 {
				demands[i] = float64(dRaw[i]) * 1e8
			}
			flows[i] = i
		}
		cap := float64(capRaw%1000+1) * 1e8
		rates := Waterfill(weights, demands, []WaterfillLink{{Capacity: cap, Flows: flows}})
		sum := 0.0
		for i, r := range rates {
			if r < -1e-6 {
				return false
			}
			if demands[i] >= 0 && r > demands[i]+1e-3 {
				return false
			}
			sum += r
		}
		return sum <= cap*(1+1e-9)+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDissatisfaction(t *testing.T) {
	// VF0 guaranteed 2G achieved 1G (violation 1G); VF1 guaranteed 1G
	// achieved 2G (no violation). Owed = 3G → ratio 1/3.
	got := Dissatisfaction([]float64{1e9, 2e9}, []float64{2e9, 1e9}, nil)
	if math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("Dissatisfaction = %v", got)
	}
	// Demand below guarantee caps what is owed.
	got = Dissatisfaction([]float64{0.5e9}, []float64{2e9}, []float64{0.5e9})
	if got != 0 {
		t.Errorf("demand-capped dissatisfaction = %v, want 0", got)
	}
	if Dissatisfaction(nil, nil, nil) != 0 {
		t.Error("empty dissatisfaction != 0")
	}
}

func TestSlowdown(t *testing.T) {
	// 1 MB at 1 Gbps expected 8 ms; actual 16 ms → slowdown 2.
	got := Slowdown(16*sim.Millisecond, 1_000_000, 1e9)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Slowdown = %v, want 2", got)
	}
	if !math.IsNaN(Slowdown(1, 0, 1e9)) {
		t.Error("zero-size slowdown not NaN")
	}
}
