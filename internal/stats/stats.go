// Package stats provides the measurement machinery the evaluation needs:
// sample collections with percentiles and CDFs, time series, windowed rate
// meters, convergence-time detection, and a weighted max-min water-filling
// solver that computes the ideal bandwidth allocation used for
// dissatisfaction metrics and the "Ideal" bars of Fig 13.
package stats

import (
	"fmt"
	"math"
	"sort"

	"ufab/internal/sim"
)

// Samples is an unordered collection of float64 observations.
type Samples struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Samples) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll appends every observation of other (which is left untouched).
func (s *Samples) AddAll(other *Samples) {
	if other.Len() == 0 {
		return
	}
	s.xs = append(s.xs, other.xs...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Samples) Len() int { return len(s.xs) }

func (s *Samples) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// P returns the q-quantile (q in [0,1]) using nearest-rank interpolation.
// It returns NaN for an empty collection.
func (s *Samples) P(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.xs) {
		return s.xs[i]
	}
	return s.xs[i]*(1-frac) + s.xs[i+1]*frac
}

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Samples) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the population standard deviation, or NaN when empty.
func (s *Samples) StdDev() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.xs)))
}

// Max returns the largest observation, or NaN when empty.
func (s *Samples) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Min returns the smallest observation, or NaN when empty.
func (s *Samples) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// TakeAll returns the collected observations (order unspecified) and
// resets the collection — used for epoch-by-epoch measurement windows.
func (s *Samples) TakeAll() []float64 {
	out := s.xs
	s.xs = nil
	s.sorted = false
	return out
}

// Snapshot is a sorted, read-only view of a Samples collection at one
// point in time: a single sort serves every quantile, where alternating
// Add and P in a sampling loop would re-sort on each P call. The view
// aliases the collection's buffer — take it after collection is done, and
// do not Add to the source while using it.
type Snapshot struct {
	xs []float64
}

// Snapshot sorts the collection once (reusing any cached order) and
// returns the quantile-serving view.
func (s *Samples) Snapshot() Snapshot {
	s.sort()
	return Snapshot{xs: s.xs}
}

// Len returns the number of observations.
func (v Snapshot) Len() int { return len(v.xs) }

// P returns the q-quantile with the same interpolation as Samples.P, and
// NaN when empty.
func (v Snapshot) P(q float64) float64 {
	if len(v.xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return v.xs[0]
	}
	if q >= 1 {
		return v.xs[len(v.xs)-1]
	}
	pos := q * float64(len(v.xs)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(v.xs) {
		return v.xs[i]
	}
	return v.xs[i]*(1-frac) + v.xs[i+1]*frac
}

// Min returns the smallest observation, or NaN when empty.
func (v Snapshot) Min() float64 {
	if len(v.xs) == 0 {
		return math.NaN()
	}
	return v.xs[0]
}

// Max returns the largest observation, or NaN when empty.
func (v Snapshot) Max() float64 {
	if len(v.xs) == 0 {
		return math.NaN()
	}
	return v.xs[len(v.xs)-1]
}

// Mean returns the arithmetic mean, or NaN when empty.
func (v Snapshot) Mean() float64 {
	if len(v.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range v.xs {
		sum += x
	}
	return sum / float64(len(v.xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // fraction of samples ≤ X
}

// CDF returns up to maxPoints evenly spaced points of the empirical CDF.
func (s *Samples) CDF(maxPoints int) []CDFPoint {
	if len(s.xs) == 0 {
		return nil
	}
	s.sort()
	n := len(s.xs)
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		pts = append(pts, CDFPoint{X: s.xs[idx-1], F: float64(idx) / float64(n)})
	}
	return pts
}

// Summary formats mean/p50/p99/p999/max on one line, for experiment output.
func (s *Samples) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.2f%s p50=%.2f%s p99=%.2f%s p99.9=%.2f%s max=%.2f%s",
		s.Len(), s.Mean(), unit, s.P(0.50), unit, s.P(0.99), unit, s.P(0.999), unit, s.Max(), unit)
}

// Point is a timestamped value.
type Point struct {
	T sim.Time
	V float64
}

// Series is a time series of float64 values.
type Series struct {
	Name string
	Pts  []Point
}

// Add appends a point; times must be non-decreasing.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.Pts); n > 0 && t < s.Pts[n-1].T {
		panic(fmt.Sprintf("stats: series %q time goes backwards (%v < %v)", s.Name, t, s.Pts[n-1].T))
	}
	s.Pts = append(s.Pts, Point{T: t, V: v})
}

// At returns the last value recorded at or before t, or 0 if none.
func (s *Series) At(t sim.Time) float64 {
	i := sort.Search(len(s.Pts), func(i int) bool { return s.Pts[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Pts[i-1].V
}

// MeanOver returns the time-weighted mean of the series over [from, to],
// treating values as right-continuous steps. It returns NaN when the
// series is empty or the interval is empty.
func (s *Series) MeanOver(from, to sim.Time) float64 {
	if len(s.Pts) == 0 || to <= from {
		return math.NaN()
	}
	var sum float64
	cur := s.At(from)
	last := from
	for _, p := range s.Pts {
		if p.T <= from {
			continue
		}
		if p.T > to {
			break
		}
		sum += cur * float64(p.T-last)
		cur = p.V
		last = p.T
	}
	sum += cur * float64(to-last)
	return sum / float64(to-from)
}

// RateMeter turns byte arrivals into a bits/s time series sampled at a
// fixed interval.
type RateMeter struct {
	Interval sim.Duration
	Series   Series

	winStart sim.Time
	winBytes int64
	total    int64
}

// NewRateMeter returns a meter that emits one sample per interval.
func NewRateMeter(name string, interval sim.Duration) *RateMeter {
	if interval <= 0 {
		panic("stats: non-positive rate meter interval")
	}
	return &RateMeter{Interval: interval, Series: Series{Name: name}}
}

// Add records bytes arriving at time t, closing any completed windows.
func (m *RateMeter) Add(t sim.Time, bytes int) {
	m.flushTo(t)
	m.winBytes += int64(bytes)
	m.total += int64(bytes)
}

// Flush closes windows up to time t so the series covers [0, t).
func (m *RateMeter) Flush(t sim.Time) { m.flushTo(t) }

func (m *RateMeter) flushTo(t sim.Time) {
	for t-m.winStart >= m.Interval {
		rate := float64(m.winBytes*8) / m.Interval.Seconds()
		m.Series.Add(m.winStart+m.Interval, rate)
		m.winBytes = 0
		m.winStart += m.Interval
	}
}

// TotalBytes returns all bytes recorded so far.
func (m *RateMeter) TotalBytes() int64 { return m.total }

// ConvergenceTime returns how long after event time t0 the series stays
// within tol (relative) of target for at least hold, or -1 if it never
// does. It is the metric behind Fig 18's convergence bars.
func ConvergenceTime(s *Series, t0 sim.Time, target, tol float64, hold sim.Duration) sim.Duration {
	if target == 0 {
		return -1
	}
	var okSince sim.Time = -1
	for _, p := range s.Pts {
		if p.T < t0 {
			continue
		}
		within := math.Abs(p.V-target) <= tol*target
		if within {
			if okSince < 0 {
				okSince = p.T
			}
			if p.T-okSince >= hold {
				return okSince - t0
			}
		} else {
			okSince = -1
		}
	}
	return -1
}

// WaterfillLink describes one capacitated resource for Waterfill: its
// capacity in bits/s and the indices of the flows crossing it.
type WaterfillLink struct {
	Capacity float64
	Flows    []int
}

// Waterfill computes the weighted max-min fair allocation of n flows with
// the given weights and demands (demand < 0 means unbounded) over the
// links. It returns the per-flow rates. This is the α→∞ allocation of
// Appendix C used as the "ideal" reference.
func Waterfill(weights, demands []float64, links []WaterfillLink) []float64 {
	n := len(weights)
	rates := make([]float64, n)
	frozen := make([]bool, n)
	remCap := make([]float64, len(links))
	for i, l := range links {
		remCap[i] = l.Capacity
	}
	for iter := 0; iter < n+1; iter++ {
		// Find the smallest increment δ such that some unfrozen flow
		// hits its demand or some link saturates when every unfrozen
		// flow f grows by δ·weight[f].
		delta := math.Inf(1)
		for li, l := range links {
			w := 0.0
			for _, f := range l.Flows {
				if !frozen[f] {
					w += weights[f]
				}
			}
			if w > 0 {
				if d := remCap[li] / w; d < delta {
					delta = d
				}
			}
		}
		for f := 0; f < n; f++ {
			if frozen[f] || demands[f] < 0 || weights[f] == 0 {
				continue
			}
			if d := (demands[f] - rates[f]) / weights[f]; d < delta {
				delta = d
			}
		}
		if math.IsInf(delta, 1) || delta < 0 {
			break
		}
		// Apply the increment.
		for f := 0; f < n; f++ {
			if !frozen[f] {
				rates[f] += delta * weights[f]
			}
		}
		for li, l := range links {
			w := 0.0
			for _, f := range l.Flows {
				if !frozen[f] {
					w += weights[f]
				}
			}
			remCap[li] -= delta * w
		}
		// Freeze flows at demand or on saturated links.
		progress := false
		for f := 0; f < n; f++ {
			if frozen[f] {
				continue
			}
			if demands[f] >= 0 && rates[f] >= demands[f]-1e-9 {
				frozen[f] = true
				progress = true
			}
		}
		for li, l := range links {
			if remCap[li] <= 1e-6*links[li].Capacity {
				for _, f := range l.Flows {
					if !frozen[f] {
						frozen[f] = true
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
		done := true
		for f := 0; f < n; f++ {
			if !frozen[f] && weights[f] > 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
	return rates
}

// Dissatisfaction returns the bandwidth-dissatisfaction ratio of Fig 11d:
// the total minimum-bandwidth violation over the total guaranteed volume,
// given per-VF achieved rates, guarantees, and demands (a VF with demand
// below its guarantee is only owed its demand).
func Dissatisfaction(achieved, guarantee, demand []float64) float64 {
	var violation, owed float64
	for i := range achieved {
		g := guarantee[i]
		if demand != nil && demand[i] >= 0 && demand[i] < g {
			g = demand[i]
		}
		owed += g
		if d := g - achieved[i]; d > 0 {
			violation += d
		}
	}
	if owed == 0 {
		return 0
	}
	return violation / owed
}

// Slowdown returns actual FCT normalized by the expected FCT under the
// hose-model guarantee: size·8/guaranteeBps (§5.5 footnote).
func Slowdown(fct sim.Duration, sizeBytes int, guaranteeBps float64) float64 {
	expected := float64(sizeBytes*8) / guaranteeBps
	if expected <= 0 {
		return math.NaN()
	}
	return fct.Seconds() / expected
}
