package stats

import (
	"math"
	"testing"

	"ufab/internal/telemetry"
)

// TestBucketQuantileMatchesLive: the snapshot-side estimator must track
// the live instrument's quantiles on a dense sample.
func TestBucketQuantileMatchesLive(t *testing.T) {
	r := telemetry.New()
	h := r.Histogram("x.fct_us")
	for i := 1; i <= 2000; i++ {
		h.Observe(float64(i))
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("want 1 histogram in snapshot, got %d", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		live, fromSnap := h.Quantile(q), BucketQuantile(hv, q)
		if live == fromSnap {
			continue
		}
		if math.Abs(live-fromSnap)/live > 0.07 {
			t.Fatalf("q%g: live=%g snapshot=%g diverge", q, live, fromSnap)
		}
	}
	if BucketQuantile(telemetry.HistogramValue{}, 0.5) != 0 {
		t.Fatalf("empty histogram quantile must be 0")
	}
}
