package placement

import (
	"fmt"

	"ufab/internal/chaos"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/topo"
)

// Request asks the controller to admit one tenant: a hose guarantee per
// VM, a VM count (materialized as a chain of VM-pairs), and a WFQ weight
// class.
type Request struct {
	// ID becomes the tenant's VF id; it must be unique among admitted
	// tenants.
	ID int32
	// GuaranteeBps is the per-VM hose guarantee.
	GuaranteeBps float64
	// VMs is how many VMs to place (each on a distinct host).
	VMs int
	// WeightClass is the WFQ class (0..7).
	WeightClass int
	// BacklogBytes per materialized pair; <= 0 means effectively infinite.
	BacklogBytes int64
}

// Decision is the controller's verdict on one request.
type Decision struct {
	Accepted bool
	// Reason explains a rejection: "placement" (no feasible hosts),
	// "headroom" (a link would exceed the oversubscribed budget),
	// "materialize" (the fabric refused the spec), "invalid".
	Reason string
	// Hosts are the placed VM locations (accepted only).
	Hosts []topo.NodeID
	// Pairs is the committed chain (accepted only).
	Pairs []Pair
	// SubmittedAt/DecidedAt bound the decision latency (queue wait +
	// service time).
	SubmittedAt, DecidedAt sim.Time
}

// Materializer turns an admitted spec into data-plane state.
// *vfabric.Fabric implements it; ledger-only studies leave it nil.
type Materializer interface {
	AddTenant(spec chaos.TenantSpec) bool
	RemoveTenant(vf int32) bool
}

// Config parameterizes a Controller.
type Config struct {
	// Oversubscription scales every link's admission budget: a request is
	// admitted only while committed + delta ≤ factor·capacity on every
	// affected link. 1.0 (the default) admits at most line rate — the
	// paper's predictability precondition; >1 deliberately oversubscribes.
	Oversubscription float64
	// SlotsPerHost caps VMs per host (default 8).
	SlotsPerHost int
	// MaxPaths bounds the ledger's per-pair ECMP enumeration (0 = all).
	MaxPaths int
	// DecisionLatency is the service time per admission decision;
	// requests queue FIFO behind it (default 10 µs). Time-to-admit =
	// queue wait + service.
	DecisionLatency sim.Duration
	// Policy picks VM hosts (default FirstFit).
	Policy Policy
	// Telemetry, if non-nil, publishes placement.ctl.* counters and
	// records EvPlacement flight-recorder events.
	Telemetry *telemetry.Registry
}

// Controller is the admission control plane: requests flow through a
// FIFO decision queue, the policy proposes hosts, the ledger headroom
// check accepts or rejects, and accepted tenants materialize through the
// Materializer. It must run on the simulation engine's goroutine.
type Controller struct {
	eng    sim.Scheduler
	g      *topo.Graph
	cfg    Config
	ledger *Ledger
	fleet  *Fleet
	mat    Materializer

	queue []queued
	busy  bool

	// hostsOf remembers policy-placed hosts per tenant so Release can
	// return the slots.
	hostsOf map[int32][]topo.NodeID

	// Counters (also mirrored to telemetry when attached).
	submitted, admitted, rejected, released int64

	rec    *telemetry.Recorder
	hAdmit *telemetry.Histogram
}

type queued struct {
	req  Request
	at   sim.Time
	done func(Decision)
}

// NewController builds the control plane over the graph. mat may be nil
// (ledger-only operation — admitted tenants exist on paper only).
func NewController(eng sim.Scheduler, g *topo.Graph, mat Materializer, cfg Config) *Controller {
	if cfg.Oversubscription == 0 {
		cfg.Oversubscription = 1.0
	}
	if cfg.SlotsPerHost == 0 {
		cfg.SlotsPerHost = 8
	}
	if cfg.DecisionLatency == 0 {
		cfg.DecisionLatency = 10 * sim.Microsecond
	}
	if cfg.Policy == nil {
		cfg.Policy = FirstFit{}
	}
	c := &Controller{
		eng:     eng,
		g:       g,
		cfg:     cfg,
		ledger:  NewLedger(g, cfg.MaxPaths),
		fleet:   NewFleet(g, cfg.SlotsPerHost),
		mat:     mat,
		hostsOf: make(map[int32][]topo.NodeID),
	}
	if cfg.Telemetry != nil {
		c.rec = cfg.Telemetry.Recorder()
		c.hAdmit = cfg.Telemetry.Histogram("placement.ctl.admit_latency_us")
	}
	return c
}

// Ledger exposes the controller's subscription account (read side for
// the auditor and experiments).
func (c *Controller) Ledger() *Ledger { return c.ledger }

// Fleet exposes the slot-occupancy view.
func (c *Controller) Fleet() *Fleet { return c.fleet }

// Policy returns the active placement policy.
func (c *Controller) Policy() Policy { return c.cfg.Policy }

// Submit enqueues a request; done (optional) fires with the decision
// when the controller reaches it. Decisions are served FIFO, one per
// DecisionLatency, so time-to-admit reflects control-plane load.
func (c *Controller) Submit(req Request, done func(Decision)) {
	c.submitted++
	c.queue = append(c.queue, queued{req: req, at: c.eng.Now(), done: done})
	c.stage(req.ID, "queue", 1)
	c.serve()
}

// serve starts the decision timer when the controller is idle.
func (c *Controller) serve() {
	if c.busy || len(c.queue) == 0 {
		return
	}
	c.busy = true
	c.eng.At(c.eng.Now()+sim.Time(c.cfg.DecisionLatency), func() {
		q := c.queue[0]
		c.queue = c.queue[1:]
		d := c.decide(q.req)
		d.SubmittedAt = q.at
		d.DecidedAt = c.eng.Now()
		c.hAdmit.Observe((d.DecidedAt - d.SubmittedAt).Micros())
		c.busy = false
		if q.done != nil {
			q.done(d)
		}
		c.serve()
	})
}

// decide runs one admission decision: place → headroom → commit →
// materialize.
func (c *Controller) decide(req Request) Decision {
	if req.GuaranteeBps <= 0 || req.VMs < 1 || c.ledger.Has(req.ID) {
		return c.reject(req, "invalid")
	}
	hosts := c.cfg.Policy.Place(req, c.fleet, c.ledger)
	if len(hosts) != req.VMs {
		return c.reject(req, "placement")
	}
	c.stage(req.ID, "place", 2)
	pairs := ChainPairs(hosts)
	links, amounts, err := c.ledger.Evaluate(req.GuaranteeBps, pairs)
	if err != nil {
		return c.reject(req, "placement")
	}
	for i, lid := range links {
		budget := c.cfg.Oversubscription * c.g.Link(lid).Capacity
		if c.ledger.CommittedBps(lid)+amounts[i] > budget+1e-9 {
			return c.reject(req, "headroom")
		}
	}
	if err := c.ledger.Commit(req.ID, req.GuaranteeBps, pairs); err != nil {
		return c.reject(req, "invalid")
	}
	c.stage(req.ID, "commit", 3)
	if c.mat != nil {
		if !c.mat.AddTenant(c.spec(req, pairs)) {
			c.ledger.Release(req.ID)
			return c.reject(req, "materialize")
		}
		c.stage(req.ID, "materialize", 4)
	}
	c.fleet.Place(hosts)
	c.hostsOf[req.ID] = hosts
	c.admitted++
	c.event(req, "admit")
	c.flush()
	return Decision{Accepted: true, Hosts: hosts, Pairs: pairs}
}

// spec converts an accepted request + chain into the churn surface's
// tenant spec.
func (c *Controller) spec(req Request, pairs []Pair) chaos.TenantSpec {
	sp := chaos.TenantSpec{
		VF:           req.ID,
		GuaranteeBps: req.GuaranteeBps,
		WeightClass:  req.WeightClass,
	}
	for _, p := range pairs {
		sp.Pairs = append(sp.Pairs, chaos.PairSpec{
			Src: p.Src, Dst: p.Dst, BacklogBytes: req.BacklogBytes,
		})
	}
	return sp
}

func (c *Controller) reject(req Request, reason string) Decision {
	c.rejected++
	c.event(req, "reject")
	c.flush()
	return Decision{Reason: reason}
}

// Release tears an admitted tenant down: data-plane state first (finish
// probes drain its registers), then the ledger commitment and host
// slots. Returns false for an unknown tenant.
func (c *Controller) Release(id int32) bool {
	if !c.ledger.Has(id) {
		return false
	}
	if c.mat != nil {
		c.mat.RemoveTenant(id)
	}
	c.ledger.Release(id)
	if hosts, ok := c.hostsOf[id]; ok {
		c.fleet.Release(hosts)
		delete(c.hostsOf, id)
	}
	c.released++
	c.event(Request{ID: id}, "release")
	c.flush()
	return true
}

// ---- chaos.Admission -------------------------------------------------------

// AdmitSpec implements chaos.Admission: a scenario's explicit
// TenantArrive spec (hosts already chosen) is checked against ledger
// headroom and committed on accept. The injector materializes the spec
// itself, so no Materializer call happens here. Slot occupancy is not
// charged — scenario specs place VMs explicitly, outside the policy's
// slot accounting.
func (c *Controller) AdmitSpec(spec chaos.TenantSpec) bool {
	if spec.GuaranteeBps <= 0 || c.ledger.Has(spec.VF) {
		c.rejected++
		c.event(Request{ID: spec.VF, GuaranteeBps: spec.GuaranteeBps}, "reject")
		c.flush()
		return false
	}
	pairs := make([]Pair, 0, len(spec.Pairs))
	for _, p := range spec.Pairs {
		pairs = append(pairs, Pair{Src: p.Src, Dst: p.Dst})
	}
	req := Request{ID: spec.VF, GuaranteeBps: spec.GuaranteeBps, VMs: len(spec.Pairs) + 1}
	links, amounts, err := c.ledger.Evaluate(spec.GuaranteeBps, pairs)
	if err != nil {
		c.rejected++
		c.event(req, "reject")
		c.flush()
		return false
	}
	for i, lid := range links {
		budget := c.cfg.Oversubscription * c.g.Link(lid).Capacity
		if c.ledger.CommittedBps(lid)+amounts[i] > budget+1e-9 {
			c.rejected++
			c.event(req, "reject")
			c.flush()
			return false
		}
	}
	if c.ledger.Commit(spec.VF, spec.GuaranteeBps, pairs) != nil {
		c.rejected++
		c.flush()
		return false
	}
	c.admitted++
	c.event(req, "admit")
	c.flush()
	return true
}

// ReleaseTenant implements chaos.Admission: the injector already tore the
// tenant down (or never materialized it); only the commitment returns.
func (c *Controller) ReleaseTenant(vf int32) bool {
	if !c.ledger.Release(vf) {
		return false
	}
	if hosts, ok := c.hostsOf[vf]; ok {
		c.fleet.Release(hosts)
		delete(c.hostsOf, vf)
	}
	c.released++
	c.event(Request{ID: vf}, "release")
	c.flush()
	return true
}

// ---- accounting ------------------------------------------------------------

// Stats summarizes the controller's lifetime counters.
type Stats struct {
	Submitted, Admitted, Rejected, Released int64
	Active                                  int
	Pending                                 int
}

// Stats returns the controller's lifetime counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Submitted: c.submitted,
		Admitted:  c.admitted,
		Rejected:  c.rejected,
		Released:  c.released,
		Active:    c.ledger.Tenants(),
		Pending:   len(c.queue),
	}
}

// event records an EvPlacement flight-recorder entry, joined to the
// request's admission trace.
func (c *Controller) event(req Request, note string) {
	if c.rec == nil {
		return
	}
	c.rec.Record(telemetry.Event{
		T:      int64(c.eng.Now()),
		Kind:   telemetry.EvPlacement,
		Entity: "placement.ctl",
		A:      int64(req.ID),
		B:      int64(req.VMs),
		V:      req.GuaranteeBps,
		Note:   note,
		Trace:  telemetry.SpanID(telemetry.TraceAdmission, int64(req.ID)),
		Span:   5,
	})
}

// stage traces one step of the admission pipeline
// (queue→place→commit→materialize) under the request's admission trace.
func (c *Controller) stage(id int32, note string, span uint64) {
	if c.rec == nil {
		return
	}
	c.rec.Record(telemetry.Event{
		T:      int64(c.eng.Now()),
		Kind:   telemetry.EvStage,
		Entity: "placement.ctl",
		A:      int64(id),
		Note:   note,
		Trace:  telemetry.SpanID(telemetry.TraceAdmission, int64(id)),
		Span:   span,
	})
}

// flush mirrors the counters into the registry.
func (c *Controller) flush() {
	reg := c.cfg.Telemetry
	if reg == nil {
		return
	}
	set := func(name string, v int64) {
		cnt := reg.Counter(name)
		if d := v - cnt.Value(); d > 0 {
			cnt.Add(d)
		}
	}
	set("placement.ctl.submitted", c.submitted)
	set("placement.ctl.admitted", c.admitted)
	set("placement.ctl.rejected", c.rejected)
	set("placement.ctl.released", c.released)
	reg.Gauge("placement.ctl.active_tenants").Set(float64(c.ledger.Tenants()))
	reg.Gauge("placement.ctl.max_subscription").SetMax(c.ledger.MaxSubscription())
}

var _ chaos.Admission = (*Controller)(nil)

// String names the controller's configuration for experiment labels.
func (c *Controller) String() string {
	return fmt.Sprintf("placement(policy=%s, oversub=%.2f, slots=%d)",
		c.cfg.Policy.Name(), c.cfg.Oversubscription, c.cfg.SlotsPerHost)
}
