package placement

import (
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

func churnController(policy Policy, oversub float64) (*Controller, *sim.Engine) {
	eng := sim.New()
	cl := topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
	return NewController(eng, cl.Graph, nil, Config{
		Policy: policy, Oversubscription: oversub, SlotsPerHost: 4,
	}), eng
}

func TestChurnDrainsClean(t *testing.T) {
	c, eng := churnController(FirstFit{}, 1.0)
	st := Churn(c, ChurnConfig{
		Arrivals:         500,
		MeanInterarrival: 20 * sim.Microsecond,
		MeanHold:         200 * sim.Microsecond,
		Seed:             1,
	})
	eng.Run()
	st.Finish(c)
	if st.Submitted != 500 {
		t.Fatalf("submitted %d", st.Submitted)
	}
	if st.Accepted+st.Rejected != st.Submitted {
		t.Fatalf("accepted %d + rejected %d != %d", st.Accepted, st.Rejected, st.Submitted)
	}
	if st.Accepted == 0 {
		t.Fatal("nothing admitted")
	}
	if st.PeakMaxSubscription > 1.0+1e-9 {
		t.Fatalf("peak subscription %.3f exceeds factor 1.0", st.PeakMaxSubscription)
	}
	if err := c.Ledger().Verify(); err != nil {
		t.Fatal(err)
	}
	// Every admitted tenant departed (holds are finite): zero residue.
	if n := c.Ledger().Tenants(); n != 0 {
		t.Fatalf("%d tenants still committed after drain", n)
	}
	for i := range c.g.Links {
		if got := c.Ledger().CommittedBps(topo.LinkID(i)); got != 0 {
			t.Fatalf("link %d residue %v", i, got)
		}
	}
	if st.TimeToAdmit.Len() != st.Accepted {
		t.Fatalf("time-to-admit samples %d != accepted %d", st.TimeToAdmit.Len(), st.Accepted)
	}
	if st.TimeToAdmit.Min() < 10 { // DecisionLatency default 10 µs
		t.Fatalf("min time-to-admit %.1f µs < service time", st.TimeToAdmit.Min())
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() (int, float64, float64) {
		c, eng := churnController(SubscriptionAware{}, 1.0)
		st := Churn(c, ChurnConfig{
			Arrivals:         300,
			MeanInterarrival: 15 * sim.Microsecond,
			MeanHold:         300 * sim.Microsecond,
			Guarantees:       []float64{5e8, 1e9, 2e9},
			Seed:             7,
		})
		eng.Run()
		st.Finish(c)
		return st.Accepted, st.PeakMaxSubscription, st.TimeToAdmit.Mean()
	}
	a1, p1, m1 := run()
	a2, p2, m2 := run()
	if a1 != a2 || p1 != p2 || m1 != m2 {
		t.Fatalf("churn not deterministic: (%d %.6f %.6f) vs (%d %.6f %.6f)",
			a1, p1, m1, a2, p2, m2)
	}
}

// Higher oversubscription factors admit strictly more load at load.
func TestChurnOversubscriptionMonotonic(t *testing.T) {
	accept := func(factor float64) float64 {
		c, eng := churnController(FirstFit{}, factor)
		st := Churn(c, ChurnConfig{
			Arrivals:         400,
			MeanInterarrival: 5 * sim.Microsecond,
			MeanHold:         2 * sim.Millisecond, // heavy load: holds ≫ interarrival
			Guarantees:       []float64{2e9},
			Seed:             3,
		})
		eng.Run()
		return st.AcceptRatio()
	}
	r1 := accept(1.0)
	r2 := accept(2.0)
	if r1 >= 1.0 {
		t.Fatalf("factor 1.0 accepted everything (%.2f) — load too light to test", r1)
	}
	if r2 <= r1 {
		t.Fatalf("factor 2.0 ratio %.3f not above factor 1.0 ratio %.3f", r2, r1)
	}
}
