package placement

import (
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

func closFleet() (*topo.Graph, *Fleet, *Ledger) {
	cl := topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
	return cl.Graph, NewFleet(cl.Graph, 4), NewLedger(cl.Graph, 0)
}

func TestFleetGrouping(t *testing.T) {
	_, fleet, _ := closFleet()
	if len(fleet.Hosts) != 32 {
		t.Fatalf("hosts = %d, want 32", len(fleet.Hosts))
	}
	if fleet.Groups != 8 {
		t.Fatalf("ToR groups = %d, want 8", fleet.Groups)
	}
	counts := make([]int, fleet.Groups)
	for _, grp := range fleet.ToRGroup {
		counts[grp]++
	}
	for g, n := range counts {
		if n != 4 {
			t.Fatalf("group %d has %d hosts, want 4", g, n)
		}
	}
	if fleet.FreeSlots() != 32*4 {
		t.Fatalf("free slots = %d", fleet.FreeSlots())
	}
}

func TestFirstFitPacks(t *testing.T) {
	_, fleet, ledger := closFleet()
	hosts := FirstFit{}.Place(Request{ID: 1, GuaranteeBps: 1e9, VMs: 3}, fleet, ledger)
	want := fleet.Hosts[:3]
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("first-fit hosts = %v, want prefix %v", hosts, want)
		}
	}
	// Fill host 0 and the policy moves on.
	fleet.Used[0] = fleet.SlotsPerHost
	hosts = FirstFit{}.Place(Request{ID: 2, GuaranteeBps: 1e9, VMs: 2}, fleet, ledger)
	if hosts[0] != fleet.Hosts[1] {
		t.Fatalf("first-fit ignored full host: %v", hosts)
	}
}

func TestSpreadCrossesRacks(t *testing.T) {
	_, fleet, ledger := closFleet()
	hosts := Spread{}.Place(Request{ID: 0, GuaranteeBps: 1e9, VMs: 4}, fleet, ledger)
	if len(hosts) != 4 {
		t.Fatalf("spread placed %d hosts", len(hosts))
	}
	seen := map[int]bool{}
	for _, h := range hosts {
		seen[fleet.ToRGroup[fleet.index[h]]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 VMs landed in %d racks, want 4 distinct", len(seen))
	}
	// Request-derived offset: a different ID starts in a different rack.
	other := Spread{}.Place(Request{ID: 1, GuaranteeBps: 1e9, VMs: 1}, fleet, ledger)
	if fleet.ToRGroup[fleet.index[other[0]]] == fleet.ToRGroup[fleet.index[hosts[0]]] {
		t.Fatal("different request IDs started in the same rack")
	}
}

func TestSpreadExhaustion(t *testing.T) {
	_, fleet, ledger := closFleet()
	for i := range fleet.Used {
		fleet.Used[i] = fleet.SlotsPerHost
	}
	if got := (Spread{}).Place(Request{ID: 1, GuaranteeBps: 1e9, VMs: 2}, fleet, ledger); got != nil {
		t.Fatalf("full fleet placed %v", got)
	}
}

// Subscription-aware placement must beat first-fit's bottleneck: after
// admitting a stream of identical tenants through each policy, the
// max-link subscription of the aware policy is no worse.
func TestSubscriptionAwareBeatsFirstFit(t *testing.T) {
	run := func(p Policy) (float64, int) {
		_, fleet, ledger := closFleet()
		admitted := 0
		for i := int32(1); i <= 24; i++ {
			req := Request{ID: i, GuaranteeBps: 2e9, VMs: 2}
			hosts := p.Place(req, fleet, ledger)
			if hosts == nil {
				continue
			}
			if err := ledger.Commit(req.ID, req.GuaranteeBps, ChainPairs(hosts)); err != nil {
				continue
			}
			fleet.Place(hosts)
			admitted++
		}
		return ledger.MaxSubscription(), admitted
	}
	ffMax, ffN := run(FirstFit{})
	saMax, saN := run(SubscriptionAware{})
	if saN < ffN {
		t.Fatalf("aware admitted %d < first-fit %d", saN, ffN)
	}
	if saMax > ffMax {
		t.Fatalf("aware bottleneck %.3f > first-fit %.3f", saMax, ffMax)
	}
	if saMax >= ffMax && saN == ffN {
		// Degenerate would mean the policy adds nothing on this shape —
		// with 2G hoses packed first-fit onto shared uplinks it must win.
		t.Fatalf("aware (%.3f) did not improve on first-fit (%.3f)", saMax, ffMax)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"first-fit", "spread", "subscription-aware"} {
		p := PolicyByName(name)
		if p == nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v", name, p)
		}
	}
	if PolicyByName("nope") != nil {
		t.Fatal("unknown name resolved")
	}
}
