package placement

import (
	"testing"

	"ufab/internal/chaos"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// fakeMat is a Materializer recording calls; failNext forces the next
// AddTenant to fail (exercising the commit rollback).
type fakeMat struct {
	added    []chaos.TenantSpec
	removed  []int32
	failNext bool
}

func (m *fakeMat) AddTenant(spec chaos.TenantSpec) bool {
	if m.failNext {
		m.failNext = false
		return false
	}
	m.added = append(m.added, spec)
	return true
}

func (m *fakeMat) RemoveTenant(vf int32) bool {
	m.removed = append(m.removed, vf)
	return true
}

func newTestController(t *testing.T, cfg Config) (*Controller, *sim.Engine, *fakeMat) {
	t.Helper()
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	mat := &fakeMat{}
	return NewController(eng, tb.Graph, mat, cfg), eng, mat
}

func TestControllerAdmit(t *testing.T) {
	c, eng, mat := newTestController(t, Config{})
	var got Decision
	c.Submit(Request{ID: 1, GuaranteeBps: 1e9, VMs: 3, WeightClass: 2}, func(d Decision) { got = d })
	eng.Run()
	if !got.Accepted {
		t.Fatalf("rejected: %s", got.Reason)
	}
	if len(got.Hosts) != 3 || len(got.Pairs) != 2 {
		t.Fatalf("hosts %v pairs %v", got.Hosts, got.Pairs)
	}
	if got.DecidedAt-got.SubmittedAt != sim.Time(10*sim.Microsecond) {
		t.Fatalf("decision latency = %v", got.DecidedAt-got.SubmittedAt)
	}
	if len(mat.added) != 1 || mat.added[0].VF != 1 || len(mat.added[0].Pairs) != 2 {
		t.Fatalf("materialized %+v", mat.added)
	}
	if err := c.Ledger().Verify(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Admitted != 1 || st.Active != 1 {
		t.Fatalf("stats %+v", st)
	}
	if !c.Release(1) {
		t.Fatal("release failed")
	}
	if len(mat.removed) != 1 || mat.removed[0] != 1 {
		t.Fatalf("removed %v", mat.removed)
	}
	if got := c.Fleet().FreeSlots(); got != 8*c.cfg.SlotsPerHost {
		t.Fatalf("slots not returned: free = %d", got)
	}
}

// The testbed's 8 hosts have 10G uplinks: at factor 1.0 the host uplink
// admits at most 10G of Σ-guarantee, so the third 4G tenant chain
// anchored on the same first-fit hosts must bounce with "headroom".
func TestControllerHeadroomReject(t *testing.T) {
	c, eng, _ := newTestController(t, Config{SlotsPerHost: 16})
	var decisions []Decision
	for i := int32(1); i <= 3; i++ {
		c.Submit(Request{ID: i, GuaranteeBps: 4e9, VMs: 2}, func(d Decision) { decisions = append(decisions, d) })
	}
	eng.Run()
	if len(decisions) != 3 {
		t.Fatalf("%d decisions", len(decisions))
	}
	if !decisions[0].Accepted || !decisions[1].Accepted {
		t.Fatalf("first two rejected: %+v", decisions)
	}
	if decisions[2].Accepted || decisions[2].Reason != "headroom" {
		t.Fatalf("third decision = %+v, want headroom reject", decisions[2])
	}
	// At oversubscription 2.0 the same third tenant fits.
	c2, eng2, _ := newTestController(t, Config{SlotsPerHost: 16, Oversubscription: 2.0})
	var last Decision
	for i := int32(1); i <= 3; i++ {
		c2.Submit(Request{ID: i, GuaranteeBps: 4e9, VMs: 2}, func(d Decision) { last = d })
	}
	eng2.Run()
	if !last.Accepted {
		t.Fatalf("oversub=2 still rejected: %s", last.Reason)
	}
}

func TestControllerSlotsExhausted(t *testing.T) {
	c, eng, _ := newTestController(t, Config{SlotsPerHost: 1})
	var decisions []Decision
	// 8 hosts × 1 slot: two 4-VM tenants fill the fleet; the third has
	// nowhere to go.
	for i := int32(1); i <= 3; i++ {
		c.Submit(Request{ID: i, GuaranteeBps: 1e8, VMs: 4}, func(d Decision) { decisions = append(decisions, d) })
	}
	eng.Run()
	if !decisions[0].Accepted || !decisions[1].Accepted {
		t.Fatalf("fleet-filling tenants rejected: %+v", decisions)
	}
	if decisions[2].Accepted || decisions[2].Reason != "placement" {
		t.Fatalf("third = %+v, want placement reject", decisions[2])
	}
}

func TestControllerMaterializeRollback(t *testing.T) {
	c, eng, mat := newTestController(t, Config{})
	mat.failNext = true
	var got Decision
	c.Submit(Request{ID: 1, GuaranteeBps: 1e9, VMs: 2}, func(d Decision) { got = d })
	eng.Run()
	if got.Accepted || got.Reason != "materialize" {
		t.Fatalf("decision = %+v", got)
	}
	if c.Ledger().Has(1) {
		t.Fatal("failed materialization left ledger commitment")
	}
	if c.Fleet().FreeSlots() != 8*c.cfg.SlotsPerHost {
		t.Fatal("failed materialization consumed slots")
	}
}

func TestControllerFIFOLatency(t *testing.T) {
	c, eng, _ := newTestController(t, Config{DecisionLatency: 5 * sim.Microsecond})
	var waits []sim.Duration
	for i := int32(1); i <= 3; i++ {
		c.Submit(Request{ID: i, GuaranteeBps: 1e8, VMs: 2}, func(d Decision) {
			waits = append(waits, sim.Duration(d.DecidedAt-d.SubmittedAt))
		})
	}
	eng.Run()
	want := []sim.Duration{5 * sim.Microsecond, 10 * sim.Microsecond, 15 * sim.Microsecond}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("request %d waited %v, want %v (FIFO queue)", i+1, waits[i], want[i])
		}
	}
}

func TestControllerInvalidRequests(t *testing.T) {
	c, eng, _ := newTestController(t, Config{})
	var rs []Decision
	c.Submit(Request{ID: 1, GuaranteeBps: 0, VMs: 2}, func(d Decision) { rs = append(rs, d) })
	c.Submit(Request{ID: 2, GuaranteeBps: 1e9, VMs: 0}, func(d Decision) { rs = append(rs, d) })
	c.Submit(Request{ID: 3, GuaranteeBps: 1e9, VMs: 2}, func(d Decision) { rs = append(rs, d) })
	c.Submit(Request{ID: 3, GuaranteeBps: 1e9, VMs: 2}, func(d Decision) { rs = append(rs, d) })
	eng.Run()
	if rs[0].Accepted || rs[0].Reason != "invalid" {
		t.Fatalf("zero guarantee: %+v", rs[0])
	}
	if rs[1].Accepted || rs[1].Reason != "invalid" {
		t.Fatalf("zero VMs: %+v", rs[1])
	}
	if !rs[2].Accepted {
		t.Fatalf("valid request rejected: %+v", rs[2])
	}
	if rs[3].Accepted || rs[3].Reason != "invalid" {
		t.Fatalf("duplicate id: %+v", rs[3])
	}
}

// AdmitSpec/ReleaseTenant implement the chaos.Admission gate: explicit
// specs check headroom against the same ledger.
func TestControllerAdmitSpec(t *testing.T) {
	eng := sim.New()
	tb := topo.NewTestbed(topo.TestbedConfig{})
	c := NewController(eng, tb.Graph, nil, Config{})
	s1, s2 := tb.Servers[0], tb.Servers[1]
	ok := c.AdmitSpec(chaos.TenantSpec{VF: 1, GuaranteeBps: 6e9,
		Pairs: []chaos.PairSpec{{Src: s1, Dst: s2}}})
	if !ok {
		t.Fatal("first 6G spec rejected")
	}
	// Second 6G chain over the same hosts exceeds the 10G uplink.
	ok = c.AdmitSpec(chaos.TenantSpec{VF: 2, GuaranteeBps: 6e9,
		Pairs: []chaos.PairSpec{{Src: s1, Dst: s2}}})
	if ok {
		t.Fatal("oversubscribing spec admitted")
	}
	if !c.ReleaseTenant(1) {
		t.Fatal("release failed")
	}
	ok = c.AdmitSpec(chaos.TenantSpec{VF: 2, GuaranteeBps: 6e9,
		Pairs: []chaos.PairSpec{{Src: s1, Dst: s2}}})
	if !ok {
		t.Fatal("spec rejected after headroom freed")
	}
	if err := c.Ledger().Verify(); err != nil {
		t.Fatal(err)
	}
}
