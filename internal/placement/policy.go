package placement

import (
	"ufab/internal/topo"
)

// Fleet is the placement-time view of the hosts: static grouping (which
// ToR each host hangs off) plus the controller-maintained slot occupancy.
// Policies read it; only the controller mutates it.
type Fleet struct {
	// Hosts lists every host in graph order; Used and ToRGroup are
	// parallel to it.
	Hosts []topo.NodeID
	// Used is the number of VMs currently placed on each host.
	Used []int
	// SlotsPerHost caps VMs per host.
	SlotsPerHost int
	// ToRGroup is each host's rack index (hosts under the same ToR share
	// one), the spread policy's failure/contention domain.
	ToRGroup []int
	// Groups is the number of distinct ToR groups.
	Groups int
	// Unschedulable marks hosts no policy may place onto — failed nodes
	// and hosts being drained. Existing placements are unaffected; the
	// reconciler evacuates them separately.
	Unschedulable []bool

	index map[topo.NodeID]int
}

// NewFleet derives the fleet view from the graph: hosts in graph order,
// grouped by the switch their first uplink reaches.
func NewFleet(g *topo.Graph, slotsPerHost int) *Fleet {
	f := &Fleet{SlotsPerHost: slotsPerHost, index: make(map[topo.NodeID]int)}
	torOf := make(map[topo.NodeID]int)
	for _, n := range g.Nodes {
		if n.Kind != topo.Host || len(n.Out) == 0 {
			continue
		}
		tor := g.Link(n.Out[0]).Dst
		grp, ok := torOf[tor]
		if !ok {
			grp = f.Groups
			torOf[tor] = grp
			f.Groups++
		}
		f.index[n.ID] = len(f.Hosts)
		f.Hosts = append(f.Hosts, n.ID)
		f.ToRGroup = append(f.ToRGroup, grp)
	}
	f.Used = make([]int, len(f.Hosts))
	f.Unschedulable = make([]bool, len(f.Hosts))
	return f
}

// free reports whether host index i can accept another VM.
func (f *Fleet) free(i int) bool {
	return !f.Unschedulable[i] && f.Used[i] < f.SlotsPerHost
}

// FreeSlots returns the total free VM slots across schedulable hosts.
func (f *Fleet) FreeSlots() int {
	n := 0
	for i, u := range f.Used {
		if f.Unschedulable[i] {
			continue
		}
		if s := f.SlotsPerHost - u; s > 0 {
			n += s
		}
	}
	return n
}

// SetUnschedulable cordons (or uncordons) a host; unknown hosts are
// ignored. Returns whether the host is part of the fleet.
func (f *Fleet) SetUnschedulable(h topo.NodeID, v bool) bool {
	i, ok := f.index[h]
	if !ok {
		return false
	}
	f.Unschedulable[i] = v
	return true
}

// HostIndex returns the fleet index of a host (-1 if unknown).
func (f *Fleet) HostIndex(h topo.NodeID) int {
	i, ok := f.index[h]
	if !ok {
		return -1
	}
	return i
}

// Place/Release update occupancy for a decided placement.
func (f *Fleet) Place(hosts []topo.NodeID) {
	for _, h := range hosts {
		f.Used[f.index[h]]++
	}
}

func (f *Fleet) Release(hosts []topo.NodeID) {
	for _, h := range hosts {
		f.Used[f.index[h]]--
	}
}

// LedgerView is the read/what-if surface a policy needs from a
// subscription ledger. *Ledger implements it, and so does the control
// plane's sharded ledger (ctlplane.ShardedLedger) — policies stay
// agnostic of which account backs them.
type LedgerView interface {
	// Evaluate returns, without committing, the links a placement would
	// touch and the bps it would add to each.
	Evaluate(guaranteeBps float64, pairs []Pair) ([]topo.LinkID, []float64, error)
	// CommittedBps returns the Σ-guarantee currently committed on a link.
	CommittedBps(lid topo.LinkID) float64
	// Graph returns the topology the ledger accounts over.
	Graph() *topo.Graph
}

// Policy picks hosts for a tenant's VMs. Place returns one distinct host
// per VM (nil when the fleet cannot host the request); it must not mutate
// the fleet or the ledger — the controller commits the outcome after the
// headroom check passes. Implementations must be deterministic.
type Policy interface {
	Name() string
	Place(req Request, fleet *Fleet, ledger LedgerView) []topo.NodeID
}

// ---- first-fit -------------------------------------------------------------

// FirstFit packs VMs onto the lowest-numbered hosts with free slots —
// the densest (and most contention-prone) baseline.
type FirstFit struct{}

func (FirstFit) Name() string { return "first-fit" }

func (FirstFit) Place(req Request, fleet *Fleet, _ LedgerView) []topo.NodeID {
	var hosts []topo.NodeID
	for i := range fleet.Hosts {
		if fleet.free(i) {
			hosts = append(hosts, fleet.Hosts[i])
			if len(hosts) == req.VMs {
				return hosts
			}
		}
	}
	return nil
}

// ---- spread ----------------------------------------------------------------

// Spread stripes a tenant's VMs across ToR groups round-robin, starting
// at a request-derived offset so successive tenants don't all start in
// rack 0. Within a group it picks the least-used host (lowest id on tie).
type Spread struct{}

func (Spread) Name() string { return "spread" }

func (Spread) Place(req Request, fleet *Fleet, _ LedgerView) []topo.NodeID {
	if fleet.Groups == 0 {
		return nil
	}
	taken := make(map[topo.NodeID]bool, req.VMs)
	var hosts []topo.NodeID
	start := int(req.ID) % fleet.Groups
	if start < 0 {
		start += fleet.Groups
	}
	for round := 0; len(hosts) < req.VMs; round++ {
		progressed := false
		for gi := 0; gi < fleet.Groups && len(hosts) < req.VMs; gi++ {
			grp := (start + gi) % fleet.Groups
			// Least-used free host of this group not already taken.
			best := -1
			for i := range fleet.Hosts {
				if fleet.ToRGroup[i] != grp || !fleet.free(i) || taken[fleet.Hosts[i]] {
					continue
				}
				if best < 0 || fleet.Used[i] < fleet.Used[best] {
					best = i
				}
			}
			if best >= 0 {
				hosts = append(hosts, fleet.Hosts[best])
				taken[fleet.Hosts[best]] = true
				progressed = true
			}
		}
		if !progressed {
			return nil // fleet exhausted before req.VMs distinct hosts
		}
	}
	return hosts
}

// ---- subscription-aware ----------------------------------------------------

// SubscriptionAware mirrors μFAB-E's subscription-aware path migration at
// placement time: VMs are placed one at a time, and each candidate host
// is scored by the maximum post-admission link subscription the new
// chain pair (previous VM's host → candidate) would cause. The candidate
// minimizing that bottleneck wins (least-used host on tie, then lowest
// id). The first VM anchors on the least-used free host.
type SubscriptionAware struct{}

func (SubscriptionAware) Name() string { return "subscription-aware" }

func (SubscriptionAware) Place(req Request, fleet *Fleet, ledger LedgerView) []topo.NodeID {
	taken := make(map[topo.NodeID]bool, req.VMs)
	// Pending contributions of the pairs this placement has already
	// decided, per link.
	pending := make(map[topo.LinkID]float64)
	var hosts []topo.NodeID

	anchor := -1
	for i := range fleet.Hosts {
		if !fleet.free(i) {
			continue
		}
		if anchor < 0 || fleet.Used[i] < fleet.Used[anchor] {
			anchor = i
		}
	}
	if anchor < 0 {
		return nil
	}
	hosts = append(hosts, fleet.Hosts[anchor])
	taken[fleet.Hosts[anchor]] = true

	onePair := make([]Pair, 1)
	for len(hosts) < req.VMs {
		prev := hosts[len(hosts)-1]
		best := -1
		var bestScore float64
		for i := range fleet.Hosts {
			h := fleet.Hosts[i]
			if !fleet.free(i) || taken[h] {
				continue
			}
			onePair[0] = Pair{Src: prev, Dst: h}
			links, amounts, err := ledger.Evaluate(req.GuaranteeBps, onePair)
			if err != nil {
				continue
			}
			score := 0.0
			for j, lid := range links {
				sub := (ledger.CommittedBps(lid) + pending[lid] + amounts[j]) /
					ledger.Graph().Link(lid).Capacity
				if sub > score {
					score = sub
				}
			}
			if best < 0 || score < bestScore ||
				(score == bestScore && fleet.Used[i] < fleet.Used[best]) {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			return nil
		}
		h := fleet.Hosts[best]
		onePair[0] = Pair{Src: prev, Dst: h}
		links, amounts, _ := ledger.Evaluate(req.GuaranteeBps, onePair)
		for j, lid := range links {
			pending[lid] += amounts[j]
		}
		hosts = append(hosts, h)
		taken[h] = true
	}
	return hosts
}

// PolicyByName resolves a policy name ("first-fit", "spread",
// "subscription-aware"); nil for unknown names.
func PolicyByName(name string) Policy {
	switch name {
	case "first-fit":
		return FirstFit{}
	case "spread":
		return Spread{}
	case "subscription-aware":
		return SubscriptionAware{}
	}
	return nil
}
