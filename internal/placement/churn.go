package placement

import (
	"math/rand"

	"ufab/internal/sim"
	"ufab/internal/stats"
)

// ChurnConfig drives an open-loop tenant arrival/departure process
// against a Controller. The JSON tags make a churn spec a first-class
// part of serialized scenarios (the fuzzer's case files embed one).
type ChurnConfig struct {
	// Arrivals is the total number of tenant requests to submit.
	Arrivals int `json:"arrivals"`
	// MeanInterarrival is the mean of the exponential arrival spacing.
	MeanInterarrival sim.Duration `json:"mean_interarrival_ps"`
	// MeanHold is the mean tenant lifetime; an admitted tenant departs
	// (Release) after an exponential hold.
	MeanHold sim.Duration `json:"mean_hold_ps"`
	// VMsMin/VMsMax bound the uniform VM-count draw (default 2..4).
	VMsMin int `json:"vms_min,omitempty"`
	VMsMax int `json:"vms_max,omitempty"`
	// Guarantees are the per-VM hose choices drawn uniformly (default
	// {1 Gbps}).
	Guarantees []float64 `json:"guarantees_bps,omitempty"`
	// BacklogBytes per materialized pair (0 = infinite backlog).
	BacklogBytes int64 `json:"backlog_bytes,omitempty"`
	// FirstID numbers the generated tenants starting here (default 1).
	FirstID int32 `json:"first_id,omitempty"`
	// Seed drives the arrival process.
	Seed int64 `json:"seed,omitempty"`
}

// ChurnStats aggregates one churn run.
type ChurnStats struct {
	Submitted, Accepted, Rejected int
	// RejectedBy counts rejections per reason.
	RejectedBy map[string]int
	// TimeToAdmit is the submit→decision latency of accepted requests, in
	// simulated microseconds.
	TimeToAdmit stats.Samples
	// PeakMaxSubscription is the highest bottleneck-link subscription the
	// ledger ever reached; PeakTenants the largest concurrent tenant set.
	PeakMaxSubscription float64
	PeakTenants         int
	// FinalMeanSubscription is the fleet's committed utilization when the
	// run ended.
	FinalMeanSubscription float64
}

// AcceptRatio returns accepted/submitted (1 when nothing was submitted).
func (s *ChurnStats) AcceptRatio() float64 {
	if s.Submitted == 0 {
		return 1
	}
	return float64(s.Accepted) / float64(s.Submitted)
}

// Churn schedules cfg.Arrivals open-loop tenant requests on the
// controller's engine, each departing after its hold time if admitted,
// and returns the stats collector (populated as the simulation runs; read
// it after eng.Run). Arrival times, VM counts, guarantees and holds are
// drawn from a private seeded RNG, so a churn run is deterministic.
func Churn(c *Controller, cfg ChurnConfig) *ChurnStats {
	if cfg.VMsMin == 0 {
		cfg.VMsMin = 2
	}
	if cfg.VMsMax < cfg.VMsMin {
		cfg.VMsMax = cfg.VMsMin + 2
	}
	if len(cfg.Guarantees) == 0 {
		cfg.Guarantees = []float64{1e9}
	}
	if cfg.FirstID == 0 {
		cfg.FirstID = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x706c6163))
	st := &ChurnStats{RejectedBy: make(map[string]int)}

	at := c.eng.Now()
	for i := 0; i < cfg.Arrivals; i++ {
		at += sim.Time(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		req := Request{
			ID:           cfg.FirstID + int32(i),
			GuaranteeBps: cfg.Guarantees[rng.Intn(len(cfg.Guarantees))],
			VMs:          cfg.VMsMin + rng.Intn(cfg.VMsMax-cfg.VMsMin+1),
			WeightClass:  rng.Intn(8),
			BacklogBytes: cfg.BacklogBytes,
		}
		hold := sim.Duration(rng.ExpFloat64() * float64(cfg.MeanHold))
		c.eng.At(at, func() {
			st.Submitted++
			c.Submit(req, func(d Decision) {
				if !d.Accepted {
					st.Rejected++
					st.RejectedBy[d.Reason]++
					return
				}
				st.Accepted++
				st.TimeToAdmit.Add(float64(d.DecidedAt-d.SubmittedAt) / 1e6)
				if s := c.ledger.MaxSubscription(); s > st.PeakMaxSubscription {
					st.PeakMaxSubscription = s
				}
				if n := c.ledger.Tenants(); n > st.PeakTenants {
					st.PeakTenants = n
				}
				c.eng.At(c.eng.Now()+sim.Time(hold), func() {
					c.Release(req.ID)
				})
			})
		})
	}
	return st
}

// Finish snapshots end-of-run ledger state into the stats. Call after the
// engine drains (departures may still be pending when the last arrival
// decides).
func (s *ChurnStats) Finish(c *Controller) {
	s.FinalMeanSubscription = c.ledger.MeanSubscription()
}
