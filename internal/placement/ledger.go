// Package placement is μFAB's tenant lifecycle control plane: it decides
// whether a tenant fits (admission control against a per-link subscription
// ledger), where its VMs go (pluggable placement policies), and drives
// large-scale open-loop churn over a simulated fleet. The paper assumes an
// admitted tenant set whose Σ-guarantees respect every link's capacity
// (the precondition of the Eqn-1 hose guarantee and the invariant the
// μFAB-C Φ_l registers meter at run time); this package is the layer that
// establishes it before the data plane ever sees a packet.
//
// The package sits beside vfabric, not above it: admitted tenants
// materialize through the chaos.TenantSpec churn surface (any
// Materializer — vfabric.Fabric implements it), and the read side of the
// ledger plugs into vfabric's auditor as the ledger_bound invariant.
package placement

import (
	"fmt"
	"sort"

	"ufab/internal/topo"
)

// Pair is one VM-pair of a tenant placement: traffic from the VM on Src
// to the VM on Dst.
type Pair struct {
	Src, Dst topo.NodeID
}

// Ledger is the per-link Σ-guarantee subscription account. For every
// admitted tenant it commits the tenant's hose guarantee G on every link
// of each VM-pair's ECMP path union — a conservative upper bound on the
// Φ_l·BU the pair can ever register, since μFAB-E samples its candidate
// paths from exactly that equal-cost set and registers at most G per pair
// per link. Commit and Release are incremental: O(affected links), never
// a full recompute. Verify recomputes from scratch for testing.
//
// A Ledger is single-goroutine, like the simulation engine it serves.
type Ledger struct {
	g *topo.Graph
	// maxPaths bounds the per-pair ECMP enumeration (0 = the full
	// equal-cost set, a superset of what μFAB-E samples).
	maxPaths int

	committed []float64 // bps, indexed by LinkID
	tenants   map[int32]*ledgerEntry
	order     []int32 // admitted ids in commit order (deterministic Verify)

	// Scratch for delta computation, reused across calls.
	stamp   []int64
	seq     int64
	scratch []float64
	touched []topo.LinkID
}

// ledgerEntry stores a tenant's inputs (for Verify's recompute) and the
// exact per-link amounts committed (so Release subtracts precisely what
// Commit added, leaving zero residue).
type ledgerEntry struct {
	guaranteeBps float64
	pairs        []Pair
	links        []topo.LinkID
	amounts      []float64
}

// NewLedger creates a ledger over the graph. maxPaths bounds the ECMP
// enumeration per pair (0 = all equal-cost paths).
func NewLedger(g *topo.Graph, maxPaths int) *Ledger {
	n := len(g.Links)
	return &Ledger{
		g:         g,
		maxPaths:  maxPaths,
		committed: make([]float64, n),
		tenants:   make(map[int32]*ledgerEntry),
		stamp:     make([]int64, n),
		scratch:   make([]float64, n),
	}
}

// delta computes the per-link commitment of (guaranteeBps, pairs) into
// the reusable scratch buffers and returns the touched links sorted by
// id. Each pair contributes G once per link of its ECMP path union
// (multiple candidate paths sharing a link count once, matching the
// μFAB-C register's per-pair dedup); separate pairs sharing a link each
// contribute.
func (l *Ledger) delta(guaranteeBps float64, pairs []Pair) ([]topo.LinkID, []float64, error) {
	l.touched = l.touched[:0]
	for _, pr := range pairs {
		paths := l.g.Paths(pr.Src, pr.Dst, l.maxPaths)
		if len(paths) == 0 {
			return nil, nil, fmt.Errorf("placement: no path %d→%d", pr.Src, pr.Dst)
		}
		l.seq++
		for _, p := range paths {
			for _, lid := range p {
				if l.stamp[lid] != l.seq {
					// First time this pair sees the link.
					l.stamp[lid] = l.seq
					if l.scratch[lid] == 0 {
						l.touched = append(l.touched, lid)
					}
					l.scratch[lid] += guaranteeBps
				}
			}
		}
	}
	sort.Slice(l.touched, func(i, j int) bool { return l.touched[i] < l.touched[j] })
	amounts := make([]float64, len(l.touched))
	links := make([]topo.LinkID, len(l.touched))
	for i, lid := range l.touched {
		links[i] = lid
		amounts[i] = l.scratch[lid]
		l.scratch[lid] = 0 // reset for the next call
	}
	return links, amounts, nil
}

// Evaluate returns, without committing anything, the links a placement
// would touch and the bps it would add to each. The returned slices are
// freshly allocated; an error means a pair has no path.
func (l *Ledger) Evaluate(guaranteeBps float64, pairs []Pair) ([]topo.LinkID, []float64, error) {
	return l.delta(guaranteeBps, pairs)
}

// Commit admits a tenant: its guarantee is added to every link of each
// pair's ECMP union. Errors (duplicate id, non-positive guarantee,
// unroutable pair) leave the ledger untouched.
func (l *Ledger) Commit(id int32, guaranteeBps float64, pairs []Pair) error {
	if l.tenants[id] != nil {
		return fmt.Errorf("placement: tenant %d already committed", id)
	}
	if guaranteeBps <= 0 {
		return fmt.Errorf("placement: tenant %d non-positive guarantee %v", id, guaranteeBps)
	}
	links, amounts, err := l.delta(guaranteeBps, pairs)
	if err != nil {
		return err
	}
	for i, lid := range links {
		l.committed[lid] += amounts[i]
	}
	e := &ledgerEntry{guaranteeBps: guaranteeBps, links: links, amounts: amounts}
	e.pairs = append(e.pairs, pairs...)
	l.tenants[id] = e
	l.order = append(l.order, id)
	return nil
}

// Release withdraws a tenant's commitment, subtracting exactly the
// amounts Commit added. Returns false for an unknown id.
func (l *Ledger) Release(id int32) bool {
	e := l.tenants[id]
	if e == nil {
		return false
	}
	for i, lid := range e.links {
		l.committed[lid] -= e.amounts[i]
		// Clamp float residue so long churn runs can't drift below zero.
		if l.committed[lid] < 0 && l.committed[lid] > -1e-6 {
			l.committed[lid] = 0
		}
	}
	delete(l.tenants, id)
	for i, tid := range l.order {
		if tid == id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	return true
}

// Graph returns the topology the ledger accounts over.
func (l *Ledger) Graph() *topo.Graph { return l.g }

// Has reports whether the tenant currently holds a commitment.
func (l *Ledger) Has(id int32) bool { return l.tenants[id] != nil }

// Tenants returns the number of tenants currently committed.
func (l *Ledger) Tenants() int { return len(l.tenants) }

// CommittedBps returns the Σ-guarantee currently committed on the link,
// in bits per second. It implements vfabric.SubscriptionLedger.
func (l *Ledger) CommittedBps(lid topo.LinkID) float64 { return l.committed[lid] }

// Subscription returns the link's committed subscription as a fraction of
// its physical capacity.
func (l *Ledger) Subscription(lid topo.LinkID) float64 {
	return l.committed[lid] / l.g.Link(lid).Capacity
}

// MaxSubscription returns the highest committed/capacity ratio across all
// links, the fleet's bottleneck subscription.
func (l *Ledger) MaxSubscription() float64 {
	max := 0.0
	for i := range l.committed {
		if s := l.committed[i] / l.g.Links[i].Capacity; s > max {
			max = s
		}
	}
	return max
}

// MeanSubscription returns the mean committed/capacity ratio across all
// links — the fleet's committed utilization.
func (l *Ledger) MeanSubscription() float64 {
	if len(l.committed) == 0 {
		return 0
	}
	sum := 0.0
	for i := range l.committed {
		sum += l.committed[i] / l.g.Links[i].Capacity
	}
	return sum / float64(len(l.committed))
}

// Verify recomputes every link's commitment from scratch from the stored
// tenant inputs and compares it with the incrementally maintained state.
// It returns the first discrepancy found (nil when consistent). Testing
// only: it is O(tenants × pairs × paths).
func (l *Ledger) Verify() error {
	full := make([]float64, len(l.committed))
	for _, id := range l.order {
		e := l.tenants[id]
		links, amounts, err := l.delta(e.guaranteeBps, e.pairs)
		if err != nil {
			return fmt.Errorf("placement: verify: tenant %d: %v", id, err)
		}
		for i, lid := range links {
			full[lid] += amounts[i]
		}
	}
	for i := range full {
		diff := l.committed[i] - full[i]
		if diff < 0 {
			diff = -diff
		}
		tol := 1e-6 * (1 + full[i])
		if diff > tol {
			return fmt.Errorf("placement: verify: link %d incremental %v != recomputed %v",
				i, l.committed[i], full[i])
		}
	}
	return nil
}

// ChainPairs materializes the hose model over an ordered host list: VM i
// sends to VM i+1, giving every host at most one outgoing pair — so the
// per-host hose constraint (a VM sends at most G) maps exactly onto one
// committed pair per source.
func ChainPairs(hosts []topo.NodeID) []Pair {
	if len(hosts) < 2 {
		return nil
	}
	pairs := make([]Pair, 0, len(hosts)-1)
	for i := 0; i+1 < len(hosts); i++ {
		pairs = append(pairs, Pair{Src: hosts[i], Dst: hosts[i+1]})
	}
	return pairs
}
