package placement

import (
	"math/rand"
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
)

func testbedGraph() (*topo.Graph, []topo.NodeID) {
	tb := topo.NewTestbed(topo.TestbedConfig{})
	return tb.Graph, tb.Servers
}

func TestLedgerCommitRelease(t *testing.T) {
	g, servers := testbedGraph()
	l := NewLedger(g, 0)
	pairs := []Pair{{Src: servers[0], Dst: servers[4]}}
	if err := l.Commit(1, 2e9, pairs); err != nil {
		t.Fatal(err)
	}
	// The host uplink S1→ToR carries the pair on every ECMP path: it must
	// hold exactly the guarantee.
	up := g.Node(servers[0]).Out[0]
	if got := l.CommittedBps(up); got != 2e9 {
		t.Fatalf("uplink committed = %v, want 2e9", got)
	}
	if l.MaxSubscription() <= 0 {
		t.Fatal("MaxSubscription = 0 after commit")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if !l.Release(1) {
		t.Fatal("Release returned false")
	}
	for i := range g.Links {
		if got := l.CommittedBps(topo.LinkID(i)); got != 0 {
			t.Fatalf("link %d residue %v after release", i, got)
		}
	}
	if l.Release(1) {
		t.Fatal("double release succeeded")
	}
}

func TestLedgerRejects(t *testing.T) {
	g, servers := testbedGraph()
	l := NewLedger(g, 0)
	pairs := []Pair{{Src: servers[0], Dst: servers[1]}}
	if err := l.Commit(1, 0, pairs); err == nil {
		t.Fatal("zero guarantee accepted")
	}
	if err := l.Commit(1, 1e9, pairs); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1, 1e9, pairs); err == nil {
		t.Fatal("duplicate id accepted")
	}
	// Unroutable pair: same node (Paths returns nil).
	if err := l.Commit(2, 1e9, []Pair{{Src: servers[0], Dst: servers[0]}}); err == nil {
		t.Fatal("self-loop pair accepted")
	}
	if l.Has(2) {
		t.Fatal("failed commit left tenant registered")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Multiple pairs of one tenant sharing a link each contribute; multiple
// candidate paths of one pair sharing a link contribute once.
func TestLedgerPairDedup(t *testing.T) {
	g, servers := testbedGraph()
	l := NewLedger(g, 0)
	// Two pairs, both sourced at S1: the S1 uplink carries both chains.
	pairs := []Pair{
		{Src: servers[0], Dst: servers[4]},
		{Src: servers[0], Dst: servers[5]},
	}
	if err := l.Commit(1, 1e9, pairs); err != nil {
		t.Fatal(err)
	}
	up := g.Node(servers[0]).Out[0]
	if got := l.CommittedBps(up); got != 2e9 {
		t.Fatalf("shared uplink = %v, want 2e9 (once per pair)", got)
	}
	// A cross-pod core link appears on several ECMP paths of one pair but
	// must carry at most 1e9 per pair.
	for i := range g.Links {
		if got := l.CommittedBps(topo.LinkID(i)); got > 2e9+1e-6 {
			t.Fatalf("link %d committed %v, exceeds 2 pairs × G", i, got)
		}
	}
}

func TestLedgerMaxPathsBound(t *testing.T) {
	g, servers := testbedGraph()
	all := NewLedger(g, 0)
	one := NewLedger(g, 1)
	pairs := []Pair{{Src: servers[0], Dst: servers[4]}}
	if err := all.Commit(1, 1e9, pairs); err != nil {
		t.Fatal(err)
	}
	if err := one.Commit(1, 1e9, pairs); err != nil {
		t.Fatal(err)
	}
	nAll, nOne := 0, 0
	for i := range g.Links {
		if all.CommittedBps(topo.LinkID(i)) > 0 {
			nAll++
		}
		if one.CommittedBps(topo.LinkID(i)) > 0 {
			nOne++
		}
	}
	if nOne >= nAll {
		t.Fatalf("maxPaths=1 touched %d links, full union %d — bound has no effect", nOne, nAll)
	}
}

// Property (quick-check style, seeded): arbitrary admit/release
// interleavings leave the incrementally maintained ledger equal to
// Verify()'s from-scratch recompute, with zero residue once every tenant
// has departed. This test is in the -race CI row.
func TestLedgerPropertyRandomChurn(t *testing.T) {
	cl := topo.NewClos(topo.ClosConfig{
		Pods: 4, ToRsPerPod: 2, AggsPerPod: 2, Cores: 4, HostsPerToR: 4,
		LinkCapacity: topo.Gbps(10), PropDelay: sim.Microsecond,
	})
	g, hosts := cl.Graph, cl.Hosts
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger(g, 0)
		live := []int32{}
		next := int32(1)
		for op := 0; op < 400; op++ {
			if len(live) == 0 || rng.Intn(100) < 55 {
				// Admit a tenant with 1..4 random pairs.
				n := 1 + rng.Intn(4)
				pairs := make([]Pair, 0, n)
				for len(pairs) < n {
					s := hosts[rng.Intn(len(hosts))]
					d := hosts[rng.Intn(len(hosts))]
					if s == d {
						continue
					}
					pairs = append(pairs, Pair{Src: s, Dst: d})
				}
				gbps := float64(1+rng.Intn(40)) * 1e8
				if err := l.Commit(next, gbps, pairs); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				live = append(live, next)
				next++
			} else {
				i := rng.Intn(len(live))
				if !l.Release(live[i]) {
					t.Fatalf("seed %d op %d: release %d failed", seed, op, live[i])
				}
				live = append(live[:i], live[i+1:]...)
			}
			if op%20 == 0 {
				if err := l.Verify(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if err := l.Verify(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		// Drain everyone: the ledger must return to exactly zero.
		for _, id := range append([]int32{}, live...) {
			l.Release(id)
		}
		for i := range g.Links {
			if got := l.CommittedBps(topo.LinkID(i)); got != 0 {
				t.Fatalf("seed %d: link %d residue %v after full drain", seed, i, got)
			}
		}
		if err := l.Verify(); err != nil {
			t.Fatalf("seed %d drained: %v", seed, err)
		}
	}
}

func TestChainPairs(t *testing.T) {
	hosts := []topo.NodeID{3, 7, 9}
	pairs := ChainPairs(hosts)
	want := []Pair{{Src: 3, Dst: 7}, {Src: 7, Dst: 9}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
	if ChainPairs(hosts[:1]) != nil {
		t.Fatal("single host should yield no pairs")
	}
}
