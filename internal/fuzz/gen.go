package fuzz

import (
	"fmt"
	"math/rand"

	"ufab/internal/chaos"
	"ufab/internal/dataplane"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// Generator ID bands: standing tenants take 1.., churn tenants 100..,
// chaos arrivals 500.. — disjoint so the three populations can never
// collide on a VF id by construction (collisions are still legal input;
// admission rejects them).
const (
	churnFirstID = 100
	chaosFirstID = 500
)

// Generate derives the case for a seed. The same seed always yields the
// byte-identical case: every choice comes from one private seeded RNG,
// consumed in a fixed order.
func Generate(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed ^ 0x66757a7a)) // "fuzz"
	c := &Case{
		Name:      fmt.Sprintf("gen-%d", seed),
		Seed:      seed,
		Topology:  genTopology(rng),
		HorizonPS: sim.Duration(10+rng.Intn(7)) * sim.Millisecond,
	}
	g, err := c.Topology.Build()
	if err != nil {
		panic("fuzz: generated unbuildable topology: " + err.Error())
	}
	hosts := g.Hosts()
	var switches []topo.NodeID
	for _, n := range g.Nodes {
		if n.Kind == topo.Switch {
			switches = append(switches, n.ID)
		}
	}
	// Links between switches: the fault targets. Host access links carry
	// exactly one tenant's hose and make less interesting faults.
	var trunks []topo.LinkID
	for _, l := range g.Links {
		if g.Node(l.Src).Kind == topo.Switch && g.Node(l.Dst).Kind == topo.Switch {
			trunks = append(trunks, l.ID)
		}
	}

	genTenants(rng, c, hosts)
	if rng.Float64() < 0.5 {
		genChurn(rng, c)
	}
	genChaos(rng, c, hosts, switches, trunks)
	return c
}

// genTopology draws a topology small enough for smoke budgets: the
// testbed most often (it is the evaluation's reference fabric), then
// stars, two-tier parallel-path fabrics and a small Clos.
func genTopology(rng *rand.Rand) Topology {
	switch p := rng.Float64(); {
	case p < 0.4:
		return Topology{Kind: "testbed"}
	case p < 0.6:
		return Topology{Kind: "star", Hosts: 4 + rng.Intn(5)}
	case p < 0.8:
		return Topology{Kind: "twotier", Aggs: 2 + rng.Intn(2), Hosts: 2 + rng.Intn(3)}
	default:
		return Topology{Kind: "clos", Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Cores: 2, HostsPerToR: 2}
	}
}

// genTenants draws 2..4 standing tenants. Guarantees stay admissible on
// a 10G fabric on their own; when a draw oversubscribes a link anyway,
// the admission gate bounces that tenant and the run goes on — both
// outcomes are in scope.
func genTenants(rng *rand.Rand, c *Case, hosts []topo.NodeID) {
	guarantees := []float64{5e8, 1e9, 2e9}
	n := 2 + rng.Intn(3)
	for id := 1; id <= n; id++ {
		gbps := guarantees[rng.Intn(len(guarantees))]
		t := Tenant{
			VF:           int32(id),
			GuaranteeBps: gbps,
			WeightClass:  WeightClassFor(gbps),
			Workload:     genWorkload(rng, gbps),
		}
		pairs := 1 + rng.Intn(2)
		for p := 0; p < pairs; p++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			t.Pairs = append(t.Pairs, chaos.PairSpec{Src: src, Dst: dst})
		}
		c.Tenants = append(c.Tenants, t)
	}
}

// genWorkload weights toward the backlogged regime (where the hose
// guarantee is actually covered by the auditor) but keeps bounded-demand
// and bursty message traffic in the mix.
func genWorkload(rng *rand.Rand, guaranteeBps float64) Workload {
	switch p := rng.Float64(); {
	case p < 0.45:
		return Workload{Kind: WorkloadBacklog}
	case p < 0.65:
		return Workload{Kind: WorkloadFixedRate, RateBps: guaranteeBps * (0.3 + 0.5*rng.Float64())}
	case p < 0.8:
		return Workload{
			Kind:     WorkloadOnOff,
			RateBps:  guaranteeBps * 0.4,
			PeriodPS: sim.Duration(2+rng.Intn(3)) * sim.Millisecond,
		}
	default:
		dist := "keyvalue"
		if rng.Float64() < 0.5 {
			dist = "websearch"
		}
		return Workload{
			Kind:    WorkloadPoisson,
			RateBps: guaranteeBps * (0.5 + rng.Float64()),
			Dist:    dist,
		}
	}
}

// genChurn adds an open-loop admission-checked arrival process sized to
// the horizon.
func genChurn(rng *rand.Rand, c *Case) {
	arrivals := 8 + rng.Intn(13)
	c.Churn = &placement.ChurnConfig{
		Arrivals:         arrivals,
		MeanInterarrival: c.HorizonPS / sim.Duration(arrivals),
		MeanHold:         c.HorizonPS / 6,
		VMsMin:           2,
		VMsMax:           3,
		Guarantees:       []float64{5e8, 1e9},
		BacklogBytes:     256 << 10,
		FirstID:          churnFirstID,
		Seed:             c.Seed,
	}
}

// genChaos draws 0..5 fault events. Every fault is transient — the
// matching recover/up/restore lands 0.5–2.5 ms later — and the last
// event fires at least 6 ms before the horizon, so the auditor's
// chaos-excused windows (FaultExcusePS) plus the fabric's re-convergence
// fit inside the run. A fault that the fabric cannot absorb within that
// runway is exactly the kind of finding the fuzzer exists to surface.
func genChaos(rng *rand.Rand, c *Case, hosts []topo.NodeID, switches []topo.NodeID, trunks []topo.LinkID) {
	n := rng.Intn(6)
	if n == 0 {
		return
	}
	sc := chaos.New(fmt.Sprintf("%s-chaos", c.Name))
	lastAt := c.HorizonPS - 6*sim.Millisecond
	if lastAt < 2*sim.Millisecond {
		lastAt = 2 * sim.Millisecond
	}
	at := func() sim.Duration {
		return sim.Millisecond + sim.Duration(rng.Int63n(int64(lastAt-sim.Millisecond)))
	}
	hold := func() sim.Duration {
		return 500*sim.Microsecond + sim.Duration(rng.Int63n(int64(2*sim.Millisecond)))
	}
	arrivals := 0
	for i := 0; i < n; i++ {
		t := at()
		switch k := rng.Intn(5); {
		case k == 0 && len(trunks) > 0:
			lid := trunks[rng.Intn(len(trunks))]
			sc.Flap(t, lid, rng.Intn(2) == 0, 1, 0, hold())
		case k == 1 && len(trunks) > 0:
			lid := trunks[rng.Intn(len(trunks))]
			duplex := rng.Intn(2) == 0
			sc.Degrade(t, lid, duplex, dataplane.Degradation{
				CapacityScale: 0.5 + 0.4*rng.Float64(),
				LossProb:      0.02 * rng.Float64(),
				ProbeDropProb: 0.3 * rng.Float64(),
			})
			sc.Restore(t+hold(), lid, duplex)
		case k == 2:
			node := switches[rng.Intn(len(switches))]
			sc.CrashNode(t, node)
			sc.RecoverNode(t+hold(), node)
		case k == 3:
			sc.RestartAgent(t, switches[rng.Intn(len(switches))])
		default:
			// Admission-gated arrive/depart; ids repeat every other
			// arrival, exercising VF-id reuse through the churn path.
			id := int32(chaosFirstID + arrivals%2)
			arrivals++
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			for dst == src {
				dst = hosts[rng.Intn(len(hosts))]
			}
			sc.ArriveTenant(t, chaos.TenantSpec{
				VF: id, GuaranteeBps: 5e8, WeightClass: WeightClassFor(5e8),
				Pairs: []chaos.PairSpec{{Src: src, Dst: dst, BacklogBytes: 1 << 20}},
			})
			sc.DepartTenant(t+hold(), id)
		}
	}
	if len(sc.Events) > 0 {
		c.Chaos = sc
	}
}
