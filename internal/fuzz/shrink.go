package fuzz

import "ufab/internal/sim"

// Shrinker deterministically minimizes a failing case while preserving
// its failure signature (the verdict, and for findings the first
// unexcused kind). Passes run to a fixpoint — drop the chaos scenario or
// single events, drop the churn process or halve its arrivals, drop
// tenants, drop pairs, halve the horizon — so shrinking a shrunk case is
// a no-op: every pass re-tries the same reductions and they fail the
// same way.
type Shrinker struct {
	// X executes candidates; it must be the same executor (same Sabotage
	// hook) that produced the original failure.
	X *Executor
	// MaxRuns bounds executor invocations (default 300). The bound only
	// bites on pathological cases; hitting it leaves a larger—but still
	// failing—reproducer.
	MaxRuns int
}

// ShrinkStats counts the shrink's work.
type ShrinkStats struct {
	// Runs is how many executor invocations the shrink spent.
	Runs int
	// Reductions is how many candidate reductions were kept.
	Reductions int
}

// signature is what every accepted reduction must preserve.
type signature struct {
	verdict Verdict
	kind    string // first unexcused kind for VerdictFinding, else ""
}

func signatureOf(r *Result) signature {
	sig := signature{verdict: r.Verdict}
	if r.Verdict == VerdictFinding && len(r.Kinds) > 0 {
		sig.kind = r.Kinds[0]
	}
	return sig
}

func (sig signature) matches(r *Result) bool {
	if r.Verdict != sig.verdict {
		return false
	}
	if sig.kind == "" {
		return true
	}
	for _, k := range r.Kinds {
		if k == sig.kind {
			return true
		}
	}
	return false
}

// Shrink minimizes c. It returns the minimal case, that case's result,
// and the work stats. When c does not fail at all, c and its result come
// back unchanged.
func (s *Shrinker) Shrink(c *Case) (*Case, *Result, ShrinkStats) {
	st := ShrinkStats{}
	maxRuns := s.MaxRuns
	if maxRuns == 0 {
		maxRuns = 300
	}
	base, err := s.X.Run(c)
	st.Runs++
	if err != nil || !base.Verdict.Failed() {
		return c, base, st
	}
	sig := signatureOf(base)
	cur := c.clone()

	// try replaces cur when the candidate still fails with the same
	// signature.
	try := func(cand *Case) bool {
		if st.Runs >= maxRuns {
			return false
		}
		r, err := s.X.Run(cand)
		st.Runs++
		if err != nil || !sig.matches(r) {
			return false
		}
		cur, base = cand, r
		st.Reductions++
		return true
	}

	// Every pass reads the live cur, so an accepted reduction feeds the
	// next attempt. Drops iterate indices from the end: lower indices
	// stay valid as elements vanish.
	dropChaos := func() bool {
		if cur.Chaos == nil {
			return false
		}
		cand := cur.clone()
		cand.Chaos = nil
		if try(cand) {
			return true
		}
		progress := false
		for i := len(cur.Chaos.Events) - 1; i >= 0; i-- {
			cand := cur.clone()
			cand.Chaos.Events = append(cand.Chaos.Events[:i], cand.Chaos.Events[i+1:]...)
			if len(cand.Chaos.Events) == 0 {
				cand.Chaos = nil
			}
			progress = try(cand) || progress
			if cur.Chaos == nil {
				break
			}
		}
		return progress
	}

	dropChurn := func() bool {
		if cur.Churn == nil {
			return false
		}
		cand := cur.clone()
		cand.Churn = nil
		if try(cand) {
			return true
		}
		progress := false
		for cur.Churn != nil && cur.Churn.Arrivals > 1 {
			cand := cur.clone()
			cand.Churn.Arrivals /= 2
			if !try(cand) {
				break
			}
			progress = true
		}
		return progress
	}

	dropTenants := func() bool {
		progress := false
		for i := len(cur.Tenants) - 1; i >= 0; i-- {
			if len(cur.Tenants) <= 1 || i >= len(cur.Tenants) {
				continue
			}
			cand := cur.clone()
			cand.Tenants = append(cand.Tenants[:i], cand.Tenants[i+1:]...)
			progress = try(cand) || progress
		}
		return progress
	}

	dropPairs := func() bool {
		progress := false
		for ti := 0; ti < len(cur.Tenants); ti++ {
			for pi := len(cur.Tenants[ti].Pairs) - 1; pi >= 1; pi-- {
				if pi >= len(cur.Tenants[ti].Pairs) {
					continue
				}
				cand := cur.clone()
				t := &cand.Tenants[ti]
				t.Pairs = append(t.Pairs[:pi], t.Pairs[pi+1:]...)
				progress = try(cand) || progress
			}
		}
		return progress
	}

	// Horizon floor 2 ms: below that the auditor's warmup exempts
	// everything and no finding can exist anyway.
	shortenHorizon := func() bool {
		progress := false
		for cur.HorizonPS/2 >= 2*sim.Millisecond {
			cand := cur.clone()
			cand.HorizonPS /= 2
			if !try(cand) {
				break
			}
			progress = true
		}
		return progress
	}

	for progress := true; progress; {
		progress = false
		progress = dropChaos() || progress
		progress = dropChurn() || progress
		progress = dropTenants() || progress
		progress = dropPairs() || progress
		progress = shortenHorizon() || progress
	}
	return cur, base, st
}
