package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRegressionCorpus replays every committed reproducer under the full
// oracle (including the double-run determinism check). Each file is the
// minimal case of a once-real bug; a failure here means the bug is back.
func TestRegressionCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("regression corpus has %d cases, want at least the seeded 3", len(files))
	}
	x := &Executor{Replay: true}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			c, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			r, err := x.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if r.Verdict.Failed() {
				t.Fatalf("regressed: verdict %s (kinds %v, mismatch %q)\n%s%s",
					r.Verdict, r.Kinds, r.Mismatch, r.Panic, r.FindingsJSONL)
			}
		})
	}
}

// TestRegressionCorpusCanonical: committed corpus files must be in the
// canonical Encode form, so a reproducer promoted from `fuzz -shrink
// -out` diffs cleanly forever after.
func TestRegressionCorpusCanonical(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regressions", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Parse(raw)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, enc) {
			t.Errorf("%s is not in canonical form; rewrite it with Case.WriteFile", path)
		}
	}
}
