package fuzz

import (
	"bytes"
	"testing"
)

// TestGenerateDeterministic: the same seed must yield the byte-identical
// case — the whole corpus-replay and shrink machinery rests on it.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, err := Generate(seed).Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		b, err := Generate(seed).Encode()
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestGenerateRoundTrip: every generated case must survive
// Encode → Parse → Encode byte-identically, so written failing cases are
// faithful reproducers.
func TestGenerateRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := Generate(seed)
		a, err := c.Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		parsed, err := Parse(a)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		b, err := parsed.Encode()
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: round trip changed the case:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestExecutorVerdictDeterministic: the executor itself is part of the
// determinism contract — running one case twice (with the built-in replay
// check active, so four simulations total) must classify identically.
func TestExecutorVerdictDeterministic(t *testing.T) {
	x := &Executor{Replay: true}
	for seed := int64(1); seed <= 5; seed++ {
		c := Generate(seed)
		r1, err := x.Run(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r2, err := x.Run(c)
		if err != nil {
			t.Fatalf("seed %d: rerun: %v", seed, err)
		}
		if r1.Verdict != r2.Verdict || r1.Excused != r2.Excused ||
			r1.Unexcused != r2.Unexcused || r1.FindingsJSONL != r2.FindingsJSONL {
			t.Fatalf("seed %d: verdicts diverged: %+v vs %+v", seed, r1, r2)
		}
	}
}

// TestGeneratedSeedsPassOracle pins the acceptance bar on a small fixed
// prefix of the seed space: generated cases on the current tree run clean
// or chaos-excused, never unexcused. The CLI smoke gate covers a wider
// sweep; this keeps the property under `go test`.
func TestGeneratedSeedsPassOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	x := &Executor{Replay: true}
	for seed := int64(1); seed <= 8; seed++ {
		r, err := x.Run(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Verdict.Failed() {
			t.Errorf("seed %d: verdict %s (kinds %v, mismatch %q)\n%s",
				seed, r.Verdict, r.Kinds, r.Mismatch, r.FindingsJSONL)
		}
	}
}

// TestValidateRejectsMalformed: obvious junk must be an error, not a
// panic or a silently-empty run.
func TestValidateRejectsMalformed(t *testing.T) {
	base := func() *Case { return Generate(1) }

	cases := []struct {
		name   string
		mutate func(*Case)
	}{
		{"zero horizon", func(c *Case) { c.HorizonPS = 0 }},
		{"bad topology", func(c *Case) { c.Topology = Topology{Kind: "moebius"} }},
		{"duplicate vf", func(c *Case) { c.Tenants[1].VF = c.Tenants[0].VF }},
		{"zero guarantee", func(c *Case) { c.Tenants[0].GuaranteeBps = 0 }},
		{"no pairs", func(c *Case) { c.Tenants[0].Pairs = nil }},
		{"self pair", func(c *Case) { c.Tenants[0].Pairs[0].Dst = c.Tenants[0].Pairs[0].Src }},
		{"unknown workload", func(c *Case) { c.Tenants[0].Workload.Kind = "tsunami" }},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed case", tc.name)
		}
	}
}
