package fuzz

import (
	"bytes"
	"path/filepath"
	"testing"

	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/vfabric"
)

// sabotagedCase is a deliberately fat failing case: a 6-host star with
// two contending 4G tenants (the audit tests' proven sabotage shape),
// two unrelated tenants and a churn process — plenty for the shrinker to
// cut — whose executor pins the first flow's sender token to 1 mid-run,
// collapsing its WFQ share far below the declared guarantee. No chaos is
// injected, so no excuse window can swallow the finding.
func sabotagedCase() (*Case, *Executor) {
	c := &Case{
		Name:      "sabotage-star",
		Seed:      7,
		Topology:  Topology{Kind: "star", Hosts: 6},
		HorizonPS: 24 * sim.Millisecond,
		Tenants: []Tenant{
			{VF: 1, GuaranteeBps: 4e9, WeightClass: 2, Pairs: []chaos.PairSpec{{Src: 1, Dst: 2}}},
			{VF: 2, GuaranteeBps: 4e9, WeightClass: 2, Pairs: []chaos.PairSpec{{Src: 3, Dst: 2}}},
			{VF: 3, GuaranteeBps: 2e9, WeightClass: 1, Pairs: []chaos.PairSpec{{Src: 4, Dst: 5}}},
			{VF: 4, GuaranteeBps: 2e9, WeightClass: 1, Pairs: []chaos.PairSpec{{Src: 5, Dst: 6}}},
		},
		Churn: &placement.ChurnConfig{
			Arrivals:         6,
			MeanInterarrival: 2 * sim.Millisecond,
			MeanHold:         4 * sim.Millisecond,
			Guarantees:       []float64{5e8},
			BacklogBytes:     256 << 10,
			FirstID:          100,
		},
	}
	x := &Executor{
		Replay: true,
		Sabotage: func(eng *sim.Engine, f *vfabric.Fabric) {
			eng.At(6*sim.Millisecond, func() {
				if len(f.Flows) > 0 {
					f.Flows[0].Pair.SetPhi(1)
				}
			})
		},
	}
	return c, x
}

// TestSabotageTriggersOracle: the fuzz oracle catches a deliberately
// broken invariant as an unexcused finding.
func TestSabotageTriggersOracle(t *testing.T) {
	c, x := sabotagedCase()
	r, err := x.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != VerdictFinding {
		t.Fatalf("verdict = %s (kinds %v, mismatch %q), want finding\n%s",
			r.Verdict, r.Kinds, r.Mismatch, r.FindingsJSONL)
	}
	found := false
	for _, k := range r.Kinds {
		if k == "min_bw" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexcused kinds = %v, want min_bw", r.Kinds)
	}
}

// TestShrinkMinimizes: shrinking the sabotaged case strips the parts the
// failure does not need (chaos, churn, extra tenants) and shortens the
// horizon, while the minimized case still fails with the same kind.
func TestShrinkMinimizes(t *testing.T) {
	c, x := sabotagedCase()
	sh := &Shrinker{X: x}
	min, r, st := sh.Shrink(c)
	if !r.Verdict.Failed() {
		t.Fatalf("shrunk case no longer fails: %s", r.Verdict)
	}
	hasMinBW := false
	for _, k := range r.Kinds {
		if k == "min_bw" {
			hasMinBW = true
		}
	}
	if !hasMinBW {
		t.Fatalf("shrunk case lost the min_bw kind: %v", r.Kinds)
	}
	if st.Reductions == 0 {
		t.Fatalf("shrink made no reductions on a deliberately fat case (runs %d)", st.Runs)
	}
	if min.Chaos != nil {
		t.Errorf("shrunk case kept chaos: %+v", min.Chaos.Events)
	}
	if min.Churn != nil {
		t.Errorf("shrunk case kept churn: %+v", min.Churn)
	}
	// The sabotage targets Flows[0] (vf 1) and its WFQ share only
	// collapses under contention, so exactly the sabotaged tenant and its
	// contender (vf 2, same destination) must survive.
	if len(min.Tenants) != 2 {
		t.Errorf("shrunk case kept %d tenants, want the sabotaged pair + contender", len(min.Tenants))
	}
	if min.HorizonPS >= c.HorizonPS {
		t.Errorf("horizon did not shrink: %v >= %v", min.HorizonPS, c.HorizonPS)
	}
}

// TestShrinkIdempotent: shrinking a shrunk case changes nothing — every
// pass re-tries the same reductions and they fail the same way.
func TestShrinkIdempotent(t *testing.T) {
	c, x := sabotagedCase()
	sh := &Shrinker{X: x}
	min1, _, _ := sh.Shrink(c)
	min2, _, st := sh.Shrink(min1)
	a, err := min1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := min2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("second shrink changed the case (%d further reductions):\n%s\nvs\n%s",
			st.Reductions, a, b)
	}
}

// TestShrunkReproducerRoundTrips: the minimized case written to disk and
// loaded back still reproduces the failure — the property that makes a
// committed reproducer trustworthy.
func TestShrunkReproducerRoundTrips(t *testing.T) {
	c, x := sabotagedCase()
	sh := &Shrinker{X: x}
	min, _, _ := sh.Shrink(c)
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := min.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := x.Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != VerdictFinding {
		t.Fatalf("reloaded reproducer verdict = %s, want finding", r.Verdict)
	}
}

// TestShrinkCleanCaseNoOp: a passing case comes back unchanged.
func TestShrinkCleanCaseNoOp(t *testing.T) {
	c := Generate(2)
	sh := &Shrinker{X: &Executor{}}
	min, r, st := sh.Shrink(c)
	if r.Verdict.Failed() {
		t.Fatalf("expected seed 2 to pass, got %s", r.Verdict)
	}
	if st.Reductions != 0 || min != c {
		t.Fatalf("shrink of a clean case did work: %d reductions", st.Reductions)
	}
}

// TestScenarioCloneIsDeep: mutating a clone's events and tenant pairs
// never leaks into the original — shrink passes rely on this.
func TestScenarioCloneIsDeep(t *testing.T) {
	sc := chaos.New("orig")
	sc.LinkDown(sim.Millisecond, 3, true)
	sc.ArriveTenant(2*sim.Millisecond, chaos.TenantSpec{
		VF: 9, GuaranteeBps: 1e9, Pairs: []chaos.PairSpec{{Src: 1, Dst: 2}},
	})
	cp := sc.Clone()
	cp.Events[0].At = 99
	cp.Events[1].Tenant.Pairs[0].Src = 42
	if sc.Events[0].At == 99 {
		t.Fatal("clone shares the events slice")
	}
	if sc.Events[1].Tenant.Pairs[0].Src == 42 {
		t.Fatal("clone shares a tenant's pairs slice")
	}
	if (*chaos.Scenario)(nil).Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}
