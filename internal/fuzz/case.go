// Package fuzz is μFAB's scenario fuzzer: a seeded generator composes a
// random topology, tenant/workload mix, chaos scenario and
// admission-checked churn into one self-contained Case; an executor
// replays the case under the online predictability auditor and
// classifies the outcome (clean / excused / unexcused finding / panic /
// determinism mismatch); and a shrinker minimizes a failing case to a
// JSON reproducer small enough to commit under testdata/regressions/,
// where a regression test replays it forever.
//
// The auditor is the bug oracle: any unexcused finding — a hose
// guarantee (Eqn 1), work-conservation, queue-bound, Φ/W-accounting or
// ledger-bound violation outside a chaos-excused window — fails the
// case. Everything is deterministic per case: the same JSON always
// produces the same verdict, which is what makes shrinking and the
// committed corpus meaningful.
package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/topo"
)

// Topology names and parameterizes one of the repo's topology builders.
type Topology struct {
	// Kind is one of "testbed" (the Fig-10 8-server 3-tier pod pair),
	// "star" (Hosts around one switch), "twotier" (Aggs parallel paths,
	// Hosts per ToR) or "clos" (Pods × ToRsPerPod × HostsPerToR 3-tier).
	Kind string `json:"kind"`
	// Hosts parameterizes star (host count) and twotier (hosts per ToR).
	Hosts int `json:"hosts,omitempty"`
	// Aggs parameterizes twotier (parallel aggregation switches).
	Aggs int `json:"aggs,omitempty"`
	// Clos shape; zero values default to a 2×2×2-pod 8-host fabric.
	Pods        int `json:"pods,omitempty"`
	ToRsPerPod  int `json:"tors_per_pod,omitempty"`
	AggsPerPod  int `json:"aggs_per_pod,omitempty"`
	Cores       int `json:"cores,omitempty"`
	HostsPerToR int `json:"hosts_per_tor,omitempty"`
	// CapacityGbps is the uniform line rate (default 10).
	CapacityGbps float64 `json:"capacity_gbps,omitempty"`
}

// Build constructs the graph. Node and link IDs are assigned by the
// builders deterministically, so a case's chaos events and tenant pairs
// may reference them directly.
func (t *Topology) Build() (*topo.Graph, error) {
	capa := topo.Gbps(t.CapacityGbps)
	if t.CapacityGbps == 0 {
		capa = topo.Gbps(10)
	}
	switch t.Kind {
	case "testbed":
		return topo.NewTestbed(topo.TestbedConfig{LinkCapacity: capa}).Graph, nil
	case "star":
		n := t.Hosts
		if n < 2 {
			return nil, fmt.Errorf("fuzz: star needs >= 2 hosts, have %d", n)
		}
		return topo.NewStar(n, capa, 2*sim.Microsecond).Graph, nil
	case "twotier":
		aggs, hosts := t.Aggs, t.Hosts
		if aggs < 1 || hosts < 1 {
			return nil, fmt.Errorf("fuzz: twotier needs aggs >= 1 and hosts >= 1, have %d/%d", aggs, hosts)
		}
		return topo.NewTwoTier(aggs, hosts, capa, 2*sim.Microsecond).Graph, nil
	case "clos":
		cfg := topo.ClosConfig{
			Pods: t.Pods, ToRsPerPod: t.ToRsPerPod, AggsPerPod: t.AggsPerPod,
			Cores: t.Cores, HostsPerToR: t.HostsPerToR,
			LinkCapacity: capa, PropDelay: sim.Microsecond,
		}
		if cfg.Pods == 0 {
			cfg = topo.ClosConfig{Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Cores: 2,
				HostsPerToR: 2, LinkCapacity: capa, PropDelay: sim.Microsecond}
		}
		return topo.NewClos(cfg).Graph, nil
	default:
		return nil, fmt.Errorf("fuzz: unknown topology kind %q", t.Kind)
	}
}

// Workload kinds a tenant's pairs can run.
const (
	// WorkloadBacklog keeps every pair fully backlogged (the hose
	// guarantee's covered regime).
	WorkloadBacklog = "backlog"
	// WorkloadFixedRate drips RateBps into each pair's buffer.
	WorkloadFixedRate = "fixedrate"
	// WorkloadOnOff alternates RateBps underload with a backlogged phase
	// every PeriodPS (the Fig-16 dynamic-demand shape).
	WorkloadOnOff = "onoff"
	// WorkloadPoisson sends Poisson message arrivals at RateBps offered
	// load with sizes drawn from Dist ("websearch" or "keyvalue").
	WorkloadPoisson = "poisson"
)

// Workload describes the traffic a tenant's pairs generate.
type Workload struct {
	Kind string `json:"kind"`
	// RateBps is the offered rate: fixedrate's drip, onoff's underload
	// phase, poisson's load target.
	RateBps float64 `json:"rate_bps,omitempty"`
	// PeriodPS is onoff's phase period (default 2 ms).
	PeriodPS sim.Duration `json:"period_ps,omitempty"`
	// Dist picks poisson's size distribution: "keyvalue" (default) or
	// "websearch".
	Dist string `json:"dist,omitempty"`
}

// Tenant is one standing tenant of the case, admitted through the
// placement controller at t = 0 and materialized with its workload.
type Tenant struct {
	VF           int32   `json:"vf"`
	GuaranteeBps float64 `json:"guarantee_bps"`
	WeightClass  int     `json:"weight_class"`
	// Pairs reuses the chaos tenant-spec pair encoding; BacklogBytes
	// applies to the backlog workload (<= 0 = effectively infinite).
	Pairs    []chaos.PairSpec `json:"pairs"`
	Workload Workload         `json:"workload"`
}

// spec converts the tenant to the chaos/placement tenant spec used for
// admission.
func (t *Tenant) spec() chaos.TenantSpec {
	return chaos.TenantSpec{
		VF:           t.VF,
		GuaranteeBps: t.GuaranteeBps,
		WeightClass:  t.WeightClass,
		Pairs:        append([]chaos.PairSpec(nil), t.Pairs...),
	}
}

// Case is one self-contained fuzz scenario: everything the executor
// needs to rebuild the run bit-identically lives here, and the whole
// thing round-trips through JSON.
type Case struct {
	Name string `json:"name"`
	// Seed drives the fabric's internal RNGs (path sampling, fault
	// randomness) and, unless the churn spec pins its own, the churn
	// arrival process.
	Seed int64 `json:"seed"`
	// Topology is rebuilt per run; IDs in Tenants/Chaos refer into it.
	Topology Topology `json:"topology"`
	// HorizonPS is the simulated run length.
	HorizonPS sim.Duration `json:"horizon_ps"`
	// SamplePS is the telemetry/audit sampling interval (default 250 µs).
	SamplePS sim.Duration `json:"sample_ps,omitempty"`
	// Tenants stand from t = 0 (each admission-checked; a rejected
	// standing tenant simply never materializes).
	Tenants []Tenant `json:"tenants"`
	// Churn, if present, drives open-loop tenant arrivals through the
	// admission controller.
	Churn *placement.ChurnConfig `json:"churn,omitempty"`
	// Chaos, if present, is injected at t = 0 with the controller as the
	// admission gate for its tenant events.
	Chaos *chaos.Scenario `json:"chaos,omitempty"`
}

// Encode renders the case as indented JSON (the committed-reproducer
// format).
func (c *Case) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes a case and validates its shape (topology buildable,
// tenants well-formed, event times non-negative).
func Parse(b []byte) (*Case, error) {
	c := &Case{}
	if err := json.Unmarshal(b, c); err != nil {
		return nil, fmt.Errorf("fuzz: parse case: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadFile reads a case JSON file.
func LoadFile(path string) (*Case, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WriteFile writes the case as indented JSON.
func (c *Case) WriteFile(path string) error {
	b, err := c.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Validate checks the case's static shape. Dynamic misuse (a pair with
// no path, an unknown chaos link) is the injector's and validator's
// business at run time — those must degrade gracefully, and the fuzzer
// exists to prove they do.
func (c *Case) Validate() error {
	g, err := c.Topology.Build()
	if err != nil {
		return err
	}
	if c.HorizonPS <= 0 {
		return fmt.Errorf("fuzz: case %q: non-positive horizon %d", c.Name, c.HorizonPS)
	}
	host := func(id topo.NodeID) bool {
		return int(id) >= 0 && int(id) < len(g.Nodes) && g.Node(id).Kind == topo.Host
	}
	seen := map[int32]bool{}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.VF <= 0 || seen[t.VF] {
			return fmt.Errorf("fuzz: case %q: tenant %d has invalid or duplicate vf %d", c.Name, i, t.VF)
		}
		seen[t.VF] = true
		if t.GuaranteeBps <= 0 {
			return fmt.Errorf("fuzz: case %q: vf %d has non-positive guarantee", c.Name, t.VF)
		}
		if len(t.Pairs) == 0 {
			return fmt.Errorf("fuzz: case %q: vf %d has no pairs", c.Name, t.VF)
		}
		for _, pr := range t.Pairs {
			if !host(pr.Src) || !host(pr.Dst) || pr.Src == pr.Dst {
				return fmt.Errorf("fuzz: case %q: vf %d pair %d→%d is not a distinct host pair",
					c.Name, t.VF, pr.Src, pr.Dst)
			}
		}
		switch t.Workload.Kind {
		case "", WorkloadBacklog, WorkloadFixedRate, WorkloadOnOff, WorkloadPoisson:
		default:
			return fmt.Errorf("fuzz: case %q: vf %d has unknown workload kind %q", c.Name, t.VF, t.Workload.Kind)
		}
	}
	if c.Chaos != nil {
		for i, ev := range c.Chaos.Events {
			if ev.At < 0 {
				return fmt.Errorf("fuzz: case %q: chaos event %d at negative time", c.Name, i)
			}
		}
	}
	if c.Churn != nil && c.Churn.Arrivals > 0 && c.Churn.MeanInterarrival <= 0 {
		return fmt.Errorf("fuzz: case %q: churn needs a positive mean interarrival", c.Name)
	}
	return nil
}

// clone deep-copies the case so shrink passes can mutate candidates
// freely.
func (c *Case) clone() *Case {
	cp := *c
	cp.Tenants = make([]Tenant, len(c.Tenants))
	copy(cp.Tenants, c.Tenants)
	for i := range cp.Tenants {
		cp.Tenants[i].Pairs = append([]chaos.PairSpec(nil), c.Tenants[i].Pairs...)
	}
	if c.Churn != nil {
		cc := *c.Churn
		cc.Guarantees = append([]float64(nil), c.Churn.Guarantees...)
		cp.Churn = &cc
	}
	cp.Chaos = c.Chaos.Clone()
	return &cp
}

// WeightClassFor maps a hose guarantee to the WFQ weight class the
// evaluation uses: class 0 at 1G and below, +1 per doubling, capped at 7.
func WeightClassFor(guaranteeBps float64) int {
	c := 0
	for g := 1e9; g < guaranteeBps && c < 7; g *= 2 {
		c++
	}
	return c
}
