package fuzz

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"

	"ufab/internal/audit"
	"ufab/internal/chaos"
	"ufab/internal/placement"
	"ufab/internal/sim"
	"ufab/internal/telemetry"
	"ufab/internal/vfabric"
	"ufab/internal/workload"
)

// Verdict classifies one executed case.
type Verdict string

const (
	// VerdictClean: no findings at all.
	VerdictClean Verdict = "clean"
	// VerdictExcused: findings occurred, all inside chaos-excused windows.
	VerdictExcused Verdict = "excused"
	// VerdictFinding: at least one unexcused finding — the oracle fired.
	VerdictFinding Verdict = "finding"
	// VerdictPanic: the simulation panicked (recovered by the executor).
	VerdictPanic Verdict = "panic"
	// VerdictMismatch: a replay of the same case diverged — the
	// determinism contract broke.
	VerdictMismatch Verdict = "mismatch"
)

// Failed reports whether the verdict fails a fuzz run.
func (v Verdict) Failed() bool {
	return v == VerdictFinding || v == VerdictPanic || v == VerdictMismatch
}

// Result is the executor's classification of one case.
type Result struct {
	Verdict   Verdict `json:"verdict"`
	Excused   int     `json:"excused"`
	Unexcused int     `json:"unexcused"`
	// Kinds are the distinct unexcused finding kinds, sorted.
	Kinds []string `json:"kinds,omitempty"`
	// Panic carries the recovered panic value and stack.
	Panic string `json:"panic,omitempty"`
	// Mismatch describes a replay divergence.
	Mismatch string `json:"mismatch,omitempty"`
	// Admitted/Rejected are the admission controller's lifetime counters
	// (standing tenants + churn + chaos arrivals).
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// FindingsJSONL is the findings log, for display and artifacts.
	FindingsJSONL string `json:"-"`
}

// Executor runs cases. The zero value is usable; Replay doubles the cost
// of every case to buy determinism checking.
type Executor struct {
	// Replay runs each case twice and compares the runs' digests
	// (findings JSONL, per-flow delivery, admission counters, injection
	// log); any divergence is a VerdictMismatch.
	Replay bool
	// Sabotage is a test-only hook invoked after the fabric and standing
	// tenants are assembled, before the run starts. Tests use it to break
	// an invariant deliberately (e.g. pin a pair's Φ) and prove the
	// oracle catches it. It runs in every replay identically.
	Sabotage func(eng *sim.Engine, f *vfabric.Fabric)
}

// Run executes the case (twice under Replay) and classifies the outcome.
// An error means the case itself is malformed; a panic inside the
// simulation is a verdict, not an error.
func (x *Executor) Run(c *Case) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	first := x.execOnce(c)
	res := &Result{
		Excused:       first.excused,
		Unexcused:     first.unexcused,
		Kinds:         first.kinds,
		Admitted:      first.admitted,
		Rejected:      first.rejected,
		FindingsJSONL: first.findings,
	}
	if first.panicked != "" {
		res.Verdict = VerdictPanic
		res.Panic = first.panicked
		return res, nil
	}
	if x.Replay {
		second := x.execOnce(c)
		if second.panicked != "" {
			res.Verdict = VerdictPanic
			res.Panic = "replay only: " + second.panicked
			return res, nil
		}
		if second.digest != first.digest {
			res.Verdict = VerdictMismatch
			res.Mismatch = diffDigests(first.digest, second.digest)
			return res, nil
		}
	}
	switch {
	case first.unexcused > 0:
		res.Verdict = VerdictFinding
	case first.excused > 0:
		res.Verdict = VerdictExcused
	default:
		res.Verdict = VerdictClean
	}
	return res, nil
}

// runOut is one execution's raw outcome.
type runOut struct {
	digest             string
	findings           string
	excused, unexcused int
	kinds              []string
	admitted, rejected int64
	panicked           string
}

// execOnce assembles the case's fabric and control plane from scratch,
// runs it to the horizon, and digests everything a deterministic run
// must reproduce. Panics are recovered into the outcome.
func (x *Executor) execOnce(c *Case) (out runOut) {
	defer func() {
		if r := recover(); r != nil {
			out.panicked = fmt.Sprintf("%v\n%s", r, debug.Stack())
		}
	}()
	g, err := c.Topology.Build()
	if err != nil {
		// Validate already vetted the topology; a failure here is a bug.
		panic(err)
	}
	eng := sim.New()
	reg := telemetry.New()
	reg.EnableRecorder(0)
	log := &audit.Log{}
	sample := c.SamplePS
	if sample <= 0 {
		sample = 250 * sim.Microsecond
	}
	// Fuzz cases perturb the fabric continuously (churn arrivals, neighbor
	// migrations), so a violation only counts once it outlives the 3 ms
	// convergence budget the auditor's warmup already grants — shorter
	// dips are the system reconverging, not a bug.
	hold := int((3*sim.Millisecond + sample - 1) / sample)
	cfg := vfabric.Config{Seed: c.Seed, Telemetry: reg,
		Audit: &audit.Config{Log: log, HoldTicks: hold}}
	cfg.Core.CleanupPeriod = c.HorizonPS / 8
	// Built through the shared construction path so fuzzing exercises the
	// same partitioned dataplane the experiments and daemon run on; the
	// provided engine keeps execution sequential (and digests replayable).
	f, err := vfabric.Build(vfabric.BuildOptions{Graph: g, Cfg: cfg, Eng: eng})
	if err != nil {
		panic(err)
	}
	f.StartCoreCleanup()
	ctl := placement.NewController(eng, g, f, placement.Config{
		Policy:       placement.Spread{},
		SlotsPerHost: 16,
		Telemetry:    reg,
	})
	// Checked-admit mode: the ledger_bound invariant holds realized Φ
	// against the control plane's commitments for every tenant source.
	f.Cfg.Ledger = ctl.Ledger()

	rejectedStanding := 0
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if f.ValidateTenantSpec(t.spec()) != nil || !ctl.AdmitSpec(t.spec()) {
			rejectedStanding++
			continue
		}
		materializeTenant(eng, f, c, t)
	}
	var churn *placement.ChurnStats
	if c.Churn != nil && c.Churn.Arrivals > 0 {
		cc := *c.Churn
		if cc.Seed == 0 {
			cc.Seed = c.Seed
		}
		churn = placement.Churn(ctl, cc)
	}
	var inj *chaos.Injector
	if c.Chaos != nil && len(c.Chaos.Events) > 0 {
		inj = f.ApplyScenario(c.Chaos).WithAdmission(ctl)
	}
	if x.Sabotage != nil {
		x.Sabotage(eng, f)
	}

	stop := f.StartSampling(sample)
	eng.RunUntil(c.HorizonPS)
	stop()
	f.SampleRates()

	var fb strings.Builder
	if err := log.WriteJSONL(&fb); err != nil {
		panic(err)
	}
	out.findings = fb.String()
	out.excused = log.Excused()
	out.unexcused = log.Unexcused()
	out.kinds = log.UnexcusedKinds()
	st := ctl.Stats()
	out.admitted = st.Admitted
	out.rejected = st.Rejected
	out.digest = digest(c, f, out.findings, st, churn, inj, rejectedStanding)
	return out
}

// materializeTenant builds the admitted tenant's VF, pairs and workload
// drivers. Workload randomness (Poisson draws) comes from a per-pair RNG
// seeded off the case, so replays are identical.
func materializeTenant(eng *sim.Engine, f *vfabric.Fabric, c *Case, t *Tenant) {
	vf := f.AddVF(t.VF, t.GuaranteeBps, t.WeightClass)
	for pi, pr := range t.Pairs {
		switch t.Workload.Kind {
		case "", WorkloadBacklog:
			fl := f.AddFlow(vf, pr.Src, pr.Dst, 0)
			backlog := pr.BacklogBytes
			if backlog <= 0 {
				backlog = 1 << 42
			}
			fl.Buffer.Add(backlog)
		case WorkloadFixedRate:
			fl := f.AddFlow(vf, pr.Src, pr.Dst, 0)
			workload.FixedRate(eng, fl.Buffer, t.Workload.RateBps, 0)
		case WorkloadOnOff:
			fl := f.AddFlow(vf, pr.Src, pr.Dst, 0)
			period := t.Workload.PeriodPS
			if period <= 0 {
				period = 2 * sim.Millisecond
			}
			chunk := int64(2 * t.GuaranteeBps * period.Seconds() / 8)
			if chunk < 1<<16 {
				chunk = 1 << 16
			}
			workload.OnOff(eng, fl.Buffer, t.Workload.RateBps, period, chunk)
		case WorkloadPoisson:
			msgs := &workload.Messages{}
			f.AddFlowDemand(vf, pr.Src, pr.Dst, 0, msgs)
			dist := workload.KeyValue()
			if t.Workload.Dist == "websearch" {
				dist = workload.WebSearch()
			}
			rng := rand.New(rand.NewSource(c.Seed ^ int64(t.VF)<<20 ^ int64(pi)<<8 ^ 0x706f69))
			workload.Poisson(eng, rng, dist, t.Workload.RateBps, func(size int64, now sim.Time) {
				msgs.Send(size, now)
			})
		}
	}
}

// digest renders everything two replays of the same case must agree on.
func digest(c *Case, f *vfabric.Fabric, findings string, st placement.Stats,
	churn *placement.ChurnStats, inj *chaos.Injector, rejectedStanding int) string {
	var b strings.Builder
	b.WriteString(findings)
	fmt.Fprintf(&b, "ctl submitted=%d admitted=%d rejected=%d released=%d active=%d standing_rejected=%d\n",
		st.Submitted, st.Admitted, st.Rejected, st.Released, st.Active, rejectedStanding)
	if churn != nil {
		fmt.Fprintf(&b, "churn submitted=%d accepted=%d rejected=%d\n",
			churn.Submitted, churn.Accepted, churn.Rejected)
	}
	if inj != nil {
		for _, rec := range inj.Log {
			fmt.Fprintf(&b, "chaos %s\n", rec)
		}
	}
	for i, fl := range f.Flows {
		fmt.Fprintf(&b, "flow %d vf=%d rate=%.0f\n", i, fl.VF.ID, fl.Rate(0, sim.Time(c.HorizonPS)))
	}
	return b.String()
}

// diffDigests points at the first line where two run digests diverge.
func diffDigests(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("digest line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("digest lengths differ: %d vs %d lines", len(al), len(bl))
}
