package sim

import "testing"

// TestShardedHealth drives a two-shard ping-pong and checks the operational
// counters move: windows seal, cross-shard traffic registers ring occupancy,
// and the snapshot covers every shard. Stall and spin counts are timing
// dependent, so only their presence (non-negative, monotonic) is asserted.
func TestShardedHealth(t *testing.T) {
	s := NewSharded(2, 2, Microsecond)
	s.Connect(0, 1)
	s.Connect(1, 0)
	// Ping-pong: each arrival bounces an event back across the cut.
	var bounce func(from, to int) func()
	n := 0
	bounce = func(from, to int) func() {
		return func() {
			if n++; n < 200 {
				s.Send(to, from, Microsecond, bounce(to, from))
			}
		}
	}
	s.Send(0, 1, Microsecond, bounce(0, 1))
	s.RunUntil(400 * Microsecond)

	h := s.Health()
	if len(h) != 2 {
		t.Fatalf("Health() returned %d shards, want 2", len(h))
	}
	var seals, ringPeak uint64
	for i, sh := range h {
		if sh.Shard != i {
			t.Fatalf("Health()[%d].Shard = %d", i, sh.Shard)
		}
		seals += sh.Seals
		if sh.RingPeak > ringPeak {
			ringPeak = sh.RingPeak
		}
	}
	if seals == 0 {
		t.Fatal("no windows sealed despite 400 executed windows per shard")
	}
	if ringPeak == 0 {
		t.Fatal("cross-shard ping-pong recorded no ring occupancy")
	}

	// Counters are monotonic: a second epoch can only grow them.
	s.Send(0, 1, Microsecond, func() {})
	s.RunUntil(500 * Microsecond)
	for i, sh := range s.Health() {
		if sh.Seals < h[i].Seals || sh.WindowStalls < h[i].WindowStalls {
			t.Fatalf("shard %d counters regressed: %+v -> %+v", i, h[i], sh)
		}
	}
}

// TestEngineHealthEmpty pins the sequential engine's trivial HealthSource.
func TestEngineHealthEmpty(t *testing.T) {
	var e Engine
	if h := e.Health(); len(h) != 0 {
		t.Fatalf("Engine.Health() = %v, want empty", h)
	}
}
