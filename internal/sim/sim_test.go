package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if Microsecond.Micros() != 1 {
		t.Errorf("Micros() = %v, want 1", Microsecond.Micros())
	}
	if (2 * Millisecond).Millis() != 2 {
		t.Errorf("Millis() = %v, want 2", (2 * Millisecond).Millis())
	}
	if (3 * Second).Seconds() != 3 {
		t.Errorf("Seconds() = %v, want 3", (3 * Second).Seconds())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{24 * Microsecond, "24.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestDurationFromSeconds(t *testing.T) {
	if got := DurationFromSeconds(0.001); got != Millisecond {
		t.Errorf("DurationFromSeconds(0.001) = %v, want 1ms", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Errorf("Now() = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestEngineSchedulingInsideEvent(t *testing.T) {
	e := New()
	var fired []Time
	e.At(time1(), func() {
		fired = append(fired, e.Now())
		e.After(5*Nanosecond, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10*Nanosecond || fired[1] != 15*Nanosecond {
		t.Fatalf("fired = %v", fired)
	}
}

func time1() Time { return 10 * Nanosecond }

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5*Nanosecond, func() {})
}

func TestEngineNilEventPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.At(10*Nanosecond, func() { ran = true })
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for a live event")
	}
	if e.Cancel(h) {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if e.Cancel(Handle{}) {
		t.Error("Cancel of zero Handle returned true")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := New()
	h := e.At(1*Nanosecond, func() {})
	e.Run()
	if e.Cancel(h) {
		t.Error("Cancel after fire returned true")
	}
}

func TestHandleValid(t *testing.T) {
	var zero Handle
	if zero.Valid() {
		t.Error("zero Handle is Valid")
	}
	e := New()
	h := e.At(1, func() {})
	if !h.Valid() {
		t.Error("scheduled Handle not Valid")
	}
	e.Run()
	if h.Valid() {
		t.Error("Handle still Valid after its event fired")
	}
	h2 := e.At(2, func() {})
	e.Cancel(h2)
	if h2.Valid() {
		t.Error("Handle still Valid after Cancel")
	}
}

// A stale handle must stay inert even after the engine reuses its arena
// slot for a new event: the generation check has to protect the newcomer.
func TestHandleStaleAfterSlotReuse(t *testing.T) {
	e := New()
	h := e.At(1*Nanosecond, func() {})
	e.Run() // fires; slot goes on the free list
	ran := false
	h2 := e.At(2*Nanosecond, func() { ran = true })
	if h.Valid() {
		t.Error("stale handle Valid after slot reuse")
	}
	if e.Cancel(h) {
		t.Error("stale handle cancelled the reused slot's event")
	}
	e.Run()
	if !ran {
		t.Fatal("new event did not run — stale cancel hit it")
	}
	_ = h2
}

// Cancelling a handle that belongs to a different engine is a no-op.
func TestCancelForeignHandle(t *testing.T) {
	a, b := New(), New()
	h := a.At(1, func() {})
	if b.Cancel(h) {
		t.Error("engine cancelled another engine's handle")
	}
	if !a.Cancel(h) {
		t.Error("owning engine failed to cancel")
	}
}

// The arena must reuse slots: heavy schedule/fire churn through a bounded
// number of outstanding events must not grow the slab.
func TestArenaSlotReuse(t *testing.T) {
	e := New()
	for i := 0; i < 10_000; i++ {
		e.At(e.Now()+Nanosecond, func() {})
		if i%3 == 0 { // sprinkle cancels through the churn
			e.Cancel(e.At(e.Now()+2*Nanosecond, func() {}))
		}
		for e.Step() {
		}
	}
	if n := len(e.slots); n > 8 {
		t.Fatalf("arena grew to %d slots for ≤2 outstanding events", n)
	}
}

func TestEngineStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*Nanosecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", e.Pending())
	}
	// Run resumes from where it stopped.
	e.Run()
	if count != 5 {
		t.Fatalf("after resume count = %d, want 5", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at * Nanosecond
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(20 * Nanosecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (events at deadline must run)", len(fired))
	}
	if e.Now() != 20*Nanosecond {
		t.Errorf("Now() = %v, want 20ns", e.Now())
	}
	// Deadline with no events advances the clock.
	e.RunUntil(100 * Nanosecond)
	if len(fired) != 4 || e.Now() != 100*Nanosecond {
		t.Errorf("fired=%d now=%v", len(fired), e.Now())
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := New()
	h := e.At(5*Nanosecond, func() { t.Fatal("cancelled event ran") })
	e.Cancel(h)
	ran := false
	e.At(7*Nanosecond, func() { ran = true })
	e.RunUntil(10 * Nanosecond)
	if !ran {
		t.Fatal("live event did not run")
	}
}

func TestEvery(t *testing.T) {
	e := New()
	var times []Time
	stop := e.Every(10*Nanosecond, func() {
		times = append(times, e.Now())
	})
	e.At(35*Nanosecond, func() { stop() })
	e.Run()
	if len(times) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", times)
	}
	for i, want := range []Time{10, 20, 30} {
		if times[i] != want*Nanosecond {
			t.Errorf("tick %d at %v, want %vns", i, times[i], want)
		}
	}
}

func TestEveryStopInsideCallback(t *testing.T) {
	e := New()
	n := 0
	var stop func()
	stop = e.Every(Nanosecond, func() {
		n++
		if n == 4 {
			stop()
		}
	})
	e.Run()
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	e.Every(0, func() {})
}

// Property: for any set of event times, the engine fires them in
// non-decreasing time order and ends at the max time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r % 1_000_000)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return e.Now() == fired[len(fired)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset never fires the cancelled events and
// always fires the rest.
func TestEngineCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		total := int(n%64) + 1
		fired := make([]bool, total)
		handles := make([]Handle, total)
		for i := 0; i < total; i++ {
			i := i
			handles[i] = e.At(Time(rng.Intn(1000)), func() { fired[i] = true })
		}
		cancelled := make([]bool, total)
		for i := range handles {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(handles[i])
			}
		}
		e.Run()
		for i := range fired {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPendingTimes(t *testing.T) {
	e := New()
	e.At(10*Nanosecond, func() {})
	h := e.At(20*Nanosecond, func() {})
	e.Cancel(h)
	ts := e.PendingTimes(10)
	if len(ts) != 1 || ts[0] != 10*Nanosecond {
		t.Fatalf("PendingTimes = %v", ts)
	}
	if got := e.PendingTimes(0); len(got) != 0 {
		t.Fatalf("PendingTimes(0) = %v", got)
	}
}

// TestPendingTimesContract pins the documented n≤Pending clamp: n beyond
// the queue length returns every pending time, and negative n is treated as
// zero instead of panicking on a negative allocation.
func TestPendingTimesContract(t *testing.T) {
	e := New()
	for i := 1; i <= 3; i++ {
		e.At(Time(i)*Nanosecond, func() {})
	}
	if got := e.PendingTimes(1 << 20); len(got) != 3 {
		t.Fatalf("PendingTimes(huge) = %v, want all 3", got)
	}
	if got := e.PendingTimes(-5); len(got) != 0 {
		t.Fatalf("PendingTimes(-5) = %v, want empty", got)
	}
}

// TestEveryStopIdempotent pins the redesigned stop: the first call cancels
// the outstanding tick (no dead event left in the queue), and calling it
// again — even after the arena slot has been reused by fresh events — stays
// a harmless no-op that cannot touch the new occupant.
func TestEveryStopIdempotent(t *testing.T) {
	e := New()
	n := 0
	stop := e.Every(10*Nanosecond, func() { n++ })
	e.RunUntil(25 * Nanosecond)
	if n != 2 {
		t.Fatalf("ticks before stop = %d, want 2", n)
	}
	stop()
	if got := len(e.PendingTimes(10)); got != 0 {
		t.Fatalf("stop left %d live events queued", got)
	}
	// Reuse the freed slot, then double-stop: the new event must survive.
	fired := false
	e.At(40*Nanosecond, func() { fired = true })
	stop()
	stop()
	e.Run()
	if !fired {
		t.Fatal("double-stop cancelled an unrelated event that reused the slot")
	}
	if n != 2 {
		t.Fatalf("ticks after stop = %d, want 2", n)
	}
}

// TestSchedulerConformance pins that both engines satisfy the Scheduler
// contract through the interface, so consumers can be migrated type-only.
func TestSchedulerConformance(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (Scheduler, Driver)
	}{
		{"engine", func() (Scheduler, Driver) { e := New(); return e, e }},
		{"sharded-coordinator", func() (Scheduler, Driver) {
			sh := NewSharded(2, 1, Microsecond)
			return sh, sh
		}},
		{"shard-local", func() (Scheduler, Driver) {
			sh := NewSharded(2, 1, Microsecond)
			return sh.Shard(0), sh
		}},
	} {
		s, driver := tc.build()
		var order []string
		h := s.At(5*Nanosecond, func() { order = append(order, "cancelled") })
		s.After(2*Nanosecond, func() { order = append(order, "a") })
		s.At(2*Nanosecond, func() { order = append(order, "b") })
		if !s.Cancel(h) {
			t.Fatalf("%s: Cancel = false", tc.name)
		}
		stop := s.Every(3*Nanosecond, func() { order = append(order, "tick") })
		s.At(7*Nanosecond, func() { stop() })
		driver.Run()
		want := []string{"a", "b", "tick", "tick"}
		if !reflect.DeepEqual(order, want) {
			t.Errorf("%s: order = %v, want %v", tc.name, order, want)
		}
	}
}
