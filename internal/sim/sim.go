// Package sim provides the discrete-event simulation engine that underlies
// every μFAB experiment. Time is kept in integer picoseconds so that packet
// serialization delays on 100 Gbps links (5.12 ns for a 64-byte frame) are
// exactly representable; the int64 horizon (~106 days) far exceeds any
// experiment length.
//
// The engine is deliberately minimal: a 4-ary-heap event queue with
// deterministic FIFO tie-breaking for events scheduled at the same instant,
// plus cancellable timers. Determinism matters because the evaluation
// compares schemes on identical traffic traces.
//
// Events live in a slab-allocated arena: fired and cancelled slots go on a
// free list and are reused, so steady-state scheduling performs no heap
// allocation at all. Handles are generation-checked, which makes stale
// cancels (after the event fired, or after its slot was reused) safe no-ops.
package sim

import (
	"fmt"
)

// Time is a point in simulated time, in picoseconds since the start of the
// simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// DurationFromSeconds converts a float64 number of seconds to a Duration.
func DurationFromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// Event is a callback scheduled to run at a specific simulated time.
type Event func()

// Scheduler is the clock-and-timer surface agents program against. Both the
// sequential *Engine and the per-shard engines of the sharded core satisfy
// it, so agent code is indifferent to which clock it runs on. Callers must
// only invoke a Scheduler from the goroutine that executes its events (for a
// shard-local scheduler, that shard's worker; for the sharded coordinator,
// the barrier goroutine).
type Scheduler interface {
	// Now returns the current simulated time.
	Now() Time
	// At schedules fn at absolute time t; t < Now panics.
	At(t Time, fn Event) Handle
	// After schedules fn at Now+d; negative d panics.
	After(d Duration, fn Event) Handle
	// Cancel deschedules a pending event; stale handles are safe no-ops.
	Cancel(h Handle) bool
	// Every runs fn periodically until the returned stop is called.
	Every(period Duration, fn Event) (stop func())
	// Stop makes the driving Run/RunUntil return after the current event.
	Stop()
}

// Driver is the run-loop surface owned by whoever drives the simulation
// forward (experiments, the fuzz executor, the control-plane daemon). Both
// *Engine and *Sharded satisfy it.
type Driver interface {
	Scheduler
	// Run executes events until the queue drains or Stop is called.
	Run() Time
	// RunUntil executes events with time ≤ deadline, then advances the
	// clock to the deadline.
	RunUntil(deadline Time) Time
}

// StatsSource is satisfied by schedulers that can report scheduling
// statistics; the telemetry flush type-asserts against it.
type StatsSource interface {
	Stats() EngineStats
}

var (
	_ Driver      = (*Engine)(nil)
	_ StatsSource = (*Engine)(nil)
)

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid. Handles are generation-checked: once the event fires
// or is cancelled, the handle goes stale and every operation on it is a
// safe no-op, even after the engine reuses the event's arena slot.
type Handle struct {
	e   *Engine
	idx int32
	gen uint32
}

// Valid reports whether the handle refers to an event that is still
// pending: scheduled, not yet fired, and not cancelled. A handle goes
// invalid the moment its event fires or is cancelled.
func (h Handle) Valid() bool {
	if h.e == nil || int(h.idx) >= len(h.e.slots) {
		return false
	}
	return h.e.slots[h.idx].gen == h.gen
}

// eventSlot is one arena entry. A slot is in exactly one of three states:
// pending (referenced by the heap, live), cancelled (still referenced by
// the heap until popped), or free (linked into the free list via nextFree).
// gen increments whenever the slot's event fires or is cancelled, which
// invalidates all outstanding Handles to it.
type eventSlot struct {
	at Time
	// schedAt is the simulated time at which the event was scheduled, and
	// src the shard that scheduled it (0 outside the sharded core). They
	// extend the ordering key so cross-shard handoffs sort independently
	// of worker interleaving; see slotOrder.
	schedAt   Time
	seq       uint64 // FIFO tie-break for equal (at, schedAt, src)
	src       uint32
	fn        Event
	gen       uint32
	cancelled bool
	nextFree  int32 // free-list link, 1-based; 0 terminates
}

// slotOrder compares heap entries (arena indices) by the full event key
// (at, schedAt, src, seq). For a plain sequential Engine this is provably
// the classic (at, seq) FIFO order: src is constant and seq increases
// monotonically with scheduling time, so schedAt never reorders equal-time
// events. The extra components only matter in the sharded core, where seq
// counters are per-shard: schedAt and src make the key a total order over
// events from different shards that is independent of how shard engines are
// interleaved onto workers. slotOrder is a value type so the generic heap
// calls devirtualize.
type slotOrder struct {
	slots []eventSlot
}

func (o slotOrder) Less(a, b int32) bool {
	sa, sb := &o.slots[a], &o.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	if sa.schedAt != sb.schedAt {
		return sa.schedAt < sb.schedAt
	}
	if sa.src != sb.src {
		return sa.src < sb.src
	}
	return sa.seq < sb.seq
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; all event callbacks
// run on the goroutine that calls Run or Step.
type Engine struct {
	now     Time
	seq     uint64
	src     uint32      // shard ID stamped on locally scheduled events
	slots   []eventSlot // event arena
	free    int32       // free-list head, 1-based; 0 = empty
	queue   []int32     // 4-ary heap of arena indices
	stopped bool
	// maxSched is the latest time any event was ever scheduled for;
	// monotone. The sharded driver uses it to bound drain-to-empty epochs.
	maxSched Time
	// Processed counts events executed so far; useful for runaway
	// detection in tests.
	Processed   uint64
	peakPending int
}

// EngineStats is a snapshot of the engine's scheduling activity, pulled by
// the telemetry flush at sampling time. The engine itself stays free of
// telemetry dependencies so the hot path pays nothing for introspection.
type EngineStats struct {
	Now         Time
	Processed   uint64 // events executed
	Pending     int    // events still queued (incl. not-yet-popped cancels)
	PeakPending int    // high-water mark of the event queue
	ArenaSlots  int    // arena size: peak live+free event slots
}

// Stats returns the current scheduling statistics.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:         e.now,
		Processed:   e.Processed,
		Pending:     len(e.queue),
		PeakPending: e.peakPending,
		ArenaSlots:  len(e.slots),
	}
}

// alloc returns an arena slot index, reusing a freed slot when possible.
func (e *Engine) alloc() int32 {
	if e.free != 0 {
		idx := e.free - 1
		e.free = e.slots[idx].nextFree
		return idx
	}
	e.slots = append(e.slots, eventSlot{})
	return int32(len(e.slots) - 1)
}

// release returns a slot (already popped from the heap) to the free list.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.cancelled = false
	s.nextFree = e.free
	e.free = idx + 1
}

// New returns a new Engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality, which in a network
// simulation always indicates a bug. Events at the same time run in FIFO
// scheduling order.
func (e *Engine) At(t Time, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	h := e.push(t, e.now, e.src, e.seq, fn)
	e.seq++
	return h
}

// push allocates a slot with an explicit ordering key and heaps it. Local
// scheduling goes through At (key components derived from the engine);
// cross-shard injection supplies the sender's key so the receiving heap
// orders the event exactly as the sender stamped it.
func (e *Engine) push(at, schedAt Time, src uint32, seq uint64, fn Event) Handle {
	idx := e.alloc()
	s := &e.slots[idx]
	s.at = at
	s.schedAt = schedAt
	s.src = src
	s.seq = seq
	s.fn = fn
	if at > e.maxSched {
		e.maxSched = at
	}
	e.queue = quadPush(slotOrder{e.slots}, e.queue, idx)
	if len(e.queue) > e.peakPending {
		e.peakPending = len(e.queue)
	}
	return Handle{e: e, idx: idx, gen: s.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an already
// fired or already cancelled event — or a handle from another engine — is
// a no-op. Cancel reports whether the event was actually descheduled.
func (e *Engine) Cancel(h Handle) bool {
	if e == nil || h.e != e || int(h.idx) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.idx]
	if s.gen != h.gen {
		return false // already fired, cancelled, or slot reused
	}
	s.cancelled = true
	s.gen++ // invalidate outstanding handles
	return true
}

// Stop makes Run return after the currently executing event (if any)
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		var idx int32
		idx, e.queue = quadPop(slotOrder{e.slots}, e.queue)
		s := &e.slots[idx]
		if s.cancelled {
			e.release(idx)
			continue
		}
		e.now = s.at
		fn := s.fn
		s.gen++ // the event is firing; invalidate handles
		e.release(idx)
		e.Processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It
// returns the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (even if no event was pending there) and returns. Events
// scheduled exactly at the deadline do run.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		// Peek.
		next := &e.slots[e.queue[0]]
		if next.cancelled {
			var idx int32
			idx, e.queue = quadPop(slotOrder{e.slots}, e.queue)
			e.release(idx)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Every schedules fn to run periodically with the given period, starting at
// now+period, until the returned stop function is called. A non-positive
// period panics. stop is idempotent: the first call cancels the outstanding
// tick and descheds the loop; further calls are no-ops even if the engine
// has since reused the tick's arena slot.
func (e *Engine) Every(period Duration, fn Event) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	stopped := false
	var next Handle
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			next = e.After(period, tick)
		}
	}
	next = e.After(period, tick)
	return func() {
		if stopped {
			return
		}
		stopped = true
		e.Cancel(next)
	}
}

// PendingTimes returns the scheduled times of up to n pending events, in
// no particular order. It is a diagnostic aid for finding event leaks.
//
// Contract: n is clamped to the number of queued entries (n ≤ Pending()), so
// passing a larger n is safe and returns every pending time; negative n is
// treated as zero. Cancelled-but-unpopped entries count against the n
// inspected slots but are not reported, so the result can be shorter than
// min(n, Pending()).
func (e *Engine) PendingTimes(n int) []Time {
	if n > len(e.queue) {
		n = len(e.queue)
	}
	if n < 0 {
		n = 0
	}
	out := make([]Time, 0, n)
	for _, idx := range e.queue[:n] {
		if s := &e.slots[idx]; !s.cancelled {
			out = append(out, s.at)
		}
	}
	return out
}
