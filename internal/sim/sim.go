// Package sim provides the discrete-event simulation engine that underlies
// every μFAB experiment. Time is kept in integer picoseconds so that packet
// serialization delays on 100 Gbps links (5.12 ns for a 64-byte frame) are
// exactly representable; the int64 horizon (~106 days) far exceeds any
// experiment length.
//
// The engine is deliberately minimal: a binary-heap event queue with
// deterministic FIFO tie-breaking for events scheduled at the same instant,
// plus cancellable timers. Determinism matters because the evaluation
// compares schemes on identical traffic traces.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in picoseconds since the start of the
// simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// DurationFromSeconds converts a float64 number of seconds to a Duration.
func DurationFromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// Event is a callback scheduled to run at a specific simulated time.
type Event func()

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid.
type Handle struct {
	item *eventItem
}

// Valid reports whether the handle refers to an event that was scheduled
// and has not been cancelled. A handle stays valid after its event fires;
// cancelling a fired event is a no-op.
func (h Handle) Valid() bool { return h.item != nil }

type eventItem struct {
	at        Time
	seq       uint64 // FIFO tie-break for equal times
	fn        Event
	cancelled bool
	index     int // heap index, -1 once popped
}

type eventHeap []*eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*eventItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; all event callbacks
// run on the goroutine that calls Run or Step.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts events executed so far; useful for runaway
	// detection in tests.
	Processed uint64
}

// New returns a new Engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality, which in a network
// simulation always indicates a bug. Events at the same time run in FIFO
// scheduling order.
func (e *Engine) At(t Time, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	it := &eventItem{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, it)
	return Handle{item: it}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from running. Cancelling an already
// fired or already cancelled event is a no-op. Cancel reports whether the
// event was actually descheduled.
func (e *Engine) Cancel(h Handle) bool {
	if h.item == nil || h.item.cancelled || h.item.index == -1 {
		return false
	}
	h.item.cancelled = true
	return true
}

// Stop makes Run return after the currently executing event (if any)
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		it := heap.Pop(&e.events).(*eventItem)
		if it.cancelled {
			continue
		}
		e.now = it.at
		e.Processed++
		it.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It
// returns the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (even if no event was pending there) and returns. Events
// scheduled exactly at the deadline do run.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Every schedules fn to run periodically with the given period, starting at
// now+period, until the returned stop function is called. A non-positive
// period panics.
func (e *Engine) Every(period Duration, fn Event) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
	return func() { stopped = true }
}

// PendingTimes returns the scheduled times of up to n pending events, in
// no particular order. It is a diagnostic aid for finding event leaks.
func (e *Engine) PendingTimes(n int) []Time {
	if n > len(e.events) {
		n = len(e.events)
	}
	out := make([]Time, 0, n)
	for _, it := range e.events[:n] {
		if !it.cancelled {
			out = append(out, it.at)
		}
	}
	return out
}
