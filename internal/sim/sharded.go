// Sharded parallel-in-time core. The simulated fabric is partitioned into
// logical shards (one per pod, fixed by the topology), each owning a private
// Engine — its own slab arena, event heap, sequence counter, and (at higher
// layers) RNG streams. Shards advance through fixed-width time windows under
// conservative-lookahead synchronization: the window width W is the minimum
// propagation delay of any link crossing a shard boundary, so an event
// executing in window k can only schedule work on another shard at time
// ≥ (k+1)·W. A shard may therefore execute window k as soon as every
// upstream shard has sealed window k−1 and its inbound rings have been
// drained — no global barrier, just per-shard atomic seal counters.
//
// Determinism: the event order inside each logical shard is governed by the
// full event key (at, schedAt, src, seq), every component of which is a pure
// function of (topology, seed) — never of worker count or thread timing.
// Cross-shard handoffs carry their sender-stamped key over SPSC rings, and
// shards sharing a worker have disjoint state, so output is bit-identical
// across `-shards 1 … N`.
//
// Globally scoped work (sampling ticks, chaos injections, experiment-level
// timers) lives on a coordinator engine. Before each coordinator event at
// key Kg, every shard free-runs to Kg — executes all local events with key
// < Kg — and parks; the coordinator then executes that one event with
// exclusive access to all shard state, mirroring a sequential engine where a
// barrier tick observes everything scheduled before it.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// eventKey is the full ordering key of a scheduled event; see slotOrder.
type eventKey struct {
	at      Time
	schedAt Time
	src     uint32
	seq     uint64
}

func (k eventKey) less(o eventKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	if k.schedAt != o.schedAt {
		return k.schedAt < o.schedAt
	}
	if k.src != o.src {
		return k.src < o.src
	}
	return k.seq < o.seq
}

// maxKey is an upper bound on every real event key at or before the given
// time: real events always have schedAt ≤ at < MaxInt64.
func maxKey(at Time) eventKey {
	return eventKey{at: at, schedAt: math.MaxInt64, src: math.MaxUint32, seq: math.MaxUint64}
}

// nextKey returns the key of the engine's next pending event, popping and
// releasing any cancelled entries it passes over.
func (e *Engine) nextKey() (eventKey, bool) {
	for len(e.queue) > 0 {
		s := &e.slots[e.queue[0]]
		if s.cancelled {
			var idx int32
			idx, e.queue = quadPop(slotOrder{e.slots}, e.queue)
			e.release(idx)
			continue
		}
		return eventKey{at: s.at, schedAt: s.schedAt, src: s.src, seq: s.seq}, true
	}
	return eventKey{}, false
}

// runBounded executes pending events in key order while their key is
// strictly below bound, returning the number executed.
func (e *Engine) runBounded(bound eventKey) int {
	n := 0
	for {
		k, ok := e.nextKey()
		if !ok || !k.less(bound) {
			break
		}
		e.Step()
		n++
	}
	return n
}

// inject enqueues a remote event under its sender-stamped key. The window
// protocol guarantees remote arrivals land at or after the receiver's clock;
// a violation indicates a partitioning bug, so it panics loudly.
func (e *Engine) inject(ev remoteEvent) {
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: shard %d received event at %v before now %v (window protocol violated)", e.src, ev.at, e.now))
	}
	e.push(ev.at, ev.schedAt, ev.src, ev.seq, ev.fn)
}

// shard is one logical partition: its engine plus synchronization state.
type shard struct {
	eng *Engine
	id  int
	// sealed is the highest window this shard has fully processed;
	// −1 initially. Written by the owning worker (release), read by
	// downstream workers (acquire).
	sealed atomic.Int64
	// in[p] is the ring carrying events from shard p (nil if p has no
	// links into this shard); upstream lists the non-nil indices.
	in       []*ring
	out      []*ring
	upstream []int
	// health holds operational counters (see health.go); written with
	// atomics because Health() may snapshot them mid-epoch.
	health shardHealthCounters
}

// shardHealthCounters backs ShardHealth; see health.go for field semantics.
type shardHealthCounters struct {
	windowStalls atomic.Uint64
	sendSpins    atomic.Uint64
	seals        atomic.Uint64
	sealNanos    atomic.Uint64
	ringPeak     atomic.Uint64
}

// bumpRingPeak raises ringPeak to n if n exceeds the current maximum.
func (h *shardHealthCounters) bumpRingPeak(n uint64) {
	for {
		cur := h.ringPeak.Load()
		if n <= cur || h.ringPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Sharded is a parallel-in-time discrete-event driver over a set of logical
// shard engines plus a coordinator engine for global events. It satisfies
// Scheduler/Driver, with all Scheduler methods addressing the coordinator
// clock; shard-local scheduling goes through Shard(i). Scheduler methods
// must only be called during setup or from coordinator events, never from
// shard event callbacks.
type Sharded struct {
	global  *Engine
	shards  []*shard
	window  Duration
	workers int
	stopped bool
	started bool // at least one epoch has run; setup is over
}

var (
	_ Driver      = (*Sharded)(nil)
	_ StatsSource = (*Sharded)(nil)
)

// noCutWindow is the window width used when no link crosses a shard
// boundary (single shard): one window spans the whole simulation.
const noCutWindow = Duration(math.MaxInt64 / 4)

// NewSharded returns a driver with n logical shards executed by the given
// number of workers (clamped to [1, n]), synchronized on windows of width
// window — which must be at most the minimum propagation delay of any
// cross-shard link, and positive unless no link crosses shards (window ≤ 0
// with declared cross-shard connections is rejected by Connect).
func NewSharded(n, workers int, window Duration) *Sharded {
	if n < 1 {
		panic(fmt.Sprintf("sim: invalid shard count %d", n))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if window <= 0 {
		window = noCutWindow
	}
	s := &Sharded{
		global:  &Engine{src: uint32(n)},
		shards:  make([]*shard, n),
		window:  window,
		workers: workers,
	}
	for i := range s.shards {
		sh := &shard{eng: &Engine{src: uint32(i)}, id: i, in: make([]*ring, n), out: make([]*ring, n)}
		sh.sealed.Store(-1)
		s.shards[i] = sh
	}
	return s
}

// ringCapacity bounds the in-flight events per directed shard pair; a full
// ring back-pressures the sender, which keeps draining its own inbound rings
// while it spins so the pair cannot deadlock.
const ringCapacity = 1024

// Connect declares that events flow from shard src to shard dst (a cut link
// exists in that direction) and allocates the SPSC ring for the pair.
// Setup-time only. Idempotent.
func (s *Sharded) Connect(src, dst int) {
	if src == dst {
		return
	}
	if s.window == noCutWindow {
		panic("sim: cross-shard connection declared with no positive window width")
	}
	if s.shards[src].out[dst] != nil {
		return
	}
	r := newRing(ringCapacity)
	s.shards[src].out[dst] = r
	s.shards[dst].in[src] = r
	s.shards[dst].upstream = append(s.shards[dst].upstream, src)
}

// Shards returns the number of logical shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Workers returns the number of worker goroutines used per epoch.
func (s *Sharded) Workers() int { return s.workers }

// Window returns the conservative-lookahead window width.
func (s *Sharded) Window() Duration { return s.window }

// Shard returns shard i's local scheduler. Agents owned by shard i schedule
// on it; calls are legal during setup and from shard i's own events.
func (s *Sharded) Shard(i int) Scheduler { return s.shards[i].eng }

// Send schedules fn on shard dst at d after shard src's current time,
// stamping the event with src's key so the destination orders it
// deterministically. It must be called from shard src's execution context
// (or during setup / at a coordinator barrier, when all workers are parked).
// Cross-shard sends below the window width would break the lookahead
// invariant and panic.
func (s *Sharded) Send(src, dst int, d Duration, fn Event) {
	se := s.shards[src].eng
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	ev := remoteEvent{at: se.now + d, schedAt: se.now, seq: se.seq, src: se.src, fn: fn}
	se.seq++
	if src == dst {
		s.shards[dst].eng.inject(ev)
		return
	}
	if d < s.window {
		panic(fmt.Sprintf("sim: cross-shard send %d→%d with delay %v below window %v", src, dst, d, s.window))
	}
	if !s.started {
		// Setup or barrier context: workers parked, inject directly.
		s.shards[dst].eng.inject(ev)
		return
	}
	r := s.shards[src].out[dst]
	if r == nil {
		panic(fmt.Sprintf("sim: shards %d→%d were never connected", src, dst))
	}
	for !r.push(ev) {
		// Ring full: keep our own inbound rings flowing so the peer
		// (possibly blocked pushing to us) can make progress.
		s.shards[src].health.sendSpins.Add(1)
		s.drainShard(s.shards[src])
		runtime.Gosched()
	}
}

// drainShard moves everything currently in sh's inbound rings into its
// heap. Only sh's owning worker (or the coordinator at a barrier) may call.
func (s *Sharded) drainShard(sh *shard) {
	drained := uint64(0)
	for _, r := range sh.in {
		if r == nil {
			continue
		}
		for {
			ev, ok := r.pop()
			if !ok {
				break
			}
			sh.eng.inject(ev)
			drained++
		}
	}
	if drained > 0 {
		sh.health.bumpRingPeak(drained)
	}
}

// windowEnd returns (k+1)·W, saturating instead of overflowing.
func (s *Sharded) windowEnd(k int64) Time {
	if k+1 >= math.MaxInt64/int64(s.window) {
		return math.MaxInt64
	}
	return Time(k+1) * s.window
}

// tryAdvance attempts to process shard sh's next window without blocking:
// if any upstream shard has not yet sealed the previous window it returns
// immediately. Full windows are executed and sealed; the (typically partial)
// window containing bound.at is executed up to the bound and ends the
// shard's epoch (done=true) without sealing — its remainder belongs to later
// epochs. progressed reports whether any window was executed, so the caller
// can yield when a pass over its shards achieves nothing.
func (s *Sharded) tryAdvance(sh *shard, bound eventKey) (done, progressed bool) {
	k := sh.sealed.Load() + 1
	for _, up := range sh.upstream {
		if s.shards[up].sealed.Load() < k-1 {
			sh.health.windowStalls.Add(1)
			return false, false
		}
	}
	// All upstream seals for k−1 observed (acquire): every event any peer
	// will ever send into window k is already in the rings. Drain, then
	// the heap holds the complete window.
	s.drainShard(sh)
	wEnd := s.windowEnd(k)
	if wEnd <= bound.at {
		// Full window: everything below wEnd is also below the bound.
		start := time.Now()
		sh.eng.runBounded(eventKey{at: wEnd, schedAt: math.MinInt64})
		sh.health.sealNanos.Add(uint64(time.Since(start)))
		sh.health.seals.Add(1)
		sh.sealed.Store(k)
		return false, true
	}
	sh.eng.runBounded(bound)
	return true, true
}

// runWorkerEpoch advances all shards owned by one worker to the epoch
// bound, interleaving windows across them: each pass advances every ready
// shard by one window, so co-owned shards can satisfy each other's seal
// dependencies without blocking.
func (s *Sharded) runWorkerEpoch(owned []*shard, bound eventKey) {
	done := make([]bool, len(owned))
	remaining := len(owned)
	for remaining > 0 {
		progressed := false
		for i, sh := range owned {
			if done[i] {
				// Keep a finished shard's inbound rings flowing:
				// peers may still be filling them for future
				// windows.
				s.drainShard(sh)
				continue
			}
			d, p := s.tryAdvance(sh, bound)
			if d {
				done[i] = true
				remaining--
			}
			if p {
				progressed = true
			}
		}
		if !progressed && remaining > 0 {
			runtime.Gosched()
		}
	}
}

// runEpoch runs every shard forward to the bound in parallel and returns
// with all workers parked, rings drained, and exclusive access restored to
// the caller.
func (s *Sharded) runEpoch(bound eventKey) {
	s.started = true
	if len(s.shards) == 1 {
		s.drainShard(s.shards[0])
		s.shards[0].eng.runBounded(bound)
		return
	}
	var running atomic.Int64
	var allDone atomic.Bool
	running.Store(int64(s.workers))
	var parked sync.WaitGroup
	parked.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go func(w int) {
			defer parked.Done()
			// Shards are assigned to workers round-robin by ID.
			var owned []*shard
			for id := w; id < len(s.shards); id += s.workers {
				owned = append(owned, s.shards[id])
			}
			s.runWorkerEpoch(owned, bound)
			running.Add(-1)
			// Keep inbound rings flowing until every worker is done,
			// so a peer blocked on a full ring toward us can finish.
			for !allDone.Load() {
				for id := w; id < len(s.shards); id += s.workers {
					s.drainShard(s.shards[id])
				}
				runtime.Gosched()
			}
		}(w)
	}
	for running.Load() != 0 {
		runtime.Gosched()
	}
	allDone.Store(true)
	parked.Wait()
	// Exclusive again: bank whatever is still in flight for future
	// windows so horizon bookkeeping sees it.
	for _, sh := range s.shards {
		s.drainShard(sh)
	}
}

// clampShards advances every shard clock to t (never backwards). Called at
// a barrier after an epoch bounded by t: all shard events before t have
// executed, so the jump cannot skip work.
func (s *Sharded) clampShards(t Time) {
	for _, sh := range s.shards {
		if sh.eng.now < t {
			sh.eng.now = t
		}
	}
}

// Now returns the coordinator clock.
func (s *Sharded) Now() Time { return s.global.Now() }

// At schedules a global event on the coordinator engine; it runs with every
// shard parked at its key, with exclusive access to all shard state.
func (s *Sharded) At(t Time, fn Event) Handle { return s.global.At(t, fn) }

// After schedules a global event d after the coordinator clock.
func (s *Sharded) After(d Duration, fn Event) Handle { return s.global.After(d, fn) }

// Cancel deschedules a pending global event.
func (s *Sharded) Cancel(h Handle) bool { return s.global.Cancel(h) }

// Every runs fn as a periodic global event until stop is called.
func (s *Sharded) Every(period Duration, fn Event) (stop func()) {
	return s.global.Every(period, fn)
}

// Stop makes Run/RunUntil return at the next epoch boundary.
func (s *Sharded) Stop() { s.stopped = true }

// Pending returns the total number of queued events across the coordinator
// and all shards. Barrier/setup context only.
func (s *Sharded) Pending() int {
	n := s.global.Pending()
	for _, sh := range s.shards {
		n += sh.eng.Pending()
	}
	return n
}

// step runs shards up to the next coordinator event, executes it, and
// clamps shard clocks to its time. Precondition: the coordinator queue is
// non-empty and its head is at or before any caller-imposed deadline.
func (s *Sharded) step(gk eventKey) {
	s.runEpoch(gk)
	s.clampShards(gk.at)
	s.global.Step()
}

// RunUntil executes all events (shard and global) with time ≤ deadline,
// then advances every clock to the deadline and returns it.
func (s *Sharded) RunUntil(deadline Time) Time {
	s.stopped = false
	for !s.stopped {
		gk, ok := s.global.nextKey()
		if !ok || gk.at > deadline {
			break
		}
		s.step(gk)
	}
	if !s.stopped {
		s.runEpoch(maxKey(deadline))
		s.clampShards(deadline)
	}
	if s.global.now < deadline {
		s.global.now = deadline
	}
	return s.global.now
}

// Run executes events until every queue and ring drains (or Stop is
// called), returning the time of the last event processed.
func (s *Sharded) Run() Time {
	s.stopped = false
	for !s.stopped {
		if gk, ok := s.global.nextKey(); ok {
			s.step(gk)
			continue
		}
		// No global events: drain the shards to their horizon. New
		// shard events may extend it, so loop until nothing is left.
		horizon := Time(-1)
		for _, sh := range s.shards {
			if _, ok := sh.eng.nextKey(); ok && sh.eng.maxSched > horizon {
				horizon = sh.eng.maxSched
			}
		}
		if horizon < 0 {
			break
		}
		s.runEpoch(maxKey(horizon))
	}
	end := s.global.now
	for _, sh := range s.shards {
		if sh.eng.now > end {
			end = sh.eng.now
		}
	}
	if s.global.now < end {
		s.global.now = end
	}
	return end
}

// Stats aggregates scheduling statistics across the coordinator and all
// shards. Now is the coordinator clock; counters are sums, which are
// worker-count independent because each component engine's activity is.
func (s *Sharded) Stats() EngineStats {
	st := s.global.Stats()
	for _, sh := range s.shards {
		es := sh.eng.Stats()
		st.Processed += es.Processed
		st.Pending += es.Pending
		st.PeakPending += es.PeakPending
		st.ArenaSlots += es.ArenaSlots
	}
	return st
}
