package sim

import "container/heap"

// This file preserves the pre-arena event queue — a container/heap of
// *eventItem, exactly as the engine shipped before the slab rewrite — as a
// test-only baseline so the BenchmarkEngine* suite can quantify the win.
// It is never compiled into the library.

type eventItem struct {
	at        Time
	seq       uint64
	fn        Event
	cancelled bool
	index     int
}

type eventHeap []*eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*eventItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// baselineEngine is the old binary-heap engine, API-compatible with the
// subset the benchmarks drive.
type baselineEngine struct {
	now    Time
	seq    uint64
	events eventHeap
}

func (e *baselineEngine) At(t Time, fn Event) *eventItem {
	it := &eventItem{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, it)
	return it
}

func (e *baselineEngine) Cancel(it *eventItem) bool {
	if it == nil || it.cancelled || it.index == -1 {
		return false
	}
	it.cancelled = true
	return true
}

func (e *baselineEngine) Step() bool {
	for len(e.events) > 0 {
		it := heap.Pop(&e.events).(*eventItem)
		if it.cancelled {
			continue
		}
		e.now = it.at
		it.fn()
		return true
	}
	return false
}

func (e *baselineEngine) Run() {
	for e.Step() {
	}
}
