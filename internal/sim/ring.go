package sim

import "sync/atomic"

// remoteEvent is a cross-shard handoff: an event closure plus the full
// ordering key stamped by the sending shard. The receiving shard injects it
// into its heap under exactly this key, so the global event order is a pure
// function of (topology, seed) and never of worker interleaving.
type remoteEvent struct {
	at      Time
	schedAt Time
	seq     uint64
	src     uint32
	fn      Event
}

// ring is a bounded single-producer/single-consumer queue used for
// cross-shard event handoff. The producer is the sending shard's worker, the
// consumer the receiving shard's worker; neither ever takes a lock. head and
// tail are monotonically increasing positions; their atomic load/store pairs
// carry the happens-before edge that publishes entry contents.
type ring struct {
	buf  []remoteEvent
	mask uint64
	head atomic.Uint64 // next position to read; owned by the consumer
	tail atomic.Uint64 // next position to write; owned by the producer
}

// newRing returns a ring with capacity rounded up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{buf: make([]remoteEvent, n), mask: uint64(n - 1)}
}

// push appends ev and reports whether there was room. Producer-only.
func (r *ring) push(ev remoteEvent) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = ev
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest entry, if any. Consumer-only.
func (r *ring) pop() (remoteEvent, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return remoteEvent{}, false
	}
	ev := r.buf[h&r.mask]
	r.buf[h&r.mask] = remoteEvent{} // release the closure
	r.head.Store(h + 1)
	return ev, true
}

// empty reports whether the ring currently holds no entries. Safe from any
// goroutine; the answer is a snapshot.
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }
