package sim

// A generic, index-free 4-ary heap. Unlike container/heap, items are plain
// values (no any-boxing, no per-item heap-index bookkeeping) and the
// comparator is a concrete type parameter, so calls monomorphize and the
// hot path allocates nothing beyond the backing slice.
//
// A 4-ary layout halves the tree depth of a binary heap: sift-up does half
// the comparisons, and sift-down touches at most 4 children per level that
// share a cache line when T is small (the engine stores int32 slot ids).

// quadLess orders heap elements. Implementations should be small concrete
// structs so the generic functions devirtualize.
type quadLess[T any] interface {
	Less(a, b T) bool
}

// quadPush appends x and restores heap order, returning the new slice.
func quadPush[T any, L quadLess[T]](less L, h []T, x T) []T {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !less.Less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// quadPop removes and returns the minimum element. The heap must be
// non-empty.
func quadPop[T any, L quadLess[T]](less L, h []T) (T, []T) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	var zero T
	h[n] = zero
	h = h[:n]
	if n > 1 {
		quadSiftDown(less, h, 0)
	}
	return top, h
}

// quadSiftDown restores heap order below position i.
func quadSiftDown[T any, L quadLess[T]](less L, h []T, i int) {
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less.Less(h[c], h[best]) {
				best = c
			}
		}
		if !less.Less(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
