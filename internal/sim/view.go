package sim

import "fmt"

// shardView schedules on a shared sequential Engine while stamping events
// with a fixed logical-shard id and a private sequence counter — exactly the
// key (at, schedAt, src, seq) a per-shard engine of the sharded core would
// assign. Driving one Engine through per-shard views therefore executes the
// same events in the same total order as the parallel core runs them, which
// is what makes sequential (`-shards 0`) output bit-identical to `-shards N`:
// both modes order every event by the same topology-and-seed-determined key.
type shardView struct {
	e   *Engine
	src uint32
	seq uint64
}

// ShardView returns a Scheduler that schedules on e stamped as logical shard
// src, with its own sequence counter (mirroring the per-shard engines of the
// sharded core, whose counters are also per shard). Pair with SetSrc(n) on
// the engine itself so directly scheduled coordinator events sort exactly
// where the sharded coordinator engine would place them.
func (e *Engine) ShardView(src uint32) Scheduler { return &shardView{e: e, src: src} }

// SetSrc sets the shard id stamped on events scheduled directly on e.
// The sequential construction of a logically sharded fabric sets it to the
// shard count so coordinator-context events (sampling ticks, chaos timelines)
// order after same-key shard events, as they do on the sharded core's global
// engine. Call during setup, before events are scheduled.
func (e *Engine) SetSrc(src uint32) { e.src = src }

// Now returns the underlying engine's clock.
func (v *shardView) Now() Time { return v.e.now }

// At schedules fn at absolute time t under the view's shard stamp.
func (v *shardView) At(t Time, fn Event) Handle {
	if t < v.e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, v.e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	h := v.e.push(t, v.e.now, v.src, v.seq, fn)
	v.seq++
	return h
}

// After schedules fn at Now+d under the view's shard stamp.
func (v *shardView) After(d Duration, fn Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return v.At(v.e.now+d, fn)
}

// Cancel deschedules a pending event (views share the engine's arena, so a
// handle from any view of the same engine works).
func (v *shardView) Cancel(h Handle) bool { return v.e.Cancel(h) }

// Every runs fn periodically under the view's shard stamp until stop is
// called; semantics match Engine.Every (idempotent stop, cancels the
// outstanding tick).
func (v *shardView) Every(period Duration, fn Event) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	stopped := false
	var next Handle
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			next = v.After(period, tick)
		}
	}
	next = v.After(period, tick)
	return func() {
		if stopped {
			return
		}
		stopped = true
		v.e.Cancel(next)
	}
}

// Stop stops the underlying engine's run loop.
func (v *shardView) Stop() { v.e.Stop() }
