package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// simCore abstracts the two execution modes of a logically sharded
// simulation: the parallel Sharded driver, and a single sequential Engine
// driven through per-shard views. The harness runs identically on both,
// which is the bit-identity claim at the core level.
type simCore interface {
	Shard(i int) Scheduler
	Send(src, dst int, d Duration, fn Event)
	Window() Duration
	Run() Time
	RunUntil(deadline Time) Time
}

// seqCore is the sequential realization: one engine stamped as coordinator,
// one view per logical shard, cross-shard sends degenerating to a local
// After under the source view's stamp.
type seqCore struct {
	e      *Engine
	views  []Scheduler
	window Duration
}

func newSeqCore(ns int, window Duration) *seqCore {
	if window <= 0 {
		window = noCutWindow
	}
	c := &seqCore{e: New(), window: window, views: make([]Scheduler, ns)}
	c.e.SetSrc(uint32(ns))
	for i := range c.views {
		c.views[i] = c.e.ShardView(uint32(i))
	}
	return c
}

func (c *seqCore) Shard(i int) Scheduler                   { return c.views[i] }
func (c *seqCore) Send(src, dst int, d Duration, fn Event) { c.views[src].After(d, fn) }
func (c *seqCore) Window() Duration                        { return c.window }
func (c *seqCore) Run() Time                               { return c.e.Run() }
func (c *seqCore) RunUntil(deadline Time) Time             { return c.e.RunUntil(deadline) }

// shardedHarness builds a little message-passing simulation over ns shards:
// each shard runs a deterministic RNG-driven loop that does local work and
// occasionally sends an event to another shard with at least minDelay of
// latency. Every executed event appends to its shard's log, so two runs are
// behaviorally identical iff the per-shard logs match.
type shardedHarness struct {
	s    simCore
	logs [][]string
	rngs []*rand.Rand
}

func newHarnessOn(core simCore, ns int, seed int64) *shardedHarness {
	h := &shardedHarness{
		s:    core,
		logs: make([][]string, ns),
		rngs: make([]*rand.Rand, ns),
	}
	for i := 0; i < ns; i++ {
		h.rngs[i] = rand.New(rand.NewSource(seed ^ int64(i)<<16))
	}
	return h
}

func newShardedHarness(ns, workers int, minDelay Duration, seed int64) *shardedHarness {
	s := NewSharded(ns, workers, minDelay)
	for i := 0; i < ns; i++ {
		for j := 0; j < ns; j++ {
			if i != j {
				s.Connect(i, j)
			}
		}
	}
	return newHarnessOn(s, ns, seed)
}

// hop logs one step on shard id and, while steps remain, schedules the next
// step locally or on a random peer.
func (h *shardedHarness) hop(id, steps int) {
	sch := h.s.Shard(id)
	h.logs[id] = append(h.logs[id], fmt.Sprintf("%d@%v", steps, sch.Now()))
	if steps <= 0 {
		return
	}
	r := h.rngs[id]
	if len(h.rngs) > 1 && r.Intn(3) == 0 {
		peer := r.Intn(len(h.rngs) - 1)
		if peer >= id {
			peer++
		}
		d := h.s.Window() + Duration(r.Intn(5000))*Nanosecond
		h.s.Send(id, peer, d, func() { h.hop(peer, steps-1) })
		return
	}
	sch.After(Duration(1+r.Intn(900))*Nanosecond, func() { h.hop(id, steps-1) })
}

func (h *shardedHarness) seed(ns int) {
	for i := 0; i < ns; i++ {
		id := i
		h.s.Shard(id).At(Time(id)*Nanosecond, func() { h.hop(id, 40) })
	}
}

func runHarness(ns, workers int, seed int64) ([][]string, Time) {
	h := newShardedHarness(ns, workers, Microsecond, seed)
	h.seed(ns)
	end := h.s.Run()
	return h.logs, end
}

// TestShardedWorkerCountIndependence is the core determinism claim: the
// per-shard event sequences must be byte-identical no matter how many
// workers execute the logical shards.
func TestShardedWorkerCountIndependence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		ref, refEnd := runHarness(5, 1, seed)
		for _, workers := range []int{2, 3, 5} {
			got, end := runHarness(5, workers, seed)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d: logs differ between 1 and %d workers:\n1: %v\n%d: %v",
					seed, workers, ref, workers, got)
			}
			if refEnd != end {
				t.Fatalf("seed %d: final time %v (1 worker) vs %v (%d workers)", seed, refEnd, end, workers)
			}
		}
	}
}

// TestSequentialViewsMatchSharded is the cross-mode bit-identity claim: one
// sequential Engine driven through per-shard views executes the exact same
// event sequence as the parallel core, for any worker count, because both
// order every event by the same (at, schedAt, src, seq) key.
func TestSequentialViewsMatchSharded(t *testing.T) {
	const ns = 5
	for _, seed := range []int64{1, 4, 9} {
		hs := newHarnessOn(newSeqCore(ns, Microsecond), ns, seed)
		hs.seed(ns)
		ref := hs.s.Run()
		for _, workers := range []int{1, 3, 5} {
			got, end := runHarness(ns, workers, seed)
			if !reflect.DeepEqual(hs.logs, got) {
				t.Fatalf("seed %d: sequential views diverged from %d workers:\nseq:     %v\nsharded: %v",
					seed, workers, hs.logs, got)
			}
			if ref != end {
				t.Fatalf("seed %d: final time %v (sequential) vs %v (%d workers)", seed, ref, end, workers)
			}
		}
	}
}

// TestShardedRunUntilMatchesRun pins that windowed RunUntil epochs reach the
// same state as a single drain, and that the clock lands on the deadline.
func TestShardedRunUntilMatchesRun(t *testing.T) {
	ref, _ := runHarness(4, 2, 3)

	h := newShardedHarness(4, 2, Microsecond, 3)
	for i := 0; i < 4; i++ {
		id := i
		h.s.Shard(id).At(Time(id)*Nanosecond, func() { h.hop(id, 40) })
	}
	for d := 5 * Microsecond; d <= 500*Microsecond; d += 5 * Microsecond {
		if got := h.s.RunUntil(d); got != d {
			t.Fatalf("RunUntil(%v) = %v", d, got)
		}
	}
	if !reflect.DeepEqual(ref, h.logs) {
		t.Fatalf("chunked RunUntil diverged from Run:\nrun:   %v\nchunk: %v", ref, h.logs)
	}
}

// TestShardedGlobalBarrier checks coordinator events interleave with shard
// events exactly by the documented key order: a global tick at time T runs
// after every shard event with time < T (and those scheduled earlier at T)
// and observes all their state.
func TestShardedGlobalBarrier(t *testing.T) {
	s := NewSharded(3, 3, Microsecond)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				s.Connect(i, j)
			}
		}
	}
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		id := i
		// 10 local events per shard, every 300ns starting at 300ns.
		var step func()
		n := 0
		step = func() {
			counts[id]++
			if n++; n < 10 {
				s.Shard(id).After(300*Nanosecond, step)
			}
		}
		s.Shard(id).After(300*Nanosecond, step)
	}
	var samples []int
	stop := s.Every(Microsecond, func() {
		total := 0
		for _, c := range counts {
			total += c
		}
		samples = append(samples, total)
	})
	s.RunUntil(4 * Microsecond)
	stop()
	// At each μs boundary every shard has fired floor(T/300ns) of its 10
	// events: 3, 6, 9, 10 → totals 9, 18, 27, 30.
	want := []int{9, 18, 27, 30}
	if !reflect.DeepEqual(samples, want) {
		t.Fatalf("barrier samples = %v, want %v", samples, want)
	}
}

// TestShardedCrossShardBelowWindowPanics pins the lookahead guard.
func TestShardedCrossShardBelowWindowPanics(t *testing.T) {
	s := NewSharded(2, 1, Microsecond)
	s.Connect(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("sub-window cross-shard send did not panic")
		}
	}()
	s.Send(0, 1, 500*Nanosecond, func() {})
}

// TestShardedSingleShardDegenerates checks the no-cut configuration: one
// shard, no window bound, plain sequential behavior.
func TestShardedSingleShardDegenerates(t *testing.T) {
	s := NewSharded(1, 4, 0)
	var order []Time
	sch := s.Shard(0)
	sch.At(3*Microsecond, func() { order = append(order, sch.Now()) })
	sch.At(Microsecond, func() {
		order = append(order, sch.Now())
		sch.After(500*Nanosecond, func() { order = append(order, sch.Now()) })
	})
	end := s.Run()
	want := []Time{Microsecond, 1500 * Nanosecond, 3 * Microsecond}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if end != 3*Microsecond {
		t.Fatalf("end = %v", end)
	}
}

// TestShardedStats checks the aggregate counters are sums over components.
func TestShardedStats(t *testing.T) {
	logs, _ := runHarness(3, 2, 9)
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	h := newShardedHarness(3, 2, Microsecond, 9)
	for i := 0; i < 3; i++ {
		id := i
		h.s.Shard(id).At(Time(id)*Nanosecond, func() { h.hop(id, 40) })
	}
	h.s.Run()
	if got := h.s.(*Sharded).Stats().Processed; got != uint64(total) {
		t.Fatalf("Processed = %d, want %d logged events", got, total)
	}
}
