package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type intLess struct{}

func (intLess) Less(a, b int) bool { return a < b }

// Property: pushing any multiset of ints and popping them all yields the
// sorted order — i.e. the 4-ary heap is a correct priority queue.
func TestQuadHeapSortsProperty(t *testing.T) {
	f := func(xs []int) bool {
		var h []int
		for _, x := range xs {
			h = quadPush(intLess{}, h, x)
		}
		got := make([]int, 0, len(xs))
		for len(h) > 0 {
			var x int
			x, h = quadPop(intLess{}, h)
			got = append(got, x)
		}
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Interleaved pushes and pops must always pop the current minimum.
func TestQuadHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h []int
	var mirror []int
	for op := 0; op < 5000; op++ {
		if len(mirror) == 0 || rng.Intn(3) > 0 {
			x := rng.Intn(1000)
			h = quadPush(intLess{}, h, x)
			mirror = append(mirror, x)
		} else {
			var got int
			got, h = quadPop(intLess{}, h)
			sort.Ints(mirror)
			if got != mirror[0] {
				t.Fatalf("op %d: popped %d, want min %d", op, got, mirror[0])
			}
			mirror = mirror[1:]
		}
	}
}
