package sim

import "testing"

// The BenchmarkEngine* suite measures the three scheduler hot paths —
// schedule+fire, schedule+cancel, and bulk churn — for the arena engine
// and for the preserved container/heap baseline (bench_baseline_test.go).
// CI runs these with -benchmem; the arena engine must stay well below the
// baseline's allocs/op (the acceptance bar is a ≥30% reduction).

// noop is a shared callback so closure allocation does not pollute the
// per-event numbers.
var noop = func() {}

// steady-state schedule→fire of a single outstanding event: the arena
// engine reuses one slot forever, the baseline allocates per event.

func BenchmarkEngineScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := New()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Nanosecond, noop)
		e.Step()
	}
}

func BenchmarkEngineScheduleFireBaseline(b *testing.B) {
	b.ReportAllocs()
	var e baselineEngine
	for i := 0; i < b.N; i++ {
		e.At(e.now+Nanosecond, noop)
		e.Step()
	}
}

// schedule→cancel→drain: exercises lazy deletion and free-list reuse of
// cancelled slots.

func BenchmarkEngineScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := New()
	for i := 0; i < b.N; i++ {
		h := e.At(e.Now()+Nanosecond, noop)
		e.Cancel(h)
		e.Step() // pops the cancelled slot back onto the free list
	}
}

func BenchmarkEngineScheduleCancelBaseline(b *testing.B) {
	b.ReportAllocs()
	var e baselineEngine
	for i := 0; i < b.N; i++ {
		it := e.At(e.now+Nanosecond, noop)
		e.Cancel(it)
		e.Step()
	}
}

// churn with a deep queue: 1024 outstanding events, each firing schedules
// a successor, so the heap stays hot at depth log₄(1024) vs log₂(1024).

func benchChurn(b *testing.B, depth int) {
	b.ReportAllocs()
	e := New()
	var self func()
	self = func() { e.After(Microsecond, self) }
	for j := 0; j < depth; j++ {
		e.After(Duration(j)*Nanosecond, self)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineChurn1k(b *testing.B) { benchChurn(b, 1024) }

func BenchmarkEngineChurn1kBaseline(b *testing.B) {
	b.ReportAllocs()
	var e baselineEngine
	var self func()
	self = func() { e.At(e.now+Microsecond, self) }
	for j := 0; j < 1024; j++ {
		e.At(Duration(j)*Nanosecond, self)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// the original whole-engine benchmark: build, fill, drain.

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j), noop)
		}
		e.Run()
	}
}

func BenchmarkEngineScheduleRunBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e baselineEngine
		for j := 0; j < 1000; j++ {
			e.At(Time(j), noop)
		}
		e.Run()
	}
}
