package sim

// Operational health counters for the sharded core. Unlike EngineStats these
// are NOT deterministic: they count synchronization behavior (stalls, spins,
// wall-clock seal latency) that depends on worker scheduling and machine
// load, so they must never feed a Report metric or the deterministic
// telemetry registry. They exist for live exposition (the control-plane
// daemon's /metrics endpoint) where a flapping window-stall rate or a
// saturated ring is an actionable signal.

// ShardHealth is a snapshot of one shard's synchronization counters.
type ShardHealth struct {
	// Shard is the logical shard ID.
	Shard int
	// WindowStalls counts tryAdvance passes that returned without work
	// because an upstream shard had not yet sealed the previous window.
	WindowStalls uint64
	// SendSpins counts backpressure spins in Send while a full outbound
	// ring was drained by its consumer.
	SendSpins uint64
	// Seals counts fully executed-and-sealed windows.
	Seals uint64
	// SealNanos is the cumulative wall-clock time spent executing sealed
	// windows, in nanoseconds; SealNanos/Seals is the mean seal latency.
	SealNanos uint64
	// RingPeak is the maximum number of events drained from this shard's
	// inbound rings in a single drain pass — a lower bound on peak ring
	// occupancy (capacity ringCapacity per upstream ring).
	RingPeak uint64
}

// HealthSource is implemented by drivers that expose per-shard operational
// health. The sequential Engine trivially satisfies it with no shards.
type HealthSource interface {
	Health() []ShardHealth
}

var (
	_ HealthSource = (*Engine)(nil)
	_ HealthSource = (*Sharded)(nil)
)

// Health implements HealthSource: a sequential engine has no shards and
// therefore no synchronization counters.
func (e *Engine) Health() []ShardHealth { return nil }

// Health returns a snapshot of every shard's counters. Safe to call
// concurrently with a running epoch (values are monotonic atomics), though a
// mid-epoch snapshot may be mutually inconsistent across fields.
func (s *Sharded) Health() []ShardHealth {
	out := make([]ShardHealth, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardHealth{
			Shard:        i,
			WindowStalls: sh.health.windowStalls.Load(),
			SendSpins:    sh.health.sendSpins.Load(),
			Seals:        sh.health.seals.Load(),
			SealNanos:    sh.health.sealNanos.Load(),
			RingPeak:     sh.health.ringPeak.Load(),
		}
	}
	return out
}
