// Package apps models the application-level workloads of §5.3: a
// Memcached-like latency-sensitive key-value tenant, a MongoDB-like
// bandwidth-hungry bulk-fetch tenant (Fig 13), and the Elastic Block
// Storage task mix — Storage Agents, Block Agents with 3-way replication,
// and Garbage Collection (Fig 14).
//
// The applications are transport-agnostic: they run over any fabric that
// implements the Net interface (μFAB's vfabric or the baseline fabric),
// sending framed messages through workload.Messages trackers and measuring
// query/task completion times end-to-end.
package apps

import (
	"fmt"
	"math/rand"

	"ufab/internal/sim"
	"ufab/internal/stats"
	"ufab/internal/topo"
	"ufab/internal/workload"
)

// Net abstracts the fabric the applications run over.
type Net interface {
	// Dial returns the message channel for VM-pair src→dst inside the
	// given VF with the given token weight, creating it on first use.
	Dial(vf int32, tokens float64, src, dst topo.NodeID) *workload.Messages
	// Engine returns the simulation clock driving the fabric.
	Engine() sim.Scheduler
}

// VM identifies an application VM by the host it is placed on and an index
// for multi-VM hosts.
type VM struct {
	Host topo.NodeID
	Idx  int
}

// PlaceVMs distributes n VMs evenly (round-robin) over the given hosts.
func PlaceVMs(hosts []topo.NodeID, n int) []VM {
	vms := make([]VM, n)
	for i := 0; i < n; i++ {
		vms[i] = VM{Host: hosts[i%len(hosts)], Idx: i / len(hosts)}
	}
	return vms
}

// rpc performs a request/response exchange: a small request message
// src→dst, then a response of respSize dst→src; done fires when the
// response completes.
type rpcer struct {
	net     Net
	vf      int32
	tokens  float64
	reqSize int64
}

func (r *rpcer) call(src, dst topo.NodeID, respSize int64, done func(qct sim.Duration)) {
	eng := r.net.Engine()
	start := eng.Now()
	req := r.net.Dial(r.vf, r.tokens, src, dst)
	resp := r.net.Dial(r.vf, r.tokens, dst, src)
	req.SendFunc(r.reqSize, start, func(workload.Message, sim.Duration) {
		resp.SendFunc(respSize, eng.Now(), func(workload.Message, sim.Duration) {
			done(eng.Now() - start)
		})
	})
}

// MemcachedConfig parameterizes the latency-sensitive tenant.
type MemcachedConfig struct {
	VF     int32
	Tokens float64 // per VM-pair token weight
	// Clients and Servers are VM placements.
	Clients, Servers []VM
	// Period is the client think time between query starts; a query
	// that takes longer defers the next one (closed loop).
	Period sim.Duration
	// Dist is the value-size distribution (default workload.KeyValue).
	Dist *workload.SizeDist
	Seed int64
}

// Memcached is the Fig-13 latency-sensitive application.
type Memcached struct {
	cfg MemcachedConfig
	net Net
	rng *rand.Rand
	rpc rpcer

	// QCT collects query completion times in microseconds.
	QCT stats.Samples
	// Queries counts completed queries.
	Queries int64

	startedAt sim.Time
	stopped   bool
}

// NewMemcached creates the tenant; Start launches the client loops.
func NewMemcached(net Net, cfg MemcachedConfig) *Memcached {
	if cfg.Dist == nil {
		cfg.Dist = workload.KeyValue()
	}
	if cfg.Period == 0 {
		cfg.Period = 200 * sim.Microsecond
	}
	m := &Memcached{
		cfg: cfg,
		net: net,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x6d656d63)),
		rpc: rpcer{net: net, vf: cfg.VF, tokens: cfg.Tokens, reqSize: 64},
	}
	return m
}

// Start launches one closed query loop per client VM.
func (m *Memcached) Start() {
	eng := m.net.Engine()
	m.startedAt = eng.Now()
	for ci := range m.cfg.Clients {
		client := m.cfg.Clients[ci]
		var loop func()
		loop = func() {
			if m.stopped {
				return
			}
			issued := eng.Now()
			server := m.cfg.Servers[m.rng.Intn(len(m.cfg.Servers))]
			size := m.cfg.Dist.Sample(m.rng)
			if client.Host == server.Host {
				// Intra-host query: no fabric involvement; complete
				// after a nominal local latency.
				eng.After(5*sim.Microsecond, func() {
					m.QCT.Add((eng.Now() - issued).Micros())
					m.Queries++
					m.scheduleNext(issued, loop)
				})
				return
			}
			m.rpc.call(client.Host, server.Host, size, func(qct sim.Duration) {
				m.QCT.Add(qct.Micros())
				m.Queries++
				m.scheduleNext(issued, loop)
			})
		}
		// Desynchronize client starts.
		eng.After(sim.Duration(m.rng.Int63n(int64(m.cfg.Period))), loop)
	}
}

func (m *Memcached) scheduleNext(issued sim.Time, loop func()) {
	eng := m.net.Engine()
	next := issued + m.cfg.Period
	if now := eng.Now(); next < now {
		next = now
	}
	eng.At(next, loop)
}

// Stop halts the client loops after their in-flight queries.
func (m *Memcached) Stop() { m.stopped = true }

// QPS returns completed queries per second since Start.
func (m *Memcached) QPS(now sim.Time) float64 {
	el := (now - m.startedAt).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.Queries) / el
}

// MongoConfig parameterizes the bandwidth-hungry tenant: each client
// continuously fetches FetchSize from a random server (500 KB, §5.3).
type MongoConfig struct {
	VF               int32
	Tokens           float64
	Clients, Servers []VM
	FetchSize        int64
	// Concurrency is the number of outstanding fetches per client VM
	// (default 1).
	Concurrency int
	Seed        int64
}

// Mongo is the Fig-13 background bulk-fetch application.
type Mongo struct {
	cfg     MongoConfig
	net     Net
	rng     *rand.Rand
	rpc     rpcer
	Fetches int64
	stopped bool
}

// NewMongo creates the tenant.
func NewMongo(net Net, cfg MongoConfig) *Mongo {
	if cfg.FetchSize == 0 {
		cfg.FetchSize = 500_000
	}
	return &Mongo{
		cfg: cfg,
		net: net,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x6d6f6e67)),
		rpc: rpcer{net: net, vf: cfg.VF, tokens: cfg.Tokens, reqSize: 64},
	}
}

// Start launches the continuous fetch loops per client VM.
func (m *Mongo) Start() {
	eng := m.net.Engine()
	conc := m.cfg.Concurrency
	if conc < 1 {
		conc = 1
	}
	for ci := range m.cfg.Clients {
		for c := 0; c < conc; c++ {
			m.startLoop(eng, m.cfg.Clients[ci])
		}
	}
}

func (m *Mongo) startLoop(eng sim.Scheduler, client VM) {
	{
		var loop func()
		loop = func() {
			if m.stopped {
				return
			}
			server := m.cfg.Servers[m.rng.Intn(len(m.cfg.Servers))]
			if client.Host == server.Host {
				eng.After(10*sim.Microsecond, func() { m.Fetches++; loop() })
				return
			}
			m.rpc.call(client.Host, server.Host, m.cfg.FetchSize, func(sim.Duration) {
				m.Fetches++
				loop()
			})
		}
		eng.After(sim.Duration(m.rng.Int63n(int64(100*sim.Microsecond))), loop)
	}
}

// Stop halts the fetch loops.
func (m *Mongo) Stop() { m.stopped = true }

// EBSConfig parameterizes the Fig-14 storage task mix. Storage Agents sit
// on the left hosts; Block Agents, Chunk Servers and GC agents share the
// right hosts.
type EBSConfig struct {
	// SAHosts host one Storage Agent VM each; Storage hosts each run a
	// Block Agent, a Chunk Server and a GC agent VM.
	SAHosts, StorageHosts []topo.NodeID
	// Tokens per task VF (guarantees: SA 2G, BA 6G, GC 1G at BU=100M).
	SATokens, BATokens, GCTokens float64
	// SAPeriod (320 μs), SASize (64 KB), GCPeriod (1 ms), GCReadSize,
	// GCWriteSize parameterize the tasks.
	SAPeriod, GCPeriod      sim.Duration
	SASize                  int64
	GCReadSize, GCWriteSize int64
	// Replicas is the Block Agent replication factor (3).
	Replicas int
	Seed     int64
	// VF ids for the three tasks.
	SAVF, BAVF, GCVF int32
}

func (c *EBSConfig) setDefaults() {
	if c.SAPeriod == 0 {
		c.SAPeriod = 320 * sim.Microsecond
	}
	if c.GCPeriod == 0 {
		c.GCPeriod = sim.Millisecond
	}
	if c.SASize == 0 {
		c.SASize = 64 << 10
	}
	if c.GCReadSize == 0 {
		c.GCReadSize = 256 << 10
	}
	if c.GCWriteSize == 0 {
		c.GCWriteSize = 128 << 10
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.SAVF == 0 {
		c.SAVF = 101
	}
	if c.BAVF == 0 {
		c.BAVF = 102
	}
	if c.GCVF == 0 {
		c.GCVF = 103
	}
}

// EBS is the storage scenario: it records SA, BA and total task completion
// times (milliseconds).
type EBS struct {
	cfg EBSConfig
	net Net
	rng *rand.Rand

	// SATCT, BATCT, TotalTCT collect task completion times in ms.
	SATCT, BATCT, TotalTCT stats.Samples
	// GCTCT collects GC cycle times in ms.
	GCTCT stats.Samples

	stopped bool
}

// NewEBS creates the storage tenant mix.
func NewEBS(net Net, cfg EBSConfig) *EBS {
	cfg.setDefaults()
	return &EBS{cfg: cfg, net: net, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x65627300))}
}

// Start launches the SA write loops and GC cycles.
func (e *EBS) Start() {
	eng := e.net.Engine()
	// Storage Agents: a 64 KB message to a random Block Agent every
	// SAPeriod (open loop — bursts overlap under slowdown, exactly the
	// production pathology of Fig 2).
	for _, sa := range e.cfg.SAHosts {
		sa := sa
		eng.Every(e.cfg.SAPeriod, func() {
			if e.stopped {
				return
			}
			e.storeTask(sa)
		})
	}
	// GC: read from a random chunk server then write back, every
	// GCPeriod per storage host.
	for _, gcHost := range e.cfg.StorageHosts {
		gcHost := gcHost
		eng.Every(e.cfg.GCPeriod, func() {
			if e.stopped {
				return
			}
			e.gcTask(gcHost)
		})
	}
}

// Stop halts new task generation.
func (e *EBS) Stop() { e.stopped = true }

func (e *EBS) storeTask(sa topo.NodeID) {
	eng := e.net.Engine()
	start := eng.Now()
	ba := e.cfg.StorageHosts[e.rng.Intn(len(e.cfg.StorageHosts))]
	e.sendMsg(e.cfg.SAVF, e.cfg.SATokens, sa, ba, e.cfg.SASize, func() {
		saDone := eng.Now()
		e.SATCT.Add((saDone - start).Millis())
		// Block Agent replicates to distinct chunk servers.
		targets := e.pickChunkServers(ba)
		remaining := len(targets)
		for _, cs := range targets {
			e.sendMsg(e.cfg.BAVF, e.cfg.BATokens, ba, cs, e.cfg.SASize, func() {
				remaining--
				if remaining == 0 {
					now := eng.Now()
					e.BATCT.Add((now - saDone).Millis())
					e.TotalTCT.Add((now - start).Millis())
				}
			})
		}
	})
}

func (e *EBS) pickChunkServers(ba topo.NodeID) []topo.NodeID {
	var others []topo.NodeID
	for _, h := range e.cfg.StorageHosts {
		if h != ba {
			others = append(others, h)
		}
	}
	e.rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	n := e.cfg.Replicas
	if n > len(others) {
		n = len(others)
	}
	return others[:n]
}

func (e *EBS) gcTask(gcHost topo.NodeID) {
	eng := e.net.Engine()
	start := eng.Now()
	cs := e.cfg.StorageHosts[e.rng.Intn(len(e.cfg.StorageHosts))]
	if cs == gcHost {
		return // local read-modify-write: no fabric traffic
	}
	e.sendMsg(e.cfg.GCVF, e.cfg.GCTokens, cs, gcHost, e.cfg.GCReadSize, func() {
		e.sendMsg(e.cfg.GCVF, e.cfg.GCTokens, gcHost, cs, e.cfg.GCWriteSize, func() {
			e.GCTCT.Add((eng.Now() - start).Millis())
		})
	})
}

// sendMsg sends one tracked message and fires done on completion.
func (e *EBS) sendMsg(vf int32, tokens float64, src, dst topo.NodeID, size int64, done func()) {
	ch := e.net.Dial(vf, tokens, src, dst)
	ch.SendFunc(size, e.net.Engine().Now(), func(workload.Message, sim.Duration) { done() })
}

// Summary formats the three TCT sample sets for EXPERIMENTS.md rows.
func (e *EBS) Summary() string {
	return fmt.Sprintf("SA %s | BA %s | Total %s",
		e.SATCT.Summary("ms"), e.BATCT.Summary("ms"), e.TotalTCT.Summary("ms"))
}
