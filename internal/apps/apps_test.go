package apps

import (
	"testing"

	"ufab/internal/sim"
	"ufab/internal/topo"
	"ufab/internal/workload"
)

// fakeNet completes every message after size/rate + a fixed latency,
// isolating the application logic from any transport.
type fakeNet struct {
	eng     *sim.Engine
	rate    float64 // bytes per second
	latency sim.Duration
	conns   map[[3]int64]*workload.Messages
	// Dials counts distinct channels created.
	Dials int
}

func newFakeNet(rate float64, latency sim.Duration) *fakeNet {
	return &fakeNet{eng: sim.New(), rate: rate, latency: latency, conns: map[[3]int64]*workload.Messages{}}
}

func (f *fakeNet) Engine() sim.Scheduler { return f.eng }

func (f *fakeNet) Dial(vf int32, tokens float64, src, dst topo.NodeID) *workload.Messages {
	k := [3]int64{int64(vf), int64(src), int64(dst)}
	if c := f.conns[k]; c != nil {
		return c
	}
	msgs := &workload.Messages{}
	f.conns[k] = msgs
	f.Dials++
	msgs.SetKick(func() {
		// Serve the whole pending backlog after a service delay.
		n := msgs.Pending()
		msgs.Consume(n)
		delay := f.latency + sim.DurationFromSeconds(float64(n)/f.rate)
		f.eng.After(delay, func() { msgs.Delivered(n, f.eng.Now()) })
	})
	return msgs
}

func testVMs(n int, hostBase int) []VM {
	hosts := make([]topo.NodeID, 4)
	for i := range hosts {
		hosts[i] = topo.NodeID(hostBase + i)
	}
	return PlaceVMs(hosts, n)
}

func TestPlaceVMs(t *testing.T) {
	hosts := []topo.NodeID{10, 11, 12}
	vms := PlaceVMs(hosts, 7)
	if len(vms) != 7 {
		t.Fatalf("placed %d", len(vms))
	}
	counts := map[topo.NodeID]int{}
	for _, vm := range vms {
		counts[vm.Host]++
	}
	// Round-robin: 3,2,2.
	if counts[10] != 3 || counts[11] != 2 || counts[12] != 2 {
		t.Fatalf("placement %v", counts)
	}
	if vms[3].Idx != 1 {
		t.Errorf("vm 3 idx = %d, want 1 (second on host 10)", vms[3].Idx)
	}
}

func TestMemcachedClosedLoop(t *testing.T) {
	net := newFakeNet(1e9, 10*sim.Microsecond) // 8 Gbps, 10 μs latency
	mc := NewMemcached(net, MemcachedConfig{
		VF: 1, Tokens: 4,
		Clients: testVMs(4, 0),
		Servers: testVMs(8, 100),
		Period:  100 * sim.Microsecond,
		Seed:    1,
	})
	mc.Start()
	net.eng.RunUntil(10 * sim.Millisecond)
	// 4 clients, one query per 100 μs each (QCT ≈ 20 μs ≪ period):
	// ≈ 400 queries.
	if mc.Queries < 350 || mc.Queries > 450 {
		t.Fatalf("queries = %d, want ≈400", mc.Queries)
	}
	qps := mc.QPS(net.eng.Now())
	if qps < 35000 || qps > 45000 {
		t.Fatalf("QPS = %.0f", qps)
	}
	// Each query = request + response trip ≥ 2× latency.
	if mc.QCT.Min() < 20 {
		t.Errorf("QCT min = %v μs, want ≥ 20", mc.QCT.Min())
	}
	mc.Stop()
	at := mc.Queries
	net.eng.RunUntil(12 * sim.Millisecond)
	if mc.Queries > at+8 {
		t.Errorf("queries kept flowing after Stop: %d -> %d", at, mc.Queries)
	}
}

func TestMemcachedClosedLoopThrottlesUnderSlowdown(t *testing.T) {
	slow := newFakeNet(2e6, 2*sim.Millisecond) // queries take >2 ms
	mc := NewMemcached(slow, MemcachedConfig{
		VF: 1, Tokens: 4,
		Clients: testVMs(2, 0),
		Servers: testVMs(4, 100),
		Period:  100 * sim.Microsecond,
		Seed:    2,
	})
	mc.Start()
	slow.eng.RunUntil(10 * sim.Millisecond)
	// Closed loop: with ≈4 ms per query, each client completes ≈2.
	if mc.Queries > 10 {
		t.Fatalf("queries = %d, closed loop should throttle", mc.Queries)
	}
}

func TestMongoContinuousFetch(t *testing.T) {
	net := newFakeNet(1.25e9, 5*sim.Microsecond) // 10 Gbps
	md := NewMongo(net, MongoConfig{
		VF: 2, Tokens: 8,
		Clients:   testVMs(4, 0),
		Servers:   testVMs(4, 100),
		FetchSize: 500_000,
		Seed:      3,
	})
	md.Start()
	net.eng.RunUntil(20 * sim.Millisecond)
	// Each fetch ≈ 500KB/1.25GBps = 400 μs + latency: ≈ 48 per client.
	if md.Fetches < 100 || md.Fetches > 250 {
		t.Fatalf("fetches = %d", md.Fetches)
	}
	md.Stop()
}

func TestMongoConcurrency(t *testing.T) {
	run := func(conc int) int64 {
		net := newFakeNet(1.25e9, 5*sim.Microsecond)
		md := NewMongo(net, MongoConfig{
			VF: 2, Tokens: 8,
			Clients:     testVMs(2, 0),
			Servers:     testVMs(4, 100),
			Concurrency: conc,
			Seed:        4,
		})
		md.Start()
		net.eng.RunUntil(10 * sim.Millisecond)
		return md.Fetches
	}
	if c1, c3 := run(1), run(3); c3 < 2*c1 {
		t.Fatalf("concurrency scaling: %d vs %d", c1, c3)
	}
}

func TestEBSTaskPipeline(t *testing.T) {
	net := newFakeNet(1.25e9, 5*sim.Microsecond)
	hostsL := []topo.NodeID{1, 2, 3, 4}
	hostsR := []topo.NodeID{5, 6, 7, 8}
	ebs := NewEBS(net, EBSConfig{
		SAHosts:      hostsL,
		StorageHosts: hostsR,
		SATokens:     20, BATokens: 60, GCTokens: 10,
		Seed: 5,
	})
	ebs.Start()
	net.eng.RunUntil(10 * sim.Millisecond)
	// 4 SAs × one task per 320 μs ≈ 124 tasks.
	if ebs.SATCT.Len() < 100 || ebs.SATCT.Len() > 140 {
		t.Fatalf("SA tasks = %d", ebs.SATCT.Len())
	}
	// Every completed total spans SA + 3-way replication: total ≥ SA.
	if ebs.TotalTCT.Len() == 0 {
		t.Fatal("no completed totals")
	}
	if ebs.TotalTCT.Mean() <= ebs.SATCT.Mean() {
		t.Errorf("total %.3f ≤ SA %.3f", ebs.TotalTCT.Mean(), ebs.SATCT.Mean())
	}
	// GC ran too.
	if ebs.GCTCT.Len() == 0 {
		t.Fatal("no GC cycles")
	}
	if ebs.Summary() == "" {
		t.Error("empty summary")
	}
	ebs.Stop()
}

func TestEBSConfigDefaults(t *testing.T) {
	c := EBSConfig{}
	c.setDefaults()
	if c.SAPeriod != 320*sim.Microsecond || c.SASize != 64<<10 || c.Replicas != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.SAVF == 0 || c.BAVF == 0 || c.GCVF == 0 {
		t.Error("VF ids unset")
	}
}

func TestRPCSequencing(t *testing.T) {
	net := newFakeNet(1e9, 50*sim.Microsecond)
	r := rpcer{net: net, vf: 1, tokens: 1, reqSize: 64}
	var qct sim.Duration
	r.call(1, 2, 1000, func(d sim.Duration) { qct = d })
	net.eng.Run()
	// Two trips of ≥50 μs each.
	if qct < 100*sim.Microsecond {
		t.Fatalf("qct = %v, want ≥ 100 μs (two trips)", qct)
	}
	// Channels: one per direction.
	if net.Dials != 2 {
		t.Fatalf("dials = %d, want 2", net.Dials)
	}
}
