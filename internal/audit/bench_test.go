package audit

import "testing"

// BenchmarkAuditorTick measures the steady-state cost of one auditor tick
// over a mid-size fabric: 32 links, 64 pairs, 16 VFs. This is the marginal
// per-sample overhead an audited run pays on top of telemetry.
func BenchmarkAuditorTick(b *testing.B) {
	const (
		nLinks = 32
		nPairs = 64
		nVFs   = 16
	)
	a := New(Config{})
	s := &Sample{
		Links: make([]LinkSample, nLinks),
		Pairs: make([]PairSample, nPairs),
		VFs:   make([]VFSample, nVFs),
	}
	entities := make([]string, nLinks)
	for i := range entities {
		entities[i] = "link.bench-" + string(rune('a'+i%26))
	}
	routes := make([][]int32, nPairs)
	for i := range routes {
		routes[i] = []int32{int32(i % nLinks), int32((i + 1) % nLinks)}
	}
	t := int64(0)
	fill := func() {
		t += tickPS
		bytesAt := func(rate float64) int64 { return int64(rate / 8 * float64(t) / 1e12) }
		for i := range s.Links {
			s.Links[i] = LinkSample{
				Entity: entities[i], TargetBps: 9.5e9, TxBytes: uint64(bytesAt(8e9)),
				QueueBytes: 4096, HasCore: true, PhiTokens: 80, WindowBytes: 200_000,
				LivePhiCand: 80, LivePhiActive: 80,
			}
		}
		for i := range s.Pairs {
			s.Pairs[i] = PairSample{
				VM: int64(1000 + i), VF: int32(i % nVFs), PhiBps: 2e9,
				Backlogged: true, Delivered: bytesAt(2e9), Links: routes[i],
			}
		}
		for i := range s.VFs {
			s.VFs[i] = VFSample{ID: int32(i), GuaranteeBps: 2e9}
		}
	}
	// Warm past the window so the steady-state path (with rate queries and
	// pruned histories) is what gets measured.
	for i := 0; i < 50; i++ {
		fill()
		a.Tick(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		a.Tick(s)
	}
}
