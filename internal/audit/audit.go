// Package audit implements the online predictability auditor: it watches a
// running fabric through per-tick samples and flight-recorder events and
// checks, per tenant and per link, the paper's predictability contract —
// minimum-bandwidth guarantees (Eqn 1), work conservation, the
// admission-derived queue bound, and μFAB-C register accounting. Each
// sustained violation becomes a structured Finding; faults injected by
// internal/chaos open "excused" windows so expected degradation is
// distinguished from genuine bugs.
//
// The auditor is an observer only: it allocates its own state, never
// mutates samples, and never feeds back into the simulation, so audited
// runs stay bit-identical to unaudited ones.
package audit

import (
	"fmt"

	"ufab/internal/telemetry"
)

// Config tunes the auditor's tolerances. The zero value means "defaults";
// time quantities are simulated picoseconds (the flight recorder's unit).
type Config struct {
	// Log receives findings. Several auditors (one per audited fabric of a
	// run) may share one Log.
	Log *Log

	// MinBWTolerance is the fractional slack on the hose guarantee: a
	// fully backlogged VF violates when its windowed rate stays below
	// (1-MinBWTolerance)·guarantee (default 0.10).
	MinBWTolerance float64
	// CheckWindowPS is the rate-averaging window (default 2 ms).
	CheckWindowPS int64
	// WarmupPS exempts a subject's first moments: a VF, pair or link is
	// checked only after it has existed this long (default 3 ms).
	WarmupPS int64
	// HoldTicks is how many consecutive violating ticks a min-BW, queue or
	// negative-register streak needs before it becomes a finding
	// (default 4).
	HoldTicks int

	// WCSpareFrac: work conservation is checked only when every link of a
	// backlogged pair's active path has spare > WCSpareFrac·target
	// (default 0.25) — small headroom is indistinguishable from the 5%
	// η-headroom and estimator noise.
	WCSpareFrac float64
	// WCGainFrac: the pair violates when its rate stays under
	// guarantee + WCGainFrac·spare (default 0.10).
	WCGainFrac float64
	// WCHoldTicks is the persistence requirement for work-conservation
	// findings (default 8; convergence transients are longer than
	// guarantee transients).
	WCHoldTicks int

	// QueueFloorBytes + QueueFactorW·W_l bounds a core link's queue
	// (defaults 64 KiB and 1.5): W_l is the admitted sending-window sum,
	// the two-stage admission's burst bound.
	QueueFloorBytes int64
	QueueFactorW    float64

	// AcctTolerance (default 0.10) and AcctAbsTokens (default 4) bound the
	// Φ_l register against the live VM-pair token sum; AcctHoldPS is how
	// long a drift must persist (default: the check window; vfabric raises
	// it to the core's cleanup lag, the declared staleness bound).
	AcctTolerance float64
	AcctAbsTokens float64
	AcctHoldPS    int64

	// FaultExcusePS is the excused window opened after each applied chaos
	// fault event (default 5 ms).
	FaultExcusePS int64
	// MaxContextEvents caps the flight-recorder context attached to one
	// finding (default 12).
	MaxContextEvents int

	// Per-check switches. vfabric disables the queue bound for μFAB′
	// fabrics (DisableTwoStage removes the burst bound by design). The
	// ledger bound only runs on links whose samples carry a committed
	// subscription (HasLedger), i.e. when an admission ledger is wired in.
	DisableMinBW            bool
	DisableWorkConservation bool
	DisableQueueBound       bool
	DisableAccounting       bool
	DisableLedgerBound      bool
}

func (c *Config) setDefaults() {
	if c.MinBWTolerance == 0 {
		c.MinBWTolerance = 0.10
	}
	if c.CheckWindowPS == 0 {
		c.CheckWindowPS = 2_000_000_000 // 2 ms
	}
	if c.WarmupPS == 0 {
		c.WarmupPS = 3_000_000_000 // 3 ms
	}
	if c.HoldTicks == 0 {
		c.HoldTicks = 4
	}
	if c.WCSpareFrac == 0 {
		c.WCSpareFrac = 0.25
	}
	if c.WCGainFrac == 0 {
		c.WCGainFrac = 0.10
	}
	if c.WCHoldTicks == 0 {
		c.WCHoldTicks = 8
	}
	if c.QueueFloorBytes == 0 {
		c.QueueFloorBytes = 64 << 10
	}
	if c.QueueFactorW == 0 {
		c.QueueFactorW = 1.5
	}
	if c.AcctTolerance == 0 {
		c.AcctTolerance = 0.10
	}
	if c.AcctAbsTokens == 0 {
		c.AcctAbsTokens = 4
	}
	if c.AcctHoldPS == 0 {
		c.AcctHoldPS = c.CheckWindowPS
	}
	if c.FaultExcusePS == 0 {
		c.FaultExcusePS = 5_000_000_000 // 5 ms
	}
	if c.MaxContextEvents == 0 {
		c.MaxContextEvents = 12
	}
}

// LinkSample is one link's per-tick observation.
type LinkSample struct {
	// Entity is the link's precomputed dotted name ("link.<src>-<dst>").
	Entity string
	// TargetBps is the target capacity C̄_l = η·C_l at the link's current
	// effective (possibly degraded) line rate.
	TargetBps float64
	// TxBytes is the cumulative transmitted byte count.
	TxBytes uint64
	// QueueBytes is the instantaneous egress queue depth.
	QueueBytes int64
	// HasCore marks links whose source runs a μFAB-C agent (register
	// checks apply only there).
	HasCore bool
	// PhiTokens/WindowBytes are the Φ_l and W_l registers.
	PhiTokens   float64
	WindowBytes int64
	// LivePhiCand is the token sum of live non-idle pairs counting the
	// link on any candidate path (the register's upper reference);
	// LivePhiActive counts active paths only (the lower reference).
	LivePhiCand   float64
	LivePhiActive float64
	// CommittedTokens is the admission ledger's committed subscription on
	// this link, in Φ tokens; valid only when HasLedger is set. Realized
	// Φ_l must never persistently exceed it once every tenant routes
	// through the admission controller.
	CommittedTokens float64
	HasLedger       bool
	// Faulty marks links currently failed, endpoint-failed or degraded —
	// the invariants don't apply to a dead link.
	Faulty bool
}

// PairSample is one VM-pair's per-tick observation.
type PairSample struct {
	VM int64
	VF int32
	// PhiBps is the pair's current guarantee (EffectivePhi·BU).
	PhiBps float64
	// Backlogged reports unmet demand beyond the bytes in flight.
	Backlogged bool
	// Delivered is the cumulative acknowledged byte count.
	Delivered int64
	// Migrations is the pair's cumulative migration count.
	Migrations int
	// Links indexes Sample.Links for the active path.
	Links []int32
	// Faulty marks pairs whose active path crosses a faulty link.
	Faulty bool
}

// VFSample is one tenant's per-tick observation.
type VFSample struct {
	ID           int32
	GuaranteeBps float64
}

// Sample is one auditor tick: the fabric's state at time T. The caller may
// reuse the sample (and its slices) across ticks; the auditor copies what
// it retains.
type Sample struct {
	// T is simulated time in picoseconds.
	T     int64
	Links []LinkSample
	// Pairs holds live pairs in creation order; VFs is sorted by ID.
	Pairs []PairSample
	VFs   []VFSample
}

// streak merges consecutive violating ticks of one check on one subject.
type streak struct {
	active     bool
	from, last int64
	ticks      int
	obs, bound float64
}

// hit extends the streak with a violating tick; lowerWorse picks whether
// smaller observations are worse (rates) or larger ones (queues, drift).
func (s *streak) hit(t int64, obs, bound float64, lowerWorse bool) {
	if !s.active {
		*s = streak{active: true, from: t, last: t, ticks: 1, obs: obs, bound: bound}
		return
	}
	s.last = t
	s.ticks++
	if lowerWorse == (obs < s.obs) {
		s.obs = obs
		s.bound = bound
	}
}

type excuseWindow struct {
	from, to int64
	reason   string
}

type pairState struct {
	id        int64
	vf        int32
	firstSeen int64
	backSince int64 // -1 while not backlogged
	lastMigr  int
	migrAt    int64
	hist      series
	wc        streak
	// per-tick derived values
	rate    float64
	rateOK  bool
	covered bool
}

type vfState struct {
	id        int32
	firstSeen int64
	minbw     streak
}

type linkState struct {
	entity    string
	firstSeen int64
	tx        series
	rate      float64
	rateOK    bool
	queue     streak
	acctNeg   streak
	acctOver  streak
	acctUnder streak
	ledger    streak
}

type vfAccum struct {
	n       int
	rateBps float64
	covered bool
}

const contextRingCap = 4096

// Auditor evaluates the predictability invariants over a stream of Ticks
// from one fabric. Create with New, feed Tick per sampling interval, wire
// ObserveEvent into the fabric's flight recorder, and read results from
// the shared Log.
type Auditor struct {
	cfg Config
	log *Log

	lastT int64

	links     []*linkState
	pairs     map[int64]*pairState
	pairOrder []int64
	vfs       map[int32]*vfState
	vfOrder   []int32
	accum     map[int32]*vfAccum

	excuses []excuseWindow

	ctx      []telemetry.Event
	ctxStart int
}

// New creates an auditor reporting into cfg.Log (a fresh Log is created
// when nil; read it back via Log()).
func New(cfg Config) *Auditor {
	cfg.setDefaults()
	if cfg.Log == nil {
		cfg.Log = &Log{}
	}
	a := &Auditor{
		cfg:   cfg,
		log:   cfg.Log,
		lastT: -1,
		pairs: make(map[int64]*pairState),
		vfs:   make(map[int32]*vfState),
		accum: make(map[int32]*vfAccum),
	}
	a.log.attach(a)
	return a
}

// Log returns the findings sink this auditor reports into.
func (a *Auditor) Log() *Log { return a.log }

// ObserveEvent ingests one flight-recorder event: applied chaos faults
// open excused windows, and fault/migration/freeze/tenant/drop events are
// retained as root-cause context for findings. Wire it with
// Recorder.Subscribe.
func (a *Auditor) ObserveEvent(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EvFault:
		if ev.A == 1 {
			a.addExcuse(ev.T, ev.T+a.cfg.FaultExcusePS, "fault:"+ev.Note)
		}
	case telemetry.EvMigration, telemetry.EvFreeze, telemetry.EvTenant, telemetry.EvDrop:
	default:
		return
	}
	if len(a.ctx) < contextRingCap {
		a.ctx = append(a.ctx, ev)
		return
	}
	a.ctx[a.ctxStart] = ev
	a.ctxStart++
	if a.ctxStart == contextRingCap {
		a.ctxStart = 0
	}
}

// addExcuse opens (or extends) an excused window.
func (a *Auditor) addExcuse(from, to int64, reason string) {
	if n := len(a.excuses); n > 0 {
		last := &a.excuses[n-1]
		if last.reason == reason && from <= last.to {
			if to > last.to {
				last.to = to
			}
			return
		}
	}
	a.excuses = append(a.excuses, excuseWindow{from: from, to: to, reason: reason})
}

// excuseFor returns the first declared window overlapping [from, to].
func (a *Auditor) excuseFor(from, to int64) (string, bool) {
	for i := range a.excuses {
		w := &a.excuses[i]
		if w.from <= to && from <= w.to {
			return w.reason, true
		}
	}
	return "", false
}

// contextFor collects retained flight-recorder events around the interval.
func (a *Auditor) contextFor(from, to int64) []telemetry.Event {
	pad := a.cfg.CheckWindowPS
	var out []telemetry.Event
	n := len(a.ctx)
	for i := 0; i < n && len(out) < a.cfg.MaxContextEvents; i++ {
		ev := a.ctx[(a.ctxStart+i)%n]
		if ev.T >= from-pad && ev.T <= to+pad {
			out = append(out, ev)
		}
	}
	return out
}

// pairFor returns (creating if needed) the pair's persistent state.
func (a *Auditor) pairFor(p *PairSample, t int64) *pairState {
	st := a.pairs[p.VM]
	if st == nil {
		st = &pairState{id: p.VM, vf: p.VF, firstSeen: t, backSince: -1, lastMigr: p.Migrations}
		a.pairs[p.VM] = st
		a.pairOrder = append(a.pairOrder, p.VM)
	}
	return st
}

func (a *Auditor) vfFor(id int32, t int64) *vfState {
	st := a.vfs[id]
	if st == nil {
		st = &vfState{id: id, firstSeen: t}
		a.vfs[id] = st
		a.vfOrder = append(a.vfOrder, id)
	}
	return st
}

// Tick evaluates every invariant against one sample. Duplicate timestamps
// (an explicit flush at the instant the sampler also fired) are ignored.
func (a *Auditor) Tick(s *Sample) {
	t := s.T
	if t <= a.lastT {
		return
	}
	a.lastT = t
	cfg := &a.cfg
	W := cfg.CheckWindowPS

	// Link rate histories.
	for len(a.links) < len(s.Links) {
		a.links = append(a.links, nil)
	}
	for i := range s.Links {
		l := &s.Links[i]
		ls := a.links[i]
		if ls == nil {
			ls = &linkState{entity: l.Entity, firstSeen: t}
			a.links[i] = ls
		}
		ls.tx.add(t, float64(l.TxBytes), W)
		ls.rate, ls.rateOK = ls.tx.rateBps(t, W)
	}

	// Pair histories and per-VF aggregation.
	for _, acc := range a.accum {
		acc.n = 0
		acc.rateBps = 0
		acc.covered = true
	}
	for i := range s.Pairs {
		p := &s.Pairs[i]
		st := a.pairFor(p, t)
		if p.Backlogged && !p.Faulty {
			if st.backSince < 0 {
				st.backSince = t
			}
		} else {
			st.backSince = -1
		}
		if p.Migrations != st.lastMigr {
			st.lastMigr = p.Migrations
			st.migrAt = t
		}
		st.hist.add(t, float64(p.Delivered), W)
		st.rate, st.rateOK = st.hist.rateBps(t, W)
		st.covered = st.backSince >= 0 && st.backSince <= t-W &&
			t-st.firstSeen >= cfg.WarmupPS && st.rateOK
		acc := a.accum[p.VF]
		if acc == nil {
			acc = &vfAccum{covered: true}
			a.accum[p.VF] = acc
		}
		acc.n++
		if st.covered {
			acc.rateBps += st.rate
		} else {
			acc.covered = false
		}
	}

	// (1) Minimum-bandwidth guarantee, per VF.
	for i := range s.VFs {
		v := &s.VFs[i]
		vst := a.vfFor(v.ID, t)
		acc := a.accum[v.ID]
		eligible := !cfg.DisableMinBW && v.GuaranteeBps > 0 &&
			acc != nil && acc.n > 0 && acc.covered &&
			t-vst.firstSeen >= cfg.WarmupPS
		bound := (1 - cfg.MinBWTolerance) * v.GuaranteeBps
		if eligible && acc.rateBps < bound {
			vst.minbw.hit(t, acc.rateBps, bound, true)
		} else {
			a.closeVF(vst)
		}
	}

	// (2) Work conservation, per backlogged pair.
	for i := range s.Pairs {
		p := &s.Pairs[i]
		st := a.pairs[p.VM]
		violated := false
		// A pair that just migrated re-enters the Scenario-2 ramp, so
		// its rate legitimately dips below spare capacity; grant it the
		// warmup again before holding it to work conservation.
		if !cfg.DisableWorkConservation && st.covered &&
			(st.migrAt == 0 || t-st.migrAt >= cfg.WarmupPS) {
			spare, minTarget, usable := maxFloat, maxFloat, len(p.Links) > 0
			for _, li := range p.Links {
				if int(li) >= len(a.links) {
					usable = false
					break
				}
				l := &s.Links[li]
				ls := a.links[li]
				if l.Faulty || !ls.rateOK {
					usable = false
					break
				}
				if sp := l.TargetBps - ls.rate; sp < spare {
					spare = sp
				}
				if l.TargetBps < minTarget {
					minTarget = l.TargetBps
				}
			}
			if usable && spare > cfg.WCSpareFrac*minTarget {
				if bound := p.PhiBps + cfg.WCGainFrac*spare; st.rate < bound {
					st.wc.hit(t, st.rate, bound, true)
					violated = true
				}
			}
		}
		if !violated {
			a.closePair(st)
		}
	}

	// (3) Queue bound and (4) register accounting, per core link.
	for i := range s.Links {
		l := &s.Links[i]
		ls := a.links[i]
		if !l.HasCore || l.Faulty || t-ls.firstSeen < cfg.WarmupPS {
			a.closeLink(ls)
			continue
		}
		if qBound := float64(cfg.QueueFloorBytes) + cfg.QueueFactorW*float64(l.WindowBytes); !cfg.DisableQueueBound && float64(l.QueueBytes) > qBound {
			ls.queue.hit(t, float64(l.QueueBytes), qBound, false)
		} else {
			a.closeLinkStreak(ls, &ls.queue, QueueBoundViolation, "bytes", cfg.HoldTicks, 0)
		}
		// (5) Ledger bound: realized Φ_l never exceeds the admission
		// ledger's committed subscription. Departed tenants' registers
		// drain lazily (finish probes + core cleanup), so the same
		// AcctHoldPS staleness bound applies before a drift becomes a
		// finding.
		if lBound := l.CommittedTokens*(1+cfg.AcctTolerance) + cfg.AcctAbsTokens; !cfg.DisableLedgerBound && l.HasLedger && l.PhiTokens > lBound {
			ls.ledger.hit(t, l.PhiTokens, lBound, false)
		} else {
			a.closeLinkStreak(ls, &ls.ledger, LedgerBoundViolation, "tokens", cfg.HoldTicks, cfg.AcctHoldPS)
		}
		if cfg.DisableAccounting {
			continue
		}
		if l.PhiTokens < -1e-3 || l.WindowBytes < 0 {
			obs := l.PhiTokens
			if l.WindowBytes < 0 {
				obs = float64(l.WindowBytes)
			}
			ls.acctNeg.hit(t, obs, 0, true)
		} else {
			a.closeLinkStreak(ls, &ls.acctNeg, AccountingViolation, "tokens", 1, 0)
		}
		if over := l.LivePhiCand*(1+cfg.AcctTolerance) + cfg.AcctAbsTokens; l.PhiTokens > over {
			ls.acctOver.hit(t, l.PhiTokens, over, false)
		} else {
			a.closeLinkStreak(ls, &ls.acctOver, AccountingViolation, "tokens", cfg.HoldTicks, cfg.AcctHoldPS)
		}
		if under := l.LivePhiActive*(1-cfg.AcctTolerance) - cfg.AcctAbsTokens; l.PhiTokens < under {
			ls.acctUnder.hit(t, l.PhiTokens, under, true)
		} else {
			a.closeLinkStreak(ls, &ls.acctUnder, AccountingViolation, "tokens", cfg.HoldTicks, cfg.AcctHoldPS)
		}
	}
}

const maxFloat = 1.7976931348623157e308

// closeVF ends a VF's min-BW streak, emitting it when it met the
// persistence thresholds.
func (a *Auditor) closeVF(vst *vfState) {
	a.emit(&vst.minbw, MinBWViolation, vst.id, fmt.Sprintf("vf.%d", vst.id),
		"bps", a.cfg.HoldTicks, 0)
}

// closePair ends a pair's work-conservation streak.
func (a *Auditor) closePair(st *pairState) {
	a.emit(&st.wc, WorkConservationViolation, st.vf,
		fmt.Sprintf("vf.%d.pair.%d", st.vf, st.id), "bps", a.cfg.WCHoldTicks, 0)
}

// closeLink ends every streak of a link.
func (a *Auditor) closeLink(ls *linkState) {
	cfg := &a.cfg
	a.closeLinkStreak(ls, &ls.queue, QueueBoundViolation, "bytes", cfg.HoldTicks, 0)
	a.closeLinkStreak(ls, &ls.acctNeg, AccountingViolation, "tokens", 1, 0)
	a.closeLinkStreak(ls, &ls.acctOver, AccountingViolation, "tokens", cfg.HoldTicks, cfg.AcctHoldPS)
	a.closeLinkStreak(ls, &ls.acctUnder, AccountingViolation, "tokens", cfg.HoldTicks, cfg.AcctHoldPS)
	a.closeLinkStreak(ls, &ls.ledger, LedgerBoundViolation, "tokens", cfg.HoldTicks, cfg.AcctHoldPS)
}

func (a *Auditor) closeLinkStreak(ls *linkState, st *streak, kind Kind, unit string, minTicks int, minDur int64) {
	a.emit(st, kind, -1, ls.entity, unit, minTicks, minDur)
}

// emit closes a streak: below the persistence thresholds it is dropped as
// noise, otherwise it becomes a finding (excused when overlapping a
// declared fault window).
func (a *Auditor) emit(st *streak, kind Kind, vf int32, entity, unit string, minTicks int, minDur int64) {
	if !st.active {
		return
	}
	defer func() { *st = streak{} }()
	if st.ticks < minTicks || st.last-st.from < minDur {
		return
	}
	f := Finding{
		Kind:     kind,
		FromPS:   st.from,
		ToPS:     st.last,
		Ticks:    st.ticks,
		VF:       vf,
		Entity:   entity,
		Observed: st.obs,
		Bound:    st.bound,
		Unit:     unit,
	}
	if reason, ok := a.excuseFor(f.FromPS, f.ToPS); ok {
		f.Excused = true
		f.Excuse = reason
	}
	f.Context = a.contextFor(f.FromPS, f.ToPS)
	a.log.add(f)
}

// Flush closes every open streak at the last tick's time. The Log calls it
// when findings are read; it is safe to call repeatedly.
func (a *Auditor) Flush() {
	for _, id := range a.vfOrder {
		a.closeVF(a.vfs[id])
	}
	for _, id := range a.pairOrder {
		a.closePair(a.pairs[id])
	}
	for _, ls := range a.links {
		if ls != nil {
			a.closeLink(ls)
		}
	}
}

// ---- windowed-rate history ------------------------------------------------

type histPt struct {
	t int64
	v float64
}

// series retains just enough (t, cumulative-value) points to answer
// windowed-rate queries.
type series struct {
	pts []histPt
}

// add appends the current cumulative value and prunes points no longer
// needed for a window-sized lookback (keeping one boundary point).
func (s *series) add(t int64, v float64, window int64) {
	s.pts = append(s.pts, histPt{t: t, v: v})
	cut := t - window
	// Find the last point at or before the cutoff; everything older is
	// unreachable by future queries (t only grows).
	idx := -1
	for i := len(s.pts) - 1; i >= 0; i-- {
		if s.pts[i].t <= cut {
			idx = i
			break
		}
	}
	if idx > 0 {
		s.pts = append(s.pts[:0], s.pts[idx:]...)
	}
}

// rateBps returns the average rate in bits/s over roughly [t-window, t],
// and false while the history does not yet span the window.
func (s *series) rateBps(t, window int64) (float64, bool) {
	if len(s.pts) < 2 {
		return 0, false
	}
	cut := t - window
	base := s.pts[0]
	if base.t > cut {
		return 0, false
	}
	for i := 1; i < len(s.pts) && s.pts[i].t <= cut; i++ {
		base = s.pts[i]
	}
	cur := s.pts[len(s.pts)-1]
	dt := cur.t - base.t
	if dt <= 0 {
		return 0, false
	}
	return (cur.v - base.v) * 8e12 / float64(dt), true
}
