package audit

import (
	"bytes"
	"strings"
	"testing"

	"ufab/internal/telemetry"
)

// tickPS is the synthetic sampling interval (100 µs): the defaults then
// mean a 20-tick rate window and a 30-tick warmup.
const tickPS = int64(100_000_000)

// feed describes one synthetic fabric driven tick by tick: a single VF
// with one backlogged pair on one link, with independently settable
// delivery rate, link utilization and register values.
type feed struct {
	a *Auditor
	t int64

	guaranteeBps float64
	pairRateBps  float64 // pair's delivery rate
	pairPhiBps   float64
	backlogged   bool
	linkRateBps  float64 // link's total tx rate (pair + background)
	targetBps    float64
	queueBytes   int64
	windowBytes  int64
	phiTokens    float64
	livePhi      float64
}

func newFeed(cfg Config) *feed {
	return &feed{
		a:            New(cfg),
		guaranteeBps: 4e9,
		pairRateBps:  4e9,
		pairPhiBps:   4e9,
		backlogged:   true,
		linkRateBps:  9e9,
		targetBps:    9.5e9,
		queueBytes:   1000,
		windowBytes:  100_000,
		phiTokens:    40,
		livePhi:      40,
	}
}

// run advances n ticks.
func (f *feed) run(n int) {
	for i := 0; i < n; i++ {
		f.t += tickPS
		bytesAt := func(rate float64) int64 { return int64(rate / 8 * float64(f.t) / 1e12) }
		s := &Sample{
			T: f.t,
			Links: []LinkSample{{
				Entity:        "link.a-b",
				TargetBps:     f.targetBps,
				TxBytes:       uint64(bytesAt(f.linkRateBps)),
				QueueBytes:    f.queueBytes,
				HasCore:       true,
				PhiTokens:     f.phiTokens,
				WindowBytes:   f.windowBytes,
				LivePhiCand:   f.livePhi,
				LivePhiActive: f.livePhi,
			}},
			Pairs: []PairSample{{
				VM: 100, VF: 1, PhiBps: f.pairPhiBps, Backlogged: f.backlogged,
				Delivered: bytesAt(f.pairRateBps), Links: []int32{0},
			}},
			VFs: []VFSample{{ID: 1, GuaranteeBps: f.guaranteeBps}},
		}
		f.a.Tick(s)
	}
}

func TestMinBWViolation(t *testing.T) {
	f := newFeed(Config{})
	f.pairRateBps = 2e9 // half the guarantee, persistently
	f.run(100)          // 10 ms
	fs := f.a.Log().Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly one merged min-BW finding", fs)
	}
	fd := fs[0]
	if fd.Kind != MinBWViolation || fd.VF != 1 || fd.Entity != "vf.1" || fd.Unit != "bps" {
		t.Fatalf("finding = %+v, want min_bw on vf.1", fd)
	}
	// Eligible once past warmup (3 ms) with a window-covering backlog; runs
	// to the end.
	if fd.FromPS < 3_000_000_000 || fd.FromPS > 4_000_000_000 {
		t.Fatalf("FromPS = %d, want within [3ms, 4ms]", fd.FromPS)
	}
	if fd.ToPS != f.t {
		t.Fatalf("ToPS = %d, want last tick %d", fd.ToPS, f.t)
	}
	if fd.Ticks < 50 {
		t.Fatalf("Ticks = %d, want the whole violating streak merged", fd.Ticks)
	}
	if fd.Bound != 0.9*4e9 {
		t.Fatalf("Bound = %g, want (1-tol)*guarantee = %g", fd.Bound, 0.9*4e9)
	}
	if fd.Observed > fd.Bound || fd.Observed < 1.5e9 {
		t.Fatalf("Observed = %g, want ≈ 2e9 below bound", fd.Observed)
	}
	if fd.Excused {
		t.Fatalf("finding excused with no declared fault window: %+v", fd)
	}
	if f.a.Log().Unexcused() != 1 || f.a.Log().Excused() != 0 {
		t.Fatalf("Unexcused/Excused = %d/%d, want 1/0",
			f.a.Log().Unexcused(), f.a.Log().Excused())
	}
}

func TestCleanRunNoFindings(t *testing.T) {
	f := newFeed(Config{})
	f.run(200) // 20 ms at exactly the guarantee
	if fs := f.a.Log().Findings(); len(fs) != 0 {
		t.Fatalf("clean run produced findings: %+v", fs)
	}
}

func TestIdleTenantNotChecked(t *testing.T) {
	f := newFeed(Config{})
	f.backlogged = false
	f.pairRateBps = 0 // idle tenant sends nothing — Eqn 1 doesn't apply
	f.run(100)
	if fs := f.a.Log().Findings(); len(fs) != 0 {
		t.Fatalf("idle tenant produced findings: %+v", fs)
	}
}

func TestWorkConservationViolation(t *testing.T) {
	f := newFeed(Config{})
	// The pair is the only user of a mostly idle link, meets its guarantee,
	// but claims none of the spare capacity.
	f.guaranteeBps = 2e9
	f.pairPhiBps = 2e9
	f.pairRateBps = 2e9
	f.linkRateBps = 2e9
	f.run(100)
	fs := f.a.Log().Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly one work-conservation finding", fs)
	}
	fd := fs[0]
	if fd.Kind != WorkConservationViolation || fd.VF != 1 || fd.Entity != "vf.1.pair.100" {
		t.Fatalf("finding = %+v, want work_conservation on vf.1.pair.100", fd)
	}
	if fd.Observed < 1.5e9 || fd.Observed > fd.Bound {
		t.Fatalf("Observed = %g Bound = %g, want rate below guarantee+gain·spare",
			fd.Observed, fd.Bound)
	}
}

func TestQueueBoundViolation(t *testing.T) {
	f := newFeed(Config{})
	f.queueBytes = 1 << 20 // 1 MiB against a 64KiB + 1.5·100KB bound
	f.run(60)
	fs := f.a.Log().Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly one queue-bound finding", fs)
	}
	fd := fs[0]
	if fd.Kind != QueueBoundViolation || fd.VF != -1 || fd.Entity != "link.a-b" || fd.Unit != "bytes" {
		t.Fatalf("finding = %+v, want queue_bound on link.a-b", fd)
	}
	if fd.Observed != float64(1<<20) {
		t.Fatalf("Observed = %g, want the queue depth", fd.Observed)
	}
	wantBound := float64(64<<10) + 1.5*100_000
	if fd.Bound != wantBound {
		t.Fatalf("Bound = %g, want floor+factor·W = %g", fd.Bound, wantBound)
	}
}

func TestAccountingNegativeRegister(t *testing.T) {
	f := newFeed(Config{})
	f.phiTokens = -5
	f.livePhi = 2
	// Stop before the under-count hold elapses: the negative-register check
	// alone must fire (it needs no persistence).
	f.run(45) // 4.5 ms: 1.5 ms of violation < 2 ms AcctHoldPS
	fs := f.a.Log().Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly one negative-register finding", fs)
	}
	fd := fs[0]
	if fd.Kind != AccountingViolation || fd.VF != -1 || fd.Entity != "link.a-b" || fd.Unit != "tokens" {
		t.Fatalf("finding = %+v, want accounting on link.a-b", fd)
	}
	if fd.Observed != -5 || fd.Bound != 0 {
		t.Fatalf("Observed/Bound = %g/%g, want -5/0", fd.Observed, fd.Bound)
	}
}

func TestAccountingOverCount(t *testing.T) {
	f := newFeed(Config{})
	f.phiTokens = 100 // register residue: live pairs only sum to 40
	f.run(100)
	fs := f.a.Log().Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly one over-count finding", fs)
	}
	fd := fs[0]
	if fd.Kind != AccountingViolation || fd.Observed != 100 {
		t.Fatalf("finding = %+v, want accounting with observed 100", fd)
	}
	if want := 40*1.1 + 4; fd.Bound != want {
		t.Fatalf("Bound = %g, want live·(1+tol)+abs = %g", fd.Bound, want)
	}
}

func TestFaultExcusesFinding(t *testing.T) {
	f := newFeed(Config{})
	f.pairRateBps = 2e9
	// A chaos fault applied at 3 ms opens a 5 ms excuse window that the
	// violating interval overlaps.
	f.a.ObserveEvent(telemetry.Event{
		T: 3_000_000_000, Kind: telemetry.EvFault,
		Entity: "chaos.injector", A: 1, Note: "link_fail",
	})
	f.run(80)
	l := f.a.Log()
	fs := l.Findings()
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want one excused min-BW finding", fs)
	}
	fd := fs[0]
	if !fd.Excused || fd.Excuse != "fault:link_fail" {
		t.Fatalf("finding = %+v, want excused by fault:link_fail", fd)
	}
	if l.Unexcused() != 0 || l.Excused() != 1 {
		t.Fatalf("Unexcused/Excused = %d/%d, want 0/1", l.Unexcused(), l.Excused())
	}
	// The fault event must surface in the finding's context window.
	found := false
	for _, ev := range fd.Context {
		if ev.Kind == telemetry.EvFault && ev.Note == "link_fail" {
			found = true
		}
	}
	if !found {
		t.Fatalf("context %+v lacks the fault event", fd.Context)
	}
}

func TestFaultyPairSkipped(t *testing.T) {
	f := newFeed(Config{})
	f.pairRateBps = 1e9 // would violate…
	f.run(50)
	// …but mark the pair's path faulty from here on: the backlog streak
	// breaks and no further eligibility accrues. The pre-fault streak is
	// excused-less but also unexcused — so instead keep it faulty from the
	// start in a second auditor.
	f2 := newFeed(Config{})
	f2.pairRateBps = 1e9
	f2.backlogged = true
	for i := 0; i < 100; i++ {
		f2.t += tickPS
		s := &Sample{
			T:     f2.t,
			Links: []LinkSample{{Entity: "link.a-b", TargetBps: 9.5e9, Faulty: true}},
			Pairs: []PairSample{{VM: 100, VF: 1, PhiBps: 4e9, Backlogged: true,
				Faulty: true, Delivered: int64(1e9 / 8 * float64(f2.t) / 1e12), Links: []int32{0}}},
			VFs: []VFSample{{ID: 1, GuaranteeBps: 4e9}},
		}
		f2.a.Tick(s)
	}
	if fs := f2.a.Log().Findings(); len(fs) != 0 {
		t.Fatalf("faulty-path pair produced findings: %+v", fs)
	}
}

func TestFindingsJSONL(t *testing.T) {
	f := newFeed(Config{})
	f.pairRateBps = 2e9
	f.a.ObserveEvent(telemetry.Event{
		T: 3_500_000_000, Kind: telemetry.EvMigration,
		Entity: "ufabe.h0", A: 100, B: 1, Note: "urgent",
	})
	f.run(80)
	var buf bytes.Buffer
	if err := f.a.Log().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("JSONL = %q, want one line", out)
	}
	if !strings.HasPrefix(lines[0], `{"kind":"min_bw","from_ps":`) {
		t.Fatalf("line = %q, want min_bw object", lines[0])
	}
	if !strings.Contains(lines[0], `"vf":1`) || !strings.Contains(lines[0], `"unit":"bps"`) {
		t.Fatalf("line = %q, want vf and unit fields", lines[0])
	}
	if !strings.Contains(lines[0], `"events":[{"t_ps":3500000000,"kind":"migration"`) {
		t.Fatalf("line = %q, want embedded context events", lines[0])
	}
	// A second serialization is byte-identical (Findings/Flush idempotent).
	var buf2 bytes.Buffer
	if err := f.a.Log().WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatalf("re-serialization differs:\n%q\n%q", buf2.String(), out)
	}
}

func TestSharedLogAcrossAuditors(t *testing.T) {
	log := &Log{}
	f1 := newFeed(Config{Log: log})
	f2 := newFeed(Config{Log: log})
	f1.pairRateBps = 2e9
	f2.queueBytes = 1 << 20
	f1.run(80)
	f2.run(80)
	fs := log.Findings()
	if len(fs) != 2 {
		t.Fatalf("findings = %+v, want one per fabric", fs)
	}
	if fs[0].Kind != MinBWViolation || fs[1].Kind != QueueBoundViolation {
		t.Fatalf("kinds = %v/%v, want min_bw then queue_bound", fs[0].Kind, fs[1].Kind)
	}
}

func TestMaxFindingsCap(t *testing.T) {
	log := &Log{MaxFindings: 2}
	f := newFeed(Config{Log: log})
	f.pairRateBps = 2e9
	// Alternate violation and recovery to mint many separate streaks.
	for i := 0; i < 6; i++ {
		f.pairRateBps = 2e9
		f.run(60)
		f.pairRateBps = 4.2e9
		f.run(40)
	}
	if got := len(log.Findings()); got != 2 {
		t.Fatalf("retained = %d, want cap 2", got)
	}
	if log.Dropped() == 0 {
		t.Fatal("Dropped = 0, want overflow accounted")
	}
}

func TestDisableFlags(t *testing.T) {
	f := newFeed(Config{
		DisableMinBW: true, DisableWorkConservation: true,
		DisableQueueBound: true, DisableAccounting: true,
	})
	f.pairRateBps = 1e9
	f.queueBytes = 1 << 20
	f.phiTokens = -5
	f.run(100)
	if fs := f.a.Log().Findings(); len(fs) != 0 {
		t.Fatalf("disabled checks produced findings: %+v", fs)
	}
}
