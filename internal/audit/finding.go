package audit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ufab/internal/telemetry"
)

// Kind classifies a predictability violation.
type Kind uint8

const (
	// MinBWViolation: a fully backlogged VF's achieved rate stayed below
	// its hose guarantee minus the tolerance (Eqn 1).
	MinBWViolation Kind = iota
	// WorkConservationViolation: a backlogged pair left persistent spare
	// capacity on every link of its active path unclaimed.
	WorkConservationViolation
	// QueueBoundViolation: a link's queue exceeded the admission-derived
	// bound outside any declared fault window.
	QueueBoundViolation
	// AccountingViolation: a μFAB-C register (Φ_l/W_l) went negative or
	// persistently disagreed with the live VM-pair set.
	AccountingViolation
	// LedgerBoundViolation: a link's realized Φ_l subscription persistently
	// exceeded the admission ledger's committed subscription — tenants the
	// control plane never admitted are consuming guarantee on the link.
	LedgerBoundViolation
)

var kindNames = [...]string{
	MinBWViolation:            "min_bw",
	WorkConservationViolation: "work_conservation",
	QueueBoundViolation:       "queue_bound",
	AccountingViolation:       "accounting",
	LedgerBoundViolation:      "ledger_bound",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Finding is one merged violation interval: consecutive violating ticks of
// the same check on the same subject collapse into a single finding.
type Finding struct {
	Kind Kind
	// FromPS/ToPS bound the violating tick range in simulated picoseconds.
	FromPS, ToPS int64
	// Ticks is how many auditor ticks observed the violation.
	Ticks int
	// VF is the tenant involved (-1 for link-scoped findings).
	VF int32
	// Entity names the subject: "vf.<id>" or the link entity.
	Entity string
	// Observed is the worst measured value over the interval; Bound the
	// invariant's limit at that point; Unit names both ("bps", "bytes",
	// "tokens").
	Observed, Bound float64
	Unit            string
	// Excused marks findings overlapping a declared fault window; Excuse
	// says which ("fault:<kind>").
	Excused bool
	Excuse  string
	// Context is the surrounding flight-recorder window: fault, migration,
	// freeze, stage, tenant and drop events near the violating interval.
	Context []telemetry.Event
}

// Log collects findings from one run, across every auditor attached to it
// (one per audited fabric). The zero value is usable.
type Log struct {
	findings []Finding
	dropped  int
	auditors []*Auditor

	// MaxFindings bounds the log (0 = DefaultMaxFindings); merged streaks
	// keep real runs far below it, the cap only contains pathological
	// misconfiguration.
	MaxFindings int

	// ExpectExcusedMin declares how many excused findings a chaos scenario
	// is expected to produce; gates use it to assert the auditor actually
	// observed the injected faults.
	ExpectExcusedMin int

	subs []func(Finding)
}

// DefaultMaxFindings bounds a Log when MaxFindings is zero.
const DefaultMaxFindings = 1024

func (l *Log) attach(a *Auditor) { l.auditors = append(l.auditors, a) }

func (l *Log) add(f Finding) {
	max := l.MaxFindings
	if max == 0 {
		max = DefaultMaxFindings
	}
	if len(l.findings) >= max {
		l.dropped++
		return
	}
	l.findings = append(l.findings, f)
	for _, fn := range l.subs {
		fn(f)
	}
}

// Subscribe registers fn to run synchronously on every finding as it is
// recorded (after streak merging, before the MaxFindings cap drops
// anything new). fn runs on the auditor's goroutine and must not block or
// re-enter the Log; the control-plane daemon uses it to stream findings
// over its northbound API. Subscribe before the run starts — it is not
// safe to call concurrently with add.
func (l *Log) Subscribe(fn func(Finding)) { l.subs = append(l.subs, fn) }

// Findings flushes every attached auditor's open violation streaks and
// returns all findings in emission order.
func (l *Log) Findings() []Finding {
	if l == nil {
		return nil
	}
	for _, a := range l.auditors {
		a.Flush()
	}
	return l.findings
}

// Dropped returns how many findings the MaxFindings cap discarded.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Unexcused counts findings outside any declared fault window — the
// number that must be zero for a fault-free run to audit clean.
func (l *Log) Unexcused() int {
	n := 0
	for _, f := range l.Findings() {
		if !f.Excused {
			n++
		}
	}
	return n
}

// Excused counts findings inside declared fault windows.
func (l *Log) Excused() int {
	n := 0
	for _, f := range l.Findings() {
		if f.Excused {
			n++
		}
	}
	return n
}

// UnexcusedKinds returns the distinct kinds of unexcused findings as
// their stable names, sorted — the compact violation signature fuzzing
// and shrinking classify runs by.
func (l *Log) UnexcusedKinds() []string {
	seen := map[string]bool{}
	var kinds []string
	for _, f := range l.Findings() {
		if f.Excused || seen[f.Kind.String()] {
			continue
		}
		seen[f.Kind.String()] = true
		kinds = append(kinds, f.Kind.String())
	}
	sort.Strings(kinds)
	return kinds
}

// WriteJSONL writes the findings one JSON object per line, oldest first.
// Hand-rolled like the flight recorder's encoder: fixed field order,
// zero-valued fields omitted, byte-identical across identical runs.
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range l.Findings() {
		writeFindingJSON(bw, f)
	}
	return bw.Flush()
}

func writeFindingJSON(bw *bufio.Writer, f Finding) {
	bw.WriteString(`{"kind":"`)
	bw.WriteString(f.Kind.String())
	bw.WriteString(`","from_ps":`)
	bw.WriteString(strconv.FormatInt(f.FromPS, 10))
	bw.WriteString(`,"to_ps":`)
	bw.WriteString(strconv.FormatInt(f.ToPS, 10))
	bw.WriteString(`,"ticks":`)
	bw.WriteString(strconv.Itoa(f.Ticks))
	if f.VF >= 0 {
		bw.WriteString(`,"vf":`)
		bw.WriteString(strconv.FormatInt(int64(f.VF), 10))
	}
	if f.Entity != "" {
		bw.WriteString(`,"entity":`)
		bw.WriteString(strconv.Quote(f.Entity))
	}
	bw.WriteString(`,"observed":`)
	bw.WriteString(strconv.FormatFloat(f.Observed, 'g', -1, 64))
	bw.WriteString(`,"bound":`)
	bw.WriteString(strconv.FormatFloat(f.Bound, 'g', -1, 64))
	bw.WriteString(`,"unit":`)
	bw.WriteString(strconv.Quote(f.Unit))
	if f.Excused {
		bw.WriteString(`,"excused":true,"excuse":`)
		bw.WriteString(strconv.Quote(f.Excuse))
	}
	if len(f.Context) > 0 {
		bw.WriteString(`,"events":[`)
		for i, ev := range f.Context {
			if i > 0 {
				bw.WriteByte(',')
			}
			telemetry.WriteEventJSON(bw, ev)
		}
		bw.WriteByte(']')
	}
	bw.WriteString("}\n")
}
