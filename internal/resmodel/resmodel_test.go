package resmodel

import (
	"strings"
	"testing"
)

func TestEdgeTableMatchesPaperTotals(t *testing.T) {
	rows := EdgeTable(EdgeConfig{VMPairs: 8192, Tenants: 1024})
	total := rows[len(rows)-1]
	if total.Module != "Total" {
		t.Fatal("last row is not Total")
	}
	// Paper Table 3 totals: LUT 7.6%, Registers 5.8%, BRAM 16.4%,
	// URAM 9.5% — "<10% extra hardware resources" headline modulo BRAM.
	within := func(got, want, tol float64, name string) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s total = %.1f%%, paper %.1f%%", name, got, want)
		}
	}
	within(total.LUT, 7.6, 1.0, "LUT")
	within(total.Registers, 5.8, 1.0, "Registers")
	within(total.BRAM, 16.4, 3.0, "BRAM")
	within(total.URAM, 9.5, 2.0, "URAM")
}

func TestEdgeTableScalesWithVMPairs(t *testing.T) {
	small := EdgeTable(EdgeConfig{VMPairs: 1024, Tenants: 128})
	big := EdgeTable(EdgeConfig{VMPairs: 16384, Tenants: 1024})
	st, bt := small[len(small)-1], big[len(big)-1]
	if bt.URAM <= st.URAM || bt.BRAM <= st.BRAM {
		t.Errorf("memory must grow with VM-pairs: URAM %.1f→%.1f BRAM %.1f→%.1f",
			st.URAM, bt.URAM, st.BRAM, bt.BRAM)
	}
	// Logic (LUT) is dominated by fixed modules.
	if bt.LUT-st.LUT > 1 {
		t.Errorf("LUT grew too much with scale: %.1f → %.1f", st.LUT, bt.LUT)
	}
}

func TestEdgeTableDefaults(t *testing.T) {
	if rows := EdgeTable(EdgeConfig{}); len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (5 modules + total)", len(rows))
	}
}

func TestCoreTableMatchesPaper(t *testing.T) {
	cols := CoreTable(nil)
	if len(cols) != 3 {
		t.Fatalf("cols = %d", len(cols))
	}
	// Paper Table 4 SRAM row: 17.29%, 17.71%, 18.75%.
	wantSRAM := []float64{17.29, 17.71, 18.75}
	for i, c := range cols {
		if c.SRAM < wantSRAM[i]-0.7 || c.SRAM > wantSRAM[i]+0.7 {
			t.Errorf("SRAM[%d] = %.2f%%, paper %.2f%%", i, c.SRAM, wantSRAM[i])
		}
		// Fixed rows stay flat.
		if c.MatchCrossbar != 8.64 || c.TCAM != 6.25 || c.StatefulALUs != 47.92 {
			t.Errorf("fixed rows changed at scale %d", c.VMPairs)
		}
		// Everything under 50% — "most types less than 20%" except ALUs.
		if c.SRAM > 20 || c.PacketHeaderVec > 25 {
			t.Errorf("scale %d exceeds the paper's envelope", c.VMPairs)
		}
	}
	// SRAM strictly grows with scale.
	if !(cols[0].SRAM < cols[1].SRAM && cols[1].SRAM < cols[2].SRAM) {
		t.Error("SRAM not monotone in VM-pairs")
	}
}

func TestFormatters(t *testing.T) {
	et := FormatEdgeTable(EdgeTable(EdgeConfig{}))
	if !strings.Contains(et, "Packet Scheduler") || !strings.Contains(et, "Total") {
		t.Error("edge table formatting incomplete")
	}
	ct := FormatCoreTable(CoreTable(nil))
	if !strings.Contains(ct, "SRAM") || !strings.Contains(ct, "20K") {
		t.Error("core table formatting incomplete")
	}
}
