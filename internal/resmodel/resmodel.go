// Package resmodel is the analytic hardware-cost model behind Tables 3
// and 4. The paper measured resource consumption on a Xilinx Alveo U200
// FPGA (μFAB-E) and an Intel Barefoot Tofino (μFAB-C); neither is
// available here, so the tables are reproduced from a parameterized model
// of where the bits go — context tables, the WFQ engine's 8 block-RAM
// queues, the path monitor, and the switch's Bloom filter and register
// pairs — calibrated to the paper's published percentages. The model's
// value is the *scaling law*: edge cost is dominated by per-VM-pair
// context state (URAM/BRAM), and switch cost grows only marginally with
// the number of VM-pairs because only the Bloom-filter SRAM scales.
package resmodel

import "fmt"

// EdgeUsage is one row-set of Table 3: per-module percentages of the four
// FPGA resource types on an Alveo U200.
type EdgeUsage struct {
	Module    string
	LUT       float64 // % of 1182K LUTs
	Registers float64 // % of 2364K flip-flops
	BRAM      float64 // % of 2160 36Kb blocks
	URAM      float64 // % of 960 288Kb blocks
}

// Alveo U200 resource totals.
const (
	u200LUTs = 1_182_000
	u200Regs = 2_364_000
	u200BRAM = 2160 // 36 Kb blocks
	u200URAM = 960  // 288 Kb blocks
	bramBits = 36 * 1024
	uramBits = 288 * 1024
)

// EdgeConfig sizes the μFAB-E prototype.
type EdgeConfig struct {
	VMPairs int // context-table entries (paper: 8K)
	Tenants int // VF entries (paper: 1K)
}

// contextEntryBits is the per-VM-pair context state: tokens, windows,
// sequence numbers, path set, timers (§4.1) — ≈ 96 bytes.
const contextEntryBits = 96 * 8

// pathEntryBits is the per-VM-pair path-monitor state: per-candidate-path
// telemetry snapshots (≈ 4 paths × 40 B).
const pathEntryBits = 160 * 8

// EdgeTable returns Table 3 for the given configuration. Fixed per-module
// logic costs are calibrated to the paper's 8K-pair / 1K-tenant prototype;
// memory costs scale with the configuration.
func EdgeTable(cfg EdgeConfig) []EdgeUsage {
	if cfg.VMPairs == 0 {
		cfg.VMPairs = 8192
	}
	if cfg.Tenants == 0 {
		cfg.Tenants = 1024
	}
	pairBRAMs := float64(cfg.VMPairs*contextEntryBits) / bramBits
	pairURAMs := float64(cfg.VMPairs*contextEntryBits) / uramBits
	pathBRAMs := float64(cfg.VMPairs*pathEntryBits) / bramBits
	// Packet Scheduler: WFQ engine (8 weighted queues, each one BRAM
	// descriptor ring) + per-pair queue heads in URAM.
	sched := EdgeUsage{
		Module:    "Packet Scheduler",
		LUT:       0.8,
		Registers: 1.1,
		BRAM:      pct(16+0.008*pairBRAMs, u200BRAM),
		URAM:      pct(2.56*pairURAMs, u200URAM),
	}
	// Context Tables: mostly URAM/BRAM for the per-pair rows.
	ctx := EdgeUsage{
		Module:    "Context Tables",
		LUT:       0.2,
		Registers: 0.2,
		BRAM:      pct(0.58*pairBRAMs, u200BRAM),
		URAM:      pct(1.4*pairURAMs, u200URAM),
	}
	// Path Monitor: per-path telemetry snapshots + comparison logic.
	pm := EdgeUsage{
		Module:    "Path Monitor",
		LUT:       0.9,
		Registers: 0.7,
		BRAM:      pct(0.366*pathBRAMs, u200BRAM),
		URAM:      pct(0.27*pairURAMs, u200URAM),
	}
	// TX/RX pipes and vendor IP are configuration-independent.
	pipes := EdgeUsage{Module: "TX/RX pipes", LUT: 0.3, Registers: 0.1, BRAM: 1.2, URAM: 0}
	vendor := EdgeUsage{Module: "Vendor Modules", LUT: 5.5, Registers: 3.6, BRAM: 5.0, URAM: 0}
	rows := []EdgeUsage{sched, ctx, pm, pipes, vendor}
	total := EdgeUsage{Module: "Total"}
	for _, r := range rows {
		total.LUT += r.LUT
		total.Registers += r.Registers
		total.BRAM += r.BRAM
		total.URAM += r.URAM
	}
	return append(rows, total)
}

func pct(x, total float64) float64 { return x / total * 100 }

// CoreUsage is one column of Table 4: percentages of each Tofino resource
// type for a given number of supported VM-pairs.
type CoreUsage struct {
	VMPairs         int
	MatchCrossbar   float64
	SRAM            float64
	TCAM            float64
	VLIWActions     float64
	HashBits        float64
	StatefulALUs    float64
	PacketHeaderVec float64
}

// tofinoSRAMBlocks is the number of 80 Kb SRAM blocks per Tofino pipe.
const tofinoSRAMBlocks = 960

// CoreTable returns Table 4 columns for the given VM-pair scales. The
// fixed costs (parser, forwarding, INT arithmetic) are calibrated to the
// paper's 20K column; only the Bloom-filter SRAM and its hash bits grow
// with scale — the observation that makes μFAB-C scalable (§4.2).
func CoreTable(scales []int) []CoreUsage {
	if len(scales) == 0 {
		scales = []int{20_000, 40_000, 80_000}
	}
	out := make([]CoreUsage, 0, len(scales))
	for _, n := range scales {
		// Active-VM-pair table: fingerprint + φ + w registers come to
		// ≈2.4 bytes/pair of SRAM across banks, on top of a fixed
		// ≈161-block pipeline program.
		bloomBits := float64(n) * 2.4 * 8
		bloomBlocks := bloomBits / (80 * 1024)
		sramPct := pct(161.2+bloomBlocks, tofinoSRAMBlocks)
		// Hash bits: two 15-to-17-bit indexes; grows with log2(n).
		hashPct := 17.03 + 0.02*log2Ratio(n, 20_000)
		out = append(out, CoreUsage{
			VMPairs:         n,
			MatchCrossbar:   8.64,
			SRAM:            sramPct,
			TCAM:            6.25,
			VLIWActions:     18.23,
			HashBits:        hashPct,
			StatefulALUs:    47.92,
			PacketHeaderVec: 20.05,
		})
	}
	return out
}

func log2Ratio(n, base int) float64 {
	r := 0.0
	for n > base {
		n /= 2
		r++
	}
	return r
}

// FormatEdgeTable renders Table 3 as the paper prints it.
func FormatEdgeTable(rows []EdgeUsage) string {
	s := fmt.Sprintf("%-18s %8s %12s %8s %8s\n", "Module", "LUT(%)", "Registers(%)", "BRAM(%)", "URAM(%)")
	for _, r := range rows {
		s += fmt.Sprintf("%-18s %7.1f%% %11.1f%% %7.1f%% %7.1f%%\n",
			r.Module, r.LUT, r.Registers, r.BRAM, r.URAM)
	}
	return s
}

// FormatCoreTable renders Table 4 as the paper prints it.
func FormatCoreTable(cols []CoreUsage) string {
	s := fmt.Sprintf("%-22s", "Resource Type")
	for _, c := range cols {
		s += fmt.Sprintf(" %8dK", c.VMPairs/1000)
	}
	s += "\n"
	row := func(name string, f func(CoreUsage) float64) {
		s += fmt.Sprintf("%-22s", name)
		for _, c := range cols {
			s += fmt.Sprintf(" %8.2f%%", f(c))
		}
		s += "\n"
	}
	row("Match Crossbar", func(c CoreUsage) float64 { return c.MatchCrossbar })
	row("SRAM", func(c CoreUsage) float64 { return c.SRAM })
	row("TCAM", func(c CoreUsage) float64 { return c.TCAM })
	row("VLIW Actions", func(c CoreUsage) float64 { return c.VLIWActions })
	row("Hash Bits", func(c CoreUsage) float64 { return c.HashBits })
	row("Stateful ALUs", func(c CoreUsage) float64 { return c.StatefulALUs })
	row("Packet Header Vector", func(c CoreUsage) float64 { return c.PacketHeaderVec })
	return s
}
